// Renders a D=2 overlay and one multicast tree as an SVG file — a visual
// sanity check of the empty-rectangle topology and the §2 zone recursion
// (the figure the brief announcement never had room for).
//
//   * grey segments: overlay edges (empty-rectangle rule);
//   * blue segments: multicast tree edges, width decreasing with depth;
//   * red dot: the initiator.
//
// Run:  ./overlay_svg [--peers=120] [--seed=9] [--root=0] [--out=overlay.svg]
#include <fstream>
#include <iostream>

#include "geometry/random_points.hpp"
#include "multicast/space_partition.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace {

constexpr double kCanvas = 800.0;
constexpr double kMargin = 20.0;

double scale(double coordinate) {
  return kMargin + coordinate / geomcast::geometry::kDefaultVmax * (kCanvas - 2 * kMargin);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace geomcast;
  const util::Flags flags(argc, argv);
  const auto peers = static_cast<std::size_t>(flags.get_int("peers", 120));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 9));
  const auto root = static_cast<overlay::PeerId>(flags.get_int("root", 0));
  const auto path = flags.get_string("out", "overlay.svg");

  util::Rng rng(seed);
  const auto points = geometry::random_points(rng, peers, 2);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  const auto result = multicast::build_multicast_tree(graph, root);
  const auto depths = result.tree.depths();
  const auto max_depth = result.tree.max_root_to_leaf_path();

  std::ofstream svg(path);
  if (!svg) {
    std::cerr << "overlay_svg: cannot write " << path << '\n';
    return 1;
  }
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << kCanvas << "' height='"
      << kCanvas << "' viewBox='0 0 " << kCanvas << " " << kCanvas << "'>\n"
      << "<rect width='100%' height='100%' fill='white'/>\n";

  // Overlay edges underneath.
  for (overlay::PeerId p = 0; p < graph.size(); ++p) {
    for (overlay::PeerId q : graph.neighbors(p)) {
      if (q < p) continue;
      svg << "<line x1='" << scale(points[p][0]) << "' y1='" << scale(points[p][1])
          << "' x2='" << scale(points[q][0]) << "' y2='" << scale(points[q][1])
          << "' stroke='#cccccc' stroke-width='0.6'/>\n";
    }
  }
  // Tree edges on top, thicker near the root.
  for (overlay::PeerId p = 0; p < graph.size(); ++p) {
    if (p == root || !result.tree.reached(p)) continue;
    const auto parent = result.tree.parent(p);
    const double width =
        3.0 - 2.0 * static_cast<double>(depths[p]) / static_cast<double>(max_depth ? max_depth : 1);
    svg << "<line x1='" << scale(points[parent][0]) << "' y1='" << scale(points[parent][1])
        << "' x2='" << scale(points[p][0]) << "' y2='" << scale(points[p][1])
        << "' stroke='#2266cc' stroke-width='" << width << "'/>\n";
  }
  // Peers; the initiator in red.
  for (overlay::PeerId p = 0; p < graph.size(); ++p) {
    svg << "<circle cx='" << scale(points[p][0]) << "' cy='" << scale(points[p][1])
        << "' r='" << (p == root ? 6.0 : 2.5) << "' fill='"
        << (p == root ? "#cc2222" : "#333333") << "'/>\n";
  }
  svg << "</svg>\n";
  svg.close();

  std::cout << "wrote " << path << ": " << peers << " peers, " << graph.edge_count()
            << " overlay edges, tree depth " << max_depth << ", "
            << result.request_messages << " construction messages\n";
  return 0;
}
