// Batch pipeline for downstream users: read peer coordinates from a CSV
// file (one peer per line, D comma-separated coordinates, optional single
// header line), build the overlay and a multicast tree, and write per-peer
// results as CSV (peer id, coordinates, overlay degree, tree parent, tree
// depth). With --emit=points it writes a coordinates-only CSV instead, so
// the binary doubles as a workload generator:
//
//   ./csv_pipeline --peers=100 --dims=2 --emit=points --output=peers.csv
//   ./csv_pipeline --input=peers.csv --root=5 --output=tree.csv
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/graph_metrics.hpp"
#include "geometry/random_points.hpp"
#include "multicast/space_partition.hpp"
#include "multicast/validator.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace geomcast;

std::vector<geometry::Point> read_points_csv(std::istream& in) {
  std::vector<geometry::Point> points;
  std::string line;
  bool first_content_line = true;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::vector<double> coords;
    bool parse_failed = false;
    std::stringstream row(line);
    std::string cell;
    while (std::getline(row, cell, ',')) {
      try {
        std::size_t consumed = 0;
        coords.push_back(std::stod(cell, &consumed));
        if (consumed != cell.size()) parse_failed = true;
      } catch (const std::exception&) {
        parse_failed = true;
      }
      if (parse_failed) break;
    }
    if (parse_failed) {
      // A single leading header line is fine; anything later is an error —
      // silently dropping peers would corrupt every downstream number.
      if (first_content_line) {
        first_content_line = false;
        continue;
      }
      throw std::runtime_error("csv line " + std::to_string(line_number) +
                               " is not numeric: '" + line + "'");
    }
    first_content_line = false;
    if (coords.empty()) continue;
    if (coords.size() > geometry::kMaxDims)
      throw std::runtime_error("csv row has more than kMaxDims coordinates");
    geometry::Point p(coords.size());
    for (std::size_t i = 0; i < coords.size(); ++i) p[i] = coords[i];
    if (!points.empty() && points.front().dims() != p.dims())
      throw std::runtime_error("csv rows have inconsistent dimensions");
    points.push_back(p);
  }
  return points;
}

util::Table points_table(const std::vector<geometry::Point>& points) {
  std::vector<std::string> header;
  for (std::size_t d = 0; d < points.front().dims(); ++d)
    header.push_back("x" + std::to_string(d));
  util::Table table(header);
  for (const auto& p : points) {
    table.begin_row();
    for (std::size_t d = 0; d < p.dims(); ++d) table.add_number(p[d], 6);
  }
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Flags flags(argc, argv);
    const auto input = flags.get_string("input", "-");
    const auto output = flags.get_string("output", "-");
    const auto root = static_cast<overlay::PeerId>(flags.get_int("root", 0));

    std::vector<geometry::Point> points;
    if (input == "-") {
      util::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 21)));
      points = geometry::random_points(
          rng, static_cast<std::size_t>(flags.get_int("peers", 100)),
          static_cast<std::size_t>(flags.get_int("dims", 2)));
    } else {
      std::ifstream file(input);
      if (!file) {
        std::cerr << "csv_pipeline: cannot read " << input << '\n';
        return 1;
      }
      points = read_points_csv(file);
    }
    if (points.size() < 2) {
      std::cerr << "csv_pipeline: need at least 2 peers (got " << points.size() << ")\n";
      return 1;
    }
    if (root >= points.size()) {
      std::cerr << "csv_pipeline: --root out of range\n";
      return 1;
    }

    if (flags.get_string("emit", "analysis") == "points") {
      const auto table = points_table(points);
      if (output == "-") {
        table.print_csv(std::cout);
      } else {
        std::ofstream file(output);
        if (!file) {
          std::cerr << "csv_pipeline: cannot write " << output << '\n';
          return 1;
        }
        table.print_csv(file);
      }
      std::cerr << "csv_pipeline: wrote " << points.size() << " peer coordinates\n";
      return 0;
    }

    const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
    const auto result = multicast::build_multicast_tree(graph, root);
    const auto report = multicast::validate_build(graph, result);
    const auto depths = result.tree.depths();

    std::vector<std::string> header{"peer"};
    for (std::size_t d = 0; d < graph.dims(); ++d) header.push_back("x" + std::to_string(d));
    header.insert(header.end(), {"overlay_degree", "tree_parent", "tree_depth"});
    util::Table table(header);
    for (overlay::PeerId p = 0; p < graph.size(); ++p) {
      table.begin_row().add_integer(p);
      for (std::size_t d = 0; d < graph.dims(); ++d) table.add_number(points[p][d], 4);
      table.add_integer(static_cast<long long>(graph.degree(p)));
      table.add_cell(p == root ? "root" : std::to_string(result.tree.parent(p)));
      table.add_integer(static_cast<long long>(depths[p]));
    }

    if (output == "-") {
      table.print_csv(std::cout);
    } else {
      std::ofstream file(output);
      if (!file) {
        std::cerr << "csv_pipeline: cannot write " << output << '\n';
        return 1;
      }
      table.print_csv(file);
    }
    std::cerr << "csv_pipeline: " << points.size() << " peers, validation: "
              << report.summary() << '\n';
    return report.valid() ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << "csv_pipeline: " << error.what() << '\n';
    return 1;
  }
}
