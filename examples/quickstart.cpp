// Quickstart: the whole public API in ~60 lines.
//
//   1. give every peer a random D-dimensional identifier;
//   2. build the P2P overlay with the paper's empty-rectangle rule;
//   3. construct a multicast tree from one initiator (space partitioning);
//   4. validate the §2 claims and print the tree statistics.
//
// Run:  ./quickstart [--peers=200] [--dims=2] [--seed=7]
#include <iostream>

#include "analysis/graph_metrics.hpp"
#include "geometry/random_points.hpp"
#include "multicast/space_partition.hpp"
#include "multicast/validator.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  const util::Flags flags(argc, argv);
  const auto peers = static_cast<std::size_t>(flags.get_int("peers", 200));
  const auto dims = static_cast<std::size_t>(flags.get_int("dims", 2));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  // 1. Identifiers: uniform coordinates in [0, VMAX]^D, distinct per
  //    dimension (the paper's standing assumption).
  util::Rng rng(seed);
  const auto points = geometry::random_points(rng, peers, dims);

  // 2. Overlay: Q is a neighbour of P iff the box spanned by P and Q holds
  //    no third peer. build_equilibrium gives each peer full knowledge (the
  //    converged-gossip topology).
  const overlay::EmptyRectSelector selector;
  const auto graph = overlay::build_equilibrium(points, selector);
  const auto degrees = analysis::degree_stats(graph);
  std::cout << "overlay: " << graph.size() << " peers, " << graph.edge_count()
            << " edges, max degree " << degrees.max << ", avg degree " << degrees.avg
            << (analysis::is_connected(graph) ? ", connected" : ", NOT connected")
            << "\n";

  // 3. Multicast tree rooted at peer 0: recursive responsibility-zone
  //    splitting, one request message per peer.
  const auto result = multicast::build_multicast_tree(graph, /*root=*/0);
  std::cout << "multicast: " << result.request_messages << " messages for "
            << result.tree.reached_count() << " peers (expected N-1 = " << peers - 1
            << ")\n"
            << "tree: longest root-to-leaf path " << result.tree.max_root_to_leaf_path()
            << ", max children " << result.tree.max_children() << " (bound 2^D = "
            << (std::size_t{1} << dims) << ")\n";

  // 4. Validate every §2 claim.
  const auto report = multicast::validate_build(graph, result);
  std::cout << "validation: " << report.summary() << "\n";
  return report.valid() ? 0 : 1;
}
