// Cloud-lease scenario — the paper's first motivation for §3: "the nodes
// are applications running on virtual machines which are leased for fixed
// periods of time", so every node knows exactly when it will leave.
//
// A fleet of VMs with staggered lease expirations forms an Orthogonal-
// Hyperplanes(K) overlay with x(P,1) = lease expiry. We build the
// stability-optimised dissemination tree, then play the lease expirations
// forward and compare against a lease-oblivious random spanning tree:
// the stable tree never strands a VM, the baseline orphans whole subtrees.
//
// Run:  ./cloud_leases [--vms=400] [--dims=3] [--k=3] [--seed=11]
#include <iostream>

#include "analysis/graph_metrics.hpp"
#include "overlay/equilibrium.hpp"
#include "overlay/hyperplane_k.hpp"
#include "stability/churn.hpp"
#include "stability/lifetime.hpp"
#include "stability/random_parent.hpp"
#include "stability/stable_tree.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  const util::Flags flags(argc, argv);
  const auto vms = static_cast<std::size_t>(flags.get_int("vms", 400));
  const auto dims = static_cast<std::size_t>(flags.get_int("dims", 3));
  const auto k = static_cast<std::size_t>(flags.get_int("k", 3));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));

  // Leases expire uniformly over the next 1000 minutes; the expiry time is
  // each VM's first virtual coordinate, the rest encode rack/zone locality.
  util::Rng rng(seed);
  std::vector<double> lease_expiry;
  const auto points = stability::lifetime_points(rng, vms, dims, 1000.0, lease_expiry);

  const auto selector = overlay::HyperplaneKSelector::orthogonal(dims, k);
  const auto graph = overlay::build_equilibrium(points, selector);
  std::cout << "fleet: " << vms << " VMs, D=" << dims << " (dim 1 = lease expiry), K=" << k
            << ", overlay avg degree " << analysis::degree_stats(graph).avg << "\n\n";

  // §3 tree: every VM forwards updates toward the VM whose lease lasts
  // longest among its neighbours.
  const auto stable = stability::build_stable_tree(graph, lease_expiry);
  std::cout << "stable tree: " << (stable.is_single_tree() ? "single tree" : "FOREST")
            << ", rooted at VM with latest expiry, diameter "
            << stability::tree_diameter(stable) << ", max degree " << stable.max_degree()
            << "\n";

  const auto stable_churn = stability::simulate_departures(stable.parent, lease_expiry);
  std::cout << "  lease expirations: " << stable_churn.departures << ", disruptive: "
            << stable_churn.disruptive_departures << ", VMs stranded: "
            << stable_churn.total_orphaned << "\n\n";

  // Lease-oblivious baseline on the same overlay.
  util::Rng tree_rng = rng.derive(1);
  const auto random_parent = stability::build_random_spanning_tree(graph, tree_rng);
  const auto random_churn = stability::simulate_departures(random_parent, lease_expiry);
  const auto repaired =
      stability::simulate_departures_with_repair(graph, random_parent, lease_expiry);
  std::cout << "random spanning tree (lease-oblivious baseline):\n"
            << "  disruptive expirations: " << random_churn.disruptive_departures
            << ", VMs stranded: " << random_churn.total_orphaned
            << ", worst single event: " << random_churn.max_orphaned_at_once << "\n"
            << "  with on-line repair: " << repaired.reattached << " reattached, "
            << repaired.repair_failures << " unrecoverable\n\n";

  const bool ok = stable_churn.departures_always_leaves();
  std::cout << (ok ? "OK: no lease expiration ever disconnected the stable tree.\n"
                   : "FAILURE: stable tree lost VMs!\n");
  return ok ? 0 : 1;
}
