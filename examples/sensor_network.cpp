// Wireless-sensor scenario — the paper's second §3 motivation: "the sensors
// know the remaining lifetime of their battery".
//
// Sensors sit at physical 2-D positions; their identifier is
// (battery_horizon, x, y), i.e. D = 3 with the lifetime as the first
// virtual coordinate. The sink disseminates a configuration update two
// ways:
//   * §2 space-partitioning multicast over the empty-rectangle overlay
//     (exactly N-1 radio messages, the energy argument), run message-by-
//     message on the discrete-event simulator with radio-ish latencies;
//   * §3 stability tree used for long-lived data collection, played
//     against battery deaths.
//
// Run:  ./sensor_network [--sensors=300] [--seed=5]
#include <iostream>

#include "analysis/graph_metrics.hpp"
#include "multicast/protocol.hpp"
#include "multicast/validator.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "stability/churn.hpp"
#include "stability/convergecast.hpp"
#include "stability/lifetime.hpp"
#include "stability/stable_tree.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  const util::Flags flags(argc, argv);
  const auto sensors = static_cast<std::size_t>(flags.get_int("sensors", 300));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));

  // Battery horizons (hours) + field positions; the battery horizon is the
  // first coordinate per §3.
  util::Rng rng(seed);
  std::vector<double> battery;
  const auto points = stability::lifetime_points(rng, sensors, 3, 1000.0, battery);

  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  std::cout << "field: " << sensors << " sensors, overlay avg degree "
            << analysis::degree_stats(graph).avg << ", connected: "
            << (analysis::is_connected(graph) ? "yes" : "NO") << "\n\n";

  // Configuration push from the sink (peer 0) with radio-like latency
  // jitter; count every radio message.
  const auto push = multicast::run_multicast_protocol(
      graph, /*root=*/0, {}, sim::LatencyModel::uniform(0.005, 0.02));
  const auto report = multicast::validate_build(graph, push.build);
  std::cout << "config push: " << push.build.request_messages << " radio messages ("
            << "N-1 = " << sensors - 1 << "), completed in " << push.completion_time
            << " s simulated, longest relay chain "
            << push.build.tree.max_root_to_leaf_path() << " hops\n"
            << "validation: " << report.summary() << "\n\n";

  // Long-lived collection tree: route toward the sensor with the most
  // battery left; batteries then die in order.
  const auto collect = stability::build_stable_tree(graph, battery);
  const auto churn = stability::simulate_departures(collect.parent, battery);
  std::cout << "collection tree: diameter " << stability::tree_diameter(collect)
            << ", max degree " << collect.max_degree() << "\n"
            << "battery deaths: " << churn.departures << ", collection paths broken: "
            << churn.disruptive_departures << "\n\n";

  // One aggregation wave up the collection tree: every sensor reports a
  // reading; interior sensors fold partial sums; the sink receives the
  // total with N-1 radio messages.
  std::vector<double> readings(sensors);
  for (auto& reading : readings) reading = rng.uniform(15.0, 30.0);  // field temps
  const auto wave = stability::run_convergecast(collect, readings,
                                                sim::LatencyModel::uniform(0.005, 0.02));
  std::cout << "convergecast: " << wave.contributions << " readings aggregated with "
            << wave.messages << " messages in " << wave.completion_time
            << " s simulated (mean reading "
            << wave.root_value / static_cast<double>(wave.contributions) << " C)\n";

  const bool ok = report.valid() && churn.departures_always_leaves() &&
                  wave.contributions == sensors;
  std::cout << (ok ? "\nOK: every sensor got the update with N-1 messages and no\n"
                     "battery death ever broke the collection tree.\n"
                   : "\nFAILURE: see counters above.\n");
  return ok ? 0 : 1;
}
