// Geo-targeted publish — the range-zone extension of the §2 algorithm.
//
// A publisher wants to reach only the peers whose virtual coordinates fall
// inside a target hyper-rectangle (think: all caches responsible for one
// region of a keyspace, or all sensors in one corridor of the field). The
// §2 recursion already partitions space into responsibility zones; pruning
// branches whose zone misses the target turns the N-1-message broadcast
// into a range multicast that touches only the target peers plus a short
// relay chain from the publisher.
//
// Run:  ./range_query [--peers=500] [--seed=13] [--lo=20] [--hi=45]
#include <iostream>

#include "geometry/random_points.hpp"
#include "multicast/range_multicast.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  const util::Flags flags(argc, argv);
  const auto peers = static_cast<std::size_t>(flags.get_int("peers", 500));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 13));
  const double lo = flags.get_double("lo", 200.0);
  const double hi = flags.get_double("hi", 450.0);

  util::Rng rng(seed);
  const auto points = geometry::random_points(rng, peers, 2);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});

  const auto target = geometry::Rect::cube(2, lo, hi);
  std::cout << "overlay: " << peers << " peers; target region " << target.to_string()
            << " holds " << multicast::peers_inside(graph, target) << " peers\n\n";

  // Publish from three corners of the coordinate space: the relay chain
  // length depends on how far the publisher sits from the region.
  for (overlay::PeerId root : {overlay::PeerId{0}, overlay::PeerId{1},
                               static_cast<overlay::PeerId>(peers / 2)}) {
    const auto result = multicast::build_range_multicast(graph, root, target);
    const bool publisher_inside = target.contains_interior(graph.point(root));
    std::cout << "publisher " << root << " at " << graph.point(root).to_string()
              << (publisher_inside ? " (inside target)" : " (outside target)") << ":\n"
              << "  delivered " << result.delivered << ", relays " << result.relays
              << ", messages " << result.request_messages << " (full broadcast would be "
              << peers - 1 << ")\n";
  }

  std::cout << "\nEvery target peer is reached with zero duplicates; only branches\n"
               "whose responsibility zone intersects the target are explored.\n";
  return 0;
}
