// Extension bench: reliable payload dissemination over the §2 tree under
// link loss. Sweeps the per-message drop probability and reports coverage,
// retransmission overhead and completion time for the ack/retransmit
// protocol versus fire-and-forget — quantifying what reliability costs on
// top of the N-1-message tree.
//
// Flags: --peers=N --dims=D --retries=R --seed=S --csv --quick
#include <iostream>

#include "geometry/random_points.hpp"
#include "multicast/dissemination.hpp"
#include "multicast/space_partition.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  try {
    const util::Flags flags(argc, argv);
    const auto peers = static_cast<std::size_t>(
        flags.get_int("peers", flags.get_bool("quick", false) ? 200 : 1000));
    const auto dims = static_cast<std::size_t>(flags.get_int("dims", 2));
    const auto retries = static_cast<std::size_t>(flags.get_int("retries", 10));
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

    util::Rng rng(seed);
    const auto points = geometry::random_points(rng, peers, dims);
    const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
    const auto tree = multicast::build_multicast_tree(graph, 0).tree;

    util::Table table({"drop_prob", "mode", "delivered", "data_msgs", "retransmissions",
                       "completion_s"});
    for (const double drop : {0.0, 0.05, 0.1, 0.2, 0.3}) {
      for (const bool reliable : {true, false}) {
        multicast::DisseminationConfig config;
        config.max_retries = reliable ? retries : 0;
        config.ack_timeout = 0.05;
        sim::LossModel loss;
        loss.drop_probability = drop;
        const auto result = multicast::run_dissemination(
            tree, config, sim::LatencyModel::constant(0.01), loss, seed + 1);
        table.begin_row()
            .add_number(drop, 2)
            .add_cell(reliable ? "ack+retry" : "fire-and-forget")
            .add_cell(std::to_string(result.delivered) + "/" + std::to_string(peers))
            .add_integer(static_cast<long long>(result.data_messages))
            .add_integer(static_cast<long long>(result.retransmissions))
            .add_number(result.completion_time, 3);
      }
    }

    if (flags.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      std::cout << "=== Extension: reliable dissemination over the S2 tree ===\n"
                << "N=" << peers << ", D=" << dims << ", retries=" << retries
                << ", ack timeout 50 ms, hop latency 10 ms, seed=" << seed << "\n\n";
      table.print(std::cout);
      std::cout << "\nReading: ack+retry holds full coverage as loss grows, paying\n"
                   "retransmissions and tail latency; fire-and-forget loses whole\n"
                   "subtrees (the tree amplifies a single early drop).\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "dissemination_reliability: " << error.what() << '\n';
    return 1;
  }
}
