// Reproduces Figure 1 (b): maximum and average (over all N initiating
// peers) of the longest root-to-leaf path of the space-partitioning
// multicast tree, for D = 2..5, N = 1000 — the paper initiates one
// construction from every peer and reports the per-session longest path.
//
// The `max_children` column checks the in-text claim that the multicast
// tree degree is bounded by the 2^D orthant regions; `invalid` counts
// validator failures (must be 0: N-1 messages, full coverage, disjoint
// zones).
//
// Flags: --peers=N --dims=2,3,4,5 --roots=R (0 = all) --seed=S --csv --quick
#include <iostream>

#include "analysis/experiments.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  try {
    const util::Flags flags(argc, argv);
    analysis::Fig1bConfig config;
    config.peers = static_cast<std::size_t>(flags.get_int("peers", 1000));
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    config.roots = static_cast<std::size_t>(flags.get_int("roots", 0));
    if (flags.get_bool("quick", false)) {
      config.peers = 200;
      config.roots = 50;
    }
    config.dims.clear();
    for (const auto d : flags.get_int_list("dims", {2, 3, 4, 5}))
      config.dims.push_back(static_cast<std::size_t>(d));

    const auto rows = analysis::run_fig1b(config);
    const auto table = analysis::fig1b_table(rows);
    if (flags.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      std::cout << "=== Fig 1(b): longest root-to-leaf multicast path vs dimension ===\n"
                << "N=" << config.peers << ", one session per root ("
                << (config.roots == 0 ? std::string("all peers")
                                      : std::to_string(config.roots) + " roots")
                << "), median-L1 pick, seed=" << config.seed << "\n\n";
      table.print(std::cout);
      std::cout << "\nPaper shape check: avg-max < max; paths grow modestly with D;\n"
                   "max_children <= 2^D; invalid must be 0 everywhere.\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "fig1b_multicast_path: " << error.what() << '\n';
    return 1;
  }
}
