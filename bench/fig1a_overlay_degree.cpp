// Reproduces Figure 1 (a): maximum and average overlay-topology degree of a
// peer for D = 2..5, N = 1000, uniform-random coordinates, empty-rectangle
// neighbour selection at the full-knowledge equilibrium.
//
// Paper shape: both series grow steeply with D (max degree into the
// hundreds by D = 5); D = 2 has the smallest degrees.
//
// Flags: --peers=N --dims=2,3,4,5 --seed=S --csv --quick
#include <cstdio>
#include <iostream>

#include "analysis/experiments.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  try {
    const util::Flags flags(argc, argv);
    analysis::Fig1aConfig config;
    config.peers = static_cast<std::size_t>(flags.get_int("peers", 1000));
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    if (flags.get_bool("quick", false)) config.peers = 200;
    config.dims.clear();
    for (const auto d : flags.get_int_list("dims", {2, 3, 4, 5}))
      config.dims.push_back(static_cast<std::size_t>(d));

    const auto rows = analysis::run_fig1a(config);
    const auto table = analysis::fig1a_table(rows);
    if (flags.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      std::cout << "=== Fig 1(a): overlay degree vs dimension ===\n"
                << "N=" << config.peers << ", empty-rectangle selection, seed="
                << config.seed << "\n\n";
      table.print(std::cout);
      std::cout << "\nPaper shape check: degrees should grow sharply with D;\n"
                   "D=2 smallest, max degree in the hundreds by D=5.\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "fig1a_overlay_degree: " << error.what() << '\n';
    return 1;
  }
}
