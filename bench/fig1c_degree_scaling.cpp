// Reproduces Figure 1 (c): maximum and average overlay degree for D = 2 as
// the number of peers grows (paper: N = 100..5000), against the paper's
// 10·log10(N) reference curve.
//
// Paper shape: at D = 2 both degree series track the logarithmic reference
// ("seem to be proportional to log(N)").
//
// Flags: --peer-counts=100,200,... --seed=S --csv --quick
#include <iostream>

#include "analysis/experiments.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  try {
    const util::Flags flags(argc, argv);
    analysis::Fig1cConfig config;
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    config.dims = static_cast<std::size_t>(flags.get_int("dims", 2));
    config.peer_counts.clear();
    const std::vector<std::int64_t> defaults =
        flags.get_bool("quick", false)
            ? std::vector<std::int64_t>{100, 400, 1000}
            : std::vector<std::int64_t>{100, 200, 400, 700, 1000, 2000, 4000, 5000};
    for (const auto n : flags.get_int_list("peer-counts", defaults))
      config.peer_counts.push_back(static_cast<std::size_t>(n));

    const auto rows = analysis::run_fig1c(config);
    const auto table = analysis::fig1c_table(rows);
    if (flags.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      std::cout << "=== Fig 1(c): overlay degree vs N (D=" << config.dims << ") ===\n"
                << "empty-rectangle selection, seed=" << config.seed << "\n\n";
      table.print(std::cout);
      std::cout << "\nPaper shape check: max and avg degree should track the\n"
                   "10*log10(N) reference (logarithmic growth).\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "fig1c_degree_scaling: " << error.what() << '\n';
    return 1;
  }
}
