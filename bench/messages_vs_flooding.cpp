// Ablation A1 (DESIGN.md): message cost of constructing one multicast tree.
// The §2 scheme sends exactly N-1 request messages (verified per row); the
// flooding baseline on the same overlay costs 2E - (N-1) — the quantitative
// version of the paper's "send many messages for constructing the tree"
// motivation.
//
// Flags: --peers=N --dims=2,3,4,5 --seed=S --csv --quick
#include <iostream>

#include "analysis/experiments.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  try {
    const util::Flags flags(argc, argv);
    analysis::MessageComparisonConfig config;
    config.peers = static_cast<std::size_t>(flags.get_int("peers", 1000));
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    if (flags.get_bool("quick", false)) config.peers = 200;
    config.dims.clear();
    for (const auto d : flags.get_int_list("dims", {2, 3, 4, 5}))
      config.dims.push_back(static_cast<std::size_t>(d));

    const auto rows = analysis::run_message_comparison(config);
    const auto table = analysis::message_comparison_table(rows);
    if (flags.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      std::cout << "=== A1: construction message cost, space partition vs flooding ===\n"
                << "N=" << config.peers << ", empty-rectangle overlay, seed=" << config.seed
                << "\n\n";
      table.print(std::cout);
      std::cout << "\nClaim check: space_partition_msgs == N-1 on every row; the\n"
                   "flooding overhead factor grows with D (denser overlays).\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "messages_vs_flooding: " << error.what() << '\n';
    return 1;
  }
}
