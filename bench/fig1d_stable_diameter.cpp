// Reproduces Figure 1 (d): diameter of the §3 stability-optimised multicast
// tree as K varies from 1 to 50, for D = 2..10, N = 1000. The overlay is
// the Orthogonal Hyperplanes(K) topology; x(P,1) = T(P); every peer prefers
// the neighbour with the largest departure time.
//
// Paper shape: diameter is largest at K = 1 and decreases as K grows;
// higher D gives smaller diameters (more orthants => more neighbours =>
// shallower trees). The single_tree / monotone_T columns assert the §3
// structural claims on every row.
//
// Flags: --peers=N --dims=2,...,10 --k-min --k-max --seed=S --csv --quick
#include <iostream>

#include "analysis/experiments.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  try {
    const util::Flags flags(argc, argv);
    analysis::StabilitySweepConfig config;
    config.peers = static_cast<std::size_t>(flags.get_int("peers", 1000));
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    config.k_min = static_cast<std::size_t>(flags.get_int("k-min", 1));
    config.k_max = static_cast<std::size_t>(flags.get_int("k-max", 50));
    config.dims.clear();
    for (const auto d : flags.get_int_list("dims", {2, 3, 4, 5, 6, 7, 8, 9, 10}))
      config.dims.push_back(static_cast<std::size_t>(d));
    if (flags.get_bool("quick", false)) {
      config.peers = 200;
      config.k_max = 8;
      config.dims = {2, 5, 10};
    }

    const auto rows = analysis::run_stability_sweep(config);
    const auto table = analysis::stability_table(rows, /*diameter_panel=*/true);
    if (flags.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      std::cout << "=== Fig 1(d): stable-tree diameter vs K ===\n"
                << "N=" << config.peers << ", Orthogonal Hyperplanes(K), preferred = max-T"
                << ", seed=" << config.seed << "\n\n";
      table.print(std::cout);
      std::cout << "\nPaper shape check: diameter decreases with K, largest at K=1;\n"
                   "higher D => smaller diameter; single_tree and monotone_T must be\n"
                   "'yes' on every row (the §3 claims).\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "fig1d_stable_diameter: " << error.what() << '\n';
    return 1;
  }
}
