// Extension bench (DESIGN.md future-work direction, aligned with the
// paper's reference [2] on multidimensional range search): cost of the
// range-zone multicast as the target rectangle shrinks.
//
// For each target edge length (fraction of VMAX), average over random
// target placements and publishers: peers inside the target, peers
// delivered (must match), relay peers, and request messages — against the
// N-1 cost of a full broadcast.
//
// Flags: --peers=N --dims=D --trials=T --seed=S --csv --quick
#include <iostream>

#include "geometry/random_points.hpp"
#include "multicast/range_multicast.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  try {
    const util::Flags flags(argc, argv);
    const auto peers = static_cast<std::size_t>(
        flags.get_int("peers", flags.get_bool("quick", false) ? 300 : 1000));
    const auto dims = static_cast<std::size_t>(flags.get_int("dims", 2));
    const auto trials = static_cast<std::size_t>(flags.get_int("trials", 50));
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

    util::Rng rng(seed);
    const auto points = geometry::random_points(rng, peers, dims);
    const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});

    util::Table table({"target_edge_frac", "avg_targets", "avg_delivered", "avg_relays",
                       "avg_messages", "full_broadcast", "coverage_ok"});
    for (const double fraction : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      const double edge = fraction * geometry::kDefaultVmax;
      util::RunningStats targets, delivered, relays, messages;
      bool coverage_ok = true;
      util::Rng trial_rng = rng.derive(static_cast<std::uint64_t>(fraction * 1000));
      for (std::size_t t = 0; t < trials; ++t) {
        geometry::Rect target(dims);
        for (std::size_t d = 0; d < dims; ++d) {
          const double lo = trial_rng.uniform(0.0, geometry::kDefaultVmax - edge);
          target.set_lo(d, lo);
          target.set_hi(d, lo + edge);
        }
        const auto root = static_cast<overlay::PeerId>(trial_rng.next_below(peers));
        const auto result = multicast::build_range_multicast(graph, root, target);
        const auto inside = multicast::peers_inside(graph, target);
        coverage_ok = coverage_ok && result.delivered == inside &&
                      result.duplicate_deliveries == 0;
        targets.add(static_cast<double>(inside));
        delivered.add(static_cast<double>(result.delivered));
        relays.add(static_cast<double>(result.relays));
        messages.add(static_cast<double>(result.request_messages));
      }
      table.begin_row()
          .add_number(fraction, 2)
          .add_number(targets.mean(), 1)
          .add_number(delivered.mean(), 1)
          .add_number(relays.mean(), 1)
          .add_number(messages.mean(), 1)
          .add_integer(static_cast<long long>(peers - 1))
          .add_cell(coverage_ok ? "yes" : "NO");
    }

    if (flags.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      std::cout << "=== Extension: range-zone multicast cost vs target size ===\n"
                << "N=" << peers << ", D=" << dims << ", " << trials
                << " random targets+publishers per row, seed=" << seed << "\n\n";
      table.print(std::cout);
      std::cout << "\nReading: avg_delivered == avg_targets with coverage_ok=yes (the\n"
                   "pruned recursion never misses a target peer); messages shrink\n"
                   "toward the target population as the region shrinks, versus the\n"
                   "constant N-1 of a full broadcast.\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "range_multicast_cost: " << error.what() << '\n';
    return 1;
  }
}
