// Ablation A4 (DESIGN.md): why does §2 use the empty-rectangle overlay?
// This bench runs the same multicast construction over the three
// neighbour-selection methods named by the paper. The empty-rectangle
// overlay guarantees a neighbour in every non-empty orthant of every zone,
// so coverage is exactly 1.0; K-based overlays can leave zone gaps (the
// delegate's zone contains peers it has no neighbour for), which shows up
// as avg_coverage < 1.
//
// Flags: --peers=N --dims=D --k=K --roots=R --seed=S --csv --quick
#include <iostream>

#include "analysis/experiments.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  try {
    const util::Flags flags(argc, argv);
    analysis::SelectionAblationConfig config;
    config.peers = static_cast<std::size_t>(flags.get_int("peers", 1000));
    config.dims = static_cast<std::size_t>(flags.get_int("dims", 2));
    config.k = static_cast<std::size_t>(flags.get_int("k", 3));
    config.roots = static_cast<std::size_t>(flags.get_int("roots", 50));
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    if (flags.get_bool("quick", false)) {
      config.peers = 200;
      config.roots = 20;
    }

    const auto rows = analysis::run_selection_ablation(config);
    const auto table = analysis::selection_ablation_table(rows);
    if (flags.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      std::cout << "=== A4: neighbour-selection method under §2 multicast ===\n"
                << "N=" << config.peers << ", D=" << config.dims << ", K=" << config.k
                << " for the K-based methods, " << config.roots
                << " sessions, seed=" << config.seed << "\n\n";
      table.print(std::cout);
      std::cout << "\nReading: empty-rect must reach avg_coverage = 1 (the §2 delivery\n"
                   "guarantee); K-based overlays may not — that gap is why the paper\n"
                   "pairs the §2 algorithm with the empty-rectangle rule.\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "ablation_selection: " << error.what() << '\n';
    return 1;
  }
}
