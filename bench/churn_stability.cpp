// Ablation A3 (DESIGN.md): quantifies the §3 stability guarantee. Peers
// depart at their announced times T(P), in order. The lifetime-aware tree
// must shed only leaves (zero orphans); a lifetime-oblivious random
// spanning tree of the same overlay orphans whole subtrees — the paper's
// "very sensitive to node departures" baseline, measured.
//
// repair_failures re-runs departures with the §3 preferred-neighbour rule
// as an on-line repair: only the globally longest-lived peer can ever fail
// to reattach.
//
// Flags: --peers=N --dims=D --k=K --seed=S --csv --quick
#include <iostream>

#include "analysis/experiments.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  try {
    const util::Flags flags(argc, argv);
    analysis::ChurnComparisonConfig config;
    config.peers = static_cast<std::size_t>(flags.get_int("peers", 1000));
    config.dims = static_cast<std::size_t>(flags.get_int("dims", 3));
    config.k = static_cast<std::size_t>(flags.get_int("k", 3));
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    if (flags.get_bool("quick", false)) config.peers = 200;

    const auto rows = analysis::run_churn_comparison(config);
    const auto table = analysis::churn_table(rows);
    if (flags.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      std::cout << "=== A3: departures — lifetime-aware tree vs random spanning tree ===\n"
                << "N=" << config.peers << ", D=" << config.dims << ", Orthogonal(K="
                << config.k << ") overlay, all peers depart in T order, seed="
                << config.seed << "\n\n";
      table.print(std::cout);
      std::cout << "\nClaim check: the stable tree has 0 disruptive departures and 0\n"
                   "orphans (every departure is a leaf); the random tree does not.\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "churn_stability: " << error.what() << '\n';
    return 1;
  }
}
