// Ablation A2 (DESIGN.md): the paper delegates each region to the MEDIAN-
// distance neighbour without justifying the choice. This bench compares
// median against closest / farthest / random delegation on the same
// overlay, reporting the Fig 1(b) path metrics. All policies keep every §2
// invariant (coverage, N-1 messages) — only tree shape changes.
//
// Flags: --peers=N --dims=D --roots=R (0 = all) --seed=S --csv --quick
#include <iostream>

#include "analysis/experiments.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  try {
    const util::Flags flags(argc, argv);
    analysis::PickPolicyAblationConfig config;
    config.peers = static_cast<std::size_t>(flags.get_int("peers", 1000));
    config.dims = static_cast<std::size_t>(flags.get_int("dims", 2));
    config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    config.roots = static_cast<std::size_t>(flags.get_int("roots", 0));
    if (flags.get_bool("quick", false)) {
      config.peers = 200;
      config.roots = 50;
    }

    const auto rows = analysis::run_pick_policy_ablation(config);
    const auto table = analysis::pick_policy_table(rows);
    if (flags.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      std::cout << "=== A2: within-region delegate choice (paper: median) ===\n"
                << "N=" << config.peers << ", D=" << config.dims
                << ", empty-rectangle overlay, "
                << (config.roots == 0 ? std::string("all peers as roots")
                                      : std::to_string(config.roots) + " roots")
                << ", seed=" << config.seed << "\n\n";
      table.print(std::cout);
      std::cout << "\nReading: invalid must be 0 for every policy (coverage and N-1\n"
                   "messages are policy-independent); the policies trade path length\n"
                   "against degree concentration.\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "ablation_pick_policy: " << error.what() << '\n';
    return 1;
  }
}
