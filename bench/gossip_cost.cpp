// Extension bench: overlay-maintenance cost of the paper's gossip substrate,
// measured on the discrete-event simulator. Each peer announces its
// existence BR hops away every period; this table reports, per N and BR,
// the announce traffic of building the overlay one insertion at a time and
// the steady-state announce traffic of ONE gossip period — against the N-1
// messages of a full §2 tree construction, which is the paper's point:
// tree construction is (almost) free next to routine overlay upkeep.
//
// Flags: --peer-counts=16,32,64 --br-values=2,3,4 --seed=S --csv
#include <iostream>

#include "geometry/random_points.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/gossip.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  try {
    const util::Flags flags(argc, argv);
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    const auto peer_counts = flags.get_int_list("peer-counts", {16, 32, 64});
    const auto br_values = flags.get_int_list("br-values", {2, 3, 4});

    const overlay::EmptyRectSelector selector;
    util::Table table({"N", "BR", "build_announce_msgs", "link_msgs", "sim_seconds",
                       "per_period_steady", "tree_construction", "converged"});
    for (const auto n : peer_counts) {
      util::Rng rng(seed ^ static_cast<std::uint64_t>(n));
      const auto points =
          geometry::random_points(rng, static_cast<std::size_t>(n), 2, 1000.0);
      for (const auto br : br_values) {
        overlay::GossipConfig config;
        config.br = static_cast<std::uint32_t>(br);
        const auto result =
            overlay::build_overlay_with_gossip(points, selector, config, seed);
        // Steady-state: every peer floods one announcement BR hops per
        // period; approximate by announce volume per simulated second at
        // the converged topology (period = 1 s).
        const double per_period =
            result.sim_time > 0.0
                ? static_cast<double>(result.announce_messages) / result.sim_time
                : 0.0;
        table.begin_row()
            .add_integer(n)
            .add_integer(br)
            .add_integer(static_cast<long long>(result.announce_messages))
            .add_integer(static_cast<long long>(result.link_messages))
            .add_number(result.sim_time, 1)
            .add_number(per_period, 1)
            .add_integer(n - 1)
            .add_cell(result.converged ? "yes" : "NO");
      }
    }

    if (flags.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      std::cout << "=== Extension: gossip overlay-maintenance cost (DES) ===\n"
                << "empty-rectangle selection, announce period 1 s, Tmax 4 s, one\n"
                << "insertion at a time with convergence between joins, seed=" << seed
                << "\n\n";
      table.print(std::cout);
      std::cout << "\nReading: even one gossip period costs more messages than an\n"
                   "entire N-1 tree construction, and the cost grows with BR — the\n"
                   "quantitative backdrop for the paper's minimum-message design.\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "gossip_cost: " << error.what() << '\n';
    return 1;
  }
}
