// Extension bench: path quality of the geometric primitives versus the
// hop-count optimum (BFS on the same overlay).
//
//   * unicast: greedy corridor routing from random sources to random
//     destinations — delivery rate (must be 1.0 on empty-rect overlays) and
//     hop stretch vs the BFS shortest path;
//   * multicast: longest root-to-leaf path of the §2 tree vs the BFS tree
//     from the same root (the decentralized construction's depth stretch).
//
// Flags: --peers=N --dims=2,3,4,5 --pairs=P --seed=S --csv --quick
#include <iostream>

#include "analysis/graph_metrics.hpp"
#include "geometry/random_points.hpp"
#include "multicast/bfs_tree.hpp"
#include "multicast/space_partition.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "overlay/routing.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  try {
    const util::Flags flags(argc, argv);
    const auto peers = static_cast<std::size_t>(
        flags.get_int("peers", flags.get_bool("quick", false) ? 300 : 1000));
    const auto pairs = static_cast<std::size_t>(flags.get_int("pairs", 500));
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

    util::Table table({"D", "delivery_rate", "avg_unicast_stretch", "max_unicast_stretch",
                       "sp_tree_depth", "bfs_tree_depth", "depth_stretch"});
    for (const auto d : flags.get_int_list("dims", {2, 3, 4, 5})) {
      const auto dims = static_cast<std::size_t>(d);
      util::Rng rng(seed ^ (dims * 0x9e37ULL));
      const auto points = geometry::random_points(rng, peers, dims);
      const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});

      // Unicast stretch over random pairs.
      util::RunningStats stretch;
      std::size_t deliveries = 0;
      util::Rng pair_rng = rng.derive(7);
      for (std::size_t t = 0; t < pairs; ++t) {
        const auto s = static_cast<overlay::PeerId>(pair_rng.next_below(peers));
        auto dst = static_cast<overlay::PeerId>(pair_rng.next_below(peers));
        if (dst == s) dst = static_cast<overlay::PeerId>((dst + 1) % peers);
        const auto route = overlay::route_greedy(graph, s, dst);
        if (!route.delivered) continue;
        ++deliveries;
        const auto shortest = analysis::bfs_depths(graph, s)[dst];
        if (shortest > 0)
          stretch.add(static_cast<double>(route.hops()) / static_cast<double>(shortest));
      }

      // Multicast depth stretch from one root.
      const auto sp = multicast::build_multicast_tree(graph, 0);
      const auto bfs = multicast::build_bfs_tree(graph, 0);
      const auto sp_depth = sp.tree.max_root_to_leaf_path();
      const auto bfs_depth = bfs.max_root_to_leaf_path();

      table.begin_row()
          .add_integer(d)
          .add_number(static_cast<double>(deliveries) / static_cast<double>(pairs), 4)
          .add_number(stretch.mean(), 3)
          .add_number(stretch.max(), 2)
          .add_integer(static_cast<long long>(sp_depth))
          .add_integer(static_cast<long long>(bfs_depth))
          .add_number(bfs_depth == 0 ? 0.0
                                     : static_cast<double>(sp_depth) /
                                           static_cast<double>(bfs_depth),
                      2);
    }

    if (flags.get_bool("csv", false)) {
      table.print_csv(std::cout);
    } else {
      std::cout << "=== Extension: path stretch vs the hop-count optimum ===\n"
                << "N=" << peers << ", empty-rectangle overlay, " << pairs
                << " unicast pairs per dimension, seed=" << seed << "\n\n";
      table.print(std::cout);
      std::cout << "\nReading: delivery_rate must be 1.0 (greedy corridor routing is\n"
                   "provably delivering on this overlay); unicast stretch is the cost\n"
                   "of local decisions; depth_stretch compares the decentralized §2\n"
                   "tree against a centrally computed BFS tree on the same overlay.\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "routing_stretch: " << error.what() << '\n';
    return 1;
  }
}
