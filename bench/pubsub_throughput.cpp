// Pub/sub scaling bench: N groups × M subscribers × churn on one overlay.
//
// Exercises the whole groups/ pipeline — rendezvous routing, lazy pruned
// tree construction, cache reuse across publishes, incremental
// graft/repair under departures, the QoS 1 per-hop ack/retransmit plane,
// and the QoS 2 end-to-end NACK/gap-repair plane — and reports the
// numbers the scaling trajectory cares about: publishes/sec (wall clock),
// delivery ratio, per-publish payload cost versus full-overlay
// dissemination (N-1 messages), tree build/repair message overhead,
// retransmissions per publish, and the repair plane's NACK/repair traffic
// with gap latency.
//
// Mid-wave departure injection (--midwave=K): after the churn phase, K
// dedicated waves publish (round-robin over the groups, from each group's
// root so the wave start is exact) and the forwarding relay with the most
// subscriber descendants is departed just before that wave reaches it —
// the severed-subtree failure QoS 2 exists to repair; two flush waves per
// kill give the subtrees the later traffic gap detection needs.
//
// Acceptance gates:
//  * (ISSUE 1) with >= 32 groups and >= 1000 peers under churn at zero
//    loss, delivery ratio >= 0.99 and pruned per-publish payload strictly
//    below full-overlay dissemination;
//  * (ISSUE 2, --sweep) under 5% per-link loss, QoS 1 delivery ratio
//    >= 0.99 while QoS 0 is visibly lower;
//  * (ISSUE 3, --sweep) with mid-wave forwarder departures at 5% loss,
//    QoS 2 delivery ratio >= 0.9999 while QoS 1 drops below it, and the
//    retained-buffer peak stays within the configured retention window.
//
// Flags: --peers=N --dims=D --groups=G --subscribers=M --publishes=P
//        --departures=C --midwave=K --loss=p --qos=0|1|2 --retries=R
//        --ack-timeout=T --retention=W --seed=S --csv --quick --sweep
//        --batch-window=W --max-batch=B --pub-burst=K --json=FILE
//        --batch-compare --graft-cost --latency --root-kill
//        --trace=FILE --snapshot=FILE --snapshot-interval=T
//        --hot-group --replicas=1,2,4 --publisher-batch-window=W
//        --graft-prefix-batch
//
// Hot group (replica-sharded roots PR): --hot-group prices the single-hot-
// group regime — ONE group, every eligible peer subscribed, burst
// publishes — swept over the PubSubConfig::root_replicas axis
// (--replicas, default {1, 2, 4}) at every QoS rung, with root-side AND
// publisher-side batching plus prefix-batched grafts on by default (the
// stack the hot-root load multiplies through). R=1 is the oracle: gates
// are bit-identical delivered (peer, group, seq) sets per qos, hot-root
// (sent + received) load max flattening monotonically along the axis, and
// a >= 1.8x drop at the axis maximum (QoS 1 cells). BENCH_hotgroup.json
// is the checked-in full-size run.
//
// Observability (ISSUE 6): --trace=FILE writes the single-scenario run's
// wave-lifecycle trace as Chrome trace-event JSON (open in Perfetto /
// chrome://tracing); --snapshot=FILE attaches the periodic obs::Sampler
// and writes its time series (deliveries/sec, in-flight grafts, retained
// seqs, event-queue depth, per-peer load). Every mode's --json now carries
// the publish->delivery / gap-repair / graft latency histograms and the
// full NetworkStats block (sent_by_kind named through the message-kind
// registry, per-peer send/receive hot-peer summaries).
//
// Latency pinning (--latency): 3 pinned seeds x QoS {0,1,2} x loss
// {0, 0.05} on per-seed overlays, churn off so the distribution is a pure
// function of the (qos, loss) cell. Gates are structural — p50 <= p90 <=
// p99 <= max, histogram count == deliveries, per-peer load max >= p99 —
// and the full-size run is checked in as BENCH_latency.json.
//
// Graft cost (ISSUE 5): --graft-cost prices the distributed control plane
// on a graft-heavy workload (half the members subscribe AFTER the warm
// publish, so every one of them is a zone-descent graft against the clean
// cached tree). Per pinned seed it runs the local-descent oracle and the
// routed descent at zero loss — gating on bit-identical delivered
// (peer, group, seq) sets and tree edge sets — plus a routed cell at 5%
// loss with mid-graft kills, gating on every surviving registered member
// ending up spanned (graft_aborts each resolved by abort-and-resubscribe
// plus rebuild+rescue). The table reports control_envelopes, graft hops,
// mean hops per graft, retries, and aborts; --json pins it machine-
// readable (BENCH_graft_cost.json is the checked-in full-size run).
//
// Root failover (warm failover PR): --root-kill prices root death at
// QoS 2 with batching on. Per pinned seed (three of them, each with its
// own overlay) it runs the root-kill workload — warm-up waves, a killed
// wave whose best relay is severed mid-flight and whose root dies right
// after the flush holding a pending batch, then post-kill traffic that
// reveals the severed subtree's gap — once with cold rebuild and once
// with warm failover, plus a no-kill control pair. Gates: the cold cell
// shows the dip (abandoned gap seqs, delivery_ratio < 1, pending batch
// lost), the warm cell erases it (ratio == 1.0, zero abandons, pending
// batch inherited, migration envelopes > 0 pricing the handoff), warm
// resumes deliveries strictly faster after the kill, and the no-kill
// pair delivers bit-identical sets (the knob is passive without deaths).
// BENCH_failover.json is the checked-in full-size run.
//
// --sweep ignores --loss/--qos and instead runs the same scenario for
// QoS 0, 1 and 2 at each loss in {0, 0.05, 0.15}, printing one row per
// (loss, qos) cell — the loss axis of the reliability story. In sweep
// mode the random churn departures are replaced by mid-wave forwarder
// kills (--midwave, default 4): random churn removes subscribers, whose
// in-flight waves no QoS level can deliver, which would drown the
// subtree-repair signal the sweep gates on.
//
// Wave coalescing (ISSUE 4): --batch-window/--max-batch switch on root-
// side publish batching, --pub-burst=K turns the publish schedule into
// back-to-back bursts of K from one publisher (the workload batching
// amortises), and --batch-compare runs the burst workload at every QoS
// rung both unbatched and batched, gating on (a) the delivered
// (peer, group, seq) set being bit-identical and (b) payload+ack
// envelopes shrinking >= 3x at QoS 1. --json=FILE emits the run's
// numbers machine-readable (the perf-trajectory artifact CI uploads).
#include <algorithm>
#include <array>
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>
#include <vector>

#include "geometry/distance.hpp"
#include "geometry/random_points.hpp"
#include "groups/failure_injection.hpp"
#include "groups/pubsub.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "overlay/grid_knn.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace geomcast;

struct ScenarioParams {
  std::size_t peers = 1000;
  std::size_t group_count = 32;
  std::size_t subscribers = 32;
  std::size_t publishes = 8;
  std::size_t departures = 24;
  std::size_t midwave = 0;  // mid-wave forwarder kills (see file comment)
  double ack_timeout = 0.05;
  std::size_t max_retries = 5;
  std::size_t retention_window = 64;
  double batch_window = 0.0;   // root-side coalescing window (0 = off)
  std::size_t max_batch = 16;  // publishes per coalesced wave
  std::size_t pub_burst = 1;   // publishes per burst in the schedule
  /// Replica-sharded roots: R rendezvous anchors per group, 1 = the
  /// historic single-root pipeline. Only --hot-group sweeps this axis.
  std::size_t root_replicas = 1;
  /// Publisher-side coalescing window (0 = off, the historic one-envelope-
  /// per-publish path).
  double publisher_batch_window = 0.0;
  /// Same-instant graft descent steps sharing a hop ride one carrier.
  bool graft_prefix_batch = false;
  /// Simulator-core fast path (timer wheel + interval dedup); false runs
  /// the historic heap/set oracle. Only --simcore mode flips this.
  bool sim_core = true;
  /// Sharded event loop: worker lanes by coordinate region, 1 = the
  /// classic single-threaded loop. Only the --simcore shard cells vary it.
  std::size_t sim_shards = 1;
  /// Membership drawn from each root's neighbourhood instead of uniformly.
  /// Corridor-greedy control routing is only guaranteed on the
  /// full-knowledge empty-rect equilibrium; on a grid-kNN local-knowledge
  /// overlay a distant target strands, so the 100k sweep cell keeps its
  /// control traffic inside each root's neighbourhood (tree dissemination
  /// is direct sends and is unaffected).
  bool local_members = false;
  std::uint64_t seed = 42;
};

/// One application-level delivery, the unit the batching-equivalence gate
/// compares: batched and unbatched runs must deliver the identical set.
using DeliveryKey = std::tuple<overlay::PeerId, groups::GroupId, std::uint64_t>;

struct ScenarioOutcome {
  groups::GroupStats total;
  sim::NetworkStats net;
  std::size_t events = 0;
  std::size_t scheduled_departures = 0;
  std::size_t midwave_kills = 0;      // kills that found a relay to sever
  std::size_t severed_subscribers = 0;  // subscriber descendants cut off
  std::size_t retained_peak = 0;
  std::size_t retained_entries = 0;   // entries left across all buffers
  std::size_t retained_buffers = 0;   // live (peer, group) buffers
  sim::ShardMetrics shard;            // per-lane events + barrier accounting
  double run_secs = 0.0;

  [[nodiscard]] double payload_per_publish() const {
    return total.publishes ? static_cast<double>(total.payload_messages) /
                                 static_cast<double>(total.publishes)
                           : 0.0;
  }
  [[nodiscard]] double retx_per_publish() const {
    return total.publishes ? static_cast<double>(total.retransmissions) /
                                 static_cast<double>(total.publishes)
                           : 0.0;
  }
};

/// One full run of the standard workload on a prebuilt overlay. The
/// schedule (membership, publishes, departures) is a function of
/// params.seed alone, so runs at different (qos, loss) points are
/// apples-to-apples.
ScenarioOutcome run_scenario(const overlay::OverlayGraph& graph,
                             const ScenarioParams& params, multicast::QoS qos,
                             double loss,
                             std::set<DeliveryKey>* delivered_out = nullptr,
                             obs::TraceSink* trace_sink = nullptr,
                             std::string* snapshot_json = nullptr,
                             double snapshot_interval = 0.5) {
  const std::size_t peers = graph.size();
  groups::PubSubConfig config;
  config.seed = params.seed;
  config.loss.drop_probability = loss;
  config.reliability.qos = qos;
  config.reliability.ack_timeout = params.ack_timeout;
  config.reliability.max_retries = params.max_retries;
  config.groups.retention_window = params.retention_window;
  config.batch_window = params.batch_window;
  config.max_batch = params.max_batch;
  config.root_replicas = params.root_replicas;
  config.publisher_batch_window = params.publisher_batch_window;
  config.graft_prefix_batch = params.graft_prefix_batch;
  config.sim_core = params.sim_core;
  config.sim_shards = params.sim_shards;
  groups::PubSubSystem system(graph, config);
  if (trace_sink != nullptr) system.set_trace_sink(trace_sink);
  // The sampler's ticks are simulator events, so a sampled run's
  // sim_events count differs from an unsampled one — attach only on
  // request; the stats themselves are unaffected.
  std::optional<obs::Sampler> sampler;
  if (snapshot_json != nullptr) {
    sampler.emplace(system, snapshot_interval);
    sampler->start();
  }
  if (delivered_out != nullptr)
    system.set_delivery_probe([delivered_out](overlay::PeerId peer, groups::GroupId group,
                                              std::uint64_t seq, double) {
      delivered_out->emplace(peer, group, seq);
    });

  // Roots are excluded from membership and churn so the bench measures
  // steady-state group service, not rendezvous migration (which has its
  // own counter).
  std::vector<bool> is_root(peers, false);
  for (std::size_t g = 0; g < params.group_count; ++g)
    is_root[system.manager().root_of(g)] = true;
  std::size_t non_roots = 0;
  for (std::size_t p = 0; p < peers; ++p)
    if (!is_root[p]) ++non_roots;
  if (params.subscribers == 0) throw std::invalid_argument("--subscribers must be >= 1");
  if (params.subscribers > non_roots)
    throw std::invalid_argument(
        "not enough non-root peers for --subscribers=" +
        std::to_string(params.subscribers) + " (have " + std::to_string(non_roots) +
        "); raise --peers or lower --groups");
  const std::size_t departures = std::min(params.departures, non_roots);

  // Membership: M distinct non-root subscribers per group, waves in (0, 1).
  util::Rng rng(params.seed ^ 0x736368656475ULL);  // schedule stream
  std::vector<std::vector<overlay::PeerId>> members(params.group_count);
  if (params.local_members) {
    // The M non-root peers nearest each group's rendezvous root, ties by
    // id — deterministic, and every subscribe/publish request routes a
    // handful of neighbourhood hops (see the knob comment above).
    std::vector<std::pair<double, overlay::PeerId>> by_dist;
    for (std::size_t g = 0; g < params.group_count; ++g) {
      const overlay::PeerId root = system.manager().root_of(g);
      by_dist.clear();
      for (overlay::PeerId p = 0; p < peers; ++p)
        if (!is_root[p])
          by_dist.emplace_back(
              geometry::l2_distance_sq(graph.point(p), graph.point(root)), p);
      std::partial_sort(by_dist.begin(),
                        by_dist.begin() + static_cast<std::ptrdiff_t>(params.subscribers),
                        by_dist.end());
      for (std::size_t i = 0; i < params.subscribers; ++i) {
        members[g].push_back(by_dist[i].second);
        system.subscribe_at(rng.uniform(0.0, 1.0), by_dist[i].second, g);
      }
    }
  } else {
    for (std::size_t g = 0; g < params.group_count; ++g) {
      std::vector<bool> chosen(peers, false);
      while (members[g].size() < params.subscribers) {
        const auto p = static_cast<overlay::PeerId>(rng.next_below(peers));
        if (chosen[p] || is_root[p]) continue;
        chosen[p] = true;
        members[g].push_back(p);
        system.subscribe_at(rng.uniform(0.0, 1.0), p, g);
      }
    }
  }

  // Warm publish per group at t=2 (pays the lazy builds), then churn
  // interleaved with publish rounds over t in [3, 9). Publishers that
  // depart before their slot are skipped, so total.publishes reports
  // what actually ran. With --pub-burst=K the remaining publishes are
  // issued in back-to-back bursts of K from one publisher at one instant
  // (the hot-group workload coalescing amortises); K=1 draws the exact
  // historic schedule, one (publisher, time) pair per publish.
  const std::size_t burst = std::max<std::size_t>(params.pub_burst, 1);
  for (std::size_t g = 0; g < params.group_count; ++g) {
    system.publish_at(2.0, members[g][0], g);
    for (std::size_t i = 1; i < params.publishes;) {
      const auto publisher = members[g][rng.next_below(params.subscribers)];
      const double when = rng.uniform(3.0, 9.0);
      const std::size_t count = std::min(burst, params.publishes - i);
      for (std::size_t j = 0; j < count; ++j) system.publish_at(when, publisher, g);
      i += count;
    }
  }
  ScenarioOutcome outcome;
  {
    std::vector<bool> doomed(peers, false);
    while (outcome.scheduled_departures < departures) {
      const auto p = static_cast<overlay::PeerId>(rng.next_below(peers));
      if (doomed[p] || is_root[p]) continue;
      doomed[p] = true;
      system.depart_at(rng.uniform(3.0, 9.0), p);
      ++outcome.scheduled_departures;
    }
  }

  // Mid-wave forwarder kills (groups/failure_injection.hpp): dedicated
  // waves after the churn phase, one group per kill round-robin, each
  // severing the wave's best relay just before the wave reaches it. Kill
  // and flush waves publish from the group's root so the wave start time
  // is exact and the flushes cannot strand in greedy control routing
  // around the fresh departure.
  std::vector<bool> member_anywhere(peers, false);
  for (const auto& group_members : members)
    for (const overlay::PeerId p : group_members) member_anywhere[p] = true;
  // With batching on, a root-published wave buffers for one window before
  // it flushes; the kill must be timed against the flushed start or the
  // relay dies before the wave exists (and the tree repairs around it).
  const double wave_start_delay =
      (params.batch_window > 0.0 && params.max_batch > 1) ? params.batch_window : 0.0;
  for (std::size_t i = 0; i < params.midwave; ++i) {
    const auto g = static_cast<groups::GroupId>(i % params.group_count);
    const double wave_time = 10.0 + 2.0 * static_cast<double>(i);
    const overlay::PeerId root = system.manager().root_of(g);
    system.publish_at(wave_time, root, g);
    groups::schedule_midwave_kill(
        system, g, wave_time, member_anywhere,
        [&outcome](overlay::PeerId, std::size_t severed) {
          ++outcome.midwave_kills;
          outcome.severed_subscribers += severed;
        },
        wave_start_delay);
    system.publish_at(wave_time + 0.5, root, g);  // flushes reveal the gaps
    system.publish_at(wave_time + 1.0, root, g);
  }

  const auto t_run = std::chrono::steady_clock::now();
  outcome.events = system.run();
  outcome.run_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_run).count();
  outcome.total = system.total_stats();
  outcome.net = system.simulator().stats();
  outcome.retained_peak = system.manager().retained_peak();
  outcome.retained_entries = system.manager().retained_entry_total();
  outcome.retained_buffers = system.manager().retained_buffer_count();
  outcome.shard = system.simulator().shard_metrics();
  if (snapshot_json != nullptr) *snapshot_json = sampler->to_json();
  // Pool reset between cells: return the payload pool's cached blocks
  // before the next cell's system constructs, so one cell's high-water
  // mark never sits resident while another cell measures.
  system.release_pools();
  return outcome;
}

int run_sweep(const overlay::OverlayGraph& graph, const ScenarioParams& params,
              bool csv, double overlay_secs) {
  const std::vector<double> loss_axis{0.0, 0.05, 0.15};
  // Kills and severed-subscriber counts are per cell: stochastic loss also
  // drops subscribe control envelopes, so membership — and with it the
  // kill-selection DFS — differs across loss points.
  util::Table table({"loss", "qos", "kills", "severed", "publishes", "delivery_ratio",
                     "retx_per_publish", "duplicates", "abandoned_hops",
                     "payload_per_publish", "ack_msgs", "nacks", "repairs",
                     "escalations", "gaps_abandoned", "mean_gap_latency", "dropped",
                     "run_secs"});
  double qos0_at_5 = -1.0, qos1_at_5 = -1.0, qos2_at_5 = -1.0;
  bool qos1_ok = true, retention_ok = true;
  for (const double loss : loss_axis) {
    for (const auto qos : {multicast::QoS::kFireAndForget, multicast::QoS::kAcked,
                           multicast::QoS::kEndToEnd}) {
      const auto r = run_scenario(graph, params, qos, loss);
      const double ratio = r.total.delivery_ratio();
      table.begin_row()
          .add_number(loss, 2)
          .add_number(static_cast<double>(qos), 0)
          .add_number(static_cast<double>(r.midwave_kills), 0)
          .add_number(static_cast<double>(r.severed_subscribers), 0)
          .add_number(static_cast<double>(r.total.publishes), 0)
          .add_number(ratio, 5)
          .add_number(r.retx_per_publish(), 2)
          .add_number(static_cast<double>(r.total.duplicate_deliveries), 0)
          .add_number(static_cast<double>(r.total.abandoned_hops), 0)
          .add_number(r.payload_per_publish(), 2)
          .add_number(static_cast<double>(r.total.ack_messages), 0)
          .add_number(static_cast<double>(r.total.nacks_sent), 0)
          .add_number(static_cast<double>(r.total.repairs_served), 0)
          .add_number(static_cast<double>(r.total.repair_escalations), 0)
          .add_number(static_cast<double>(r.total.gap_seqs_abandoned), 0)
          .add_number(r.total.mean_gap_latency(), 4)
          .add_number(static_cast<double>(r.net.dropped), 0)
          .add_number(r.run_secs, 3);
      // The QoS 1 per-hop gate covers the link-loss points up to 5%: with
      // mid-wave kills in the workload, QoS 1's ratio also carries the
      // severed subtrees it is blind to by design (the QoS 2 gate's
      // subject), and at 15% loss the two effects mix on small --quick
      // runs. The 15% row still prints for the record.
      if (qos == multicast::QoS::kAcked && loss <= 0.05 && ratio < 0.99)
        qos1_ok = false;
      // Retention bound, two halves: peak occupancy within the window
      // (fails if RetainedBuffer eviction regresses) and aggregate entries
      // within buffers x window (fails if buffers leak entries across
      // peers/groups) — memory O(1) per responder-group pair, not O(waves).
      if (qos == multicast::QoS::kEndToEnd &&
          (r.retained_peak > params.retention_window ||
           r.retained_entries > r.retained_buffers * params.retention_window))
        retention_ok = false;
      if (loss == 0.05) {
        if (qos == multicast::QoS::kFireAndForget) qos0_at_5 = ratio;
        if (qos == multicast::QoS::kAcked) qos1_at_5 = ratio;
        if (qos == multicast::QoS::kEndToEnd) qos2_at_5 = ratio;
      }
    }
  }
  // ISSUE 2 acceptance: at 5% per-link loss QoS 1 holds >= 0.99 while
  // QoS 0 is visibly lower. ISSUE 3 acceptance: with mid-wave forwarder
  // departures QoS 2 holds >= 0.9999 at 5% loss while QoS 1 — blind to a
  // severed subtree — drops below it, and retention stays bounded.
  const bool gap_ok = qos1_at_5 >= 0.99 && qos0_at_5 < qos1_at_5 - 0.01;
  const bool qos2_ok = qos2_at_5 >= 0.9999 && qos1_at_5 < 0.9999;
  const bool all_ok = qos1_ok && gap_ok && qos2_ok && retention_ok;
  if (csv) {
    table.print_csv(std::cout);
    if (!all_ok)
      std::cerr << "pubsub_throughput: sweep acceptance gate failed (qos1_ok="
                << qos1_ok << ", gap_ok=" << gap_ok << ", qos2_ok=" << qos2_ok
                << ", retention_ok=" << retention_ok << ")\n";
  } else {
    std::cout << "=== pub/sub QoS x loss sweep: " << params.group_count << " groups x "
              << params.subscribers << " subscribers on " << graph.size() << " peers, "
              << params.midwave
              << " mid-wave forwarder kill rounds (per-cell kills/severed in the"
                 " table), seed=" << params.seed << " (overlay built in "
              << util::format_number(overlay_secs, 2) << "s) ===\n\n";
    table.print(std::cout);
    std::cout << "\nacceptance: QoS 1 delivery_ratio >= 0.99 at loss points <= 5%: "
              << (qos1_ok ? "PASS" : "FAIL")
              << "\nacceptance: at 5% loss QoS 0 visibly below QoS 1: "
              << (gap_ok ? "PASS" : "FAIL")
              << "\nacceptance: at 5% loss with mid-wave kills QoS 2 >= 0.9999, QoS 1 below: "
              << (qos2_ok ? "PASS" : "FAIL")
              << "\nacceptance: retained-buffer peak <= retention window ("
              << params.retention_window << "): " << (retention_ok ? "PASS" : "FAIL")
              << "\n";
  }
  return all_ok ? 0 : 2;
}

// ---------------------------------------------------------------- JSON ----

/// One scenario cell as a JSON object — the machine-readable slice the
/// perf trajectory (BENCH_pubsub.json) and CI artifacts are built from.
/// Hand-rolled: every value is a number or bool, so no escaping needed.
std::string scenario_json(const ScenarioParams& params, multicast::QoS qos,
                          double loss, const ScenarioOutcome& r) {
  std::ostringstream o;
  o.precision(10);
  o << "{\"qos\":" << static_cast<int>(qos) << ",\"loss\":" << loss
    << ",\"batch_window\":" << params.batch_window
    << ",\"max_batch\":" << params.max_batch
    << ",\"pub_burst\":" << params.pub_burst
    << ",\"publishes\":" << r.total.publishes
    << ",\"delivery_ratio\":" << r.total.delivery_ratio()
    << ",\"deliveries\":" << r.total.deliveries
    << ",\"expected_deliveries\":" << r.total.expected_deliveries
    << ",\"payload_messages\":" << r.total.payload_messages
    << ",\"ack_messages\":" << r.total.ack_messages
    << ",\"nacks_sent\":" << r.total.nacks_sent
    << ",\"retransmissions\":" << r.total.retransmissions
    << ",\"duplicate_deliveries\":" << r.total.duplicate_deliveries
    << ",\"batch_flushes_window\":" << r.total.batch_flushes_window
    << ",\"batch_flushes_full\":" << r.total.batch_flushes_full
    << ",\"mean_batch_occupancy\":" << r.total.mean_batch_occupancy()
    << ",\"envelopes_saved\":" << r.total.envelopes_saved
    << ",\"sim_events\":" << r.events
    << ",\"run_secs\":" << r.run_secs
    // Observability columns (ISSUE 6): latency histograms populate
    // unconditionally (no trace sink required), and the NetworkStats block
    // carries the named sent_by_kind breakdown plus per-peer send/receive
    // hot-peer summaries (max / p99 / mean).
    << ",\"delivery_latency\":" << r.total.delivery_latency.to_json()
    << ",\"gap_repair_latency\":" << r.total.gap_repair_latency.to_json()
    << ",\"graft_latency\":" << r.total.graft_latency.to_json()
    << ",\"net\":" << obs::to_json(r.net) << "}";
  return o.str();
}

std::string params_json(const ScenarioParams& params) {
  std::ostringstream o;
  o.precision(10);
  o << "{\"peers\":" << params.peers << ",\"groups\":" << params.group_count
    << ",\"subscribers\":" << params.subscribers
    << ",\"publishes\":" << params.publishes
    << ",\"departures\":" << params.departures
    << ",\"pub_burst\":" << params.pub_burst
    << ",\"batch_window\":" << params.batch_window
    << ",\"max_batch\":" << params.max_batch
    << ",\"replicas\":" << params.root_replicas
    << ",\"publisher_batch_window\":" << params.publisher_batch_window
    << ",\"graft_prefix_batch\":" << (params.graft_prefix_batch ? "true" : "false")
    << ",\"retention\":" << params.retention_window
    << ",\"seed\":" << params.seed << "}";
  return o.str();
}

void write_json_file(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write --json file: " + path);
  out << body << "\n";
}

// -------------------------------------------------------- batch compare ----

/// The ISSUE 4 acceptance harness: the burst workload at every QoS rung,
/// unbatched vs. batched, gating on bit-identical delivered
/// (peer, group, seq) sets and a >= 3x payload+ack envelope reduction at
/// QoS 1. Churn/kills are off — equivalence is defined on stable
/// membership (a wave in flight to a departing subscriber dies at a
/// slightly different instant under the two pipelines, which is timing,
/// not correctness; the lossy/churny equivalence story lives in
/// tests/groups_batching_test.cpp where a QoS guarantee pins the set).
int run_batch_compare(const overlay::OverlayGraph& graph, ScenarioParams params,
                      bool csv, const std::string& json_path, double overlay_secs) {
  params.departures = 0;
  params.midwave = 0;
  if (params.pub_burst <= 1) params.pub_burst = 8;
  if (params.batch_window <= 0.0) params.batch_window = 0.1;
  util::Table table({"qos", "batched", "publishes", "delivery_ratio", "payload_msgs",
                     "ack_msgs", "payload+ack", "nacks", "retx", "waves", "occupancy",
                     "envelopes_saved", "identical_set", "run_secs"});
  std::ostringstream cells;
  bool all_identical = true;
  double reduction_qos1 = 0.0;
  for (const auto qos : {multicast::QoS::kFireAndForget, multicast::QoS::kAcked,
                         multicast::QoS::kEndToEnd}) {
    ScenarioParams unbatched = params;
    unbatched.batch_window = 0.0;
    std::set<DeliveryKey> set_unbatched, set_batched;
    const auto base = run_scenario(graph, unbatched, qos, 0.0, &set_unbatched);
    const auto coalesced = run_scenario(graph, params, qos, 0.0, &set_batched);
    const bool identical = set_unbatched == set_batched &&
                           base.total.deliveries == set_unbatched.size() &&
                           coalesced.total.deliveries == set_batched.size();
    all_identical = all_identical && identical;
    const auto envelopes = [](const ScenarioOutcome& r) {
      return r.total.payload_messages + r.total.ack_messages;
    };
    if (qos == multicast::QoS::kAcked && envelopes(coalesced) > 0)
      reduction_qos1 = static_cast<double>(envelopes(base)) /
                       static_cast<double>(envelopes(coalesced));
    for (const auto* r : {&base, &coalesced}) {
      const bool batched = r == &coalesced;
      table.begin_row()
          .add_number(static_cast<double>(qos), 0)
          .add_number(batched ? 1 : 0, 0)
          .add_number(static_cast<double>(r->total.publishes), 0)
          .add_number(r->total.delivery_ratio(), 5)
          .add_number(static_cast<double>(r->total.payload_messages), 0)
          .add_number(static_cast<double>(r->total.ack_messages), 0)
          .add_number(static_cast<double>(envelopes(*r)), 0)
          .add_number(static_cast<double>(r->total.nacks_sent), 0)
          .add_number(static_cast<double>(r->total.retransmissions), 0)
          .add_number(static_cast<double>(r->total.batch_flushes_window +
                                          r->total.batch_flushes_full),
                      0)
          .add_number(r->total.mean_batch_occupancy(), 2)
          .add_number(static_cast<double>(r->total.envelopes_saved), 0)
          .add_number(identical ? 1 : 0, 0)
          .add_number(r->run_secs, 3);
      if (cells.tellp() > 0) cells << ",";
      cells << "\n    "
            << scenario_json(batched ? params : unbatched, qos, 0.0, *r);
    }
  }
  const bool reduction_ok = reduction_qos1 >= 3.0;
  const bool all_ok = all_identical && reduction_ok;
  std::ostringstream json;
  json.precision(10);
  json << "{\n  \"bench\": \"pubsub_throughput\",\n  \"mode\": \"batch_compare\",\n"
       << "  \"params\": " << params_json(params) << ",\n  \"cells\": [" << cells.str()
       << "\n  ],\n  \"delivered_sets_identical\": " << (all_identical ? "true" : "false")
       << ",\n  \"payload_ack_reduction_qos1\": " << reduction_qos1
       << ",\n  \"gate_identical\": " << (all_identical ? "true" : "false")
       << ",\n  \"gate_reduction_ge_3x\": " << (reduction_ok ? "true" : "false") << "\n}";
  if (!json_path.empty()) write_json_file(json_path, json.str());
  if (csv) {
    table.print_csv(std::cout);
    if (!all_ok)
      std::cerr << "pubsub_throughput: batch-compare gate failed (identical="
                << all_identical << ", reduction=" << reduction_qos1 << ")\n";
  } else {
    std::cout << "=== batch compare: bursts of " << params.pub_burst << " over "
              << params.group_count << " groups x " << params.subscribers
              << " subscribers on " << graph.size() << " peers, batch_window="
              << params.batch_window << ", max_batch=" << params.max_batch
              << ", seed=" << params.seed << " (overlay built in "
              << util::format_number(overlay_secs, 2) << "s) ===\n\n";
    table.print(std::cout);
    std::cout << "\nacceptance: delivered (peer, group, seq) sets bit-identical at"
                 " QoS 0/1/2: "
              << (all_identical ? "PASS" : "FAIL")
              << "\nacceptance: payload+ack envelopes reduced >= 3x at QoS 1: "
              << (reduction_ok ? "PASS" : "FAIL") << " ("
              << util::format_number(reduction_qos1, 2) << "x)\n";
  }
  return all_ok ? 0 : 2;
}

// ------------------------------------------------------------ graft cost ----

/// One (mode, loss, kills) cell of the graft-cost compare.
struct GraftCell {
  groups::GroupStats total;
  sim::NetworkStats net;
  std::set<DeliveryKey> delivered;
  /// Sorted (parent, child) edge set per group — the bit-identical gate's
  /// subject. Collected from the post-run cached trees (zero-loss cells
  /// end with every cache clean in both modes).
  std::vector<std::vector<std::pair<overlay::PeerId, overlay::PeerId>>> trees;
  bool attached_ok = true;  // every surviving registered member spanned
  std::size_t inflight = 0;
  double run_secs = 0.0;

  [[nodiscard]] double hops_per_graft() const {
    return total.grafts ? static_cast<double>(total.graft_hops) /
                              static_cast<double>(total.grafts)
                        : 0.0;
  }
};

/// The graft-heavy workload: the late half of every group's membership
/// subscribes AFTER the warm publish built the tree, so each one exercises
/// the zone descent; `kills` mid-graft departures land inside the late-
/// subscribe window. Deterministic per (params.seed, routed, loss, kills).
GraftCell run_graft_scenario(const overlay::OverlayGraph& graph,
                             const ScenarioParams& params, bool routed, double loss,
                             std::size_t kills) {
  groups::PubSubConfig config;
  config.seed = params.seed;
  config.routed_graft = routed;
  config.loss.drop_probability = loss;
  config.reliability.qos = multicast::QoS::kAcked;
  config.reliability.ack_timeout = params.ack_timeout;
  config.reliability.max_retries = params.max_retries;
  groups::PubSubSystem system(graph, config);
  GraftCell cell;
  system.set_delivery_probe([&cell](overlay::PeerId peer, groups::GroupId group,
                                    std::uint64_t seq, double) {
    cell.delivered.emplace(peer, group, seq);
  });

  const std::size_t peers = graph.size();
  std::vector<bool> is_root(peers, false);
  for (std::size_t g = 0; g < params.group_count; ++g)
    is_root[system.manager().root_of(g)] = true;

  util::Rng rng(params.seed ^ 0x67726166747363ULL);  // graft-schedule stream
  std::vector<std::vector<overlay::PeerId>> members(params.group_count);
  for (std::size_t g = 0; g < params.group_count; ++g) {
    std::vector<bool> chosen(peers, false);
    while (members[g].size() < params.subscribers) {
      const auto p = static_cast<overlay::PeerId>(rng.next_below(peers));
      if (chosen[p] || is_root[p]) continue;
      chosen[p] = true;
      const std::size_t i = members[g].size();
      members[g].push_back(p);
      // Early half before the warm publish (the lazy build spans them);
      // late half in (3, 5) — every one a graft against the cached tree.
      system.subscribe_at(i < params.subscribers / 2 ? rng.uniform(0.0, 1.0)
                                                     : rng.uniform(3.0, 5.0),
                          p, g);
    }
    system.publish_at(2.0, members[g][0], g);  // warm: pays the build
    for (std::size_t i = 1; i < params.publishes; ++i)
      system.publish_at(rng.uniform(6.0, 9.0),
                        members[g][rng.next_below(params.subscribers / 2)], g);
  }
  {
    std::vector<bool> doomed(peers, false);
    std::size_t scheduled = 0;
    while (scheduled < kills) {
      const auto p = static_cast<overlay::PeerId>(rng.next_below(peers));
      if (doomed[p] || is_root[p]) continue;
      doomed[p] = true;
      system.depart_at(rng.uniform(3.2, 4.8), p);  // inside the graft window
      ++scheduled;
    }
  }

  const auto t_run = std::chrono::steady_clock::now();
  system.run();
  cell.run_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_run).count();
  cell.total = system.total_stats();
  cell.net = system.simulator().stats();
  cell.inflight = system.manager().inflight_graft_count();
  for (std::size_t g = 0; g < params.group_count; ++g) {
    std::vector<std::pair<overlay::PeerId, overlay::PeerId>> edges;
    if (const groups::GroupTree* gt = system.manager().cached_tree(g)) {
      for (overlay::PeerId p = 0; p < peers; ++p)
        if (p != gt->tree.root() && gt->tree.reached(p))
          edges.emplace_back(gt->tree.parent(p), p);
      std::sort(edges.begin(), edges.end());
    }
    cell.trees.push_back(std::move(edges));
  }
  // The attach gate reads REFRESHED trees (an abort defers the subscriber
  // to the next rebuild; tree() performs it) — run after the stats grab so
  // the refresh's builds don't pollute the cell's numbers.
  for (std::size_t g = 0; g < params.group_count; ++g) {
    const groups::GroupTree* gt = system.manager().tree(g);
    if (gt == nullptr) continue;
    for (overlay::PeerId p = 0; p < peers; ++p)
      if (system.manager().alive(p) && system.manager().is_subscribed(g, p) &&
          !(gt->is_subscriber[p] && gt->tree.reached(p)))
        cell.attached_ok = false;
  }
  return cell;
}

std::string graft_cell_json(const char* mode, double loss, std::size_t kills,
                            const GraftCell& cell, bool identical_ok) {
  std::ostringstream o;
  o.precision(10);
  o << "{\"mode\":\"" << mode << "\",\"loss\":" << loss << ",\"kills\":" << kills
    << ",\"subscribes\":" << cell.total.subscribes
    << ",\"grafts\":" << cell.total.grafts
    << ",\"graft_messages\":" << cell.total.graft_messages
    << ",\"graft_hops\":" << cell.total.graft_hops
    << ",\"hops_per_graft\":" << cell.hops_per_graft()
    << ",\"graft_retries\":" << cell.total.graft_retries
    << ",\"graft_aborts\":" << cell.total.graft_aborts
    << ",\"graft_resubscribes\":" << cell.total.graft_resubscribes
    << ",\"stranded_rescues\":" << cell.total.stranded_rescues
    << ",\"control_envelopes\":" << cell.net.control_envelopes
    << ",\"net_graft_hops\":" << cell.net.graft_hops
    << ",\"delivery_ratio\":" << cell.total.delivery_ratio()
    << ",\"identical_to_local\":" << (identical_ok ? "true" : "false")
    << ",\"attached_ok\":" << (cell.attached_ok ? "true" : "false")
    << ",\"inflight_leaked\":" << cell.inflight
    << ",\"run_secs\":" << cell.run_secs
    << ",\"graft_latency\":" << cell.total.graft_latency.to_json()
    << ",\"delivery_latency\":" << cell.total.delivery_latency.to_json()
    << ",\"net\":" << obs::to_json(cell.net) << "}";
  return o.str();
}

/// The ISSUE 5 acceptance harness: per pinned seed (three of them), the
/// local-descent oracle vs the routed descent at zero loss — delivered
/// sets and tree edge sets must be bit-identical, with every routed hop
/// visible in NetworkStats — plus a routed churn cell (5% loss, mid-graft
/// kills) that must leave every surviving registered member attached.
int run_graft_cost(ScenarioParams params, std::size_t dims, bool csv,
                   const std::string& json_path) {
  util::Table table({"seed", "mode", "loss", "kills", "subscribes", "grafts",
                     "graft_msgs", "graft_hops", "hops_per_graft", "retries",
                     "aborts", "resubs", "rescues", "control_env",
                     "delivery_ratio", "identical", "attached", "run_secs"});
  bool identical_ok = true, visible_ok = true, attached_ok = true, leak_ok = true;
  std::ostringstream seeds_json;
  const std::size_t churn_kills = std::max<std::size_t>(params.departures / 4, 2);
  for (std::uint64_t seed = params.seed; seed < params.seed + 3; ++seed) {
    ScenarioParams cell_params = params;
    cell_params.seed = seed;
    util::Rng rng(seed);
    const auto points = geometry::random_points(rng, params.peers, dims, 100.0);
    const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});

    const auto local = run_graft_scenario(graph, cell_params, /*routed=*/false, 0.0, 0);
    const auto routed = run_graft_scenario(graph, cell_params, /*routed=*/true, 0.0, 0);
    const auto churn =
        run_graft_scenario(graph, cell_params, /*routed=*/true, 0.05, churn_kills);

    const bool cell_identical =
        routed.delivered == local.delivered && routed.trees == local.trees &&
        routed.total.grafts == local.total.grafts &&
        routed.total.graft_messages == local.total.graft_messages;
    identical_ok = identical_ok && cell_identical && local.total.grafts > 0;
    visible_ok = visible_ok && routed.total.graft_hops > 0 &&
                 routed.net.control_envelopes > 0 &&
                 routed.net.graft_hops == routed.total.graft_hops &&
                 churn.net.control_envelopes > 0;
    attached_ok = attached_ok && local.attached_ok && routed.attached_ok &&
                  churn.attached_ok;
    leak_ok = leak_ok && routed.inflight == 0 && churn.inflight == 0;

    const struct {
      const char* name;
      const GraftCell* cell;
      double loss;
      std::size_t kills;
      bool identical;
    } rows[] = {{"local", &local, 0.0, 0, true},
                {"routed", &routed, 0.0, 0, cell_identical},
                {"routed+churn", &churn, 0.05, churn_kills, false}};
    for (const auto& row : rows) {
      table.begin_row()
          .add_number(static_cast<double>(seed), 0)
          .add_cell(row.name)
          .add_number(row.loss, 2)
          .add_number(static_cast<double>(row.kills), 0)
          .add_number(static_cast<double>(row.cell->total.subscribes), 0)
          .add_number(static_cast<double>(row.cell->total.grafts), 0)
          .add_number(static_cast<double>(row.cell->total.graft_messages), 0)
          .add_number(static_cast<double>(row.cell->total.graft_hops), 0)
          .add_number(row.cell->hops_per_graft(), 2)
          .add_number(static_cast<double>(row.cell->total.graft_retries), 0)
          .add_number(static_cast<double>(row.cell->total.graft_aborts), 0)
          .add_number(static_cast<double>(row.cell->total.graft_resubscribes), 0)
          .add_number(static_cast<double>(row.cell->total.stranded_rescues), 0)
          .add_number(static_cast<double>(row.cell->net.control_envelopes), 0)
          .add_number(row.cell->total.delivery_ratio(), 5)
          .add_number(row.identical ? 1 : 0, 0)
          .add_number(row.cell->attached_ok ? 1 : 0, 0)
          .add_number(row.cell->run_secs, 3);
    }
    if (seeds_json.tellp() > 0) seeds_json << ",";
    seeds_json << "\n    {\"seed\":" << seed << ",\"cells\":["
               << "\n      " << graft_cell_json("local", 0.0, 0, local, true) << ","
               << "\n      " << graft_cell_json("routed", 0.0, 0, routed, cell_identical)
               << ","
               << "\n      "
               << graft_cell_json("routed+churn", 0.05, churn_kills, churn, false)
               << "\n    ]}";
  }
  const bool all_ok = identical_ok && visible_ok && attached_ok && leak_ok;
  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\n  \"bench\": \"pubsub_throughput\",\n  \"mode\": \"graft_cost\",\n"
         << "  \"params\": " << params_json(params) << ",\n  \"seeds\": ["
         << seeds_json.str() << "\n  ],\n  \"gate_identical\": "
         << (identical_ok ? "true" : "false")
         << ",\n  \"gate_cost_visible\": " << (visible_ok ? "true" : "false")
         << ",\n  \"gate_all_attached\": " << (attached_ok ? "true" : "false")
         << ",\n  \"gate_no_leaked_cursors\": " << (leak_ok ? "true" : "false")
         << "\n}";
    write_json_file(json_path, json.str());
  }
  if (csv) {
    table.print_csv(std::cout);
    if (!all_ok)
      std::cerr << "pubsub_throughput: graft-cost gate failed (identical="
                << identical_ok << ", visible=" << visible_ok << ", attached="
                << attached_ok << ", leaks=" << !leak_ok << ")\n";
  } else {
    std::cout << "=== graft cost: routed vs local descent, " << params.group_count
              << " groups x " << params.subscribers << " subscribers on "
              << params.peers << " peers, late half grafted, seeds "
              << params.seed << ".." << params.seed + 2 << " ===\n\n";
    table.print(std::cout);
    std::cout << "\nacceptance: routed graft bit-identical to local oracle at zero"
                 " loss (trees + delivered sets): "
              << (identical_ok ? "PASS" : "FAIL")
              << "\nacceptance: graft cost visible in NetworkStats"
                 " (control_envelopes, graft_hops): "
              << (visible_ok ? "PASS" : "FAIL")
              << "\nacceptance: all surviving subscribers attached under 5% loss"
                 " + mid-graft kills: "
              << (attached_ok ? "PASS" : "FAIL")
              << "\nacceptance: no leaked in-flight graft cursors: "
              << (leak_ok ? "PASS" : "FAIL") << "\n";
  }
  return all_ok ? 0 : 2;
}

// ---------------------------------------------------------- latency mode ----

/// The ISSUE 6 latency-pinning harness: per pinned seed (three of them, each
/// with its own overlay), the standard workload minus churn at every QoS
/// rung and loss in {0, 0.05}. Churn is off so the publish->delivery
/// distribution is a pure function of the (qos, loss) cell, not of which
/// subscribers happened to die mid-wave. Gates are structural — the
/// histogram quantiles must be ordered, the histogram must have counted
/// every delivery, and the per-peer load summary must be internally
/// consistent — so the pinned JSON (BENCH_latency.json) tracks drift
/// without hard-coding absolute latencies into the binary.
int run_latency(ScenarioParams params, std::size_t dims, bool csv,
                const std::string& json_path) {
  params.departures = 0;
  params.midwave = 0;
  const std::vector<double> loss_axis{0.0, 0.05};
  util::Table table({"seed", "loss", "qos", "publishes", "deliveries",
                     "delivery_ratio", "delivery_p50", "delivery_p90",
                     "delivery_p99", "delivery_max", "gap_p50", "gap_p99",
                     "send_load_max", "send_load_p99", "recv_load_max",
                     "recv_load_p99", "run_secs"});
  bool shape_ok = true, counts_ok = true, load_ok = true;
  std::ostringstream cells;
  for (std::uint64_t seed = params.seed; seed < params.seed + 3; ++seed) {
    ScenarioParams cell_params = params;
    cell_params.seed = seed;
    util::Rng rng(seed);
    const auto points = geometry::random_points(rng, params.peers, dims, 100.0);
    const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
    for (const double loss : loss_axis) {
      for (const auto qos : {multicast::QoS::kFireAndForget, multicast::QoS::kAcked,
                             multicast::QoS::kEndToEnd}) {
        const auto r = run_scenario(graph, cell_params, qos, loss);
        const auto& h = r.total.delivery_latency;
        shape_ok = shape_ok && h.p50() <= h.p90() && h.p90() <= h.p99() &&
                   h.p99() <= h.max();
        counts_ok = counts_ok && h.count() > 0 && h.p50() > 0.0 &&
                    h.count() == r.total.deliveries;
        const auto send = obs::summarize_load(r.net.sent_by_node);
        const auto recv = obs::summarize_load(r.net.received_by_node);
        load_ok = load_ok && send.max >= send.p99 && recv.max >= recv.p99 &&
                  send.max > 0;
        table.begin_row()
            .add_number(static_cast<double>(seed), 0)
            .add_number(loss, 2)
            .add_number(static_cast<double>(qos), 0)
            .add_number(static_cast<double>(r.total.publishes), 0)
            .add_number(static_cast<double>(r.total.deliveries), 0)
            .add_number(r.total.delivery_ratio(), 5)
            .add_number(h.p50(), 4)
            .add_number(h.p90(), 4)
            .add_number(h.p99(), 4)
            .add_number(h.max(), 4)
            .add_number(r.total.gap_repair_latency.p50(), 4)
            .add_number(r.total.gap_repair_latency.p99(), 4)
            .add_number(static_cast<double>(send.max), 0)
            .add_number(static_cast<double>(send.p99), 0)
            .add_number(static_cast<double>(recv.max), 0)
            .add_number(static_cast<double>(recv.p99), 0)
            .add_number(r.run_secs, 3);
        if (cells.tellp() > 0) cells << ",";
        cells << "\n    {\"seed\":" << seed << ","
              << scenario_json(cell_params, qos, loss, r).substr(1);
      }
    }
  }
  const bool all_ok = shape_ok && counts_ok && load_ok;
  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\n  \"bench\": \"pubsub_throughput\",\n  \"mode\": \"latency\",\n"
         << "  \"params\": " << params_json(params) << ",\n  \"cells\": ["
         << cells.str() << "\n  ],\n  \"gate_quantiles_ordered\": "
         << (shape_ok ? "true" : "false")
         << ",\n  \"gate_histogram_counts_deliveries\": "
         << (counts_ok ? "true" : "false")
         << ",\n  \"gate_load_summary_consistent\": " << (load_ok ? "true" : "false")
         << "\n}";
    write_json_file(json_path, json.str());
  }
  if (csv) {
    table.print_csv(std::cout);
    if (!all_ok)
      std::cerr << "pubsub_throughput: latency gate failed (shape=" << shape_ok
                << ", counts=" << counts_ok << ", load=" << load_ok << ")\n";
  } else {
    std::cout << "=== publish->delivery latency: " << params.group_count
              << " groups x " << params.subscribers << " subscribers on "
              << params.peers << " peers, QoS {0,1,2} x loss {0, 0.05}, seeds "
              << params.seed << ".." << params.seed + 2 << " (churn off) ===\n\n";
    table.print(std::cout);
    std::cout << "\nacceptance: p50 <= p90 <= p99 <= max in every cell: "
              << (shape_ok ? "PASS" : "FAIL")
              << "\nacceptance: histogram count == deliveries, p50 > 0: "
              << (counts_ok ? "PASS" : "FAIL")
              << "\nacceptance: per-peer load summaries consistent (max >= p99 > 0): "
              << (load_ok ? "PASS" : "FAIL") << "\n";
  }
  return all_ok ? 0 : 2;
}

// ------------------------------------------------------------- root kill ----

/// One cell of the failover compare: the root-kill workload with warm
/// failover on or off, or its no-kill control.
struct FailoverCell {
  groups::GroupStats total;
  sim::NetworkStats net;
  std::size_t kills = 0;    // groups whose kill found a relay to sever
  std::size_t severed = 0;  // subscriber descendants cut off by relays
  std::set<DeliveryKey> delivered;
  /// Mean secs from a group's root death to its first delivery of a seq
  /// NEWER than the killed wave (in-flight tail deliveries of the killed
  /// wave and repairs of it don't count as "resumed service").
  double first_post_kill = -1.0;
  double run_secs = 0.0;
};

/// The failover workload, shared by all four cells of a seed. Per group:
/// two warm-up waves (build the tree, initialize the subscriber windows),
/// a killed wave at a staggered kill time, one publish landing INSIDE the
/// successor batch window (so the root dies holding a pending batch —
/// lost cold, inherited warm), and two post-kill publishes from a
/// surviving member whose waves reveal the severed subtree's gap. With
/// `kill_on`, schedule_root_kill severs the wave's best relay mid-flight
/// and departs the root right after the flush; victim selection excludes
/// roots, subscribers, and every group's replica candidate, so the cold
/// and warm cells kill identical peers and the successor survives.
FailoverCell run_failover_cell(const overlay::OverlayGraph& graph,
                               const ScenarioParams& params, bool warm_on,
                               bool kill_on) {
  groups::PubSubConfig config;
  config.seed = params.seed;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.reliability.ack_timeout = params.ack_timeout;
  config.reliability.max_retries = params.max_retries;
  config.groups.retention_window = params.retention_window;
  config.batch_window = params.batch_window;
  config.max_batch = params.max_batch;
  config.warm_failover = warm_on;
  groups::PubSubSystem system(graph, config);
  FailoverCell cell;

  const std::size_t peers = graph.size();
  std::vector<bool> protected_peers(peers, false);
  for (std::size_t g = 0; g < params.group_count; ++g) {
    protected_peers[system.manager().root_of(g)] = true;
    const overlay::PeerId r = system.manager().replica_candidate(g);
    if (r != overlay::kInvalidPeer) protected_peers[r] = true;
  }

  // The killed wave is always seq 2 (two single-publish warm-up batches
  // precede it); deliveries of seq > 2 after the death mark resumed
  // service — warm via the inherited pending batch, cold only once the
  // post-kill publishes flow.
  constexpr std::uint64_t kKilledSeq = 2;
  std::vector<double> death_at(params.group_count, -1.0);
  std::vector<double> first_after(params.group_count, -1.0);
  system.set_delivery_probe(
      [&cell, &death_at, &first_after](overlay::PeerId p, groups::GroupId g,
                                       std::uint64_t seq, double t) {
        cell.delivered.emplace(p, g, seq);
        if (g < death_at.size() && death_at[g] >= 0.0 && seq > kKilledSeq &&
            t > death_at[g] && first_after[g] < 0.0)
          first_after[g] = t - death_at[g];
      });

  // Membership: M distinct unprotected subscribers per group, waves in
  // (0, 1). Replica candidates stay out of membership so a promotion
  // never turns a subscriber into its own group's root.
  util::Rng rng(params.seed ^ 0x6661696c6f766572ULL);  // failover stream
  std::vector<std::vector<overlay::PeerId>> members(params.group_count);
  for (std::size_t g = 0; g < params.group_count; ++g) {
    std::vector<bool> chosen(peers, false);
    while (members[g].size() < params.subscribers) {
      const auto p = static_cast<overlay::PeerId>(rng.next_below(peers));
      if (chosen[p] || protected_peers[p]) continue;
      chosen[p] = true;
      members[g].push_back(p);
      system.subscribe_at(rng.uniform(0.0, 1.0), p, g);
    }
  }
  // Members join the protected set only after selection (cross-group
  // membership overlap stays allowed); the injector reads the vector at
  // kill-selection time, so all groups' members are excluded everywhere.
  for (const auto& group_members : members)
    for (const overlay::PeerId p : group_members) protected_peers[p] = true;

  // Batching is forced on in this mode: the wave leaves the root one
  // batch window after the publish lands, and the root death trails the
  // flush far enough for the pending publish's replica sync (one publish
  // delay + one network latency) to land first.
  const double wave_start_delay = params.batch_window;
  const double kRootKillDelay = 0.04;
  for (std::size_t g = 0; g < params.group_count; ++g) {
    const overlay::PeerId root = system.manager().root_of(g);
    const auto group = static_cast<groups::GroupId>(g);
    const double kill_time = 10.0 + 2.0 * static_cast<double>(g);
    system.publish_at(2.0, root, group);
    system.publish_at(2.3, root, group);
    system.publish_at(kill_time, root, group);  // the killed wave
    // Lands after the killed wave's flush, before the root death: dies
    // pending in the root's fresh batch.
    system.publish_at(kill_time + wave_start_delay + 0.01, root, group);
    if (kill_on) {
      groups::schedule_root_kill(
          system, group, kill_time, protected_peers,
          [&cell, &death_at, g, kill_time, wave_start_delay, kRootKillDelay](
              overlay::PeerId, overlay::PeerId, std::size_t severed) {
            ++cell.kills;
            cell.severed += severed;
            death_at[g] = kill_time + wave_start_delay + kRootKillDelay;
          },
          wave_start_delay, kRootKillDelay);
    }
    system.publish_at(kill_time + 1.0, members[g][0], group);
    system.publish_at(kill_time + 1.3, members[g][0], group);
  }

  const auto t_run = std::chrono::steady_clock::now();
  system.run();
  cell.run_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_run).count();
  cell.total = system.total_stats();
  cell.net = system.simulator().stats();
  double sum = 0.0;
  std::size_t counted = 0;
  for (std::size_t g = 0; g < params.group_count; ++g)
    if (death_at[g] >= 0.0 && first_after[g] >= 0.0) {
      sum += first_after[g];
      ++counted;
    }
  if (counted > 0) cell.first_post_kill = sum / static_cast<double>(counted);
  return cell;
}

std::string failover_cell_json(const char* name, bool warm_on, bool kill_on,
                               const FailoverCell& r) {
  std::ostringstream o;
  o.precision(10);
  o << "{\"cell\":\"" << name << "\",\"warm_failover\":" << (warm_on ? "true" : "false")
    << ",\"kill\":" << (kill_on ? "true" : "false") << ",\"kills\":" << r.kills
    << ",\"severed_subscribers\":" << r.severed
    << ",\"publishes\":" << r.total.publishes
    << ",\"deliveries\":" << r.total.deliveries
    << ",\"expected_deliveries\":" << r.total.expected_deliveries
    << ",\"delivery_ratio\":" << r.total.delivery_ratio()
    << ",\"gap_seqs_detected\":" << r.total.gap_seqs_detected
    << ",\"gap_seqs_repaired\":" << r.total.gap_seqs_repaired
    << ",\"gap_seqs_abandoned\":" << r.total.gap_seqs_abandoned
    << ",\"batch_publishes_lost\":" << r.total.batch_publishes_lost
    << ",\"pending_publishes_inherited\":" << r.total.pending_publishes_inherited
    << ",\"warm_promotions\":" << r.total.warm_promotions
    << ",\"root_migrations\":" << r.total.root_migrations
    << ",\"replica_sync_envelopes\":" << r.total.replica_sync_envelopes
    << ",\"replica_sync_retries\":" << r.total.replica_sync_retries
    << ",\"migration_envelopes\":" << r.total.migration_envelopes
    << ",\"heartbeats_sent\":" << r.total.heartbeats_sent
    << ",\"time_to_first_post_kill_delivery\":" << r.first_post_kill
    << ",\"run_secs\":" << r.run_secs << ",\"net\":" << obs::to_json(r.net) << "}";
  return o.str();
}

/// The failover acceptance harness: per pinned seed, the root-kill
/// workload cold vs warm plus a no-kill control pair, gating on the cold
/// dip, the warm zero-dip with a priced handoff, warm's strictly faster
/// post-kill first delivery, and no-kill bit-identity.
int run_root_kill(ScenarioParams params, std::size_t dims, bool csv,
                  const std::string& json_path) {
  params.departures = 0;
  params.midwave = 0;
  if (params.batch_window <= 0.0) params.batch_window = 0.05;
  if (params.max_batch <= 1) params.max_batch = 16;
  util::Table table({"seed", "cell", "kills", "severed", "publishes",
                     "delivery_ratio", "gaps_abandoned", "batch_lost", "inherited",
                     "promotions", "repl_sync", "migr_env", "first_delivery",
                     "run_secs"});
  bool kills_ok = true, cold_ok = true, warm_ok = true, ttf_ok = true,
       identity_ok = true;
  std::ostringstream seeds_json;
  for (std::uint64_t seed = params.seed; seed < params.seed + 3; ++seed) {
    ScenarioParams cell_params = params;
    cell_params.seed = seed;
    util::Rng rng(seed);
    const auto points = geometry::random_points(rng, params.peers, dims, 100.0);
    const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});

    const auto cold = run_failover_cell(graph, cell_params, /*warm_on=*/false,
                                        /*kill_on=*/true);
    const auto warm = run_failover_cell(graph, cell_params, /*warm_on=*/true,
                                        /*kill_on=*/true);
    const auto base_cold = run_failover_cell(graph, cell_params, /*warm_on=*/false,
                                             /*kill_on=*/false);
    const auto base_warm = run_failover_cell(graph, cell_params, /*warm_on=*/true,
                                             /*kill_on=*/false);

    // Identical victims (and the same skipped-publisher schedule) across
    // the cells, and the same migrations.
    kills_ok = kills_ok && cold.kills > 0 && cold.kills == warm.kills &&
               cold.severed == warm.severed &&
               cold.total.publishes == warm.total.publishes &&
               warm.total.root_migrations == cold.total.root_migrations;
    // Cold rebuild: the migrated-to root's empty RetainedBuffer abandons
    // the severed subtree's repairs, and pending batches die with their
    // roots — a measurable dip, with zero replication traffic.
    cold_ok = cold_ok && cold.total.gap_seqs_abandoned > 0 &&
              cold.total.deliveries < cold.total.expected_deliveries &&
              cold.total.batch_publishes_lost > 0 &&
              cold.total.pending_publishes_inherited == 0 &&
              cold.total.replica_sync_envelopes == 0 &&
              cold.total.migration_envelopes == 0;
    // Warm failover: zero dip, pending batches inherited instead of lost,
    // at least one promotion per kill (two groups can rendezvous to the
    // SAME root peer, so one death may promote several groups — and a kill
    // staged against an already-migrated group decapitates the successor,
    // promoting the group twice), and the handoff priced in migration
    // envelopes.
    warm_ok = warm_ok && warm.total.deliveries == warm.total.expected_deliveries &&
              warm.total.gap_seqs_abandoned == 0 &&
              warm.total.batch_publishes_lost == 0 &&
              warm.total.pending_publishes_inherited > 0 &&
              warm.total.warm_promotions >= warm.kills &&
              warm.total.replica_sync_envelopes > 0 &&
              warm.total.migration_envelopes > 0;
    ttf_ok = ttf_ok && warm.first_post_kill >= 0.0 && cold.first_post_kill >= 0.0 &&
             warm.first_post_kill < cold.first_post_kill;
    // The knob-oracle guarantee at bench scale: with nobody dying, warm
    // replication is pure extra traffic — delivered sets bit-identical.
    identity_ok = identity_ok && base_cold.delivered == base_warm.delivered &&
                  base_cold.total.deliveries == base_cold.delivered.size() &&
                  base_warm.total.deliveries == base_warm.delivered.size() &&
                  base_warm.total.replica_sync_envelopes > 0 &&
                  base_cold.total.replica_sync_envelopes == 0;

    const struct {
      const char* name;
      const FailoverCell* cell;
      bool warm;
      bool kill;
    } rows[] = {{"cold+kill", &cold, false, true},
                {"warm+kill", &warm, true, true},
                {"cold", &base_cold, false, false},
                {"warm", &base_warm, true, false}};
    for (const auto& row : rows) {
      table.begin_row()
          .add_number(static_cast<double>(seed), 0)
          .add_cell(row.name)
          .add_number(static_cast<double>(row.cell->kills), 0)
          .add_number(static_cast<double>(row.cell->severed), 0)
          .add_number(static_cast<double>(row.cell->total.publishes), 0)
          .add_number(row.cell->total.delivery_ratio(), 5)
          .add_number(static_cast<double>(row.cell->total.gap_seqs_abandoned), 0)
          .add_number(static_cast<double>(row.cell->total.batch_publishes_lost), 0)
          .add_number(static_cast<double>(row.cell->total.pending_publishes_inherited),
                      0)
          .add_number(static_cast<double>(row.cell->total.warm_promotions), 0)
          .add_number(static_cast<double>(row.cell->total.replica_sync_envelopes), 0)
          .add_number(static_cast<double>(row.cell->total.migration_envelopes), 0)
          .add_number(row.cell->first_post_kill, 4)
          .add_number(row.cell->run_secs, 3);
    }
    if (seeds_json.tellp() > 0) seeds_json << ",";
    seeds_json << "\n    {\"seed\":" << seed << ",\"cells\":[";
    bool first = true;
    for (const auto& row : rows) {
      if (!first) seeds_json << ",";
      first = false;
      seeds_json << "\n      "
                 << failover_cell_json(row.name, row.warm, row.kill, *row.cell);
    }
    seeds_json << "\n    ]}";
  }
  const bool all_ok = kills_ok && cold_ok && warm_ok && ttf_ok && identity_ok;
  if (!json_path.empty()) {
    std::ostringstream json;
    json << "{\n  \"bench\": \"pubsub_throughput\",\n  \"mode\": \"root_kill\",\n"
         << "  \"params\": " << params_json(params) << ",\n  \"seeds\": ["
         << seeds_json.str() << "\n  ],\n  \"gate_kills_consistent\": "
         << (kills_ok ? "true" : "false")
         << ",\n  \"gate_cold_dip\": " << (cold_ok ? "true" : "false")
         << ",\n  \"gate_warm_zero_dip\": " << (warm_ok ? "true" : "false")
         << ",\n  \"gate_warm_faster_first_delivery\": " << (ttf_ok ? "true" : "false")
         << ",\n  \"gate_no_kill_identical\": " << (identity_ok ? "true" : "false")
         << "\n}";
    write_json_file(json_path, json.str());
  }
  if (csv) {
    table.print_csv(std::cout);
    if (!all_ok)
      std::cerr << "pubsub_throughput: root-kill gate failed (kills=" << kills_ok
                << ", cold_dip=" << cold_ok << ", warm_zero_dip=" << warm_ok
                << ", first_delivery=" << ttf_ok << ", identical=" << identity_ok
                << ")\n";
  } else {
    std::cout << "=== root-kill failover: cold rebuild vs warm failover, "
              << params.group_count << " groups x " << params.subscribers
              << " subscribers on " << params.peers << " peers, QoS 2, batch_window="
              << params.batch_window << ", seeds " << params.seed << ".."
              << params.seed + 2 << " ===\n\n";
    table.print(std::cout);
    std::cout << "\nacceptance: cold and warm cells kill identical victims: "
              << (kills_ok ? "PASS" : "FAIL")
              << "\nacceptance: cold rebuild shows the dip (abandons, ratio < 1,"
                 " pending batch lost): "
              << (cold_ok ? "PASS" : "FAIL")
              << "\nacceptance: warm failover erases it (ratio == 1, zero abandons,"
                 " batch inherited, handoff priced): "
              << (warm_ok ? "PASS" : "FAIL")
              << "\nacceptance: warm resumes deliveries faster after the kill: "
              << (ttf_ok ? "PASS" : "FAIL")
              << "\nacceptance: no-kill delivered sets bit-identical warm vs cold: "
              << (identity_ok ? "PASS" : "FAIL") << "\n";
  }
  return all_ok ? 0 : 2;
}

// ------------------------------------------------------------- sim core ----

/// Deterministic slice of a run — everything that must be bit-identical
/// across the sim_core knob. run_secs and events/sec are measurement, not
/// behaviour, so they live outside this string.
std::string core_stats_json(const ScenarioOutcome& r) {
  std::string json = obs::to_json(r.total);
  json += '\n';
  json += obs::to_json(r.net);
  return json;
}

struct SimCoreCell {
  std::string name;
  std::size_t peers = 0;
  double overlay_secs = 0.0;
  ScenarioOutcome fast;
  ScenarioOutcome oracle;
  bool delivered_identical = false;
  bool stats_identical = false;
  bool events_identical = false;

  [[nodiscard]] bool identical() const {
    return delivered_identical && stats_identical && events_identical;
  }
  [[nodiscard]] static double events_per_sec(const ScenarioOutcome& r) {
    return r.run_secs > 0.0 ? static_cast<double>(r.events) / r.run_secs : 0.0;
  }
};

/// Runs one workload cell with sim_core on and off on the same overlay and
/// checks the fast path is bit-passive: identical delivered
/// (peer, group, seq) sets, byte-identical counter JSON, equal event count.
SimCoreCell run_simcore_cell(const std::string& name,
                             const overlay::OverlayGraph& graph,
                             ScenarioParams params, multicast::QoS qos, double loss,
                             double overlay_secs) {
  SimCoreCell cell;
  cell.name = name;
  cell.peers = graph.size();
  cell.overlay_secs = overlay_secs;
  std::set<DeliveryKey> fast_set, oracle_set;
  params.sim_core = true;
  cell.fast = run_scenario(graph, params, qos, loss, &fast_set);
  params.sim_core = false;
  cell.oracle = run_scenario(graph, params, qos, loss, &oracle_set);
  cell.delivered_identical = fast_set == oracle_set && !fast_set.empty();
  cell.stats_identical = core_stats_json(cell.fast) == core_stats_json(cell.oracle);
  cell.events_identical = cell.fast.events == cell.oracle.events;
  return cell;
}

/// One shard count's run in a scaling cell, plus its equivalence verdicts
/// against the shards=1 oracle of the same cell.
struct ShardScaleCell {
  std::size_t shards = 1;
  ScenarioOutcome outcome;
  std::set<DeliveryKey> delivered;
  bool delivered_identical = true;
  bool stats_identical = true;
  bool events_identical = true;

  [[nodiscard]] bool identical() const {
    return delivered_identical && stats_identical && events_identical;
  }
};

/// Runs one workload across a shard-count axis on the same overlay.
/// shards = 1 is the untouched classic loop and serves as the oracle every
/// other count is compared against — delivered sets, stats JSON, event
/// counts all bit-identical, with events/sec and barrier accounting
/// reported per count for the scaling trajectory.
std::vector<ShardScaleCell> run_shard_scaling(const overlay::OverlayGraph& graph,
                                              ScenarioParams params,
                                              multicast::QoS qos, double loss,
                                              const std::vector<std::size_t>& axis) {
  std::vector<ShardScaleCell> cells;
  for (const std::size_t shards : axis) {
    ShardScaleCell cell;
    cell.shards = shards;
    params.sim_shards = shards;
    cell.outcome = run_scenario(graph, params, qos, loss, &cell.delivered);
    if (!cells.empty()) {
      const ShardScaleCell& oracle = cells.front();
      cell.delivered_identical =
          cell.delivered == oracle.delivered && !cell.delivered.empty();
      cell.stats_identical =
          core_stats_json(cell.outcome) == core_stats_json(oracle.outcome);
      cell.events_identical = cell.outcome.events == oracle.outcome.events;
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::string shard_cell_json(const std::string& name, const ShardScaleCell& cell,
                            double baseline_events_per_sec) {
  std::ostringstream json;
  json.precision(10);
  const double rate = SimCoreCell::events_per_sec(cell.outcome);
  json << "{\"cell\":\"" << name << "\",\"shards\":" << cell.shards
       << ",\"sim_events\":" << cell.outcome.events << ",\"run_secs\":"
       << cell.outcome.run_secs << ",\"events_per_sec\":" << rate
       << ",\"speedup_vs_1\":"
       << (baseline_events_per_sec > 0.0 ? rate / baseline_events_per_sec : 0.0)
       << ",\"delivered_identical\":" << (cell.delivered_identical ? "true" : "false")
       << ",\"stats_identical\":" << (cell.stats_identical ? "true" : "false")
       << ",\"events_identical\":" << (cell.events_identical ? "true" : "false")
       << ",\"windows\":" << cell.outcome.shard.windows
       << ",\"instants\":" << cell.outcome.shard.instants
       << ",\"barrier_wait_secs\":" << cell.outcome.shard.barrier_wait_seconds
       << ",\"lane_events\":[";
  for (std::size_t i = 0; i < cell.outcome.shard.lane_events.size(); ++i) {
    if (i > 0) json << ",";
    json << cell.outcome.shard.lane_events[i];
  }
  json << "]}";
  return json.str();
}

/// The ISSUE tentpole acceptance harness: the 1000-peer QoS 1 batched gate
/// cell on the full-knowledge overlay, plus a 100k-peer sweep cell on a
/// grid-kNN local-knowledge overlay (build_equilibrium is O(n^2) selector
/// input — a 100k full-knowledge build alone would blow the CI budget; the
/// fast-vs-oracle comparison runs both modes on the SAME overlay, so the
/// equivalence gate is unaffected by how the overlay was built). Gates on
/// bit-identical delivered sets, byte-identical stats JSON, and equal
/// sim_events in every cell; reports events/sec per mode for the
/// regression trajectory (BENCH_simcore.json).
///
/// Two shard-scaling cells ride along: the 100k sweep overlay and a dense
/// 10k-peer cell (heavier per-peer traffic), each swept over the
/// sim_shards axis with shards=1 as the oracle. The >= 2.5x speedup target
/// at 4 shards only gates when the host has >= 4 hardware threads — on
/// smaller runners the numbers are recorded, honestly slower and all, and
/// the bit-identity gates still apply.
int run_simcore(ScenarioParams params, std::size_t dims, multicast::QoS qos,
                double loss, bool csv, const std::string& json_path,
                std::size_t sweep_peers, std::size_t knn_k,
                std::size_t max_shards, std::size_t dense_peers) {
  std::vector<SimCoreCell> cells;
  {
    util::Rng rng(params.seed);
    const auto points = geometry::random_points(rng, params.peers, dims, 100.0);
    const auto t0 = std::chrono::steady_clock::now();
    const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    cells.push_back(run_simcore_cell("gate1k", graph, params, qos, loss, secs));
  }
  if (sweep_peers > 0) {
    ScenarioParams sweep = params;
    sweep.peers = sweep_peers;
    // Few publishes: the sweep cell exists to push peer-count-proportional
    // state (window slots, dedup tables, wheel occupancy) to 100k within
    // the CI budget, not to maximise wave traffic.
    sweep.publishes = std::min<std::size_t>(sweep.publishes, 8);
    sweep.local_members = true;
    util::Rng rng(params.seed + 1);
    const auto points = geometry::random_points(rng, sweep.peers, dims, 100.0);
    const auto t0 = std::chrono::steady_clock::now();
    const auto graph =
        overlay::build_equilibrium_local(points, overlay::EmptyRectSelector{}, knn_k);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    cells.push_back(run_simcore_cell("sweep100k", graph, sweep, qos, loss, secs));
  }

  // Shard-scaling cell: dense 10k-peer grid-kNN overlay, the full
  // publish/churn workload, swept over the sim_shards axis.
  std::vector<std::size_t> shard_axis{1, 2, 4};
  if (max_shards > 0) shard_axis.push_back(max_shards);
  std::sort(shard_axis.begin(), shard_axis.end());
  shard_axis.erase(std::unique(shard_axis.begin(), shard_axis.end()),
                   shard_axis.end());
  std::vector<ShardScaleCell> dense_cells;
  double dense_overlay_secs = 0.0;
  if (dense_peers > 0) {
    ScenarioParams dense = params;
    dense.peers = dense_peers;
    dense.local_members = true;
    // Unbatched: coalescing would shrink the workload to a few dozen
    // events per window, starving the worker lanes. The scaling cell
    // wants every publish to be its own wave — dense traffic is the
    // regime sharding exists for.
    dense.batch_window = 0.0;
    util::Rng rng(params.seed + 2);
    const auto points = geometry::random_points(rng, dense.peers, dims, 100.0);
    const auto t0 = std::chrono::steady_clock::now();
    const auto graph =
        overlay::build_equilibrium_local(points, overlay::EmptyRectSelector{}, knn_k);
    dense_overlay_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    dense_cells = run_shard_scaling(graph, dense, qos, loss, shard_axis);
  }

  bool delivered_ok = true, stats_ok = true, events_ok = true;
  util::Table table({"cell", "peers", "overlay_secs", "mode", "events", "run_secs",
                     "events_per_sec", "delivery_ratio", "identical"});
  std::ostringstream cells_json;
  cells_json.precision(10);
  for (const auto& cell : cells) {
    delivered_ok = delivered_ok && cell.delivered_identical;
    stats_ok = stats_ok && cell.stats_identical;
    events_ok = events_ok && cell.events_identical;
    const struct {
      const char* mode;
      const ScenarioOutcome* r;
    } rows[] = {{"fast", &cell.fast}, {"oracle", &cell.oracle}};
    for (const auto& row : rows) {
      table.begin_row()
          .add_cell(cell.name)
          .add_number(static_cast<double>(cell.peers), 0)
          .add_number(cell.overlay_secs, 3)
          .add_cell(row.mode)
          .add_number(static_cast<double>(row.r->events), 0)
          .add_number(row.r->run_secs, 4)
          .add_number(SimCoreCell::events_per_sec(*row.r), 0)
          .add_number(row.r->total.delivery_ratio(), 5)
          .add_cell(cell.identical() ? "yes" : "NO");
    }
    if (cells_json.tellp() > 0) cells_json << ",";
    cells_json << "\n    {\"cell\":\"" << cell.name << "\",\"peers\":" << cell.peers
               << ",\"overlay_secs\":" << cell.overlay_secs
               << ",\"sim_events\":" << cell.fast.events
               << ",\"events_per_sec_fast\":" << SimCoreCell::events_per_sec(cell.fast)
               << ",\"events_per_sec_oracle\":"
               << SimCoreCell::events_per_sec(cell.oracle)
               << ",\"delivered_identical\":"
               << (cell.delivered_identical ? "true" : "false")
               << ",\"stats_identical\":" << (cell.stats_identical ? "true" : "false")
               << ",\"events_identical\":" << (cell.events_identical ? "true" : "false")
               << ",\n     \"fast\":" << scenario_json(params, qos, loss, cell.fast)
               << ",\n     \"oracle\":" << scenario_json(params, qos, loss, cell.oracle)
               << "}";
  }
  // Shard gates: bit-identity holds unconditionally; the speedup target
  // only applies when the host can actually run 4 workers in parallel.
  bool shard_ok = true;
  double speedup_at4 = 0.0;
  const unsigned hw_threads = std::max(1u, std::thread::hardware_concurrency());
  util::Table shard_table({"cell", "shards", "events", "run_secs", "events_per_sec",
                           "speedup_vs_1", "windows", "barrier_wait_secs",
                           "identical"});
  std::ostringstream shard_json;
  shard_json.precision(10);
  const double dense_base =
      dense_cells.empty() ? 0.0 : SimCoreCell::events_per_sec(dense_cells.front().outcome);
  for (const auto& cell : dense_cells) {
    shard_ok = shard_ok && cell.identical();
    const double rate = SimCoreCell::events_per_sec(cell.outcome);
    if (cell.shards == 4 && dense_base > 0.0) speedup_at4 = rate / dense_base;
    shard_table.begin_row()
        .add_cell("dense10k")
        .add_number(static_cast<double>(cell.shards), 0)
        .add_number(static_cast<double>(cell.outcome.events), 0)
        .add_number(cell.outcome.run_secs, 4)
        .add_number(rate, 0)
        .add_number(dense_base > 0.0 ? rate / dense_base : 0.0, 3)
        .add_number(static_cast<double>(cell.outcome.shard.windows), 0)
        .add_number(cell.outcome.shard.barrier_wait_seconds, 4)
        .add_cell(cell.identical() ? "yes" : "NO");
    if (shard_json.tellp() > 0) shard_json << ",";
    shard_json << "\n    " << shard_cell_json("dense10k", cell, dense_base);
  }
  const bool scaling_applicable = hw_threads >= 4 && speedup_at4 > 0.0;
  const bool scaling_ok = !scaling_applicable || speedup_at4 >= 2.5;
  const bool all_ok = delivered_ok && stats_ok && events_ok && shard_ok && scaling_ok;
  if (!json_path.empty()) {
    std::ostringstream json;
    json.precision(10);
    json << "{\n  \"bench\": \"pubsub_throughput\",\n  \"mode\": \"simcore\",\n"
         << "  \"params\": " << params_json(params) << ",\n  \"cells\": ["
         << cells_json.str() << "\n  ],\n  \"shard_cells\": ["
         << shard_json.str() << "\n  ],\n  \"dense_overlay_secs\": "
         << dense_overlay_secs << ",\n  \"hardware_threads\": " << hw_threads
         << ",\n  \"shard_speedup_at4\": " << speedup_at4
         << ",\n  \"gate_delivered_identical\": "
         << (delivered_ok ? "true" : "false")
         << ",\n  \"gate_stats_identical\": " << (stats_ok ? "true" : "false")
         << ",\n  \"gate_events_identical\": " << (events_ok ? "true" : "false")
         << ",\n  \"gate_shard_identical\": " << (shard_ok ? "true" : "false")
         << ",\n  \"gate_shard_scaling\": " << (scaling_ok ? "true" : "false")
         << ",\n  \"shard_scaling_gated\": "
         << (scaling_applicable ? "true" : "false") << "\n}";
    write_json_file(json_path, json.str());
  }
  if (csv) {
    table.print_csv(std::cout);
    shard_table.print_csv(std::cout);
  } else {
    std::cout << "=== pub/sub simulator-core equivalence: fast path vs heap/set"
                 " oracle, qos=" << static_cast<int>(qos) << ", loss=" << loss
              << ", seed " << params.seed << " ===\n\n";
    table.print(std::cout);
    if (!dense_cells.empty()) {
      std::cout << "\n=== sharded event loop scaling: dense 10k cell, shards=1"
                   " oracle, " << hw_threads << " hardware thread(s) ===\n\n";
      shard_table.print(std::cout);
    }
    std::cout << "\nacceptance: delivered (peer, group, seq) sets bit-identical: "
              << (delivered_ok ? "PASS" : "FAIL")
              << "\nacceptance: GroupStats+NetworkStats JSON byte-identical: "
              << (stats_ok ? "PASS" : "FAIL")
              << "\nacceptance: sim_events equal: " << (events_ok ? "PASS" : "FAIL")
              << "\nacceptance: sharded loop bit-identical at every shard count: "
              << (shard_ok ? "PASS" : "FAIL")
              << "\nacceptance: >= 2.5x events/sec at 4 shards (gated only with"
                 " >= 4 hardware threads): "
              << (scaling_ok ? (scaling_applicable ? "PASS" : "PASS (not gated)")
                             : "FAIL")
              << "\n";
  }
  if (!all_ok)
    std::cerr << "pubsub_throughput: simcore gate failed (delivered=" << delivered_ok
              << ", stats=" << stats_ok << ", events=" << events_ok
              << ", shard_identical=" << shard_ok << ", shard_scaling="
              << scaling_ok << ")\n";
  return all_ok ? 0 : 2;
}

// -------------------------------------------------------------- hot group ----

/// One (replicas, qos) cell of the hot-group compare.
struct HotGroupCell {
  std::size_t replicas = 1;
  multicast::QoS qos = multicast::QoS::kFireAndForget;
  groups::GroupStats total;
  sim::NetworkStats net;
  std::set<DeliveryKey> delivered;
  obs::LoadSummary send_load, receive_load, total_load;
  /// max over the cell's slot roots of (sent + received) envelopes — the
  /// busiest root replica, the number sharding exists to flatten.
  std::uint64_t hot_root_load = 0;
  std::vector<overlay::PeerId> slot_roots;
  std::size_t events = 0;
  double run_secs = 0.0;
  bool delivered_identical = true;  // vs. the R=1 cell at the same qos
};

/// The hot-group workload: ONE group, every eligible peer subscribed, burst
/// publishes from publishers strided across the id space (random points
/// make the stride a spatial spread, so at R > 1 publishes land at
/// different owner slots and the seq-lease plane is exercised). Every 8th
/// eligible peer subscribes late — in a quiet window after the main
/// publish phase — so the routed graft plane carries real descents; three
/// post-graft waves then reach them, and because the grafts settle before
/// those waves, the delivered (peer, group, seq) set is a function of the
/// schedule alone, identical at every R. `excluded` holds the slot roots
/// of EVERY R on the axis (plus the legacy root), so membership — and with
/// it the oracle comparison — is the same set in every cell.
HotGroupCell run_hot_group_cell(const overlay::OverlayGraph& graph,
                                const ScenarioParams& params, multicast::QoS qos,
                                std::size_t replicas,
                                const std::vector<bool>& excluded) {
  const std::size_t peers = graph.size();
  groups::PubSubConfig config;
  config.seed = params.seed;
  config.reliability.qos = qos;
  config.reliability.ack_timeout = params.ack_timeout;
  config.reliability.max_retries = params.max_retries;
  config.groups.retention_window = params.retention_window;
  config.batch_window = params.batch_window;
  config.max_batch = params.max_batch;
  config.root_replicas = replicas;
  config.publisher_batch_window = params.publisher_batch_window;
  config.graft_prefix_batch = params.graft_prefix_batch;
  groups::PubSubSystem system(graph, config);
  HotGroupCell cell;
  cell.replicas = replicas;
  cell.qos = qos;
  system.set_delivery_probe([&cell](overlay::PeerId peer, groups::GroupId group,
                                    std::uint64_t seq, double) {
    cell.delivered.emplace(peer, group, seq);
  });

  const groups::GroupId g = 0;
  util::Rng rng(params.seed ^ 0x686f7467727075ULL);  // hot-group stream
  std::vector<overlay::PeerId> early;
  std::size_t eligible = 0;
  for (overlay::PeerId p = 0; p < peers; ++p) {
    if (excluded[p]) continue;
    if (eligible++ % 8 == 7) {
      system.subscribe_at(10.0 + rng.uniform(0.0, 0.5), p, g);
    } else {
      early.push_back(p);
      system.subscribe_at(rng.uniform(0.0, 1.0), p, g);
    }
  }

  std::vector<overlay::PeerId> publishers;
  const std::size_t want = std::min<std::size_t>(16, early.size());
  for (std::size_t i = 0; i < want; ++i)
    publishers.push_back(early[i * early.size() / want]);

  system.publish_at(2.0, publishers[0], g);  // warm: pays the lazy build
  const std::size_t burst = std::max<std::size_t>(params.pub_burst, 1);
  for (std::size_t i = 1; i < params.publishes;) {
    const auto publisher = publishers[rng.next_below(publishers.size())];
    const double when = rng.uniform(3.0, 9.0);
    const std::size_t count = std::min(burst, params.publishes - i);
    for (std::size_t j = 0; j < count; ++j) system.publish_at(when, publisher, g);
    i += count;
  }
  // Post-graft waves: always the schedule's last three commits, so the
  // late joiners' delivered seqs are the same three in every cell.
  for (std::size_t i = 0; i < 3; ++i)
    system.publish_at(12.0 + static_cast<double>(i),
                      publishers[i % publishers.size()], g);

  const auto t_run = std::chrono::steady_clock::now();
  cell.events = system.run();
  cell.run_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_run).count();
  cell.total = system.total_stats();
  cell.net = system.simulator().stats();
  for (std::uint32_t s = 0; s < replicas; ++s)
    cell.slot_roots.push_back(system.manager().slot_root(g, s));
  std::vector<std::uint64_t> load(peers, 0);
  for (std::size_t p = 0; p < peers; ++p)
    load[p] = (p < cell.net.sent_by_node.size() ? cell.net.sent_by_node[p] : 0) +
              (p < cell.net.received_by_node.size() ? cell.net.received_by_node[p] : 0);
  cell.send_load = obs::summarize_load(cell.net.sent_by_node);
  cell.receive_load = obs::summarize_load(cell.net.received_by_node);
  cell.total_load = obs::summarize_load(load);
  for (const overlay::PeerId root : cell.slot_roots)
    cell.hot_root_load = std::max(cell.hot_root_load, load[root]);
  system.release_pools();
  return cell;
}

std::string hot_group_cell_json(const HotGroupCell& cell) {
  std::ostringstream o;
  o.precision(10);
  o << "{\"replicas\":" << cell.replicas << ",\"qos\":" << static_cast<int>(cell.qos)
    << ",\"publishes\":" << cell.total.publishes
    << ",\"delivery_ratio\":" << cell.total.delivery_ratio()
    << ",\"deliveries\":" << cell.total.deliveries
    << ",\"delivered_keys\":" << cell.delivered.size()
    << ",\"control_envelopes\":" << cell.net.control_envelopes
    << ",\"graft_hops\":" << cell.total.graft_hops
    << ",\"grafts\":" << cell.total.grafts
    << ",\"graft_prefix_batches\":" << cell.total.graft_prefix_batches
    << ",\"graft_prefix_merged\":" << cell.total.graft_prefix_merged
    << ",\"seq_lease_requests\":" << cell.total.seq_lease_requests
    << ",\"seq_leases_granted\":" << cell.total.seq_leases_granted
    << ",\"seq_grants_lost\":" << cell.total.seq_grants_lost
    << ",\"shard_waves\":" << cell.total.shard_waves
    << ",\"shard_handoffs\":" << cell.total.shard_handoffs
    << ",\"publisher_batches\":" << cell.total.publisher_batches
    << ",\"publisher_envelopes_saved\":" << cell.total.publisher_envelopes_saved
    << ",\"envelopes_saved\":" << cell.total.envelopes_saved
    << ",\"send_load\":" << obs::to_json(cell.send_load)
    << ",\"receive_load\":" << obs::to_json(cell.receive_load)
    << ",\"total_load\":" << obs::to_json(cell.total_load)
    << ",\"hot_root_load\":" << cell.hot_root_load << ",\"slot_roots\":[";
  for (std::size_t i = 0; i < cell.slot_roots.size(); ++i) {
    if (i > 0) o << ",";
    o << cell.slot_roots[i];
  }
  o << "],\"delivered_identical\":" << (cell.delivered_identical ? "true" : "false")
    << ",\"sim_events\":" << cell.events << ",\"run_secs\":" << cell.run_secs << "}";
  return o.str();
}

/// The ISSUE 10 acceptance harness (--hot-group): one group, all eligible
/// peers subscribed, burst publishes, swept over the root_replicas axis
/// (default {1, 2, 4}) at every QoS rung. R=1 is the oracle: delivered
/// (peer, group, seq) sets must be bit-identical at each qos, and the
/// busiest root replica's (sent + received) load — the hot-root hot spot —
/// must flatten monotonically with R and drop >= 1.8x at the axis maximum
/// (both load gates read the QoS 1 cells, where the ack plane makes the
/// root's per-wave cost realistic). BENCH_hotgroup.json is the checked-in
/// full-size run; CI replays it and validates the schema.
int run_hot_group(ScenarioParams params, std::size_t dims, bool csv,
                  const std::string& json_path, std::vector<std::size_t> axis) {
  std::sort(axis.begin(), axis.end());
  axis.erase(std::unique(axis.begin(), axis.end()), axis.end());
  if (axis.empty() || axis.front() != 1) axis.insert(axis.begin(), 1);
  params.group_count = 1;

  util::Rng rng(params.seed);
  const auto points = geometry::random_points(rng, params.peers, dims, 100.0);
  const auto t0 = std::chrono::steady_clock::now();
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  const double overlay_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Membership must be the same set in every cell, so no peer that is a
  // slot root at ANY R on the axis subscribes or publishes (anchors are
  // immutable and there is no churn, so a throwaway system per R names
  // them exactly).
  std::vector<bool> excluded(graph.size(), false);
  for (const std::size_t r : axis) {
    groups::PubSubConfig probe;
    probe.seed = params.seed;
    probe.root_replicas = r;
    groups::PubSubSystem sys(graph, probe);
    for (std::uint32_t s = 0; s < r; ++s)
      excluded[sys.manager().slot_root(0, s)] = true;
  }

  const std::array<multicast::QoS, 3> rungs{multicast::QoS::kFireAndForget,
                                            multicast::QoS::kAcked,
                                            multicast::QoS::kEndToEnd};
  std::vector<HotGroupCell> cells;
  cells.reserve(axis.size() * rungs.size());  // oracle pointers must stay valid
  std::map<int, const std::set<DeliveryKey>*> oracle;  // qos -> R=1 delivered set
  bool identical_ok = true;
  for (const std::size_t r : axis)
    for (const auto qos : rungs) {
      cells.push_back(run_hot_group_cell(graph, params, qos, r, excluded));
      HotGroupCell& cell = cells.back();
      const int q = static_cast<int>(qos);
      if (r == 1) {
        oracle[q] = &cell.delivered;
      } else {
        cell.delivered_identical = cell.delivered == *oracle[q];
        identical_ok = identical_ok && cell.delivered_identical;
        if (!cell.delivered_identical) {
          // Diagnostics for the gate report: which side owns the skew.
          std::vector<DeliveryKey> only_cell, only_oracle;
          std::set_difference(cell.delivered.begin(), cell.delivered.end(),
                              oracle[q]->begin(), oracle[q]->end(),
                              std::back_inserter(only_cell));
          std::set_difference(oracle[q]->begin(), oracle[q]->end(),
                              cell.delivered.begin(), cell.delivered.end(),
                              std::back_inserter(only_oracle));
          std::cerr << "pubsub_throughput: hot-group R=" << r << " qos=" << q
                    << " delivered set skew: +" << only_cell.size() << " / -"
                    << only_oracle.size() << " vs oracle;";
          for (std::size_t i = 0; i < std::min<std::size_t>(4, only_cell.size()); ++i)
            std::cerr << " +(" << std::get<0>(only_cell[i]) << ","
                      << std::get<2>(only_cell[i]) << ")";
          for (std::size_t i = 0; i < std::min<std::size_t>(4, only_oracle.size()); ++i)
            std::cerr << " -(" << std::get<0>(only_oracle[i]) << ","
                      << std::get<2>(only_oracle[i]) << ")";
          std::cerr << "\n";
        }
      }
    }

  // Load gates, from the QoS 1 column: monotone non-increasing hot-root
  // load along the axis, and >= 1.8x flattening at the axis maximum.
  std::vector<std::pair<std::size_t, std::uint64_t>> hot_by_r;
  for (const HotGroupCell& cell : cells)
    if (cell.qos == multicast::QoS::kAcked)
      hot_by_r.emplace_back(cell.replicas, cell.hot_root_load);
  bool monotonic_ok = true;
  for (std::size_t i = 1; i < hot_by_r.size(); ++i)
    monotonic_ok = monotonic_ok && hot_by_r[i].second <= hot_by_r[i - 1].second;
  // The >= 1.8x drop is the ISSUE's 1000-peer claim: subscribe/graft/publish
  // control is what sharding splits, and on --quick's 200 peers the root's
  // per-wave cost (which does NOT split R ways — every slot root drives
  // every committed range over its shard tree) outweighs it. Smaller runs
  // report the ratio without gating on it; monotonicity gates everywhere.
  const bool flatten_gated =
      hot_by_r.size() > 1 && hot_by_r.back().second > 0 && params.peers >= 1000;
  const double flatten_ratio =
      hot_by_r.size() > 1 && hot_by_r.back().second > 0
          ? static_cast<double>(hot_by_r.front().second) /
                static_cast<double>(hot_by_r.back().second)
          : 0.0;
  const bool flatten_ok = !flatten_gated || flatten_ratio >= 1.8;
  const bool all_ok = identical_ok && monotonic_ok && flatten_ok;

  util::Table table({"replicas", "qos", "publishes", "delivery_ratio", "control_env",
                     "graft_hops", "seq_leases", "shard_waves", "handoffs",
                     "send_max", "total_max", "total_p99", "hot_root_load",
                     "identical", "run_secs"});
  std::ostringstream cells_json;
  for (const HotGroupCell& cell : cells) {
    table.begin_row()
        .add_number(static_cast<double>(cell.replicas), 0)
        .add_number(static_cast<double>(cell.qos), 0)
        .add_number(static_cast<double>(cell.total.publishes), 0)
        .add_number(cell.total.delivery_ratio(), 5)
        .add_number(static_cast<double>(cell.net.control_envelopes), 0)
        .add_number(static_cast<double>(cell.total.graft_hops), 0)
        .add_number(static_cast<double>(cell.total.seq_leases_granted), 0)
        .add_number(static_cast<double>(cell.total.shard_waves), 0)
        .add_number(static_cast<double>(cell.total.shard_handoffs), 0)
        .add_number(static_cast<double>(cell.send_load.max), 0)
        .add_number(static_cast<double>(cell.total_load.max), 0)
        .add_number(static_cast<double>(cell.total_load.p99), 0)
        .add_number(static_cast<double>(cell.hot_root_load), 0)
        .add_cell(cell.delivered_identical ? "yes" : "NO")
        .add_number(cell.run_secs, 3);
    if (cells_json.tellp() > 0) cells_json << ",";
    cells_json << "\n    " << hot_group_cell_json(cell);
  }
  if (!json_path.empty()) {
    std::ostringstream json;
    json.precision(10);
    json << "{\n  \"bench\": \"pubsub_throughput\",\n  \"mode\": \"hot_group\",\n"
         << "  \"params\": " << params_json(params) << ",\n  \"replica_axis\": [";
    for (std::size_t i = 0; i < axis.size(); ++i)
      json << (i > 0 ? "," : "") << axis[i];
    json << "],\n  \"overlay_secs\": " << overlay_secs << ",\n  \"cells\": ["
         << cells_json.str() << "\n  ],\n  \"hot_root_load_qos1\": {";
    for (std::size_t i = 0; i < hot_by_r.size(); ++i)
      json << (i > 0 ? "," : "") << "\"" << hot_by_r[i].first
           << "\":" << hot_by_r[i].second;
    json << "},\n  \"load_flatten_ratio\": " << flatten_ratio
         << ",\n  \"flatten_gated\": " << (flatten_gated ? "true" : "false")
         << ",\n  \"gate_delivered_identical\": " << (identical_ok ? "true" : "false")
         << ",\n  \"gate_hot_root_monotonic\": " << (monotonic_ok ? "true" : "false")
         << ",\n  \"gate_hot_root_flatten_1_8x\": " << (flatten_ok ? "true" : "false")
         << "\n}";
    write_json_file(json_path, json.str());
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    std::cout << "=== hot group: 1 group, all eligible peers subscribed on "
              << graph.size() << " peers (D=" << dims << "), bursts of "
              << params.pub_burst << ", batch_window=" << params.batch_window
              << ", publisher_batch_window=" << params.publisher_batch_window
              << ", replicas axis {";
    for (std::size_t i = 0; i < axis.size(); ++i)
      std::cout << (i > 0 ? ", " : "") << axis[i];
    std::cout << "}, seed=" << params.seed << " (overlay built in "
              << util::format_number(overlay_secs, 2) << "s) ===\n\n";
    table.print(std::cout);
    std::cout << "\nacceptance: delivered (peer, group, seq) sets bit-identical to"
                 " R=1 at every QoS rung: "
              << (identical_ok ? "PASS" : "FAIL")
              << "\nacceptance: hot-root load max flattens monotonically along the"
                 " replica axis (QoS 1): "
              << (monotonic_ok ? "PASS" : "FAIL")
              << "\nacceptance: hot-root load max drops >= 1.8x at R="
              << axis.back() << " vs R=1: "
              << (flatten_ok ? (flatten_gated ? "PASS" : "PASS (not gated)")
                             : "FAIL")
              << " (" << util::format_number(flatten_ratio, 2) << "x)\n";
  }
  if (!all_ok)
    std::cerr << "pubsub_throughput: hot-group gate failed (identical="
              << identical_ok << ", monotonic=" << monotonic_ok
              << ", flatten=" << flatten_ratio << ")\n";
  return all_ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Flags flags(argc, argv);
    ScenarioParams params;
    params.peers = static_cast<std::size_t>(flags.get_int("peers", 1000));
    const auto dims = static_cast<std::size_t>(flags.get_int("dims", 3));
    params.group_count = static_cast<std::size_t>(flags.get_int("groups", 32));
    params.subscribers = static_cast<std::size_t>(flags.get_int("subscribers", 32));
    params.publishes = static_cast<std::size_t>(flags.get_int("publishes", 8));
    params.departures = static_cast<std::size_t>(flags.get_int("departures", 24));
    params.ack_timeout = flags.get_double("ack-timeout", 0.05);
    params.max_retries = static_cast<std::size_t>(flags.get_int("retries", 5));
    params.retention_window = static_cast<std::size_t>(flags.get_int("retention", 64));
    params.batch_window = flags.get_double("batch-window", 0.0);
    params.max_batch = static_cast<std::size_t>(flags.get_int("max-batch", 16));
    params.pub_burst = static_cast<std::size_t>(flags.get_int("pub-burst", 1));
    params.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    const double loss = flags.get_double("loss", 0.0);
    const std::int64_t qos_level = flags.get_int("qos", 0);
    if (qos_level < 0 || qos_level > 2)
      throw std::invalid_argument("--qos must be 0, 1 or 2");
    const auto qos = static_cast<multicast::QoS>(qos_level);
    const bool csv = flags.get_bool("csv", false);
    const bool sweep = flags.get_bool("sweep", false);
    const bool batch_compare = flags.get_bool("batch-compare", false);
    const bool graft_cost = flags.get_bool("graft-cost", false);
    const bool latency = flags.get_bool("latency", false);
    const bool root_kill = flags.get_bool("root-kill", false);
    const bool simcore = flags.get_bool("simcore", false);
    const bool hot_group = flags.get_bool("hot-group", false);
    params.publisher_batch_window = flags.get_double("publisher-batch-window", 0.0);
    params.graft_prefix_batch = flags.get_bool("graft-prefix-batch", false);
    const std::string json_path = flags.get_string("json", "");
    const std::string trace_path = flags.get_string("trace", "");
    const std::string snapshot_path = flags.get_string("snapshot", "");
    const double snapshot_interval = flags.get_double("snapshot-interval", 0.5);
    // Sweep mode gates on subtree repair, so its departures are mid-wave
    // forwarder kills; random churn (which removes subscribers outright)
    // stays a non-sweep knob.
    params.midwave = static_cast<std::size_t>(flags.get_int("midwave", sweep ? 4 : 0));
    if (sweep) params.departures = 0;
    if (flags.get_bool("quick", false)) {
      params.peers = 200;
      params.group_count = 8;
      params.departures = sweep ? 0 : 6;
      if (batch_compare) params.publishes = std::max<std::size_t>(params.publishes, 16);
      // One kill: at 200 peers a severed subtree is a big enough slice of
      // the traffic that two would push QoS 1 below the >= 0.99 per-hop
      // gate for reasons that have nothing to do with link loss.
      if (sweep && !flags.has("midwave")) params.midwave = 1;
      // Root-kill selection needs an unsubscribed non-leaf child of every
      // root; at 200 peers the default 32-per-group membership blankets
      // the roots' neighborhoods and starves the victim pool.
      if (root_kill && !flags.has("subscribers"))
        params.subscribers = std::min<std::size_t>(params.subscribers, 12);
    }

    // Sim-core equivalence: defaults mirror the tentpole gate cell
    // (1000 peers, QoS 1, 0.1s batching, bursts of 8) unless overridden;
    // --simcore-peers sizes the grid-kNN sweep cell (0 skips it).
    if (simcore) {
      if (!flags.has("subscribers")) params.subscribers = 64;
      if (!flags.has("publishes")) params.publishes = 64;
      if (!flags.has("batch-window")) params.batch_window = 0.1;
      if (!flags.has("pub-burst")) params.pub_burst = 8;
      const auto simcore_qos = flags.has("qos") ? qos : multicast::QoS::kAcked;
      const auto sweep_peers =
          static_cast<std::size_t>(flags.get_int("simcore-peers", 100000));
      const auto knn_k = static_cast<std::size_t>(flags.get_int("simcore-k", 16));
      // --shards caps the scaling axis ({1, 2, 4} + N); --simcore-dense-peers
      // sizes the dense shard-scaling cell (0 skips it).
      const auto max_shards = static_cast<std::size_t>(flags.get_int("shards", 4));
      const auto dense_peers =
          static_cast<std::size_t>(flags.get_int("simcore-dense-peers", 10000));
      return run_simcore(params, dims, simcore_qos, loss, csv, json_path,
                         sweep_peers, knn_k, max_shards, dense_peers);
    }

    // Hot group (ISSUE 10): one group, all eligible peers subscribed,
    // burst publishes, swept over the --replicas axis at every QoS rung.
    // Defaults make the workload the regime replica sharding exists for:
    // bursts of 8 coalesced at both ends (root batching + publisher
    // batching) with prefix-batched grafts on.
    if (hot_group) {
      if (!flags.has("publishes")) params.publishes = 64;
      if (!flags.has("pub-burst")) params.pub_burst = 8;
      if (!flags.has("batch-window")) params.batch_window = 0.05;
      if (!flags.has("publisher-batch-window")) params.publisher_batch_window = 0.02;
      if (!flags.has("graft-prefix-batch")) params.graft_prefix_batch = true;
      const auto replica_list = flags.get_int_list("replicas", {1, 2, 4});
      std::vector<std::size_t> axis;
      for (const std::int64_t r : replica_list) {
        if (r < 1) throw std::invalid_argument("--replicas entries must be >= 1");
        axis.push_back(static_cast<std::size_t>(r));
      }
      return run_hot_group(params, dims, csv, json_path, std::move(axis));
    }

    // Graft-cost, latency, and root-kill build one overlay per pinned seed
    // themselves; dispatch before paying for the shared overlay below.
    if (graft_cost) return run_graft_cost(params, dims, csv, json_path);
    if (latency) return run_latency(params, dims, csv, json_path);
    if (root_kill) return run_root_kill(params, dims, csv, json_path);

    util::Rng rng(params.seed);
    const auto points = geometry::random_points(rng, params.peers, dims, 100.0);
    const auto t_overlay = std::chrono::steady_clock::now();
    const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
    const double overlay_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t_overlay).count();

    if (batch_compare) return run_batch_compare(graph, params, csv, json_path, overlay_secs);
    if (sweep) return run_sweep(graph, params, csv, overlay_secs);

    obs::TraceSink sink(1u << 20);  // ~1M events: covers a full-size run
    std::string snapshot_json;
    const auto outcome = run_scenario(
        graph, params, qos, loss, /*delivered_out=*/nullptr,
        trace_path.empty() ? nullptr : &sink,
        snapshot_path.empty() ? nullptr : &snapshot_json, snapshot_interval);
    if (!trace_path.empty()) {
      std::ofstream trace_out(trace_path);
      if (!trace_out) throw std::runtime_error("cannot write --trace file: " + trace_path);
      obs::write_chrome_trace(trace_out, sink.events());
      std::cerr << "pubsub_throughput: wrote " << sink.size() << " trace events ("
                << sink.dropped() << " dropped) to " << trace_path << "\n";
    }
    if (!snapshot_path.empty()) write_json_file(snapshot_path, snapshot_json);
    if (!json_path.empty())
      write_json_file(json_path,
                      "{\n  \"bench\": \"pubsub_throughput\",\n  \"params\": " +
                          params_json(params) + ",\n  \"run\": " +
                          scenario_json(params, qos, loss, outcome) + "\n}");
    const auto& total = outcome.total;
    const double full_dissemination = static_cast<double>(params.peers - 1);
    const double publishes_per_sec =
        outcome.run_secs > 0.0
            ? static_cast<double>(total.publishes) / outcome.run_secs
            : 0.0;

    util::Table table({"metric", "value"});
    auto row = [&table](const std::string& name, double value, int decimals = 3) {
      table.begin_row().add_cell(name).add_number(value, decimals);
    };
    row("peers", static_cast<double>(params.peers), 0);
    row("groups", static_cast<double>(params.group_count), 0);
    row("subscribers_per_group", static_cast<double>(params.subscribers), 0);
    row("departures", static_cast<double>(outcome.scheduled_departures), 0);
    row("midwave_kills", static_cast<double>(outcome.midwave_kills), 0);
    row("severed_subscribers", static_cast<double>(outcome.severed_subscribers), 0);
    row("loss", loss);
    row("qos", static_cast<double>(qos), 0);
    row("overlay_build_secs", overlay_secs);
    row("sim_events", static_cast<double>(outcome.events), 0);
    row("run_secs", outcome.run_secs);
    row("publishes", static_cast<double>(total.publishes), 0);
    row("publishes_per_sec", publishes_per_sec, 1);
    row("delivery_ratio", total.delivery_ratio(), 5);
    row("deliveries", static_cast<double>(total.deliveries), 0);
    row("expected_deliveries", static_cast<double>(total.expected_deliveries), 0);
    row("duplicates", static_cast<double>(total.duplicate_deliveries), 0);
    row("payload_msgs_per_publish", outcome.payload_per_publish(), 2);
    row("full_dissemination_msgs", full_dissemination, 0);
    row("ack_msgs", static_cast<double>(total.ack_messages), 0);
    row("retransmissions", static_cast<double>(total.retransmissions), 0);
    row("retx_per_publish", outcome.retx_per_publish(), 2);
    row("batch_flushes_window", static_cast<double>(total.batch_flushes_window), 0);
    row("batch_flushes_full", static_cast<double>(total.batch_flushes_full), 0);
    row("mean_batch_occupancy", total.mean_batch_occupancy(), 2);
    row("envelopes_saved", static_cast<double>(total.envelopes_saved), 0);
    row("batch_publishes_lost", static_cast<double>(total.batch_publishes_lost), 0);
    row("abandoned_hops", static_cast<double>(total.abandoned_hops), 0);
    row("gap_seqs_detected", static_cast<double>(total.gap_seqs_detected), 0);
    row("gap_seqs_repaired", static_cast<double>(total.gap_seqs_repaired), 0);
    row("gap_seqs_abandoned", static_cast<double>(total.gap_seqs_abandoned), 0);
    row("nacks_sent", static_cast<double>(total.nacks_sent), 0);
    row("nack_deferrals", static_cast<double>(total.nack_deferrals), 0);
    row("repairs_served", static_cast<double>(total.repairs_served), 0);
    row("repair_misses", static_cast<double>(total.repair_misses), 0);
    row("repair_escalations", static_cast<double>(total.repair_escalations), 0);
    row("mean_gap_latency", total.mean_gap_latency(), 4);
    row("retained_evictions", static_cast<double>(total.retained_evictions), 0);
    row("retained_peak", static_cast<double>(outcome.retained_peak), 0);
    row("pre_window_deliveries", static_cast<double>(total.pre_window_deliveries), 0);
    row("control_msgs", static_cast<double>(total.control_messages), 0);
    row("stranded_msgs", static_cast<double>(total.stranded_messages), 0);
    row("tree_builds", static_cast<double>(total.tree_builds), 0);
    row("build_msgs", static_cast<double>(total.build_messages), 0);
    row("cache_hits", static_cast<double>(total.cache_hits), 0);
    row("grafts", static_cast<double>(total.grafts), 0);
    row("repairs", static_cast<double>(total.repairs), 0);
    row("repair_msgs", static_cast<double>(total.repair_messages), 0);
    row("repair_failures", static_cast<double>(total.repair_failures), 0);
    row("root_migrations", static_cast<double>(total.root_migrations), 0);
    row("stranded_subscribers", static_cast<double>(total.stranded_subscribers), 0);
    row("maintenance_msgs_per_publish", total.maintenance_per_publish(), 2);
    row("network_dropped", static_cast<double>(outcome.net.dropped), 0);
    row("network_retransmitted", static_cast<double>(outcome.net.retransmitted), 0);
    row("network_abandoned_hops", static_cast<double>(outcome.net.abandoned_hops), 0);
    row("delivery_latency_p50", total.delivery_latency.p50(), 4);
    row("delivery_latency_p90", total.delivery_latency.p90(), 4);
    row("delivery_latency_p99", total.delivery_latency.p99(), 4);
    row("delivery_latency_max", total.delivery_latency.max(), 4);
    row("gap_repair_latency_p50", total.gap_repair_latency.p50(), 4);
    row("gap_repair_latency_p99", total.gap_repair_latency.p99(), 4);
    row("graft_latency_p50", total.graft_latency.p50(), 4);
    row("graft_latency_p99", total.graft_latency.p99(), 4);
    const auto send_load = obs::summarize_load(outcome.net.sent_by_node);
    const auto recv_load = obs::summarize_load(outcome.net.received_by_node);
    row("send_load_max", static_cast<double>(send_load.max), 0);
    row("send_load_p99", static_cast<double>(send_load.p99), 0);
    row("recv_load_max", static_cast<double>(recv_load.max), 0);
    row("recv_load_p99", static_cast<double>(recv_load.p99), 0);

    const bool ratio_ok = loss > 0.0 || total.delivery_ratio() >= 0.99;
    const bool pruned_ok = outcome.payload_per_publish() < full_dissemination;
    if (csv) {
      table.print_csv(std::cout);
      if (!ratio_ok || !pruned_ok)  // keep stdout machine-readable
        std::cerr << "pubsub_throughput: acceptance gate failed (ratio_ok="
                  << ratio_ok << ", pruned_ok=" << pruned_ok << ")\n";
    } else {
      std::cout << "=== pub/sub throughput: " << params.group_count << " groups x "
                << params.subscribers << " subscribers on " << params.peers
                << " peers (D=" << dims << "), " << outcome.scheduled_departures
                << " departures, loss=" << loss << ", qos="
                << static_cast<int>(qos) << ", seed=" << params.seed << " ===\n\n";
      table.print(std::cout);
      std::cout << "\nacceptance: delivery_ratio >= 0.99 at zero loss: "
                << (ratio_ok ? "PASS" : "FAIL")
                << "\nacceptance: pruned tree beats full dissemination per publish: "
                << (pruned_ok ? "PASS" : "FAIL") << "\n";
    }
    return ratio_ok && pruned_ok ? 0 : 2;
  } catch (const std::exception& error) {
    std::cerr << "pubsub_throughput: " << error.what() << '\n';
    return 1;
  }
}
