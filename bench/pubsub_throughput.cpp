// Pub/sub scaling bench: N groups × M subscribers × churn on one overlay.
//
// Exercises the whole groups/ pipeline — rendezvous routing, lazy pruned
// tree construction, cache reuse across publishes, incremental
// graft/repair under departures — and reports the numbers the scaling
// trajectory cares about: publishes/sec (wall clock), delivery ratio,
// per-publish payload cost versus full-overlay dissemination (N-1
// messages), and tree build/repair message overhead.
//
// Acceptance gates (ISSUE 1): with >= 32 groups and >= 1000 peers under
// churn at zero loss, delivery ratio >= 0.99 and pruned per-publish
// payload strictly below full-overlay dissemination.
//
// Flags: --peers=N --dims=D --groups=G --subscribers=M --publishes=P
//        --departures=C --loss=p --seed=S --csv --quick
#include <chrono>
#include <iostream>

#include "geometry/random_points.hpp"
#include "groups/pubsub.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace geomcast;
  try {
    const util::Flags flags(argc, argv);
    auto peers = static_cast<std::size_t>(flags.get_int("peers", 1000));
    const auto dims = static_cast<std::size_t>(flags.get_int("dims", 3));
    auto group_count = static_cast<std::size_t>(flags.get_int("groups", 32));
    const auto subscribers = static_cast<std::size_t>(flags.get_int("subscribers", 32));
    const auto publishes = static_cast<std::size_t>(flags.get_int("publishes", 8));
    auto departures = static_cast<std::size_t>(flags.get_int("departures", 24));
    const double loss = flags.get_double("loss", 0.0);
    const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    const bool csv = flags.get_bool("csv", false);
    if (flags.get_bool("quick", false)) {
      peers = 200;
      group_count = 8;
      departures = 6;
    }

    util::Rng rng(seed);
    const auto points = geometry::random_points(rng, peers, dims, 100.0);
    const auto t_overlay = std::chrono::steady_clock::now();
    const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
    const double overlay_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t_overlay).count();

    groups::PubSubConfig config;
    config.seed = seed;
    config.loss.drop_probability = loss;
    groups::PubSubSystem system(graph, config);

    // Roots are excluded from membership and churn so the bench measures
    // steady-state group service, not rendezvous migration (which has its
    // own counter).
    std::vector<bool> is_root(peers, false);
    std::vector<overlay::PeerId> roots(group_count);
    for (std::size_t g = 0; g < group_count; ++g) {
      roots[g] = system.manager().root_of(g);
      is_root[roots[g]] = true;
    }
    std::size_t non_roots = 0;
    for (std::size_t p = 0; p < peers; ++p)
      if (!is_root[p]) ++non_roots;
    if (subscribers == 0)
      throw std::invalid_argument("--subscribers must be >= 1");
    if (subscribers > non_roots)
      throw std::invalid_argument(
          "not enough non-root peers for --subscribers=" + std::to_string(subscribers) +
          " (have " + std::to_string(non_roots) + "); raise --peers or lower --groups");
    departures = std::min(departures, non_roots);

    // Membership: M distinct non-root subscribers per group, waves in (0, 1).
    std::vector<std::vector<overlay::PeerId>> members(group_count);
    for (std::size_t g = 0; g < group_count; ++g) {
      std::vector<bool> chosen(peers, false);
      while (members[g].size() < subscribers) {
        const auto p = static_cast<overlay::PeerId>(rng.next_below(peers));
        if (chosen[p] || is_root[p]) continue;
        chosen[p] = true;
        members[g].push_back(p);
        system.subscribe_at(rng.uniform(0.0, 1.0), p, g);
      }
    }

    // Warm publish per group at t=2 (pays the lazy builds), then churn
    // interleaved with publish rounds over t in [3, 9). Publishers that
    // depart before their slot are skipped, so total.publishes reports
    // what actually ran.
    for (std::size_t g = 0; g < group_count; ++g) {
      system.publish_at(2.0, members[g][0], g);
      for (std::size_t i = 1; i < publishes; ++i) {
        const auto publisher = members[g][rng.next_below(subscribers)];
        system.publish_at(rng.uniform(3.0, 9.0), publisher, g);
      }
    }
    std::size_t scheduled_departures = 0;
    {
      std::vector<bool> doomed(peers, false);
      while (scheduled_departures < departures) {
        const auto p = static_cast<overlay::PeerId>(rng.next_below(peers));
        if (doomed[p] || is_root[p]) continue;
        doomed[p] = true;
        system.depart_at(rng.uniform(3.0, 9.0), p);
        ++scheduled_departures;
      }
    }

    const auto t_run = std::chrono::steady_clock::now();
    const std::size_t events = system.run();
    const double run_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t_run).count();

    const auto total = system.total_stats();
    const auto& net = system.simulator().stats();
    const double payload_per_publish =
        total.publishes ? static_cast<double>(total.payload_messages) /
                              static_cast<double>(total.publishes)
                        : 0.0;
    const double full_dissemination = static_cast<double>(peers - 1);
    const double publishes_per_sec =
        run_secs > 0.0 ? static_cast<double>(total.publishes) / run_secs : 0.0;

    util::Table table({"metric", "value"});
    auto row = [&table](const std::string& name, double value, int decimals = 3) {
      table.begin_row().add_cell(name).add_number(value, decimals);
    };
    row("peers", static_cast<double>(peers), 0);
    row("groups", static_cast<double>(group_count), 0);
    row("subscribers_per_group", static_cast<double>(subscribers), 0);
    row("departures", static_cast<double>(scheduled_departures), 0);
    row("loss", loss);
    row("overlay_build_secs", overlay_secs);
    row("sim_events", static_cast<double>(events), 0);
    row("run_secs", run_secs);
    row("publishes", static_cast<double>(total.publishes), 0);
    row("publishes_per_sec", publishes_per_sec, 1);
    row("delivery_ratio", total.delivery_ratio(), 5);
    row("deliveries", static_cast<double>(total.deliveries), 0);
    row("expected_deliveries", static_cast<double>(total.expected_deliveries), 0);
    row("duplicates", static_cast<double>(total.duplicate_deliveries), 0);
    row("payload_msgs_per_publish", payload_per_publish, 2);
    row("full_dissemination_msgs", full_dissemination, 0);
    row("control_msgs", static_cast<double>(total.control_messages), 0);
    row("stranded_msgs", static_cast<double>(total.stranded_messages), 0);
    row("tree_builds", static_cast<double>(total.tree_builds), 0);
    row("build_msgs", static_cast<double>(total.build_messages), 0);
    row("cache_hits", static_cast<double>(total.cache_hits), 0);
    row("grafts", static_cast<double>(total.grafts), 0);
    row("repairs", static_cast<double>(total.repairs), 0);
    row("repair_msgs", static_cast<double>(total.repair_messages), 0);
    row("repair_failures", static_cast<double>(total.repair_failures), 0);
    row("root_migrations", static_cast<double>(total.root_migrations), 0);
    row("stranded_subscribers", static_cast<double>(total.stranded_subscribers), 0);
    row("maintenance_msgs_per_publish", total.maintenance_per_publish(), 2);
    row("network_dropped", static_cast<double>(net.dropped), 0);

    const bool ratio_ok = loss > 0.0 || total.delivery_ratio() >= 0.99;
    const bool pruned_ok = payload_per_publish < full_dissemination;
    if (csv) {
      table.print_csv(std::cout);
      if (!ratio_ok || !pruned_ok)  // keep stdout machine-readable
        std::cerr << "pubsub_throughput: acceptance gate failed (ratio_ok="
                  << ratio_ok << ", pruned_ok=" << pruned_ok << ")\n";
    } else {
      std::cout << "=== pub/sub throughput: " << group_count << " groups x "
                << subscribers << " subscribers on " << peers << " peers (D=" << dims
                << "), " << scheduled_departures << " departures, loss=" << loss
                << ", seed=" << seed << " ===\n\n";
      table.print(std::cout);
      std::cout << "\nacceptance: delivery_ratio >= 0.99 at zero loss: "
                << (ratio_ok ? "PASS" : "FAIL")
                << "\nacceptance: pruned tree beats full dissemination per publish: "
                << (pruned_ok ? "PASS" : "FAIL") << "\n";
    }
    return ratio_ok && pruned_ok ? 0 : 2;
  } catch (const std::exception& error) {
    std::cerr << "pubsub_throughput: " << error.what() << '\n';
    return 1;
  }
}
