// Pub/sub scaling bench: N groups × M subscribers × churn on one overlay.
//
// Exercises the whole groups/ pipeline — rendezvous routing, lazy pruned
// tree construction, cache reuse across publishes, incremental
// graft/repair under departures, and the QoS 1 per-hop ack/retransmit
// plane — and reports the numbers the scaling trajectory cares about:
// publishes/sec (wall clock), delivery ratio, per-publish payload cost
// versus full-overlay dissemination (N-1 messages), tree build/repair
// message overhead, and retransmissions per publish.
//
// Acceptance gates:
//  * (ISSUE 1) with >= 32 groups and >= 1000 peers under churn at zero
//    loss, delivery ratio >= 0.99 and pruned per-publish payload strictly
//    below full-overlay dissemination;
//  * (ISSUE 2, --sweep) under 5% per-link loss, QoS 1 delivery ratio
//    >= 0.99 while QoS 0 is visibly lower.
//
// Flags: --peers=N --dims=D --groups=G --subscribers=M --publishes=P
//        --departures=C --loss=p --qos=0|1 --retries=R --ack-timeout=T
//        --seed=S --csv --quick --sweep
//
// --sweep ignores --loss/--qos and instead runs the same scenario for
// QoS 0 and QoS 1 at each loss in {0, 0.05, 0.15}, printing one row per
// (loss, qos) cell — the loss axis of the reliability story.
#include <chrono>
#include <iostream>
#include <vector>

#include "geometry/random_points.hpp"
#include "groups/pubsub.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace geomcast;

struct ScenarioParams {
  std::size_t peers = 1000;
  std::size_t group_count = 32;
  std::size_t subscribers = 32;
  std::size_t publishes = 8;
  std::size_t departures = 24;
  double ack_timeout = 0.05;
  std::size_t max_retries = 5;
  std::uint64_t seed = 42;
};

struct ScenarioOutcome {
  groups::GroupStats total;
  sim::NetworkStats net;
  std::size_t events = 0;
  std::size_t scheduled_departures = 0;
  double run_secs = 0.0;

  [[nodiscard]] double payload_per_publish() const {
    return total.publishes ? static_cast<double>(total.payload_messages) /
                                 static_cast<double>(total.publishes)
                           : 0.0;
  }
  [[nodiscard]] double retx_per_publish() const {
    return total.publishes ? static_cast<double>(total.retransmissions) /
                                 static_cast<double>(total.publishes)
                           : 0.0;
  }
};

/// One full run of the standard workload on a prebuilt overlay. The
/// schedule (membership, publishes, departures) is a function of
/// params.seed alone, so runs at different (qos, loss) points are
/// apples-to-apples.
ScenarioOutcome run_scenario(const overlay::OverlayGraph& graph,
                             const ScenarioParams& params, multicast::QoS qos,
                             double loss) {
  const std::size_t peers = graph.size();
  groups::PubSubConfig config;
  config.seed = params.seed;
  config.loss.drop_probability = loss;
  config.reliability.qos = qos;
  config.reliability.ack_timeout = params.ack_timeout;
  config.reliability.max_retries = params.max_retries;
  groups::PubSubSystem system(graph, config);

  // Roots are excluded from membership and churn so the bench measures
  // steady-state group service, not rendezvous migration (which has its
  // own counter).
  std::vector<bool> is_root(peers, false);
  for (std::size_t g = 0; g < params.group_count; ++g)
    is_root[system.manager().root_of(g)] = true;
  std::size_t non_roots = 0;
  for (std::size_t p = 0; p < peers; ++p)
    if (!is_root[p]) ++non_roots;
  if (params.subscribers == 0) throw std::invalid_argument("--subscribers must be >= 1");
  if (params.subscribers > non_roots)
    throw std::invalid_argument(
        "not enough non-root peers for --subscribers=" +
        std::to_string(params.subscribers) + " (have " + std::to_string(non_roots) +
        "); raise --peers or lower --groups");
  const std::size_t departures = std::min(params.departures, non_roots);

  // Membership: M distinct non-root subscribers per group, waves in (0, 1).
  util::Rng rng(params.seed ^ 0x736368656475ULL);  // schedule stream
  std::vector<std::vector<overlay::PeerId>> members(params.group_count);
  for (std::size_t g = 0; g < params.group_count; ++g) {
    std::vector<bool> chosen(peers, false);
    while (members[g].size() < params.subscribers) {
      const auto p = static_cast<overlay::PeerId>(rng.next_below(peers));
      if (chosen[p] || is_root[p]) continue;
      chosen[p] = true;
      members[g].push_back(p);
      system.subscribe_at(rng.uniform(0.0, 1.0), p, g);
    }
  }

  // Warm publish per group at t=2 (pays the lazy builds), then churn
  // interleaved with publish rounds over t in [3, 9). Publishers that
  // depart before their slot are skipped, so total.publishes reports
  // what actually ran.
  for (std::size_t g = 0; g < params.group_count; ++g) {
    system.publish_at(2.0, members[g][0], g);
    for (std::size_t i = 1; i < params.publishes; ++i) {
      const auto publisher = members[g][rng.next_below(params.subscribers)];
      system.publish_at(rng.uniform(3.0, 9.0), publisher, g);
    }
  }
  ScenarioOutcome outcome;
  {
    std::vector<bool> doomed(peers, false);
    while (outcome.scheduled_departures < departures) {
      const auto p = static_cast<overlay::PeerId>(rng.next_below(peers));
      if (doomed[p] || is_root[p]) continue;
      doomed[p] = true;
      system.depart_at(rng.uniform(3.0, 9.0), p);
      ++outcome.scheduled_departures;
    }
  }

  const auto t_run = std::chrono::steady_clock::now();
  outcome.events = system.run();
  outcome.run_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_run).count();
  outcome.total = system.total_stats();
  outcome.net = system.simulator().stats();
  return outcome;
}

int run_sweep(const overlay::OverlayGraph& graph, const ScenarioParams& params,
              bool csv, double overlay_secs) {
  const std::vector<double> loss_axis{0.0, 0.05, 0.15};
  util::Table table({"loss", "qos", "publishes", "delivery_ratio", "retx_per_publish",
                     "duplicates", "abandoned_hops", "payload_per_publish",
                     "ack_msgs", "dropped", "run_secs"});
  double qos0_at_5 = -1.0, qos1_at_5 = -1.0;
  bool qos1_ok = true;
  std::size_t scheduled_departures = 0;  // post-clamp; identical across cells
  for (const double loss : loss_axis) {
    for (const auto qos : {multicast::QoS::kFireAndForget, multicast::QoS::kAcked}) {
      const auto r = run_scenario(graph, params, qos, loss);
      scheduled_departures = r.scheduled_departures;
      const double ratio = r.total.delivery_ratio();
      table.begin_row()
          .add_number(loss, 2)
          .add_number(static_cast<double>(qos), 0)
          .add_number(static_cast<double>(r.total.publishes), 0)
          .add_number(ratio, 5)
          .add_number(r.retx_per_publish(), 2)
          .add_number(static_cast<double>(r.total.duplicate_deliveries), 0)
          .add_number(static_cast<double>(r.total.abandoned_hops), 0)
          .add_number(r.payload_per_publish(), 2)
          .add_number(static_cast<double>(r.total.ack_messages), 0)
          .add_number(static_cast<double>(r.net.dropped), 0)
          .add_number(r.run_secs, 3);
      if (qos == multicast::QoS::kAcked && ratio < 0.99) qos1_ok = false;
      if (loss == 0.05) {
        (qos == multicast::QoS::kAcked ? qos1_at_5 : qos0_at_5) = ratio;
      }
    }
  }
  // ISSUE 2 acceptance: at 5% per-link loss QoS 1 holds >= 0.99 while
  // QoS 0 is visibly lower.
  const bool gap_ok = qos1_at_5 >= 0.99 && qos0_at_5 < qos1_at_5 - 0.01;
  if (csv) {
    table.print_csv(std::cout);
    if (!qos1_ok || !gap_ok)
      std::cerr << "pubsub_throughput: sweep acceptance gate failed (qos1_ok="
                << qos1_ok << ", gap_ok=" << gap_ok << ")\n";
  } else {
    std::cout << "=== pub/sub QoS x loss sweep: " << params.group_count << " groups x "
              << params.subscribers << " subscribers on " << graph.size() << " peers, "
              << scheduled_departures << " departures, seed=" << params.seed
              << " (overlay built in " << util::format_number(overlay_secs, 2)
              << "s) ===\n\n";
    table.print(std::cout);
    std::cout << "\nacceptance: QoS 1 delivery_ratio >= 0.99 at every loss point: "
              << (qos1_ok ? "PASS" : "FAIL")
              << "\nacceptance: at 5% loss QoS 0 visibly below QoS 1: "
              << (gap_ok ? "PASS" : "FAIL") << "\n";
  }
  return qos1_ok && gap_ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Flags flags(argc, argv);
    ScenarioParams params;
    params.peers = static_cast<std::size_t>(flags.get_int("peers", 1000));
    const auto dims = static_cast<std::size_t>(flags.get_int("dims", 3));
    params.group_count = static_cast<std::size_t>(flags.get_int("groups", 32));
    params.subscribers = static_cast<std::size_t>(flags.get_int("subscribers", 32));
    params.publishes = static_cast<std::size_t>(flags.get_int("publishes", 8));
    params.departures = static_cast<std::size_t>(flags.get_int("departures", 24));
    params.ack_timeout = flags.get_double("ack-timeout", 0.05);
    params.max_retries = static_cast<std::size_t>(flags.get_int("retries", 5));
    params.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    const double loss = flags.get_double("loss", 0.0);
    const auto qos = flags.get_int("qos", 0) == 0 ? multicast::QoS::kFireAndForget
                                                  : multicast::QoS::kAcked;
    const bool csv = flags.get_bool("csv", false);
    const bool sweep = flags.get_bool("sweep", false);
    if (flags.get_bool("quick", false)) {
      params.peers = 200;
      params.group_count = 8;
      params.departures = 6;
    }

    util::Rng rng(params.seed);
    const auto points = geometry::random_points(rng, params.peers, dims, 100.0);
    const auto t_overlay = std::chrono::steady_clock::now();
    const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
    const double overlay_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t_overlay).count();

    if (sweep) return run_sweep(graph, params, csv, overlay_secs);

    const auto outcome = run_scenario(graph, params, qos, loss);
    const auto& total = outcome.total;
    const double full_dissemination = static_cast<double>(params.peers - 1);
    const double publishes_per_sec =
        outcome.run_secs > 0.0
            ? static_cast<double>(total.publishes) / outcome.run_secs
            : 0.0;

    util::Table table({"metric", "value"});
    auto row = [&table](const std::string& name, double value, int decimals = 3) {
      table.begin_row().add_cell(name).add_number(value, decimals);
    };
    row("peers", static_cast<double>(params.peers), 0);
    row("groups", static_cast<double>(params.group_count), 0);
    row("subscribers_per_group", static_cast<double>(params.subscribers), 0);
    row("departures", static_cast<double>(outcome.scheduled_departures), 0);
    row("loss", loss);
    row("qos", static_cast<double>(qos), 0);
    row("overlay_build_secs", overlay_secs);
    row("sim_events", static_cast<double>(outcome.events), 0);
    row("run_secs", outcome.run_secs);
    row("publishes", static_cast<double>(total.publishes), 0);
    row("publishes_per_sec", publishes_per_sec, 1);
    row("delivery_ratio", total.delivery_ratio(), 5);
    row("deliveries", static_cast<double>(total.deliveries), 0);
    row("expected_deliveries", static_cast<double>(total.expected_deliveries), 0);
    row("duplicates", static_cast<double>(total.duplicate_deliveries), 0);
    row("payload_msgs_per_publish", outcome.payload_per_publish(), 2);
    row("full_dissemination_msgs", full_dissemination, 0);
    row("ack_msgs", static_cast<double>(total.ack_messages), 0);
    row("retransmissions", static_cast<double>(total.retransmissions), 0);
    row("retx_per_publish", outcome.retx_per_publish(), 2);
    row("abandoned_hops", static_cast<double>(total.abandoned_hops), 0);
    row("control_msgs", static_cast<double>(total.control_messages), 0);
    row("stranded_msgs", static_cast<double>(total.stranded_messages), 0);
    row("tree_builds", static_cast<double>(total.tree_builds), 0);
    row("build_msgs", static_cast<double>(total.build_messages), 0);
    row("cache_hits", static_cast<double>(total.cache_hits), 0);
    row("grafts", static_cast<double>(total.grafts), 0);
    row("repairs", static_cast<double>(total.repairs), 0);
    row("repair_msgs", static_cast<double>(total.repair_messages), 0);
    row("repair_failures", static_cast<double>(total.repair_failures), 0);
    row("root_migrations", static_cast<double>(total.root_migrations), 0);
    row("stranded_subscribers", static_cast<double>(total.stranded_subscribers), 0);
    row("maintenance_msgs_per_publish", total.maintenance_per_publish(), 2);
    row("network_dropped", static_cast<double>(outcome.net.dropped), 0);
    row("network_retransmitted", static_cast<double>(outcome.net.retransmitted), 0);
    row("network_abandoned_hops", static_cast<double>(outcome.net.abandoned_hops), 0);

    const bool ratio_ok = loss > 0.0 || total.delivery_ratio() >= 0.99;
    const bool pruned_ok = outcome.payload_per_publish() < full_dissemination;
    if (csv) {
      table.print_csv(std::cout);
      if (!ratio_ok || !pruned_ok)  // keep stdout machine-readable
        std::cerr << "pubsub_throughput: acceptance gate failed (ratio_ok="
                  << ratio_ok << ", pruned_ok=" << pruned_ok << ")\n";
    } else {
      std::cout << "=== pub/sub throughput: " << params.group_count << " groups x "
                << params.subscribers << " subscribers on " << params.peers
                << " peers (D=" << dims << "), " << outcome.scheduled_departures
                << " departures, loss=" << loss << ", qos="
                << static_cast<int>(qos) << ", seed=" << params.seed << " ===\n\n";
      table.print(std::cout);
      std::cout << "\nacceptance: delivery_ratio >= 0.99 at zero loss: "
                << (ratio_ok ? "PASS" : "FAIL")
                << "\nacceptance: pruned tree beats full dissemination per publish: "
                << (pruned_ok ? "PASS" : "FAIL") << "\n";
    }
    return ratio_ok && pruned_ok ? 0 : 2;
  } catch (const std::exception& error) {
    std::cerr << "pubsub_throughput: " << error.what() << '\n';
    return 1;
  }
}
