// Throughput microbenchmarks (google-benchmark) for the hot paths behind
// the figure reproductions: neighbour selection, equilibrium construction,
// multicast tree construction and stable-tree assembly.
#include <benchmark/benchmark.h>

#include "geometry/random_points.hpp"
#include "multicast/flooding.hpp"
#include "multicast/space_partition.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "overlay/hyperplane_k.hpp"
#include "overlay/orthant_sweep.hpp"
#include "stability/lifetime.hpp"
#include "stability/stable_tree.hpp"
#include "util/rng.hpp"

namespace {

using namespace geomcast;

std::vector<geometry::Point> make_points(std::size_t n, std::size_t dims) {
  util::Rng rng(0x5eedULL + n * 31 + dims);
  return geometry::random_points(rng, n, dims);
}

void BM_EmptyRectSelect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dims = static_cast<std::size_t>(state.range(1));
  const auto points = make_points(n, dims);
  const auto candidates = overlay::candidates_excluding(points, 0);
  const overlay::EmptyRectSelector selector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(points[0], candidates));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EmptyRectSelect)->Args({1000, 2})->Args({1000, 5})->Args({5000, 2});

void BM_OrthogonalKSelect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dims = static_cast<std::size_t>(state.range(1));
  const auto points = make_points(n, dims);
  const auto candidates = overlay::candidates_excluding(points, 0);
  const auto selector = overlay::HyperplaneKSelector::orthogonal(dims, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(points[0], candidates));
  }
}
BENCHMARK(BM_OrthogonalKSelect)->Args({1000, 2})->Args({1000, 10});

void BM_EquilibriumBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = make_points(n, 2);
  const overlay::EmptyRectSelector selector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlay::build_equilibrium(points, selector));
  }
}
BENCHMARK(BM_EquilibriumBuild)->Arg(200)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_MulticastBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dims = static_cast<std::size_t>(state.range(1));
  const auto points = make_points(n, dims);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(multicast::build_multicast_tree(graph, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MulticastBuild)->Args({1000, 2})->Args({1000, 5});

void BM_FloodingBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = make_points(n, 2);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(multicast::build_flooding_tree(graph, 0));
  }
}
BENCHMARK(BM_FloodingBuild)->Arg(1000);

void BM_OrthantSweepIndexBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = make_points(n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlay::OrthantSweepIndex(points));
  }
}
BENCHMARK(BM_OrthantSweepIndexBuild)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_StableTreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<double> departure_times;
  const auto points = stability::lifetime_points(rng, n, 5, 1000.0, departure_times);
  const overlay::OrthantSweepIndex index(points);
  const auto selections = index.select_k(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stability::build_stable_tree_from_selections(
        selections, points, departure_times));
  }
}
BENCHMARK(BM_StableTreeBuild)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
