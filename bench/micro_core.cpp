// Throughput microbenchmarks (google-benchmark) for the hot paths behind
// the figure reproductions — neighbour selection, equilibrium
// construction, multicast tree construction, stable-tree assembly — plus
// the batched-publish data plane (subscriber-window range admission,
// retained-buffer range insert/evict, root coalescing flush) and the
// event queue under the cancel-heavy load reliable traffic produces.
#include <benchmark/benchmark.h>

#include <any>

#include "geometry/random_points.hpp"
#include "groups/group_manager.hpp"
#include "groups/pubsub.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "multicast/flooding.hpp"
#include "multicast/space_partition.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "overlay/hyperplane_k.hpp"
#include "overlay/orthant_sweep.hpp"
#include "sim/event_queue.hpp"
#include "stability/lifetime.hpp"
#include "stability/stable_tree.hpp"
#include "util/rng.hpp"

namespace {

using namespace geomcast;

std::vector<geometry::Point> make_points(std::size_t n, std::size_t dims) {
  util::Rng rng(0x5eedULL + n * 31 + dims);
  return geometry::random_points(rng, n, dims);
}

void BM_EmptyRectSelect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dims = static_cast<std::size_t>(state.range(1));
  const auto points = make_points(n, dims);
  const auto candidates = overlay::candidates_excluding(points, 0);
  const overlay::EmptyRectSelector selector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(points[0], candidates));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EmptyRectSelect)->Args({1000, 2})->Args({1000, 5})->Args({5000, 2});

void BM_OrthogonalKSelect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dims = static_cast<std::size_t>(state.range(1));
  const auto points = make_points(n, dims);
  const auto candidates = overlay::candidates_excluding(points, 0);
  const auto selector = overlay::HyperplaneKSelector::orthogonal(dims, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(points[0], candidates));
  }
}
BENCHMARK(BM_OrthogonalKSelect)->Args({1000, 2})->Args({1000, 10});

void BM_EquilibriumBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = make_points(n, 2);
  const overlay::EmptyRectSelector selector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlay::build_equilibrium(points, selector));
  }
}
BENCHMARK(BM_EquilibriumBuild)->Arg(200)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_MulticastBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dims = static_cast<std::size_t>(state.range(1));
  const auto points = make_points(n, dims);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(multicast::build_multicast_tree(graph, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MulticastBuild)->Args({1000, 2})->Args({1000, 5});

void BM_FloodingBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = make_points(n, 2);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(multicast::build_flooding_tree(graph, 0));
  }
}
BENCHMARK(BM_FloodingBuild)->Arg(1000);

void BM_OrthantSweepIndexBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = make_points(n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlay::OrthantSweepIndex(points));
  }
}
BENCHMARK(BM_OrthantSweepIndexBuild)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_StableTreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<double> departure_times;
  const auto points = stability::lifetime_points(rng, n, 5, 1000.0, departure_times);
  const overlay::OrthantSweepIndex index(points);
  const auto selections = index.select_k(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stability::build_stable_tree_from_selections(
        selections, points, departure_times));
  }
}
BENCHMARK(BM_StableTreeBuild)->Arg(1000);

// ---------------------------------------------------------- event queue ----

// The cancel-heavy pattern every acked hop produces: schedule a
// retransmit timer, then cancel it when the ack lands. Without heap
// compaction the corpses pile up and every push/pop pays their log; the
// arg is the live:cancelled ratio (1 cancel kept per `range` scheduled).
void BM_EventQueueCancelChurn(benchmark::State& state) {
  const auto keep_every = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    std::size_t fired = 0;
    for (int round = 0; round < 64; ++round) {
      std::vector<sim::EventId> ids;
      ids.reserve(1024);
      const double base = 1.0 + round;
      for (int i = 0; i < 1024; ++i)
        ids.push_back(queue.schedule(base + 0.0001 * i, [&fired] { ++fired; }));
      for (std::size_t i = 0; i < ids.size(); ++i)
        if (i % keep_every != 0) queue.cancel(ids[i]);
      while (queue.pending() > 0) queue.run_next();
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 1024);
}
BENCHMARK(BM_EventQueueCancelChurn)->Arg(2)->Arg(8)->Arg(64);

// ------------------------------------------------------- simulator core ----

// Raw-callback dispatch through the two queue backends: the heap oracle
// vs the hierarchical timer wheel, on the near-horizon schedule-then-pop
// cycle the simulator hot loop runs per envelope. Arg 0 = kHeap,
// 1 = kWheel. CI gates events/sec on these (BM_SimCore*): a wheel
// regression that the bit-identical battery can't see shows up here.
void BM_SimCoreQueueDispatch(benchmark::State& state) {
  const auto backend =
      state.range(0) == 0 ? sim::QueueBackend::kHeap : sim::QueueBackend::kWheel;
  constexpr int kBatch = 1024;
  for (auto _ : state) {
    sim::EventQueue queue(backend);
    std::uint64_t fired = 0;
    // 64 rounds of 1024 events over a ~0.1s horizon each: dense
    // occupancy, the regime the 1000-peer gate cell runs the wheel in.
    for (int round = 0; round < 64; ++round) {
      const double base = 0.1 * round;
      for (int i = 0; i < kBatch; ++i)
        queue.schedule(
            base + 0.0001 * (i % 1000),
            [](void* ctx, std::uint64_t arg) {
              *static_cast<std::uint64_t*>(ctx) += arg;
            },
            &fired, 1);
      while (queue.pending() > 0) queue.run_next();
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * kBatch);
}
BENCHMARK(BM_SimCoreQueueDispatch)->Arg(0)->Arg(1);

// The sparse regime that historically regressed the wheel: few events
// spread over a long horizon, so most rung buckets are empty and a naive
// pop walks thousands of dead buckets per event. The per-rung occupancy
// bitmaps turn that walk into a ctz hop; CI gates wheel >= 1.0x heap here
// (BM_SimCoreQueueSparseHorizon) so the dense-dispatch win can never be
// bought back with a sparse regression. 8192 events over a ~800s horizon,
// scheduled far ahead so every ring level is exercised.
void BM_SimCoreQueueSparseHorizon(benchmark::State& state) {
  const auto backend =
      state.range(0) == 0 ? sim::QueueBackend::kHeap : sim::QueueBackend::kWheel;
  constexpr int kEvents = 8192;
  for (auto _ : state) {
    sim::EventQueue queue(backend);
    std::uint64_t fired = 0;
    util::Rng rng(97);
    for (int i = 0; i < kEvents; ++i)
      queue.schedule(
          rng.uniform(0.0, 800.0),
          [](void* ctx, std::uint64_t arg) {
            *static_cast<std::uint64_t*>(ctx) += arg;
          },
          &fired, 1);
    while (queue.pending() > 0) queue.run_next();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kEvents);
}
BENCHMARK(BM_SimCoreQueueSparseHorizon)->Arg(0)->Arg(1);

// The end-to-end per-event cost of the pub/sub simulation core: one
// PubSubSystem per iteration running a QoS 1 batched publish workload on a
// prebuilt overlay, with the pool reset (release_pools) exercised between
// iterations exactly as the bench driver resets between cells. Arg 0 =
// heap/set oracle core, 1 = sim_core fast path; items = simulator events,
// so items/sec IS the events/sec figure BENCH_simcore.json reports.
void BM_SimCoreWaveDelivery(benchmark::State& state) {
  const bool fast = state.range(0) != 0;
  constexpr std::size_t kPeers = 300;
  constexpr groups::GroupId kGroups = 4;
  const auto points = make_points(kPeers, 2);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  std::int64_t events = 0;
  for (auto _ : state) {
    groups::PubSubConfig config;
    config.seed = 42;
    config.reliability.qos = multicast::QoS::kAcked;
    config.batch_window = 0.1;
    config.sim_core = fast;
    groups::PubSubSystem system(graph, config);
    util::Rng rng(42);
    for (groups::GroupId g = 0; g < kGroups; ++g) {
      const overlay::PeerId root = system.manager().root_of(g);
      for (std::size_t picked = 0; picked < 16;) {
        const auto p = static_cast<overlay::PeerId>(rng.next_below(kPeers));
        if (p == root) continue;
        system.subscribe_at(rng.uniform(0.0, 1.0), p, g);
        ++picked;
      }
      for (std::size_t i = 0; i < 24; ++i)
        system.publish_at(rng.uniform(2.0, 5.0), root, g);
    }
    events += static_cast<std::int64_t>(system.run());
    system.release_pools();
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_SimCoreWaveDelivery)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// ------------------------------------------------- batched publish plane ----

// Range admission through a SubscriberWindow: the batched data plane
// observes dense [lo, hi] ranges instead of single seqs. Args: batch
// width x whether every other batch is withheld first (gap + backfill,
// the repair-path shape) or arrives in order (the hot path).
void BM_SubscriberWindowRangeAdmission(benchmark::State& state) {
  const auto width = static_cast<std::uint64_t>(state.range(0));
  const bool gappy = state.range(1) != 0;
  constexpr std::uint64_t kBatches = 512;
  for (auto _ : state) {
    groups::SubscriberWindow window(/*reorder_limit=*/16 * 1024);
    std::uint64_t released = 0;
    if (gappy) {
      // Even batches arrive late: odd batches open gaps, then the evens
      // backfill them — exercising the per-seq split machinery.
      for (std::uint64_t b = 0; b < kBatches; b += 2) {
        const std::uint64_t lo = (b + 1) * width;
        released += window.observe_range(lo, lo + width - 1).released.size();
      }
      for (std::uint64_t b = 0; b < kBatches; b += 2) {
        const std::uint64_t lo = b * width;
        released += window.observe_range(lo, lo + width - 1).released.size();
      }
    } else {
      for (std::uint64_t b = 0; b < kBatches; ++b) {
        const std::uint64_t lo = b * width;
        released += window.observe_range(lo, lo + width - 1).released.size();
      }
    }
    benchmark::DoNotOptimize(released);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatches * width));
}
BENCHMARK(BM_SubscriberWindowRangeAdmission)
    ->Args({1, 0})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({64, 0});

// Range insert/evict through a RetainedBuffer at steady state: every
// insert past the window evicts the oldest range. Arg: range width (the
// batch factor); capacity is fixed so wider ranges mean fewer entries.
void BM_RetainedBufferRangeInsert(benchmark::State& state) {
  const auto width = static_cast<std::uint64_t>(state.range(0));
  constexpr std::size_t kCapacity = 64;
  constexpr std::uint64_t kWaves = 1024;
  for (auto _ : state) {
    groups::RetainedBuffer buffer(kCapacity);
    std::size_t evicted = 0;
    for (std::uint64_t w = 0; w < kWaves; ++w) {
      const std::uint64_t lo = w * width;
      evicted += buffer.retain(lo, lo + width - 1, std::any{w});
    }
    benchmark::DoNotOptimize(evicted);
    benchmark::DoNotOptimize(buffer.find((kWaves - 1) * width));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWaves));
}
BENCHMARK(BM_RetainedBufferRangeInsert)->Arg(1)->Arg(8)->Arg(64);

// ------------------------------------------------------- graft descent ----

// One full zone-descent graft, step by step through the resumable
// GraftCursor (the unit the routed control plane executes once per
// envelope), followed by the prune that restores the tree — so every
// iteration runs against the identical cached state with no per-iteration
// copy. Items = descent decisions, i.e. the per-step cost the distributed
// graft pays at each hop.
void BM_GraftCursorStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = make_points(n, 3);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  util::Rng rng(23);
  std::vector<bool> subscribers(n, false);
  for (std::size_t picked = 0; picked < 32;) {
    const auto p = static_cast<overlay::PeerId>(rng.next_below(n));
    if (p == 0 || subscribers[p]) continue;
    subscribers[p] = true;
    ++picked;
  }
  auto gt = groups::build_group_tree(graph, /*root=*/0, subscribers);
  // A peer the descent must actually walk to (not already a relay).
  overlay::PeerId target = overlay::kInvalidPeer;
  for (overlay::PeerId p = 0; p < n; ++p)
    if (!subscribers[p] && !gt.tree.reached(p)) {
      target = p;
      break;
    }
  std::int64_t steps = 0;
  for (auto _ : state) {
    auto cursor = groups::graft_cursor(gt, target);
    while (groups::graft_step(graph, gt, cursor).status ==
           groups::GraftStatus::kDescend) {
    }
    steps += static_cast<std::int64_t>(cursor.steps);
    groups::prune_subscriber(gt, target);  // exact inverse: tree restored
  }
  state.SetItemsProcessed(steps);
}
BENCHMARK(BM_GraftCursorStep)->Arg(200)->Arg(1000);

// Routed vs local graft, end to end on the simulated network: 16 early
// subscribers build the tree, 16 late ones graft into it — arg 1 drives
// every descent with routed QoS 1 envelopes, arg 0 runs the root-local
// oracle. The delta is the full distribution overhead of the control
// plane (envelopes, acks, timers), the regression this guard watches.
void BM_RoutedVsLocalGraft(benchmark::State& state) {
  const bool routed = state.range(0) != 0;
  const auto points = make_points(64, 3);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  for (auto _ : state) {
    groups::PubSubConfig config;
    config.reliability.qos = multicast::QoS::kAcked;
    config.routed_graft = routed;
    groups::PubSubSystem system(graph, config);
    for (overlay::PeerId p = 1; p < 17; ++p)
      system.subscribe_at(0.001 * static_cast<double>(p), p, /*group=*/0);
    system.publish_at(2.0, 1, /*group=*/0);
    for (overlay::PeerId p = 17; p < 33; ++p)
      system.subscribe_at(3.0 + 0.01 * static_cast<double>(p), p, /*group=*/0);
    system.publish_at(6.0, 1, /*group=*/0);
    benchmark::DoNotOptimize(system.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_RoutedVsLocalGraft)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Root coalescing flush, end to end: a publish burst lands at the root,
// buffers, and flushes as one range wave down a real 64-peer group tree
// (the simulated network included, so this prices the whole flush path,
// not just the buffer). Arg: burst size; 1 runs the unbatched pipeline
// for the baseline column.
void BM_RootCoalescingFlush(benchmark::State& state) {
  const auto burst = static_cast<std::size_t>(state.range(0));
  const auto points = make_points(64, 3);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  for (auto _ : state) {
    groups::PubSubConfig config;
    config.reliability.qos = multicast::QoS::kAcked;
    if (burst > 1) {
      config.batch_window = 0.05;
      config.max_batch = burst;
    }
    groups::PubSubSystem system(graph, config);
    for (overlay::PeerId p = 1; p < 33; ++p)
      system.subscribe_at(0.001 * static_cast<double>(p), p, /*group=*/0);
    for (int round = 0; round < 8; ++round)
      for (std::size_t i = 0; i < burst; ++i)
        system.publish_at(2.0 + 0.5 * round, 1, /*group=*/0);
    benchmark::DoNotOptimize(system.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          static_cast<std::int64_t>(burst));
}
BENCHMARK(BM_RootCoalescingFlush)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------- observability ----

// The zero-cost-disabled claim, priced: the identical pub/sub workload
// with no trace sink (arg 0, the default every production run takes) vs a
// sink attached (arg 1). Disabled tracing is one null-check per potential
// emit point, so the two timings should be indistinguishable; a visible
// delta means a hot path started paying for tracing it isn't using.
void BM_TracerDisabledOverhead(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  const auto points = make_points(64, 3);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  obs::TraceSink sink;
  for (auto _ : state) {
    groups::PubSubConfig config;
    config.reliability.qos = multicast::QoS::kAcked;
    groups::PubSubSystem system(graph, config);
    if (traced) system.set_trace_sink(&sink);
    for (overlay::PeerId p = 1; p < 33; ++p)
      system.subscribe_at(0.001 * static_cast<double>(p), p, /*group=*/0);
    for (int round = 0; round < 8; ++round)
      system.publish_at(2.0 + 0.5 * round, 1, /*group=*/0);
    benchmark::DoNotOptimize(system.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_TracerDisabledOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Histogram record (the per-delivery cost on the data plane: one frexp +
// one array increment) and bucket-wise merge (the per-group cost when
// total_stats() folds G group histograms together). Arg: values recorded
// per iteration / histograms merged per iteration.
void BM_HistogramRecordMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> values(n);
  util::Rng rng(17);
  for (auto& v : values) v = rng.uniform(1e-4, 10.0);
  obs::Histogram base;
  for (const double v : values) base.record(v);
  for (auto _ : state) {
    obs::Histogram recorded;
    for (const double v : values) recorded.record(v);
    obs::Histogram merged;
    merged.merge(base);
    merged.merge(recorded);
    benchmark::DoNotOptimize(merged.count());
    benchmark::DoNotOptimize(merged.p99());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HistogramRecordMerge)->Arg(64)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
