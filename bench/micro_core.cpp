// Throughput microbenchmarks (google-benchmark) for the hot paths behind
// the figure reproductions — neighbour selection, equilibrium
// construction, multicast tree construction, stable-tree assembly — plus
// the batched-publish data plane (subscriber-window range admission,
// retained-buffer range insert/evict, root coalescing flush) and the
// event queue under the cancel-heavy load reliable traffic produces.
#include <benchmark/benchmark.h>

#include <any>

#include "geometry/random_points.hpp"
#include "groups/group_manager.hpp"
#include "groups/pubsub.hpp"
#include "multicast/flooding.hpp"
#include "multicast/space_partition.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "overlay/hyperplane_k.hpp"
#include "overlay/orthant_sweep.hpp"
#include "sim/event_queue.hpp"
#include "stability/lifetime.hpp"
#include "stability/stable_tree.hpp"
#include "util/rng.hpp"

namespace {

using namespace geomcast;

std::vector<geometry::Point> make_points(std::size_t n, std::size_t dims) {
  util::Rng rng(0x5eedULL + n * 31 + dims);
  return geometry::random_points(rng, n, dims);
}

void BM_EmptyRectSelect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dims = static_cast<std::size_t>(state.range(1));
  const auto points = make_points(n, dims);
  const auto candidates = overlay::candidates_excluding(points, 0);
  const overlay::EmptyRectSelector selector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(points[0], candidates));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EmptyRectSelect)->Args({1000, 2})->Args({1000, 5})->Args({5000, 2});

void BM_OrthogonalKSelect(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dims = static_cast<std::size_t>(state.range(1));
  const auto points = make_points(n, dims);
  const auto candidates = overlay::candidates_excluding(points, 0);
  const auto selector = overlay::HyperplaneKSelector::orthogonal(dims, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.select(points[0], candidates));
  }
}
BENCHMARK(BM_OrthogonalKSelect)->Args({1000, 2})->Args({1000, 10});

void BM_EquilibriumBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = make_points(n, 2);
  const overlay::EmptyRectSelector selector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlay::build_equilibrium(points, selector));
  }
}
BENCHMARK(BM_EquilibriumBuild)->Arg(200)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_MulticastBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto dims = static_cast<std::size_t>(state.range(1));
  const auto points = make_points(n, dims);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(multicast::build_multicast_tree(graph, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MulticastBuild)->Args({1000, 2})->Args({1000, 5});

void BM_FloodingBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = make_points(n, 2);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(multicast::build_flooding_tree(graph, 0));
  }
}
BENCHMARK(BM_FloodingBuild)->Arg(1000);

void BM_OrthantSweepIndexBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto points = make_points(n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlay::OrthantSweepIndex(points));
  }
}
BENCHMARK(BM_OrthantSweepIndexBuild)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_StableTreeBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<double> departure_times;
  const auto points = stability::lifetime_points(rng, n, 5, 1000.0, departure_times);
  const overlay::OrthantSweepIndex index(points);
  const auto selections = index.select_k(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stability::build_stable_tree_from_selections(
        selections, points, departure_times));
  }
}
BENCHMARK(BM_StableTreeBuild)->Arg(1000);

// ---------------------------------------------------------- event queue ----

// The cancel-heavy pattern every acked hop produces: schedule a
// retransmit timer, then cancel it when the ack lands. Without heap
// compaction the corpses pile up and every push/pop pays their log; the
// arg is the live:cancelled ratio (1 cancel kept per `range` scheduled).
void BM_EventQueueCancelChurn(benchmark::State& state) {
  const auto keep_every = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue queue;
    std::size_t fired = 0;
    for (int round = 0; round < 64; ++round) {
      std::vector<sim::EventId> ids;
      ids.reserve(1024);
      const double base = 1.0 + round;
      for (int i = 0; i < 1024; ++i)
        ids.push_back(queue.schedule(base + 0.0001 * i, [&fired] { ++fired; }));
      for (std::size_t i = 0; i < ids.size(); ++i)
        if (i % keep_every != 0) queue.cancel(ids[i]);
      while (queue.pending() > 0) queue.run_next();
    }
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 1024);
}
BENCHMARK(BM_EventQueueCancelChurn)->Arg(2)->Arg(8)->Arg(64);

// ------------------------------------------------- batched publish plane ----

// Range admission through a SubscriberWindow: the batched data plane
// observes dense [lo, hi] ranges instead of single seqs. Args: batch
// width x whether every other batch is withheld first (gap + backfill,
// the repair-path shape) or arrives in order (the hot path).
void BM_SubscriberWindowRangeAdmission(benchmark::State& state) {
  const auto width = static_cast<std::uint64_t>(state.range(0));
  const bool gappy = state.range(1) != 0;
  constexpr std::uint64_t kBatches = 512;
  for (auto _ : state) {
    groups::SubscriberWindow window(/*reorder_limit=*/16 * 1024);
    std::uint64_t released = 0;
    if (gappy) {
      // Even batches arrive late: odd batches open gaps, then the evens
      // backfill them — exercising the per-seq split machinery.
      for (std::uint64_t b = 0; b < kBatches; b += 2) {
        const std::uint64_t lo = (b + 1) * width;
        released += window.observe_range(lo, lo + width - 1).released.size();
      }
      for (std::uint64_t b = 0; b < kBatches; b += 2) {
        const std::uint64_t lo = b * width;
        released += window.observe_range(lo, lo + width - 1).released.size();
      }
    } else {
      for (std::uint64_t b = 0; b < kBatches; ++b) {
        const std::uint64_t lo = b * width;
        released += window.observe_range(lo, lo + width - 1).released.size();
      }
    }
    benchmark::DoNotOptimize(released);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatches * width));
}
BENCHMARK(BM_SubscriberWindowRangeAdmission)
    ->Args({1, 0})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({64, 0});

// Range insert/evict through a RetainedBuffer at steady state: every
// insert past the window evicts the oldest range. Arg: range width (the
// batch factor); capacity is fixed so wider ranges mean fewer entries.
void BM_RetainedBufferRangeInsert(benchmark::State& state) {
  const auto width = static_cast<std::uint64_t>(state.range(0));
  constexpr std::size_t kCapacity = 64;
  constexpr std::uint64_t kWaves = 1024;
  for (auto _ : state) {
    groups::RetainedBuffer buffer(kCapacity);
    std::size_t evicted = 0;
    for (std::uint64_t w = 0; w < kWaves; ++w) {
      const std::uint64_t lo = w * width;
      evicted += buffer.retain(lo, lo + width - 1, std::any{w});
    }
    benchmark::DoNotOptimize(evicted);
    benchmark::DoNotOptimize(buffer.find((kWaves - 1) * width));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWaves));
}
BENCHMARK(BM_RetainedBufferRangeInsert)->Arg(1)->Arg(8)->Arg(64);

// Root coalescing flush, end to end: a publish burst lands at the root,
// buffers, and flushes as one range wave down a real 64-peer group tree
// (the simulated network included, so this prices the whole flush path,
// not just the buffer). Arg: burst size; 1 runs the unbatched pipeline
// for the baseline column.
void BM_RootCoalescingFlush(benchmark::State& state) {
  const auto burst = static_cast<std::size_t>(state.range(0));
  const auto points = make_points(64, 3);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  for (auto _ : state) {
    groups::PubSubConfig config;
    config.reliability.qos = multicast::QoS::kAcked;
    if (burst > 1) {
      config.batch_window = 0.05;
      config.max_batch = burst;
    }
    groups::PubSubSystem system(graph, config);
    for (overlay::PeerId p = 1; p < 33; ++p)
      system.subscribe_at(0.001 * static_cast<double>(p), p, /*group=*/0);
    for (int round = 0; round < 8; ++round)
      for (std::size_t i = 0; i < burst; ++i)
        system.publish_at(2.0 + 0.5 * round, 1, /*group=*/0);
    benchmark::DoNotOptimize(system.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          static_cast<std::int64_t>(burst));
}
BENCHMARK(BM_RootCoalescingFlush)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
