#include "geometry/random_points.hpp"

#include <gtest/gtest.h>

namespace geomcast::geometry {
namespace {

TEST(RandomPointsTest, CountAndDims) {
  util::Rng rng(1);
  const auto points = random_points(rng, 100, 4, 50.0);
  ASSERT_EQ(points.size(), 100u);
  for (const auto& p : points) EXPECT_EQ(p.dims(), 4u);
}

TEST(RandomPointsTest, CoordinatesWithinRange) {
  util::Rng rng(2);
  const auto points = random_points(rng, 500, 3, 10.0);
  for (const auto& p : points)
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_GE(p[d], 0.0);
      EXPECT_LT(p[d], 10.0);
    }
}

TEST(RandomPointsTest, PerDimensionDistinctness) {
  // The paper's standing assumption; enforced by construction.
  util::Rng rng(3);
  const auto points = random_points(rng, 2000, 2, 1000.0);
  EXPECT_TRUE(all_coordinates_distinct(points));
}

TEST(RandomPointsTest, DeterministicFromSeed) {
  util::Rng a(42), b(42);
  const auto pa = random_points(a, 50, 3, 100.0);
  const auto pb = random_points(b, 50, 3, 100.0);
  EXPECT_EQ(pa, pb);
}

TEST(RandomPointsTest, DifferentSeedsDiffer) {
  util::Rng a(42), b(43);
  EXPECT_NE(random_points(a, 50, 3, 100.0), random_points(b, 50, 3, 100.0));
}

TEST(RandomPointsTest, EmptyRequest) {
  util::Rng rng(4);
  EXPECT_TRUE(random_points(rng, 0, 2, 10.0).empty());
}

TEST(RandomPointsTest, InvalidArgumentsThrow) {
  util::Rng rng(5);
  EXPECT_THROW(random_points(rng, 10, 0, 10.0), std::invalid_argument);
  EXPECT_THROW(random_points(rng, 10, kMaxDims + 1, 10.0), std::invalid_argument);
  EXPECT_THROW(random_points(rng, 10, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(random_points(rng, 10, 2, -5.0), std::invalid_argument);
}

TEST(RandomPointsTest, DistinctnessCheckerDetectsDuplicates) {
  std::vector<Point> points{Point({1.0, 2.0}), Point({1.0, 3.0})};  // dup in dim 0
  EXPECT_FALSE(all_coordinates_distinct(points));
  points[1][0] = 4.0;
  EXPECT_TRUE(all_coordinates_distinct(points));
}

TEST(RandomPointsTest, UniformCoverage) {
  // Mean coordinate should be near vmax/2 in every dimension.
  util::Rng rng(6);
  const auto points = random_points(rng, 20000, 2, 100.0);
  for (std::size_t d = 0; d < 2; ++d) {
    double sum = 0.0;
    for (const auto& p : points) sum += p[d];
    EXPECT_NEAR(sum / static_cast<double>(points.size()), 50.0, 1.5);
  }
}

}  // namespace
}  // namespace geomcast::geometry
