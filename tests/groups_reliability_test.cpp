// Loss-focused battery for the reliable pub/sub data plane: a per-link
// loss sweep comparing the QoS ladder, retry-budget exhaustion accounting,
// the duplicate-must-still-ack regression, bit-identical stats under a
// fixed seed, and the per-QoS ordering (non-)guarantees — QoS 1's
// retransmissions deliver out of order by design (the latent gap this
// battery pins), while QoS 2's window releases in order. Labelled `slow`
// in ctest: the sweep runs six full simulations on one overlay.
#include "groups/pubsub.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "geometry/random_points.hpp"
#include "groups_test_util.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/rng.hpp"

namespace geomcast::groups {
namespace {

overlay::OverlayGraph make_overlay(std::size_t n, std::size_t dims, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto points = geometry::random_points(rng, n, dims, 100.0);
  return overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
}

struct ScenarioResult {
  GroupStats total;
  sim::NetworkStats net;
};

/// The battery's standard workload: `group_count` groups x `subscribers`
/// members each (staggered subscribes in (0, 1)), `publishes` publishes per
/// group over [2, 6), no churn — loss is the variable under test.
ScenarioResult run_scenario(const overlay::OverlayGraph& graph, multicast::QoS qos,
                            double loss_p, std::uint64_t seed,
                            std::function<bool(const sim::Envelope&)> drop_if = {},
                            std::size_t group_count = 4, std::size_t subscribers = 14,
                            std::size_t publishes = 5) {
  PubSubConfig config;
  config.seed = seed;
  config.loss.drop_probability = loss_p;
  config.loss.drop_if = std::move(drop_if);
  config.reliability.qos = qos;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 5;
  PubSubSystem system(graph, config);

  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (GroupId g = 0; g < group_count; ++g) {
    const PeerId root = system.manager().root_of(g);
    std::vector<bool> chosen(graph.size(), false);
    std::vector<PeerId> members;
    while (members.size() < subscribers) {
      const auto p = static_cast<PeerId>(rng.next_below(graph.size()));
      if (chosen[p] || p == root) continue;
      chosen[p] = true;
      members.push_back(p);
      system.subscribe_at(0.001 * static_cast<double>(members.size()), p, g);
    }
    for (std::size_t i = 0; i < publishes; ++i)
      system.publish_at(2.0 + 0.8 * static_cast<double>(i), members[i % subscribers], g);
  }
  system.run();
  return {system.total_stats(), system.simulator().stats()};
}

TEST(GroupsReliabilityTest, LossSweepQoS1HoldsDeliveryWhereQoS0Degrades) {
  const auto graph = make_overlay(220, 2, 901);
  for (const double p : {0.0, 0.05, 0.15}) {
    SCOPED_TRACE("loss=" + std::to_string(p));
    const auto q0 = run_scenario(graph, multicast::QoS::kFireAndForget, p, 17);
    const auto q1 = run_scenario(graph, multicast::QoS::kAcked, p, 17);

    EXPECT_GE(q1.total.delivery_ratio(), 0.99);
    if (p == 0.0) {
      // Identical outcomes, and the acked plane pays exactly one ack per
      // payload hop for them.
      EXPECT_DOUBLE_EQ(q0.total.delivery_ratio(), 1.0);
      EXPECT_DOUBLE_EQ(q1.total.delivery_ratio(), 1.0);
      EXPECT_EQ(q1.total.retransmissions, 0u);
      EXPECT_EQ(q1.total.ack_messages, q1.total.payload_messages);
    } else {
      // Fire-and-forget measurably degrades; the acked plane holds.
      EXPECT_LT(q0.total.delivery_ratio(), 0.99);
      EXPECT_LT(q0.total.delivery_ratio(), q1.total.delivery_ratio() - 0.01);
      EXPECT_GT(q1.total.retransmissions, 0u);
    }
    // QoS 0 never touches the reliability machinery.
    EXPECT_EQ(q0.total.ack_messages, 0u);
    EXPECT_EQ(q0.total.retransmissions, 0u);
    EXPECT_EQ(q0.total.abandoned_hops, 0u);
    EXPECT_EQ(q0.total.duplicate_deliveries, 0u);
    EXPECT_EQ(q0.net.sent_by_kind.count(kDeliverAckKind), 0u);
    // Per-group counters and the simulator's network view must agree.
    EXPECT_EQ(q1.total.retransmissions, q1.net.retransmitted);
    EXPECT_EQ(q1.total.duplicate_deliveries, q1.net.duplicate_data);
    EXPECT_EQ(q1.total.abandoned_hops, q1.net.abandoned_hops);
  }
}

TEST(GroupsReliabilityTest, RetryBudgetExhaustionSurfacesAsAbandonedHops) {
  const auto graph = make_overlay(120, 2, 902);
  // Sever one subscriber's incoming payload link entirely: every wave's hop
  // to it must burn the full budget and be reported abandoned.
  const GroupId g = 0;
  const std::size_t publishes = 3;
  auto victim = std::make_shared<PeerId>(kInvalidPeer);
  PubSubConfig config;
  config.seed = 23;
  config.loss.drop_if = [victim](const sim::Envelope& e) {
    return e.kind == kDeliverKind && e.to == *victim;
  };
  config.reliability.qos = multicast::QoS::kAcked;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 5;
  PubSubSystem system(graph, config);

  const PeerId root = system.manager().root_of(g);
  std::vector<PeerId> members;
  for (PeerId p = 0; members.size() < 10; ++p)
    if (p != root) members.push_back(p);
  for (std::size_t i = 0; i < members.size(); ++i)
    system.subscribe_at(0.001 * static_cast<double>(i + 1), members[i], g);
  *victim = members[3];
  for (std::size_t i = 0; i < publishes; ++i)
    system.publish_at(2.0 + 0.8 * static_cast<double>(i), members[i], g);
  system.run();

  const auto& stats = system.stats(g);
  ASSERT_EQ(stats.publishes, publishes);
  EXPECT_EQ(stats.abandoned_hops, publishes);          // one dead hop per wave
  EXPECT_EQ(stats.retransmissions, publishes * 5);     // the full budget each time
  EXPECT_LT(stats.delivery_ratio(), 1.0);
  EXPECT_EQ(system.simulator().stats().abandoned_hops, stats.abandoned_hops);
}

TEST(GroupsReliabilityTest, DuplicateDeliverIsStillAckedRegression) {
  // Regression for the dedup/ack interaction: when a link's first ack is
  // lost, the retransmission hits the per-(group, seq) dedup as a
  // duplicate. The duplicate MUST still be acked — otherwise the sender
  // keeps retransmitting until its budget dies on a link that already
  // delivered (abandoned_hops > 0, retransmissions = budget x links).
  const auto graph = make_overlay(120, 2, 903);
  auto acks_dropped = std::make_shared<std::set<std::pair<sim::NodeId, sim::NodeId>>>();
  auto drop_first_ack_per_link = [acks_dropped](const sim::Envelope& e) {
    if (e.kind != kDeliverAckKind) return false;
    return acks_dropped->emplace(e.from, e.to).second;  // first ack on this link
  };
  const auto lossy = run_scenario(graph, multicast::QoS::kAcked, 0.0, 29,
                                  drop_first_ack_per_link);
  const auto clean = run_scenario(graph, multicast::QoS::kAcked, 0.0, 29);

  ASSERT_GT(lossy.total.duplicate_deliveries, 0u);
  // The re-ack rescued every sender: nothing abandoned, one retransmission
  // per suppressed duplicate, and delivery untouched.
  EXPECT_EQ(lossy.total.abandoned_hops, 0u);
  EXPECT_EQ(lossy.total.retransmissions, lossy.total.duplicate_deliveries);
  EXPECT_DOUBLE_EQ(lossy.total.delivery_ratio(), 1.0);
  EXPECT_EQ(lossy.total.deliveries, clean.total.deliveries);
  // Duplicates were not re-forwarded: first-copy payload traffic matches
  // the undisturbed run exactly.
  EXPECT_EQ(lossy.total.payload_messages, clean.total.payload_messages);
}

TEST(GroupsReliabilityTest, StatsAreBitIdenticalAcrossRunsWithTheSameSeed) {
  const auto graph = make_overlay(150, 2, 904);
  const auto a = run_scenario(graph, multicast::QoS::kAcked, 0.15, 31);
  const auto b = run_scenario(graph, multicast::QoS::kAcked, 0.15, 31);

  EXPECT_EQ(a.total.subscribes, b.total.subscribes);
  EXPECT_EQ(a.total.publishes, b.total.publishes);
  EXPECT_EQ(a.total.expected_deliveries, b.total.expected_deliveries);
  EXPECT_EQ(a.total.deliveries, b.total.deliveries);
  EXPECT_EQ(a.total.duplicate_deliveries, b.total.duplicate_deliveries);
  EXPECT_EQ(a.total.payload_messages, b.total.payload_messages);
  EXPECT_EQ(a.total.ack_messages, b.total.ack_messages);
  EXPECT_EQ(a.total.retransmissions, b.total.retransmissions);
  EXPECT_EQ(a.total.abandoned_hops, b.total.abandoned_hops);
  EXPECT_EQ(a.total.control_messages, b.total.control_messages);
  EXPECT_EQ(a.total.stranded_messages, b.total.stranded_messages);
  EXPECT_EQ(a.net.sent, b.net.sent);
  EXPECT_EQ(a.net.delivered, b.net.delivered);
  EXPECT_EQ(a.net.dropped, b.net.dropped);
  EXPECT_EQ(a.net.retransmitted, b.net.retransmitted);
  EXPECT_EQ(a.net.duplicate_data, b.net.duplicate_data);
  EXPECT_EQ(a.net.abandoned_hops, b.net.abandoned_hops);
  EXPECT_EQ(a.net.sent_by_kind, b.net.sent_by_kind);
}

/// Ordering scenario: a clean warm wave (seq 0) initializes every QoS 2
/// window, then the victim's first copy of seq 1 is dropped while seq 2
/// publishes hot on its heels — so seq 1 can only reach the victim after
/// seq 2, via retransmission (QoS 1/2) or never (QoS 0). Returns the
/// victim's application-level delivery order.
struct OrderingOutcome {
  std::vector<std::uint64_t> victim_order;
  GroupStats stats;
};
OrderingOutcome run_ordering_scenario(const overlay::OverlayGraph& graph,
                                      multicast::QoS qos, PeerId victim,
                                      std::uint64_t seed) {
  PubSubConfig config;
  config.seed = seed;
  config.reliability.qos = qos;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 5;
  auto dropped = std::make_shared<bool>(false);
  config.loss.drop_if = [victim, dropped](const sim::Envelope& e) {
    if (*dropped || e.kind != kDeliverKind || e.to != victim) return false;
    if (std::any_cast<const DeliveryPtr&>(e.payload)->seq != 1) return false;
    *dropped = true;
    return true;
  };
  PubSubSystem system(graph, config);
  OrderingOutcome outcome;
  system.set_delivery_probe(
      [&outcome, victim](PeerId p, GroupId, std::uint64_t seq, double) {
        if (p == victim) outcome.victim_order.push_back(seq);
      });
  testutil::subscribe_members(system, graph, 0, 12, seed);
  // Root-published so wave timing is exact: seq 2 leaves 30ms after seq 1,
  // well inside the 50ms retransmission the dropped copy must wait for.
  const PeerId root = system.manager().root_of(0);
  system.publish_at(2.0, root, 0);
  system.publish_at(3.0, root, 0);
  system.publish_at(3.03, root, 0);
  system.run();
  outcome.stats = system.stats(0);
  return outcome;
}

TEST(GroupsReliabilityTest, OrderingGuaranteesDifferAcrossTheQoSLadder) {
  const auto graph = make_overlay(150, 2, 906);
  const std::uint64_t seed = 67;
  // The tree is a pure function of (graph, root, membership), so the dry
  // run's leaf pick holds for the lossy ordering scenarios too.
  const PeerId victim = testutil::find_leaf_subscriber(graph, 0, 12, seed, 1);
  ASSERT_NE(victim, kInvalidPeer);

  {
    // QoS 0: the dropped copy is simply gone — a gap, not a reorder (with
    // a static tree and constant latency QoS 0 happens to preserve order;
    // a graft or repair between publishes voids even that — see the
    // ordering contract in pubsub.hpp).
    SCOPED_TRACE("qos=0");
    const auto r = run_ordering_scenario(graph, multicast::QoS::kFireAndForget,
                                         victim, seed);
    EXPECT_EQ(r.victim_order, (std::vector<std::uint64_t>{0, 2}));
    EXPECT_EQ(r.stats.deliveries, r.stats.expected_deliveries - 1);
  }
  {
    // QoS 1: retransmission recovers the copy but delivers it AFTER the
    // younger seq — the latent out-of-order delivery this battery pins.
    SCOPED_TRACE("qos=1");
    const auto r = run_ordering_scenario(graph, multicast::QoS::kAcked, victim, seed);
    EXPECT_EQ(r.victim_order, (std::vector<std::uint64_t>{0, 2, 1}));
    EXPECT_FALSE(std::is_sorted(r.victim_order.begin(), r.victim_order.end()));
    EXPECT_EQ(r.stats.deliveries, r.stats.expected_deliveries);  // nothing lost
  }
  {
    // QoS 2: the window holds seq 2 back until the retransmitted seq 1
    // lands, then releases in order — and because per-hop recovery healed
    // the gap before the gap timeout, the repair plane never sent a NACK
    // (the piggyback contract: no double repair).
    SCOPED_TRACE("qos=2");
    const auto r = run_ordering_scenario(graph, multicast::QoS::kEndToEnd, victim, seed);
    EXPECT_EQ(r.victim_order, (std::vector<std::uint64_t>{0, 1, 2}));
    EXPECT_EQ(r.stats.deliveries, r.stats.expected_deliveries);
    EXPECT_EQ(r.stats.gap_seqs_detected, 1u);
    EXPECT_EQ(r.stats.gap_seqs_repaired, 1u);
    EXPECT_EQ(r.stats.nacks_sent, 0u);
    EXPECT_EQ(r.stats.repairs_served, 0u);
    EXPECT_EQ(r.stats.pre_window_deliveries, 0u);
  }
}

TEST(GroupsReliabilityTest, QoSZeroPathIsUnaffectedByReliabilitySettings) {
  // Under QoS 0 the ack_timeout/max_retries knobs must be inert: the layer
  // is a passthrough and the run is bit-identical whatever they say.
  const auto graph = make_overlay(100, 2, 905);
  auto run_with = [&](double timeout, std::size_t retries) {
    PubSubConfig config;
    config.seed = 11;
    config.loss.drop_probability = 0.1;
    config.reliability.qos = multicast::QoS::kFireAndForget;
    config.reliability.ack_timeout = timeout;
    config.reliability.max_retries = retries;
    PubSubSystem system(graph, config);
    const auto members_seed = 61;
    util::Rng rng(members_seed);
    const PeerId root = system.manager().root_of(1);
    std::vector<PeerId> members;
    std::vector<bool> chosen(graph.size(), false);
    while (members.size() < 12) {
      const auto p = static_cast<PeerId>(rng.next_below(graph.size()));
      if (chosen[p] || p == root) continue;
      chosen[p] = true;
      members.push_back(p);
      system.subscribe_at(0.001 * static_cast<double>(members.size()), p, 1);
    }
    for (std::size_t i = 0; i < 4; ++i)
      system.publish_at(2.0 + 0.5 * static_cast<double>(i), members[i], 1);
    system.run();
    return std::make_tuple(system.stats(1).deliveries, system.stats(1).payload_messages,
                           system.stats(1).control_messages,
                           system.simulator().stats().sent,
                           system.simulator().stats().dropped);
  };
  EXPECT_EQ(run_with(0.05, 5), run_with(9.0, 0));
}

}  // namespace
}  // namespace geomcast::groups
