#include "geometry/orthant.hpp"

#include <gtest/gtest.h>

#include "geometry/random_points.hpp"
#include "util/rng.hpp"

namespace geomcast::geometry {
namespace {

TEST(OrthantTest, CountIsTwoToTheD) {
  EXPECT_EQ(orthant_count(1), 2u);
  EXPECT_EQ(orthant_count(2), 4u);
  EXPECT_EQ(orthant_count(5), 32u);
  EXPECT_EQ(orthant_count(10), 1024u);
}

TEST(OrthantTest, QuadrantCodes2D) {
  const Point ego{5.0, 5.0};
  EXPECT_EQ(orthant_of(ego, Point({4.0, 4.0})), 0u);  // both below
  EXPECT_EQ(orthant_of(ego, Point({6.0, 4.0})), 1u);  // x above
  EXPECT_EQ(orthant_of(ego, Point({4.0, 6.0})), 2u);  // y above
  EXPECT_EQ(orthant_of(ego, Point({6.0, 6.0})), 3u);  // both above
}

TEST(OrthantTest, OrthantRectContainsItsPoints) {
  const Point ego{1.0, 2.0, 3.0};
  util::Rng rng(5);
  const auto points = random_points(rng, 200, 3, 10.0);
  for (const auto& q : points) {
    if (q == ego) continue;
    const auto code = orthant_of(ego, q);
    EXPECT_TRUE(orthant_rect(ego, code).contains_interior(q))
        << "q=" << q.to_string() << " code=" << code;
  }
}

TEST(OrthantTest, OrthantRectsExcludeEgo) {
  const Point ego{4.0, 4.0};
  for (OrthantCode code = 0; code < orthant_count(2); ++code)
    EXPECT_FALSE(orthant_rect(ego, code).contains_interior(ego));
}

TEST(OrthantTest, DistinctOrthantRectsAreDisjoint) {
  const Point ego{0.0, 0.0, 0.0};
  const auto n = orthant_count(3);
  for (OrthantCode a = 0; a < n; ++a)
    for (OrthantCode b = a + 1; b < n; ++b)
      EXPECT_TRUE(orthant_rect(ego, a).interior_disjoint(orthant_rect(ego, b)))
          << "orthants " << a << " and " << b;
}

// The orthant partition must classify every point (with distinct
// coordinates) into exactly one region whose rect contains it.
class OrthantPartitionTest : public ::testing::TestWithParam<int> {};

TEST_P(OrthantPartitionTest, ExactlyOneRegionContainsEachPoint) {
  const auto dims = static_cast<std::size_t>(GetParam());
  util::Rng rng(123 + dims);
  const auto points = random_points(rng, 50, dims, 100.0);
  const Point& ego = points[0];
  for (std::size_t i = 1; i < points.size(); ++i) {
    int containing = 0;
    for (OrthantCode code = 0; code < orthant_count(dims); ++code)
      if (orthant_rect(ego, code).contains_interior(points[i])) ++containing;
    EXPECT_EQ(containing, 1) << "point " << points[i].to_string();
    EXPECT_TRUE(orthant_rect(ego, orthant_of(ego, points[i])).contains_interior(points[i]));
  }
}

TEST_P(OrthantPartitionTest, CodeBitsMatchCoordinateComparisons) {
  const auto dims = static_cast<std::size_t>(GetParam());
  util::Rng rng(321 + dims);
  const auto points = random_points(rng, 30, dims, 100.0);
  const Point& ego = points[0];
  for (std::size_t i = 1; i < points.size(); ++i) {
    const auto code = orthant_of(ego, points[i]);
    for (std::size_t d = 0; d < dims; ++d) {
      const bool bit = (code >> d) & 1u;
      EXPECT_EQ(bit, points[i][d] > ego[d]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, OrthantPartitionTest, ::testing::Values(1, 2, 3, 4, 5, 8, 10));

}  // namespace
}  // namespace geomcast::geometry
