#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace geomcast::util {
namespace {

TEST(TableTest, RequiresAtLeastOneColumn) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, BasicRendering) {
  Table table({"name", "value"});
  table.begin_row().add_cell("alpha").add_integer(42);
  table.begin_row().add_cell("beta").add_number(3.5);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("3.5"), std::string::npos);
}

TEST(TableTest, ColumnsAligned) {
  Table table({"a", "b"});
  table.begin_row().add_cell("longvalue").add_cell("x");
  table.begin_row().add_cell("y").add_cell("z");
  std::istringstream lines(table.to_string());
  std::string first, second, third, fourth;
  std::getline(lines, first);
  std::getline(lines, second);
  std::getline(lines, third);
  std::getline(lines, fourth);
  EXPECT_EQ(first.size(), third.size());
  EXPECT_EQ(third.size(), fourth.size());
}

TEST(TableTest, AddCellBeforeRowThrows) {
  Table table({"x"});
  EXPECT_THROW(table.add_cell("oops"), std::logic_error);
}

TEST(TableTest, TooManyCellsThrows) {
  Table table({"only"});
  table.begin_row().add_cell("fine");
  EXPECT_THROW(table.add_cell("extra"), std::logic_error);
}

TEST(TableTest, RowAndColumnCounts) {
  Table table({"a", "b", "c"});
  EXPECT_EQ(table.column_count(), 3u);
  EXPECT_EQ(table.row_count(), 0u);
  table.begin_row().add_cell("1").add_cell("2").add_cell("3");
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(TableTest, CsvBasic) {
  Table table({"a", "b"});
  table.begin_row().add_cell("1").add_cell("2");
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\n");
}

TEST(TableTest, CsvEscapesCommasAndQuotes) {
  Table table({"text"});
  table.begin_row().add_cell("hello, world");
  table.begin_row().add_cell("say \"hi\"");
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"hello, world\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, IntegerFormatting) {
  Table table({"n"});
  table.begin_row().add_integer(-7);
  EXPECT_NE(table.to_string().find("-7"), std::string::npos);
}

TEST(TableTest, NumberRoundsToMaxDecimals) {
  Table table({"v"});
  table.begin_row().add_number(2.71828, 2);
  EXPECT_NE(table.to_string().find("2.72"), std::string::npos);
}

}  // namespace
}  // namespace geomcast::util
