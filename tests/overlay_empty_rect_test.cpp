#include "overlay/empty_rect.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "geometry/orthant.hpp"
#include "geometry/random_points.hpp"
#include "util/rng.hpp"

namespace geomcast::overlay {
namespace {

std::vector<Candidate> to_candidates(const std::vector<geometry::Point>& points,
                                     std::size_t ego_index) {
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (i != ego_index) candidates.push_back({static_cast<PeerId>(i), points[i]});
  return candidates;
}

TEST(EmptyRectTest, NoCandidatesNoNeighbors) {
  EmptyRectSelector selector;
  EXPECT_TRUE(selector.select(geometry::Point({1.0, 2.0}), {}).empty());
}

TEST(EmptyRectTest, SingleCandidateAlwaysNeighbor) {
  EmptyRectSelector selector;
  const std::vector<Candidate> candidates{{7, geometry::Point({3.0, 4.0})}};
  const auto result = selector.select(geometry::Point({0.0, 0.0}), candidates);
  EXPECT_EQ(result, (std::vector<PeerId>{7}));
}

TEST(EmptyRectTest, BlockedByPointInsideBox) {
  // R = (1,1) sits strictly inside the box spanned by P=(0,0) and Q=(2,2).
  EmptyRectSelector selector;
  const std::vector<Candidate> candidates{{1, geometry::Point({2.0, 2.2})},
                                          {2, geometry::Point({1.0, 1.1})}};
  const auto result = selector.select(geometry::Point({0.0, 0.0}), candidates);
  EXPECT_EQ(result, (std::vector<PeerId>{2}));
}

TEST(EmptyRectTest, DifferentQuadrantsDontBlock) {
  EmptyRectSelector selector;
  const std::vector<Candidate> candidates{{1, geometry::Point({2.0, 3.0})},
                                          {2, geometry::Point({-1.0, -1.5})},
                                          {3, geometry::Point({2.5, -0.5})},
                                          {4, geometry::Point({-2.0, 0.5})}};
  const auto result = selector.select(geometry::Point({0.0, 0.0}), candidates);
  EXPECT_EQ(result, (std::vector<PeerId>{1, 2, 3, 4}));
}

TEST(EmptyRectTest, StaircaseIn2D) {
  // All candidates in one quadrant forming a staircase: all are neighbours.
  EmptyRectSelector selector;
  const std::vector<Candidate> candidates{{1, geometry::Point({1.0, 5.0})},
                                          {2, geometry::Point({2.0, 3.0})},
                                          {3, geometry::Point({4.0, 2.0})},
                                          {4, geometry::Point({6.0, 1.0})}};
  const auto result = selector.select(geometry::Point({0.0, 0.0}), candidates);
  EXPECT_EQ(result, (std::vector<PeerId>{1, 2, 3, 4}));
}

TEST(EmptyRectTest, DominatedChainKeepsOnlyClosest) {
  // Candidates along the diagonal: each dominates the next.
  EmptyRectSelector selector;
  const std::vector<Candidate> candidates{{1, geometry::Point({1.0, 1.5})},
                                          {2, geometry::Point({2.0, 2.5})},
                                          {3, geometry::Point({3.0, 3.5})}};
  const auto result = selector.select(geometry::Point({0.0, 0.0}), candidates);
  EXPECT_EQ(result, (std::vector<PeerId>{1}));
}

// ------------------------------------------------------------------ property
// The fast selector must agree exactly with the literal O(n^2) paper rule.
class EmptyRectAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(EmptyRectAgreementTest, FastMatchesBruteForce) {
  const auto [dims, count, seed] = GetParam();
  util::Rng rng(seed);
  const auto points =
      geometry::random_points(rng, static_cast<std::size_t>(count),
                              static_cast<std::size_t>(dims), 100.0);
  EmptyRectSelector selector;
  for (std::size_t ego = 0; ego < points.size(); ++ego) {
    const auto candidates = to_candidates(points, ego);
    const auto fast = selector.select(points[ego], candidates);
    const auto brute = EmptyRectSelector::select_brute_force(points[ego], candidates);
    EXPECT_EQ(fast, brute) << "ego=" << ego << " dims=" << dims;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EmptyRectAgreementTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6), ::testing::Values(40, 120),
                       ::testing::Values(1u, 2u, 3u)));

// Symmetry: the box spanned by {P,Q} is the same from both ends, so under
// full knowledge the neighbour relation is symmetric.
class EmptyRectSymmetryTest : public ::testing::TestWithParam<int> {};

TEST_P(EmptyRectSymmetryTest, NeighborRelationSymmetric) {
  const auto dims = static_cast<std::size_t>(GetParam());
  util::Rng rng(77 + dims);
  const auto points = geometry::random_points(rng, 80, dims, 100.0);
  EmptyRectSelector selector;
  std::vector<std::vector<PeerId>> selections(points.size());
  for (std::size_t ego = 0; ego < points.size(); ++ego)
    selections[ego] = selector.select(points[ego], to_candidates(points, ego));
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (PeerId q : selections[p]) {
      EXPECT_TRUE(std::binary_search(selections[q].begin(), selections[q].end(),
                                     static_cast<PeerId>(p)))
          << p << " selected " << q << " but not vice versa";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, EmptyRectSymmetryTest, ::testing::Values(2, 3, 4, 5));

// Coverage property (the §2 delivery argument relies on it): for every
// orthant of every peer that contains at least one known peer, the selector
// keeps at least one neighbour in that orthant.
class EmptyRectCoverageTest : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(EmptyRectCoverageTest, NonEmptyOrthantsHaveANeighbor) {
  const auto [dims_int, seed] = GetParam();
  const auto dims = static_cast<std::size_t>(dims_int);
  util::Rng rng(seed);
  const auto points = geometry::random_points(rng, 100, dims, 100.0);
  EmptyRectSelector selector;
  for (std::size_t ego = 0; ego < points.size(); ++ego) {
    const auto candidates = to_candidates(points, ego);
    const auto neighbors = selector.select(points[ego], candidates);
    std::vector<bool> orthant_has_candidate(geometry::orthant_count(dims), false);
    std::vector<bool> orthant_has_neighbor(geometry::orthant_count(dims), false);
    for (const auto& c : candidates)
      orthant_has_candidate[geometry::orthant_of(points[ego], c.point)] = true;
    for (PeerId q : neighbors)
      orthant_has_neighbor[geometry::orthant_of(points[ego], points[q])] = true;
    for (std::size_t o = 0; o < orthant_has_candidate.size(); ++o) {
      if (orthant_has_candidate[o]) {
        EXPECT_TRUE(orthant_has_neighbor[o]) << "orthant " << o;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EmptyRectCoverageTest,
                         ::testing::Combine(::testing::Values(2, 3, 4, 5),
                                            ::testing::Values(10u, 20u, 30u)));

TEST(EmptyRectTest, OrderInvariance) {
  util::Rng rng(5);
  const auto points = geometry::random_points(rng, 60, 3, 100.0);
  EmptyRectSelector selector;
  auto candidates = to_candidates(points, 0);
  const auto baseline = selector.select(points[0], candidates);
  util::Rng shuffle_rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    shuffle_rng.shuffle(candidates);
    EXPECT_EQ(selector.select(points[0], candidates), baseline);
  }
}

TEST(EmptyRectTest, NameIsStable) {
  EXPECT_EQ(EmptyRectSelector{}.name(), "empty-rect");
}

}  // namespace
}  // namespace geomcast::overlay
