#include "overlay/graph.hpp"

#include <gtest/gtest.h>

#include "geometry/random_points.hpp"
#include "util/rng.hpp"

namespace geomcast::overlay {
namespace {

std::vector<geometry::Point> make_points(std::size_t n) {
  util::Rng rng(n);
  return geometry::random_points(rng, n, 2, 100.0);
}

TEST(OverlayGraphTest, EmptyGraph) {
  OverlayGraph graph;
  EXPECT_EQ(graph.size(), 0u);
  EXPECT_EQ(graph.edge_count(), 0u);
}

TEST(OverlayGraphTest, UndirectedUnionOfSelections) {
  // 0 selects 1; 1 selects nothing; both see the edge.
  OverlayGraph graph(make_points(2), {{1}, {}});
  EXPECT_TRUE(graph.has_edge(0, 1));
  EXPECT_TRUE(graph.has_edge(1, 0));
  EXPECT_EQ(graph.degree(0), 1u);
  EXPECT_EQ(graph.degree(1), 1u);
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_EQ(graph.selected(0), (std::vector<PeerId>{1}));
  EXPECT_TRUE(graph.selected(1).empty());
}

TEST(OverlayGraphTest, MutualSelectionCountedOnce) {
  OverlayGraph graph(make_points(2), {{1}, {0}});
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_EQ(graph.degree(0), 1u);
}

TEST(OverlayGraphTest, DuplicateSelectionsDeduplicated) {
  OverlayGraph graph(make_points(3), {{1, 1, 2}, {}, {}});
  EXPECT_EQ(graph.selected(0), (std::vector<PeerId>{1, 2}));
  EXPECT_EQ(graph.edge_count(), 2u);
}

TEST(OverlayGraphTest, NeighborsSortedAscending) {
  OverlayGraph graph(make_points(4), {{3, 1, 2}, {}, {}, {}});
  EXPECT_EQ(graph.neighbors(0), (std::vector<PeerId>{1, 2, 3}));
}

TEST(OverlayGraphTest, SelfSelectionThrows) {
  EXPECT_THROW(OverlayGraph(make_points(2), {{0}, {}}), std::invalid_argument);
}

TEST(OverlayGraphTest, OutOfRangeSelectionThrows) {
  EXPECT_THROW(OverlayGraph(make_points(2), {{5}, {}}), std::invalid_argument);
}

TEST(OverlayGraphTest, SizeMismatchThrows) {
  EXPECT_THROW(OverlayGraph(make_points(3), {{1}, {}}), std::invalid_argument);
}

TEST(OverlayGraphTest, HasEdgeFalseForNonNeighbors) {
  OverlayGraph graph(make_points(3), {{1}, {}, {}});
  EXPECT_FALSE(graph.has_edge(0, 2));
  EXPECT_FALSE(graph.has_edge(1, 2));
}

TEST(OverlayGraphTest, DimsReported) {
  OverlayGraph graph(make_points(3), {{}, {}, {}});
  EXPECT_EQ(graph.dims(), 2u);
}

TEST(OverlayGraphTest, EqualityComparesTopologyAndPoints) {
  const auto points = make_points(3);
  OverlayGraph a(points, {{1}, {}, {}});
  OverlayGraph b(points, {{1}, {}, {}});
  OverlayGraph c(points, {{2}, {}, {}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(OverlayGraphTest, EqualityIgnoresSelectionDirection) {
  // Same undirected topology from different selections.
  const auto points = make_points(2);
  OverlayGraph a(points, {{1}, {}});
  OverlayGraph b(points, {{}, {0}});
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace geomcast::overlay
