// Warm-failover battery: the root-replication stream (membership deltas,
// retained-range mirrors, pending-batch joins), warm promotion through the
// migration path, the post-migration NACK regression (cold: the
// migrated-to root's empty RetainedBuffer abandons every repair; warm: the
// replicated history serves them), the final-wave heartbeat blind spot,
// and the knob-oracle guarantee that warm_failover off-vs-on changes
// nothing on no-kill seeds.
#include "groups/failure_injection.hpp"
#include "groups/message_kinds.hpp"
#include "groups/pubsub.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "groups_test_util.hpp"
#include "obs/snapshot.hpp"

namespace geomcast::groups {
namespace {

using testutil::make_overlay;
using testutil::subscribe_members;

TEST(SubscriberWindowTest, MarkThroughOpensGapsOnlyAboveTheFrontier) {
  SubscriberWindow w;
  // Uninitialized: a beacon owes a late joiner nothing.
  EXPECT_TRUE(w.mark_through(10).empty());
  EXPECT_FALSE(w.initialized());

  auto arrival = w.observe_range(0, 2);
  EXPECT_EQ(arrival.released.size(), 3u);
  // Horizon 5: seqs 3..5 were never admitted — they become gaps exactly as
  // if a later wave had revealed them.
  const std::vector<std::uint64_t> expected{3, 4, 5};
  EXPECT_EQ(w.mark_through(5), expected);
  EXPECT_EQ(w.gap_count(), 3u);
  // Re-advertising the same (or an older) horizon opens nothing new.
  EXPECT_TRUE(w.mark_through(5).empty());
  EXPECT_TRUE(w.mark_through(1).empty());
  // The marked gaps heal like any others: filling 3 releases it, the rest
  // stay pending.
  arrival = w.observe(3);
  EXPECT_EQ(arrival.released, (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(w.gap_count(), 2u);
  // A horizon past the frontier only adds the genuinely new tail.
  EXPECT_EQ(w.mark_through(6), (std::vector<std::uint64_t>{6}));
}

TEST(GroupsFailoverTest, ReplicaShadowsMembershipAndRetainedHistory) {
  const auto graph = make_overlay(150, 2, 1401);
  const GroupId g = 0;
  PubSubConfig config;
  config.seed = 71;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.warm_failover = true;
  PubSubSystem system(graph, config);
  const auto members = subscribe_members(system, graph, g, 12, 71);
  const PeerId root = system.manager().root_of(g);
  for (std::size_t i = 0; i < 3; ++i)
    system.publish_at(2.0 + 0.3 * static_cast<double>(i), root, g);
  system.run();

  // A replica was assigned (the deterministic second-nearest peer) and its
  // copy tracks the full membership.
  const PeerId replica = system.manager().replica_of(g);
  ASSERT_NE(replica, kInvalidPeer);
  EXPECT_EQ(replica, system.manager().replica_candidate(g));
  EXPECT_NE(replica, root);
  EXPECT_EQ(system.manager().replica_member_count(g), members.size());
  // Every flushed wave was mirrored: the replica's OWN RetainedBuffer
  // holds the same ranges as the root's.
  EXPECT_EQ(system.manager().retained_ranges(replica, g),
            system.manager().retained_ranges(root, g));
  EXPECT_EQ(system.manager().retained_ranges(replica, g).size(), 3u);
  const auto& stats = system.stats(g);
  // One sync per membership delta + one per flush; nothing migrated.
  EXPECT_EQ(stats.replica_sync_envelopes, members.size() + 3u);
  EXPECT_EQ(stats.migration_envelopes, 0u);
  EXPECT_EQ(stats.warm_promotions, 0u);
}

struct KillReport {
  PeerId root = kInvalidPeer;
  PeerId relay = kInvalidPeer;
  std::size_t severed = 0;
};

/// The failover scenario both cells share: 12 subscribers, two warm-up
/// waves, then a root-kill on wave seq 2 (relay severed mid-wave, root
/// killed right after the flush), then post-kill publishes from a
/// surviving member that reveal the gap to the severed subtree.
GroupStats run_root_kill(const overlay::OverlayGraph& graph, bool warm_on,
                         KillReport* report) {
  const GroupId g = 0;
  PubSubConfig config;
  config.seed = 73;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 5;
  config.warm_failover = warm_on;
  PubSubSystem system(graph, config);
  const auto members = subscribe_members(system, graph, g, 12, 73);
  std::vector<bool> member_anywhere(graph.size(), false);
  for (const PeerId m : members) member_anywhere[m] = true;
  const PeerId root = system.manager().root_of(g);
  system.publish_at(2.0, root, g);
  system.publish_at(2.3, root, g);
  system.publish_at(5.0, root, g);
  KillReport local;
  schedule_root_kill(
      system, g, 5.0, member_anywhere,
      [&local](PeerId r, PeerId relay, std::size_t severed) {
        local = {r, relay, severed};
      },
      /*wave_start_delay=*/0.0, /*root_kill_delay=*/0.02);
  system.publish_at(6.0, members[0], g);
  system.publish_at(6.3, members[0], g);
  system.run();
  if (report != nullptr) *report = local;
  return system.stats(g);
}

TEST(GroupsFailoverTest, RootKillColdAbandonsWarmRepairsFromReplicatedHistory) {
  const auto graph = make_overlay(150, 2, 1402);

  KillReport cold_kill;
  const GroupStats cold = run_root_kill(graph, /*warm_on=*/false, &cold_kill);
  ASSERT_NE(cold_kill.relay, kInvalidPeer) << "seed found no relay to sever";
  ASSERT_GT(cold_kill.severed, 0u);
  // Cold rebuild: the migrated-to root starts with an empty RetainedBuffer,
  // so the severed subscribers' NACKs walk to the chain's end and abandon —
  // a measurable delivery dip.
  EXPECT_GT(cold.gap_seqs_abandoned, 0u);
  EXPECT_LT(cold.deliveries, cold.expected_deliveries);
  EXPECT_EQ(cold.replica_sync_envelopes, 0u);
  EXPECT_EQ(cold.warm_promotions, 0u);

  KillReport warm_kill;
  const GroupStats warm = run_root_kill(graph, /*warm_on=*/true, &warm_kill);
  // Victim selection is identical across the cells (the injector excludes
  // the replica candidate in both): the comparison kills the same peers.
  EXPECT_EQ(warm_kill.root, cold_kill.root);
  EXPECT_EQ(warm_kill.relay, cold_kill.relay);
  EXPECT_EQ(warm_kill.severed, cold_kill.severed);
  // Warm failover: the promotion inherited the subscriber set and the
  // retained history, so every post-migration NACK is ultimately served —
  // zero dip at QoS 2.
  EXPECT_EQ(warm.deliveries, warm.expected_deliveries);
  EXPECT_EQ(warm.gap_seqs_abandoned, 0u);
  EXPECT_EQ(warm.warm_promotions, 1u);
  EXPECT_GT(warm.replica_sync_envelopes, 0u);
  // The handoff had a measured price: the successor re-bootstrapped its
  // own replica after promotion.
  EXPECT_GT(warm.migration_envelopes, 0u);
  EXPECT_EQ(warm.root_migrations, cold.root_migrations);
}

TEST(GroupsFailoverTest, SnapshotJsonCarriesTheFailoverCounters) {
  const auto graph = make_overlay(150, 2, 1402);
  const GroupId g = 0;
  PubSubConfig config;
  config.seed = 73;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.warm_failover = true;
  PubSubSystem system(graph, config);
  subscribe_members(system, graph, g, 12, 73);
  system.publish_at(2.0, system.manager().root_of(g), g);
  system.run();

  const std::string group_json = obs::to_json(system.total_stats());
  for (const char* name :
       {"\"replica_sync_envelopes\":", "\"replica_sync_retries\":",
        "\"migration_envelopes\":", "\"warm_promotions\":",
        "\"pending_publishes_inherited\":", "\"heartbeats_sent\":",
        "\"heartbeat_gap_detections\":", "\"heartbeat_blind_windows\":"})
    EXPECT_NE(group_json.find(name), std::string::npos) << name;
  const std::string net_json = obs::to_json(system.simulator().network().stats());
  EXPECT_NE(net_json.find("\"replica_sync_envelopes\":"), std::string::npos);
  EXPECT_NE(net_json.find("\"migration_envelopes\":"), std::string::npos);
  EXPECT_NE(net_json.find("\"heartbeats\":"), std::string::npos);
  // Registry-named per-kind sends: the sync stream shows up by name.
  EXPECT_NE(net_json.find("\"replica_sync\":"), std::string::npos);
}

/// Final-wave blind spot: the relay is severed on the group's LAST wave
/// while the root stays alive. Without heartbeats the severed subtree has
/// no later traffic to reveal the gap; with them the beacon advertises the
/// flushed horizon and the normal NACK plane repairs it.
GroupStats run_final_wave(const overlay::OverlayGraph& graph, double hb_interval,
                          std::size_t* severed_out) {
  const GroupId g = 0;
  PubSubConfig config;
  config.seed = 79;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 5;
  config.heartbeat_interval = hb_interval;
  config.heartbeat_rounds = 2;
  config.warm_failover = false;  // independent mechanisms: beacons alone close it
  PubSubSystem system(graph, config);
  const auto members = subscribe_members(system, graph, g, 12, 79);
  std::vector<bool> member_anywhere(graph.size(), false);
  for (const PeerId m : members) member_anywhere[m] = true;
  const PeerId root = system.manager().root_of(g);
  system.publish_at(2.0, root, g);
  system.publish_at(2.3, root, g);
  system.publish_at(5.0, root, g);  // the final wave
  auto severed = std::make_shared<std::size_t>(0);
  schedule_midwave_kill(system, g, 5.0, member_anywhere,
                        [severed](PeerId, std::size_t s) { *severed = s; });
  system.run();
  if (severed_out != nullptr) *severed_out = *severed;
  return system.stats(g);
}

TEST(GroupsFailoverTest, HeartbeatsCloseTheFinalWaveBlindSpot) {
  const auto graph = make_overlay(150, 2, 1403);

  std::size_t severed_off = 0;
  const GroupStats off = run_final_wave(graph, /*hb_interval=*/0.0, &severed_off);
  ASSERT_GT(severed_off, 0u) << "seed severed nobody; the scenario is vacuous";
  // The blind spot: nothing ever told the severed subscribers seq 2
  // existed — silent loss, not even a gap detection.
  EXPECT_EQ(off.deliveries, off.expected_deliveries - severed_off);
  EXPECT_EQ(off.heartbeats_sent, 0u);
  EXPECT_EQ(off.heartbeat_gap_detections, 0u);

  std::size_t severed_on = 0;
  const GroupStats on = run_final_wave(graph, /*hb_interval=*/0.2, &severed_on);
  EXPECT_EQ(severed_on, severed_off);
  // The beacon advertised the horizon; every severed subscriber opened the
  // gap and the ordinary NACK/repair plane filled it.
  EXPECT_GT(on.heartbeats_sent, 0u);
  EXPECT_EQ(on.heartbeat_gap_detections, severed_on);
  EXPECT_EQ(on.deliveries, on.expected_deliveries);
  EXPECT_EQ(on.gap_seqs_abandoned, 0u);
}

/// Pending-batch inheritance: three publishes join the root's batch, the
/// root dies inside the window. Cold (or fire-and-forget) they die with
/// it; warm at QoS 1+ the successor adopts them from the replica's copy.
GroupStats run_batch_kill(const overlay::OverlayGraph& graph, bool warm_on,
                          multicast::QoS qos) {
  const GroupId g = 0;
  PubSubConfig config;
  config.seed = 83;
  config.reliability.qos = qos;
  config.batch_window = 0.1;
  config.warm_failover = warm_on;
  PubSubSystem system(graph, config);
  subscribe_members(system, graph, g, 12, 83);
  const PeerId root = system.manager().root_of(g);
  system.publish_at(5.0, root, g);
  system.publish_at(5.01, root, g);
  system.publish_at(5.02, root, g);
  system.depart_at(5.05, root);  // inside the batch window
  system.run();
  return system.stats(g);
}

TEST(GroupsFailoverTest, WarmPromotionAdoptsThePendingBatch) {
  const auto graph = make_overlay(150, 2, 1404);

  const GroupStats cold = run_batch_kill(graph, false, multicast::QoS::kEndToEnd);
  EXPECT_EQ(cold.batch_publishes_lost, 3u);
  EXPECT_EQ(cold.pending_publishes_inherited, 0u);
  EXPECT_EQ(cold.deliveries, 0u);  // no wave ever flushed

  const GroupStats warm = run_batch_kill(graph, true, multicast::QoS::kEndToEnd);
  EXPECT_EQ(warm.batch_publishes_lost, 0u);
  EXPECT_EQ(warm.pending_publishes_inherited, 3u);
  EXPECT_EQ(warm.warm_promotions, 1u);
  // The inherited batch flushed from the successor and delivered in full.
  EXPECT_GT(warm.expected_deliveries, 0u);
  EXPECT_EQ(warm.deliveries, warm.expected_deliveries);

  // Fire-and-forget publishes carry no delivery promise a failover would
  // preserve: even warm, the batch dies with the root and stays counted.
  const GroupStats qos0 = run_batch_kill(graph, true, multicast::QoS::kFireAndForget);
  EXPECT_EQ(qos0.batch_publishes_lost, 3u);
  EXPECT_EQ(qos0.pending_publishes_inherited, 0u);
}

/// Replica-loss regression: replica_pending_ is keyed by group, so a dead
/// replica's pending-batch copy must be dropped at loss time. The stale
/// state is manufactured by dropping every kPendingFlush sync (so batch
/// A's copy is never cleared on the replica), killing that replica in
/// quiet time, then killing the root while batch B's single join is still
/// in flight to the NEW replica. At promotion the new replica has learned
/// of nothing — the correct inheritance is zero and publish B dies like
/// any unreplicated pending publish. Before the fix, batch A's stale
/// count (held by the DEAD replica) survived into the promotion read and
/// min(stale=3, at_root=1) invented an inherited publish with batch A's
/// accept time.
TEST(GroupsFailoverTest, ReplicaLossDropsTheDeadCopysPendingBatch) {
  const auto graph = make_overlay(150, 2, 1406);
  const GroupId g = 0;
  PubSubConfig config;
  config.seed = 97;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.batch_window = 0.1;
  config.warm_failover = true;
  // Sever the flush-clear path: the first replica keeps batch A's copy.
  config.loss.drop_if = [](const sim::Envelope& e) {
    if (e.kind != kReplicaSyncKind) return false;
    const auto* sync = std::any_cast<ReplicaSync>(&e.payload);
    return sync != nullptr && sync->what == ReplicaSync::What::kPendingFlush;
  };
  PubSubSystem system(graph, config);
  subscribe_members(system, graph, g, 12, 97);
  const PeerId root = system.manager().root_of(g);
  // Batch A: three joins replicate, the flush at 2.1 is never mirrored.
  system.publish_at(2.0, root, g);
  system.publish_at(2.001, root, g);
  system.publish_at(2.002, root, g);
  // Kill the replica in quiet time (wave A long drained). Its copy still
  // says "3 pending" — state that must die with it.
  auto first_replica = std::make_shared<PeerId>(kInvalidPeer);
  system.simulator().schedule_at(3.0, [&system, g, first_replica]() {
    *first_replica = system.manager().replica_of(g);
    system.depart_now(*first_replica);
  });
  // Batch B: one join, synced at 5.0 toward the re-bootstrapped replica
  // (arrives 5.01); the root dies at 5.005 with the sync still in flight.
  system.publish_at(5.0, root, g);
  system.depart_at(5.005, root);
  system.run();

  ASSERT_NE(*first_replica, kInvalidPeer);
  EXPECT_NE(*first_replica, root);
  const auto& stats = system.stats(g);
  EXPECT_EQ(stats.warm_promotions, 1u);
  // The promotion read the NEW replica's copy, which never learned of
  // publish B: nothing is inheritable. The stale-copy bug inherited 1
  // phantom record here (and lost nothing).
  EXPECT_EQ(stats.pending_publishes_inherited, 0u);
  EXPECT_EQ(stats.batch_publishes_lost, 1u);
  // Batch A delivered in full before any failure; B never flushed, so it
  // owes no deliveries.
  EXPECT_GT(stats.expected_deliveries, 0u);
  EXPECT_EQ(stats.deliveries, stats.expected_deliveries);
}

/// Residual QoS 2 blind spot, pinned: a subscriber severed on the group's
/// ONLY wave never initializes its window, so beacons can open no gaps
/// (mark_through's no-op rule) and the loss is invisible to the entire
/// gap plane. The heartbeat_blind_windows counter is what makes it
/// observable: every beacon that reaches a window-less subscriber counts.
TEST(GroupsFailoverTest, SoleWaveSeveranceIsCountedAsBlindWindows) {
  const auto graph = make_overlay(150, 2, 1407);
  const GroupId g = 0;
  PubSubConfig config;
  config.seed = 101;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 5;
  config.heartbeat_interval = 0.2;
  config.heartbeat_rounds = 2;
  PubSubSystem system(graph, config);
  const auto members = subscribe_members(system, graph, g, 12, 101);
  std::vector<bool> member_anywhere(graph.size(), false);
  for (const PeerId m : members) member_anywhere[m] = true;
  system.publish_at(5.0, system.manager().root_of(g), g);  // the only wave
  auto severed = std::make_shared<std::size_t>(0);
  schedule_midwave_kill(system, g, 5.0, member_anywhere,
                        [severed](PeerId, std::size_t s) { *severed = s; });
  system.run();

  ASSERT_GT(*severed, 0u) << "seed severed nobody; the scenario is vacuous";
  const auto& stats = system.stats(g);
  // The loss is real and permanent: heartbeats ran, yet no gap was ever
  // detected — there is no window frontier to advance past the hole.
  EXPECT_EQ(stats.deliveries, stats.expected_deliveries - *severed);
  EXPECT_GT(stats.heartbeats_sent, 0u);
  EXPECT_EQ(stats.heartbeat_gap_detections, 0u);
  EXPECT_EQ(stats.gap_seqs_detected, 0u);
  // ...but it is no longer silent: each beacon round found every severed
  // subscriber still window-less.
  EXPECT_EQ(stats.heartbeat_blind_windows, *severed * stats.heartbeats_sent);
}

TEST(GroupsFailoverTest, WarmKnobIsPassiveOnNoKillSeeds) {
  const auto graph = make_overlay(150, 2, 1405);
  const GroupId g = 0;
  using Delivered = std::vector<std::tuple<PeerId, std::uint64_t, double>>;
  const auto run_cell = [&graph, g](bool warm_on) {
    PubSubConfig config;
    config.seed = 89;
    config.reliability.qos = multicast::QoS::kEndToEnd;
    config.batch_window = 0.05;
    config.warm_failover = warm_on;
    PubSubSystem system(graph, config);
    Delivered delivered;
    system.set_delivery_probe(
        [&delivered](PeerId p, GroupId, std::uint64_t seq, double t) {
          delivered.emplace_back(p, seq, t);
        });
    const auto members = subscribe_members(system, graph, g, 12, 89);
    for (std::size_t i = 0; i < 6; ++i)
      system.publish_at(2.0 + 0.07 * static_cast<double>(i), members[i % 4], g);
    system.run();
    return std::make_pair(delivered, system.stats(g));
  };
  const auto [cold_del, cold] = run_cell(false);
  const auto [warm_del, warm] = run_cell(true);
  // The oracle guarantee: with nobody dying, warm replication is pure
  // extra traffic — the delivered (peer, seq, time) stream is identical.
  EXPECT_EQ(warm_del, cold_del);
  EXPECT_EQ(warm.deliveries, cold.deliveries);
  EXPECT_EQ(warm.expected_deliveries, cold.expected_deliveries);
  EXPECT_EQ(warm.gap_seqs_detected, cold.gap_seqs_detected);
  EXPECT_GT(warm.replica_sync_envelopes, 0u);  // the stream really ran
  EXPECT_EQ(cold.replica_sync_envelopes, 0u);
}

}  // namespace
}  // namespace geomcast::groups
