// Ancestor-repair battery for the QoS 2 gap plane: the escalation order
// (tree parent first, then strictly higher ancestors, ending at the root),
// retained-buffer eviction behaviour (a NACK for an evicted seq escalates
// and ultimately abandons instead of stalling the window), and seeded
// golden stats pins for QoS 0/1/2 so future refactors of the reliability
// stack have bit-exact baselines to diff against.
#include "groups/pubsub.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "groups_test_util.hpp"

namespace geomcast::groups {
namespace {

using testutil::find_leaf_subscriber;
using testutil::make_overlay;
using testutil::subscribe_members;

TEST(GroupsAncestorRepairTest, EscalationWalksTheAncestorChainParentFirstToRoot) {
  const auto graph = make_overlay(150, 2, 1301);
  const GroupId g = 0;
  const std::uint64_t seed = 43;
  const std::size_t publishes = 3;
  const PeerId victim = find_leaf_subscriber(graph, g, 12, seed, publishes);
  ASSERT_NE(victim, kInvalidPeer);

  // Retention disabled: every responder must miss, so one unfillable gap
  // walks the victim's whole ancestor chain and then gives up — the
  // purest view of the escalation order.
  PubSubConfig config;
  config.seed = seed;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 5;
  config.groups.retention_window = 0;
  config.loss.drop_if = [victim](const sim::Envelope& e) {
    if (e.kind != kDeliverKind || e.to != victim) return false;
    return std::any_cast<const DeliveryPtr&>(e.payload)->seq == 1;
  };
  PubSubSystem system(graph, config);
  std::vector<PeerId> nack_targets;
  system.simulator().set_delivery_observer([&nack_targets](double, const sim::Envelope& e) {
    if (e.kind == kNackKind) nack_targets.push_back(e.to);
  });
  const auto members = subscribe_members(system, graph, g, 12, seed);
  for (std::size_t i = 0; i < publishes; ++i)
    system.publish_at(2.0 + 0.1 * static_cast<double>(i), members[0], g);
  system.run();

  // Reconstruct the victim's ancestor chain from the (stable) cached tree.
  const GroupTree* gt = system.manager().cached_tree(g);
  ASSERT_NE(gt, nullptr);
  std::vector<PeerId> chain;
  for (PeerId p = victim; p != gt->tree.root();) {
    p = gt->tree.parent(p);
    chain.push_back(p);
  }
  ASSERT_GE(chain.size(), 2u) << "seed picked a depth-1 victim; escalation is vacuous";

  // One NACK per ancestor, parent first, in exact chain order, and no
  // wrap-around past the root: the root's miss is definitive.
  ASSERT_EQ(nack_targets.size(), chain.size());
  EXPECT_EQ(nack_targets, chain);
  const auto& stats = system.stats(g);
  EXPECT_EQ(stats.nacks_sent, chain.size());
  EXPECT_EQ(stats.repair_misses, chain.size());
  EXPECT_EQ(stats.repair_escalations, chain.size() - 1);
  EXPECT_EQ(stats.repairs_served, 0u);
  EXPECT_EQ(stats.gap_seqs_detected, 1u);
  EXPECT_EQ(stats.gap_seqs_repaired, 0u);
  EXPECT_EQ(stats.gap_seqs_abandoned, 1u);
  // The window did not stall: everything after the abandoned seq released.
  EXPECT_EQ(stats.deliveries, stats.expected_deliveries - 1);
}

TEST(GroupsAncestorRepairTest, NackForAnEvictedSeqEscalatesInsteadOfStalling) {
  const auto graph = make_overlay(150, 2, 1302);
  const GroupId g = 0;
  const std::uint64_t seed = 47;
  const std::size_t publishes = 6;
  const PeerId victim = find_leaf_subscriber(graph, g, 12, seed, publishes);
  ASSERT_NE(victim, kInvalidPeer);

  // A one-wave retention window: by the time the victim's per-hop budget
  // for seq 1 dies and the NACK goes out, every responder has long evicted
  // it — parent and ancestors all miss, the root's miss abandons the gap,
  // and the held-back later seqs release in order.
  PubSubConfig config;
  config.seed = seed;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 5;
  config.groups.retention_window = 1;
  config.loss.drop_if = [victim](const sim::Envelope& e) {
    if (e.kind != kDeliverKind || e.to != victim) return false;
    return std::any_cast<const DeliveryPtr&>(e.payload)->seq == 1;
  };
  PubSubSystem system(graph, config);
  std::vector<std::uint64_t> victim_released;
  system.set_delivery_probe(
      [&victim_released, victim](PeerId p, GroupId, std::uint64_t seq, double) {
        if (p == victim) victim_released.push_back(seq);
      });
  const auto members = subscribe_members(system, graph, g, 12, seed);
  for (std::size_t i = 0; i < publishes; ++i)
    system.publish_at(2.0 + 0.1 * static_cast<double>(i), members[0], g);
  const std::size_t events = system.run();
  ASSERT_GT(events, 0u);  // drained to idle: nothing stalled or spun

  const auto& stats = system.stats(g);
  EXPECT_EQ(stats.gap_seqs_detected, 1u);
  EXPECT_EQ(stats.gap_seqs_repaired, 0u);
  EXPECT_EQ(stats.gap_seqs_abandoned, 1u);
  EXPECT_GT(stats.repair_misses, 0u);
  EXPECT_EQ(stats.repairs_served, 0u);
  EXPECT_GT(stats.retained_evictions, 0u);  // the window really did evict
  // The victim lost exactly the evicted seq and released the rest in
  // order — the gap degraded delivery, never liveness.
  EXPECT_EQ(stats.deliveries, stats.expected_deliveries - 1);
  const std::vector<std::uint64_t> expected{0, 2, 3, 4, 5};
  EXPECT_EQ(victim_released, expected);
  EXPECT_TRUE(std::is_sorted(victim_released.begin(), victim_released.end()));
}

/// The pinned workload: 12 subscribers, 5 publishes, 10% stochastic loss,
/// plus one member's incoming copies of seq 2 severed outright so the gap
/// plane has real work under QoS 2 — every counter below is a
/// deterministic function of (overlay seed, workload seed, QoS), so these
/// goldens must reproduce bit-for-bit.
GroupStats run_pinned(const overlay::OverlayGraph& graph, multicast::QoS qos) {
  PubSubConfig config;
  config.seed = 61;
  config.loss.drop_probability = 0.1;
  config.reliability.qos = qos;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 5;
  auto victim = std::make_shared<PeerId>(kInvalidPeer);
  config.loss.drop_if = [victim](const sim::Envelope& e) {
    if (e.kind != kDeliverKind || e.to != *victim) return false;
    return std::any_cast<const DeliveryPtr&>(e.payload)->seq == 2;
  };
  PubSubSystem system(graph, config);
  const auto members = subscribe_members(system, graph, 0, 12, 61);
  *victim = members[6];
  // Publishing from the root keeps all five waves in the pin: a publish
  // envelope lost en route to the root would silently shrink the workload
  // (and with it the severed seq the QoS 2 cell is pinned around).
  const PeerId root = system.manager().root_of(0);
  for (std::size_t i = 0; i < 5; ++i)
    system.publish_at(2.0 + 0.3 * static_cast<double>(i), root, 0);
  system.run();
  return system.stats(0);
}

TEST(GroupsAncestorRepairTest, SeededStatsArePinnedAcrossTheQoSLadder) {
  const auto graph = make_overlay(150, 2, 1303);

  // Rerunning the same cell must be bit-identical before pinning means
  // anything.
  {
    const GroupStats a = run_pinned(graph, multicast::QoS::kEndToEnd);
    const GroupStats b = run_pinned(graph, multicast::QoS::kEndToEnd);
    EXPECT_EQ(a.deliveries, b.deliveries);
    EXPECT_EQ(a.nacks_sent, b.nacks_sent);
    EXPECT_EQ(a.repairs_served, b.repairs_served);
    EXPECT_EQ(a.gap_latency_total, b.gap_latency_total);
  }

  // The ladder's story in three rows: fire-and-forget loses 25 of 45
  // deliveries at 10% loss; per-hop acking recovers all but the severed
  // seq (whose hop budget dies: abandoned_hops = 1); the gap plane
  // detects that one miss downstream, defers once to the dying per-hop
  // recovery, then repairs it with a single parent-served NACK.
  {
    SCOPED_TRACE("qos=0");
    const GroupStats s = run_pinned(graph, multicast::QoS::kFireAndForget);
    EXPECT_EQ(s.publishes, 5u);
    EXPECT_EQ(s.expected_deliveries, 45u);
    EXPECT_EQ(s.deliveries, 20u);
    EXPECT_EQ(s.payload_messages, 101u);
    EXPECT_EQ(s.ack_messages, 0u);
    EXPECT_EQ(s.retransmissions, 0u);
    EXPECT_EQ(s.abandoned_hops, 0u);
    EXPECT_EQ(s.duplicate_deliveries, 0u);
    EXPECT_EQ(s.gap_seqs_detected, 0u);
    EXPECT_EQ(s.nacks_sent, 0u);
  }
  {
    SCOPED_TRACE("qos=1");
    const GroupStats s = run_pinned(graph, multicast::QoS::kAcked);
    EXPECT_EQ(s.publishes, 5u);
    EXPECT_EQ(s.expected_deliveries, 45u);
    EXPECT_EQ(s.deliveries, 44u);
    EXPECT_EQ(s.payload_messages, 190u);
    EXPECT_EQ(s.ack_messages, 205u);
    EXPECT_EQ(s.retransmissions, 51u);
    EXPECT_EQ(s.abandoned_hops, 1u);
    EXPECT_EQ(s.duplicate_deliveries, 16u);
    EXPECT_EQ(s.gap_seqs_detected, 0u);
    EXPECT_EQ(s.nacks_sent, 0u);
  }
  {
    SCOPED_TRACE("qos=2");
    const GroupStats s = run_pinned(graph, multicast::QoS::kEndToEnd);
    EXPECT_EQ(s.publishes, 5u);
    EXPECT_EQ(s.expected_deliveries, 45u);
    EXPECT_EQ(s.deliveries, 45u);
    EXPECT_EQ(s.payload_messages, 190u);
    EXPECT_EQ(s.ack_messages, 207u);
    EXPECT_EQ(s.retransmissions, 51u);
    EXPECT_EQ(s.abandoned_hops, 1u);
    EXPECT_EQ(s.duplicate_deliveries, 18u);
    EXPECT_EQ(s.gap_seqs_detected, 1u);
    EXPECT_EQ(s.gap_seqs_repaired, 1u);
    EXPECT_EQ(s.gap_seqs_abandoned, 0u);
    EXPECT_EQ(s.nacks_sent, 1u);
    EXPECT_EQ(s.nacked_seqs, 1u);
    EXPECT_EQ(s.nack_deferrals, 1u);
    EXPECT_EQ(s.repairs_served, 1u);
    EXPECT_EQ(s.repair_misses, 0u);
    EXPECT_EQ(s.repair_escalations, 0u);
    EXPECT_EQ(s.pre_window_deliveries, 0u);
  }
}

}  // namespace
}  // namespace geomcast::groups
