#include "overlay/incremental.hpp"

#include <gtest/gtest.h>

#include "analysis/graph_metrics.hpp"
#include "geometry/random_points.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "overlay/hyperplane_k.hpp"
#include "util/rng.hpp"

namespace geomcast::overlay {
namespace {

/// Jaccard similarity of two graphs' undirected edge sets.
double edge_similarity(const OverlayGraph& a, const OverlayGraph& b) {
  std::size_t shared = 0, total_a = 0, total_b = 0;
  for (PeerId p = 0; p < a.size(); ++p) {
    for (PeerId q : a.neighbors(p)) {
      if (q < p) continue;
      ++total_a;
      if (b.has_edge(p, q)) ++shared;
    }
  }
  for (PeerId p = 0; p < b.size(); ++p)
    for (PeerId q : b.neighbors(p))
      if (q > p) ++total_b;
  const std::size_t union_size = total_a + total_b - shared;
  return union_size == 0 ? 1.0 : static_cast<double>(shared) / static_cast<double>(union_size);
}

TEST(IncrementalTest, FullKnowledgeReproducesEquilibrium) {
  // With I(P) = all peers, one-by-one insertion must land exactly on the
  // full-knowledge equilibrium after every insertion.
  util::Rng rng(61);
  const auto points = geometry::random_points(rng, 60, 2, 100.0);
  EmptyRectSelector selector;
  IncrementalConfig config;
  config.full_knowledge = true;
  IncrementalBuilder builder(selector, config, util::Rng(7));
  for (const auto& p : points) EXPECT_TRUE(builder.insert(p).has_value());
  EXPECT_EQ(builder.graph(), build_equilibrium(points, selector));
}

TEST(IncrementalTest, FullKnowledgeMatchesForOrthogonalK) {
  util::Rng rng(62);
  const auto points = geometry::random_points(rng, 50, 3, 100.0);
  const auto selector = HyperplaneKSelector::orthogonal(3, 2);
  IncrementalConfig config;
  config.full_knowledge = true;
  IncrementalBuilder builder(selector, config, util::Rng(8));
  for (const auto& p : points) builder.insert(p);
  EXPECT_EQ(builder.graph(), build_equilibrium(points, selector));
}

TEST(IncrementalTest, GossipScopedKnowledgeApproximatesEquilibrium) {
  // BR-hop knowledge: the paper expects "the same (or close to)" topology.
  util::Rng rng(63);
  const auto points = geometry::random_points(rng, 60, 2, 100.0);
  EmptyRectSelector selector;
  IncrementalConfig config;
  config.br = 3;
  IncrementalBuilder builder(selector, config, util::Rng(9));
  for (const auto& p : points) builder.insert(p);
  const auto gossip_graph = builder.graph();
  const auto oracle = build_equilibrium(points, selector);
  EXPECT_GE(edge_similarity(gossip_graph, oracle), 0.8)
      << "BR-scoped equilibrium strayed too far from the full-knowledge topology";
}

TEST(IncrementalTest, ConvergesWithinRoundCap) {
  util::Rng rng(64);
  const auto points = geometry::random_points(rng, 80, 2, 100.0);
  EmptyRectSelector selector;
  IncrementalBuilder builder(selector, IncrementalConfig{}, util::Rng(10));
  for (const auto& p : points) {
    const auto rounds = builder.insert(p);
    ASSERT_TRUE(rounds.has_value());
    EXPECT_LE(*rounds, IncrementalConfig{}.max_rounds_per_insert);
  }
}

TEST(IncrementalTest, ProducesConnectedOverlay) {
  util::Rng rng(65);
  const auto points = geometry::random_points(rng, 70, 2, 100.0);
  EmptyRectSelector selector;
  IncrementalBuilder builder(selector, IncrementalConfig{}, util::Rng(11));
  for (const auto& p : points) builder.insert(p);
  EXPECT_TRUE(analysis::is_connected(builder.graph()));
}

TEST(IncrementalTest, SizeTracksInsertions) {
  EmptyRectSelector selector;
  IncrementalBuilder builder(selector, IncrementalConfig{}, util::Rng(12));
  EXPECT_EQ(builder.size(), 0u);
  builder.insert(geometry::Point({1.0, 1.0}));
  EXPECT_EQ(builder.size(), 1u);
  builder.insert(geometry::Point({2.0, 3.0}));
  EXPECT_EQ(builder.size(), 2u);
  EXPECT_TRUE(builder.graph().has_edge(0, 1));
}

TEST(IncrementalTest, RemoveWithFullKnowledgeLandsOnRemainingEquilibrium) {
  // §1: "If the peers enter or leave the system one at a time and the
  // topology converges between two such events, then the equilibrium
  // topology after every event should be the same as ... full knowledge."
  util::Rng rng(66);
  const auto points = geometry::random_points(rng, 40, 2, 100.0);
  EmptyRectSelector selector;
  IncrementalConfig config;
  config.full_knowledge = true;
  IncrementalBuilder builder(selector, config, util::Rng(13));
  for (const auto& p : points) builder.insert(p);

  // Remove peers 5, 17, 30 one at a time.
  std::vector<geometry::Point> remaining;
  std::vector<bool> removed(points.size(), false);
  for (PeerId victim : {5u, 17u, 30u}) {
    EXPECT_TRUE(builder.remove(victim).has_value());
    removed[victim] = true;
  }
  for (std::size_t i = 0; i < points.size(); ++i)
    if (!removed[i]) remaining.push_back(points[i]);

  EXPECT_EQ(builder.size(), points.size() - 3);
  EXPECT_EQ(builder.graph(), build_equilibrium(remaining, selector));
}

TEST(IncrementalTest, RemoveUnderGossipKnowledgeStaysConnected) {
  util::Rng rng(67);
  const auto points = geometry::random_points(rng, 50, 2, 100.0);
  EmptyRectSelector selector;
  IncrementalBuilder builder(selector, IncrementalConfig{}, util::Rng(14));
  for (const auto& p : points) builder.insert(p);
  for (PeerId victim : {1u, 2u, 3u, 4u, 5u}) builder.remove(victim);
  EXPECT_EQ(builder.size(), 45u);
  EXPECT_TRUE(analysis::is_connected(builder.graph()));
}

TEST(IncrementalTest, RemoveDeadPeerThrows) {
  EmptyRectSelector selector;
  IncrementalBuilder builder(selector, IncrementalConfig{}, util::Rng(15));
  builder.insert(geometry::Point({1.0, 1.0}));
  builder.insert(geometry::Point({2.0, 2.5}));
  builder.remove(0);
  EXPECT_THROW(builder.remove(0), std::invalid_argument);
  EXPECT_THROW(builder.remove(9), std::invalid_argument);
}

TEST(IncrementalTest, DenseMappingSkipsRemoved) {
  EmptyRectSelector selector;
  IncrementalConfig config;
  config.full_knowledge = true;
  IncrementalBuilder builder(selector, config, util::Rng(16));
  for (double x : {1.0, 2.0, 3.0, 4.0})
    builder.insert(geometry::Point({x, 10.0 - x}));
  builder.remove(1);
  const auto mapping = builder.dense_mapping();
  EXPECT_EQ(mapping[0], 0u);
  EXPECT_EQ(mapping[1], kInvalidPeer);
  EXPECT_EQ(mapping[2], 1u);
  EXPECT_EQ(mapping[3], 2u);
  EXPECT_FALSE(builder.alive(1));
  EXPECT_TRUE(builder.alive(2));
}

TEST(IncrementalTest, ChurnMixInsertAndRemove) {
  // Interleaved joins and leaves, the paper's full churn model.
  util::Rng rng(68);
  const auto points = geometry::random_points(rng, 60, 2, 100.0);
  EmptyRectSelector selector;
  IncrementalConfig config;
  config.full_knowledge = true;
  IncrementalBuilder builder(selector, config, util::Rng(17));
  std::vector<bool> removed(points.size(), false);
  for (std::size_t i = 0; i < 40; ++i) builder.insert(points[i]);
  for (PeerId victim : {0u, 10u, 20u}) {
    builder.remove(victim);
    removed[victim] = true;
  }
  for (std::size_t i = 40; i < points.size(); ++i) builder.insert(points[i]);

  std::vector<geometry::Point> remaining;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (!removed[i]) remaining.push_back(points[i]);
  EXPECT_EQ(builder.graph(), build_equilibrium(remaining, selector));
}

}  // namespace
}  // namespace geomcast::overlay
