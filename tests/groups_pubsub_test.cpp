#include "groups/pubsub.hpp"

#include <gtest/gtest.h>

#include "geometry/random_points.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/rng.hpp"

namespace geomcast::groups {
namespace {

overlay::OverlayGraph make_overlay(std::size_t n, std::size_t dims, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto points = geometry::random_points(rng, n, dims, 100.0);
  return overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
}

/// Subscribes `count` distinct non-root peers in [0, n) to `group`,
/// staggered over (0, 1); returns them.
std::vector<PeerId> subscribe_wave(PubSubSystem& system, GroupId group, std::size_t n,
                                   std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  const PeerId root = system.manager().root_of(group);
  std::vector<bool> chosen(n, false);
  std::vector<PeerId> members;
  while (members.size() < count) {
    const auto p = static_cast<PeerId>(rng.next_below(n));
    if (chosen[p] || p == root) continue;
    chosen[p] = true;
    members.push_back(p);
    system.subscribe_at(0.001 * static_cast<double>(members.size()), p, group);
  }
  return members;
}

TEST(PubSubSystemTest, LosslessDeliveryReachesEverySubscriber) {
  const auto graph = make_overlay(60, 2, 301);
  PubSubSystem system(graph);
  const std::vector<GroupId> gs{5, 6, 7};
  std::map<GroupId, std::vector<PeerId>> members;
  for (GroupId g : gs) members[g] = subscribe_wave(system, g, graph.size(), 8, 40 + g);
  for (GroupId g : gs) {
    system.publish_at(2.0, members[g].front(), g);
    system.publish_at(3.0, members[g].back(), g);
  }
  system.run();

  for (GroupId g : gs) {
    const auto& stats = system.stats(g);
    EXPECT_EQ(stats.subscribes, 8u) << "group " << g;
    EXPECT_EQ(stats.publishes, 2u) << "group " << g;
    EXPECT_EQ(stats.expected_deliveries, 16u) << "group " << g;
    EXPECT_EQ(stats.deliveries, 16u) << "group " << g;
    EXPECT_EQ(stats.duplicate_deliveries, 0u) << "group " << g;
    EXPECT_GT(stats.control_messages, 0u) << "group " << g;
    EXPECT_GT(stats.payload_messages, 0u) << "group " << g;
    EXPECT_EQ(stats.stranded_messages, 0u) << "group " << g;
    EXPECT_DOUBLE_EQ(stats.delivery_ratio(), 1.0) << "group " << g;
  }
  // The pruned trees beat whole-overlay dissemination per publish.
  const auto total = system.total_stats();
  EXPECT_LT(total.payload_messages / total.publishes, graph.size() - 1);
}

TEST(PubSubSystemTest, DeterministicUnderFixedSeed) {
  const auto graph = make_overlay(50, 2, 302);
  auto run_once = [&]() {
    PubSubConfig config;
    config.seed = 9;
    config.loss.drop_probability = 0.1;
    PubSubSystem system(graph, config);
    const auto members = subscribe_wave(system, 1, graph.size(), 10, 77);
    system.publish_at(2.0, members[0], 1);
    system.publish_at(2.5, members[5], 1);
    system.run();
    return std::make_tuple(system.stats(1).deliveries, system.stats(1).payload_messages,
                           system.stats(1).control_messages,
                           system.simulator().stats().dropped);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(PubSubSystemTest, LossSurfacesAsMissingDeliveries) {
  const auto graph = make_overlay(60, 2, 303);
  PubSubConfig config;
  config.seed = 4;
  config.loss.drop_probability = 0.25;
  PubSubSystem system(graph, config);
  const auto members = subscribe_wave(system, 2, graph.size(), 12, 55);
  for (int i = 0; i < 6; ++i)
    system.publish_at(2.0 + 0.5 * i, members[static_cast<std::size_t>(i)], 2);
  system.run();

  EXPECT_GT(system.simulator().stats().dropped, 0u);
  const auto& stats = system.stats(2);
  // Lost subscribes shrink the expected set; lost payload hops shrink
  // deliveries below it. Either way the accounting must stay consistent.
  EXPECT_LE(stats.deliveries, stats.expected_deliveries);
  EXPECT_LT(stats.delivery_ratio(), 1.0);
}

TEST(PubSubSystemTest, ChurnRepairsAndKeepsDelivering) {
  const auto graph = make_overlay(80, 2, 304);
  PubSubSystem system(graph);
  const GroupId g = 3;
  const auto members = subscribe_wave(system, g, graph.size(), 10, 66);
  system.publish_at(2.0, members[0], g);
  system.depart_at(3.0, members[1]);
  system.publish_at(4.0, members[2], g);
  system.run();

  EXPECT_FALSE(system.manager().alive(members[1]));
  EXPECT_EQ(system.manager().subscriber_count(g), 9u);
  const auto& stats = system.stats(g);
  EXPECT_EQ(stats.expected_deliveries, 19u);  // 10 then 9
  EXPECT_EQ(stats.deliveries, 19u);
  EXPECT_DOUBLE_EQ(stats.delivery_ratio(), 1.0);
  EXPECT_GE(stats.repairs + stats.tree_builds, 2u);  // mended or rebuilt after churn
}

TEST(PubSubSystemTest, SubscribeInFlightWhenOriginDepartsIsIgnored) {
  // The subscribe envelope outlives its sender: it must be discarded at
  // the root, not crash the run or register a dead subscriber.
  const auto graph = make_overlay(60, 2, 306);
  PubSubSystem system(graph);
  const GroupId g = 4;
  const PeerId root = system.manager().root_of(g);
  const PeerId peer = root == 0 ? 1 : 0;
  system.subscribe_at(0.0, peer, g);
  system.depart_at(0.005, peer);  // before the first 0.01-latency hop lands
  EXPECT_NO_THROW(system.run());
  EXPECT_EQ(system.manager().subscriber_count(g), 0u);
}

TEST(PubSubSystemTest, RootDepartingUnderAnInFlightPublishIgnoresIt) {
  // The publish envelope is already addressed to the root when the root
  // departs: the dead root must not process it (no publish counted, no
  // rebuild triggered, accounting stays at ratio 1).
  const auto graph = make_overlay(60, 2, 307);
  PubSubSystem system(graph);
  const GroupId g = 9;
  const auto members = subscribe_wave(system, g, graph.size(), 6, 88);
  system.publish_at(2.0, members[0], g);

  const PeerId root = system.manager().root_of(g);
  const PeerId adjacent = graph.neighbors(root).front();
  system.publish_at(5.0, adjacent, g);  // one hop: lands at 5.01
  system.depart_at(5.005, root);        // root dies with the envelope in flight
  system.run();

  const auto& stats = system.stats(g);
  EXPECT_EQ(stats.publishes, 1u);  // only the warm publish
  EXPECT_EQ(stats.root_migrations, 1u);
  EXPECT_DOUBLE_EQ(stats.delivery_ratio(), 1.0);
}

TEST(PubSubSystemTest, PublishToEmptyGroupIsHarmless) {
  const auto graph = make_overlay(40, 2, 305);
  PubSubSystem system(graph);
  system.publish_at(1.0, 0, 8);
  system.run();
  const auto& stats = system.stats(8);
  EXPECT_EQ(stats.publishes, 1u);
  EXPECT_EQ(stats.deliveries, 0u);
  EXPECT_DOUBLE_EQ(stats.delivery_ratio(), 1.0);
}

}  // namespace
}  // namespace geomcast::groups
