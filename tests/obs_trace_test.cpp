// Wave-lifecycle tracing battery: determinism (identical seeds produce
// byte-identical trace streams), passivity (attaching a sink changes no
// delivered set and no counter on a lossy QoS 2 + churn seed), ring
// bounds, the per-wave query, and the Chrome trace-event export shape.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "groups_test_util.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"

namespace geomcast {
namespace {

using groups::GroupId;
using groups::PeerId;
using groups::PubSubConfig;
using groups::PubSubSystem;
using groups::testutil::make_overlay;
using groups::testutil::subscribe_members;

using DeliveredSet = std::set<std::tuple<PeerId, GroupId, std::uint64_t>>;

/// Subscribes `count` peers not yet members at `time` — they arrive after
/// the tree exists, so they enter through the routed graft plane.
std::vector<PeerId> subscribe_late(PubSubSystem& system,
                                   const overlay::OverlayGraph& graph, GroupId group,
                                   const std::vector<PeerId>& members,
                                   std::size_t count, double time) {
  std::vector<bool> taken(graph.size(), false);
  for (const PeerId m : members) taken[m] = true;
  taken[system.manager().root_of(group)] = true;
  std::vector<PeerId> late;
  for (PeerId p = 0; p < graph.size() && late.size() < count; ++p) {
    if (taken[p]) continue;
    late.push_back(p);
    system.subscribe_at(time + 0.01 * static_cast<double>(late.size()), p, group);
  }
  return late;
}

struct RunResult {
  DeliveredSet delivered;
  std::string group_stats_json;    // totals, histograms included
  std::string network_stats_json;  // counters + per-kind + per-node loads
  std::vector<obs::TraceEvent> events;
  std::string trace_json;
};

/// One deterministic lossy QoS 2 + churn workload: 80 peers, 20
/// subscribers, coalesced publishes, a mid-run subscriber departure.
RunResult run_workload(bool traced) {
  const auto graph = make_overlay(80, 2, 7);
  PubSubConfig config;
  config.seed = 42;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.loss.drop_probability = 0.05;
  config.batch_window = 0.02;
  config.max_batch = 4;
  PubSubSystem system(graph, config);
  obs::TraceSink sink;
  if (traced) system.set_trace_sink(&sink);
  RunResult result;
  system.set_delivery_probe(
      [&result](PeerId peer, GroupId group, std::uint64_t seq, double) {
        result.delivered.emplace(peer, group, seq);
      });
  const GroupId group = 1;
  const auto members = subscribe_members(system, graph, group, 20, 42);
  for (std::size_t i = 0; i < 30; ++i)
    system.publish_at(2.0 + 0.015 * static_cast<double>(i),
                      members[i % members.size()], group);
  system.depart_at(2.2, members[5]);
  // Late joiners after the tree exists (first flush ~2.02) but before the
  // churn (a departure leaves the zones stale, which disables grafting)
  // exercise the routed graft plane.
  subscribe_late(system, graph, group, members, 4, 2.1);
  for (std::size_t i = 0; i < 5; ++i)
    system.publish_at(3.5 + 0.05 * static_cast<double>(i),
                      members[i % members.size()], group);
  system.run();
  result.group_stats_json = obs::to_json(system.total_stats());
  result.network_stats_json = obs::to_json(system.simulator().network().stats());
  result.events = sink.events();
  result.trace_json = obs::chrome_trace_json(result.events);
  return result;
}

TEST(ObsTrace, IdenticalSeedsYieldByteIdenticalStreams) {
  const RunResult a = run_workload(/*traced=*/true);
  const RunResult b = run_workload(/*traced=*/true);
  ASSERT_FALSE(a.events.empty());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i)
    EXPECT_TRUE(a.events[i] == b.events[i]) << "event " << i << " diverged";
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(ObsTrace, TracingIsPassiveOnLossyChurnSeed) {
  const RunResult traced = run_workload(/*traced=*/true);
  const RunResult untraced = run_workload(/*traced=*/false);
  // Delivered (peer, group, seq) sets are identical...
  EXPECT_EQ(traced.delivered, untraced.delivered);
  ASSERT_FALSE(untraced.delivered.empty());
  // ...and so is every counter and latency histogram (the JSON embeds all
  // of them, so one comparison covers the whole block).
  EXPECT_EQ(traced.group_stats_json, untraced.group_stats_json);
  EXPECT_EQ(traced.network_stats_json, untraced.network_stats_json);
  EXPECT_TRUE(untraced.events.empty());
}

TEST(ObsTrace, WorkloadEmitsTheFullLifecycle) {
  const RunResult result = run_workload(/*traced=*/true);
  std::set<obs::TraceEventType> seen;
  for (const auto& event : result.events) seen.insert(event.type);
  // The lossy coalesced QoS 2 + churn workload must exercise the publish
  // pipeline, the hop plane, delivery, and the graft plane. (Gap events
  // are seed-dependent: per-hop QoS 1 recovery may heal every loss first.)
  for (const auto type :
       {obs::TraceEventType::kPublishAccepted, obs::TraceEventType::kRootBuffer,
        obs::TraceEventType::kRootFlush, obs::TraceEventType::kHopSend,
        obs::TraceEventType::kHopAck, obs::TraceEventType::kHopRetransmit,
        obs::TraceEventType::kDelivery, obs::TraceEventType::kGraftBegin,
        obs::TraceEventType::kGraftFinish})
    EXPECT_TRUE(seen.count(type)) << trace_event_name(type) << " never emitted";
}

TEST(ObsTrace, EventsForWaveCollectsTheWaveLifecycle) {
  // Lossless, unbatched, QoS 1: one publish = one wave with a crisp
  // lifecycle (accept, flush, hop sends, acks, deliveries).
  const auto graph = make_overlay(40, 2, 3);
  PubSubConfig config;
  config.seed = 9;
  config.reliability.qos = multicast::QoS::kAcked;
  PubSubSystem system(graph, config);
  obs::TraceSink sink;
  system.set_trace_sink(&sink);
  const GroupId group = 2;
  const auto members = subscribe_members(system, graph, group, 8, 9);
  system.publish_at(2.0, members[0], group);
  system.run();
  // Find the flushed wave id.
  std::uint64_t wave = obs::kNoWave;
  for (const auto& event : sink.events())
    if (event.type == obs::TraceEventType::kRootFlush && event.group == group)
      wave = event.wave;
  ASSERT_NE(wave, obs::kNoWave);
  const auto lifecycle = sink.events_for_wave(group, wave);
  std::set<obs::TraceEventType> seen;
  for (const auto& event : lifecycle) {
    EXPECT_EQ(event.group, group);
    seen.insert(event.type);
  }
  EXPECT_TRUE(seen.count(obs::TraceEventType::kPublishAccepted));
  EXPECT_TRUE(seen.count(obs::TraceEventType::kRootFlush));
  EXPECT_TRUE(seen.count(obs::TraceEventType::kHopSend));
  EXPECT_TRUE(seen.count(obs::TraceEventType::kHopAck));
  // Deliveries are seq-scoped (wave == kNoWave) and join by range
  // intersection with the flushed range.
  EXPECT_TRUE(seen.count(obs::TraceEventType::kDelivery));
}

TEST(ObsTrace, RingOverflowDropsOldestAndCounts) {
  obs::TraceSink sink(/*capacity=*/8);
  for (std::uint64_t i = 0; i < 20; ++i)
    sink.record({static_cast<double>(i), obs::TraceEventType::kDelivery, 1,
                 obs::kNoWave, i, i, 0});
  EXPECT_EQ(sink.size(), 8u);
  EXPECT_EQ(sink.capacity(), 8u);
  EXPECT_EQ(sink.dropped(), 12u);
  EXPECT_EQ(sink.recorded(), 20u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest first, and the survivors are the 8 newest records.
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(events[i].seq_lo, 12 + i);
}

TEST(ObsTrace, ChromeTraceExportShape) {
  obs::TraceSink sink;
  sink.record({1.5, obs::TraceEventType::kRootFlush, 3, 7, 10, 13, 2});
  sink.record(
      {1.75, obs::TraceEventType::kDelivery, 3, obs::kNoWave, 10, 10, 5});
  const std::string json = obs::chrome_trace_json(sink.events());
  // Perfetto/chrome://tracing require traceEvents with name/ph/ts/pid/tid.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"root_flush\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"delivery\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1500000.000"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Byte determinism of the exporter itself.
  EXPECT_EQ(json, obs::chrome_trace_json(sink.events()));
}

TEST(ObsTrace, DetachStopsRecording) {
  const auto graph = make_overlay(30, 2, 5);
  PubSubConfig config;
  config.seed = 4;
  PubSubSystem system(graph, config);
  obs::TraceSink sink;
  system.set_trace_sink(&sink);
  system.set_trace_sink(nullptr);
  const GroupId group = 1;
  const auto members = subscribe_members(system, graph, group, 5, 4);
  system.publish_at(1.0, members[0], group);
  system.run();
  EXPECT_EQ(sink.recorded(), 0u);
}

}  // namespace
}  // namespace geomcast
