#include <gtest/gtest.h>

#include "geometry/random_points.hpp"
#include "multicast/bfs_tree.hpp"
#include "multicast/flooding.hpp"
#include "multicast/space_partition.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/rng.hpp"

namespace geomcast::multicast {
namespace {

overlay::OverlayGraph make_overlay(std::size_t n, std::size_t dims, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto points = geometry::random_points(rng, n, dims, 100.0);
  return overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
}

TEST(FloodingTest, ReachesEveryPeer) {
  const auto graph = make_overlay(100, 2, 51);
  const auto result = build_flooding_tree(graph, 0);
  EXPECT_EQ(result.tree.reached_count(), graph.size());
}

TEST(FloodingTest, MessageCountIs2EMinusNMinus1) {
  // Every reached non-root peer forwards deg(v)-1 messages; the root sends
  // deg(root). On a connected overlay that totals 2E - (N-1).
  const auto graph = make_overlay(100, 2, 52);
  const auto result = build_flooding_tree(graph, 3);
  EXPECT_EQ(result.request_messages, 2 * graph.edge_count() - (graph.size() - 1));
}

TEST(FloodingTest, DuplicatesAreTheOverhead) {
  const auto graph = make_overlay(100, 2, 53);
  const auto result = build_flooding_tree(graph, 3);
  EXPECT_EQ(result.request_messages,
            (graph.size() - 1) + result.duplicate_deliveries);
  EXPECT_GT(result.duplicate_deliveries, 0u);  // any cycle-ful overlay floods extra
}

TEST(FloodingTest, CostsStrictlyMoreThanSpacePartition) {
  // The quantitative version of the paper's motivation.
  for (int dims : {2, 3, 4}) {
    const auto graph = make_overlay(120, static_cast<std::size_t>(dims), 54 + dims);
    const auto flood = build_flooding_tree(graph, 0);
    const auto sp = build_multicast_tree(graph, 0);
    EXPECT_GT(flood.request_messages, sp.request_messages) << "dims " << dims;
  }
}

TEST(FloodingTest, TreeIsBfsShaped) {
  // With a FIFO wave, flooding parents arrive along shortest paths, so
  // depths must match the BFS tree's depths.
  const auto graph = make_overlay(90, 2, 55);
  const auto flood = build_flooding_tree(graph, 2);
  const auto bfs = build_bfs_tree(graph, 2);
  EXPECT_EQ(flood.tree.depths(), bfs.depths());
}

TEST(BfsTreeTest, SpansConnectedOverlay) {
  const auto graph = make_overlay(80, 2, 56);
  const auto tree = build_bfs_tree(graph, 0);
  EXPECT_EQ(tree.reached_count(), graph.size());
  EXPECT_EQ(tree.edge_count(), graph.size() - 1);
}

TEST(BfsTreeTest, DepthsAreShortestHopDistances) {
  const auto graph = make_overlay(80, 2, 57);
  const auto tree = build_bfs_tree(graph, 5);
  const auto depths = tree.depths();
  // Every tree edge spans adjacent BFS levels and uses an overlay edge.
  for (overlay::PeerId p = 0; p < graph.size(); ++p) {
    if (p == 5) continue;
    EXPECT_TRUE(graph.has_edge(p, tree.parent(p)));
    EXPECT_EQ(depths[p], depths[tree.parent(p)] + 1);
  }
}

TEST(BfsTreeTest, PathsNeverLongerThanSpacePartition) {
  // BFS is the hop-count optimum on the overlay; the decentralized scheme
  // pays some stretch. Check the orderings the ablation bench reports.
  const auto graph = make_overlay(150, 2, 58);
  const auto bfs = build_bfs_tree(graph, 0);
  const auto sp = build_multicast_tree(graph, 0);
  EXPECT_LE(bfs.max_root_to_leaf_path(), sp.tree.max_root_to_leaf_path());
}

TEST(BaselineTest, RootOutOfRangeThrows) {
  const auto graph = make_overlay(10, 2, 59);
  EXPECT_THROW(build_flooding_tree(graph, 10), std::invalid_argument);
  EXPECT_THROW(build_bfs_tree(graph, 10), std::invalid_argument);
}

}  // namespace
}  // namespace geomcast::multicast
