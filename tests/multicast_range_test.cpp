#include "multicast/range_multicast.hpp"

#include <gtest/gtest.h>

#include "geometry/random_points.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/rng.hpp"

namespace geomcast::multicast {
namespace {

overlay::OverlayGraph make_overlay(std::size_t n, std::size_t dims, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto points = geometry::random_points(rng, n, dims, 100.0);
  return overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
}

TEST(RangeMulticastTest, WholeSpaceTargetEqualsRegularMulticast) {
  const auto graph = make_overlay(100, 2, 61);
  const auto ranged =
      build_range_multicast(graph, 0, geometry::Rect::whole_space(2));
  const auto regular = build_multicast_tree(graph, 0);
  EXPECT_EQ(ranged.delivered, graph.size());
  EXPECT_EQ(ranged.relays, 0u);
  EXPECT_EQ(ranged.request_messages, regular.request_messages);
  for (overlay::PeerId p = 0; p < graph.size(); ++p)
    EXPECT_EQ(ranged.tree.parent(p), regular.tree.parent(p));
}

TEST(RangeMulticastTest, EmptyTargetDeliversNothing) {
  const auto graph = make_overlay(80, 2, 62);
  // A target beyond every coordinate: peer-free, but zone slices toward the
  // corner still intersect it, so the recursion probes a relay chain in
  // that direction before running out of candidates.
  const auto target = geometry::Rect::cube(2, 200.0, 201.0);
  const auto result = build_range_multicast(graph, 0, target);
  EXPECT_EQ(result.delivered, 0u);
  EXPECT_EQ(result.duplicate_deliveries, 0u);
  EXPECT_GE(result.relays, 1u);  // at least the initiator processed it
  EXPECT_LT(result.relays, graph.size() / 2);  // ...but most peers never see it
  EXPECT_EQ(result.request_messages, result.relays - 1);
}

TEST(RangeMulticastTest, DimensionMismatchThrows) {
  const auto graph = make_overlay(20, 2, 63);
  EXPECT_THROW(build_range_multicast(graph, 0, geometry::Rect::whole_space(3)),
               std::invalid_argument);
  EXPECT_THROW(build_range_multicast(graph, 20, geometry::Rect::whole_space(2)),
               std::invalid_argument);
}

// Coverage: every peer strictly inside the target is delivered, regardless
// of where the initiator sits — swept over dims, target size and seed.
class RangeCoverageTest
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {};

TEST_P(RangeCoverageTest, AllTargetPeersDeliveredNoDuplicates) {
  const auto [dims, extent, seed] = GetParam();
  const auto graph = make_overlay(150, static_cast<std::size_t>(dims), seed);
  util::Rng rng(seed ^ 0xabcdef);
  for (int trial = 0; trial < 8; ++trial) {
    geometry::Rect target(static_cast<std::size_t>(dims));
    for (std::size_t d = 0; d < static_cast<std::size_t>(dims); ++d) {
      const double lo = rng.uniform(0.0, 100.0 - extent);
      target.set_lo(d, lo);
      target.set_hi(d, lo + extent);
    }
    const auto root = static_cast<overlay::PeerId>(rng.next_below(graph.size()));
    const auto result = build_range_multicast(graph, root, target);

    EXPECT_EQ(result.delivered, peers_inside(graph, target));
    EXPECT_EQ(result.duplicate_deliveries, 0u);
    for (overlay::PeerId p = 0; p < graph.size(); ++p) {
      const bool inside = target.contains_interior(graph.point(p));
      if (p == root) continue;
      if (inside) EXPECT_TRUE(result.tree.reached(p)) << "missed target peer " << p;
      EXPECT_EQ(result.is_delivery[p], inside && result.tree.reached(p));
    }
    // Messages = reached peers minus the initiator.
    EXPECT_EQ(result.request_messages, result.delivered + result.relays - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RangeCoverageTest,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(20.0, 50.0, 90.0),
                                            ::testing::Values(71u, 72u)));

TEST(RangeMulticastTest, SmallTargetCheaperThanFullMulticast) {
  const auto graph = make_overlay(300, 2, 64);
  const auto target = geometry::Rect::cube(2, 10.0, 30.0);  // 4% of the area
  const auto ranged = build_range_multicast(graph, 0, target);
  const auto full = build_multicast_tree(graph, 0);
  EXPECT_GT(ranged.delivered, 0u);
  EXPECT_LT(ranged.request_messages, full.request_messages / 2)
      << "pruning should skip most of the overlay for a small target";
}

TEST(RangeMulticastTest, RelayCountBounded) {
  // Relays exist (the initiator may be outside the target) but the pruned
  // recursion should not touch the whole overlay for a small zone.
  const auto graph = make_overlay(300, 2, 65);
  const auto target = geometry::Rect::cube(2, 70.0, 90.0);
  const auto result = build_range_multicast(graph, 0, target);
  EXPECT_LT(result.relays, graph.size() / 2);
}

TEST(RangeMulticastTest, DeterministicAcrossRuns) {
  const auto graph = make_overlay(100, 3, 66);
  const auto target = geometry::Rect::cube(3, 20.0, 60.0);
  const auto a = build_range_multicast(graph, 5, target);
  const auto b = build_range_multicast(graph, 5, target);
  EXPECT_EQ(a.request_messages, b.request_messages);
  EXPECT_EQ(a.delivered, b.delivered);
  for (overlay::PeerId p = 0; p < graph.size(); ++p)
    EXPECT_EQ(a.tree.parent(p), b.tree.parent(p));
}

}  // namespace
}  // namespace geomcast::multicast
