// Oracle-equivalence battery for the simulator-core fast path.
//
// PubSubConfig::sim_core gates three substitutions: the hierarchical
// timer-wheel event queue (vs the historic binary heap), interval-set
// (group, seq) dedup (vs per-seq std::set), and the dense window-slot
// storage. All three are engineered to be *bit-passive*: same pop order,
// same dedup verdicts, same stats. This battery pins that claim the
// strongest way the observability layer allows — for each workload cell it
// runs the identical seeded scenario with sim_core on and off and demands
//   (1) identical delivered sequences: every (peer, group, seq, time)
//       tuple, in probe-invocation order,
//   (2) byte-identical stats JSON (GroupStats + NetworkStats + HopStats —
//       obs::to_json is canonical, so one differing counter fails), and
//   (3) the same run() event count.
// Cells span QoS 0/1/2, stochastic loss, churn, batching, and a warm
// root-kill, so every subsystem the knob touches is exercised.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "groups/pubsub.hpp"
#include "obs/snapshot.hpp"
#include "groups_test_util.hpp"

namespace geomcast::groups {
namespace {

using testutil::make_overlay;
using testutil::subscribe_members;

struct CellResult {
  std::vector<std::tuple<PeerId, GroupId, std::uint64_t, double>> delivered;
  std::string stats_json;
  std::size_t events = 0;
};

/// Runs one seeded workload and captures everything the equivalence gate
/// compares. The workload is a pure function of (config, knobs below);
/// only config.sim_core varies between the two runs of a cell.
CellResult run_cell(const overlay::OverlayGraph& graph, PubSubConfig config,
                    std::size_t groups, std::size_t members, std::size_t publishes,
                    std::size_t departures, bool kill_root) {
  PubSubSystem system(graph, config);
  CellResult out;
  system.set_delivery_probe(
      [&out](PeerId peer, GroupId group, std::uint64_t seq, double time) {
        out.delivered.emplace_back(peer, group, seq, time);
      });
  std::vector<std::vector<PeerId>> cell_members(groups);
  for (GroupId g = 0; g < groups; ++g)
    cell_members[g] = subscribe_members(system, graph, g, members, config.seed + g);
  for (GroupId g = 0; g < groups; ++g) {
    const PeerId root = system.manager().root_of(g);
    for (std::size_t i = 0; i < publishes; ++i)
      system.publish_at(2.0 + 0.05 * static_cast<double>(i) +
                            0.001 * static_cast<double>(g),
                        root, g);
  }
  // Churn: subscribers leave mid-workload, deterministically picked from
  // the back of each membership list so roots survive.
  std::size_t departed = 0;
  for (GroupId g = 0; g < groups && departed < departures; ++g)
    for (auto it = cell_members[g].rbegin();
         it != cell_members[g].rend() && departed < departures; ++it, ++departed)
      system.depart_at(2.2 + 0.05 * static_cast<double>(departed), *it);
  if (kill_root) system.depart_at(2.26, system.manager().root_of(0));
  out.events = system.run();

  std::string json = obs::to_json(system.total_stats());
  json += '\n';
  json += obs::to_json(system.simulator().stats());
  json += '\n';
  json += obs::to_json(system.hop_stats());
  out.stats_json = std::move(json);
  return out;
}

void expect_equivalent(const overlay::OverlayGraph& graph, PubSubConfig config,
                       std::size_t groups, std::size_t members, std::size_t publishes,
                       std::size_t departures = 0, bool kill_root = false) {
  config.sim_core = true;
  const auto fast = run_cell(graph, config, groups, members, publishes, departures,
                             kill_root);
  config.sim_core = false;
  const auto oracle = run_cell(graph, config, groups, members, publishes, departures,
                               kill_root);
  EXPECT_EQ(fast.delivered, oracle.delivered);
  EXPECT_EQ(fast.stats_json, oracle.stats_json);
  EXPECT_EQ(fast.events, oracle.events);
  EXPECT_FALSE(fast.delivered.empty());
}

TEST(GroupsSimCoreTest, QoS0BatchedLossless) {
  const auto graph = make_overlay(150, 2, 1501);
  PubSubConfig config;
  config.seed = 211;
  config.batch_window = 0.1;
  expect_equivalent(graph, config, /*groups=*/4, /*members=*/10, /*publishes=*/6);
}

TEST(GroupsSimCoreTest, QoS1LossyBatchedWithChurn) {
  const auto graph = make_overlay(150, 2, 1502);
  PubSubConfig config;
  config.seed = 223;
  config.reliability.qos = multicast::QoS::kAcked;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 4;
  config.batch_window = 0.1;
  config.loss.drop_probability = 0.03;
  expect_equivalent(graph, config, 4, 10, 6, /*departures=*/6);
}

TEST(GroupsSimCoreTest, QoS2LossyRepairPath) {
  const auto graph = make_overlay(120, 3, 1503);
  PubSubConfig config;
  config.seed = 227;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 4;
  config.batch_window = 0.05;
  config.loss.drop_probability = 0.04;
  expect_equivalent(graph, config, 3, 12, 8);
}

TEST(GroupsSimCoreTest, WarmRootKillFailover) {
  const auto graph = make_overlay(150, 2, 1504);
  PubSubConfig config;
  config.seed = 229;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 4;
  config.batch_window = 0.1;
  config.warm_failover = true;
  expect_equivalent(graph, config, 3, 12, 6, /*departures=*/0, /*kill_root=*/true);
}

TEST(GroupsSimCoreTest, SeedSweepQoS1) {
  // Same scenario, several seeds — the dedup interval-set and wheel pop
  // order must hold across schedule permutations, not one lucky seed.
  const auto graph = make_overlay(130, 2, 1505);
  for (const std::uint64_t seed : {233u, 239u, 241u}) {
    PubSubConfig config;
    config.seed = seed;
    config.reliability.qos = multicast::QoS::kAcked;
    config.reliability.ack_timeout = 0.05;
    config.reliability.max_retries = 4;
    config.loss.drop_probability = 0.02;
    expect_equivalent(graph, config, 3, 8, 5);
  }
}

}  // namespace
}  // namespace geomcast::groups
