// Randomised churn stress: long interleaved sequences of joins and leaves
// against the incremental builder, checking after every event that the
// topology is exactly the full-knowledge equilibrium of the live peers
// (the paper's §1 convergence requirement) and that the §2 construction
// still covers everyone.
#include <gtest/gtest.h>

#include "analysis/graph_metrics.hpp"
#include "geometry/random_points.hpp"
#include "multicast/space_partition.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "overlay/hyperplane_k.hpp"
#include "overlay/incremental.hpp"
#include "util/rng.hpp"

namespace geomcast::overlay {
namespace {

class ChurnFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnFuzzTest, EquilibriumMaintainedThroughRandomChurn) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);
  util::Rng op_rng = rng.derive(1);

  const EmptyRectSelector selector;
  IncrementalConfig config;
  config.full_knowledge = true;
  IncrementalBuilder builder(selector, config, rng.derive(2));

  // Track live points in builder id order so graph() comparisons line up.
  std::vector<geometry::Point> all_points;
  std::vector<bool> alive;

  const auto live_points = [&] {
    std::vector<geometry::Point> live;
    for (std::size_t i = 0; i < all_points.size(); ++i)
      if (alive[i]) live.push_back(all_points[i]);
    return live;
  };

  for (int step = 0; step < 80; ++step) {
    const std::size_t live_count = builder.size();
    const bool join = live_count < 5 || (live_count < 40 && op_rng.chance(0.7));
    if (join) {
      // Fresh coordinates, re-drawn on (never-seen) per-dimension clashes.
      geometry::Point p{op_rng.uniform(0.0, 1000.0), op_rng.uniform(0.0, 1000.0)};
      all_points.push_back(p);
      alive.push_back(true);
      ASSERT_TRUE(builder.insert(p).has_value()) << "step " << step;
    } else {
      // Remove a uniformly random live peer.
      auto nth = op_rng.next_below(live_count);
      for (PeerId p = 0; p < all_points.size(); ++p) {
        if (!alive[p]) continue;
        if (nth == 0) {
          alive[p] = false;
          ASSERT_TRUE(builder.remove(p).has_value()) << "step " << step;
          break;
        }
        --nth;
      }
    }

    // §1 requirement: post-event equilibrium == full-knowledge topology.
    const auto graph = builder.graph();
    ASSERT_EQ(graph, build_equilibrium(live_points(), selector)) << "step " << step;
    ASSERT_TRUE(is_equilibrium(graph, selector)) << "step " << step;

    // §2 still works over the current overlay.
    if (graph.size() >= 2 && step % 10 == 0) {
      const auto result = multicast::build_multicast_tree(graph, 0);
      ASSERT_EQ(result.tree.reached_count(), graph.size()) << "step " << step;
      ASSERT_EQ(result.request_messages, graph.size() - 1) << "step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnFuzzTest,
                         ::testing::Values(1001u, 1002u, 1003u, 1004u, 1005u));

TEST(ChurnFuzzTest, OrthogonalKSelectorUnderChurn) {
  // Same stress with the §3 overlay family; weaker check (connectivity +
  // fixed point) since multicast coverage is not guaranteed there.
  util::Rng op_rng(2001);
  const auto selector = HyperplaneKSelector::orthogonal(3, 2);
  IncrementalConfig config;
  config.full_knowledge = true;
  IncrementalBuilder builder(selector, config, util::Rng(2002));

  std::size_t live = 0;
  std::size_t total = 0;
  for (int step = 0; step < 60; ++step) {
    if (live < 4 || op_rng.chance(0.65)) {
      geometry::Point p{op_rng.uniform(0.0, 1000.0), op_rng.uniform(0.0, 1000.0),
                        op_rng.uniform(0.0, 1000.0)};
      ASSERT_TRUE(builder.insert(p).has_value());
      ++live;
      ++total;
    } else {
      // Remove the lowest-id live peer (deterministic, exercises compaction).
      for (PeerId p = 0; p < total; ++p) {
        if (builder.alive(p)) {
          builder.remove(p);
          --live;
          break;
        }
      }
    }
    const auto graph = builder.graph();
    ASSERT_EQ(graph.size(), live);
    if (live >= 2) ASSERT_TRUE(analysis::is_connected(graph)) << "step " << step;
  }
}

}  // namespace
}  // namespace geomcast::overlay
