#include "multicast/tree.hpp"

#include <gtest/gtest.h>

#include "multicast/pick_policy.hpp"

namespace geomcast::multicast {
namespace {

TEST(MulticastTreeTest, FreshTreeHasOnlyRoot) {
  MulticastTree tree(5, 2);
  EXPECT_EQ(tree.root(), 2u);
  EXPECT_EQ(tree.reached_count(), 1u);
  EXPECT_TRUE(tree.reached(2));
  EXPECT_FALSE(tree.reached(0));
  EXPECT_EQ(tree.edge_count(), 0u);
}

TEST(MulticastTreeTest, RootOutOfRangeThrows) {
  EXPECT_THROW(MulticastTree(3, 5), std::invalid_argument);
}

TEST(MulticastTreeTest, AddEdgeLinks) {
  MulticastTree tree(4, 0);
  tree.add_edge(0, 1);
  tree.add_edge(1, 2);
  EXPECT_EQ(tree.parent(1), 0u);
  EXPECT_EQ(tree.parent(2), 1u);
  EXPECT_EQ(tree.children(0), (std::vector<PeerId>{1}));
  EXPECT_EQ(tree.reached_count(), 3u);
  EXPECT_EQ(tree.edge_count(), 2u);
}

TEST(MulticastTreeTest, DuplicateAttachThrows) {
  MulticastTree tree(3, 0);
  tree.add_edge(0, 1);
  EXPECT_THROW(tree.add_edge(0, 1), std::logic_error);
}

TEST(MulticastTreeTest, RootAsChildThrows) {
  MulticastTree tree(3, 0);
  EXPECT_THROW(tree.add_edge(1, 0), std::logic_error);
}

TEST(MulticastTreeTest, UnreachedParentThrows) {
  MulticastTree tree(4, 0);
  EXPECT_THROW(tree.add_edge(2, 3), std::logic_error);
}

TEST(MulticastTreeTest, DepthsBfs) {
  MulticastTree tree(6, 0);
  tree.add_edge(0, 1);
  tree.add_edge(0, 2);
  tree.add_edge(1, 3);
  tree.add_edge(3, 4);
  const auto depth = tree.depths();
  EXPECT_EQ(depth[0], 0u);
  EXPECT_EQ(depth[1], 1u);
  EXPECT_EQ(depth[2], 1u);
  EXPECT_EQ(depth[3], 2u);
  EXPECT_EQ(depth[4], 3u);
  EXPECT_EQ(depth[5], MulticastTree::kUnreachedDepth);
  EXPECT_EQ(tree.max_root_to_leaf_path(), 3u);
}

TEST(MulticastTreeTest, TreeDegreeCountsParentLink) {
  MulticastTree tree(4, 0);
  tree.add_edge(0, 1);
  tree.add_edge(0, 2);
  tree.add_edge(1, 3);
  EXPECT_EQ(tree.tree_degree(0), 2u);  // two children, no parent
  EXPECT_EQ(tree.tree_degree(1), 2u);  // one child + parent
  EXPECT_EQ(tree.tree_degree(2), 1u);  // leaf
  EXPECT_EQ(tree.max_tree_degree(), 2u);
  EXPECT_EQ(tree.max_children(), 2u);
}

TEST(MulticastTreeTest, StarTopologyDegrees) {
  MulticastTree tree(6, 0);
  for (PeerId p = 1; p < 6; ++p) tree.add_edge(0, p);
  EXPECT_EQ(tree.max_tree_degree(), 5u);
  EXPECT_EQ(tree.max_root_to_leaf_path(), 1u);
}

TEST(MulticastTreeTest, ChainDepth) {
  MulticastTree tree(10, 0);
  for (PeerId p = 1; p < 10; ++p) tree.add_edge(p - 1, p);
  EXPECT_EQ(tree.max_root_to_leaf_path(), 9u);
  EXPECT_EQ(tree.max_tree_degree(), 2u);
}

TEST(PickPolicyTest, StringRoundTrip) {
  for (auto policy : {PickPolicy::kMedian, PickPolicy::kClosest, PickPolicy::kFarthest,
                      PickPolicy::kRandom})
    EXPECT_EQ(pick_policy_from_string(to_string(policy)), policy);
  EXPECT_THROW((void)pick_policy_from_string("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace geomcast::multicast
