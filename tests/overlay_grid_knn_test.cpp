#include "overlay/grid_knn.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "analysis/graph_metrics.hpp"
#include "geometry/distance.hpp"
#include "geometry/random_points.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "overlay/k_closest.hpp"
#include "util/rng.hpp"

namespace geomcast::overlay {
namespace {

std::vector<std::vector<PeerId>> brute_knn(const std::vector<geometry::Point>& points,
                                           std::size_t k) {
  std::vector<std::vector<PeerId>> result(points.size());
  std::vector<std::pair<double, PeerId>> by_dist;
  for (PeerId p = 0; p < points.size(); ++p) {
    by_dist.clear();
    for (PeerId q = 0; q < points.size(); ++q)
      if (q != p) by_dist.emplace_back(geometry::l2_distance_sq(points[p], points[q]), q);
    std::sort(by_dist.begin(), by_dist.end());
    if (by_dist.size() > k) by_dist.resize(k);
    for (const auto& [d, q] : by_dist) result[p].push_back(q);
  }
  return result;
}

TEST(GridKnnTest, MatchesBruteForceAcrossDimsAndSeeds) {
  for (const std::size_t dims : {2u, 3u}) {
    for (const std::uint64_t seed : {51u, 52u, 53u}) {
      util::Rng rng(seed);
      const auto points = geometry::random_points(rng, 300, dims, 100.0);
      for (const std::size_t k : {1u, 8u, 16u})
        EXPECT_EQ(grid_knn(points, k), brute_knn(points, k))
            << "dims " << dims << " seed " << seed << " k " << k;
    }
  }
}

TEST(GridKnnTest, DegenerateInputs) {
  EXPECT_TRUE(grid_knn({}, 4).empty());
  const std::vector<geometry::Point> one{geometry::Point({1.0, 2.0})};
  const auto single = grid_knn(one, 4);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_TRUE(single[0].empty());
}

TEST(GridKnnTest, DuplicatePointsTieBreakById) {
  // Four coincident points: every peer's neighbour list is the other three
  // ids in ascending order, regardless of bucket layout.
  const geometry::Point p({5.0, 5.0});
  const std::vector<geometry::Point> points{p, p, p, p};
  const auto knn = grid_knn(points, 3);
  ASSERT_EQ(knn.size(), 4u);
  EXPECT_EQ(knn[0], (std::vector<PeerId>{1, 2, 3}));
  EXPECT_EQ(knn[2], (std::vector<PeerId>{0, 1, 3}));
}

TEST(GridKnnTest, FullKnowledgeReproducesBuildEquilibrium) {
  // k >= n-1 degenerates to the paper's full-knowledge I(P); the local
  // builder must then agree bit-for-bit with build_equilibrium because
  // selectors are order-independent over their candidate set.
  util::Rng rng(54);
  const auto points = geometry::random_points(rng, 250, 2, 100.0);
  const EmptyRectSelector empty_rect;
  const KClosestSelector k_closest(5);
  for (const NeighborSelector* selector :
       std::initializer_list<const NeighborSelector*>{&empty_rect, &k_closest})
    EXPECT_EQ(build_equilibrium_local(points, *selector, points.size() - 1),
              build_equilibrium(points, *selector))
        << selector->name();
}

TEST(GridKnnTest, LocalKnowledgeOverlayIsConnectedAtModestK) {
  // The 100k simulator-core sweep rides this builder; connectivity at small
  // k is what makes the multicast trees reach every subscriber.
  for (const std::uint64_t seed : {55u, 56u}) {
    util::Rng rng(seed);
    const auto points = geometry::random_points(rng, 500, 2, 100.0);
    const auto graph = build_equilibrium_local(points, EmptyRectSelector{}, 16);
    EXPECT_EQ(graph.size(), points.size());
    EXPECT_TRUE(analysis::is_connected(graph)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace geomcast::overlay
