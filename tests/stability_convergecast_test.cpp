#include "stability/convergecast.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "overlay/orthant_sweep.hpp"
#include "stability/lifetime.hpp"
#include "util/rng.hpp"

namespace geomcast::stability {
namespace {

struct Workload {
  std::vector<geometry::Point> points;
  std::vector<double> departure_times;
  StableTree tree;
};

Workload make_workload(std::size_t n, std::size_t dims, std::size_t k,
                       std::uint64_t seed) {
  util::Rng rng(seed);
  Workload w;
  w.points = lifetime_points(rng, n, dims, 1000.0, w.departure_times);
  const overlay::OrthantSweepIndex index(w.points);
  w.tree = build_stable_tree(index.graph_for_k(k), w.departure_times);
  return w;
}

TEST(ConvergecastTest, RootReceivesSumOfAllContributions) {
  const auto w = make_workload(200, 3, 3, 501);
  std::vector<double> values(w.tree.size());
  std::iota(values.begin(), values.end(), 1.0);  // 1..N
  const auto result = run_convergecast(w.tree, values);
  const double expected = 200.0 * 201.0 / 2.0;
  EXPECT_DOUBLE_EQ(result.root_value, expected);
  EXPECT_EQ(result.contributions, w.tree.size());
}

TEST(ConvergecastTest, ExactlyNMinus1Messages) {
  // Every non-root peer sends exactly one aggregate upward — the collection
  // mirror of the §2 N-1 dissemination claim.
  const auto w = make_workload(150, 2, 2, 502);
  const std::vector<double> values(w.tree.size(), 1.0);
  const auto result = run_convergecast(w.tree, values);
  EXPECT_EQ(result.messages, w.tree.size() - 1);
  EXPECT_DOUBLE_EQ(result.root_value, 150.0);  // count aggregate
}

TEST(ConvergecastTest, CompletionTimeEqualsTreeHeightUnderUnitLatency) {
  const auto w = make_workload(150, 2, 1, 503);
  const std::vector<double> values(w.tree.size(), 0.0);
  const auto result = run_convergecast(w.tree, values, sim::LatencyModel::constant(1.0));
  // Depth of the deepest leaf = number of hops the slowest partial travels.
  std::size_t max_depth = 0;
  for (PeerId p = 0; p < w.tree.size(); ++p) {
    std::size_t depth = 0;
    for (PeerId cursor = p; w.tree.parent[cursor] != kInvalidPeer;
         cursor = w.tree.parent[cursor])
      ++depth;
    max_depth = std::max(max_depth, depth);
  }
  EXPECT_DOUBLE_EQ(result.completion_time, static_cast<double>(max_depth));
}

TEST(ConvergecastTest, SingleNodeTree) {
  std::vector<geometry::Point> points{geometry::Point({5.0, 5.0})};
  StableTree tree;
  tree.parent = {kInvalidPeer};
  tree.children = {{}};
  tree.roots = {0};
  tree.departure_time = {1.0};
  const auto result = run_convergecast(tree, {42.0});
  EXPECT_DOUBLE_EQ(result.root_value, 42.0);
  EXPECT_EQ(result.contributions, 1u);
  EXPECT_EQ(result.messages, 0u);
}

TEST(ConvergecastTest, RejectsForestsAndBadSizes) {
  StableTree forest;
  forest.parent = {kInvalidPeer, kInvalidPeer};
  forest.children = {{}, {}};
  forest.roots = {0, 1};
  forest.departure_time = {1.0, 2.0};
  EXPECT_THROW(run_convergecast(forest, {1.0, 2.0}), std::invalid_argument);

  const auto w = make_workload(20, 2, 2, 504);
  EXPECT_THROW(run_convergecast(w.tree, std::vector<double>(5, 1.0)),
               std::invalid_argument);
}

TEST(ConvergecastTest, DeterministicWithJitteredLatency) {
  const auto w = make_workload(100, 2, 3, 505);
  std::vector<double> values(w.tree.size());
  std::iota(values.begin(), values.end(), 0.0);
  const auto a = run_convergecast(w.tree, values, sim::LatencyModel::uniform(0.01, 0.2), 9);
  const auto b = run_convergecast(w.tree, values, sim::LatencyModel::uniform(0.01, 0.2), 9);
  EXPECT_DOUBLE_EQ(a.root_value, b.root_value);
  EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
  // Aggregation is order-independent: jitter cannot change the result.
  const auto c = run_convergecast(w.tree, values, sim::LatencyModel::uniform(0.01, 0.2), 77);
  EXPECT_DOUBLE_EQ(a.root_value, c.root_value);
}

}  // namespace
}  // namespace geomcast::stability
