// Smoke tests for every experiment driver at reduced scale: rows come back
// well-formed, invariants hold, and the qualitative shapes the paper
// reports are present even at small N.
#include "analysis/experiments.hpp"

#include <gtest/gtest.h>

namespace geomcast::analysis {
namespace {

TEST(Fig1aDriverTest, RowsWellFormed) {
  Fig1aConfig config;
  config.peers = 150;
  config.dims = {2, 3};
  const auto rows = run_fig1a(config);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_GT(row.max_degree, 0u);
    EXPECT_GT(row.avg_degree, 0.0);
    EXPECT_LE(row.avg_degree, static_cast<double>(row.max_degree));
    EXPECT_TRUE(row.connected);
  }
  EXPECT_EQ(rows[0].dims, 2u);
  EXPECT_EQ(rows[1].dims, 3u);
}

TEST(Fig1aDriverTest, DegreeGrowsWithDimension) {
  // The paper's Fig 1a shape: degrees increase sharply with D.
  Fig1aConfig config;
  config.peers = 300;
  config.dims = {2, 4};
  const auto rows = run_fig1a(config);
  EXPECT_GT(rows[1].avg_degree, rows[0].avg_degree);
}

TEST(Fig1aDriverTest, TableRendering) {
  Fig1aConfig config;
  config.peers = 80;
  config.dims = {2};
  const auto table = fig1a_table(run_fig1a(config));
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.column_count(), 4u);
}

TEST(Fig1bDriverTest, RowsWellFormed) {
  Fig1bConfig config;
  config.peers = 120;
  config.dims = {2, 3};
  config.roots = 30;
  const auto rows = run_fig1b(config);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_GT(row.max_longest_path, 0u);
    EXPECT_GT(row.avg_longest_path, 0.0);
    EXPECT_LE(row.avg_longest_path, static_cast<double>(row.max_longest_path));
    EXPECT_EQ(row.sessions, 30u);
    EXPECT_EQ(row.invalid_sessions, 0u);
    EXPECT_LE(row.max_children, std::size_t{1} << row.dims);
  }
}

TEST(Fig1bDriverTest, AllRootsWhenRootsZero) {
  Fig1bConfig config;
  config.peers = 60;
  config.dims = {2};
  config.roots = 0;
  const auto rows = run_fig1b(config);
  EXPECT_EQ(rows[0].sessions, 60u);
}

TEST(Fig1cDriverTest, ReferenceCurveAndGrowth) {
  Fig1cConfig config;
  config.peer_counts = {100, 400};
  const auto rows = run_fig1c(config);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NEAR(rows[0].ten_log10_n, 20.0, 1e-9);   // 10*log10(100)
  EXPECT_NEAR(rows[1].ten_log10_n, 26.02, 0.01);  // 10*log10(400)
  EXPECT_GE(rows[1].max_degree, rows[0].max_degree);
}

TEST(StabilitySweepDriverTest, InvariantsAcrossGrid) {
  StabilitySweepConfig config;
  config.peers = 120;
  config.dims = {2, 4};
  config.k_min = 1;
  config.k_max = 4;
  const auto rows = run_stability_sweep(config);
  ASSERT_EQ(rows.size(), 2u * 4u);
  for (const auto& row : rows) {
    EXPECT_TRUE(row.single_tree) << "D=" << row.dims << " K=" << row.k;
    EXPECT_TRUE(row.monotone) << "D=" << row.dims << " K=" << row.k;
    EXPECT_GT(row.diameter, 0u);
    EXPECT_GT(row.max_degree, 0u);
  }
}

TEST(StabilitySweepDriverTest, DiameterShrinksWithK) {
  // Fig 1d shape: more neighbours => shallower trees. Compare K=1 vs K=16.
  StabilitySweepConfig config;
  config.peers = 300;
  config.dims = {2};
  config.k_min = 1;
  config.k_max = 16;
  const auto rows = run_stability_sweep(config);
  EXPECT_GT(rows.front().diameter, rows.back().diameter);
}

TEST(StabilitySweepDriverTest, DegreeGrowsWithK) {
  // Fig 1e shape.
  StabilitySweepConfig config;
  config.peers = 300;
  config.dims = {2};
  config.k_min = 1;
  config.k_max = 16;
  const auto rows = run_stability_sweep(config);
  EXPECT_LT(rows.front().max_degree, rows.back().max_degree);
}

TEST(MessageComparisonDriverTest, SpacePartitionIsExactlyNMinus1) {
  MessageComparisonConfig config;
  config.peers = 150;
  config.dims = {2, 3};
  const auto rows = run_message_comparison(config);
  for (const auto& row : rows) {
    EXPECT_EQ(row.space_partition_messages, config.peers - 1);
    EXPECT_GT(row.flooding_messages, row.space_partition_messages);
    EXPECT_GT(row.overhead_factor, 1.0);
  }
}

TEST(PickPolicyDriverTest, AllPoliciesValid) {
  PickPolicyAblationConfig config;
  config.peers = 120;
  config.roots = 20;
  const auto rows = run_pick_policy_ablation(config);
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) EXPECT_EQ(row.invalid_sessions, 0u);
}

TEST(ChurnDriverTest, StableBeatsRandom) {
  ChurnComparisonConfig config;
  config.peers = 200;
  const auto rows = run_churn_comparison(config);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].tree_kind, "stable(S3)");
  EXPECT_EQ(rows[0].total_orphaned, 0u);
  EXPECT_EQ(rows[0].repair_failures, 0u);
  EXPECT_GT(rows[1].total_orphaned, 0u);
}

TEST(SelectionAblationDriverTest, EmptyRectHasFullCoverage) {
  SelectionAblationConfig config;
  config.peers = 150;
  config.roots = 20;
  const auto rows = run_selection_ablation(config);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].selector, "empty-rect");
  EXPECT_DOUBLE_EQ(rows[0].avg_coverage, 1.0);
  for (const auto& row : rows) EXPECT_GT(row.avg_degree, 0.0);
}

TEST(TableRenderersProduceAllRows, AllDrivers) {
  StabilitySweepConfig config;
  config.peers = 80;
  config.dims = {2};
  config.k_min = 1;
  config.k_max = 3;
  const auto rows = run_stability_sweep(config);
  EXPECT_EQ(stability_table(rows, true).row_count(), rows.size());
  EXPECT_EQ(stability_table(rows, false).row_count(), rows.size());
}

}  // namespace
}  // namespace geomcast::analysis
