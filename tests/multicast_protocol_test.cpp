#include "multicast/protocol.hpp"

#include <gtest/gtest.h>

#include "geometry/random_points.hpp"
#include "multicast/validator.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/rng.hpp"

namespace geomcast::multicast {
namespace {

overlay::OverlayGraph make_overlay(std::size_t n, std::size_t dims, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto points = geometry::random_points(rng, n, dims, 100.0);
  return overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
}

TEST(MulticastProtocolTest, MatchesSynchronousBuilder) {
  // The message-driven protocol and the in-memory builder run the same
  // local rule, so the resulting trees must be identical edge-for-edge.
  const auto graph = make_overlay(80, 2, 41);
  const auto sync = build_multicast_tree(graph, 4);
  const auto protocol = run_multicast_protocol(graph, 4);
  EXPECT_EQ(protocol.build.request_messages, sync.request_messages);
  for (overlay::PeerId p = 0; p < graph.size(); ++p) {
    EXPECT_EQ(protocol.build.tree.parent(p), sync.tree.parent(p)) << "peer " << p;
    EXPECT_EQ(protocol.build.zones[p], sync.zones[p]) << "peer " << p;
  }
}

TEST(MulticastProtocolTest, MatchesAcrossDimsAndRoots) {
  for (int dims : {2, 3, 4}) {
    const auto graph = make_overlay(60, static_cast<std::size_t>(dims), 42 + dims);
    for (overlay::PeerId root : {0u, 31u, 59u}) {
      const auto sync = build_multicast_tree(graph, root);
      const auto protocol = run_multicast_protocol(graph, root);
      for (overlay::PeerId p = 0; p < graph.size(); ++p)
        EXPECT_EQ(protocol.build.tree.parent(p), sync.tree.parent(p))
            << "dims=" << dims << " root=" << root;
    }
  }
}

TEST(MulticastProtocolTest, ValidAndExactlyNMinus1Messages) {
  const auto graph = make_overlay(100, 3, 43);
  const auto result = run_multicast_protocol(graph, 0);
  const auto report = validate_build(graph, result.build);
  EXPECT_TRUE(report.valid()) << report.summary();
  EXPECT_EQ(result.build.request_messages, graph.size() - 1);
  EXPECT_EQ(result.dropped_requests, 0u);
}

TEST(MulticastProtocolTest, CompletionTimeScalesWithDepth) {
  const auto graph = make_overlay(100, 2, 44);
  const auto result =
      run_multicast_protocol(graph, 0, {}, sim::LatencyModel::constant(1.0));
  // Constant unit latency => completion time == tree depth in hops.
  EXPECT_DOUBLE_EQ(result.completion_time,
                   static_cast<double>(result.build.tree.max_root_to_leaf_path()));
}

TEST(MulticastProtocolTest, RandomLatencyStillBuildsSameCoverage) {
  const auto graph = make_overlay(80, 2, 45);
  const auto result = run_multicast_protocol(graph, 7, {},
                                             sim::LatencyModel::uniform(0.01, 0.5));
  // Tree *shape* may differ from the synchronous wave under reordering, but
  // coverage and message count must not.
  EXPECT_EQ(result.build.tree.reached_count(), graph.size());
  EXPECT_EQ(result.build.request_messages, graph.size() - 1);
  EXPECT_EQ(result.build.duplicate_deliveries, 0u);
}

TEST(MulticastProtocolTest, MessageLossCausesCoverageGap) {
  // Failure injection: a dropped request must surface as unreached peers
  // (the validator sees it), never as a silent success.
  const auto graph = make_overlay(60, 2, 46);
  sim::LossModel loss;
  loss.drop_probability = 0.3;
  const auto result = run_multicast_protocol(graph, 0, {}, sim::LatencyModel::constant(0.01),
                                             loss, /*seed=*/7);
  EXPECT_GT(result.dropped_requests, 0u);
  EXPECT_LT(result.build.tree.reached_count(), graph.size());
  const auto report = validate_build(graph, result.build);
  EXPECT_FALSE(report.all_reached);
}

TEST(MulticastProtocolTest, TargetedPartitionBlocksSubtree) {
  const auto graph = make_overlay(60, 2, 47);
  // Cut every request addressed to peer 5: 5 and its would-be subtree stay dark.
  sim::LossModel loss;
  loss.drop_if = [](const sim::Envelope& e) { return e.to == 5; };
  const auto result =
      run_multicast_protocol(graph, 0, {}, sim::LatencyModel::constant(0.01), loss);
  EXPECT_FALSE(result.build.tree.reached(5));
  EXPECT_LT(result.build.tree.reached_count(), graph.size());
}

}  // namespace
}  // namespace geomcast::multicast
