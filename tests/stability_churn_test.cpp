#include "stability/churn.hpp"

#include <gtest/gtest.h>

#include "geometry/random_points.hpp"
#include "overlay/equilibrium.hpp"
#include "overlay/hyperplane_k.hpp"
#include "overlay/orthant_sweep.hpp"
#include "stability/lifetime.hpp"
#include "stability/random_parent.hpp"
#include "util/rng.hpp"

namespace geomcast::stability {
namespace {

struct Workload {
  std::vector<geometry::Point> points;
  std::vector<double> departure_times;
  overlay::OverlayGraph graph;
};

Workload make_workload(std::size_t n, std::size_t dims, std::size_t k, std::uint64_t seed) {
  util::Rng rng(seed);
  Workload w;
  w.points = lifetime_points(rng, n, dims, 1000.0, w.departure_times);
  w.graph = overlay::OrthantSweepIndex(w.points).graph_for_k(k);
  return w;
}

// The paper's §3 punchline, as a property over (D, K, seed): departures in
// T order never disconnect the stable tree.
class StableChurnPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(StableChurnPropertyTest, DeparturesAlwaysAtLeaves) {
  const auto [dims, k, seed] = GetParam();
  const auto w = make_workload(200, static_cast<std::size_t>(dims),
                               static_cast<std::size_t>(k), seed);
  const auto tree = build_stable_tree(w.graph, w.departure_times);
  ASSERT_TRUE(tree.is_single_tree());
  const auto report = simulate_departures(tree.parent, w.departure_times);
  EXPECT_TRUE(report.departures_always_leaves());
  EXPECT_EQ(report.departures, w.graph.size());
  EXPECT_EQ(report.total_orphaned, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, StableChurnPropertyTest,
                         ::testing::Combine(::testing::Values(2, 3, 6, 10),
                                            ::testing::Values(1, 5, 25),
                                            ::testing::Values(300u, 301u)));

TEST(ChurnTest, RandomSpanningTreeSuffersDisruptions) {
  const auto w = make_workload(300, 3, 3, 310);
  util::Rng rng(311);
  const auto parent = build_random_spanning_tree(w.graph, rng);
  const auto report = simulate_departures(parent, w.departure_times);
  // Lifetime-oblivious trees have interior nodes departing mid-life; with
  // 300 peers that is overwhelmingly likely to orphan someone.
  EXPECT_GT(report.disruptive_departures, 0u);
  EXPECT_GT(report.total_orphaned, 0u);
  EXPECT_GE(report.max_orphaned_at_once, 1u);
}

TEST(ChurnTest, StableTreeBeatsRandomTree) {
  const auto w = make_workload(300, 3, 3, 320);
  const auto stable = build_stable_tree(w.graph, w.departure_times);
  util::Rng rng(321);
  const auto random_parent = build_random_spanning_tree(w.graph, rng);
  const auto stable_report = simulate_departures(stable.parent, w.departure_times);
  const auto random_report = simulate_departures(random_parent, w.departure_times);
  EXPECT_EQ(stable_report.total_orphaned, 0u);
  EXPECT_GT(random_report.total_orphaned, stable_report.total_orphaned);
}

TEST(ChurnTest, RepairReattachesOrphans) {
  const auto w = make_workload(250, 3, 3, 330);
  util::Rng rng(331);
  const auto parent = build_random_spanning_tree(w.graph, rng);
  const auto report = simulate_departures_with_repair(w.graph, parent, w.departure_times);
  EXPECT_GT(report.reattached, 0u);
  // With Orthogonal-Hyperplanes overlays every live peer except the
  // globally longest-lived one keeps a live longer-lived neighbour (any
  // neighbour q with T(q) > T(c) is alive by definition, and some
  // positive-T orthant is non-empty). Only the global-max peer, if it gets
  // orphaned, cannot reattach — so at most one failure.
  EXPECT_LE(report.repair_failures, 1u);
}

TEST(ChurnTest, RepairOnStableTreeIsANoop) {
  const auto w = make_workload(200, 2, 2, 340);
  const auto tree = build_stable_tree(w.graph, w.departure_times);
  const auto report = simulate_departures_with_repair(w.graph, tree.parent, w.departure_times);
  EXPECT_EQ(report.reattached, 0u);
  EXPECT_EQ(report.repair_failures, 0u);
  EXPECT_EQ(report.churn.total_orphaned, 0u);
}

TEST(ChurnTest, HandMadeCounterexample) {
  // Root departs first: everyone else is orphaned exactly once.
  std::vector<overlay::PeerId> parent{kInvalidPeer, 0, 0, 1};
  std::vector<double> times{1.0, 2.0, 3.0, 4.0};  // node 0 (the root) leaves first
  const auto report = simulate_departures(parent, times);
  EXPECT_EQ(report.departures, 4u);
  EXPECT_GE(report.disruptive_departures, 1u);
  // Node 0's departure orphans its live subtree {1, 2, 3}.
  EXPECT_EQ(report.max_orphaned_at_once, 3u);
}

TEST(ChurnTest, LeafOnlyDeparturesAreClean) {
  // Chain with T increasing toward the root: each departure is a leaf.
  std::vector<overlay::PeerId> parent{1, 2, 3, kInvalidPeer};
  std::vector<double> times{1.0, 2.0, 3.0, 4.0};
  const auto report = simulate_departures(parent, times);
  EXPECT_TRUE(report.departures_always_leaves());
}

TEST(ChurnTest, SizeMismatchThrows) {
  std::vector<overlay::PeerId> parent{kInvalidPeer, 0};
  EXPECT_THROW((void)simulate_departures(parent, {1.0}), std::invalid_argument);
}

TEST(RandomSpanningTreeTest, SpansConnectedGraph) {
  const auto w = make_workload(150, 2, 2, 350);
  util::Rng rng(351);
  const auto parent = build_random_spanning_tree(w.graph, rng);
  std::size_t roots = 0;
  for (overlay::PeerId p = 0; p < parent.size(); ++p) {
    if (parent[p] == kInvalidPeer)
      ++roots;
    else
      EXPECT_TRUE(w.graph.has_edge(p, parent[p]));
  }
  EXPECT_EQ(roots, 1u);
}

TEST(RandomSpanningTreeTest, DifferentSeedsDifferentTrees) {
  const auto w = make_workload(150, 2, 2, 360);
  util::Rng rng_a(1), rng_b(2);
  EXPECT_NE(build_random_spanning_tree(w.graph, rng_a),
            build_random_spanning_tree(w.graph, rng_b));
}

}  // namespace
}  // namespace geomcast::stability
