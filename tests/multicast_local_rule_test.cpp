// Direct unit tests of partition_step — the §2 local forwarding rule —
// without going through the tree builders.
#include "multicast/local_rule.hpp"

#include <gtest/gtest.h>

#include "geometry/orthant.hpp"
#include "geometry/random_points.hpp"
#include "multicast/space_partition.hpp"
#include "multicast/zone.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/rng.hpp"

namespace geomcast::multicast {
namespace {

using overlay::Candidate;
using overlay::PeerId;

TEST(LocalRuleTest, NoNeighborsNoAssignments) {
  const auto assignments =
      partition_step(geometry::Point({1.0, 2.0}), initiator_zone(2), {});
  EXPECT_TRUE(assignments.empty());
}

TEST(LocalRuleTest, NeighborsOutsideZoneIgnored) {
  const geometry::Point ego{50.0, 50.0};
  const auto zone = geometry::Rect::cube(2, 40.0, 60.0);
  const std::vector<Candidate> neighbors{{1, geometry::Point({70.0, 70.0})},
                                         {2, geometry::Point({10.0, 55.0})}};
  EXPECT_TRUE(partition_step(ego, zone, neighbors).empty());
}

TEST(LocalRuleTest, ZoneBoundaryIsExclusive) {
  // Zones are strict interiors: a neighbour exactly on the boundary is out.
  const geometry::Point ego{50.0, 50.0};
  const auto zone = geometry::Rect::cube(2, 40.0, 60.0);
  const std::vector<Candidate> neighbors{{1, geometry::Point({60.0, 55.0})}};
  EXPECT_TRUE(partition_step(ego, zone, neighbors).empty());
}

TEST(LocalRuleTest, OneDelegatePerOccupiedRegion) {
  const geometry::Point ego{50.0, 50.0};
  // Two neighbours in the (+,+) quadrant, one in (-,-).
  const std::vector<Candidate> neighbors{{1, geometry::Point({60.0, 60.0})},
                                         {2, geometry::Point({55.0, 70.0})},
                                         {3, geometry::Point({40.0, 30.0})}};
  const auto assignments = partition_step(ego, initiator_zone(2), neighbors);
  EXPECT_EQ(assignments.size(), 2u);
}

TEST(LocalRuleTest, MedianPickIsLowerMedian) {
  // L1 distances in one quadrant: 4 < 8 < 20; median (lower, index (3-1)/2=1)
  // must be the distance-8 neighbour.
  const geometry::Point ego{0.0, 0.0};
  const std::vector<Candidate> neighbors{{1, geometry::Point({1.0, 3.0})},     // L1=4
                                         {2, geometry::Point({5.0, 3.5})},     // L1=8.5
                                         {3, geometry::Point({10.0, 10.5})}};  // L1=20.5
  const auto assignments = partition_step(ego, initiator_zone(2), neighbors);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].child, 2u);
}

TEST(LocalRuleTest, EvenCountLowerMedian) {
  // Four neighbours: lower median = index 1 of the sorted order.
  const geometry::Point ego{0.0, 0.0};
  const std::vector<Candidate> neighbors{{1, geometry::Point({1.0, 1.5})},
                                         {2, geometry::Point({2.0, 2.5})},
                                         {3, geometry::Point({3.0, 3.5})},
                                         {4, geometry::Point({4.0, 4.5})}};
  const auto assignments = partition_step(ego, initiator_zone(2), neighbors);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].child, 2u);
}

TEST(LocalRuleTest, PoliciesSelectExpectedRanks) {
  const geometry::Point ego{0.0, 0.0};
  const std::vector<Candidate> neighbors{{1, geometry::Point({1.0, 1.5})},
                                         {2, geometry::Point({2.0, 2.5})},
                                         {3, geometry::Point({3.0, 3.5})}};
  auto pick = [&](PickPolicy policy) {
    const auto a = partition_step(ego, initiator_zone(2), neighbors, policy);
    return a.at(0).child;
  };
  EXPECT_EQ(pick(PickPolicy::kClosest), 1u);
  EXPECT_EQ(pick(PickPolicy::kMedian), 2u);
  EXPECT_EQ(pick(PickPolicy::kFarthest), 3u);
}

TEST(LocalRuleTest, RandomPolicyWithoutRngThrows) {
  const std::vector<Candidate> neighbors{{1, geometry::Point({1.0, 1.5})}};
  EXPECT_THROW(partition_step(geometry::Point({0.0, 0.0}), initiator_zone(2), neighbors,
                              PickPolicy::kRandom, geometry::Metric::kL1, nullptr),
               std::invalid_argument);
}

TEST(LocalRuleTest, DelegateZoneMatchesPaperFormula) {
  const geometry::Point ego{50.0, 50.0};
  const auto zone = geometry::Rect::cube(2, 0.0, 100.0);
  const std::vector<Candidate> neighbors{{1, geometry::Point({30.0, 80.0})}};
  const auto assignments = partition_step(ego, zone, neighbors);
  ASSERT_EQ(assignments.size(), 1u);
  // x(Q,1) < x(P,1): side (-inf, 50) clipped to (0, 50);
  // x(Q,2) > x(P,2): side (50, +inf) clipped to (50, 100).
  EXPECT_EQ(assignments[0].zone.lo(0), 0.0);
  EXPECT_EQ(assignments[0].zone.hi(0), 50.0);
  EXPECT_EQ(assignments[0].zone.lo(1), 50.0);
  EXPECT_EQ(assignments[0].zone.hi(1), 100.0);
}

// Structural invariants of a single step over random inputs.
class LocalRuleInvariantTest : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(LocalRuleInvariantTest, AssignmentsPartitionCleanly) {
  const auto [dims, seed] = GetParam();
  util::Rng rng(seed);
  const auto points =
      geometry::random_points(rng, 60, static_cast<std::size_t>(dims), 100.0);
  const geometry::Point& ego = points[0];
  std::vector<Candidate> neighbors;
  for (std::size_t i = 1; i < points.size(); ++i)
    neighbors.push_back({static_cast<PeerId>(i), points[i]});

  const auto zone = geometry::Rect::cube(static_cast<std::size_t>(dims), 10.0, 90.0);
  if (!zone.contains_interior(ego)) return;  // step assumes the ego holds the zone
  const auto assignments = partition_step(ego, zone, neighbors);

  for (std::size_t i = 0; i < assignments.size(); ++i) {
    const auto& a = assignments[i];
    // Delegate inside its zone; ego outside it; zone nested in parent zone.
    EXPECT_TRUE(a.zone.contains_interior(points[a.child]));
    EXPECT_FALSE(a.zone.contains_interior(ego));
    EXPECT_TRUE(a.zone.interior_subset_of(zone));
    for (std::size_t j = i + 1; j < assignments.size(); ++j)
      EXPECT_TRUE(a.zone.interior_disjoint(assignments[j].zone));
  }
  // Every in-zone neighbour is covered by exactly one delegate zone.
  for (const auto& c : neighbors) {
    if (!zone.contains_interior(c.point)) continue;
    int covering = 0;
    for (const auto& a : assignments)
      if (a.zone.contains_interior(c.point)) ++covering;
    EXPECT_EQ(covering, 1) << "neighbour " << c.id;
  }
  // At most one delegate per orthant.
  EXPECT_LE(assignments.size(), geometry::orthant_count(static_cast<std::size_t>(dims)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, LocalRuleInvariantTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                                            ::testing::Values(81u, 82u, 83u)));

// ------------------------------------------------------------ D=1 degeneracy
// On a line, the empty-rectangle overlay is exactly the sorted path, and the
// §2 construction on it splits the line into two rays per step.

TEST(LocalRuleTest, OneDimensionalOverlayIsSortedPath) {
  util::Rng rng(84);
  const auto points = geometry::random_points(rng, 50, 1, 100.0);
  const auto graph =
      overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  std::vector<std::pair<double, PeerId>> order;
  for (PeerId p = 0; p < graph.size(); ++p) order.push_back({points[p][0], p});
  std::sort(order.begin(), order.end());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const PeerId p = order[i].second;
    std::size_t expected = (i == 0 || i + 1 == order.size()) ? 1 : 2;
    EXPECT_EQ(graph.degree(p), expected) << "rank " << i;
    if (i + 1 < order.size()) EXPECT_TRUE(graph.has_edge(p, order[i + 1].second));
  }
}

TEST(LocalRuleTest, OneDimensionalMulticastInvariants) {
  util::Rng rng(85);
  const auto points = geometry::random_points(rng, 50, 1, 100.0);
  const auto graph =
      overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  const auto result = build_multicast_tree(graph, 7);
  EXPECT_EQ(result.tree.reached_count(), graph.size());
  EXPECT_EQ(result.request_messages, graph.size() - 1);
  EXPECT_LE(result.tree.max_children(), 2u);  // 2^1 orthants
}

}  // namespace
}  // namespace geomcast::multicast
