#include "overlay/equilibrium.hpp"

#include <gtest/gtest.h>

#include "analysis/graph_metrics.hpp"
#include "geometry/random_points.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/hyperplane_k.hpp"
#include "overlay/k_closest.hpp"
#include "util/rng.hpp"

namespace geomcast::overlay {
namespace {

TEST(EquilibriumTest, EmptyAndSingletonInputs) {
  EmptyRectSelector selector;
  EXPECT_EQ(build_equilibrium({}, selector).size(), 0u);
  const std::vector<geometry::Point> one{geometry::Point({1.0, 2.0})};
  const auto graph = build_equilibrium(one, selector);
  EXPECT_EQ(graph.size(), 1u);
  EXPECT_EQ(graph.degree(0), 0u);
}

TEST(EquilibriumTest, ResultIndependentOfThreadCount) {
  util::Rng rng(21);
  const auto points = geometry::random_points(rng, 300, 3, 100.0);
  EmptyRectSelector selector;
  const auto sequential = build_equilibrium(points, selector, 1);
  const auto parallel = build_equilibrium(points, selector, 8);
  EXPECT_EQ(sequential, parallel);
}

TEST(EquilibriumTest, EquilibriumIsAFixedPoint) {
  util::Rng rng(22);
  const auto points = geometry::random_points(rng, 150, 2, 100.0);
  EmptyRectSelector selector;
  const auto graph = build_equilibrium(points, selector);
  EXPECT_TRUE(is_equilibrium(graph, selector));
}

TEST(EquilibriumTest, FixedPointHoldsForAllSelectors) {
  util::Rng rng(23);
  const auto points = geometry::random_points(rng, 120, 3, 100.0);
  const EmptyRectSelector empty_rect;
  const auto ortho = HyperplaneKSelector::orthogonal(3, 2);
  const KClosestSelector k_closest(4);
  for (const NeighborSelector* selector :
       std::initializer_list<const NeighborSelector*>{&empty_rect, &ortho, &k_closest}) {
    const auto graph = build_equilibrium(points, *selector);
    EXPECT_TRUE(is_equilibrium(graph, *selector)) << selector->name();
  }
}

TEST(EquilibriumTest, NonEquilibriumDetected) {
  util::Rng rng(24);
  const auto points = geometry::random_points(rng, 30, 2, 100.0);
  // An arbitrary ring is (almost surely) not an empty-rect equilibrium.
  std::vector<std::vector<PeerId>> ring(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    ring[i].push_back(static_cast<PeerId>((i + 1) % points.size()));
  const OverlayGraph graph(points, std::move(ring));
  EmptyRectSelector selector;
  EXPECT_FALSE(is_equilibrium(graph, selector));
}

TEST(EquilibriumTest, EmptyRectOverlayIsConnected) {
  // Follows from the coverage property; the multicast algorithm depends on it.
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    util::Rng rng(seed);
    const auto points = geometry::random_points(rng, 200, 2, 100.0);
    const auto graph = build_equilibrium(points, EmptyRectSelector{});
    EXPECT_TRUE(analysis::is_connected(graph)) << "seed " << seed;
  }
}

TEST(EquilibriumTest, OrthogonalKOverlayIsConnected) {
  util::Rng rng(34);
  const auto points = geometry::random_points(rng, 200, 3, 100.0);
  const auto graph = build_equilibrium(points, HyperplaneKSelector::orthogonal(3, 1));
  EXPECT_TRUE(analysis::is_connected(graph));
}

TEST(EquilibriumTest, DegreeGrowsWithK) {
  util::Rng rng(35);
  const auto points = geometry::random_points(rng, 200, 2, 100.0);
  double prev_avg = 0.0;
  for (std::size_t k : {1u, 3u, 8u}) {
    const auto graph = build_equilibrium(points, HyperplaneKSelector::orthogonal(2, k));
    const auto stats = analysis::degree_stats(graph);
    EXPECT_GT(stats.avg, prev_avg);
    prev_avg = stats.avg;
  }
}

}  // namespace
}  // namespace geomcast::overlay
