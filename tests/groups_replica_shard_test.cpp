// Replica-sharded roots battery (PubSubConfig::root_replicas = R): the
// rendezvous-replica partition itself (anchors, owner slots, distinct slot
// roots), delivered-set identity of R in {1, 2, 4} against the R = 1
// single-root oracle across QoS rungs x loss x root batching x publisher
// batching, seq-lease uniqueness/density of the global (group, seq) space,
// the slot-root-death-mid-graft regression (promotion hands the shard over,
// zero leaked cursors, full post-churn delivery), warm failover of the
// slot-0 authority at R > 1, prefix-batched grafts staying tree-identical,
// and snapshot-JSON coverage of the new counters.
#include "groups/message_kinds.hpp"
#include "groups/pubsub.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "groups_test_util.hpp"
#include "obs/snapshot.hpp"

namespace geomcast::groups {
namespace {

using testutil::make_overlay;
using testutil::subscribe_members;

using DeliveredSet = std::set<std::pair<PeerId, std::uint64_t>>;

struct CellResult {
  DeliveredSet delivered;
  bool probe_duplicates = false;  // same (peer, seq) reported twice
  GroupStats stats;
};

struct CellConfig {
  std::size_t replicas = 1;
  multicast::QoS qos = multicast::QoS::kEndToEnd;
  bool loss = false;
  double batch_window = 0.0;            // root-side coalescing
  double publisher_batch_window = 0.0;  // source-side coalescing
};

/// Deterministic loss scoped to the RECOVERABLE planes (tree payloads and
/// the acked coordination/graft carriers — everything a QoS 1+ hop layer
/// retransmits). Blanket drop_probability would also eat best-effort
/// publish control envelopes, whose survival legitimately depends on the
/// route taken — i.e. on R — making delivered-set identity vacuous.
sim::LossModel lossy_data_plane() {
  sim::LossModel loss;
  auto counter = std::make_shared<std::uint64_t>(0);
  loss.drop_if = [counter](const sim::Envelope& e) {
    switch (e.kind) {
      case kDeliverKind:
      case kGraftRequestKind:
      case kGraftAcceptKind:
      case kGraftRejectKind:
      case kSeqLeaseKind:
      case kSeqGrantKind:
      case kShardWaveKind:
      case kGraftBatchKind:
        return ++*counter % 11 == 0;
      default:
        return false;
    }
  };
  return loss;
}

/// The shared workload: 16 subscribers, then 12 publishes from 4 distinct
/// origins spread over the graph (so at R > 1 several slots ingest).
CellResult run_cell(const overlay::OverlayGraph& graph, const CellConfig& cell) {
  const GroupId g = 0;
  PubSubConfig config;
  config.seed = 211;
  config.root_replicas = cell.replicas;
  config.reliability.qos = cell.qos;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 12;  // generous: lossy cells still converge
  config.batch_window = cell.batch_window;
  config.publisher_batch_window = cell.publisher_batch_window;
  if (cell.loss) config.loss = lossy_data_plane();
  PubSubSystem system(graph, config);
  CellResult result;
  system.set_delivery_probe(
      [&result](PeerId p, GroupId, std::uint64_t seq, double) {
        if (!result.delivered.emplace(p, seq).second) result.probe_duplicates = true;
      });
  const auto members = subscribe_members(system, graph, g, 16, 211);
  for (std::size_t i = 0; i < 12; ++i)
    system.publish_at(2.0 + 0.11 * static_cast<double>(i), members[i % 4], g);
  system.run();
  result.stats = system.stats(g);
  return result;
}

TEST(GroupsReplicaShardTest, AnchorsPartitionPeersAcrossDistinctSlotRoots) {
  const auto graph = make_overlay(200, 2, 1501);
  const GroupId g = 0;
  PubSubConfig config;
  config.seed = 199;
  config.root_replicas = 4;
  PubSubSystem system(graph, config);
  subscribe_members(system, graph, g, 16, 199);
  system.run();

  auto& manager = system.manager();
  EXPECT_TRUE(manager.sharded());
  EXPECT_EQ(manager.root_replicas(), 4u);
  // Slot 0's anchor is the legacy rendezvous point, so its root is the
  // legacy root — the R = 1 oracle's root survives sharding unchanged.
  EXPECT_EQ(manager.slot_root(g, 0), manager.root_of(g));
  std::set<PeerId> roots;
  for (std::uint32_t s = 0; s < 4; ++s) {
    const PeerId root = roots.emplace(manager.slot_root(g, s)).first.operator*();
    EXPECT_NE(root, kInvalidPeer);
  }
  EXPECT_EQ(roots.size(), 4u) << "slot roots must be distinct peers";
  // The owner partition is total and consistent: every peer maps to one
  // slot, and that slot's root is its owner root.
  std::size_t member_total = 0;
  for (std::uint32_t s = 0; s < 4; ++s) member_total += manager.slot_member_count(g, s);
  EXPECT_EQ(member_total, 16u);
  for (PeerId p = 0; p < graph.size(); ++p) {
    const std::uint32_t slot = manager.owner_slot(g, p);
    EXPECT_LT(slot, 4u);
    EXPECT_EQ(manager.owner_root(g, p), manager.slot_root(g, slot));
  }
}

TEST(GroupsReplicaShardTest, DeliveredSetsMatchTheSingleRootOracleAcrossCells) {
  const auto graph = make_overlay(200, 2, 1502);
  const CellConfig cells[] = {
      // QoS rungs, lossless, no batching.
      {1, multicast::QoS::kFireAndForget, false, 0.0, 0.0},
      {1, multicast::QoS::kAcked, false, 0.0, 0.0},
      {1, multicast::QoS::kEndToEnd, false, 0.0, 0.0},
      // Data-plane loss (acked rungs only: retransmission makes delivery a
      // guarantee, so the sets stay comparable across topologies).
      {1, multicast::QoS::kAcked, true, 0.0, 0.0},
      {1, multicast::QoS::kEndToEnd, true, 0.0, 0.0},
      // Root-side coalescing, publisher-side coalescing, and both.
      {1, multicast::QoS::kEndToEnd, false, 0.05, 0.0},
      {1, multicast::QoS::kEndToEnd, false, 0.0, 0.05},
      {1, multicast::QoS::kEndToEnd, true, 0.05, 0.05},
  };
  for (const CellConfig& base : cells) {
    CellConfig oracle_cell = base;
    oracle_cell.replicas = 1;
    const CellResult oracle = run_cell(graph, oracle_cell);
    ASSERT_FALSE(oracle.delivered.empty());
    // The oracle delivers everything: 16 subscribers x 12 publishes.
    EXPECT_EQ(oracle.delivered.size(), 16u * 12u);
    EXPECT_FALSE(oracle.probe_duplicates);
    for (const std::size_t r : {std::size_t{2}, std::size_t{4}}) {
      CellConfig sharded_cell = base;
      sharded_cell.replicas = r;
      const CellResult sharded = run_cell(graph, sharded_cell);
      EXPECT_EQ(sharded.delivered, oracle.delivered)
          << "R=" << r << " qos=" << static_cast<int>(base.qos)
          << " loss=" << base.loss << " batch=" << base.batch_window
          << " pub_batch=" << base.publisher_batch_window;
      EXPECT_FALSE(sharded.probe_duplicates);
      EXPECT_EQ(sharded.stats.publishes, oracle.stats.publishes);
      // The shard pipeline really ran: every committed range fanned out to
      // the R - 1 other slots.
      EXPECT_GT(sharded.stats.shard_waves, 0u);
      EXPECT_GT(sharded.stats.shard_handoffs, 0u);
    }
  }
}

TEST(GroupsReplicaShardTest, SeqLeaseKeepsTheSeqSpaceDenseAndUnique) {
  const auto graph = make_overlay(200, 2, 1503);
  CellConfig cell;
  cell.replicas = 4;
  cell.qos = multicast::QoS::kEndToEnd;
  const CellResult result = run_cell(graph, cell);

  // Globally unique: no subscriber saw any (group, seq) twice.
  EXPECT_FALSE(result.probe_duplicates);
  // Dense: per subscriber the delivered seqs are exactly {0..11} — no hole,
  // no overlap, regardless of which slot root committed each publish.
  std::set<PeerId> subscribers;
  for (const auto& [peer, seq] : result.delivered) {
    subscribers.insert(peer);
    EXPECT_LT(seq, 12u);
  }
  EXPECT_EQ(subscribers.size(), 16u);
  EXPECT_EQ(result.delivered.size(), 16u * 12u);
  // Non-authority slots leased their ranges; lossless means every lease
  // was granted and no granted range died with its requester.
  EXPECT_GT(result.stats.seq_lease_requests, 0u);
  EXPECT_EQ(result.stats.seq_leases_granted, result.stats.seq_lease_requests);
  EXPECT_EQ(result.stats.seq_grants_lost, 0u);
}

/// Satellite regression: a NON-authority slot root dies while routed
/// descents are in flight through its shard. The departure must hand the
/// shard (subscriber partition + graft cursors) to the next-nearest peer
/// via promotion — aborted cursors re-enter through resubscribe, none leak
/// — and post-churn publishes must deliver in full.
TEST(GroupsReplicaShardTest, SlotRootDeathMidGraftLeaksNoCursorsAndRecovers) {
  const auto graph = make_overlay(200, 2, 1504);
  const GroupId g = 0;
  PubSubConfig config;
  config.seed = 223;
  config.root_replicas = 4;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 8;
  PubSubSystem system(graph, config);
  const auto members = subscribe_members(system, graph, g, 16, 223);
  // Build all four shard trees so later subscribes graft instead of
  // booking membership into an uncached tree.
  for (std::size_t i = 0; i < 4; ++i)
    system.publish_at(2.0 + 0.1 * static_cast<double>(i), members[i], g);
  // A late-join batch at t=10: their routed descents are mid-flight when
  // the victim dies at t=10.03.
  std::vector<bool> taken(graph.size(), false);
  for (const PeerId m : members) taken[m] = true;
  std::vector<PeerId> late;
  for (PeerId p = 0; late.size() < 12 && p < graph.size(); ++p) {
    if (taken[p] || p == system.manager().root_of(g)) continue;
    late.push_back(p);
    system.subscribe_at(10.0, p, g);
  }
  auto inflight_at_kill = std::make_shared<std::size_t>(0);
  auto victim = std::make_shared<PeerId>(kInvalidPeer);
  system.simulator().schedule_at(10.03, [&system, g, inflight_at_kill, victim]() {
    *inflight_at_kill = system.manager().inflight_graft_count();
    // Kill a NON-authority slot root (the satellite's subject: shard
    // handoff without the warm-replica machinery).
    *victim = system.manager().slot_root(g, 2);
    system.depart_now(*victim);
  });
  // Post-churn publishes from survivors: every alive subscriber —
  // including the late joiners regrafted onto the promoted root — is owed
  // these waves.
  for (std::size_t i = 0; i < 4; ++i)
    system.publish_at(15.0 + 0.1 * static_cast<double>(i), members[8 + i], g);
  system.run();

  ASSERT_GT(*inflight_at_kill, 0u) << "seed had no descent in flight; vacuous";
  ASSERT_NE(*victim, kInvalidPeer);
  // The shard was handed over, not dropped: slot 2 has a live root again
  // and its members still map to it.
  const PeerId promoted = system.manager().slot_root(g, 2);
  EXPECT_NE(promoted, *victim);
  EXPECT_TRUE(system.manager().alive(promoted));
  const auto& stats = system.stats(g);
  EXPECT_GT(stats.root_migrations, 0u);
  // Zero leaked cursors: every descent either finished or aborted-and-
  // resubscribed; nothing is still registered after the run drains.
  EXPECT_EQ(system.manager().inflight_graft_count(), 0u);
  // Full post-churn delivery: expected_deliveries is booked per wave from
  // the live snapshots, so equality means nobody was silently dropped.
  EXPECT_EQ(stats.deliveries, stats.expected_deliveries);
  EXPECT_EQ(stats.seq_grants_lost, 0u);
}

TEST(GroupsReplicaShardTest, WarmFailoverPromotesTheShardedAuthority) {
  const auto graph = make_overlay(200, 2, 1505);
  const GroupId g = 0;
  PubSubConfig config;
  config.seed = 227;
  config.root_replicas = 2;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.batch_window = 0.1;
  config.warm_failover = true;
  PubSubSystem system(graph, config);
  const auto members = subscribe_members(system, graph, g, 16, 227);
  system.publish_at(2.0, members[0], g);  // build trees, start the sync stream
  // Publishes owned by slot 0 buffer at the authority; it dies inside the
  // window and the warm promotion must adopt them.
  std::vector<PeerId> slot0_publishers;
  system.simulator().schedule_at(4.0, [&system, &slot0_publishers, g]() {
    for (PeerId p = 0; p < 4096 && slot0_publishers.size() < 3; ++p)
      if (system.manager().alive(p) && system.manager().owner_slot(g, p) == 0)
        slot0_publishers.push_back(p);
  });
  system.simulator().schedule_at(5.0, [&system, &slot0_publishers, g]() {
    for (const PeerId p : slot0_publishers) system.publish_at(5.0, p, g);
  });
  system.simulator().schedule_at(5.05, [&system, g]() {
    system.depart_now(system.manager().slot_root(g, 0));
  });
  system.run();

  const auto& stats = system.stats(g);
  EXPECT_EQ(stats.warm_promotions, 1u);
  EXPECT_EQ(stats.pending_publishes_inherited, 3u);
  EXPECT_EQ(stats.batch_publishes_lost, 0u);
  // The inherited batch flushed from the successor and every wave
  // delivered in full across both shards.
  EXPECT_EQ(stats.deliveries, stats.expected_deliveries);
  EXPECT_GT(stats.deliveries, 0u);
}

TEST(GroupsReplicaShardTest, PrefixBatchedGraftsBuildIdenticalTrees) {
  const auto graph = make_overlay(200, 2, 1506);
  const GroupId g = 0;
  const auto run_cell = [&graph, g](std::size_t replicas, bool prefix_batch) {
    PubSubConfig config;
    config.seed = 229;
    config.root_replicas = replicas;
    config.reliability.qos = multicast::QoS::kEndToEnd;
    config.graft_prefix_batch = prefix_batch;
    PubSubSystem system(graph, config);
    const auto members = subscribe_members(system, graph, g, 8, 229);
    system.publish_at(2.0, members[0], g);  // cache the trees: later joins graft
    // A same-instant join burst: descents share hop prefixes toward each
    // slot root, which is what the batch carrier coalesces.
    std::vector<bool> taken(graph.size(), false);
    for (const PeerId m : members) taken[m] = true;
    std::size_t joined = 0;
    for (PeerId p = 0; joined < 24 && p < graph.size(); ++p) {
      if (taken[p] || p == system.manager().root_of(g)) continue;
      ++joined;
      system.subscribe_at(10.0, p, g);
    }
    DeliveredSet delivered;
    system.set_delivery_probe(
        [&delivered](PeerId peer, GroupId, std::uint64_t seq, double) {
          delivered.emplace(peer, seq);
        });
    for (std::size_t i = 0; i < 3; ++i)
      system.publish_at(15.0 + 0.1 * static_cast<double>(i), members[i], g);
    system.run();
    return std::make_pair(delivered, system.stats(g));
  };
  for (const std::size_t r : {std::size_t{1}, std::size_t{4}}) {
    const auto [plain_del, plain] = run_cell(r, false);
    const auto [batched_del, batched] = run_cell(r, true);
    // The carrier is pure transport: the delivered sets (hence the spliced
    // trees) are identical; only envelope accounting moves.
    EXPECT_EQ(batched_del, plain_del) << "R=" << r;
    EXPECT_EQ(batched.grafts, plain.grafts) << "R=" << r;
    EXPECT_EQ(batched.graft_aborts, plain.graft_aborts) << "R=" << r;
    EXPECT_GT(batched.graft_prefix_batches, 0u) << "R=" << r;
    EXPECT_GT(batched.graft_prefix_merged, 0u) << "R=" << r;
    EXPECT_EQ(plain.graft_prefix_batches, 0u);
  }
}

TEST(GroupsReplicaShardTest, PublisherBatchingCoalescesAtTheSource) {
  const auto graph = make_overlay(200, 2, 1507);
  const GroupId g = 0;
  const auto run_cell = [&graph, g](double window) {
    PubSubConfig config;
    config.seed = 233;
    config.root_replicas = 2;
    config.reliability.qos = multicast::QoS::kEndToEnd;
    config.publisher_batch_window = window;
    PubSubSystem system(graph, config);
    const auto members = subscribe_members(system, graph, g, 12, 233);
    DeliveredSet delivered;
    system.set_delivery_probe(
        [&delivered](PeerId peer, GroupId, std::uint64_t seq, double) {
          delivered.emplace(peer, seq);
        });
    // One hot publisher bursting 6 app messages inside the window.
    for (std::size_t i = 0; i < 6; ++i)
      system.publish_at(2.0 + 0.002 * static_cast<double>(i), members[0], g);
    system.run();
    return std::make_pair(delivered, system.stats(g));
  };
  const auto [off_del, off] = run_cell(0.0);
  const auto [on_del, on] = run_cell(0.05);
  // Same app messages delivered either way; the on-cell sent one envelope
  // where the off-cell sent six.
  EXPECT_EQ(on_del, off_del);
  EXPECT_EQ(on.publishes, off.publishes);
  EXPECT_EQ(off.publisher_batches, 0u);
  EXPECT_EQ(on.publisher_batches, 1u);
  EXPECT_EQ(on.publisher_batched_publishes, 6u);
  EXPECT_EQ(on.publisher_envelopes_saved, 5u);
}

TEST(GroupsReplicaShardTest, SnapshotJsonCarriesTheShardCounters) {
  const auto graph = make_overlay(200, 2, 1502);
  CellConfig cell;
  cell.replicas = 4;
  cell.publisher_batch_window = 0.02;
  (void)run_cell(graph, cell);  // exercise; the JSON shape is what's pinned

  PubSubConfig config;
  config.seed = 211;
  config.root_replicas = 4;
  PubSubSystem system(graph, config);
  subscribe_members(system, graph, 0, 8, 211);
  system.publish_at(2.0, system.manager().root_of(0), 0);
  system.run();
  const std::string json = obs::to_json(system.total_stats());
  for (const char* name :
       {"\"seq_lease_requests\":", "\"seq_leases_granted\":",
        "\"seq_grants_lost\":", "\"shard_handoffs\":", "\"shard_waves\":",
        "\"publisher_batches\":", "\"publisher_batched_publishes\":",
        "\"publisher_envelopes_saved\":", "\"graft_prefix_batches\":",
        "\"graft_prefix_merged\":"})
    EXPECT_NE(json.find(name), std::string::npos) << name;
  // The coordination kinds are registry-named in the per-kind send map.
  EXPECT_NE(std::string(kind_name(kSeqLeaseKind)).find("seq_lease"),
            std::string::npos);
  EXPECT_NE(std::string(kind_name(kShardWaveKind)).find("shard_wave"),
            std::string::npos);
}

}  // namespace
}  // namespace geomcast::groups
