#include "analysis/graph_metrics.hpp"

#include <gtest/gtest.h>

#include "geometry/random_points.hpp"
#include "util/rng.hpp"

namespace geomcast::analysis {
namespace {

overlay::OverlayGraph path_graph(std::size_t n) {
  util::Rng rng(n);
  const auto points = geometry::random_points(rng, n, 2, 100.0);
  std::vector<std::vector<overlay::PeerId>> out(n);
  for (std::size_t i = 0; i + 1 < n; ++i) out[i].push_back(static_cast<overlay::PeerId>(i + 1));
  return overlay::OverlayGraph(points, std::move(out));
}

overlay::OverlayGraph star_graph(std::size_t n) {
  util::Rng rng(n + 1);
  const auto points = geometry::random_points(rng, n, 2, 100.0);
  std::vector<std::vector<overlay::PeerId>> out(n);
  for (std::size_t i = 1; i < n; ++i) out[0].push_back(static_cast<overlay::PeerId>(i));
  return overlay::OverlayGraph(points, std::move(out));
}

TEST(GraphMetricsTest, DegreeStatsOnPath) {
  const auto graph = path_graph(5);
  const auto stats = degree_stats(graph);
  EXPECT_EQ(stats.max, 2u);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_DOUBLE_EQ(stats.avg, 8.0 / 5.0);
}

TEST(GraphMetricsTest, DegreeStatsOnStar) {
  const auto graph = star_graph(6);
  const auto stats = degree_stats(graph);
  EXPECT_EQ(stats.max, 5u);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_DOUBLE_EQ(stats.avg, 10.0 / 6.0);
}

TEST(GraphMetricsTest, EmptyGraphStats) {
  const auto stats = degree_stats(overlay::OverlayGraph{});
  EXPECT_EQ(stats.max, 0u);
  EXPECT_EQ(stats.avg, 0.0);
}

TEST(GraphMetricsTest, BfsDepthsOnPath) {
  const auto graph = path_graph(5);
  const auto depth = bfs_depths(graph, 0);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(depth[i], i);
  const auto from_middle = bfs_depths(graph, 2);
  EXPECT_EQ(from_middle[0], 2u);
  EXPECT_EQ(from_middle[4], 2u);
}

TEST(GraphMetricsTest, ConnectivityDetection) {
  EXPECT_TRUE(is_connected(path_graph(10)));
  util::Rng rng(9);
  const auto points = geometry::random_points(rng, 4, 2, 100.0);
  // Two disjoint edges.
  overlay::OverlayGraph disconnected(points, {{1}, {}, {3}, {}});
  EXPECT_FALSE(is_connected(disconnected));
}

TEST(GraphMetricsTest, UnreachableMarked) {
  util::Rng rng(10);
  const auto points = geometry::random_points(rng, 3, 2, 100.0);
  overlay::OverlayGraph graph(points, {{1}, {}, {}});
  const auto depth = bfs_depths(graph, 0);
  EXPECT_EQ(depth[2], kUnreachable);
}

TEST(GraphMetricsTest, DiameterOfPathAndStar) {
  EXPECT_EQ(graph_diameter(path_graph(7)), 6u);
  EXPECT_EQ(graph_diameter(star_graph(7)), 2u);
}

TEST(GraphMetricsTest, DiameterOfSingleton) {
  util::Rng rng(11);
  const auto points = geometry::random_points(rng, 1, 2, 100.0);
  overlay::OverlayGraph graph(points, {{}});
  EXPECT_EQ(graph_diameter(graph), 0u);
}

}  // namespace
}  // namespace geomcast::analysis
