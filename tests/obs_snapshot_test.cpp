// Histogram + unified-snapshot battery: bucketing invariants, quantile
// error bounds, merge exactness, the JSON serialisers (GroupStats,
// NetworkStats with named sent_by_kind, HopStats), the periodic Sampler,
// and the GEOMCAST_LOG level parser.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "groups_test_util.hpp"
#include "obs/histogram.hpp"
#include "obs/snapshot.hpp"
#include "util/log.hpp"

namespace geomcast {
namespace {

using groups::GroupId;
using groups::PubSubConfig;
using groups::PubSubSystem;
using groups::testutil::make_overlay;
using groups::testutil::subscribe_members;

TEST(Histogram, EmptyConventions) {
  const obs::Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(Histogram, SingleValueIsExactEverywhere) {
  obs::Histogram h;
  h.record(0.125);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.125);
  EXPECT_DOUBLE_EQ(h.max(), 0.125);
  EXPECT_DOUBLE_EQ(h.mean(), 0.125);
  // Quantiles clamp to [min, max], so a single sample is exact.
  EXPECT_DOUBLE_EQ(h.p50(), 0.125);
  EXPECT_DOUBLE_EQ(h.p99(), 0.125);
}

TEST(Histogram, BucketingInvariants) {
  // Non-positive and NaN underflow to bucket 0.
  EXPECT_EQ(obs::Histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(-1.0), 0u);
  // Below-range underflows; at/above-range overflows to the last bucket.
  EXPECT_EQ(obs::Histogram::bucket_of(1e-9), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(2e6), obs::Histogram::kBuckets - 1);
  // Monotone: a larger value never lands in an earlier bucket.
  double prev_value = 1e-6;
  std::size_t prev_bucket = obs::Histogram::bucket_of(prev_value);
  for (double v = prev_value; v < 1e5; v *= 1.07) {
    const std::size_t b = obs::Histogram::bucket_of(v);
    EXPECT_GE(b, prev_bucket) << "bucket regressed at value " << v;
    prev_bucket = b;
  }
  // Values an octave apart never share a bucket.
  EXPECT_NE(obs::Histogram::bucket_of(0.01), obs::Histogram::bucket_of(0.02));
}

TEST(Histogram, QuantileRelativeErrorBounded) {
  obs::Histogram h;
  std::vector<double> values;
  // Deterministic multiplicative walk over ~4 decades.
  double v = 0.0005;
  while (v < 5.0) {
    h.record(v);
    values.push_back(v);
    v *= 1.013;
  }
  for (const double q : {0.50, 0.90, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(q * static_cast<double>(values.size() - 1))];
    const double estimate = h.quantile(q);
    // Log-linear with 8 sub-buckets bounds relative error by 1/8.
    EXPECT_NEAR(estimate, exact, exact * 0.125 + 1e-12)
        << "q=" << q << " exact=" << exact;
  }
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_LE(h.p99(), h.max());
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  obs::Histogram a, b, combined;
  for (int i = 1; i <= 500; ++i) {
    const double v = 0.001 * i;
    (i % 3 == 0 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  // The merged sum accumulates in a different order; only bit-level FP
  // associativity separates the two means.
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-12);
  // Bucket-exact merge => identical serialisation.
  EXPECT_EQ(a.to_json(), combined.to_json());
  // Merging an empty histogram is a no-op either way round.
  obs::Histogram empty;
  const std::string before = a.to_json();
  a.merge(empty);
  EXPECT_EQ(a.to_json(), before);
  empty.merge(a);
  EXPECT_EQ(empty.to_json(), before);
}

TEST(KindRegistry, NamesResolve) {
  EXPECT_STREQ(groups::kind_name(groups::kDeliverKind), "deliver");
  EXPECT_STREQ(groups::kind_name(groups::kNackKind), "nack");
  EXPECT_STREQ(groups::kind_name(groups::kGraftRequestKind), "graft_request");
  EXPECT_STREQ(groups::kind_name(11), "data");
  EXPECT_EQ(groups::kind_name(999), nullptr);
}

TEST(LoadSummary, MaxAndNearestRankP99) {
  EXPECT_EQ(obs::summarize_load({}).max, 0u);
  std::vector<std::uint64_t> loads(100);
  for (std::size_t i = 0; i < loads.size(); ++i) loads[i] = i + 1;  // 1..100
  const auto summary = obs::summarize_load(loads);
  EXPECT_EQ(summary.max, 100u);
  EXPECT_EQ(summary.p99, 99u);  // nearest rank: 99th of 100
  EXPECT_DOUBLE_EQ(summary.mean, 50.5);
}

/// A small QoS 2 workload with enough traffic to populate the latency
/// histograms and the per-kind counters.
PubSubConfig snapshot_config() {
  PubSubConfig config;
  config.seed = 11;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.loss.drop_probability = 0.03;
  return config;
}

TEST(Snapshot, StatsJsonCarriesHistogramsAndNamedKinds) {
  const auto graph = make_overlay(60, 2, 11);
  PubSubSystem system(graph, snapshot_config());
  const GroupId group = 3;
  const auto members = subscribe_members(system, graph, group, 12, 11);
  for (int i = 0; i < 20; ++i)
    system.publish_at(2.0 + 0.05 * i, members[i % members.size()], group);
  // Late joiners after the tree exists: the routed graft plane attaches
  // them, populating graft_latency.
  std::vector<bool> taken(graph.size(), false);
  for (const groups::PeerId m : members) taken[m] = true;
  taken[system.manager().root_of(group)] = true;
  std::size_t late = 0;
  for (groups::PeerId p = 0; p < graph.size() && late < 4; ++p) {
    if (taken[p]) continue;
    system.subscribe_at(3.5 + 0.01 * static_cast<double>(++late), p, group);
  }
  for (int i = 0; i < 5; ++i)
    system.publish_at(4.0 + 0.05 * i, members[i % members.size()], group);
  system.run();

  const auto totals = system.total_stats();
  EXPECT_GT(totals.deliveries, 0u);
  // Latency histograms populate unconditionally (no sink attached here).
  EXPECT_EQ(totals.delivery_latency.count(), totals.deliveries);
  EXPECT_GT(totals.delivery_latency.p50(), 0.0);
  EXPECT_GT(totals.graft_latency.count(), 0u);

  const std::string group_json = obs::to_json(totals);
  EXPECT_NE(group_json.find("\"deliveries\":"), std::string::npos);
  EXPECT_NE(group_json.find("\"delivery_latency\":{\"count\":"), std::string::npos);
  EXPECT_NE(group_json.find("\"graft_latency\":"), std::string::npos);
  EXPECT_NE(group_json.find("\"delivery_ratio\":"), std::string::npos);

  const std::string net_json = obs::to_json(system.simulator().network().stats());
  EXPECT_NE(net_json.find("\"sent_by_kind\":{"), std::string::npos);
  EXPECT_NE(net_json.find("\"deliver\":"), std::string::npos);
  EXPECT_NE(net_json.find("\"subscribe\":"), std::string::npos);
  EXPECT_NE(net_json.find("\"send_load\":{\"max\":"), std::string::npos);

  const std::string hop_json = obs::to_json(system.hop_stats());
  EXPECT_NE(hop_json.find("\"data_messages\":"), std::string::npos);
  EXPECT_NE(hop_json.find("\"retransmissions\":"), std::string::npos);
}

TEST(Snapshot, SamplerProducesMonotoneDeterministicSeries) {
  const auto run = [](std::string* json) {
    const auto graph = make_overlay(60, 2, 11);
    PubSubSystem system(graph, snapshot_config());
    obs::Sampler sampler(system, 0.25);
    sampler.start();
    const GroupId group = 3;
    const auto members = subscribe_members(system, graph, group, 12, 11);
    for (int i = 0; i < 20; ++i)
      system.publish_at(2.0 + 0.05 * i, members[i % members.size()], group);
    system.run();
    std::vector<obs::SnapshotSample> samples = sampler.samples();
    if (json != nullptr) *json = sampler.to_json();
    return samples;
  };
  const auto samples = run(nullptr);
  // The workload spans ~3 simulated seconds at a 0.25 s interval.
  ASSERT_GT(samples.size(), 4u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].time, samples[i - 1].time);
    // Cumulative counters never regress.
    EXPECT_GE(samples[i].deliveries, samples[i - 1].deliveries);
    EXPECT_GE(samples[i].envelopes_sent, samples[i - 1].envelopes_sent);
    EXPECT_GE(samples[i].send_load.max, samples[i - 1].send_load.max);
  }
  // The final tick fires after the queue drained: it sees the full totals.
  EXPECT_GT(samples.back().deliveries, 0u);
  EXPECT_EQ(samples.back().queue_pending, 0u);
  // Deterministic: an identical run serialises byte-identically.
  std::string first_json, second_json;
  run(&first_json);
  run(&second_json);
  EXPECT_EQ(first_json, second_json);
  EXPECT_NE(first_json.find("\"deliveries_per_sec\":"), std::string::npos);
}

TEST(LogLevel, ParseGeomcastLogNames) {
  using util::LogLevel;
  EXPECT_EQ(util::parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(util::parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(util::parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(util::parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(util::parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(util::parse_log_level("bogus"), std::nullopt);
  EXPECT_EQ(util::parse_log_level(""), std::nullopt);
}

}  // namespace
}  // namespace geomcast
