#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace geomcast::util {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.add(7.5);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.min(), 7.5);
  EXPECT_EQ(stats.max(), 7.5);
  EXPECT_EQ(stats.mean(), 7.5);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
}

TEST(RunningStatsTest, NegativeValues) {
  RunningStats stats;
  for (double v : {-3.0, -1.0, 1.0, 3.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.min(), -3.0);
  EXPECT_EQ(stats.max(), 3.0);
}

TEST(RunningStatsTest, SumMatchesMeanTimesCount) {
  RunningStats stats;
  for (int i = 1; i <= 100; ++i) stats.add(static_cast<double>(i));
  EXPECT_NEAR(stats.sum(), 5050.0, 1e-9);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0;
    all.add(v);
    left.add(v);
  }
  for (int i = 50; i < 120; ++i) {
    const double v = std::sin(i) * 10.0;
    all.add(v);
    right.add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(2.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStatsTest, ResetClearsState) {
  RunningStats stats;
  stats.add(5.0);
  stats.reset();
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.mean(), 0.0);
}

TEST(DistributionTest, EmptyDefaults) {
  Distribution dist;
  EXPECT_TRUE(dist.empty());
  EXPECT_EQ(dist.quantile(0.5), 0.0);
  EXPECT_EQ(dist.min(), 0.0);
  EXPECT_EQ(dist.max(), 0.0);
}

TEST(DistributionTest, MedianOfOddCount) {
  Distribution dist;
  for (double v : {5.0, 1.0, 3.0}) dist.add(v);
  EXPECT_DOUBLE_EQ(dist.median(), 3.0);
}

TEST(DistributionTest, MedianInterpolatesEvenCount) {
  Distribution dist;
  for (double v : {1.0, 2.0, 3.0, 4.0}) dist.add(v);
  EXPECT_DOUBLE_EQ(dist.median(), 2.5);
}

TEST(DistributionTest, QuantileEndpoints) {
  Distribution dist;
  for (int i = 0; i <= 100; ++i) dist.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(dist.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.25), 25.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.9), 90.0);
}

TEST(DistributionTest, QuantileClampsOutOfRange) {
  Distribution dist;
  dist.add(1.0);
  dist.add(2.0);
  EXPECT_DOUBLE_EQ(dist.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(dist.quantile(2.0), 2.0);
}

TEST(DistributionTest, AddAfterQuantileStaysCorrect) {
  Distribution dist;
  dist.add(10.0);
  EXPECT_DOUBLE_EQ(dist.median(), 10.0);
  dist.add(20.0);
  dist.add(0.0);
  EXPECT_DOUBLE_EQ(dist.median(), 10.0);
  EXPECT_DOUBLE_EQ(dist.max(), 20.0);
}

TEST(DistributionTest, MeanMatchesArithmetic) {
  Distribution dist;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) dist.add(v);
  EXPECT_DOUBLE_EQ(dist.mean(), 3.0);
}

TEST(FormatNumberTest, TrimsTrailingZeros) {
  EXPECT_EQ(format_number(3.5), "3.5");
  EXPECT_EQ(format_number(12.0), "12");
  EXPECT_EQ(format_number(0.25), "0.25");
  EXPECT_EQ(format_number(1.230), "1.23");
}

TEST(FormatNumberTest, RespectsMaxDecimals) {
  EXPECT_EQ(format_number(3.14159, 2), "3.14");
  EXPECT_EQ(format_number(3.14159, 4), "3.1416");
}

TEST(FormatNumberTest, NegativeZeroNormalized) {
  EXPECT_EQ(format_number(-0.0001, 2), "0");
}

TEST(FormatNumberTest, NegativeValues) {
  EXPECT_EQ(format_number(-2.5), "-2.5");
  EXPECT_EQ(format_number(-10.0), "-10");
}

}  // namespace
}  // namespace geomcast::util
