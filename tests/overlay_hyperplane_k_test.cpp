#include "overlay/hyperplane_k.hpp"

#include <gtest/gtest.h>

#include <map>

#include "geometry/orthant.hpp"
#include "geometry/random_points.hpp"
#include "overlay/k_closest.hpp"
#include "util/rng.hpp"

namespace geomcast::overlay {
namespace {

std::vector<Candidate> to_candidates(const std::vector<geometry::Point>& points,
                                     std::size_t ego_index) {
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (i != ego_index) candidates.push_back({static_cast<PeerId>(i), points[i]});
  return candidates;
}

TEST(HyperplaneKTest, RejectsZeroK) {
  EXPECT_THROW(HyperplaneKSelector::orthogonal(2, 0), std::invalid_argument);
  EXPECT_THROW(KClosestSelector(0), std::invalid_argument);
}

TEST(HyperplaneKTest, SelectsKPerOrthantExactly) {
  // Brute-force check: group by orthant, sort by distance, take K.
  util::Rng rng(11);
  const auto points = geometry::random_points(rng, 200, 3, 100.0);
  for (std::size_t k : {1u, 2u, 5u}) {
    const auto selector = HyperplaneKSelector::orthogonal(3, k);
    for (std::size_t ego = 0; ego < 20; ++ego) {
      const auto candidates = to_candidates(points, ego);
      const auto fast = selector.select(points[ego], candidates);

      std::map<geometry::OrthantCode, std::vector<std::pair<double, PeerId>>> groups;
      for (const auto& c : candidates)
        groups[geometry::orthant_of(points[ego], c.point)].push_back(
            {geometry::l2_distance(points[ego], c.point), c.id});
      std::vector<PeerId> expected;
      for (auto& [code, members] : groups) {
        (void)code;
        std::sort(members.begin(), members.end());
        for (std::size_t i = 0; i < std::min(k, members.size()); ++i)
          expected.push_back(members[i].second);
      }
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(fast, expected) << "ego=" << ego << " k=" << k;
    }
  }
}

TEST(HyperplaneKTest, EmptyArrangementEqualsKClosest) {
  util::Rng rng(12);
  const auto points = geometry::random_points(rng, 150, 4, 100.0);
  const HyperplaneKSelector degenerate(geometry::HyperplaneArrangement::empty(4), 7);
  const KClosestSelector direct(7);
  for (std::size_t ego = 0; ego < 15; ++ego) {
    const auto candidates = to_candidates(points, ego);
    EXPECT_EQ(degenerate.select(points[ego], candidates),
              direct.select(points[ego], candidates));
  }
}

TEST(HyperplaneKTest, KLargerThanCandidatesKeepsAll) {
  util::Rng rng(13);
  const auto points = geometry::random_points(rng, 10, 2, 100.0);
  const auto selector = HyperplaneKSelector::orthogonal(2, 100);
  const auto result = selector.select(points[0], to_candidates(points, 0));
  EXPECT_EQ(result.size(), 9u);
}

TEST(HyperplaneKTest, KClosestRespectsK) {
  util::Rng rng(14);
  const auto points = geometry::random_points(rng, 100, 3, 100.0);
  const KClosestSelector selector(5);
  const auto result = selector.select(points[0], to_candidates(points, 0));
  EXPECT_EQ(result.size(), 5u);
}

TEST(HyperplaneKTest, KClosestPicksNearest) {
  const geometry::Point ego{0.0, 0.0};
  const std::vector<Candidate> candidates{{1, geometry::Point({10.0, 0.1})},
                                          {2, geometry::Point({1.0, 0.2})},
                                          {3, geometry::Point({2.0, 0.3})},
                                          {4, geometry::Point({50.0, 0.4})}};
  const KClosestSelector selector(2);
  EXPECT_EQ(selector.select(ego, candidates), (std::vector<PeerId>{2, 3}));
}

TEST(HyperplaneKTest, MetricChangesSelection) {
  // A point can be L1-closer but L2-farther.
  const geometry::Point ego{0.0, 0.0};
  const std::vector<Candidate> candidates{{1, geometry::Point({3.0, 3.0})},   // L1=6, L2~4.24
                                          {2, geometry::Point({0.1, 4.95})}}; // L1=5.05, L2~4.95
  const KClosestSelector l1(1, geometry::Metric::kL1);
  const KClosestSelector l2(1, geometry::Metric::kL2);
  EXPECT_EQ(l1.select(ego, candidates), (std::vector<PeerId>{2}));
  EXPECT_EQ(l2.select(ego, candidates), (std::vector<PeerId>{1}));
}

TEST(HyperplaneKTest, OrderInvariance) {
  util::Rng rng(15);
  const auto points = geometry::random_points(rng, 80, 3, 100.0);
  const auto selector = HyperplaneKSelector::orthogonal(3, 2);
  auto candidates = to_candidates(points, 0);
  const auto baseline = selector.select(points[0], candidates);
  util::Rng shuffle_rng(16);
  for (int trial = 0; trial < 5; ++trial) {
    shuffle_rng.shuffle(candidates);
    EXPECT_EQ(selector.select(points[0], candidates), baseline);
  }
}

TEST(HyperplaneKTest, TernaryArrangementSelectsAtMostKPerRegion) {
  util::Rng rng(17);
  const auto points = geometry::random_points(rng, 120, 3, 100.0);
  const auto arrangement = geometry::HyperplaneArrangement::ternary(3);
  const HyperplaneKSelector selector(arrangement, 2);
  const auto candidates = to_candidates(points, 0);
  const auto result = selector.select(points[0], candidates);
  std::map<std::uint64_t, int> per_region;
  for (PeerId q : result)
    ++per_region[arrangement.region_of(points[0], points[q]).value];
  for (const auto& [region, count] : per_region) {
    (void)region;
    EXPECT_LE(count, 2);
  }
  // Ternary refines orthogonal => at least as many neighbours as orthogonal.
  const auto ortho = HyperplaneKSelector::orthogonal(3, 2).select(points[0], candidates);
  EXPECT_GE(result.size(), ortho.size());
}

TEST(HyperplaneKTest, NamesDescribeConfiguration) {
  EXPECT_EQ(HyperplaneKSelector::orthogonal(3, 4).name(), "hyperplanes(H=3,K=4,l2)");
  EXPECT_EQ(KClosestSelector(9, geometry::Metric::kL1).name(), "k-closest(K=9,l1)");
}

}  // namespace
}  // namespace geomcast::overlay
