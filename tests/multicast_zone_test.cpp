#include "multicast/zone.hpp"

#include <gtest/gtest.h>

#include "geometry/random_points.hpp"
#include "util/rng.hpp"

namespace geomcast::multicast {
namespace {

TEST(ZoneTest, InitiatorZoneIsWholeSpace) {
  const auto zone = initiator_zone(3);
  EXPECT_TRUE(zone.contains_interior(geometry::Point({0.0, 0.0, 0.0})));
  EXPECT_TRUE(zone.contains_interior(geometry::Point({1e15, -1e15, 3.0})));
}

TEST(ZoneTest, ChildZoneMatchesPaperRule) {
  // Paper: side i of HR is (-inf, x(P,i)) if x(Q,i) < x(P,i), else (x(P,i), +inf).
  const geometry::Point ego{5.0, 7.0};
  const auto parent = initiator_zone(2);
  const geometry::Point q{3.0, 9.0};  // below in dim 0, above in dim 1
  const auto zone = child_zone(parent, ego, geometry::orthant_of(ego, q));
  EXPECT_EQ(zone.lo(0), -geometry::kInf);
  EXPECT_EQ(zone.hi(0), 5.0);
  EXPECT_EQ(zone.lo(1), 7.0);
  EXPECT_EQ(zone.hi(1), geometry::kInf);
  EXPECT_TRUE(zone.contains_interior(q));
  EXPECT_FALSE(zone.contains_interior(ego));
}

TEST(ZoneTest, ChildZoneClippedByParent) {
  const geometry::Point ego{5.0, 5.0};
  const auto parent = geometry::Rect::cube(2, 0.0, 10.0);
  const geometry::Point q{7.0, 8.0};
  const auto zone = child_zone(parent, ego, geometry::orthant_of(ego, q));
  EXPECT_EQ(zone.lo(0), 5.0);
  EXPECT_EQ(zone.hi(0), 10.0);
  EXPECT_EQ(zone.lo(1), 5.0);
  EXPECT_EQ(zone.hi(1), 10.0);
}

TEST(ZoneTest, SiblingZonesDisjointAndExcludeEgo) {
  util::Rng rng(81);
  const auto points = geometry::random_points(rng, 20, 3, 100.0);
  const geometry::Point& ego = points[0];
  const auto parent = geometry::Rect::cube(3, -50.0, 150.0);
  std::vector<geometry::Rect> zones;
  for (geometry::OrthantCode code = 0; code < geometry::orthant_count(3); ++code)
    zones.push_back(child_zone(parent, ego, code));
  for (std::size_t i = 0; i < zones.size(); ++i) {
    EXPECT_FALSE(zones[i].contains_interior(ego));
    for (std::size_t j = i + 1; j < zones.size(); ++j)
      EXPECT_TRUE(zones[i].interior_disjoint(zones[j]));
  }
}

TEST(ZoneTest, ZoneUnionCoversParentMinusEgoSlabs) {
  // Every point of the parent zone that shares no coordinate with the ego
  // lies in exactly one child zone.
  util::Rng rng(82);
  const geometry::Point ego{50.0, 50.0};
  const auto parent = geometry::Rect::cube(2, 0.0, 100.0);
  const auto samples = geometry::random_points(rng, 500, 2, 100.0);
  for (const auto& sample : samples) {
    if (sample[0] == ego[0] || sample[1] == ego[1]) continue;
    int containing = 0;
    for (geometry::OrthantCode code = 0; code < 4; ++code)
      if (child_zone(parent, ego, code).contains_interior(sample)) ++containing;
    EXPECT_EQ(containing, 1) << sample.to_string();
  }
}

TEST(ZoneTest, NestedSubdivisionStaysInsideAncestors) {
  const auto space = initiator_zone(2);
  const geometry::Point root{50.0, 50.0};
  const geometry::Point child{70.0, 80.0};
  const geometry::Point grandchild{60.0, 90.0};
  const auto zone1 = child_zone(space, root, geometry::orthant_of(root, child));
  const auto zone2 = child_zone(zone1, child, geometry::orthant_of(child, grandchild));
  EXPECT_TRUE(zone1.interior_subset_of(space));
  EXPECT_TRUE(zone2.interior_subset_of(zone1));
  EXPECT_TRUE(zone2.contains_interior(grandchild));
  EXPECT_FALSE(zone2.contains_interior(child));
  EXPECT_FALSE(zone2.contains_interior(root));
}

}  // namespace
}  // namespace geomcast::multicast
