// QoS 2 battery: unit tests for the pure subscriber-side machinery
// (SubscriberWindow sequencing, RetainedBuffer eviction) plus end-to-end
// scenarios on the simulated network — NACK batching and its deferral to
// in-flight per-hop recovery, and the headline case: a forwarder killed
// mid-wave loses its whole subtree under QoS 1 while QoS 2 repairs it from
// retained copies up the ancestor chain. The seeded sweep runs several
// full simulations and is labelled `slow` in ctest.
#include "groups/pubsub.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "groups/failure_injection.hpp"
#include "groups_test_util.hpp"

namespace geomcast::groups {
namespace {

using testutil::find_leaf_subscriber;
using testutil::make_overlay;
using testutil::subscribe_members;

// ---------------------------------------------------------------- window ----

TEST(SubscriberWindowTest, ContiguousArrivalsReleaseImmediately) {
  SubscriberWindow window;
  EXPECT_FALSE(window.initialized());
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    const auto arrival = window.observe(seq);
    EXPECT_TRUE(arrival.pre_window.empty());
    EXPECT_TRUE(arrival.new_gaps.empty());
    ASSERT_EQ(arrival.released.size(), 1u);
    EXPECT_EQ(arrival.released[0], seq);
  }
  EXPECT_TRUE(window.initialized());
  EXPECT_EQ(window.next_expected(), 4u);
  EXPECT_EQ(window.gap_count(), 0u);
  EXPECT_EQ(window.held_count(), 0u);
}

TEST(SubscriberWindowTest, OutOfOrderArrivalIsHeldAndReleasedInOrder) {
  SubscriberWindow window;
  (void)window.observe(0);
  auto arrival = window.observe(2);  // 1 goes missing
  EXPECT_EQ(arrival.new_gaps, (std::vector<std::uint64_t>{1}));
  EXPECT_TRUE(arrival.released.empty());
  EXPECT_TRUE(window.is_gap(1));
  EXPECT_EQ(window.held_count(), 1u);

  arrival = window.observe(3);  // still blocked, no new gaps
  EXPECT_TRUE(arrival.new_gaps.empty());
  EXPECT_TRUE(arrival.released.empty());

  arrival = window.observe(1);  // the gap fills: everything releases in order
  EXPECT_EQ(arrival.released, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(window.next_expected(), 4u);
  EXPECT_EQ(window.gap_count(), 0u);
  EXPECT_EQ(window.held_count(), 0u);
}

TEST(SubscriberWindowTest, InitializesAtFirstSeqAndFlagsPreWindowArrivals) {
  SubscriberWindow window;
  auto arrival = window.observe(10);  // late joiner: no NACKs for 0..9
  EXPECT_TRUE(arrival.pre_window.empty());
  EXPECT_TRUE(arrival.new_gaps.empty());
  EXPECT_EQ(arrival.released, (std::vector<std::uint64_t>{10}));
  EXPECT_EQ(window.next_expected(), 11u);

  arrival = window.observe(9);  // init race: released out of band
  EXPECT_EQ(arrival.pre_window, (std::vector<std::uint64_t>{9}));
  EXPECT_TRUE(arrival.released.empty());
  EXPECT_EQ(window.next_expected(), 11u);  // window untouched
}

TEST(SubscriberWindowTest, AbandonSkipsHeadGapAndReleasesRun) {
  SubscriberWindow window;
  (void)window.observe(0);
  (void)window.observe(2);
  (void)window.observe(3);
  (void)window.observe(5);  // gaps {1, 4}, held {2, 3, 5}
  EXPECT_EQ(window.gap_count(), 2u);

  EXPECT_EQ(window.abandon(1), (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(window.next_expected(), 4u);
  EXPECT_EQ(window.abandon(4), (std::vector<std::uint64_t>{5}));
  EXPECT_EQ(window.next_expected(), 6u);
  EXPECT_EQ(window.gap_count(), 0u);
  EXPECT_EQ(window.held_count(), 0u);
}

TEST(SubscriberWindowTest, AbandonedNonHeadGapIsSkippedWhenTheHeadPasses) {
  SubscriberWindow window;
  (void)window.observe(0);
  (void)window.observe(2);
  (void)window.observe(4);  // gaps {1, 3}
  EXPECT_TRUE(window.abandon(3).empty());  // non-head: nothing released yet
  // Filling the head gap releases 2, silently passes the abandoned 3, and
  // releases 4.
  const auto arrival = window.observe(1);
  EXPECT_EQ(arrival.released, (std::vector<std::uint64_t>{1, 2, 4}));
  EXPECT_EQ(window.next_expected(), 5u);
}

TEST(SubscriberWindowTest, ReorderBoundForceAbandonsOldestGaps) {
  SubscriberWindow window(/*reorder_limit=*/2);
  (void)window.observe(0);
  (void)window.observe(2);
  auto arrival = window.observe(3);  // held {2, 3}: at the limit
  EXPECT_TRUE(arrival.forced_abandoned.empty());
  arrival = window.observe(4);  // held would be 3: gap 1 is given up
  EXPECT_EQ(arrival.forced_abandoned, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(arrival.released, (std::vector<std::uint64_t>{2, 3, 4}));
  EXPECT_EQ(window.next_expected(), 5u);
  EXPECT_EQ(window.gap_count(), 0u);
}

TEST(SubscriberWindowTest, ObservingAnAbandonedSeqLaterIsPreWindow) {
  SubscriberWindow window;
  (void)window.observe(0);
  (void)window.observe(2);
  (void)window.abandon(1);  // head skips to 3
  const auto arrival = window.observe(1);  // straggler after the skip
  EXPECT_EQ(arrival.pre_window, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(window.next_expected(), 3u);
}

// ------------------------------------------------------- retained buffer ----

TEST(RetainedBufferTest, EvictsLowestSeqBeyondCapacity) {
  RetainedBuffer buffer(2);
  EXPECT_EQ(buffer.retain(5, std::any{1}), 0u);
  EXPECT_EQ(buffer.retain(6, std::any{2}), 0u);
  EXPECT_EQ(buffer.retain(7, std::any{3}), 1u);  // 5 evicted
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.find(5), nullptr);
  ASSERT_NE(buffer.find(6), nullptr);
  ASSERT_NE(buffer.find(7), nullptr);
  EXPECT_EQ(std::any_cast<int>(*buffer.find(7)), 3);
}

TEST(RetainedBufferTest, ReRetainingAHeldSeqOverwritesWithoutEviction) {
  RetainedBuffer buffer(2);
  EXPECT_EQ(buffer.retain(1, std::any{1}), 0u);
  EXPECT_EQ(buffer.retain(1, std::any{9}), 0u);
  EXPECT_EQ(buffer.size(), 1u);
  EXPECT_EQ(std::any_cast<int>(*buffer.find(1)), 9);
}

TEST(RetainedBufferTest, ZeroCapacityRetainsNothing) {
  RetainedBuffer buffer(0);
  EXPECT_EQ(buffer.retain(1, std::any{1}), 1u);  // evicts the new entry
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.find(1), nullptr);
}

// ------------------------------------------------------------ end-to-end ----

TEST(GroupsQoS2Test, NacksAreBatchedAndDeferToInflightPerHopRecovery) {
  const auto graph = make_overlay(120, 2, 1201);
  const GroupId g = 0;
  const std::uint64_t seed = 37;
  const std::size_t publishes = 4;
  const PeerId victim = find_leaf_subscriber(graph, g, 10, seed, publishes);
  ASSERT_NE(victim, kInvalidPeer);

  // Sever seqs 1 and 2 toward the victim completely: per-hop recovery must
  // burn its budget and abandon, then the gap plane takes over.
  PubSubConfig config;
  config.seed = seed;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 5;
  config.loss.drop_if = [victim](const sim::Envelope& e) {
    if (e.kind != kDeliverKind || e.to != victim) return false;
    const GroupDelivery& d = *std::any_cast<const DeliveryPtr&>(e.payload);
    return d.seq == 1 || d.seq == 2;
  };
  PubSubSystem system(graph, config);
  std::vector<std::pair<PeerId, std::uint64_t>> order;
  system.set_delivery_probe([&order](PeerId p, GroupId, std::uint64_t seq, double) {
    order.emplace_back(p, seq);
  });
  const auto members = subscribe_members(system, graph, g, 10, seed);
  for (std::size_t i = 0; i < publishes; ++i)
    system.publish_at(2.0 + 0.1 * static_cast<double>(i), members[0], g);
  system.run();

  const auto& stats = system.stats(g);
  // Both missing seqs were discovered from seq 3's arrival, repaired from
  // the victim's parent (which retained them when it forwarded), and
  // nothing was lost.
  EXPECT_EQ(stats.gap_seqs_detected, 2u);
  EXPECT_EQ(stats.gap_seqs_repaired, 2u);
  EXPECT_EQ(stats.gap_seqs_abandoned, 0u);
  EXPECT_EQ(stats.repairs_served, 2u);
  EXPECT_EQ(stats.repair_misses, 0u);
  EXPECT_DOUBLE_EQ(stats.delivery_ratio(), 1.0);
  EXPECT_GT(stats.gap_latency_total, 0.0);
  EXPECT_GT(stats.mean_gap_latency(), 0.0);
  // One batched NACK carried both seqs...
  EXPECT_EQ(stats.nacks_sent, 1u);
  EXPECT_EQ(stats.nacked_seqs, 2u);
  // ...and it waited for the abandoned per-hop retransmissions first.
  EXPECT_GE(stats.nack_deferrals, 1u);
  EXPECT_EQ(stats.abandoned_hops, 2u);
  // The network-level mirror agrees.
  EXPECT_EQ(system.simulator().stats().nacks, stats.nacks_sent);
  EXPECT_EQ(system.simulator().stats().repairs_served, stats.repairs_served);
  // The victim's releases came out strictly in order despite the repair.
  std::vector<std::uint64_t> victim_order;
  for (const auto& [p, seq] : order)
    if (p == victim) victim_order.push_back(seq);
  EXPECT_EQ(victim_order, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

/// RetainedBuffer range service, pinned: one NACK whose gap run straddles
/// TWO retained wave ranges must be served from both entries. Batching
/// (two publishes per window) makes each wave a 2-seq range; severing the
/// middle two waves toward a leaf leaves the gap run [2..5] covering the
/// retained ranges [2,3] and [4,5]. on_nack's per-request dedup serves
/// each covering range exactly once — two repair envelopes, no misses.
TEST(GroupsQoS2Test, NackRunStraddlingTwoRetainedWavesIsServedFromBoth) {
  const auto graph = make_overlay(120, 2, 1203);
  const GroupId g = 0;
  const std::uint64_t seed = 41;
  const PeerId victim = find_leaf_subscriber(graph, g, 10, seed, 4);
  ASSERT_NE(victim, kInvalidPeer);

  PubSubConfig config;
  config.seed = seed;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 5;
  config.batch_window = 0.1;
  // Sever the two middle waves toward the victim: a coalesced wave rides
  // one envelope keyed by its range low, so dropping seq-low 2 and 4
  // removes the ranges [2,3] and [4,5] entirely on that last hop.
  config.loss.drop_if = [victim](const sim::Envelope& e) {
    if (e.kind != kDeliverKind || e.to != victim) return false;
    const GroupDelivery& d = *std::any_cast<const DeliveryPtr&>(e.payload);
    return d.seq == 2 || d.seq == 4;
  };
  PubSubSystem system(graph, config);
  const auto members = subscribe_members(system, graph, g, 10, seed);
  const PeerId root = system.manager().root_of(g);
  // Four waves of two seqs each: [0,1] [2,3] [4,5] [6,7], flushed at
  // 2.1/3.1/4.1/5.1 (root-published, so the windows are exact).
  for (const double base : {2.0, 3.0, 4.0, 5.0}) {
    system.publish_at(base, root, g);
    system.publish_at(base + 0.01, root, g);
  }
  system.run();
  (void)members;

  const auto& stats = system.stats(g);
  // Wave [6,7] revealed the straddling run: four seqs, one batched NACK.
  EXPECT_EQ(stats.gap_seqs_detected, 4u);
  EXPECT_EQ(stats.nacks_sent, 1u);
  EXPECT_EQ(stats.nacked_seqs, 4u);
  // The pin: both covering retained ranges answered — one repair envelope
  // per retained wave, neither a miss, and the run healed in full.
  EXPECT_EQ(stats.repairs_served, 2u);
  EXPECT_EQ(stats.repair_misses, 0u);
  EXPECT_EQ(stats.gap_seqs_repaired, 4u);
  EXPECT_EQ(stats.gap_seqs_abandoned, 0u);
  EXPECT_EQ(stats.deliveries, stats.expected_deliveries);
}

struct KillSweepResult {
  GroupStats total;
  std::size_t subtree_subs = 0;
  std::size_t retained_peak = 0;
};

/// The sweep workload: 4 groups x 12 subscribers, one warm publish each,
/// then a wave at t=4 whose forwarder is killed mid-flight for every
/// group, then two flush publishes so the severed subtrees can detect and
/// repair their gaps.
KillSweepResult run_kill_scenario(const overlay::OverlayGraph& graph, multicast::QoS qos,
                                  double loss, std::uint64_t seed) {
  PubSubConfig config;
  config.seed = seed;
  config.loss.drop_probability = loss;
  config.reliability.qos = qos;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 5;
  PubSubSystem system(graph, config);

  const std::size_t group_count = 4;
  std::vector<bool> member_anywhere(graph.size(), false);
  std::vector<std::vector<PeerId>> members(group_count);
  for (GroupId g = 0; g < group_count; ++g) {
    members[g] = subscribe_members(system, graph, g, 12, seed + g);
    for (const PeerId p : members[g]) member_anywhere[p] = true;
  }
  std::vector<std::size_t> killed(group_count, 0);
  for (GroupId g = 0; g < group_count; ++g) {
    const PeerId root = system.manager().root_of(g);
    // All waves publish from the root itself: the kill wave's start time —
    // and therefore "mid-wave" — is exact, the flushes cannot strand in
    // greedy control routing around the fresh departure, and the warm wave
    // cannot be lost en route (a severed subscriber whose FIRST wave is
    // the killed one initializes its window there and cannot know about
    // the gap — the documented NACK-scheme blind spot, not under test).
    system.publish_at(2.0, root, g);  // warm build
    system.publish_at(4.0, root, g);
    schedule_midwave_kill(system, g, 4.0, member_anywhere,
                          [&killed, g](PeerId, std::size_t severed) {
                            killed[g] = severed;
                          });
    system.publish_at(5.0, root, g);  // flush: reveals the gaps
    system.publish_at(6.0, root, g);
  }
  system.run();

  KillSweepResult result;
  result.total = system.total_stats();
  for (const std::size_t subs : killed) result.subtree_subs += subs;
  result.retained_peak = system.manager().retained_peak();
  return result;
}

TEST(GroupsQoS2Test, MidWaveForwarderKillLosesSubtreeUnderQoS1ButNotQoS2) {
  const auto graph = make_overlay(220, 2, 1202);
  for (const double loss : {0.0, 0.05}) {
    SCOPED_TRACE("loss=" + std::to_string(loss));
    const auto q1 = run_kill_scenario(graph, multicast::QoS::kAcked, loss, 51);
    const auto q2 = run_kill_scenario(graph, multicast::QoS::kEndToEnd, loss, 51);

    // The kill found a relay with a real subtree in at least one group
    // (identical trees across runs: same seed, same workload).
    ASSERT_GT(q2.subtree_subs, 0u);
    ASSERT_EQ(q1.subtree_subs, q2.subtree_subs);

    // QoS 1 silently loses the severed subtrees' waves...
    EXPECT_LT(q1.total.delivery_ratio(), 0.9999);
    // ...QoS 2 detects the gaps downstream and repairs every one.
    EXPECT_GE(q2.total.delivery_ratio(), 0.9999);
    EXPECT_GT(q2.total.delivery_ratio(), q1.total.delivery_ratio());
    EXPECT_GT(q2.total.gap_seqs_detected, 0u);
    EXPECT_GT(q2.total.nacks_sent, 0u);
    EXPECT_GT(q2.total.repairs_served, 0u);
    EXPECT_EQ(q2.total.gap_seqs_repaired, q2.total.gap_seqs_detected);
    if (loss == 0.0) EXPECT_DOUBLE_EQ(q2.total.delivery_ratio(), 1.0);

    // QoS 1 never touches the repair plane.
    EXPECT_EQ(q1.total.nacks_sent, 0u);
    EXPECT_EQ(q1.total.repairs_served, 0u);
    EXPECT_EQ(q1.total.gap_seqs_detected, 0u);
    EXPECT_EQ(q1.total.retained_evictions, 0u);

    // Retention stayed within its configured bound.
    EXPECT_GE(q2.retained_peak, 1u);
    EXPECT_LE(q2.retained_peak, PubSubConfig{}.groups.retention_window);
  }
}

TEST(GroupsQoS2Test, RetentionMemoryIsBoundedByTheConfiguredWindow) {
  const auto graph = make_overlay(120, 2, 1203);
  const GroupId g = 0;
  PubSubConfig config;
  config.seed = 71;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.groups.retention_window = 3;
  PubSubSystem system(graph, config);
  const auto members = subscribe_members(system, graph, g, 10, 71);
  for (std::size_t i = 0; i < 10; ++i)  // far more waves than the window
    system.publish_at(2.0 + 0.1 * static_cast<double>(i), members[0], g);
  system.run();

  EXPECT_EQ(system.stats(g).delivery_ratio(), 1.0);
  EXPECT_GT(system.stats(g).retained_evictions, 0u);
  EXPECT_GE(system.manager().retained_peak(), 1u);
  EXPECT_LE(system.manager().retained_peak(), 3u);
  // Every live buffer holds at most `window` entries right now too.
  const GroupTree* gt = system.manager().cached_tree(g);
  ASSERT_NE(gt, nullptr);
  std::size_t responders = 0;
  for (PeerId p = 0; p < graph.size(); ++p)
    if (gt->tree.reached(p) && !gt->tree.children(p).empty()) ++responders;
  EXPECT_LE(system.manager().retained_entry_total(), responders * 3);
}

}  // namespace
}  // namespace geomcast::groups
