// Churn-during-graft fuzz battery (seeded): kills the three parties of an
// in-flight routed graft — the initiating root, an intermediate descent
// peer, and the subscriber itself — mid-descent, and asserts the state
// machine's safety and liveness halves:
//  * safety: no half-attached tree edges survive (after the abort-forced
//    rebuild every leaf of a clean cached tree is a subscriber again) and
//    no in-flight cursor state leaks once the simulation drains;
//  * liveness: the abort re-issues the subscribe (abort-and-resubscribe),
//    so the next publish reaches every surviving registered member —
//    including the mid-graft subscriber when it survived.
//
// The kill instants are not guessed: a lossless dry run records the graft
// window (first request delivery .. accept) through the simulator's
// delivery observer, and each scenario re-runs the identical deterministic
// schedule with one depart_at dropped strictly inside that window.
#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "groups/message_kinds.hpp"
#include "groups/pubsub.hpp"
#include "groups_test_util.hpp"

namespace geomcast::groups {
namespace {

using testutil::make_overlay;

constexpr GroupId kGroup = 7;
constexpr double kLateSubscribe = 3.0;
constexpr double kFinalPublish = 6.0;

/// Deterministic non-root member pick (mirrors the routed-graft battery).
std::vector<PeerId> pick_members(const overlay::OverlayGraph& graph, PeerId root,
                                 std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<bool> chosen(graph.size(), false);
  std::vector<PeerId> members;
  while (members.size() < count) {
    const auto p = static_cast<PeerId>(rng.next_below(graph.size()));
    if (chosen[p] || p == root) continue;
    chosen[p] = true;
    members.push_back(p);
  }
  return members;
}

struct RunOutcome {
  std::set<std::pair<PeerId, std::uint64_t>> delivered;  // (peer, seq) of kGroup
  std::vector<std::pair<double, PeerId>> request_hops;   // graft request deliveries
  double accept_time = -1.0;  // kGraftAcceptKind delivery (or local finish: none)
  GroupStats stats;
  std::size_t inflight = 0;
  PeerId initial_root = kInvalidPeer;
};

struct KillPlan {
  PeerId target = kInvalidPeer;
  double when = -1.0;  // < 0: no kill (the dry run)
};

/// One deterministic run: 10 early members, warm publish at t=2, the late
/// subscriber at t=3 (the graft under test), final publish at t=6. The
/// publisher is pinned by the CALLER (same peer in the dry run and every
/// kill run — were it re-picked per run, a kill target that happens to be
/// the default publisher would shift the schedule the dry-run-derived
/// kill instants were computed against). Returns everything the scenarios
/// assert on.
RunOutcome run_once(const overlay::OverlayGraph& graph, std::uint64_t seed,
                    PeerId late, PeerId publisher, const KillPlan& kill,
                    std::vector<bool>* spanned_out = nullptr,
                    std::vector<bool>* member_out = nullptr,
                    bool* leaves_ok_out = nullptr) {
  PubSubConfig config;
  config.seed = seed;
  config.routed_graft = true;
  PubSubSystem system(graph, config);
  RunOutcome outcome;
  outcome.initial_root = system.manager().root_of(kGroup);
  const auto members = pick_members(graph, outcome.initial_root, 10, seed);
  system.set_delivery_probe(
      [&outcome](PeerId peer, GroupId group, std::uint64_t seq, double) {
        if (group == kGroup) outcome.delivered.emplace(peer, seq);
      });
  system.simulator().set_delivery_observer(
      [&outcome](double time, const sim::Envelope& envelope) {
        if (envelope.kind == kGraftRequestKind)
          outcome.request_hops.emplace_back(time, envelope.to);
        else if (envelope.kind == kGraftAcceptKind)
          outcome.accept_time = time;
      });
  for (std::size_t i = 0; i < members.size(); ++i)
    system.subscribe_at(0.001 * static_cast<double>(i + 1), members[i], kGroup);
  system.subscribe_at(kLateSubscribe, late, kGroup);
  if (publisher == kInvalidPeer) publisher = members[0];
  system.publish_at(2.0, publisher, kGroup);          // seq 0: pays the build
  system.publish_at(kFinalPublish, publisher, kGroup);  // seq 1: the gate
  if (kill.when >= 0.0) system.depart_at(kill.when, kill.target);
  system.run();

  outcome.stats = system.stats(kGroup);
  outcome.inflight = system.manager().inflight_graft_count();
  if (member_out != nullptr) {
    member_out->assign(graph.size(), false);
    for (PeerId p = 0; p < graph.size(); ++p)
      (*member_out)[p] = system.manager().alive(p) &&
                         system.manager().is_subscribed(kGroup, p);
  }
  if (spanned_out != nullptr) {
    spanned_out->assign(graph.size(), false);
    const GroupTree* gt = system.manager().cached_tree(kGroup);
    if (gt != nullptr)
      for (PeerId p = 0; p < graph.size(); ++p)
        (*spanned_out)[p] = gt->is_subscriber[p] && gt->tree.reached(p);
  }
  if (leaves_ok_out != nullptr) {
    // The "no half-attached edges" invariant: in a clean cached tree every
    // childless reached peer (except the root) carries the delivery flag —
    // an abandoned descent path would end in a relay-only leaf.
    *leaves_ok_out = true;
    const GroupTree* gt = system.manager().cached_tree(kGroup);
    if (gt != nullptr)
      for (PeerId p = 0; p < graph.size(); ++p)
        if (p != gt->tree.root() && gt->tree.reached(p) &&
            gt->tree.children(p).empty() && !gt->is_subscriber[p])
          *leaves_ok_out = false;
  }
  return outcome;
}

/// Finds a late subscriber whose lossless graft takes >= 2 routed request
/// hops (so there IS an intermediate peer to kill), via dry runs.
PeerId find_deep_late_subscriber(const overlay::OverlayGraph& graph,
                                 std::uint64_t seed, RunOutcome& dry) {
  PubSubConfig config;
  config.seed = seed;
  PubSubSystem probe(graph, config);
  const PeerId root = probe.manager().root_of(kGroup);
  const auto members = pick_members(graph, root, 10, seed);
  std::vector<bool> taken(graph.size(), false);
  taken[root] = true;
  for (const PeerId m : members) taken[m] = true;
  for (PeerId candidate = 0; candidate < graph.size(); ++candidate) {
    if (taken[candidate]) continue;
    dry = run_once(graph, seed, candidate, kInvalidPeer, KillPlan{});
    if (dry.request_hops.size() >= 2 && dry.stats.grafts == 1 &&
        dry.stats.stranded_subscribers == 0)
      return candidate;
  }
  return kInvalidPeer;
}

void assert_common_invariants(const RunOutcome& outcome,
                              const std::vector<bool>& spanned,
                              const std::vector<bool>& member, bool leaves_ok,
                              const char* scenario, std::uint64_t seed) {
  EXPECT_EQ(outcome.inflight, 0u)
      << scenario << " seed " << seed << ": leaked in-flight cursor state";
  EXPECT_TRUE(leaves_ok)
      << scenario << " seed " << seed << ": half-attached relay-only leaf";
  EXPECT_EQ(outcome.stats.stranded_subscribers, 0u) << scenario << " seed " << seed;
  // Liveness: the final wave (seq 1) reached exactly the surviving
  // registered members, each of them spanned by the (rebuilt) tree.
  for (PeerId p = 0; p < member.size(); ++p) {
    const bool got = outcome.delivered.count({p, 1}) > 0;
    EXPECT_EQ(got, member[p])
        << scenario << " seed " << seed << " peer " << p
        << (member[p] ? ": surviving subscriber missed the post-churn wave"
                      : ": non-member received the wave");
    if (member[p])
      EXPECT_TRUE(spanned[p]) << scenario << " seed " << seed << " peer " << p;
  }
}

TEST(GraftChurnFuzzTest, KillsMidGraftAcrossSeeds) {
  std::size_t exercised = 0;
  for (const std::uint64_t seed : {501ULL, 502ULL, 503ULL, 504ULL}) {
    const auto graph = make_overlay(120, 2, seed);
    RunOutcome probe;
    const PeerId late = find_deep_late_subscriber(graph, seed, probe);
    if (late == kInvalidPeer) continue;  // no deep graft on this seed's geometry
    ++exercised;
    ASSERT_GE(probe.request_hops.size(), 2u);
    // Pin one publisher for the dry run and EVERY kill run: an early
    // member that is neither the root nor on the descent path, so no kill
    // scenario can hit it and change the schedule out from under the
    // dry-run-derived kill instants. Then re-record the trace with that
    // publisher — the trace and the kill runs now share one schedule.
    PeerId publisher = kInvalidPeer;
    {
      PubSubConfig pub_config;
      pub_config.seed = seed;
      PubSubSystem pub_probe(graph, pub_config);
      std::vector<bool> on_path(graph.size(), false);
      on_path[probe.initial_root] = true;
      for (const auto& [time, to] : probe.request_hops) on_path[to] = true;
      for (const PeerId m :
           pick_members(graph, pub_probe.manager().root_of(kGroup), 10, seed))
        if (!on_path[m]) {
          publisher = m;
          break;
        }
    }
    ASSERT_NE(publisher, kInvalidPeer) << "seed " << seed;
    const RunOutcome dry = run_once(graph, seed, late, publisher, KillPlan{});
    ASSERT_GE(dry.request_hops.size(), 2u);
    const double first_hop = dry.request_hops.front().first;
    const double last_hop = dry.request_hops.back().first;

    // -- scenario 1: the initiating root dies mid-descent ------------------
    {
      // Strictly inside the graft window: after the root's local first
      // decision (first request already in flight), before the descent
      // finishes. The departure migrates the group, aborts the cursor, and
      // must re-issue the subscribe toward the successor root.
      const KillPlan kill{dry.initial_root, first_hop + 0.004};
      std::vector<bool> spanned, member;
      bool leaves_ok = false;
      const auto outcome =
          run_once(graph, seed, late, publisher, kill, &spanned, &member, &leaves_ok);
      EXPECT_GE(outcome.stats.graft_aborts, 1u) << "root-kill seed " << seed;
      EXPECT_GE(outcome.stats.graft_resubscribes, 1u) << "root-kill seed " << seed;
      EXPECT_EQ(outcome.stats.root_migrations, 1u) << "root-kill seed " << seed;
      EXPECT_TRUE(member[late]) << "root-kill seed " << seed;
      assert_common_invariants(outcome, spanned, member, leaves_ok, "root-kill",
                               seed);
    }

    // -- scenario 2: an intermediate descent peer dies ---------------------
    {
      // The middle request's target dies just before that envelope lands:
      // the hop retransmits into a void while the departure repair stales
      // the zones — the sweep aborts the cursor either way.
      const std::size_t mid = dry.request_hops.size() / 2;
      const KillPlan kill{dry.request_hops[mid].second,
                          dry.request_hops[mid].first - 0.004};
      ASSERT_NE(kill.target, late) << "seed " << seed;
      ASSERT_NE(kill.target, dry.initial_root) << "seed " << seed;
      std::vector<bool> spanned, member;
      bool leaves_ok = false;
      const auto outcome =
          run_once(graph, seed, late, publisher, kill, &spanned, &member, &leaves_ok);
      EXPECT_GE(outcome.stats.graft_aborts, 1u) << "relay-kill seed " << seed;
      EXPECT_TRUE(member[late]) << "relay-kill seed " << seed;
      assert_common_invariants(outcome, spanned, member, leaves_ok, "relay-kill",
                               seed);
    }

    // -- scenario 3: the subscriber itself dies mid-graft ------------------
    {
      const KillPlan kill{late, (first_hop + last_hop) / 2.0};
      std::vector<bool> spanned, member;
      bool leaves_ok = false;
      const auto outcome =
          run_once(graph, seed, late, publisher, kill, &spanned, &member, &leaves_ok);
      EXPECT_GE(outcome.stats.graft_aborts, 1u) << "subscriber-kill seed " << seed;
      // Nobody to resubscribe for: the subscriber is gone, and the single
      // graft of this workload was its own.
      EXPECT_EQ(outcome.stats.graft_resubscribes, 0u)
          << "subscriber-kill seed " << seed;
      EXPECT_FALSE(member[late]) << "subscriber-kill seed " << seed;
      assert_common_invariants(outcome, spanned, member, leaves_ok,
                               "subscriber-kill", seed);
    }
  }
  // The battery is only meaningful if the geometry cooperated somewhere.
  EXPECT_GE(exercised, 2u) << "too few seeds produced a multi-hop graft";
}

}  // namespace
}  // namespace geomcast::groups
