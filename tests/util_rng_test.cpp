#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace geomcast::util {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng());
  rng.reseed(77);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng(), first[i]);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-5.0, 17.5);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 17.5);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform(0.0, 10.0);
  EXPECT_NEAR(sum / kSamples, 5.0, 0.1);
}

TEST(RngTest, NextBelowZeroAndOneBound) {
  Rng rng(6);
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextBelowStaysBelowBound) {
  Rng rng(7);
  for (std::uint64_t bound : {2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(12);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kSamples, 4.0, 0.1);
}

TEST(RngTest, ExponentialNonNegative) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(14);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto shuffled = items;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(15);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[i] = i;
  auto shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // probability of identity is 1/100!
}

TEST(RngTest, DeriveGivesIndependentStreams) {
  Rng base(16);
  Rng s1 = base.derive(1);
  Rng s2 = base.derive(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (s1() == s2()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, DeriveIsDeterministic) {
  Rng base(17);
  Rng s1 = base.derive(9);
  Rng s2 = base.derive(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s1(), s2());
}

TEST(RngTest, SplitMix64KnownValues) {
  // Reference values from the SplitMix64 public-domain implementation.
  std::uint64_t state = 0;
  const auto v1 = split_mix64(state);
  const auto v2 = split_mix64(state);
  EXPECT_NE(v1, v2);
  EXPECT_EQ(state, 2 * 0x9e3779b97f4a7c15ULL);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace geomcast::util
