// Routed-graft equivalence battery: the distributed zone descent
// (PubSubConfig::routed_graft, kinds 28–31) against the synchronous
// local-descent oracle it replaced on the hot subscribe path.
//
// The contract under test is strict: on pinned seeds with zero loss and no
// churn, driving every graft with routed kGraftRequestKind envelopes must
// land on BIT-IDENTICAL trees — same edge set, same delivery flags — and
// the identical delivered (peer, group, seq) set as GroupManager::
// subscribe's local recursion, while every descent hop shows up in
// NetworkStats as a real control envelope. Under loss, the QoS 1 graft
// plane must still converge: every registered subscriber ends up spanned.
// (The churn-mid-graft half of the story lives in
// tests/groups_graft_churn_test.cpp.)
#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "groups/message_kinds.hpp"
#include "groups/pubsub.hpp"
#include "groups_test_util.hpp"

namespace geomcast::groups {
namespace {

using testutil::make_overlay;

/// One application-level delivery, the unit the equivalence gate compares.
using DeliveryKey = std::tuple<PeerId, GroupId, std::uint64_t>;

/// Canonical form of a group tree for bit-identical comparison: the sorted
/// (parent, child) edge set plus the delivery-flag mask.
struct TreeShape {
  std::vector<std::pair<PeerId, PeerId>> edges;
  std::vector<bool> is_subscriber;
  bool operator==(const TreeShape&) const = default;
};

TreeShape shape_of(const GroupTree& gt) {
  TreeShape shape;
  for (PeerId p = 0; p < gt.is_subscriber.size(); ++p)
    if (p != gt.tree.root() && gt.tree.reached(p))
      shape.edges.emplace_back(gt.tree.parent(p), p);
  std::sort(shape.edges.begin(), shape.edges.end());
  shape.is_subscriber = gt.is_subscriber;
  return shape;
}

struct WorkloadResult {
  std::set<DeliveryKey> delivered;
  std::vector<TreeShape> trees;  // one per group, in group-id order
  GroupStats total;
  sim::NetworkStats net;
  std::size_t inflight = 0;
};

/// Deterministic member pick: `count` distinct non-root peers for `group`,
/// a pure function of (graph, group, seed).
std::vector<PeerId> pick_members(const overlay::OverlayGraph& graph, PeerId root,
                                 std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<bool> chosen(graph.size(), false);
  std::vector<PeerId> members;
  while (members.size() < count) {
    const auto p = static_cast<PeerId>(rng.next_below(graph.size()));
    if (chosen[p] || p == root) continue;
    chosen[p] = true;
    members.push_back(p);
  }
  return members;
}

/// The graft-heavy workload: half the members subscribe before the warm
/// publish (the lazy build), the other half after it — every late member
/// is a graft against the clean cached tree. Settle gaps around the
/// publishes keep graft completion and wave delivery from racing, which
/// is what makes "identical delivered sets" well-defined across the two
/// control planes (the routed descent finishes a few hops of latency
/// later than the local one).
WorkloadResult run_graft_workload(const overlay::OverlayGraph& graph, bool routed,
                                  std::uint64_t seed, double loss,
                                  std::size_t group_count = 4,
                                  std::size_t members_per_group = 10) {
  PubSubConfig config;
  config.seed = seed;
  config.routed_graft = routed;
  config.loss.drop_probability = loss;
  PubSubSystem system(graph, config);
  WorkloadResult result;
  system.set_delivery_probe(
      [&result](PeerId peer, GroupId group, std::uint64_t seq, double) {
        result.delivered.emplace(peer, group, seq);
      });
  for (GroupId g = 0; g < group_count; ++g) {
    const PeerId root = system.manager().root_of(g);
    const auto members = pick_members(graph, root, members_per_group, seed * 131 + g);
    const std::size_t early = members_per_group / 2;
    for (std::size_t i = 0; i < members.size(); ++i) {
      const double when = i < early
                              ? 0.001 * static_cast<double>(i + 1)        // pre-build
                              : 3.0 + 0.05 * static_cast<double>(i + 1);  // grafts
      system.subscribe_at(when, members[i], g);
    }
    system.publish_at(2.0, members[0], g);  // warm: pays the lazy build
    system.publish_at(6.0, members[1], g);  // post-graft wave
    system.publish_at(7.0, members[2], g);
  }
  system.run();
  result.total = system.total_stats();
  result.net = system.simulator().stats();
  result.inflight = system.manager().inflight_graft_count();
  for (GroupId g = 0; g < group_count; ++g) {
    const GroupTree* gt = system.manager().cached_tree(g);
    result.trees.push_back(gt == nullptr ? TreeShape{} : shape_of(*gt));
  }
  return result;
}

TEST(RoutedGraftTest, MessageKindRegistryIsPinned) {
  // The registry is dispatch ABI: a renumbering silently breaks any
  // recorded trace or cross-version comparison, so the values are pinned
  // here in addition to the compile-time uniqueness check.
  EXPECT_EQ(kSubscribeKind, 20u);
  EXPECT_EQ(kUnsubscribeKind, 21u);
  EXPECT_EQ(kPublishKind, 22u);
  EXPECT_EQ(kDeliverKind, 23u);
  EXPECT_EQ(kDeliverAckKind, 24u);
  EXPECT_EQ(kNackKind, 25u);
  EXPECT_EQ(kRepairKind, 26u);
  EXPECT_EQ(kRepairMissKind, 27u);
  EXPECT_EQ(kGraftRequestKind, 28u);
  EXPECT_EQ(kGraftAcceptKind, 29u);
  EXPECT_EQ(kGraftRejectKind, 30u);
  EXPECT_EQ(kGraftAckKind, 31u);
}

TEST(RoutedGraftTest, BitIdenticalToLocalOracleOnPinnedSeeds) {
  for (const std::uint64_t seed : {401ULL, 402ULL, 403ULL}) {
    const auto graph = make_overlay(150, 3, seed);
    const auto local = run_graft_workload(graph, /*routed=*/false, seed, 0.0);
    const auto routed = run_graft_workload(graph, /*routed=*/true, seed, 0.0);

    // The heart of the contract: same trees, same deliveries, bit for bit.
    EXPECT_EQ(routed.trees, local.trees) << "seed " << seed;
    EXPECT_EQ(routed.delivered, local.delivered) << "seed " << seed;

    // Graft accounting must agree too: the routed descent takes the SAME
    // decisions (graft_messages), one per step, as the local recursion.
    ASSERT_GT(local.total.grafts, 0u) << "seed " << seed
                                      << ": workload produced no grafts";
    EXPECT_EQ(routed.total.grafts, local.total.grafts) << "seed " << seed;
    EXPECT_EQ(routed.total.graft_messages, local.total.graft_messages)
        << "seed " << seed;
    EXPECT_EQ(routed.total.subscribes, local.total.subscribes) << "seed " << seed;
    EXPECT_EQ(routed.total.graft_aborts, 0u) << "seed " << seed;
    EXPECT_EQ(routed.inflight, 0u) << "seed " << seed;

    // What distinguishes the modes is exactly WHERE the cost lives: the
    // local oracle's descent is free on the network; the routed one pays
    // real envelopes, every one of them attributed.
    EXPECT_EQ(local.total.graft_hops, 0u) << "seed " << seed;
    EXPECT_EQ(local.net.graft_hops, 0u) << "seed " << seed;
    EXPECT_GT(routed.total.graft_hops, 0u) << "seed " << seed;
    EXPECT_EQ(routed.net.graft_hops, routed.total.graft_hops) << "seed " << seed;
    EXPECT_GT(routed.net.control_envelopes, local.net.control_envelopes)
        << "seed " << seed;
    const auto requests = routed.net.sent_by_kind.find(kGraftRequestKind);
    ASSERT_NE(requests, routed.net.sent_by_kind.end()) << "seed " << seed;
    EXPECT_EQ(requests->second, routed.total.graft_hops) << "seed " << seed;
  }
}

TEST(RoutedGraftTest, DescentEnvelopeCountTracksDecisionCount) {
  // Per graft that attaches through its own final decision, the descent
  // takes k decisions but sends only k-1 request envelopes (the root's
  // first decision is local; the final decision is taken by the
  // subscriber's parent, which reports accept instead of descending). A
  // graft that attaches WITHOUT a decision of its own — the subscriber was
  // already spanned when its step ran, e.g. recruited as a relay by a
  // concurrent descent — sends one envelope per decision instead. Hence
  // the aggregate is bracketed, not exactly decisions - grafts:
  //   decisions - grafts <= hops <= decisions.
  const auto graph = make_overlay(150, 3, 404);
  const auto routed = run_graft_workload(graph, /*routed=*/true, 404, 0.0);
  ASSERT_GT(routed.total.grafts, 0u);
  ASSERT_GE(routed.total.graft_messages, routed.total.grafts);
  EXPECT_GE(routed.total.graft_hops,
            routed.total.graft_messages - routed.total.grafts);
  EXPECT_LE(routed.total.graft_hops, routed.total.graft_messages);
}

TEST(RoutedGraftTest, ConvergesUnderLoss) {
  // 5% per-link loss: descent envelopes drop, the QoS 1 graft layer
  // retransmits, and every subscriber whose kSubscribeKind survived the
  // (unreliable, greedy-routed) control path must end up spanned by its
  // group's tree — the "no stranded subscriber" half of the acceptance
  // gate. Lost subscribes shrink membership, never strand it.
  for (const std::uint64_t seed : {411ULL, 412ULL}) {
    const auto graph = make_overlay(150, 3, seed);
    PubSubConfig config;
    config.seed = seed;
    config.routed_graft = true;
    config.loss.drop_probability = 0.05;
    PubSubSystem system(graph, config);
    constexpr GroupId kGroups = 4;
    for (GroupId g = 0; g < kGroups; ++g) {
      const PeerId root = system.manager().root_of(g);
      const auto members = pick_members(graph, root, 10, seed * 131 + g);
      for (std::size_t i = 0; i < members.size(); ++i) {
        const double when = i < 5 ? 0.001 * static_cast<double>(i + 1)
                                  : 3.0 + 0.05 * static_cast<double>(i + 1);
        system.subscribe_at(when, members[i], g);
      }
      system.publish_at(2.0, members[0], g);
      system.publish_at(8.0, members[1], g);
    }
    system.run();

    EXPECT_EQ(system.manager().inflight_graft_count(), 0u) << "seed " << seed;
    for (GroupId g = 0; g < kGroups; ++g) {
      // tree(g) refreshes: if an abort dirtied the cache, this is the
      // rebuild the abort deferred to — afterwards every registered
      // member must be spanned with its delivery flag set.
      const GroupTree* gt = system.manager().tree(g);
      ASSERT_NE(gt, nullptr) << "seed " << seed << " group " << g;
      EXPECT_EQ(gt->subscriber_count, gt->reached_subscribers)
          << "seed " << seed << " group " << g;
      for (PeerId p = 0; p < graph.size(); ++p)
        if (system.manager().is_subscribed(g, p))
          EXPECT_TRUE(gt->is_subscriber[p] && gt->tree.reached(p))
              << "seed " << seed << " group " << g << " peer " << p;
    }
    const auto net = system.simulator().stats();
    EXPECT_GT(net.control_envelopes, 0u) << "seed " << seed;
    EXPECT_GT(net.graft_hops, 0u) << "seed " << seed;
  }
}

TEST(RoutedGraftTest, UnsubscribeResubscribeRacingInFlightAcceptRebuilds) {
  // Manager-level replay of the accept race: the descent has attached the
  // subscriber but the accept is still "in flight" (the entry and its
  // (group, subscriber) guard are held) when an unsubscribe prunes the
  // subscriber back out of the still-clean tree and a re-subscribe is
  // blocked by that guard. graft_finish must notice the member is owed a
  // span the tree no longer gives and defer to a rebuild — the regression
  // was a clean, un-dirtied cache that never delivered to the member.
  const auto graph = make_overlay(100, 2, 430);
  GroupManager manager(graph);
  const GroupId g = 3;
  const PeerId root = manager.root_of(g);
  for (const PeerId m : pick_members(graph, root, 6, 555)) manager.subscribe(g, m);
  ASSERT_NE(manager.tree(g), nullptr);  // build + cache
  PeerId late = kInvalidPeer;
  for (PeerId p = 0; p < graph.size() && late == kInvalidPeer; ++p)
    if (p != root && !manager.is_subscribed(g, p) &&
        !manager.tree(g)->tree.reached(p))
      late = p;
  ASSERT_NE(late, kInvalidPeer);

  ASSERT_EQ(manager.subscribe_membership(g, late),
            GroupManager::SubscribeNeed::kGraft);
  const std::uint64_t id = manager.graft_begin(g, late, root);
  ASSERT_NE(id, 0u);
  PeerId current = root;
  for (std::size_t guard = 0; guard <= graph.size(); ++guard) {
    const auto advance = manager.graft_advance(id, current);
    ASSERT_NE(advance.status, GroupManager::GraftAdvance::Status::kFailed);
    if (advance.status == GroupManager::GraftAdvance::Status::kAttached) break;
    current = advance.next;
  }

  // Accept in flight: the membership churns first.
  manager.unsubscribe(g, late);
  ASSERT_EQ(manager.subscribe_membership(g, late),
            GroupManager::SubscribeNeed::kGraft);
  EXPECT_EQ(manager.graft_begin(g, late, root), 0u);  // guard still held

  // The accept lands: finish must flag the cache for rebuild.
  EXPECT_TRUE(manager.graft_finish(id));
  EXPECT_EQ(manager.inflight_graft_count(), 0u);
  const GroupTree* gt = manager.tree(g);  // the deferred rebuild
  ASSERT_NE(gt, nullptr);
  EXPECT_TRUE(gt->is_subscriber[late] && gt->tree.reached(late))
      << "re-subscribed member left unspanned by a clean cache";
}

TEST(RoutedGraftTest, ResubscribeIsIdempotentWithConcurrentDescent) {
  // A duplicate subscribe while a descent is in flight must neither start
  // a second descent for the same subscriber nor disturb the first.
  const auto graph = make_overlay(100, 2, 420);
  PubSubConfig config;
  config.seed = 420;
  PubSubSystem system(graph, config);
  const GroupId g = 1;
  const PeerId root = system.manager().root_of(g);
  const auto members = pick_members(graph, root, 6, 999);
  for (std::size_t i = 0; i + 1 < members.size(); ++i)
    system.subscribe_at(0.001 * static_cast<double>(i + 1), members[i], g);
  system.publish_at(2.0, members[0], g);
  const PeerId late = members.back();
  // Three back-to-back subscribes: the first starts the descent, the
  // rest land at the root while it is still in flight.
  system.subscribe_at(3.0, late, g);
  system.subscribe_at(3.005, late, g);
  system.subscribe_at(3.01, late, g);
  system.publish_at(5.0, members[1], g);
  system.run();

  const auto& stats = system.stats(g);
  EXPECT_EQ(stats.grafts, 1u);
  EXPECT_EQ(stats.graft_aborts, 0u);
  EXPECT_EQ(system.manager().inflight_graft_count(), 0u);
  const GroupTree* gt = system.manager().cached_tree(g);
  ASSERT_NE(gt, nullptr);
  EXPECT_TRUE(gt->is_subscriber[late] && gt->tree.reached(late));
}

}  // namespace
}  // namespace geomcast::groups
