#include "overlay/knowledge.hpp"

#include <gtest/gtest.h>

namespace geomcast::overlay {
namespace {

const geometry::Point kP1{1.0, 2.0};
const geometry::Point kP2{3.0, 4.0};

TEST(KnowledgeSetTest, StartsEmpty) {
  KnowledgeSet knowledge(5.0);
  EXPECT_EQ(knowledge.size(), 0u);
  EXPECT_FALSE(knowledge.knows(3));
  EXPECT_TRUE(knowledge.candidates().empty());
  EXPECT_DOUBLE_EQ(knowledge.tmax(), 5.0);
}

TEST(KnowledgeSetTest, HearRecordsPeer) {
  KnowledgeSet knowledge(5.0);
  knowledge.hear(7, kP1, 1.0);
  EXPECT_TRUE(knowledge.knows(7));
  EXPECT_EQ(knowledge.size(), 1u);
  const auto candidates = knowledge.candidates();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].id, 7u);
  EXPECT_EQ(candidates[0].point, kP1);
}

TEST(KnowledgeSetTest, ExpiryDropsStaleEntries) {
  // Paper: I(P) holds announcements from the previous Tmax seconds.
  KnowledgeSet knowledge(5.0);
  knowledge.hear(1, kP1, 0.0);
  knowledge.hear(2, kP2, 4.0);
  knowledge.expire(6.0);  // entry 1 heard 6s ago > Tmax, entry 2 only 2s ago
  EXPECT_FALSE(knowledge.knows(1));
  EXPECT_TRUE(knowledge.knows(2));
}

TEST(KnowledgeSetTest, BoundaryExactlyTmaxSurvives) {
  KnowledgeSet knowledge(5.0);
  knowledge.hear(1, kP1, 0.0);
  knowledge.expire(5.0);  // last_heard + Tmax == now: not yet stale
  EXPECT_TRUE(knowledge.knows(1));
  knowledge.expire(5.0001);
  EXPECT_FALSE(knowledge.knows(1));
}

TEST(KnowledgeSetTest, RefreshExtendsLifetime) {
  KnowledgeSet knowledge(5.0);
  knowledge.hear(1, kP1, 0.0);
  knowledge.hear(1, kP1, 4.0);  // periodic re-announcement
  knowledge.expire(8.0);
  EXPECT_TRUE(knowledge.knows(1));
}

TEST(KnowledgeSetTest, HearNeverMovesLastHeardBackwards) {
  // A delayed duplicate of an old announcement must not shorten the entry's
  // remaining lifetime.
  KnowledgeSet knowledge(5.0);
  knowledge.hear(1, kP1, 10.0);
  knowledge.hear(1, kP1, 2.0);  // stale duplicate arrives late
  knowledge.expire(12.0);
  EXPECT_TRUE(knowledge.knows(1));
}

TEST(KnowledgeSetTest, HearUpdatesCoordinates) {
  KnowledgeSet knowledge(5.0);
  knowledge.hear(1, kP1, 0.0);
  knowledge.hear(1, kP2, 1.0);  // peer re-announced with new identifier
  EXPECT_EQ(knowledge.candidates()[0].point, kP2);
}

TEST(KnowledgeSetTest, ForgetRemovesImmediately) {
  KnowledgeSet knowledge(5.0);
  knowledge.hear(1, kP1, 0.0);
  knowledge.forget(1);
  EXPECT_FALSE(knowledge.knows(1));
  EXPECT_EQ(knowledge.size(), 0u);
}

TEST(KnowledgeSetTest, CandidatesSortedById) {
  KnowledgeSet knowledge(5.0);
  knowledge.hear(9, kP1, 0.0);
  knowledge.hear(2, kP2, 0.0);
  knowledge.hear(5, kP1, 0.0);
  const auto candidates = knowledge.candidates();
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0].id, 2u);
  EXPECT_EQ(candidates[1].id, 5u);
  EXPECT_EQ(candidates[2].id, 9u);
}

}  // namespace
}  // namespace geomcast::overlay
