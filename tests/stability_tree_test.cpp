#include "stability/stable_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "geometry/random_points.hpp"
#include "overlay/equilibrium.hpp"
#include "overlay/hyperplane_k.hpp"
#include "overlay/orthant_sweep.hpp"
#include "stability/lifetime.hpp"
#include "util/rng.hpp"

namespace geomcast::stability {
namespace {

struct Workload {
  std::vector<geometry::Point> points;
  std::vector<double> departure_times;
};

Workload make_workload(std::size_t n, std::size_t dims, std::uint64_t seed) {
  util::Rng rng(seed);
  Workload w;
  w.points = lifetime_points(rng, n, dims, 1000.0, w.departure_times);
  return w;
}

TEST(LifetimeTest, FirstCoordinateIsDepartureTime) {
  const auto w = make_workload(50, 3, 1);
  for (std::size_t i = 0; i < w.points.size(); ++i)
    EXPECT_EQ(w.points[i][0], w.departure_times[i]);
}

TEST(LifetimeTest, DepartureTimesDistinct) {
  const auto w = make_workload(500, 2, 2);
  auto sorted = w.departure_times;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(LifetimeTest, ApplyRejectsDuplicates) {
  std::vector<geometry::Point> points{geometry::Point({0.0, 1.0}),
                                      geometry::Point({2.0, 3.0})};
  EXPECT_THROW(apply_lifetime_coordinate(points, {5.0, 5.0}), std::invalid_argument);
  EXPECT_THROW(apply_lifetime_coordinate(points, {5.0}), std::invalid_argument);
  EXPECT_NO_THROW(apply_lifetime_coordinate(points, {5.0, 6.0}));
  EXPECT_EQ(points[0][0], 5.0);
}

TEST(StableTreeTest, SizesMustMatch) {
  const auto w = make_workload(10, 2, 3);
  const auto graph =
      overlay::build_equilibrium(w.points, overlay::HyperplaneKSelector::orthogonal(2, 1));
  std::vector<double> wrong(w.departure_times.begin(), w.departure_times.end() - 1);
  EXPECT_THROW(build_stable_tree(graph, wrong), std::invalid_argument);
}

// The §3 structural claims over the same (D, K) grid the paper sweeps.
class StableTreePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(StableTreePropertyTest, FormsSingleTreeWithMonotoneLifetimes) {
  const auto [dims, k, seed] = GetParam();
  const auto w = make_workload(150, static_cast<std::size_t>(dims), seed);
  const overlay::OrthantSweepIndex index(w.points);
  const auto graph = index.graph_for_k(static_cast<std::size_t>(k));
  const auto tree = build_stable_tree(graph, w.departure_times);

  // "In each case, the preferred neighbour links indeed formed a tree."
  EXPECT_TRUE(tree.is_single_tree());
  ASSERT_EQ(tree.roots.size(), 1u);
  // Rooted at the peer with the largest T.
  const auto max_peer = static_cast<PeerId>(
      std::max_element(w.departure_times.begin(), w.departure_times.end()) -
      w.departure_times.begin());
  EXPECT_EQ(tree.roots[0], max_peer);
  // "T(A) > T(B) whenever A is the parent of B."
  EXPECT_TRUE(tree.lifetimes_monotone());
  // Exactly N-1 preferred links.
  std::size_t edges = 0;
  for (PeerId p = 0; p < tree.size(); ++p)
    if (tree.parent[p] != kInvalidPeer) ++edges;
  EXPECT_EQ(edges, tree.size() - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StableTreePropertyTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 7, 10), ::testing::Values(1, 3, 10, 50),
                       ::testing::Values(100u, 200u)));

TEST(StableTreeTest, MaxTPolicyPicksLargestNeighbor) {
  const auto w = make_workload(100, 2, 5);
  const overlay::OrthantSweepIndex index(w.points);
  const auto graph = index.graph_for_k(3);
  const auto tree = build_stable_tree(graph, w.departure_times, PreferredPolicy::kMaxT);
  for (PeerId p = 0; p < graph.size(); ++p) {
    if (tree.parent[p] == kInvalidPeer) continue;
    for (PeerId q : graph.neighbors(p))
      EXPECT_LE(w.departure_times[q], w.departure_times[tree.parent[p]])
          << "peer " << p << " ignored a longer-lived neighbour";
  }
}

TEST(StableTreeTest, MinAbovePolicyPicksSmallestEligible) {
  const auto w = make_workload(100, 2, 6);
  const overlay::OrthantSweepIndex index(w.points);
  const auto graph = index.graph_for_k(3);
  const auto tree =
      build_stable_tree(graph, w.departure_times, PreferredPolicy::kMinAboveOwnT);
  EXPECT_TRUE(tree.lifetimes_monotone());
  for (PeerId p = 0; p < graph.size(); ++p) {
    if (tree.parent[p] == kInvalidPeer) continue;
    const double chosen = w.departure_times[tree.parent[p]];
    for (PeerId q : graph.neighbors(p)) {
      const double t = w.departure_times[q];
      if (t > w.departure_times[p]) {
        EXPECT_GE(t, chosen);
      }
    }
  }
}

TEST(StableTreeTest, ClosestAbovePolicyStaysMonotone) {
  const auto w = make_workload(100, 3, 7);
  const overlay::OrthantSweepIndex index(w.points);
  const auto graph = index.graph_for_k(2);
  const auto tree =
      build_stable_tree(graph, w.departure_times, PreferredPolicy::kClosestAboveOwnT);
  EXPECT_TRUE(tree.lifetimes_monotone());
  EXPECT_TRUE(tree.is_single_tree());
}

TEST(StableTreeTest, DiameterOfChain) {
  // Points on a line with increasing T: K=1 orthant selection links
  // consecutive peers; max-T preferred parent gives a path graph.
  std::vector<geometry::Point> points;
  std::vector<double> times;
  for (int i = 0; i < 10; ++i) {
    points.push_back(geometry::Point({static_cast<double>(i), static_cast<double>(i % 3)}));
    times.push_back(static_cast<double>(i));
  }
  const auto graph =
      overlay::build_equilibrium(points, overlay::HyperplaneKSelector::orthogonal(2, 1));
  const auto tree = build_stable_tree(graph, times);
  EXPECT_TRUE(tree.is_single_tree());
  EXPECT_GE(tree_diameter(tree), 2u);
  EXPECT_LE(tree_diameter(tree), 9u);
}

TEST(StableTreeTest, StarDiameterIsTwo) {
  // Everyone adjacent to everyone (K huge): all peers pick the global max
  // => a star with diameter 2.
  const auto w = make_workload(40, 2, 8);
  const overlay::OrthantSweepIndex index(w.points);
  const auto graph = index.graph_for_k(1000);
  const auto tree = build_stable_tree(graph, w.departure_times);
  EXPECT_EQ(tree_diameter(tree), 2u);
  EXPECT_EQ(tree.max_degree(), graph.size() - 1);
}

TEST(StableTreeTest, DiameterHandlesForests) {
  // Disconnected overlay => forest; diameter of largest component.
  std::vector<geometry::Point> points{
      geometry::Point({0.0, 0.0}), geometry::Point({1.0, 1.0}),
      geometry::Point({100.0, 100.0}), geometry::Point({101.0, 101.0})};
  std::vector<double> times{1.0, 2.0, 3.0, 4.0};
  // Two disjoint pairs.
  overlay::OverlayGraph graph(points, {{1}, {}, {3}, {}});
  const auto tree = build_stable_tree(graph, times);
  EXPECT_FALSE(tree.is_single_tree());
  EXPECT_EQ(tree.roots.size(), 2u);
  EXPECT_EQ(tree_diameter(tree), 1u);
  EXPECT_TRUE(tree.lifetimes_monotone());
}

// The sweep fast path must agree with the graph-based construction for
// every policy across the (D, K) grid.
class FromSelectionsAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FromSelectionsAgreementTest, MatchesGraphConstruction) {
  const auto [dims, k] = GetParam();
  const auto w = make_workload(150, static_cast<std::size_t>(dims), 400 + k);
  const overlay::OrthantSweepIndex index(w.points);
  const auto selections = index.select_k(static_cast<std::size_t>(k));
  const auto graph = index.graph_for_k(static_cast<std::size_t>(k));
  for (auto policy : {PreferredPolicy::kMaxT, PreferredPolicy::kMinAboveOwnT,
                      PreferredPolicy::kClosestAboveOwnT}) {
    const auto fast =
        build_stable_tree_from_selections(selections, w.points, w.departure_times, policy);
    const auto reference = build_stable_tree(graph, w.departure_times, policy);
    EXPECT_EQ(fast.parent, reference.parent) << to_string(policy);
    EXPECT_EQ(fast.roots, reference.roots) << to_string(policy);
    EXPECT_EQ(tree_diameter(fast), tree_diameter(reference)) << to_string(policy);
    EXPECT_EQ(fast.max_degree(), reference.max_degree()) << to_string(policy);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FromSelectionsAgreementTest,
                         ::testing::Combine(::testing::Values(2, 4, 7, 10),
                                            ::testing::Values(1, 4, 20)));

TEST(StableTreeTest, PolicyNamesAreStable) {
  EXPECT_EQ(to_string(PreferredPolicy::kMaxT), "max-T");
  EXPECT_EQ(to_string(PreferredPolicy::kMinAboveOwnT), "min-above-own-T");
  EXPECT_EQ(to_string(PreferredPolicy::kClosestAboveOwnT), "closest-above-own-T");
}

}  // namespace
}  // namespace geomcast::stability
