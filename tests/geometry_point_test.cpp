#include "geometry/point.hpp"

#include <gtest/gtest.h>

#include "geometry/distance.hpp"
#include "geometry/random_points.hpp"
#include "util/rng.hpp"

namespace geomcast::geometry {
namespace {

TEST(PointTest, DefaultZeroInitialised) {
  Point p(3);
  EXPECT_EQ(p.dims(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(p[i], 0.0);
}

TEST(PointTest, InitializerList) {
  Point p{1.0, 2.0, 3.0};
  EXPECT_EQ(p.dims(), 3u);
  EXPECT_EQ(p[0], 1.0);
  EXPECT_EQ(p[1], 2.0);
  EXPECT_EQ(p[2], 3.0);
}

TEST(PointTest, MutableAccess) {
  Point p(2);
  p[0] = 5.5;
  p[1] = -1.0;
  EXPECT_EQ(p[0], 5.5);
  EXPECT_EQ(p[1], -1.0);
}

TEST(PointTest, EqualityRequiresSameDims) {
  EXPECT_NE(Point({1.0, 2.0}), Point({1.0, 2.0, 0.0}));
  EXPECT_EQ(Point({1.0, 2.0}), Point({1.0, 2.0}));
  EXPECT_NE(Point({1.0, 2.0}), Point({1.0, 2.5}));
}

TEST(PointTest, Minus) {
  const auto diff = Point({5.0, 3.0}).minus(Point({2.0, 7.0}));
  EXPECT_EQ(diff[0], 3.0);
  EXPECT_EQ(diff[1], -4.0);
}

TEST(PointTest, ToStringFormatsCoordinates) {
  EXPECT_EQ(Point({1.5, 2.0}).to_string(), "(1.5, 2)");
}

TEST(DistanceTest, L1KnownValue) {
  EXPECT_DOUBLE_EQ(l1_distance(Point({0.0, 0.0}), Point({3.0, 4.0})), 7.0);
}

TEST(DistanceTest, L2KnownValue) {
  EXPECT_DOUBLE_EQ(l2_distance(Point({0.0, 0.0}), Point({3.0, 4.0})), 5.0);
  EXPECT_DOUBLE_EQ(l2_distance_sq(Point({0.0, 0.0}), Point({3.0, 4.0})), 25.0);
}

TEST(DistanceTest, LInfKnownValue) {
  EXPECT_DOUBLE_EQ(linf_distance(Point({0.0, 0.0}), Point({3.0, 4.0})), 4.0);
}

TEST(DistanceTest, DispatchMatchesDirectFunctions) {
  const Point a{1.0, -2.0, 3.0};
  const Point b{-4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(distance(Metric::kL1, a, b), l1_distance(a, b));
  EXPECT_DOUBLE_EQ(distance(Metric::kL2, a, b), l2_distance(a, b));
  EXPECT_DOUBLE_EQ(distance(Metric::kLInf, a, b), linf_distance(a, b));
}

TEST(DistanceTest, MetricNamesRoundTrip) {
  for (auto metric : {Metric::kL1, Metric::kL2, Metric::kLInf})
    EXPECT_EQ(metric_from_string(to_string(metric)), metric);
  EXPECT_THROW((void)metric_from_string("hamming"), std::invalid_argument);
}

// Metric axioms checked over random point pairs for every metric and
// dimension the paper uses.
class MetricPropertyTest : public ::testing::TestWithParam<std::tuple<Metric, int>> {};

TEST_P(MetricPropertyTest, Axioms) {
  const auto [metric, dims] = GetParam();
  util::Rng rng(1000 + dims);
  const auto points = random_points(rng, 30, static_cast<std::size_t>(dims), 100.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_DOUBLE_EQ(distance(metric, points[i], points[i]), 0.0);
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      const double d_ij = distance(metric, points[i], points[j]);
      EXPECT_GT(d_ij, 0.0);  // distinct points
      EXPECT_DOUBLE_EQ(d_ij, distance(metric, points[j], points[i]));  // symmetry
      for (std::size_t k = 0; k < points.size(); ++k) {
        const double via = distance(metric, points[i], points[k]) +
                           distance(metric, points[k], points[j]);
        EXPECT_LE(d_ij, via + 1e-9);  // triangle inequality
      }
    }
  }
}

TEST_P(MetricPropertyTest, NormOrdering) {
  // L-inf <= L2 <= L1 for every pair.
  const auto [metric, dims] = GetParam();
  (void)metric;
  util::Rng rng(2000 + dims);
  const auto points = random_points(rng, 20, static_cast<std::size_t>(dims), 100.0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      const double l1 = l1_distance(points[i], points[j]);
      const double l2 = l2_distance(points[i], points[j]);
      const double li = linf_distance(points[i], points[j]);
      EXPECT_LE(li, l2 + 1e-9);
      EXPECT_LE(l2, l1 + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMetricsAndDims, MetricPropertyTest,
    ::testing::Combine(::testing::Values(Metric::kL1, Metric::kL2, Metric::kLInf),
                       ::testing::Values(2, 3, 5, 10)));

}  // namespace
}  // namespace geomcast::geometry
