// Satellite coverage for the loss path of run_multicast_protocol: dropped
// requests must be counted, surface as coverage holes the validator can
// see, and the whole failure trajectory must be reproducible from the
// seed. (The happy path lives in multicast_protocol_test.cpp.)
#include <gtest/gtest.h>

#include "geometry/random_points.hpp"
#include "multicast/protocol.hpp"
#include "multicast/validator.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/rng.hpp"

namespace geomcast::multicast {
namespace {

overlay::OverlayGraph make_overlay(std::size_t n, std::size_t dims, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto points = geometry::random_points(rng, n, dims, 100.0);
  return overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
}

TEST(MulticastProtocolLossTest, DroppedRequestsAreCountedAndLeaveHoles) {
  const auto graph = make_overlay(80, 2, 501);
  sim::LossModel loss;
  loss.drop_probability = 0.25;
  const auto result = run_multicast_protocol(graph, 0, {}, sim::LatencyModel::constant(0.01),
                                             loss, /*seed=*/11);
  EXPECT_GT(result.dropped_requests, 0u);
  EXPECT_LT(result.build.tree.reached_count(), graph.size());

  // Every dropped request is an unreached subtree the validator reports.
  const auto report = validate_build(graph, result.build);
  EXPECT_FALSE(report.all_reached);
  EXPECT_EQ(report.reached_count, result.build.tree.reached_count());
  EXPECT_LT(report.reached_count, report.peer_count);
  // Sent = delivered edges + drops: the accounting must close.
  EXPECT_EQ(result.build.request_messages,
            result.build.tree.edge_count() + result.dropped_requests +
                result.build.duplicate_deliveries);
}

TEST(MulticastProtocolLossTest, LossTrajectoryIsDeterministicUnderFixedSeed) {
  const auto graph = make_overlay(70, 3, 502);
  sim::LossModel loss;
  loss.drop_probability = 0.3;
  auto run_once = [&]() {
    return run_multicast_protocol(graph, 2, {}, sim::LatencyModel::uniform(0.01, 0.2),
                                  loss, /*seed=*/23);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.dropped_requests, b.dropped_requests);
  EXPECT_EQ(a.build.request_messages, b.build.request_messages);
  EXPECT_DOUBLE_EQ(a.completion_time, b.completion_time);
  for (overlay::PeerId p = 0; p < graph.size(); ++p)
    EXPECT_EQ(a.build.tree.parent(p), b.build.tree.parent(p)) << "peer " << p;
}

TEST(MulticastProtocolLossTest, DifferentSeedsExploreDifferentFailures) {
  const auto graph = make_overlay(70, 2, 503);
  sim::LossModel loss;
  loss.drop_probability = 0.3;
  const auto a = run_multicast_protocol(graph, 0, {}, sim::LatencyModel::constant(0.01),
                                        loss, /*seed=*/1);
  const auto b = run_multicast_protocol(graph, 0, {}, sim::LatencyModel::constant(0.01),
                                        loss, /*seed=*/2);
  // Not a hard guarantee for arbitrary seeds, but pinned here: distinct
  // seeds must be able to produce distinct failure patterns.
  EXPECT_NE(a.build.tree.reached_count(), b.build.tree.reached_count());
}

TEST(MulticastProtocolLossTest, ZeroLossControlIsComplete) {
  const auto graph = make_overlay(80, 2, 504);
  const auto result = run_multicast_protocol(graph, 0, {}, sim::LatencyModel::constant(0.01),
                                             sim::LossModel{}, /*seed=*/11);
  EXPECT_EQ(result.dropped_requests, 0u);
  EXPECT_EQ(result.build.tree.reached_count(), graph.size());
  EXPECT_TRUE(validate_build(graph, result.build).valid());
}

}  // namespace
}  // namespace geomcast::multicast
