#include "groups/group_manager.hpp"

#include <gtest/gtest.h>

#include "geometry/random_points.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/rng.hpp"

namespace geomcast::groups {
namespace {

overlay::OverlayGraph make_overlay(std::size_t n, std::size_t dims, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto points = geometry::random_points(rng, n, dims, 100.0);
  return overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
}

/// Some peer that is not the group's root and not yet subscribed.
PeerId fresh_peer(GroupManager& manager, GroupId group, std::size_t n) {
  for (PeerId p = 0; p < n; ++p)
    if (p != manager.root_of(group) && !manager.is_subscribed(group, p) &&
        manager.alive(p))
      return p;
  return kInvalidPeer;
}

TEST(GroupManagerTest, SubscribePublishUnsubscribeRoundTrip) {
  const auto graph = make_overlay(60, 2, 201);
  GroupManager manager(graph);
  const GroupId g = 42;

  const PeerId a = fresh_peer(manager, g, graph.size());
  manager.subscribe(g, a);
  const PeerId b = fresh_peer(manager, g, graph.size());
  manager.subscribe(g, b);
  EXPECT_EQ(manager.subscriber_count(g), 2u);

  const auto first = manager.publish(g);
  EXPECT_EQ(first.delivered, 2u);
  EXPECT_GT(first.payload_messages, 0u);

  manager.unsubscribe(g, b);
  EXPECT_EQ(manager.subscriber_count(g), 1u);
  const auto second = manager.publish(g);
  EXPECT_EQ(second.delivered, 1u);
  EXPECT_LE(second.payload_messages, first.payload_messages);

  const auto& stats = manager.stats(g);
  EXPECT_EQ(stats.publishes, 2u);
  EXPECT_EQ(stats.subscribes, 2u);
  EXPECT_EQ(stats.unsubscribes, 1u);
  EXPECT_DOUBLE_EQ(stats.delivery_ratio(), 1.0);
}

TEST(GroupManagerTest, TreeCachedAcrossPublishes) {
  const auto graph = make_overlay(60, 2, 202);
  GroupManager manager(graph);
  const GroupId g = 1;
  manager.subscribe(g, fresh_peer(manager, g, graph.size()));
  manager.subscribe(g, fresh_peer(manager, g, graph.size()));

  (void)manager.publish(g);
  (void)manager.publish(g);
  (void)manager.publish(g);
  const auto& stats = manager.stats(g);
  EXPECT_EQ(stats.tree_builds, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
}

TEST(GroupManagerTest, LateSubscriberIsGraftedNotRebuilt) {
  const auto graph = make_overlay(80, 2, 203);
  GroupConfig config;
  config.rebuild_threshold = 10.0;  // keep drift from forcing a rebuild here
  GroupManager manager(graph, config);
  const GroupId g = 7;
  for (int i = 0; i < 5; ++i) manager.subscribe(g, fresh_peer(manager, g, graph.size()));
  (void)manager.publish(g);
  ASSERT_EQ(manager.stats(g).tree_builds, 1u);

  const PeerId late = fresh_peer(manager, g, graph.size());
  manager.subscribe(g, late);
  const auto receipt = manager.publish(g);
  const auto& stats = manager.stats(g);
  EXPECT_EQ(stats.tree_builds, 1u) << "graft should not trigger a rebuild";
  EXPECT_EQ(stats.grafts, 1u);
  EXPECT_EQ(receipt.delivered, 6u);
}

TEST(GroupManagerTest, RepairDriftTriggersRebuildButExactChangesDoNot) {
  const auto graph = make_overlay(80, 2, 204);
  GroupConfig config;
  config.rebuild_threshold = 0.25;
  GroupManager manager(graph, config);
  const GroupId g = 9;
  std::vector<PeerId> members;
  for (int i = 0; i < 8; ++i) {
    const PeerId p = fresh_peer(manager, g, graph.size());
    manager.subscribe(g, p);
    members.push_back(p);
  }
  (void)manager.publish(g);
  ASSERT_EQ(manager.stats(g).tree_builds, 1u);

  // Grafts/prunes are exact and must never force a rebuild, however many.
  for (int i = 0; i < 6; ++i) manager.subscribe(g, fresh_peer(manager, g, graph.size()));
  (void)manager.publish(g);
  EXPECT_EQ(manager.stats(g).tree_builds, 1u);

  // Repairs deviate from a fresh build and accumulate drift past
  // 0.25 * count, so the next publish rebuilds.
  for (int i = 0; i < 6; ++i) manager.handle_departure(members[static_cast<std::size_t>(i)]);
  (void)manager.publish(g);
  EXPECT_EQ(manager.stats(g).tree_builds, 2u);
}

TEST(GroupManagerTest, DepartureRepairsMembershipAndTree) {
  const auto graph = make_overlay(80, 2, 205);
  GroupManager manager(graph);
  const GroupId g = 3;
  std::vector<PeerId> members;
  for (int i = 0; i < 8; ++i) {
    const PeerId p = fresh_peer(manager, g, graph.size());
    manager.subscribe(g, p);
    members.push_back(p);
  }
  (void)manager.publish(g);

  const PeerId departed = members.front();
  manager.handle_departure(departed);
  EXPECT_FALSE(manager.alive(departed));
  EXPECT_FALSE(manager.is_subscribed(g, departed));
  EXPECT_EQ(manager.subscriber_count(g), 7u);

  const auto receipt = manager.publish(g);
  EXPECT_EQ(receipt.delivered, 7u);
  EXPECT_DOUBLE_EQ(manager.stats(g).delivery_ratio(), 1.0);
}

TEST(GroupManagerTest, NonTreeNeighbourDepartureStalesZonesForGrafts) {
  const auto graph = make_overlay(80, 2, 209);
  GroupManager manager(graph);
  const GroupId g = 13;
  for (int i = 0; i < 5; ++i) manager.subscribe(g, fresh_peer(manager, g, graph.size()));
  const GroupTree* gt = manager.tree(g);
  ASSERT_NE(gt, nullptr);
  ASSERT_EQ(manager.stats(g).tree_builds, 1u);

  // A peer outside the tree whose departure shrinks an in-tree peer's
  // candidate set: a replayed recursion could pick different delegates, so
  // the next subscribe must rebuild rather than graft against stale zones.
  PeerId outsider = kInvalidPeer;
  for (PeerId p = 0; p < graph.size() && outsider == kInvalidPeer; ++p) {
    if (gt->tree.reached(p)) continue;
    for (PeerId q : graph.neighbors(p))
      if (gt->tree.reached(q)) {
        outsider = p;
        break;
      }
  }
  ASSERT_NE(outsider, kInvalidPeer);
  manager.handle_departure(outsider);

  const PeerId late = fresh_peer(manager, g, graph.size());
  manager.subscribe(g, late);
  (void)manager.publish(g);
  const auto& stats = manager.stats(g);
  EXPECT_EQ(stats.grafts, 0u);
  EXPECT_EQ(stats.tree_builds, 2u);
}

TEST(GroupManagerTest, RootDepartureMigratesGroup) {
  const auto graph = make_overlay(60, 2, 206);
  GroupManager manager(graph);
  const GroupId g = 11;
  for (int i = 0; i < 4; ++i) manager.subscribe(g, fresh_peer(manager, g, graph.size()));
  (void)manager.publish(g);

  const PeerId old_root = manager.root_of(g);
  const std::size_t subscribers_before =
      manager.subscriber_count(g) - (manager.is_subscribed(g, old_root) ? 1 : 0);
  manager.handle_departure(old_root);
  EXPECT_NE(manager.root_of(g), old_root);
  EXPECT_EQ(manager.stats(g).root_migrations, 1u);

  const auto receipt = manager.publish(g);
  EXPECT_EQ(receipt.delivered, subscribers_before);
}

TEST(GroupManagerTest, EmptyGroupPublishesNothing) {
  const auto graph = make_overlay(40, 2, 207);
  GroupManager manager(graph);
  EXPECT_EQ(manager.tree(99), nullptr);
  const auto receipt = manager.publish(99);
  EXPECT_EQ(receipt.delivered, 0u);
  EXPECT_EQ(receipt.payload_messages, 0u);
}

TEST(GroupManagerTest, DistinctGroupsGetIndependentTreesAndStats) {
  const auto graph = make_overlay(80, 2, 208);
  GroupManager manager(graph);
  manager.subscribe(1, fresh_peer(manager, 1, graph.size()));
  manager.subscribe(2, fresh_peer(manager, 2, graph.size()));
  (void)manager.publish(1);
  EXPECT_EQ(manager.stats(1).publishes, 1u);
  EXPECT_EQ(manager.stats(2).publishes, 0u);
  const auto total = manager.total_stats();
  EXPECT_EQ(total.publishes, 1u);
  EXPECT_EQ(total.subscribes, 2u);
  EXPECT_EQ(manager.known_groups().size(), 2u);
}

}  // namespace
}  // namespace geomcast::groups
