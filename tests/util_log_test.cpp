#include "util/log.hpp"

#include <gtest/gtest.h>

#include <iostream>
#include <sstream>

namespace geomcast::util {
namespace {

/// Redirects std::cerr for the duration of a test.
class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  [[nodiscard]] std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_ = LogLevel::kWarn;
};

TEST_F(LogTest, MessagesBelowThresholdSuppressed) {
  set_log_level(LogLevel::kWarn);
  CerrCapture capture;
  log_info() << "should not appear";
  EXPECT_TRUE(capture.text().empty());
}

TEST_F(LogTest, MessagesAtThresholdEmitted) {
  set_log_level(LogLevel::kWarn);
  CerrCapture capture;
  log_warn() << "watch out: " << 42;
  EXPECT_NE(capture.text().find("WARN"), std::string::npos);
  EXPECT_NE(capture.text().find("watch out: 42"), std::string::npos);
}

TEST_F(LogTest, ErrorAlwaysAboveWarn) {
  set_log_level(LogLevel::kWarn);
  CerrCapture capture;
  log_error() << "boom";
  EXPECT_NE(capture.text().find("ERROR"), std::string::npos);
}

TEST_F(LogTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  CerrCapture capture;
  log_error() << "even errors";
  EXPECT_TRUE(capture.text().empty());
}

TEST_F(LogTest, DebugVisibleWhenEnabled) {
  set_log_level(LogLevel::kDebug);
  CerrCapture capture;
  log_debug() << "details";
  EXPECT_NE(capture.text().find("DEBUG"), std::string::npos);
}

TEST_F(LogTest, LevelRoundTrips) {
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

}  // namespace
}  // namespace geomcast::util
