#include "geometry/rect.hpp"

#include <gtest/gtest.h>

#include "geometry/random_points.hpp"
#include "util/rng.hpp"

namespace geomcast::geometry {
namespace {

TEST(RectTest, WholeSpaceContainsEverything) {
  const auto space = Rect::whole_space(3);
  EXPECT_TRUE(space.contains_interior(Point({0.0, 0.0, 0.0})));
  EXPECT_TRUE(space.contains_interior(Point({1e18, -1e18, 42.0})));
  EXPECT_FALSE(space.interior_empty());
}

TEST(RectTest, CubeBounds) {
  const auto cube = Rect::cube(2, 0.0, 10.0);
  EXPECT_TRUE(cube.contains_interior(Point({5.0, 5.0})));
  EXPECT_FALSE(cube.contains_interior(Point({0.0, 5.0})));   // boundary is out
  EXPECT_TRUE(cube.contains_closed(Point({0.0, 5.0})));      // but closed-in
  EXPECT_FALSE(cube.contains_closed(Point({-0.1, 5.0})));
}

TEST(RectTest, SpannedByOrdersCorners) {
  const auto rect = Rect::spanned_by(Point({5.0, 1.0}), Point({2.0, 9.0}));
  EXPECT_EQ(rect.lo(0), 2.0);
  EXPECT_EQ(rect.hi(0), 5.0);
  EXPECT_EQ(rect.lo(1), 1.0);
  EXPECT_EQ(rect.hi(1), 9.0);
}

TEST(RectTest, SpannedByContainsCornersClosedOnly) {
  const Point a{1.0, 2.0};
  const Point b{3.0, 4.0};
  const auto rect = Rect::spanned_by(a, b);
  EXPECT_TRUE(rect.contains_closed(a));
  EXPECT_TRUE(rect.contains_closed(b));
  EXPECT_FALSE(rect.contains_interior(a));
  EXPECT_FALSE(rect.contains_interior(b));
  EXPECT_TRUE(rect.contains_interior(Point({2.0, 3.0})));
}

TEST(RectTest, InteriorEmptyWhenDegenerate) {
  const auto degenerate = Rect::spanned_by(Point({1.0, 2.0}), Point({1.0, 5.0}));
  EXPECT_TRUE(degenerate.interior_empty());  // zero width in dim 0
  EXPECT_FALSE(Rect::cube(2, 0.0, 1.0).interior_empty());
}

TEST(RectTest, IntersectOverlapping) {
  const auto a = Rect::cube(2, 0.0, 10.0);
  auto b = Rect::cube(2, 5.0, 15.0);
  const auto inter = a.intersect(b);
  EXPECT_EQ(inter.lo(0), 5.0);
  EXPECT_EQ(inter.hi(0), 10.0);
  EXPECT_FALSE(inter.interior_empty());
}

TEST(RectTest, IntersectDisjointIsEmpty) {
  const auto a = Rect::cube(2, 0.0, 1.0);
  const auto b = Rect::cube(2, 2.0, 3.0);
  EXPECT_TRUE(a.intersect(b).interior_empty());
  EXPECT_TRUE(a.interior_disjoint(b));
}

TEST(RectTest, TouchingRectsHaveDisjointInteriors) {
  const auto a = Rect::cube(1, 0.0, 1.0);
  const auto b = Rect::cube(1, 1.0, 2.0);
  EXPECT_TRUE(a.interior_disjoint(b));
}

TEST(RectTest, IntersectWithWholeSpaceIsIdentity) {
  const auto a = Rect::cube(3, -2.0, 7.0);
  EXPECT_EQ(a.intersect(Rect::whole_space(3)), a);
}

TEST(RectTest, HalfOpenUnboundedSides) {
  // Zones use sides like (-inf, x) and (x, +inf).
  Rect rect(2);
  rect.set_lo(0, -kInf);
  rect.set_hi(0, 5.0);
  rect.set_lo(1, 3.0);
  rect.set_hi(1, kInf);
  EXPECT_TRUE(rect.contains_interior(Point({-1e12, 4.0})));
  EXPECT_FALSE(rect.contains_interior(Point({5.0, 4.0})));
  EXPECT_FALSE(rect.contains_interior(Point({0.0, 3.0})));
  EXPECT_TRUE(rect.contains_interior(Point({0.0, 1e12})));
}

TEST(RectTest, SubsetRelation) {
  const auto outer = Rect::cube(2, 0.0, 10.0);
  const auto inner = Rect::cube(2, 2.0, 8.0);
  EXPECT_TRUE(inner.interior_subset_of(outer));
  EXPECT_FALSE(outer.interior_subset_of(inner));
  EXPECT_TRUE(outer.interior_subset_of(outer));
}

TEST(RectTest, EmptySubsetOfAnything) {
  const auto empty = Rect::spanned_by(Point({1.0, 1.0}), Point({1.0, 2.0}));
  EXPECT_TRUE(empty.interior_subset_of(Rect::cube(2, 100.0, 200.0)));
}

TEST(RectTest, EqualityAndInequality) {
  EXPECT_EQ(Rect::cube(2, 0.0, 1.0), Rect::cube(2, 0.0, 1.0));
  EXPECT_NE(Rect::cube(2, 0.0, 1.0), Rect::cube(2, 0.0, 2.0));
  EXPECT_NE(Rect::cube(2, 0.0, 1.0), Rect::cube(3, 0.0, 1.0));
}

TEST(RectTest, ToStringShowsInfinities) {
  const auto space = Rect::whole_space(1);
  EXPECT_EQ(space.to_string(), "(-inf, +inf)");
  EXPECT_EQ(Rect::cube(1, 0.0, 2.5).to_string(), "(0, 2.5)");
}

// Property: intersection is the set-theoretic AND for sampled points.
class RectIntersectionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RectIntersectionPropertyTest, IntersectionMatchesMembership) {
  const auto dims = static_cast<std::size_t>(GetParam());
  util::Rng rng(99 + dims);
  for (int trial = 0; trial < 50; ++trial) {
    Rect a(dims), b(dims);
    for (std::size_t i = 0; i < dims; ++i) {
      const double a_lo = rng.uniform(0.0, 50.0);
      const double b_lo = rng.uniform(0.0, 50.0);
      a.set_lo(i, a_lo);
      a.set_hi(i, a_lo + rng.uniform(1.0, 50.0));
      b.set_lo(i, b_lo);
      b.set_hi(i, b_lo + rng.uniform(1.0, 50.0));
    }
    const Rect inter = a.intersect(b);
    const auto samples = random_points(rng, 100, dims, 100.0);
    for (const auto& p : samples) {
      EXPECT_EQ(inter.contains_interior(p),
                a.contains_interior(p) && b.contains_interior(p));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, RectIntersectionPropertyTest, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace geomcast::geometry
