// Shared workload helpers for the groups/QoS test batteries: seeded
// overlay construction, deterministic membership selection, and dry-run
// leaf discovery. Mid-wave forwarder kills live in the library
// (groups/failure_injection.hpp) so the bench drives the identical
// scenario. Header-only so the per-file test executables (tests/*.cpp
// glob) stay one-source each.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/random_points.hpp"
#include "groups/pubsub.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/rng.hpp"

namespace geomcast::groups::testutil {

inline overlay::OverlayGraph make_overlay(std::size_t n, std::size_t dims,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  const auto points = geometry::random_points(rng, n, dims, 100.0);
  return overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
}

/// Subscribes `count` distinct non-root members to `group` (staggered in
/// (0, small)) and returns them; the pick is a pure function of `seed`.
inline std::vector<PeerId> subscribe_members(PubSubSystem& system,
                                             const overlay::OverlayGraph& graph,
                                             GroupId group, std::size_t count,
                                             std::uint64_t seed) {
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  const PeerId root = system.manager().root_of(group);
  std::vector<bool> chosen(graph.size(), false);
  std::vector<PeerId> members;
  while (members.size() < count) {
    const auto p = static_cast<PeerId>(rng.next_below(graph.size()));
    if (chosen[p] || p == root) continue;
    chosen[p] = true;
    members.push_back(p);
    system.subscribe_at(0.001 * static_cast<double>(members.size()), p, group);
  }
  return members;
}

/// A leaf subscriber of `group`'s cached tree (excluding `exclude`), found
/// by replaying the same deterministic workload losslessly — the tree is a
/// pure function of (graph, root, membership), so the pick stays valid for
/// lossy reruns of the same seed.
inline PeerId find_leaf_subscriber(const overlay::OverlayGraph& graph, GroupId group,
                                   std::size_t member_count, std::uint64_t seed,
                                   std::size_t publishes,
                                   PeerId exclude = kInvalidPeer) {
  PubSubConfig config;
  config.seed = seed;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  PubSubSystem system(graph, config);
  const auto members = subscribe_members(system, graph, group, member_count, seed);
  for (std::size_t i = 0; i < publishes; ++i)
    system.publish_at(2.0 + 0.1 * static_cast<double>(i), members[0], group);
  system.run();
  const GroupTree* gt = system.manager().cached_tree(group);
  if (gt == nullptr) return kInvalidPeer;
  for (const PeerId p : members)
    if (p != exclude && gt->tree.reached(p) && gt->tree.children(p).empty()) return p;
  return kInvalidPeer;
}

}  // namespace geomcast::groups::testutil
