#include "geometry/hyperplane.hpp"

#include <gtest/gtest.h>

#include <set>

#include "geometry/orthant.hpp"
#include "geometry/random_points.hpp"
#include "util/rng.hpp"

namespace geomcast::geometry {
namespace {

TEST(HyperplaneTest, EmptyArrangementHasOneRegion) {
  const auto arrangement = HyperplaneArrangement::empty(3);
  EXPECT_EQ(arrangement.plane_count(), 0u);
  util::Rng rng(1);
  const auto points = random_points(rng, 20, 3, 10.0);
  const auto key0 = arrangement.region_of(points[0], points[1]);
  for (std::size_t i = 2; i < points.size(); ++i)
    EXPECT_EQ(arrangement.region_of(points[0], points[i]), key0);
}

TEST(HyperplaneTest, OrthogonalPlaneCountEqualsDims) {
  for (std::size_t dims : {2u, 3u, 5u, 10u})
    EXPECT_EQ(HyperplaneArrangement::orthogonal(dims).plane_count(), dims);
}

TEST(HyperplaneTest, OrthogonalRegionsMatchOrthants) {
  // Orthogonal arrangement regions and orthant codes must induce the same
  // partition (identical groupings, possibly different key values).
  const auto arrangement = HyperplaneArrangement::orthogonal(3);
  util::Rng rng(7);
  const auto points = random_points(rng, 60, 3, 100.0);
  const Point& ego = points[0];
  for (std::size_t i = 1; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      const bool same_region = arrangement.region_of(ego, points[i]) ==
                               arrangement.region_of(ego, points[j]);
      const bool same_orthant =
          orthant_of(ego, points[i]) == orthant_of(ego, points[j]);
      EXPECT_EQ(same_region, same_orthant);
    }
  }
}

TEST(HyperplaneTest, TernaryPlaneCount) {
  // (3^D - 1) / 2 planes.
  EXPECT_EQ(HyperplaneArrangement::ternary(2).plane_count(), 4u);
  EXPECT_EQ(HyperplaneArrangement::ternary(3).plane_count(), 13u);
  EXPECT_EQ(HyperplaneArrangement::ternary(4).plane_count(), 40u);
}

TEST(HyperplaneTest, TernaryRejectsLargeDims) {
  EXPECT_THROW(HyperplaneArrangement::ternary(7), std::invalid_argument);
}

TEST(HyperplaneTest, TernaryNormalsHavePositiveLeadingCoefficient) {
  const auto arrangement = HyperplaneArrangement::ternary(3);
  for (const auto& normal : arrangement.normals()) {
    double first = 0.0;
    for (double c : normal) {
      if (c != 0.0) {
        first = c;
        break;
      }
    }
    EXPECT_GT(first, 0.0);
  }
}

TEST(HyperplaneTest, TernaryRefinesOrthogonal) {
  // The ternary arrangement contains the axis planes, so its partition
  // refines the orthant partition: same ternary region => same orthant.
  const auto ternary = HyperplaneArrangement::ternary(3);
  util::Rng rng(8);
  const auto points = random_points(rng, 60, 3, 100.0);
  const Point& ego = points[0];
  for (std::size_t i = 1; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (ternary.region_of(ego, points[i]) == ternary.region_of(ego, points[j])) {
        EXPECT_EQ(orthant_of(ego, points[i]), orthant_of(ego, points[j]));
      }
    }
  }
}

TEST(HyperplaneTest, RegionInvariantUnderTranslation) {
  // region_of(p, q) only depends on q - p.
  const auto arrangement = HyperplaneArrangement::ternary(2);
  const Point p1{10.0, 20.0};
  const Point q1{13.0, 17.0};
  const Point p2{-5.0, 4.0};
  const Point q2{-2.0, 1.0};  // same offset (3, -3)
  EXPECT_EQ(arrangement.region_of(p1, q1), arrangement.region_of(p2, q2));
}

TEST(HyperplaneTest, AntipodalPointsGetDistinctRegions) {
  const auto arrangement = HyperplaneArrangement::orthogonal(2);
  const Point ego{0.0, 0.0};
  EXPECT_NE(arrangement.region_of(ego, Point({1.0, 1.0})),
            arrangement.region_of(ego, Point({-1.0, -1.0})));
}

TEST(HyperplaneTest, CustomArrangementValidatesDims) {
  EXPECT_THROW(HyperplaneArrangement::custom(2, {{1.0, 0.0, 0.0}}), std::invalid_argument);
  EXPECT_NO_THROW(HyperplaneArrangement::custom(3, {{1.0, 0.0, 0.0}}));
}

TEST(HyperplaneTest, CustomDiagonalPlaneSplitsSpace) {
  const auto arrangement = HyperplaneArrangement::custom(2, {{1.0, -1.0}});
  const Point ego{0.0, 0.0};
  // Above the diagonal vs below the diagonal.
  EXPECT_NE(arrangement.region_of(ego, Point({2.0, 1.0})),
            arrangement.region_of(ego, Point({1.0, 2.0})));
  EXPECT_EQ(arrangement.region_of(ego, Point({2.0, 1.0})),
            arrangement.region_of(ego, Point({5.0, 1.0})));
}

TEST(HyperplaneTest, MaxRegionCount) {
  EXPECT_EQ(HyperplaneArrangement::orthogonal(3).max_region_count(), 8u);
  EXPECT_EQ(HyperplaneArrangement::empty(3).max_region_count(), 1u);
}

TEST(HyperplaneTest, OrthogonalRegionCountObservedAtMost2PowD) {
  const auto arrangement = HyperplaneArrangement::orthogonal(4);
  util::Rng rng(9);
  const auto points = random_points(rng, 500, 4, 100.0);
  std::set<std::uint64_t> keys;
  for (std::size_t i = 1; i < points.size(); ++i)
    keys.insert(arrangement.region_of(points[0], points[i]).value);
  EXPECT_LE(keys.size(), 16u);
  EXPECT_GT(keys.size(), 8u);  // 500 random points should hit most orthants
}

}  // namespace
}  // namespace geomcast::geometry
