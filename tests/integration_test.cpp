// End-to-end scenarios across the whole stack: gossip-built overlays feeding
// the multicast protocol, lifetime workloads driving stability trees on the
// same coordinates, and cross-path equivalences.
#include <gtest/gtest.h>

#include "analysis/graph_metrics.hpp"
#include "geometry/random_points.hpp"
#include "multicast/protocol.hpp"
#include "multicast/space_partition.hpp"
#include "multicast/validator.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "overlay/gossip.hpp"
#include "overlay/hyperplane_k.hpp"
#include "stability/churn.hpp"
#include "stability/lifetime.hpp"
#include "stability/stable_tree.hpp"
#include "util/rng.hpp"

namespace geomcast {
namespace {

TEST(IntegrationTest, GossipOverlayThenMulticastProtocol) {
  // Full §2 pipeline at message level: build the overlay with live gossip,
  // then run the tree-construction protocol over it.
  util::Rng rng(901);
  const auto points = geometry::random_points(rng, 30, 2, 100.0);
  overlay::EmptyRectSelector selector;
  const auto overlay_result =
      overlay::build_overlay_with_gossip(points, selector, overlay::GossipConfig{}, 902);
  ASSERT_TRUE(overlay_result.converged);
  ASSERT_TRUE(analysis::is_connected(overlay_result.graph));

  const auto mc = multicast::run_multicast_protocol(overlay_result.graph, 0);
  // Gossip-scoped knowledge can differ from the oracle topology, but the
  // equilibrium it reaches is still an empty-rect fixed point of the local
  // views, and in practice covers everyone at this scale.
  EXPECT_EQ(mc.build.tree.reached_count(), overlay_result.graph.size());
  EXPECT_EQ(mc.build.request_messages, overlay_result.graph.size() - 1);
  EXPECT_EQ(mc.build.duplicate_deliveries, 0u);
}

TEST(IntegrationTest, MulticastCheaperThanGossipRound) {
  // Perspective check the paper implies: one tree construction (N-1 msgs)
  // is far below the cost of even a single BR-hop announce round.
  util::Rng rng(903);
  const auto points = geometry::random_points(rng, 25, 2, 100.0);
  overlay::EmptyRectSelector selector;
  const auto overlay_result =
      overlay::build_overlay_with_gossip(points, selector, overlay::GossipConfig{}, 904);
  EXPECT_GT(overlay_result.announce_messages, overlay_result.graph.size() - 1);
}

TEST(IntegrationTest, StabilityTreeOnGossipBuiltOverlay) {
  // §3 end-to-end: lifetime coordinates, gossip-maintained Orthogonal-K
  // overlay, preferred-neighbour tree, full churn playback.
  util::Rng rng(905);
  std::vector<double> departure_times;
  const auto points = stability::lifetime_points(rng, 25, 3, 1000.0, departure_times);
  const auto selector = overlay::HyperplaneKSelector::orthogonal(3, 2);
  const auto overlay_result =
      overlay::build_overlay_with_gossip(points, selector, overlay::GossipConfig{}, 906);
  ASSERT_TRUE(overlay_result.converged);

  const auto tree = stability::build_stable_tree(overlay_result.graph, departure_times);
  EXPECT_TRUE(tree.lifetimes_monotone());
  // Gossip equilibria under BR-scoped knowledge still give every non-max
  // peer a longer-lived neighbour here; verify and play the departures.
  ASSERT_TRUE(tree.is_single_tree());
  const auto churn = stability::simulate_departures(tree.parent, departure_times);
  EXPECT_TRUE(churn.departures_always_leaves());
}

TEST(IntegrationTest, SameWorkloadBothSections) {
  // The two contributions compose: build one overlay per section on the
  // same coordinates (with T as the first coordinate) and run both.
  util::Rng rng(907);
  std::vector<double> departure_times;
  const auto points = stability::lifetime_points(rng, 150, 2, 1000.0, departure_times);

  // §2 on the empty-rect overlay.
  const auto er_graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  const auto mc = multicast::build_multicast_tree(er_graph, 0);
  EXPECT_TRUE(multicast::validate_build(er_graph, mc).valid());

  // §3 on the Orthogonal-K overlay.
  const auto ok_graph =
      overlay::build_equilibrium(points, overlay::HyperplaneKSelector::orthogonal(2, 3));
  const auto tree = stability::build_stable_tree(ok_graph, departure_times);
  EXPECT_TRUE(tree.is_single_tree());
  EXPECT_TRUE(
      stability::simulate_departures(tree.parent, departure_times).departures_always_leaves());
}

TEST(IntegrationTest, StableTreeAlsoWorksOnEmptyRectOverlay) {
  // The empty-rect overlay also guarantees a neighbour in every non-empty
  // orthant, so the §3 argument carries over to the §2 overlay.
  util::Rng rng(908);
  std::vector<double> departure_times;
  const auto points = stability::lifetime_points(rng, 200, 2, 1000.0, departure_times);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  const auto tree = stability::build_stable_tree(graph, departure_times);
  EXPECT_TRUE(tree.is_single_tree());
  EXPECT_TRUE(tree.lifetimes_monotone());
}

TEST(IntegrationTest, EndToEndDeterminism) {
  auto run_once = [] {
    util::Rng rng(909);
    const auto points = geometry::random_points(rng, 100, 3, 100.0);
    const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
    const auto mc = multicast::build_multicast_tree(graph, 42);
    std::vector<overlay::PeerId> parents;
    for (overlay::PeerId p = 0; p < graph.size(); ++p) parents.push_back(mc.tree.parent(p));
    return parents;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace geomcast
