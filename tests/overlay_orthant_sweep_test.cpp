#include "overlay/orthant_sweep.hpp"

#include <gtest/gtest.h>

#include "geometry/random_points.hpp"
#include "overlay/equilibrium.hpp"
#include "overlay/hyperplane_k.hpp"
#include "util/rng.hpp"

namespace geomcast::overlay {
namespace {

// The index must reproduce HyperplaneKSelector::orthogonal exactly for
// every K — it exists purely as a speedup for the Fig 1 d/e sweeps.
class OrthantSweepAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OrthantSweepAgreementTest, MatchesDirectSelectorForAllK) {
  const auto [dims, k] = GetParam();
  util::Rng rng(100 + dims * 10 + k);
  const auto points =
      geometry::random_points(rng, 120, static_cast<std::size_t>(dims), 100.0);
  const OrthantSweepIndex index(points);
  const auto direct = build_equilibrium(
      points, HyperplaneKSelector::orthogonal(static_cast<std::size_t>(dims),
                                              static_cast<std::size_t>(k)));
  EXPECT_EQ(index.graph_for_k(static_cast<std::size_t>(k)), direct);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OrthantSweepAgreementTest,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8),
                                            ::testing::Values(1, 2, 5, 20)));

TEST(OrthantSweepTest, SelectionsGrowMonotonicallyWithK) {
  util::Rng rng(55);
  const auto points = geometry::random_points(rng, 150, 3, 100.0);
  const OrthantSweepIndex index(points);
  auto smaller = index.select_k(2);
  auto larger = index.select_k(4);
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (PeerId q : smaller[p])
      EXPECT_TRUE(std::binary_search(larger[p].begin(), larger[p].end(), q))
          << "K=2 selection of " << p << " not inside K=4 selection";
  }
}

TEST(OrthantSweepTest, HugeKSelectsEveryone) {
  util::Rng rng(56);
  const auto points = geometry::random_points(rng, 40, 2, 100.0);
  const OrthantSweepIndex index(points);
  const auto all = index.select_k(1000);
  for (std::size_t p = 0; p < points.size(); ++p)
    EXPECT_EQ(all[p].size(), points.size() - 1);
}

TEST(OrthantSweepTest, MetricIsRespected) {
  util::Rng rng(57);
  const auto points = geometry::random_points(rng, 100, 2, 100.0);
  const OrthantSweepIndex l1_index(points, geometry::Metric::kL1);
  const auto direct =
      build_equilibrium(points, HyperplaneKSelector::orthogonal(2, 3, geometry::Metric::kL1));
  EXPECT_EQ(l1_index.graph_for_k(3), direct);
}

TEST(OrthantSweepTest, EmptyAndTinyInputs) {
  const OrthantSweepIndex empty({});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.select_k(3).empty());

  const OrthantSweepIndex single({geometry::Point({1.0, 2.0})});
  const auto out = single.select_k(3);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].empty());
}

}  // namespace
}  // namespace geomcast::overlay
