#include "overlay/routing.hpp"

#include <gtest/gtest.h>

#include "analysis/graph_metrics.hpp"
#include "geometry/random_points.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "overlay/k_closest.hpp"
#include "util/rng.hpp"

namespace geomcast::overlay {
namespace {

OverlayGraph make_overlay(std::size_t n, std::size_t dims, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto points = geometry::random_points(rng, n, dims, 100.0);
  return build_equilibrium(points, EmptyRectSelector{});
}

TEST(RoutingTest, SourceEqualsDestination) {
  const auto graph = make_overlay(20, 2, 91);
  const auto result = route_greedy(graph, 4, 4);
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.hops(), 0u);
  EXPECT_EQ(result.path, (std::vector<PeerId>{4}));
}

TEST(RoutingTest, OutOfRangeThrows) {
  const auto graph = make_overlay(10, 2, 92);
  EXPECT_THROW(route_greedy(graph, 0, 10), std::invalid_argument);
  EXPECT_THROW(route_greedy(graph, 10, 0), std::invalid_argument);
}

// The headline property: greedy routing over empty-rectangle equilibria
// always delivers, for every source/destination pair, across dimensions.
class RoutingDeliveryTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(RoutingDeliveryTest, AlwaysDelivers) {
  const auto [dims, seed] = GetParam();
  const auto graph = make_overlay(80, static_cast<std::size_t>(dims), seed);
  for (PeerId s = 0; s < graph.size(); s += 7) {
    for (PeerId d = 0; d < graph.size(); d += 11) {
      const auto result = route_greedy(graph, s, d);
      ASSERT_TRUE(result.delivered) << "s=" << s << " d=" << d << " dims=" << dims;
      EXPECT_EQ(result.path.front(), s);
      EXPECT_EQ(result.path.back(), d);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RoutingDeliveryTest,
                         ::testing::Combine(::testing::Values(2, 3, 4, 5),
                                            ::testing::Values(93u, 94u)));

TEST(RoutingTest, EveryHopUsesAnOverlayEdgeAndShrinksL1) {
  const auto graph = make_overlay(100, 3, 95);
  const auto result = route_greedy(graph, 0, 99);
  ASSERT_TRUE(result.delivered);
  const auto& target = graph.point(99);
  for (std::size_t i = 0; i + 1 < result.path.size(); ++i) {
    EXPECT_TRUE(graph.has_edge(result.path[i], result.path[i + 1]));
    EXPECT_LT(geometry::l1_distance(graph.point(result.path[i + 1]), target),
              geometry::l1_distance(graph.point(result.path[i]), target));
  }
}

TEST(RoutingTest, NoPeerVisitedTwice) {
  const auto graph = make_overlay(100, 2, 96);
  for (PeerId d = 1; d < 20; ++d) {
    const auto result = route_greedy(graph, 0, d);
    ASSERT_TRUE(result.delivered);
    auto sorted = result.path;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST(RoutingTest, HopsAtLeastBfsDistance) {
  const auto graph = make_overlay(120, 2, 97);
  const auto bfs = analysis::bfs_depths(graph, 3);
  for (PeerId d = 0; d < graph.size(); d += 13) {
    const auto result = route_greedy(graph, 3, d);
    ASSERT_TRUE(result.delivered);
    EXPECT_GE(result.hops(), bfs[d]);
  }
}

TEST(RoutingTest, StrandsGracefullyOnNonCoveringOverlay) {
  // A K-closest overlay lacks the corridor guarantee: greedy must report
  // failure (empty progress set or hop budget), never loop forever.
  util::Rng rng(98);
  const auto points = geometry::random_points(rng, 100, 2, 100.0);
  const auto graph = build_equilibrium(points, KClosestSelector(2));
  std::size_t delivered = 0;
  for (PeerId s = 0; s < 20; ++s) {
    const auto result = route_greedy(graph, s, 99);
    if (result.delivered) ++delivered;
    EXPECT_LE(result.path.size(), 101u);  // never longer than the peer count
  }
  // With K=2 the overlay is fragmented corridors; most routes should fail.
  EXPECT_LT(delivered, 20u);
}

TEST(RoutingTest, MaxHopsBudgetRespected) {
  const auto graph = make_overlay(200, 2, 99);
  const auto result = route_greedy(graph, 0, 199, /*max_hops=*/1);
  // Either delivered in one hop (they happen to be adjacent) or cut off.
  if (!result.delivered) EXPECT_LE(result.path.size(), 2u);
}

}  // namespace
}  // namespace geomcast::overlay
