// Oracle-equivalence battery for the sharded event loop.
//
// PubSubConfig::sim_shards > 1 partitions peers into contiguous coordinate
// regions, each with its own event lane and worker thread, under a
// conservative synchronized-window loop (lookahead = the latency model's
// minimum delay). The engineering claim mirrors sim_core's: the knob is
// *bit-passive*. sim_shards = 1 is the unmodified single-threaded loop —
// the oracle — and for every shard count the battery demands
//   (1) identical delivered sequences: every (peer, group, seq, time)
//       tuple, in probe-invocation order,
//   (2) byte-identical stats JSON (GroupStats + NetworkStats + HopStats —
//       obs::to_json is canonical, so one differing counter fails), and
//   (3) the same run() event count.
// Cells span QoS 0/1/2, stochastic loss, churn, batching, a warm
// root-kill, and a seed sweep, so every lane-split subsystem (per-hop
// pending tables, per-lane stat deltas, the log_ext replay of
// floating-point latency accounting, cross-shard mailbox merges) is
// exercised. A Simulator-level test additionally pins the mailbox merge
// order under same-timestamp cross-lane collisions.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "groups/pubsub.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "groups_test_util.hpp"

namespace geomcast::groups {
namespace {

using testutil::make_overlay;
using testutil::subscribe_members;

struct CellResult {
  std::vector<std::tuple<PeerId, GroupId, std::uint64_t, double>> delivered;
  std::string stats_json;
  std::size_t events = 0;
};

/// Runs one seeded workload and captures everything the equivalence gate
/// compares. The workload is a pure function of (config, knobs below);
/// only config.sim_shards varies between runs of a cell.
CellResult run_cell(const overlay::OverlayGraph& graph, PubSubConfig config,
                    std::size_t groups, std::size_t members, std::size_t publishes,
                    std::size_t departures, bool kill_root, bool with_trace) {
  PubSubSystem system(graph, config);
  obs::TraceSink trace(4096);
  if (with_trace) system.set_trace_sink(&trace);
  CellResult out;
  system.set_delivery_probe(
      [&out](PeerId peer, GroupId group, std::uint64_t seq, double time) {
        out.delivered.emplace_back(peer, group, seq, time);
      });
  std::vector<std::vector<PeerId>> cell_members(groups);
  for (GroupId g = 0; g < groups; ++g)
    cell_members[g] = subscribe_members(system, graph, g, members, config.seed + g);
  for (GroupId g = 0; g < groups; ++g) {
    const PeerId root = system.manager().root_of(g);
    for (std::size_t i = 0; i < publishes; ++i)
      system.publish_at(2.0 + 0.05 * static_cast<double>(i) +
                            0.001 * static_cast<double>(g),
                        root, g);
  }
  std::size_t departed = 0;
  for (GroupId g = 0; g < groups && departed < departures; ++g)
    for (auto it = cell_members[g].rbegin();
         it != cell_members[g].rend() && departed < departures; ++it, ++departed)
      system.depart_at(2.2 + 0.05 * static_cast<double>(departed), *it);
  if (kill_root) system.depart_at(2.26, system.manager().root_of(0));
  out.events = system.run();
  if (with_trace) {
    EXPECT_FALSE(trace.events().empty());
  }

  std::string json = obs::to_json(system.total_stats());
  json += '\n';
  json += obs::to_json(system.simulator().stats());
  json += '\n';
  json += obs::to_json(system.hop_stats());
  out.stats_json = std::move(json);
  return out;
}

/// shards = 1 is definitionally the untouched classic loop; every other
/// shard count must reproduce it bit for bit. 7 deliberately exceeds a
/// balanced split of the smaller graphs' regions and does not divide the
/// peer count, catching any region-boundary arithmetic slips.
void expect_shard_invariant(const overlay::OverlayGraph& graph, PubSubConfig config,
                            std::size_t groups, std::size_t members,
                            std::size_t publishes, std::size_t departures = 0,
                            bool kill_root = false, bool with_trace = false) {
  config.sim_shards = 1;
  const auto oracle = run_cell(graph, config, groups, members, publishes, departures,
                               kill_root, with_trace);
  EXPECT_FALSE(oracle.delivered.empty());
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}, std::size_t{7}}) {
    config.sim_shards = shards;
    const auto sharded = run_cell(graph, config, groups, members, publishes,
                                  departures, kill_root, with_trace);
    EXPECT_EQ(sharded.delivered, oracle.delivered) << "shards=" << shards;
    EXPECT_EQ(sharded.stats_json, oracle.stats_json) << "shards=" << shards;
    EXPECT_EQ(sharded.events, oracle.events) << "shards=" << shards;
  }
}

TEST(SimShardedLoopTest, QoS0BatchedLossless) {
  const auto graph = make_overlay(150, 2, 1501);
  PubSubConfig config;
  config.seed = 211;
  config.batch_window = 0.1;
  config.sim_core = true;
  expect_shard_invariant(graph, config, /*groups=*/4, /*members=*/10,
                         /*publishes=*/6);
}

TEST(SimShardedLoopTest, QoS1LossyBatchedWithChurn) {
  const auto graph = make_overlay(150, 2, 1502);
  PubSubConfig config;
  config.seed = 223;
  config.reliability.qos = multicast::QoS::kAcked;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 4;
  config.batch_window = 0.1;
  config.loss.drop_probability = 0.03;
  config.sim_core = true;
  expect_shard_invariant(graph, config, 4, 10, 6, /*departures=*/6);
}

TEST(SimShardedLoopTest, QoS2LossyRepairPath) {
  const auto graph = make_overlay(120, 3, 1503);
  PubSubConfig config;
  config.seed = 227;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 4;
  config.batch_window = 0.05;
  config.loss.drop_probability = 0.04;
  config.sim_core = true;
  expect_shard_invariant(graph, config, 3, 12, 8);
}

TEST(SimShardedLoopTest, WarmRootKillFailover) {
  const auto graph = make_overlay(150, 2, 1504);
  PubSubConfig config;
  config.seed = 229;
  config.reliability.qos = multicast::QoS::kEndToEnd;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 4;
  config.batch_window = 0.1;
  config.warm_failover = true;
  config.sim_core = true;
  expect_shard_invariant(graph, config, 3, 12, 6, /*departures=*/0,
                         /*kill_root=*/true);
}

TEST(SimShardedLoopTest, SeedSweepQoS1ClassicQueue) {
  // Several seeds, and deliberately on the classic heap queue + per-seq
  // dedup (sim_core off): the sharded loop must be bit-passive over both
  // event-queue implementations.
  const auto graph = make_overlay(130, 2, 1505);
  for (const std::uint64_t seed : {233u, 239u, 241u}) {
    PubSubConfig config;
    config.seed = seed;
    config.reliability.qos = multicast::QoS::kAcked;
    config.reliability.ack_timeout = 0.05;
    config.reliability.max_retries = 4;
    config.loss.drop_probability = 0.02;
    expect_shard_invariant(graph, config, 3, 8, 5);
  }
}

TEST(SimShardedLoopTest, TracedRunCollapsesLaneBuffers) {
  // Per-lane trace buffers merge at every barrier; the run must complete
  // with a non-empty sink and the same delivered/stats invariants.
  const auto graph = make_overlay(120, 2, 1506);
  PubSubConfig config;
  config.seed = 231;
  config.reliability.qos = multicast::QoS::kAcked;
  config.reliability.ack_timeout = 0.05;
  config.reliability.max_retries = 4;
  config.sim_core = true;
  expect_shard_invariant(graph, config, 3, 10, 5, /*departures=*/0,
                         /*kill_root=*/false, /*with_trace=*/true);
}

TEST(SimShardedLoopTest, ShardMetricsAccountEveryEvent) {
  const auto graph = make_overlay(150, 2, 1507);
  PubSubConfig config;
  config.seed = 237;
  config.sim_shards = 4;
  config.sim_core = true;
  PubSubSystem system(graph, config);
  for (GroupId g = 0; g < 3; ++g) subscribe_members(system, graph, g, 10, 300 + g);
  for (GroupId g = 0; g < 3; ++g)
    system.publish_at(2.0, system.manager().root_of(g), g);
  const std::size_t events = system.run();
  const auto& metrics = system.simulator().shard_metrics();
  ASSERT_EQ(metrics.lane_events.size(), system.simulator().worker_lanes() + 1);
  std::size_t accounted = 0;
  for (const std::size_t n : metrics.lane_events) accounted += n;
  EXPECT_EQ(accounted, events);
  EXPECT_GT(metrics.windows, 0u);
  EXPECT_GT(metrics.instants, 0u);
  EXPECT_GE(metrics.barrier_wait_seconds, 0.0);
}

TEST(SimShardedLoopTest, RejectsZeroLookahead) {
  const auto graph = make_overlay(40, 2, 1508);
  PubSubConfig config;
  config.sim_shards = 2;
  config.latency = sim::LatencyModel::constant(0.0);
  EXPECT_THROW({ PubSubSystem system(graph, config); }, std::invalid_argument);
}

TEST(SimShardedLoopTest, RejectsTimersBelowLookahead) {
  const auto graph = make_overlay(40, 2, 1509);
  PubSubConfig config;
  config.sim_shards = 2;
  config.reliability.qos = multicast::QoS::kAcked;
  config.reliability.ack_timeout = 0.001;  // < min_delay = 0.01
  EXPECT_THROW({ PubSubSystem system(graph, config); }, std::invalid_argument);
}

}  // namespace
}  // namespace geomcast::groups

namespace geomcast::sim {
namespace {

/// Collision target: records arrival order of every payload byte-string.
class CollectorNode final : public Node {
 public:
  explicit CollectorNode(NodeId id) : Node(id) {}
  void on_message(Simulator&, const Envelope& envelope) override {
    got.push_back(std::any_cast<std::string>(envelope.payload));
  }
  std::vector<std::string> got;
};

/// Fans a second volley back at node 0 so cross-lane sends collide at
/// identical timestamps there.
class FanNode final : public Node {
 public:
  explicit FanNode(NodeId id) : Node(id) {}
  void on_message(Simulator& sim, const Envelope& envelope) override {
    const auto& tag = std::any_cast<const std::string&>(envelope.payload);
    sim.send(id(), 0, /*kind=*/2, tag + "-echo");
  }
};

std::vector<std::string> run_collision(std::size_t workers) {
  Simulator sim;
  sim.network().set_latency(LatencyModel::constant(0.25));
  CollectorNode sink(0);
  sim.add_node(sink);
  std::vector<std::unique_ptr<FanNode>> fans;
  for (NodeId id = 1; id <= 6; ++id) {
    fans.push_back(std::make_unique<FanNode>(id));
    sim.add_node(*fans.back());
  }
  if (workers > 0) {
    // Every node to its own home lane, round-robin; node 0 stays on the
    // control lane so worker->0 sends are genuine cross-shard mailbox
    // traffic.
    static const auto route = [](void* ctx, const Envelope& envelope) -> std::uint32_t {
      const auto lanes = *static_cast<const std::size_t*>(ctx);
      if (envelope.to == 0) return 0;
      return static_cast<std::uint32_t>((envelope.to - 1) % lanes) + 1;
    };
    static std::size_t lanes_ctx;
    lanes_ctx = workers;
    sim.configure_shards(workers, route, &lanes_ctx);
  }
  // All six fan nodes get a same-timestamp kick; their echoes land on node
  // 0 at the identical instant, from different lanes when sharded. The
  // merge must reproduce the classic (time, order) sequence.
  for (NodeId id = 1; id <= 6; ++id)
    sim.send(0, id, /*kind=*/1, std::string("m") + std::to_string(id));
  sim.run_until_idle();
  return sink.got;
}

TEST(SimShardedLoopTest, MailboxMergeOrderPinnedUnderCollisions) {
  const auto oracle = run_collision(0);
  ASSERT_EQ(oracle.size(), 6u);
  for (const std::size_t workers : {std::size_t{2}, std::size_t{3}, std::size_t{6}}) {
    EXPECT_EQ(run_collision(workers), oracle) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace geomcast::sim
