// Batching-equivalence battery for the coalesced publish pipeline
// (ISSUE 4): range admission through the SubscriberWindow, range
// retention, root-side coalescing behaviour, and the headline golden
// pins — batched runs must deliver the identical (peer, group, seq) set
// as unbatched at every QoS rung, on clean links, under 5% loss, and
// across a mid-wave forwarder kill, while paying a fraction of the
// envelopes.
#include "groups/pubsub.hpp"

#include <gtest/gtest.h>

#include <any>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "groups/failure_injection.hpp"
#include "groups/group_manager.hpp"
#include "groups_test_util.hpp"

namespace geomcast::groups {
namespace {

using testutil::make_overlay;
using testutil::subscribe_members;

// ---------------------------------------------------- window range tests ----

TEST(SubscriberWindowRangeTest, InOrderRangeReleasesWholesale) {
  SubscriberWindow window;
  auto arrival = window.observe_range(0, 7);
  EXPECT_TRUE(arrival.pre_window.empty());
  EXPECT_TRUE(arrival.new_gaps.empty());
  EXPECT_EQ(arrival.released, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(window.next_expected(), 8u);
  EXPECT_EQ(window.held_count(), 0u);
}

TEST(SubscriberWindowRangeTest, RangeInitializesAtItsLowSeq) {
  SubscriberWindow window;
  const auto arrival = window.observe_range(16, 19);
  EXPECT_EQ(arrival.released, (std::vector<std::uint64_t>{16, 17, 18, 19}));
  EXPECT_EQ(window.next_expected(), 20u);
}

TEST(SubscriberWindowRangeTest, AheadRangeOpensPerSeqGapsAndBackfills) {
  SubscriberWindow window;
  (void)window.observe_range(0, 3);
  auto arrival = window.observe_range(8, 11);  // a whole batch went missing
  EXPECT_EQ(arrival.new_gaps, (std::vector<std::uint64_t>{4, 5, 6, 7}));
  EXPECT_TRUE(arrival.released.empty());
  EXPECT_EQ(window.gap_count(), 4u);
  EXPECT_EQ(window.held_count(), 4u);

  arrival = window.observe_range(4, 7);  // the lost batch backfills
  EXPECT_TRUE(arrival.new_gaps.empty());
  EXPECT_EQ(arrival.released,
            (std::vector<std::uint64_t>{4, 5, 6, 7, 8, 9, 10, 11}));
  EXPECT_EQ(window.next_expected(), 12u);
  EXPECT_EQ(window.gap_count(), 0u);
  EXPECT_EQ(window.held_count(), 0u);
}

TEST(SubscriberWindowRangeTest, StraddlingRangeSplitsAtTheHead) {
  SubscriberWindow window;
  (void)window.observe_range(0, 2);
  (void)window.observe_range(5, 6);  // gaps {3, 4}
  (void)window.abandon(3);
  (void)window.abandon(4);  // head skips to 7
  EXPECT_EQ(window.next_expected(), 7u);
  // A straggler range covering the abandoned seqs and fresh ones: the
  // below-head part releases out of band, the rest goes through the
  // window.
  const auto arrival = window.observe_range(3, 8);
  EXPECT_EQ(arrival.pre_window, (std::vector<std::uint64_t>{3, 4, 5, 6}));
  EXPECT_EQ(arrival.released, (std::vector<std::uint64_t>{7, 8}));
  EXPECT_EQ(window.next_expected(), 9u);
}

TEST(SubscriberWindowRangeTest, ReorderBoundForceAbandonsAcrossARange) {
  SubscriberWindow window(/*reorder_limit=*/4);
  (void)window.observe_range(0, 0);
  // 1..2 go missing; the wide held range overflows the bound and forces
  // the oldest gaps out.
  const auto arrival = window.observe_range(3, 8);
  EXPECT_EQ(arrival.new_gaps, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(arrival.forced_abandoned, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(arrival.released, (std::vector<std::uint64_t>{3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(window.next_expected(), 9u);
  EXPECT_EQ(window.gap_count(), 0u);
}

TEST(SubscriberWindowRangeTest, SingleSeqObserveIsTheDegenerateRange) {
  SubscriberWindow a, b;
  for (const std::uint64_t seq : {0ull, 2ull, 1ull, 5ull, 3ull, 4ull}) {
    const auto left = a.observe(seq);
    const auto right = b.observe_range(seq, seq);
    EXPECT_EQ(left.released, right.released);
    EXPECT_EQ(left.new_gaps, right.new_gaps);
  }
  EXPECT_EQ(a.next_expected(), b.next_expected());
}

// -------------------------------------------------- retained-range tests ----

TEST(RetainedBufferRangeTest, FindCoversTheWholeRange) {
  RetainedBuffer buffer(16);
  EXPECT_EQ(buffer.retain(8, 15, std::any{1}), 0u);
  EXPECT_EQ(buffer.find(7), nullptr);
  for (std::uint64_t s = 8; s <= 15; ++s) ASSERT_NE(buffer.find(s), nullptr);
  EXPECT_EQ(buffer.find(16), nullptr);
  EXPECT_EQ(buffer.size(), 8u);
  EXPECT_EQ(buffer.entry_count(), 1u);
}

TEST(RetainedBufferRangeTest, CapacityIsCountedInSeqsNotEntries) {
  // A range wave costs its width, so batching cannot inflate the memory
  // bound the retention window promises.
  RetainedBuffer buffer(8);
  EXPECT_EQ(buffer.retain(0, 7, std::any{1}), 0u);
  EXPECT_EQ(buffer.retain(8, 15, std::any{2}), 8u);  // whole first range out
  EXPECT_EQ(buffer.size(), 8u);
  EXPECT_EQ(buffer.find(0), nullptr);
  ASSERT_NE(buffer.find(12), nullptr);
  EXPECT_EQ(std::any_cast<int>(*buffer.find(12)), 2);
}

TEST(RetainedBufferRangeTest, OverWideRangeEvictsItself) {
  RetainedBuffer buffer(4);
  EXPECT_EQ(buffer.retain(0, 7, std::any{1}), 8u);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.find(3), nullptr);
}

// ------------------------------------------------- coalescing behaviour ----

/// One delivered application-level message.
using DeliveryKey = std::tuple<PeerId, GroupId, std::uint64_t>;

struct WorkloadResult {
  std::set<DeliveryKey> delivered;
  std::uint64_t delivery_count = 0;  // probe firings; == set size iff no dupes
  GroupStats stats;
};

/// The shared seeded workload: 2 groups x 12 subscribers on a 96-peer
/// overlay, a warm publish per group, then three bursts of 8 back-to-back
/// publishes. `midwave` adds a dedicated root-published wave with a
/// forwarder kill plus flush waves (the severed-subtree scenario).
///
/// `loss` applies to the DATA plane only (payload/ack/NACK/repair kinds):
/// batched and unbatched runs send different envelope sequences, so any
/// loss on the control plane would drop different subscribe/publish
/// requests in the two runs and the published seq sets themselves would
/// diverge — that is workload divergence, not pipeline divergence. With
/// the memberships and publishes pinned equal, QoS 2 completeness makes
/// the delivered sets comparable envelope-by-envelope fates aside.
WorkloadResult run_workload(const overlay::OverlayGraph& graph, multicast::QoS qos,
                            double loss, double batch_window, std::size_t max_batch,
                            bool midwave = false) {
  PubSubConfig config;
  config.seed = 7;
  if (loss > 0.0) {
    auto rng = std::make_shared<util::Rng>(0x10555ULL);
    config.loss.drop_if = [rng, loss](const sim::Envelope& envelope) {
      if (envelope.kind == kSubscribeKind || envelope.kind == kUnsubscribeKind ||
          envelope.kind == kPublishKind)
        return false;
      return rng->chance(loss);
    };
  }
  config.reliability.qos = qos;
  config.reliability.ack_timeout = 0.05;
  config.batch_window = batch_window;
  config.max_batch = max_batch;
  PubSubSystem system(graph, config);
  WorkloadResult result;
  system.set_delivery_probe(
      [&result](PeerId peer, GroupId group, std::uint64_t seq, double) {
        result.delivered.emplace(peer, group, seq);
        ++result.delivery_count;
      });
  std::vector<bool> member_anywhere(graph.size(), false);
  for (GroupId g = 0; g < 2; ++g) {
    const auto members = subscribe_members(system, graph, g, 12, /*seed=*/31 + g);
    for (const PeerId p : members) member_anywhere[p] = true;
    system.publish_at(2.0, members[0], g);
    for (int burst = 0; burst < 3; ++burst) {
      const double when = 3.0 + 1.0 * burst + 0.1 * static_cast<double>(g);
      for (int i = 0; i < 8; ++i) system.publish_at(when, members[1], g);
    }
    if (midwave) {
      const PeerId root = system.manager().root_of(g);
      const double wave_time = 8.0 + static_cast<double>(g);
      system.publish_at(wave_time, root, g);
      // Batched runs flush the root's own publish one window later; time
      // the kill against the flushed wave so BOTH pipelines lose a live
      // subtree mid-flight (the scenario being pinned equal).
      schedule_midwave_kill(system, g, wave_time, member_anywhere, nullptr,
                            max_batch > 1 ? batch_window : 0.0);
      system.publish_at(wave_time + 0.4, root, g);  // flushes reveal the gaps
      system.publish_at(wave_time + 0.8, root, g);
    }
  }
  system.run();
  result.stats = system.total_stats();
  return result;
}

TEST(BatchCoalescingTest, BurstCoalescesIntoOneRangeWave) {
  const auto graph = make_overlay(96, 3, 11);
  const auto unbatched =
      run_workload(graph, multicast::QoS::kFireAndForget, 0.0, 0.0, 16);
  const auto batched =
      run_workload(graph, multicast::QoS::kFireAndForget, 0.0, 0.05, 16);
  // 2 groups x (1 warm + 3 bursts): every burst of 8 coalesces into one
  // wave, so the batched run pushes 8 waves where the unbatched run
  // pushed 50 — with the identical delivered set.
  EXPECT_EQ(batched.stats.batch_flushes_window + batched.stats.batch_flushes_full,
            8u);
  EXPECT_EQ(batched.stats.batched_publishes, 50u);
  EXPECT_EQ(batched.stats.batch_publishes_lost, 0u);
  EXPECT_NEAR(batched.stats.mean_batch_occupancy(), 50.0 / 8.0, 1e-9);
  EXPECT_GT(batched.stats.envelopes_saved, 0u);
  EXPECT_LT(batched.stats.payload_messages, unbatched.stats.payload_messages / 4);
  EXPECT_EQ(batched.delivered, unbatched.delivered);
}

TEST(BatchCoalescingTest, MaxBatchForcesEarlyFlush) {
  const auto graph = make_overlay(96, 3, 11);
  const auto batched =
      run_workload(graph, multicast::QoS::kFireAndForget, 0.0, 0.05, 3);
  // Each 8-burst splits 3+3+2: two size-capped flushes plus the window
  // flush for the remainder; warm publishes flush by window.
  EXPECT_EQ(batched.stats.batch_flushes_full, 2u * 6u);
  EXPECT_EQ(batched.stats.batch_flushes_window, 6u + 2u);
  EXPECT_EQ(batched.stats.batch_publishes_lost, 0u);
}

// ------------------------------------------------------- equivalence pins ----

TEST(BatchEquivalenceTest, CleanLinksDeliverIdenticalSetsAtEveryQoS) {
  const auto graph = make_overlay(96, 3, 11);
  for (const auto qos : {multicast::QoS::kFireAndForget, multicast::QoS::kAcked,
                         multicast::QoS::kEndToEnd}) {
    const auto unbatched = run_workload(graph, qos, 0.0, 0.0, 16);
    const auto batched = run_workload(graph, qos, 0.0, 0.05, 16);
    EXPECT_EQ(batched.delivered, unbatched.delivered)
        << "qos=" << static_cast<int>(qos);
    // No double deliveries on either pipeline: every (peer, group, seq)
    // released exactly once.
    EXPECT_EQ(batched.delivery_count, batched.delivered.size());
    EXPECT_EQ(unbatched.delivery_count, unbatched.delivered.size());
    EXPECT_EQ(batched.stats.deliveries, batched.stats.expected_deliveries);
  }
}

TEST(BatchEquivalenceTest, QoS2DeliversIdenticalSetsUnderLoss) {
  const auto graph = make_overlay(96, 3, 11);
  const auto unbatched = run_workload(graph, multicast::QoS::kEndToEnd, 0.05, 0.0, 16);
  const auto batched = run_workload(graph, multicast::QoS::kEndToEnd, 0.05, 0.05, 16);
  // The end-to-end repair plane recovers every lost wave on both
  // pipelines, so the sets are pinned equal — and complete.
  EXPECT_EQ(batched.delivered, unbatched.delivered);
  EXPECT_EQ(batched.stats.deliveries, batched.stats.expected_deliveries);
  EXPECT_EQ(unbatched.stats.deliveries, unbatched.stats.expected_deliveries);
}

TEST(BatchEquivalenceTest, QoS2DeliversIdenticalSetsAcrossAMidWaveKill) {
  const auto graph = make_overlay(96, 3, 11);
  const auto unbatched =
      run_workload(graph, multicast::QoS::kEndToEnd, 0.0, 0.0, 16, /*midwave=*/true);
  const auto batched =
      run_workload(graph, multicast::QoS::kEndToEnd, 0.0, 0.05, 16, /*midwave=*/true);
  EXPECT_EQ(batched.delivered, unbatched.delivered);
  // The kill severs a live subtree mid-wave; the flush waves trigger the
  // NACK/repair plane, which must restore completeness on both pipelines.
  EXPECT_EQ(batched.stats.deliveries, batched.stats.expected_deliveries);
  EXPECT_EQ(unbatched.stats.deliveries, unbatched.stats.expected_deliveries);
}

TEST(BatchEquivalenceTest, QoS1EnvelopeCountShrinksAtLeastThreefold) {
  const auto graph = make_overlay(96, 3, 11);
  const auto unbatched = run_workload(graph, multicast::QoS::kAcked, 0.0, 0.0, 16);
  const auto batched = run_workload(graph, multicast::QoS::kAcked, 0.0, 0.05, 16);
  const auto envelopes = [](const WorkloadResult& r) {
    return r.stats.payload_messages + r.stats.ack_messages;
  };
  EXPECT_GE(static_cast<double>(envelopes(unbatched)),
            3.0 * static_cast<double>(envelopes(batched)));
  EXPECT_EQ(batched.delivered, unbatched.delivered);
}

}  // namespace
}  // namespace geomcast::groups
