#include "overlay/gossip.hpp"

#include <gtest/gtest.h>

#include "analysis/graph_metrics.hpp"
#include "geometry/random_points.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "overlay/hyperplane_k.hpp"
#include "util/rng.hpp"

namespace geomcast::overlay {
namespace {

double edge_similarity(const OverlayGraph& a, const OverlayGraph& b) {
  std::size_t shared = 0, total_a = 0, total_b = 0;
  for (PeerId p = 0; p < a.size(); ++p)
    for (PeerId q : a.neighbors(p))
      if (q > p) {
        ++total_a;
        if (b.has_edge(p, q)) ++shared;
      }
  for (PeerId p = 0; p < b.size(); ++p)
    for (PeerId q : b.neighbors(p))
      if (q > p) ++total_b;
  const std::size_t union_size = total_a + total_b - shared;
  return union_size == 0 ? 1.0 : static_cast<double>(shared) / static_cast<double>(union_size);
}

TEST(GossipConfigTest, ValidatesPaperConstraints) {
  GossipConfig bad_br;
  bad_br.br = 1;  // paper requires BR >= 2
  EXPECT_THROW(GossipNode(0, geometry::Point({1.0, 2.0}), NodeAddress{}, EmptyRectSelector{},
                          bad_br),
               std::invalid_argument);

  GossipConfig bad_tmax;
  bad_tmax.tmax = 0.5;
  bad_tmax.announce_period = 1.0;  // Tmax must exceed the gossip period
  EXPECT_THROW(GossipNode(0, geometry::Point({1.0, 2.0}), NodeAddress{}, EmptyRectSelector{},
                          bad_tmax),
               std::invalid_argument);
}

TEST(GossipTest, TwoPeersDiscoverEachOther) {
  const std::vector<geometry::Point> points{geometry::Point({10.0, 10.0}),
                                            geometry::Point({20.0, 30.0})};
  EmptyRectSelector selector;
  const auto result = build_overlay_with_gossip(points, selector, GossipConfig{}, 1);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.graph.has_edge(0, 1));
}

TEST(GossipTest, ConvergesToEquilibriumSmallN) {
  util::Rng rng(71);
  const auto points = geometry::random_points(rng, 24, 2, 100.0);
  EmptyRectSelector selector;
  const auto result = build_overlay_with_gossip(points, selector, GossipConfig{}, 2);
  EXPECT_TRUE(result.converged);
  const auto oracle = build_equilibrium(points, selector);
  // BR-scoped gossip reaches "the same (or close to)" the full-knowledge
  // topology (paper §1). Demand high similarity and connectivity.
  EXPECT_GE(edge_similarity(result.graph, oracle), 0.85);
  EXPECT_TRUE(analysis::is_connected(result.graph));
}

TEST(GossipTest, LargerBrGetsCloserToOracle) {
  util::Rng rng(72);
  const auto points = geometry::random_points(rng, 24, 2, 100.0);
  EmptyRectSelector selector;
  GossipConfig near_config;
  near_config.br = 2;
  GossipConfig far_config;
  far_config.br = 6;  // with 24 peers, 6 hops ≈ whole overlay
  const auto near_result = build_overlay_with_gossip(points, selector, near_config, 3);
  const auto far_result = build_overlay_with_gossip(points, selector, far_config, 3);
  const auto oracle = build_equilibrium(points, selector);
  EXPECT_GE(edge_similarity(far_result.graph, oracle) + 1e-9,
            edge_similarity(near_result.graph, oracle));
}

TEST(GossipTest, AnnouncementsAreCounted) {
  util::Rng rng(73);
  const auto points = geometry::random_points(rng, 10, 2, 100.0);
  const auto result =
      build_overlay_with_gossip(points, EmptyRectSelector{}, GossipConfig{}, 4);
  EXPECT_GT(result.announce_messages, 0u);
  EXPECT_GT(result.link_messages, 0u);
  EXPECT_GT(result.sim_time, 0.0);
}

TEST(GossipTest, DeterministicAcrossRuns) {
  util::Rng rng(74);
  const auto points = geometry::random_points(rng, 16, 2, 100.0);
  EmptyRectSelector selector;
  const auto a = build_overlay_with_gossip(points, selector, GossipConfig{}, 5);
  const auto b = build_overlay_with_gossip(points, selector, GossipConfig{}, 5);
  EXPECT_EQ(a.graph, b.graph);
  EXPECT_EQ(a.announce_messages, b.announce_messages);
}

TEST(GossipTest, ConvergesDespiteAnnouncementLoss) {
  // Lossy links: announcements are periodic, and Tmax spans several
  // periods, so occasional drops only delay knowledge refresh. The overlay
  // must still stabilise and stay connected.
  util::Rng rng(79);
  const auto points = geometry::random_points(rng, 18, 2, 100.0);
  EmptyRectSelector selector;

  sim::Simulator sim(80);
  std::vector<std::unique_ptr<GossipNode>> nodes;
  for (std::size_t i = 0; i < points.size(); ++i) {
    nodes.push_back(std::make_unique<GossipNode>(static_cast<PeerId>(i), points[i],
                                                 NodeAddress{}, selector, GossipConfig{}));
    sim.add_node(*nodes.back());
  }
  sim.network().set_loss(sim::LossModel{0.1, nullptr});
  util::Rng bootstrap_rng(81);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::vector<Candidate> bootstrap;
    if (i > 0) {
      const auto contact = static_cast<PeerId>(bootstrap_rng.next_below(i));
      bootstrap.push_back(Candidate{contact, points[contact]});
    }
    nodes[i]->activate(sim, bootstrap);
    sim.run_until(sim.now() + 10.0);
  }
  sim.run_until(sim.now() + 30.0);

  std::vector<std::vector<PeerId>> out(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) out[i] = nodes[i]->selected();
  const OverlayGraph graph(points, std::move(out));
  EXPECT_TRUE(analysis::is_connected(graph));
  EXPECT_GT(sim.stats().dropped, 0u);  // loss actually happened
}

TEST(GossipTest, CrashedPeerForgottenAfterTmax) {
  // A peer that leaves without notice stops announcing; survivors must drop
  // it from their selections once its last announcement ages past Tmax.
  util::Rng rng(76);
  const auto points = geometry::random_points(rng, 12, 2, 100.0);
  EmptyRectSelector selector;
  GossipConfig config;

  sim::Simulator sim(77);
  std::vector<std::unique_ptr<GossipNode>> nodes;
  for (std::size_t i = 0; i < points.size(); ++i) {
    nodes.push_back(std::make_unique<GossipNode>(static_cast<PeerId>(i), points[i],
                                                 NodeAddress{}, selector, config));
    sim.add_node(*nodes.back());
  }
  util::Rng bootstrap_rng(78);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::vector<Candidate> bootstrap;
    if (i > 0) {
      const auto contact = static_cast<PeerId>(bootstrap_rng.next_below(i));
      bootstrap.push_back(Candidate{contact, points[contact]});
    }
    nodes[i]->activate(sim, bootstrap);
    sim.run_until(sim.now() + 8.0);
  }

  const PeerId victim = 3;
  bool someone_knew_victim = false;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i == victim) continue;
    const auto& selected = nodes[i]->selected();
    someone_knew_victim |= std::find(selected.begin(), selected.end(), victim) != selected.end();
  }
  ASSERT_TRUE(someone_knew_victim) << "test needs the victim to be someone's neighbour";

  nodes[victim]->deactivate();
  // Run well past Tmax so the victim's announcements expire everywhere and
  // every survivor has re-selected.
  sim.run_until(sim.now() + config.tmax + 4 * config.reselect_period);

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i == victim) continue;
    const auto& selected = nodes[i]->selected();
    EXPECT_TRUE(std::find(selected.begin(), selected.end(), victim) == selected.end())
        << "peer " << i << " still selects the crashed peer";
  }
}

TEST(GossipTest, WorksWithOrthogonalKSelector) {
  util::Rng rng(75);
  const auto points = geometry::random_points(rng, 20, 3, 100.0);
  const auto selector = HyperplaneKSelector::orthogonal(3, 2);
  const auto result = build_overlay_with_gossip(points, selector, GossipConfig{}, 6);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(analysis::is_connected(result.graph));
}

}  // namespace
}  // namespace geomcast::overlay
