#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace geomcast::sim {
namespace {

TEST(EventQueueTest, EmptyInitially) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_FALSE(queue.run_next());
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, [&] { order.push_back(3); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(2.0, [&] { order.push_back(2); });
  while (queue.run_next()) {}
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(5.0, [&] { order.push_back(1); });
  queue.schedule(5.0, [&] { order.push_back(2); });
  queue.schedule(5.0, [&] { order.push_back(3); });
  while (queue.run_next()) {}
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue queue;
  queue.schedule(9.0, [] {});
  queue.schedule(4.0, [] {});
  EXPECT_DOUBLE_EQ(queue.next_time(), 4.0);
}

TEST(EventQueueTest, NextTimeOnEmptyThrows) {
  EventQueue queue;
  EXPECT_THROW((void)queue.next_time(), std::logic_error);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue queue;
  bool ran = false;
  const auto id = queue.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(queue.cancel(id));
  while (queue.run_next()) {}
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue queue;
  const auto id = queue.schedule(1.0, [] {});
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));
}

TEST(EventQueueTest, CancelAfterRunFails) {
  EventQueue queue;
  const auto id = queue.schedule(1.0, [] {});
  EXPECT_TRUE(queue.run_next());
  EXPECT_FALSE(queue.cancel(id));
}

TEST(EventQueueTest, CancelUnknownIdFails) {
  EventQueue queue;
  EXPECT_FALSE(queue.cancel(999));
  EXPECT_FALSE(queue.cancel(0));
}

TEST(EventQueueTest, ActionsCanScheduleMoreEvents) {
  EventQueue queue;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) queue.schedule(queue.last_popped_time() + 1.0, chain);
  };
  queue.schedule(0.0, chain);
  while (queue.run_next()) {}
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(queue.last_popped_time(), 4.0);
}

TEST(EventQueueTest, SchedulingInThePastThrows) {
  EventQueue queue;
  queue.schedule(10.0, [] {});
  EXPECT_TRUE(queue.run_next());
  EXPECT_THROW(queue.schedule(5.0, [] {}), std::invalid_argument);
}

TEST(EventQueueTest, EmptyActionThrows) {
  EventQueue queue;
  EXPECT_THROW(queue.schedule(1.0, std::function<void()>{}), std::invalid_argument);
}

TEST(EventQueueTest, PendingCountsLiveEventsOnly) {
  EventQueue queue;
  const auto a = queue.schedule(1.0, [] {});
  queue.schedule(2.0, [] {});
  EXPECT_EQ(queue.pending(), 2u);
  queue.cancel(a);
  EXPECT_EQ(queue.pending(), 1u);
  queue.run_next();
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(EventQueueTest, CancelHeavyHeapIsCompacted) {
  // Every acked hop cancels its retransmit timer, so reliable traffic
  // cancels most of what it schedules; the heap must shed those corpses
  // instead of carrying them until they surface.
  EventQueue queue;
  std::vector<EventId> ids;
  for (int i = 0; i < 1024; ++i)
    ids.push_back(queue.schedule(1.0 + 0.001 * i, [] {}));
  for (std::size_t i = 0; i < ids.size(); ++i)
    if (i % 8 != 0) queue.cancel(ids[i]);  // 7/8 cancelled
  EXPECT_EQ(queue.pending(), 128u);
  // Compaction invariant: stale entries never exceed live ones (plus the
  // small floor below which compaction does not bother).
  EXPECT_LE(queue.heap_size(), std::max<std::size_t>(2 * queue.pending(), 64));
  // The survivors still fire, in time order.
  std::size_t fired = 0;
  double last = 0.0;
  while (queue.run_next()) {
    ++fired;
    EXPECT_GE(queue.last_popped_time(), last);
    last = queue.last_popped_time();
  }
  EXPECT_EQ(fired, 128u);
}

TEST(EventQueueTest, CompactionPreservesTieBreakOrder) {
  // Simultaneous events must still run in scheduling order after the heap
  // was rebuilt around their cancelled neighbours.
  EventQueue queue;
  std::vector<int> order;
  std::vector<EventId> doomed;
  for (int i = 0; i < 200; ++i) {
    const int tag = i;
    queue.schedule(1.0, [&order, tag] { order.push_back(tag); });
    doomed.push_back(queue.schedule(1.0, [] {}));
  }
  for (const EventId id : doomed) queue.cancel(id);
  while (queue.run_next()) {}
  ASSERT_EQ(order.size(), 200u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(EventQueueTest, CancelledHeadSkippedTransparently) {
  EventQueue queue;
  std::vector<int> order;
  const auto first = queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(2.0, [&] { order.push_back(2); });
  queue.cancel(first);
  EXPECT_DOUBLE_EQ(queue.next_time(), 2.0);
  while (queue.run_next()) {}
  EXPECT_EQ(order, (std::vector<int>{2}));
}

}  // namespace
}  // namespace geomcast::sim
