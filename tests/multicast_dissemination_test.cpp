#include "multicast/dissemination.hpp"

#include <gtest/gtest.h>

#include "geometry/random_points.hpp"
#include "multicast/space_partition.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/rng.hpp"

namespace geomcast::multicast {
namespace {

MulticastTree make_tree(std::size_t n, std::size_t dims, std::uint64_t seed,
                        overlay::PeerId root = 0) {
  util::Rng rng(seed);
  const auto points = geometry::random_points(rng, n, dims, 100.0);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  return build_multicast_tree(graph, root).tree;
}

TEST(DisseminationTest, LosslessDeliversWithNMinus1DataMessages) {
  const auto tree = make_tree(120, 2, 71);
  const auto result = run_dissemination(tree);
  EXPECT_TRUE(result.all_delivered(tree.peer_count()));
  EXPECT_EQ(result.data_messages, tree.peer_count() - 1);
  EXPECT_EQ(result.ack_messages, tree.peer_count() - 1);
  EXPECT_EQ(result.retransmissions, 0u);
  EXPECT_EQ(result.duplicate_data, 0u);
  EXPECT_EQ(result.abandoned_hops, 0u);
}

TEST(DisseminationTest, DeliveryTimesMatchDepthUnderConstantLatency) {
  const auto tree = make_tree(100, 2, 72);
  const auto result = run_dissemination(tree, {}, sim::LatencyModel::constant(1.0));
  const auto depths = tree.depths();
  for (PeerId p = 0; p < tree.peer_count(); ++p) {
    ASSERT_NE(depths[p], MulticastTree::kUnreachedDepth);
    EXPECT_DOUBLE_EQ(result.delivery_time[p], static_cast<double>(depths[p]));
  }
  EXPECT_DOUBLE_EQ(result.completion_time,
                   static_cast<double>(tree.max_root_to_leaf_path()));
}

TEST(DisseminationTest, SurvivesHeavyLossWithRetries) {
  const auto tree = make_tree(100, 2, 73);
  DisseminationConfig config;
  config.max_retries = 25;
  config.ack_timeout = 0.05;
  sim::LossModel loss;
  loss.drop_probability = 0.3;
  const auto result =
      run_dissemination(tree, config, sim::LatencyModel::constant(0.01), loss, 7);
  EXPECT_TRUE(result.all_delivered(tree.peer_count()))
      << "only " << result.delivered << "/" << tree.peer_count();
  EXPECT_GT(result.retransmissions, 0u);
  EXPECT_EQ(result.abandoned_hops, 0u);
}

TEST(DisseminationTest, FireAndForgetLosesSubtreesUnderLoss) {
  const auto tree = make_tree(100, 2, 74);
  DisseminationConfig config;
  config.max_retries = 0;  // no reliability
  sim::LossModel loss;
  loss.drop_probability = 0.3;
  const auto result =
      run_dissemination(tree, config, sim::LatencyModel::constant(0.01), loss, 8);
  EXPECT_LT(result.delivered, tree.peer_count());
  EXPECT_GT(result.abandoned_hops, 0u);
  // Never-reached peers keep the sentinel delivery time.
  bool missing_sentinel = false;
  for (PeerId p = 0; p < tree.peer_count(); ++p)
    if (result.delivery_time[p] < 0.0) missing_sentinel = true;
  EXPECT_TRUE(missing_sentinel);
}

TEST(DisseminationTest, DuplicatesAreAckedButNotReforwarded) {
  // Drop every first ack: the sender retransmits, the receiver sees a
  // duplicate, re-acks, and the payload still reaches everyone exactly as
  // one logical copy.
  const auto tree = make_tree(60, 2, 75);
  DisseminationConfig config;
  config.max_retries = 10;
  config.ack_timeout = 0.05;
  std::uint64_t acks_seen = 0;
  sim::LossModel loss;
  loss.drop_if = [&acks_seen](const sim::Envelope& e) {
    if (e.kind != kAckKind) return false;
    return (acks_seen++ % 2) == 0;  // every other ack vanishes
  };
  const auto result =
      run_dissemination(tree, config, sim::LatencyModel::constant(0.01), loss, 9);
  EXPECT_TRUE(result.all_delivered(tree.peer_count()));
  EXPECT_GT(result.duplicate_data, 0u);
  EXPECT_EQ(result.abandoned_hops, 0u);
}

TEST(DisseminationTest, TargetedLinkFailureAbandonsOneSubtree) {
  const auto tree = make_tree(80, 2, 76);
  // Pick a child of the root and kill its incoming data link entirely.
  ASSERT_FALSE(tree.children(tree.root()).empty());
  const PeerId victim = tree.children(tree.root()).front();
  DisseminationConfig config;
  config.max_retries = 3;
  config.ack_timeout = 0.05;
  sim::LossModel loss;
  loss.drop_if = [victim](const sim::Envelope& e) {
    return e.kind == kDataKind && e.to == victim;
  };
  const auto result =
      run_dissemination(tree, config, sim::LatencyModel::constant(0.01), loss, 10);
  EXPECT_FALSE(result.all_delivered(tree.peer_count()));
  EXPECT_LT(result.delivery_time[victim], 0.0);
  EXPECT_EQ(result.retransmissions, config.max_retries);  // only that hop retried
  EXPECT_EQ(result.abandoned_hops, 1u);
}

TEST(DisseminationTest, DeterministicUnderSeededLoss) {
  const auto tree = make_tree(80, 3, 77);
  DisseminationConfig config;
  config.max_retries = 5;
  sim::LossModel loss;
  loss.drop_probability = 0.2;
  const auto a = run_dissemination(tree, config, sim::LatencyModel::constant(0.01), loss, 4);
  const auto b = run_dissemination(tree, config, sim::LatencyModel::constant(0.01), loss, 4);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.data_messages, b.data_messages);
  EXPECT_EQ(a.delivery_time, b.delivery_time);
}

}  // namespace
}  // namespace geomcast::multicast
