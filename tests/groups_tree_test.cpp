#include "groups/group_tree.hpp"

#include <gtest/gtest.h>

#include "geometry/random_points.hpp"
#include "multicast/space_partition.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/rng.hpp"

namespace geomcast::groups {
namespace {

overlay::OverlayGraph make_overlay(std::size_t n, std::size_t dims, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto points = geometry::random_points(rng, n, dims, 100.0);
  return overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
}

std::vector<bool> subscriber_mask(std::size_t n, std::initializer_list<PeerId> ids) {
  std::vector<bool> mask(n, false);
  for (PeerId p : ids) mask[p] = true;
  return mask;
}

std::vector<bool> random_mask(std::size_t n, std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<bool> mask(n, false);
  std::size_t placed = 0;
  while (placed < count) {
    const auto p = static_cast<PeerId>(rng.next_below(n));
    if (!mask[p]) {
      mask[p] = true;
      ++placed;
    }
  }
  return mask;
}

/// Every flagged subscriber is reached and linked to the root by parent
/// edges.
void expect_spans_subscribers(const overlay::OverlayGraph& graph, const GroupTree& gt) {
  for (PeerId p = 0; p < graph.size(); ++p) {
    if (!gt.is_subscriber[p]) continue;
    ASSERT_TRUE(gt.tree.reached(p)) << "subscriber " << p << " unreached";
    PeerId cursor = p;
    std::size_t guard = 0;
    while (cursor != gt.tree.root()) {
      ASSERT_LE(++guard, graph.size()) << "parent chain of " << p << " does not end";
      cursor = gt.tree.parent(cursor);
    }
  }
}

TEST(GroupTreeTest, SpansAllSubscribersAndPrunesTheRest) {
  const auto graph = make_overlay(80, 2, 101);
  const auto subs = random_mask(graph.size(), 12, 7);
  const auto gt = build_group_tree(graph, 0, subs);
  EXPECT_EQ(gt.subscriber_count, 12u);
  expect_spans_subscribers(graph, gt);
  // A 12-subscriber tree must be strictly cheaper than spanning everyone.
  EXPECT_LT(gt.tree.edge_count(), graph.size() - 1);
  EXPECT_EQ(gt.build_messages, gt.tree.edge_count());
}

TEST(GroupTreeTest, FullSubscriptionMatchesWholeSpaceConstruction) {
  const auto graph = make_overlay(60, 3, 102);
  std::vector<bool> everyone(graph.size(), true);
  const auto gt = build_group_tree(graph, 5, everyone);
  const auto whole = multicast::build_multicast_tree(graph, 5);
  EXPECT_EQ(gt.tree.edge_count(), graph.size() - 1);
  for (PeerId p = 0; p < graph.size(); ++p)
    EXPECT_EQ(gt.tree.parent(p), whole.tree.parent(p)) << "peer " << p;
  EXPECT_EQ(gt.relay_count(), 0u);
}

TEST(GroupTreeTest, DeterministicAcrossRuns) {
  const auto graph = make_overlay(70, 2, 103);
  const auto subs = random_mask(graph.size(), 10, 11);
  const auto a = build_group_tree(graph, 3, subs);
  const auto b = build_group_tree(graph, 3, subs);
  for (PeerId p = 0; p < graph.size(); ++p) EXPECT_EQ(a.tree.parent(p), b.tree.parent(p));
  EXPECT_EQ(a.build_messages, b.build_messages);
}

TEST(GroupTreeTest, GraftEqualsFreshBuild) {
  const auto graph = make_overlay(80, 2, 104);
  auto subs = random_mask(graph.size(), 8, 13);
  // Pick a peer not yet subscribed to graft in.
  PeerId extra = kInvalidPeer;
  for (PeerId p = 0; p < graph.size(); ++p)
    if (!subs[p] && p != 0) {
      extra = p;
      break;
    }
  ASSERT_NE(extra, kInvalidPeer);

  auto grown = build_group_tree(graph, 0, subs);
  const auto graft = graft_subscriber(graph, grown, extra);
  EXPECT_TRUE(graft.attached);
  EXPECT_GT(graft.messages, 0u);

  subs[extra] = true;
  const auto fresh = build_group_tree(graph, 0, subs);
  for (PeerId p = 0; p < graph.size(); ++p) {
    EXPECT_EQ(grown.tree.parent(p), fresh.tree.parent(p)) << "peer " << p;
    EXPECT_EQ(grown.is_subscriber[p], fresh.is_subscriber[p]) << "peer " << p;
  }
}

TEST(GroupTreeTest, PruneEqualsFreshBuild) {
  const auto graph = make_overlay(80, 2, 105);
  auto subs = random_mask(graph.size(), 9, 17);
  PeerId victim = kInvalidPeer;
  for (PeerId p = 0; p < graph.size(); ++p)
    if (subs[p]) {
      victim = p;
      break;
    }
  ASSERT_NE(victim, kInvalidPeer);

  auto shrunk = build_group_tree(graph, 0, subs);
  prune_subscriber(shrunk, victim);

  subs[victim] = false;
  const auto fresh = build_group_tree(graph, 0, subs);
  EXPECT_EQ(shrunk.subscriber_count, fresh.subscriber_count);
  for (PeerId p = 0; p < graph.size(); ++p) {
    EXPECT_EQ(shrunk.tree.reached(p), fresh.tree.reached(p)) << "peer " << p;
    if (fresh.tree.reached(p) && p != 0)
      EXPECT_EQ(shrunk.tree.parent(p), fresh.tree.parent(p)) << "peer " << p;
  }
}

TEST(GroupTreeTest, GraftThenPruneIsIdentity) {
  const auto graph = make_overlay(60, 2, 106);
  const auto subs = random_mask(graph.size(), 6, 19);
  PeerId extra = kInvalidPeer;
  for (PeerId p = 0; p < graph.size(); ++p)
    if (!subs[p] && p != 0) {
      extra = p;
      break;
    }
  ASSERT_NE(extra, kInvalidPeer);

  const auto original = build_group_tree(graph, 0, subs);
  auto mutated = build_group_tree(graph, 0, subs);
  ASSERT_TRUE(graft_subscriber(graph, mutated, extra).attached);
  prune_subscriber(mutated, extra);
  for (PeerId p = 0; p < graph.size(); ++p) {
    EXPECT_EQ(mutated.tree.reached(p), original.tree.reached(p)) << "peer " << p;
    EXPECT_EQ(mutated.is_subscriber[p], original.is_subscriber[p]) << "peer " << p;
  }
}

TEST(GroupTreeTest, RepairRemovesDepartedAndKeepsCoverage) {
  const auto graph = make_overlay(80, 2, 107);
  std::vector<bool> everyone(graph.size(), true);
  auto gt = build_group_tree(graph, 0, everyone);

  // Depart an interior peer (has children) that is not the root.
  PeerId departed = kInvalidPeer;
  for (PeerId p = 1; p < graph.size(); ++p)
    if (!gt.tree.children(p).empty()) {
      departed = p;
      break;
    }
  ASSERT_NE(departed, kInvalidPeer);

  std::vector<bool> alive(graph.size(), true);
  alive[departed] = false;
  const auto repair = repair_group_tree(graph, gt, departed, alive);
  ASSERT_FALSE(repair.needs_rebuild);
  EXPECT_GT(repair.reattached, 0u);
  EXPECT_TRUE(gt.zones_stale);
  EXPECT_FALSE(gt.tree.reached(departed));
  EXPECT_FALSE(gt.is_subscriber[departed]);
  expect_spans_subscribers(graph, gt);
}

TEST(GroupTreeTest, GraftOnStaleZonesThrows) {
  const auto graph = make_overlay(40, 2, 108);
  const auto subs = subscriber_mask(graph.size(), {3, 9, 20});
  auto gt = build_group_tree(graph, 0, subs);
  gt.zones_stale = true;
  EXPECT_THROW((void)graft_subscriber(graph, gt, 15), std::logic_error);
}

TEST(GroupTreeTest, RandomPolicyRejected) {
  const auto graph = make_overlay(30, 2, 109);
  const auto subs = subscriber_mask(graph.size(), {1, 2});
  multicast::MulticastConfig config;
  config.policy = multicast::PickPolicy::kRandom;
  EXPECT_THROW((void)build_group_tree(graph, 0, subs, config), std::invalid_argument);
}

}  // namespace
}  // namespace geomcast::groups
