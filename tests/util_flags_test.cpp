#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace geomcast::util {
namespace {

Flags make_flags(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsSyntax) {
  const auto flags = make_flags({"--peers=500"});
  EXPECT_EQ(flags.get_int("peers", 0), 500);
}

TEST(FlagsTest, SpaceSyntax) {
  const auto flags = make_flags({"--peers", "250"});
  EXPECT_EQ(flags.get_int("peers", 0), 250);
}

TEST(FlagsTest, FallbackWhenMissing) {
  const auto flags = make_flags({});
  EXPECT_EQ(flags.get_int("peers", 1000), 1000);
  EXPECT_EQ(flags.get_string("mode", "fast"), "fast");
  EXPECT_DOUBLE_EQ(flags.get_double("ratio", 0.5), 0.5);
  EXPECT_TRUE(flags.get_bool("verbose", true));
}

TEST(FlagsTest, BareBooleanFlag) {
  const auto flags = make_flags({"--verbose"});
  EXPECT_TRUE(flags.get_bool("verbose", false));
}

TEST(FlagsTest, ExplicitBooleanValues) {
  EXPECT_TRUE(make_flags({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(make_flags({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(make_flags({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(make_flags({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make_flags({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(make_flags({"--x=off"}).get_bool("x", true));
}

TEST(FlagsTest, MalformedIntThrows) {
  const auto flags = make_flags({"--peers=abc"});
  EXPECT_THROW((void)flags.get_int("peers", 0), std::invalid_argument);
}

TEST(FlagsTest, MalformedBoolThrows) {
  const auto flags = make_flags({"--x=maybe"});
  EXPECT_THROW((void)flags.get_bool("x", false), std::invalid_argument);
}

TEST(FlagsTest, DoubleParsing) {
  const auto flags = make_flags({"--ratio=0.75"});
  EXPECT_DOUBLE_EQ(flags.get_double("ratio", 0.0), 0.75);
}

TEST(FlagsTest, IntList) {
  const auto flags = make_flags({"--dims=2,3,5"});
  const auto dims = flags.get_int_list("dims", {});
  ASSERT_EQ(dims.size(), 3u);
  EXPECT_EQ(dims[0], 2);
  EXPECT_EQ(dims[1], 3);
  EXPECT_EQ(dims[2], 5);
}

TEST(FlagsTest, IntListFallback) {
  const auto flags = make_flags({});
  const auto dims = flags.get_int_list("dims", {7, 8});
  ASSERT_EQ(dims.size(), 2u);
  EXPECT_EQ(dims[0], 7);
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  const auto flags = make_flags({"input.txt", "--mode=x", "output.txt"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
}

TEST(FlagsTest, HasDetectsPresence) {
  const auto flags = make_flags({"--present=1"});
  EXPECT_TRUE(flags.has("present"));
  EXPECT_FALSE(flags.has("absent"));
}

TEST(FlagsTest, LastValueWins) {
  const auto flags = make_flags({"--n=1", "--n=2"});
  EXPECT_EQ(flags.get_int("n", 0), 2);
}

}  // namespace
}  // namespace geomcast::util
