#include "multicast/reliable_hop.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "geometry/random_points.hpp"
#include "multicast/dissemination.hpp"
#include "multicast/space_partition.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "sim/node.hpp"
#include "util/rng.hpp"

namespace geomcast::multicast {
namespace {

constexpr sim::MessageKind kTestDataKind = 41;
constexpr sim::MessageKind kTestAckKind = 42;

class Harness;

/// Minimal receiver: counts arrivals per seq, re-acks every one (the
/// protocol's receiver obligation) unless told not to, and reports
/// client-side duplicate suppression like a real payload path would.
class HopNode final : public sim::Node {
 public:
  HopNode(sim::NodeId id, Harness& harness) : sim::Node(id), harness_(harness) {}
  void on_message(sim::Simulator& sim, const sim::Envelope& envelope) override;

  bool auto_ack = true;
  std::map<std::uint64_t, int> arrivals;  // copies seen per seq

 private:
  Harness& harness_;
};

class Harness {
 public:
  Harness(std::size_t n, ReliabilityConfig config, ReliableHopLayer::Hooks hooks = {},
          std::uint64_t seed = 1)
      : sim(seed) {
    for (sim::NodeId i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<HopNode>(i, *this));
      sim.add_node(*nodes[i]);
    }
    layer = std::make_unique<ReliableHopLayer>(sim, kTestDataKind, kTestAckKind, config,
                                               std::move(hooks));
  }

  sim::Simulator sim;
  std::vector<std::unique_ptr<HopNode>> nodes;
  std::unique_ptr<ReliableHopLayer> layer;
};

void HopNode::on_message(sim::Simulator& sim, const sim::Envelope& envelope) {
  if (envelope.kind == kTestAckKind) {
    harness_.layer->on_ack(envelope);
    return;
  }
  ASSERT_EQ(envelope.kind, kTestDataKind);
  const auto seq = std::any_cast<std::uint64_t>(envelope.payload);
  if (++arrivals[seq] > 1) sim.network().note_duplicate();
  if (auto_ack) harness_.layer->acknowledge(id(), envelope.from, seq);
}

TEST(ReliableHopTest, AckBeforeTimeoutMeansNoRetransmission) {
  Harness h(2, ReliabilityConfig{QoS::kAcked, 0.25, 5});
  h.sim.schedule_at(0.0, [&]() { h.layer->send(0, 1, 7, std::uint64_t{7}); });
  h.sim.run_until_idle();

  EXPECT_EQ(h.nodes[1]->arrivals[7], 1);
  const auto& stats = h.layer->stats();
  EXPECT_EQ(stats.data_messages, 1u);
  EXPECT_EQ(stats.ack_messages, 1u);
  EXPECT_EQ(stats.retransmissions, 0u);
  EXPECT_EQ(stats.abandoned_hops, 0u);
  EXPECT_EQ(h.layer->pending(), 0u);
  // The ack cancelled the timer, so the run ends at the ack's arrival.
  EXPECT_DOUBLE_EQ(h.sim.now(), 0.02);
}

TEST(ReliableHopTest, LostDataIsRetransmittedUntilDelivered) {
  Harness h(2, ReliabilityConfig{QoS::kAcked, 0.05, 5});
  std::uint64_t data_seen = 0;
  sim::LossModel loss;
  loss.drop_if = [&data_seen](const sim::Envelope& e) {
    return e.kind == kTestDataKind && data_seen++ == 0;  // first copy vanishes
  };
  h.sim.network().set_loss(std::move(loss));
  h.sim.schedule_at(0.0, [&]() { h.layer->send(0, 1, 1, std::uint64_t{1}); });
  h.sim.run_until_idle();

  EXPECT_EQ(h.nodes[1]->arrivals[1], 1);
  EXPECT_EQ(h.layer->stats().data_messages, 2u);
  EXPECT_EQ(h.layer->stats().retransmissions, 1u);
  EXPECT_EQ(h.layer->stats().abandoned_hops, 0u);
  EXPECT_EQ(h.sim.stats().retransmitted, 1u);
}

TEST(ReliableHopTest, DuplicateFromLostAckIsReackedAndSenderStops) {
  // The data gets through but the first ack is lost: the retransmission
  // arrives as a duplicate, the receiver re-acks it, and the sender stops
  // well inside its budget.
  Harness h(2, ReliabilityConfig{QoS::kAcked, 0.05, 5});
  std::uint64_t acks_seen = 0;
  sim::LossModel loss;
  loss.drop_if = [&acks_seen](const sim::Envelope& e) {
    return e.kind == kTestAckKind && acks_seen++ == 0;
  };
  h.sim.network().set_loss(std::move(loss));
  h.sim.schedule_at(0.0, [&]() { h.layer->send(0, 1, 3, std::uint64_t{3}); });
  h.sim.run_until_idle();

  EXPECT_EQ(h.nodes[1]->arrivals[3], 2);  // original + retransmission
  const auto& stats = h.layer->stats();
  EXPECT_EQ(stats.data_messages, 2u);
  EXPECT_EQ(stats.retransmissions, 1u);
  EXPECT_EQ(stats.ack_messages, 2u);  // every arrival acked, duplicate included
  EXPECT_EQ(stats.abandoned_hops, 0u);
  EXPECT_EQ(h.layer->pending(), 0u);
  EXPECT_EQ(h.sim.stats().duplicate_data, 1u);
}

TEST(ReliableHopTest, RetryBudgetExhaustionAbandonsTheHop) {
  std::size_t abandoned_calls = 0;
  ReliableHopLayer::Hooks hooks;
  hooks.on_abandon = [&abandoned_calls](sim::NodeId from, sim::NodeId to,
                                        std::uint64_t seq, const std::any& payload) {
    ++abandoned_calls;
    EXPECT_EQ(from, 0u);
    EXPECT_EQ(to, 1u);
    EXPECT_EQ(seq, 9u);
    EXPECT_EQ(std::any_cast<std::uint64_t>(payload), 9u);
  };
  Harness h(2, ReliabilityConfig{QoS::kAcked, 0.05, 3}, std::move(hooks));
  sim::LossModel loss;
  loss.drop_if = [](const sim::Envelope& e) { return e.kind == kTestDataKind; };
  h.sim.network().set_loss(std::move(loss));
  h.sim.schedule_at(0.0, [&]() { h.layer->send(0, 1, 9, std::uint64_t{9}); });
  h.sim.run_until_idle();

  EXPECT_EQ(h.nodes[1]->arrivals.count(9), 0u);
  const auto& stats = h.layer->stats();
  EXPECT_EQ(stats.data_messages, 4u);  // first try + 3 retries
  EXPECT_EQ(stats.retransmissions, 3u);
  EXPECT_EQ(stats.abandoned_hops, 1u);
  EXPECT_EQ(abandoned_calls, 1u);
  EXPECT_EQ(h.layer->pending(), 0u);
  EXPECT_EQ(h.sim.stats().abandoned_hops, 1u);
  EXPECT_EQ(h.sim.stats().retransmitted, 3u);
}

TEST(ReliableHopTest, QoSZeroIsExactlyOnePlainSend) {
  Harness h(2, ReliabilityConfig{QoS::kFireAndForget, 0.05, 5});
  h.sim.schedule_at(0.0, [&]() { h.layer->send(0, 1, 5, std::uint64_t{5}); });
  h.sim.run_until_idle();

  EXPECT_EQ(h.nodes[1]->arrivals[5], 1);
  EXPECT_EQ(h.sim.stats().sent, 1u);  // no ack ever crossed the network
  EXPECT_EQ(h.sim.stats().sent_by_kind.count(kTestAckKind), 0u);
  const auto& stats = h.layer->stats();
  EXPECT_EQ(stats.data_messages, 1u);
  EXPECT_EQ(stats.ack_messages, 0u);  // acknowledge() was a no-op
  EXPECT_EQ(stats.retransmissions, 0u);
  EXPECT_EQ(stats.abandoned_hops, 0u);
  EXPECT_EQ(h.layer->pending(), 0u);
  // No timers were armed: the simulation ends the instant the data lands.
  EXPECT_DOUBLE_EQ(h.sim.now(), 0.01);
}

TEST(ReliableHopTest, LateAckAfterAbandonmentIsIgnored) {
  Harness h(2, ReliabilityConfig{QoS::kAcked, 0.05, 1});
  sim::LossModel loss;
  loss.drop_if = [](const sim::Envelope& e) { return e.kind == kTestAckKind; };
  h.sim.network().set_loss(std::move(loss));
  h.sim.schedule_at(0.0, [&]() { h.layer->send(0, 1, 2, std::uint64_t{2}); });
  h.sim.run_until_idle();
  ASSERT_EQ(h.layer->stats().abandoned_hops, 1u);
  ASSERT_EQ(h.layer->pending(), 0u);

  // An ack for the retired hop straggles in after the fact.
  sim::Envelope late{1, 0, kTestAckKind, HopAck{2}};
  EXPECT_NO_THROW(h.layer->on_ack(late));
  EXPECT_EQ(h.layer->pending(), 0u);
  EXPECT_EQ(h.layer->stats().abandoned_hops, 1u);
}

TEST(ReliableHopTest, DistinctSeqsOnTheSameLinkDoNotInterfere) {
  Harness h(2, ReliabilityConfig{QoS::kAcked, 0.05, 5});
  std::uint64_t data_seen = 0;
  sim::LossModel loss;
  loss.drop_if = [&data_seen](const sim::Envelope& e) {
    return e.kind == kTestDataKind && data_seen++ == 0;  // seq 1's first copy only
  };
  h.sim.network().set_loss(std::move(loss));
  h.sim.schedule_at(0.0, [&]() {
    h.layer->send(0, 1, 1, std::uint64_t{1});
    h.layer->send(0, 1, 2, std::uint64_t{2});
  });
  h.sim.run_until_idle();

  // seq 2's ack must not cancel seq 1's retransmission cycle.
  EXPECT_EQ(h.nodes[1]->arrivals[1], 1);
  EXPECT_EQ(h.nodes[1]->arrivals[2], 1);
  EXPECT_EQ(h.layer->stats().retransmissions, 1u);
  EXPECT_EQ(h.layer->stats().abandoned_hops, 0u);
  EXPECT_EQ(h.layer->pending(), 0u);
}

TEST(ReliableHopTest, DeadSenderStopsRetransmittingWithoutAbandonment) {
  bool alive = true;
  ReliableHopLayer::Hooks hooks;
  hooks.sender_alive = [&alive](sim::NodeId) { return alive; };
  Harness h(2, ReliabilityConfig{QoS::kAcked, 0.05, 5}, std::move(hooks));
  sim::LossModel loss;
  loss.drop_if = [](const sim::Envelope& e) { return e.kind == kTestDataKind; };
  h.sim.network().set_loss(std::move(loss));
  h.sim.schedule_at(0.0, [&]() { h.layer->send(0, 1, 4, std::uint64_t{4}); });
  h.sim.schedule_at(0.03, [&]() { alive = false; });  // dies before the timeout
  h.sim.run_until_idle();

  const auto& stats = h.layer->stats();
  EXPECT_EQ(stats.data_messages, 1u);
  EXPECT_EQ(stats.retransmissions, 0u);
  EXPECT_EQ(stats.abandoned_hops, 0u);  // churn, not budget exhaustion
  EXPECT_EQ(h.layer->pending(), 0u);
}

TEST(ReliableHopTest, ReusingAPendingSeqOnTheSameHopThrows) {
  Harness h(2, ReliabilityConfig{QoS::kAcked, 0.25, 5});
  h.sim.schedule_at(0.0, [&]() {
    h.layer->send(0, 1, 6, std::uint64_t{6});
    EXPECT_THROW(h.layer->send(0, 1, 6, std::uint64_t{6}), std::logic_error);
  });
  h.sim.run_until_idle();
  EXPECT_EQ(h.layer->stats().data_messages, 1u);
}

// ---------------------------------------------------------------------------
// run_dissemination is now a thin client of the extracted layer. The golden
// numbers below were captured from the pre-refactor implementation (the
// inline ack/timeout/retransmit code in dissemination.cpp) on four seed
// scenarios; the refactor must reproduce them bit for bit.
// ---------------------------------------------------------------------------

struct GoldenCase {
  std::size_t n, dims;
  std::uint64_t tree_seed;
  double loss;
  std::size_t retries;
  double timeout;
  std::uint64_t sim_seed;
  std::size_t delivered;
  std::uint64_t data, acks, retx, dups, abandoned;
  double completion;
};

TEST(ReliableHopTest, RunDisseminationSeedScenariosUnchangedByRefactor) {
  const GoldenCase cases[] = {
      {120, 2, 71, 0.00, 5, 0.25, 1, 120, 119, 119, 0, 0, 0, 0.089999999999999997},
      {100, 2, 73, 0.30, 25, 0.05, 7, 100, 210, 149, 111, 50, 0, 0.41999999999999998},
      {80, 3, 77, 0.20, 5, 0.25, 4, 80, 130, 102, 51, 23, 0, 1.05},
      {90, 2, 91, 0.15, 4, 0.10, 11, 90, 117, 104, 28, 15, 0, 0.3600000000000001},
  };
  for (const auto& c : cases) {
    util::Rng rng(c.tree_seed);
    const auto points = geometry::random_points(rng, c.n, c.dims, 100.0);
    const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
    const auto tree = build_multicast_tree(graph, 0).tree;
    DisseminationConfig config;
    config.max_retries = c.retries;
    config.ack_timeout = c.timeout;
    sim::LossModel loss;
    loss.drop_probability = c.loss;
    const auto r = run_dissemination(tree, config, sim::LatencyModel::constant(0.01),
                                     loss, c.sim_seed);
    SCOPED_TRACE("tree_seed=" + std::to_string(c.tree_seed));
    EXPECT_EQ(r.delivered, c.delivered);
    EXPECT_EQ(r.data_messages, c.data);
    EXPECT_EQ(r.ack_messages, c.acks);
    EXPECT_EQ(r.retransmissions, c.retx);
    EXPECT_EQ(r.duplicate_data, c.dups);
    EXPECT_EQ(r.abandoned_hops, c.abandoned);
    EXPECT_DOUBLE_EQ(r.completion_time, c.completion);
  }
}

}  // namespace
}  // namespace geomcast::multicast
