#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace geomcast::sim {
namespace {

/// Test node that records deliveries and can echo messages back.
class RecorderNode final : public Node {
 public:
  explicit RecorderNode(NodeId id, bool echo = false) : Node(id), echo_(echo) {}

  void on_message(Simulator& sim, const Envelope& envelope) override {
    received.push_back(envelope);
    times.push_back(sim.now());
    if (echo_ && envelope.kind == 1)
      sim.send(id(), envelope.from, /*kind=*/2, std::string("ack"));
  }

  std::vector<Envelope> received;
  std::vector<SimTime> times;

 private:
  bool echo_;
};

TEST(SimulatorTest, DeliversWithConstantLatency) {
  Simulator sim;
  RecorderNode a(0), b(1);
  sim.add_node(a);
  sim.add_node(b);
  sim.network().set_latency(LatencyModel::constant(0.5));
  sim.send(0, 1, 7, std::string("hello"));
  sim.run_until_idle();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].kind, 7u);
  EXPECT_EQ(std::any_cast<std::string>(b.received[0].payload), "hello");
  EXPECT_DOUBLE_EQ(b.times[0], 0.5);
}

TEST(SimulatorTest, RequestResponseRoundTrip) {
  Simulator sim;
  RecorderNode a(0);
  RecorderNode b(1, /*echo=*/true);
  sim.add_node(a);
  sim.add_node(b);
  sim.network().set_latency(LatencyModel::constant(1.0));
  sim.send(0, 1, 1, std::string("ping"));
  sim.run_until_idle();
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(a.received[0].kind, 2u);
  EXPECT_DOUBLE_EQ(a.times[0], 2.0);  // one hop out, one hop back
}

TEST(SimulatorTest, SendToUnknownNodeThrows) {
  Simulator sim;
  RecorderNode a(0);
  sim.add_node(a);
  EXPECT_THROW(sim.send(0, 5, 1, 0), std::invalid_argument);
}

TEST(SimulatorTest, NodeIdsMustBeDense) {
  Simulator sim;
  RecorderNode wrong(3);
  EXPECT_THROW(sim.add_node(wrong), std::invalid_argument);
}

TEST(SimulatorTest, StatsCountMessages) {
  Simulator sim;
  RecorderNode a(0), b(1);
  sim.add_node(a);
  sim.add_node(b);
  sim.send(0, 1, 1, 0);
  sim.send(0, 1, 1, 0);
  sim.send(1, 0, 2, 0);
  sim.run_until_idle();
  const auto& stats = sim.stats();
  EXPECT_EQ(stats.sent, 3u);
  EXPECT_EQ(stats.delivered, 3u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.sent_by_kind.at(1), 2u);
  EXPECT_EQ(stats.sent_by_kind.at(2), 1u);
  EXPECT_EQ(stats.sent_by_node[0], 2u);
  EXPECT_EQ(stats.received_by_node[1], 2u);
}

TEST(SimulatorTest, LossModelDropsEverything) {
  Simulator sim;
  RecorderNode a(0), b(1);
  sim.add_node(a);
  sim.add_node(b);
  sim.network().set_loss(LossModel{1.0, nullptr});
  for (int i = 0; i < 10; ++i) sim.send(0, 1, 1, 0);
  sim.run_until_idle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(sim.stats().dropped, 10u);
  EXPECT_EQ(sim.stats().delivered, 0u);
}

TEST(SimulatorTest, TargetedDropPredicate) {
  Simulator sim;
  RecorderNode a(0), b(1), c(2);
  sim.add_node(a);
  sim.add_node(b);
  sim.add_node(c);
  sim.network().set_loss(
      LossModel{0.0, [](const Envelope& e) { return e.to == 1; }});
  sim.send(0, 1, 1, 0);
  sim.send(0, 2, 1, 0);
  sim.run_until_idle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(c.received.size(), 1u);
}

TEST(SimulatorTest, ScheduleAfterFiresAtRightTime) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.schedule_after(2.5, [&] { fired.push_back(sim.now()); });
  sim.schedule_after(1.0, [&] { fired.push_back(sim.now()); });
  sim.run_until_idle();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[0], 1.0);
  EXPECT_DOUBLE_EQ(fired[1], 2.5);
}

TEST(SimulatorTest, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, CancelTimer) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_after(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until_idle();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(1.0, [&] { ++fired; });
  sim.schedule_after(5.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  sim.run_until_idle();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, UniformLatencyWithinBounds) {
  Simulator sim(99);
  RecorderNode a(0), b(1);
  sim.add_node(a);
  sim.add_node(b);
  sim.network().set_latency(LatencyModel::uniform(0.2, 0.4));
  for (int i = 0; i < 100; ++i) sim.send(0, 1, 1, 0);
  sim.run_until_idle();
  ASSERT_EQ(b.times.size(), 100u);
  for (const SimTime t : b.times) {
    EXPECT_GE(t, 0.2);
    EXPECT_LT(t, 0.4);
  }
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  auto run = [] {
    Simulator sim(1234);
    RecorderNode a(0), b(1);
    sim.add_node(a);
    sim.add_node(b);
    sim.network().set_latency(LatencyModel::uniform(0.1, 1.0));
    for (int i = 0; i < 50; ++i) sim.send(0, 1, 1, i);
    sim.run_until_idle();
    return b.times;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimulatorTest, DeliveryObserverSeesEveryDelivery) {
  Simulator sim;
  RecorderNode a(0), b(1);
  sim.add_node(a);
  sim.add_node(b);
  sim.network().set_latency(LatencyModel::constant(0.5));
  std::vector<std::pair<SimTime, MessageKind>> trace;
  sim.set_delivery_observer([&](SimTime when, const Envelope& envelope) {
    trace.emplace_back(when, envelope.kind);
  });
  sim.send(0, 1, 7, 0);
  sim.send(1, 0, 9, 0);
  sim.run_until_idle();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].second, 7u);
  EXPECT_EQ(trace[1].second, 9u);
  EXPECT_DOUBLE_EQ(trace[0].first, 0.5);

  // Clearing the observer stops tracing but not delivery.
  sim.set_delivery_observer(nullptr);
  sim.send(0, 1, 7, 0);
  sim.run_until_idle();
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(b.received.size(), 2u);
}

TEST(SimulatorTest, ObserverNotCalledForDroppedMessages) {
  Simulator sim;
  RecorderNode a(0), b(1);
  sim.add_node(a);
  sim.add_node(b);
  sim.network().set_loss(LossModel{1.0, nullptr});
  int observed = 0;
  sim.set_delivery_observer([&](SimTime, const Envelope&) { ++observed; });
  sim.send(0, 1, 1, 0);
  sim.run_until_idle();
  EXPECT_EQ(observed, 0);
}

TEST(SimulatorTest, MaxEventsBoundsRunaway) {
  Simulator sim;
  std::function<void()> forever = [&] { sim.schedule_after(1.0, forever); };
  sim.schedule_after(1.0, forever);
  const auto processed = sim.run_until_idle(/*max_events=*/100);
  EXPECT_EQ(processed, 100u);
}

}  // namespace
}  // namespace geomcast::sim
