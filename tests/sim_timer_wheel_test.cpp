// The kWheel event-queue backend must reproduce the binary heap's
// (time, insertion-sequence) pop order exactly — the heap is the oracle.
// These tests drive both backends through identical schedules (including
// ties, cancels, mid-run rescheduling, rung boundaries, and the overflow
// rung) and pin the equivalence, plus the wheel-specific edge paths.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace geomcast::sim {
namespace {

using PopLog = std::vector<std::pair<SimTime, int>>;

TEST(SimTimerWheel, RandomizedPopOrderMatchesHeapOracle) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    EventQueue heap(QueueBackend::kHeap);
    EventQueue wheel(QueueBackend::kWheel);
    PopLog heap_log;
    PopLog wheel_log;
    std::vector<EventId> heap_ids;
    std::vector<EventId> wheel_ids;

    util::Rng rng(seed);
    for (int i = 0; i < 4000; ++i) {
      // Mix of sub-tick clusters (forces ties and shared buckets), the
      // rung-0/rung-1 span, and a tail beyond the coarse horizon.
      double when;
      const double roll = rng.next_double();
      if (roll < 0.5) {
        when = rng.uniform(0.0, 1.0);
      } else if (roll < 0.8) {
        when = rng.uniform(0.0, 120.0);
      } else if (roll < 0.9) {
        when = 0.25;  // exact ties: insertion order must break them
      } else {
        when = rng.uniform(4000.0, 20000.0);  // overflow rung
      }
      heap_ids.push_back(heap.schedule(when, [&heap_log, when, i] {
        heap_log.emplace_back(when, i);
      }));
      wheel_ids.push_back(wheel.schedule(when, [&wheel_log, when, i] {
        wheel_log.emplace_back(when, i);
      }));
      // Cancel a random earlier event now and then — both queues see the
      // identical cancellation stream.
      if (i > 0 && rng.chance(0.3)) {
        const auto victim = static_cast<std::size_t>(rng.next_below(heap_ids.size()));
        EXPECT_EQ(heap.cancel(heap_ids[victim]), wheel.cancel(wheel_ids[victim]));
      }
    }

    ASSERT_EQ(heap.pending(), wheel.pending());
    while (heap.run_next()) {
      ASSERT_TRUE(wheel.run_next());
      ASSERT_EQ(heap.last_popped_time(), wheel.last_popped_time());
    }
    EXPECT_FALSE(wheel.run_next());
    EXPECT_EQ(heap_log, wheel_log);
    EXPECT_TRUE(wheel.empty());
  }
}

TEST(SimTimerWheel, TiesPopInInsertionOrder) {
  EventQueue wheel(QueueBackend::kWheel);
  PopLog log;
  // Same instant, scheduled out of a larger interleaving; insertion
  // sequence must decide.
  for (int i = 0; i < 8; ++i)
    wheel.schedule(3.125, [&log, i] { log.emplace_back(3.125, i); });
  while (wheel.run_next()) {
  }
  const PopLog expected = {{3.125, 0}, {3.125, 1}, {3.125, 2}, {3.125, 3},
                           {3.125, 4}, {3.125, 5}, {3.125, 6}, {3.125, 7}};
  EXPECT_EQ(log, expected);
}

TEST(SimTimerWheel, MidRunReschedulingMatchesHeapOracle) {
  // Actions that schedule follow-ups (the retransmit-timer pattern) must
  // interleave identically on both backends.
  PopLog logs[2];
  for (int b = 0; b < 2; ++b) {
    EventQueue queue(b == 0 ? QueueBackend::kHeap : QueueBackend::kWheel);
    util::Rng rng(99);
    std::function<void(int, double)> chain = [&](int depth, double at) {
      logs[b].emplace_back(at, depth);
      if (depth < 6) {
        const double next = at + rng.uniform(0.001, 0.4);
        queue.schedule(next, [&chain, depth, next] { chain(depth + 1, next); });
      }
    };
    for (int i = 0; i < 64; ++i) {
      const double at = rng.uniform(0.0, 2.0);
      queue.schedule(at, [&chain, at] { chain(0, at); });
    }
    while (queue.run_next()) {
    }
  }
  EXPECT_EQ(logs[0], logs[1]);
}

TEST(SimTimerWheel, OverflowRungDrainsThroughWheel) {
  // Events past the coarse horizon park in the overflow heap and must still
  // come out in global order once the cascade reaches them.
  constexpr double kSpan0 = EventQueue::kWheelTick * EventQueue::kFineBuckets;
  const double horizon = kSpan0 * EventQueue::kCoarseBuckets;
  EventQueue wheel(QueueBackend::kWheel);
  PopLog log;
  const std::vector<double> times = {horizon * 3.0, 0.5, horizon + 1.0,
                                     horizon + 1.0, kSpan0 * 2.0, horizon * 3.0};
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double when = times[i];
    wheel.schedule(when, [&log, when, i] { log.emplace_back(when, static_cast<int>(i)); });
  }
  while (wheel.run_next()) {
  }
  const PopLog expected = {{0.5, 1},
                           {kSpan0 * 2.0, 4},
                           {horizon + 1.0, 2},
                           {horizon + 1.0, 3},
                           {horizon * 3.0, 0},
                           {horizon * 3.0, 5}};
  EXPECT_EQ(log, expected);
}

TEST(SimTimerWheel, ScheduleBehindPeekedBoundaryStillPopsInOrder) {
  // next_time() advances the cascade cursor; a subsequent schedule near the
  // (much older) clock lands behind the boundary and must still pop first.
  EventQueue wheel(QueueBackend::kWheel);
  PopLog log;
  wheel.schedule(500.0, [&log] { log.emplace_back(500.0, 1); });
  EXPECT_DOUBLE_EQ(wheel.next_time(), 500.0);  // cascades far ahead
  wheel.schedule(0.25, [&log] { log.emplace_back(0.25, 0); });
  wheel.schedule(499.0, [&log] { log.emplace_back(499.0, 2); });
  EXPECT_DOUBLE_EQ(wheel.next_time(), 0.25);
  while (wheel.run_next()) {
  }
  const PopLog expected = {{0.25, 0}, {499.0, 2}, {500.0, 1}};
  EXPECT_EQ(log, expected);
}

TEST(SimTimerWheel, CancelHeavyWheelIsCompacted) {
  EventQueue wheel(QueueBackend::kWheel);
  std::vector<EventId> ids;
  for (int i = 0; i < 4096; ++i)
    ids.push_back(wheel.schedule(0.001 * i, [] {}));
  for (std::size_t i = 0; i < ids.size(); i += 2) wheel.cancel(ids[i]);
  EXPECT_EQ(wheel.pending(), 2048u);
  // Same invariant the heap backend pins: corpses never exceed half the
  // stored entries (plus the small floor).
  EXPECT_LE(wheel.heap_size(), std::max<std::size_t>(2 * wheel.pending(), 64));
  std::size_t ran = 0;
  while (wheel.run_next()) ++ran;
  EXPECT_EQ(ran, 2048u);
}

TEST(SimTimerWheel, ErrorsMatchHeapSemantics) {
  EventQueue wheel(QueueBackend::kWheel);
  EXPECT_THROW(static_cast<void>(wheel.next_time()), std::logic_error);
  EXPECT_FALSE(wheel.run_next());
  EXPECT_THROW(wheel.schedule(1.0, nullptr), std::invalid_argument);
  wheel.schedule(1.0, [] {});
  EXPECT_TRUE(wheel.run_next());
  EXPECT_THROW(wheel.schedule(0.5, [] {}), std::invalid_argument);  // in the past
  EXPECT_FALSE(wheel.cancel(12345));
  EXPECT_TRUE(wheel.empty());
}

TEST(SimTimerWheel, ReschedulingAtLastPoppedTimeIsAllowed) {
  EventQueue wheel(QueueBackend::kWheel);
  PopLog log;
  wheel.schedule(1.0, [&] {
    log.emplace_back(1.0, 0);
    wheel.schedule(1.0, [&log] { log.emplace_back(1.0, 1); });  // same instant
  });
  while (wheel.run_next()) {
  }
  const PopLog expected = {{1.0, 0}, {1.0, 1}};
  EXPECT_EQ(log, expected);
}

TEST(SimTimerWheel, BackendIsReported) {
  EXPECT_EQ(EventQueue{}.backend(), QueueBackend::kHeap);
  EXPECT_EQ(EventQueue(QueueBackend::kWheel).backend(), QueueBackend::kWheel);
}

}  // namespace
}  // namespace geomcast::sim
