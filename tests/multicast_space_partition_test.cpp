#include "multicast/space_partition.hpp"

#include <gtest/gtest.h>

#include "geometry/orthant.hpp"
#include "geometry/random_points.hpp"
#include "multicast/validator.hpp"
#include "multicast/zone.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "util/rng.hpp"

namespace geomcast::multicast {
namespace {

overlay::OverlayGraph make_overlay(std::size_t n, std::size_t dims, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto points = geometry::random_points(rng, n, dims, 100.0);
  return overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
}

TEST(SpacePartitionTest, SingletonOverlay) {
  util::Rng rng(1);
  const auto points = geometry::random_points(rng, 1, 2, 100.0);
  const overlay::OverlayGraph graph(points, {{}});
  const auto result = build_multicast_tree(graph, 0);
  EXPECT_EQ(result.tree.reached_count(), 1u);
  EXPECT_EQ(result.request_messages, 0u);
}

TEST(SpacePartitionTest, RootOutOfRangeThrows) {
  const auto graph = make_overlay(10, 2, 2);
  EXPECT_THROW(build_multicast_tree(graph, 10), std::invalid_argument);
}

TEST(SpacePartitionTest, TwoPeers) {
  util::Rng rng(3);
  const auto points = geometry::random_points(rng, 2, 2, 100.0);
  const auto graph = overlay::build_equilibrium(points, overlay::EmptyRectSelector{});
  const auto result = build_multicast_tree(graph, 0);
  EXPECT_EQ(result.tree.reached_count(), 2u);
  EXPECT_EQ(result.request_messages, 1u);
  EXPECT_EQ(result.tree.parent(1), 0u);
}

// The headline §2 claims, swept over dimension, root and seed.
class SpacePartitionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SpacePartitionPropertyTest, AllInvariantsHold) {
  const auto [dims, seed] = GetParam();
  const auto graph = make_overlay(120, static_cast<std::size_t>(dims), seed);
  for (overlay::PeerId root : {0u, 7u, 63u, 119u}) {
    const auto result = build_multicast_tree(graph, root);
    const auto report = validate_build(graph, result);
    EXPECT_TRUE(report.valid()) << "dims=" << dims << " root=" << root << ": "
                                << report.summary();
    EXPECT_EQ(result.request_messages, graph.size() - 1);
    EXPECT_EQ(result.duplicate_deliveries, 0u);
    EXPECT_EQ(result.tree.reached_count(), graph.size());
    EXPECT_LE(result.tree.max_children(), geometry::orthant_count(graph.dims()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpacePartitionPropertyTest,
                         ::testing::Combine(::testing::Values(2, 3, 4, 5),
                                            ::testing::Values(11u, 22u, 33u)));

TEST(SpacePartitionTest, DeterministicForFixedInputs) {
  const auto graph = make_overlay(80, 3, 4);
  const auto a = build_multicast_tree(graph, 5);
  const auto b = build_multicast_tree(graph, 5);
  EXPECT_EQ(a.request_messages, b.request_messages);
  for (overlay::PeerId p = 0; p < graph.size(); ++p) {
    EXPECT_EQ(a.tree.parent(p), b.tree.parent(p));
    EXPECT_EQ(a.zones[p], b.zones[p]);
  }
}

TEST(SpacePartitionTest, EveryPolicyCoversEverything) {
  // Median is the paper's choice, but the coverage argument only needs
  // *some* neighbour per non-empty region — any policy must still reach all.
  const auto graph = make_overlay(100, 2, 5);
  for (auto policy : {PickPolicy::kMedian, PickPolicy::kClosest, PickPolicy::kFarthest,
                      PickPolicy::kRandom}) {
    MulticastConfig config;
    config.policy = policy;
    config.rng_seed = 99;
    const auto result = build_multicast_tree(graph, 0, config);
    EXPECT_EQ(result.tree.reached_count(), graph.size()) << to_string(policy);
    EXPECT_EQ(result.request_messages, graph.size() - 1) << to_string(policy);
  }
}

TEST(SpacePartitionTest, RandomPolicySeedControlsShape) {
  const auto graph = make_overlay(100, 2, 6);
  MulticastConfig config;
  config.policy = PickPolicy::kRandom;
  config.rng_seed = 1;
  const auto a = build_multicast_tree(graph, 0, config);
  const auto a_again = build_multicast_tree(graph, 0, config);
  config.rng_seed = 2;
  const auto b = build_multicast_tree(graph, 0, config);

  auto parents = [&](const BuildResult& r) {
    std::vector<overlay::PeerId> out;
    for (overlay::PeerId p = 0; p < graph.size(); ++p) out.push_back(r.tree.parent(p));
    return out;
  };
  EXPECT_EQ(parents(a), parents(a_again));
  EXPECT_NE(parents(a), parents(b));
}

TEST(SpacePartitionTest, RootZoneIsWholeSpace) {
  const auto graph = make_overlay(50, 2, 7);
  const auto result = build_multicast_tree(graph, 3);
  EXPECT_EQ(result.zones[3], initiator_zone(2));
}

TEST(SpacePartitionTest, EveryNonRootZoneIsBoundedOnOneSide) {
  // Each non-root zone was clipped at least once, so at least one side per
  // delegation is finite; spot-check that zones are not the whole space.
  const auto graph = make_overlay(50, 2, 8);
  const auto result = build_multicast_tree(graph, 3);
  for (overlay::PeerId p = 0; p < graph.size(); ++p) {
    if (p == 3) continue;
    EXPECT_NE(result.zones[p], initiator_zone(2)) << "peer " << p;
  }
}

TEST(SpacePartitionTest, L2MetricAlsoValid) {
  // The paper sorts by L1, but the invariants are metric-independent.
  const auto graph = make_overlay(90, 3, 9);
  MulticastConfig config;
  config.metric = geometry::Metric::kL2;
  const auto result = build_multicast_tree(graph, 0, config);
  const auto report = validate_build(graph, result);
  EXPECT_TRUE(report.valid()) << report.summary();
}

}  // namespace
}  // namespace geomcast::multicast
