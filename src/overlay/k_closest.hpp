// Instance 3 of the paper's Hyperplanes method: H = 0, i.e. a single region
// containing all of space; the K closest known peers become neighbours.
#pragma once

#include "geometry/distance.hpp"
#include "overlay/selector.hpp"

namespace geomcast::overlay {

class KClosestSelector final : public NeighborSelector {
 public:
  explicit KClosestSelector(std::size_t k, geometry::Metric metric = geometry::Metric::kL2);

  [[nodiscard]] std::vector<PeerId> select(
      const geometry::Point& ego, std::span<const Candidate> candidates) const override;

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t k() const noexcept { return k_; }

 private:
  std::size_t k_;
  geometry::Metric metric_;
};

}  // namespace geomcast::overlay
