#include "overlay/empty_rect.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/orthant.hpp"
#include "geometry/rect.hpp"

namespace geomcast::overlay {

namespace {

/// Candidate enriched with its offset magnitudes from the ego peer.
struct Offset {
  PeerId id;
  geometry::OrthantCode orthant;
  double l1;
  std::array<double, geometry::kMaxDims> abs_delta;
};

/// True iff `a` dominates `b` componentwise (strictly closer to the ego in
/// every dimension). Both must belong to the same orthant.
bool dominates(const Offset& a, const Offset& b, std::size_t dims) noexcept {
  for (std::size_t i = 0; i < dims; ++i)
    if (a.abs_delta[i] >= b.abs_delta[i]) return false;
  return true;
}

std::vector<PeerId> select_2d(const geometry::Point& ego,
                              std::span<const Candidate> candidates) {
  // Staircase sweep per quadrant: sort by |dx|, keep a running min of |dy|;
  // a candidate is Pareto-minimal iff its |dy| beats the running min.
  struct Entry {
    PeerId id;
    double ax, ay;
  };
  std::array<std::vector<Entry>, 4> quadrants;
  for (const Candidate& c : candidates) {
    const double dx = c.point[0] - ego[0];
    const double dy = c.point[1] - ego[1];
    const unsigned q = (dx > 0 ? 1u : 0u) | (dy > 0 ? 2u : 0u);
    quadrants[q].push_back(Entry{c.id, std::abs(dx), std::abs(dy)});
  }
  std::vector<PeerId> result;
  for (auto& quadrant : quadrants) {
    std::sort(quadrant.begin(), quadrant.end(), [](const Entry& a, const Entry& b) {
      if (a.ax != b.ax) return a.ax < b.ax;
      return a.ay < b.ay;  // unreachable with distinct coordinates; keeps order total
    });
    double min_ay = geometry::kInf;
    for (const Entry& e : quadrant) {
      if (e.ay < min_ay) {
        result.push_back(e.id);
        min_ay = e.ay;
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace

std::vector<PeerId> EmptyRectSelector::select(const geometry::Point& ego,
                                              std::span<const Candidate> candidates) const {
  const std::size_t dims = ego.dims();
  if (dims == 2) return select_2d(ego, candidates);

  std::vector<Offset> offsets;
  offsets.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    Offset o;
    o.id = c.id;
    o.orthant = geometry::orthant_of(ego, c.point);
    o.l1 = 0.0;
    for (std::size_t i = 0; i < dims; ++i) {
      o.abs_delta[i] = std::abs(c.point[i] - ego[i]);
      o.l1 += o.abs_delta[i];
    }
    offsets.push_back(o);
  }
  // Scan in (orthant, L1) order so each orthant's accepted set is contiguous
  // and every potential dominator of a candidate precedes it.
  std::sort(offsets.begin(), offsets.end(), [](const Offset& a, const Offset& b) {
    if (a.orthant != b.orthant) return a.orthant < b.orthant;
    if (a.l1 != b.l1) return a.l1 < b.l1;
    return a.id < b.id;
  });

  std::vector<PeerId> result;
  std::vector<const Offset*> accepted;
  geometry::OrthantCode current_orthant = 0;
  bool first = true;
  for (const Offset& o : offsets) {
    if (first || o.orthant != current_orthant) {
      accepted.clear();
      current_orthant = o.orthant;
      first = false;
    }
    const bool dominated = std::any_of(
        accepted.begin(), accepted.end(),
        [&](const Offset* a) { return dominates(*a, o, dims); });
    if (!dominated) {
      accepted.push_back(&o);
      result.push_back(o.id);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<PeerId> EmptyRectSelector::select_brute_force(
    const geometry::Point& ego, std::span<const Candidate> candidates) {
  std::vector<PeerId> result;
  for (const Candidate& q : candidates) {
    const geometry::Rect box = geometry::Rect::spanned_by(ego, q.point);
    const bool blocked = std::any_of(
        candidates.begin(), candidates.end(), [&](const Candidate& r) {
          return r.id != q.id && box.contains_interior(r.point);
        });
    if (!blocked) result.push_back(q.id);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace geomcast::overlay
