// Neighbour-selection strategy interface (the paper's "neighbour selection
// method"): given the ego peer's coordinates and its knowledge set I(P),
// produce the set of overlay neighbours. Implementations must be
// deterministic functions of their inputs so that (a) the overlay converges
// to an equilibrium and (b) seeded experiments reproduce exactly.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "geometry/point.hpp"
#include "overlay/peer.hpp"

namespace geomcast::overlay {

class NeighborSelector {
 public:
  virtual ~NeighborSelector() = default;

  /// Selects neighbours for `ego` among `candidates` (I(P), ego excluded).
  /// Returns peer ids sorted ascending. Candidates may arrive in any order;
  /// the result must not depend on it.
  [[nodiscard]] virtual std::vector<PeerId> select(
      const geometry::Point& ego, std::span<const Candidate> candidates) const = 0;

  /// Human-readable name for tables and logs.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Convenience: builds the candidate vector for `ego_id` from a full point
/// set (the "full knowledge" I(P) of the equilibrium definition).
[[nodiscard]] std::vector<Candidate> candidates_excluding(
    const std::vector<geometry::Point>& points, PeerId ego_id);

}  // namespace geomcast::overlay
