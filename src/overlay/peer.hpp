// Peer identity. A peer's *identifier* in the paper is its coordinate
// vector; for bookkeeping we also give each peer a dense index (PeerId)
// and keep the (ip, port) network address the paper mentions for joins —
// it plays no role in any metric but keeps the API faithful.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "geometry/point.hpp"
#include "sim/network.hpp"

namespace geomcast::overlay {

/// Dense peer index; equals the sim::NodeId of the peer's simulated node.
using PeerId = sim::NodeId;
inline constexpr PeerId kInvalidPeer = sim::kInvalidNode;

/// Public transport endpoint (paper: "public IP and port").
struct NodeAddress {
  std::string ip = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] bool operator==(const NodeAddress&) const = default;
  [[nodiscard]] std::string to_string() const { return ip + ":" + std::to_string(port); }
};

/// A peer as seen by neighbour-selection: identifier (coordinates) + index.
struct Candidate {
  PeerId id = kInvalidPeer;
  geometry::Point point;
};

}  // namespace geomcast::overlay
