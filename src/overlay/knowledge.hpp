// The knowledge set I(P): peers from which existence announcements were
// received during the previous Tmax seconds, with their identifiers
// (coordinates) and network addresses.
#pragma once

#include <unordered_map>
#include <vector>

#include "geometry/point.hpp"
#include "overlay/peer.hpp"
#include "sim/time.hpp"

namespace geomcast::overlay {

class KnowledgeSet {
 public:
  explicit KnowledgeSet(sim::SimTime tmax) : tmax_(tmax) {}

  /// Records (or refreshes) an announcement from `peer` heard at `now`.
  void hear(PeerId peer, const geometry::Point& point, sim::SimTime now);

  /// Forgets entries older than Tmax relative to `now`.
  void expire(sim::SimTime now);

  /// Forgets a specific peer (e.g. on an explicit leave notification).
  void forget(PeerId peer) { entries_.erase(peer); }

  [[nodiscard]] bool knows(PeerId peer) const { return entries_.count(peer) > 0; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] sim::SimTime tmax() const noexcept { return tmax_; }

  /// Snapshot as a candidate vector (sorted by id for determinism).
  [[nodiscard]] std::vector<Candidate> candidates() const;

 private:
  struct Entry {
    geometry::Point point;
    sim::SimTime last_heard = 0.0;
  };
  sim::SimTime tmax_;
  std::unordered_map<PeerId, Entry> entries_;
};

}  // namespace geomcast::overlay
