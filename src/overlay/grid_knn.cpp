#include "overlay/grid_knn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "geometry/distance.hpp"

namespace geomcast::overlay {
namespace {

/// Uniform bucket grid over the point set's bounding box: m cells per
/// axis, m chosen for a small constant expected occupancy.
struct BucketGrid {
  std::size_t dims = 0;
  std::size_t m = 1;               // cells per axis
  double min_width = 1.0;          // narrowest cell extent across axes
  std::vector<double> lo;          // per-axis box minimum
  std::vector<double> width;       // per-axis cell extent (> 0)
  std::vector<std::vector<PeerId>> cells;  // row-major, m^dims buckets

  explicit BucketGrid(const std::vector<geometry::Point>& points) {
    dims = points.front().dims();
    const std::size_t n = points.size();
    // ~2 points per cell keeps ring scans short without blowing up the
    // cell count; one cell per axis would degenerate to brute force.
    const double per_axis =
        std::pow(static_cast<double>(n) / 2.0, 1.0 / static_cast<double>(dims));
    m = std::max<std::size_t>(1, static_cast<std::size_t>(per_axis));
    // Guard the bucket count: m^dims cells must stay O(n).
    while (m > 1 && std::pow(static_cast<double>(m), static_cast<double>(dims)) >
                        2.0 * static_cast<double>(n))
      --m;

    lo.assign(dims, std::numeric_limits<double>::infinity());
    std::vector<double> hi(dims, -std::numeric_limits<double>::infinity());
    for (const auto& p : points)
      for (std::size_t a = 0; a < dims; ++a) {
        lo[a] = std::min(lo[a], p[a]);
        hi[a] = std::max(hi[a], p[a]);
      }
    width.resize(dims);
    min_width = std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < dims; ++a) {
      const double extent = hi[a] - lo[a];
      width[a] = extent > 0.0 ? extent / static_cast<double>(m) : 1.0;
      min_width = std::min(min_width, width[a]);
    }

    std::size_t bucket_count = 1;
    for (std::size_t a = 0; a < dims; ++a) bucket_count *= m;
    cells.resize(bucket_count);
    for (PeerId p = 0; p < n; ++p) cells[bucket_of(points[p])].push_back(p);
  }

  [[nodiscard]] std::size_t axis_cell(const geometry::Point& p, std::size_t a) const {
    const auto c = static_cast<std::ptrdiff_t>((p[a] - lo[a]) / width[a]);
    return static_cast<std::size_t>(
        std::clamp<std::ptrdiff_t>(c, 0, static_cast<std::ptrdiff_t>(m) - 1));
  }

  [[nodiscard]] std::size_t bucket_of(const geometry::Point& p) const {
    std::size_t idx = 0;
    for (std::size_t a = 0; a < dims; ++a) idx = idx * m + axis_cell(p, a);
    return idx;
  }

  /// Visits every bucket whose cell coordinates lie at Chebyshev distance
  /// exactly `r` from `center` (distance 0 = the center cell itself).
  template <typename Fn>
  void for_ring(const std::vector<std::size_t>& center, std::size_t r, Fn&& fn) const {
    std::vector<std::ptrdiff_t> offset(dims, -static_cast<std::ptrdiff_t>(r));
    const auto radius = static_cast<std::ptrdiff_t>(r);
    while (true) {
      std::ptrdiff_t linf = 0;
      bool in_grid = true;
      std::size_t idx = 0;
      for (std::size_t a = 0; a < dims && in_grid; ++a) {
        linf = std::max(linf, std::abs(offset[a]));
        const auto c = static_cast<std::ptrdiff_t>(center[a]) + offset[a];
        if (c < 0 || c >= static_cast<std::ptrdiff_t>(m))
          in_grid = false;
        else
          idx = idx * m + static_cast<std::size_t>(c);
      }
      if (in_grid && linf == radius) fn(cells[idx]);
      // Mixed-radix increment over [-r, r]^dims.
      std::size_t a = dims;
      while (a > 0) {
        --a;
        if (++offset[a] <= radius) break;
        offset[a] = -radius;
        if (a == 0) return;
      }
      if (a == 0 && offset[0] == -radius) return;  // wrapped the whole counter
    }
  }
};

}  // namespace

std::vector<std::vector<PeerId>> grid_knn(const std::vector<geometry::Point>& points,
                                          std::size_t k) {
  const std::size_t n = points.size();
  if (n == 0) return {};
  if (k == 0) throw std::invalid_argument("grid_knn: k must be >= 1");
  const BucketGrid grid(points);

  std::vector<std::vector<PeerId>> result(n);
  std::vector<std::pair<double, PeerId>> found;  // (squared distance, id)
  std::vector<std::size_t> center(grid.dims);
  for (PeerId p = 0; p < n; ++p) {
    found.clear();
    for (std::size_t a = 0; a < grid.dims; ++a)
      center[a] = grid.axis_cell(points[p], a);
    for (std::size_t r = 0; r <= grid.m; ++r) {
      grid.for_ring(center, r, [&](const std::vector<PeerId>& cell) {
        for (const PeerId q : cell) {
          if (q == p) continue;
          found.emplace_back(geometry::l2_distance_sq(points[p], points[q]), q);
        }
      });
      // Certification: every unseen point sits in a cell at Chebyshev
      // cell-distance >= r+1, hence at least r whole cells — r*min_width
      // of coordinate gap — away along some axis. Once the kth-best
      // candidate is closer than that, no later ring can displace it.
      if (found.size() >= k) {
        std::nth_element(found.begin(), found.begin() + (k - 1), found.end());
        const double bound = static_cast<double>(r) * grid.min_width;
        if (found[k - 1].first <= bound * bound) break;
      }
    }
    std::sort(found.begin(), found.end());
    if (found.size() > k) found.resize(k);
    result[p].reserve(found.size());
    for (const auto& [d, q] : found) result[p].push_back(q);
  }
  return result;
}

std::vector<std::uint32_t> grid_regions(const std::vector<geometry::Point>& points,
                                        std::size_t regions) {
  const std::size_t n = points.size();
  if (n == 0) return {};
  if (regions == 0) throw std::invalid_argument("grid_regions: need >= 1 region");
  regions = std::min(regions, n);
  std::vector<std::uint32_t> out(n, 0);
  if (regions == 1) return out;
  const BucketGrid grid(points);
  // Row-major cell walk concatenates peers in a space-filling band order;
  // equal slices of it are contiguous cell ranges with ~n/regions peers.
  std::size_t seen = 0;
  for (const std::vector<PeerId>& cell : grid.cells)
    for (const PeerId p : cell) {
      out[p] = static_cast<std::uint32_t>(seen * regions / n);
      ++seen;
    }
  return out;
}

OverlayGraph build_equilibrium_local(const std::vector<geometry::Point>& points,
                                     const NeighborSelector& selector, std::size_t k) {
  const std::size_t n = points.size();
  std::vector<std::vector<PeerId>> out(n);
  if (n <= 1) return OverlayGraph(points, std::move(out));
  const auto knowledge = grid_knn(points, k);
  std::vector<Candidate> candidates;
  for (PeerId p = 0; p < n; ++p) {
    candidates.clear();
    candidates.reserve(knowledge[p].size());
    for (const PeerId q : knowledge[p]) candidates.push_back({q, points[q]});
    out[p] = selector.select(points[p], candidates);
  }
  return OverlayGraph(points, std::move(out));
}

}  // namespace geomcast::overlay
