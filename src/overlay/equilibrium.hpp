// Full-knowledge equilibrium construction.
//
// The paper defines the target topology of a neighbour-selection method as
// the one reached "when every peer P knows all the other peers in the
// system (i.e. when I(P) contains all the peers except P)". This builder
// computes that topology directly — each peer runs the selector over the
// complete candidate set — and is what the figure benches use; the gossip
// protocol (gossip.hpp) and the incremental builder (incremental.hpp) are
// tested to converge to (approximately) the same graph.
#pragma once

#include <cstddef>

#include "overlay/graph.hpp"
#include "overlay/selector.hpp"

namespace geomcast::overlay {

/// Runs `selector` for every peer over the full candidate set.
/// `threads` = 0 picks a sensible hardware default; selections are
/// independent so the result does not depend on the thread count.
[[nodiscard]] OverlayGraph build_equilibrium(const std::vector<geometry::Point>& points,
                                             const NeighborSelector& selector,
                                             std::size_t threads = 0);

/// True iff the graph is a fixed point of the selector under full
/// knowledge: re-running selection changes no peer's out-set. Holds by
/// construction for build_equilibrium; used as a sanity property in tests
/// and for graphs produced by the incremental/gossip paths.
[[nodiscard]] bool is_equilibrium(const OverlayGraph& graph, const NeighborSelector& selector);

}  // namespace geomcast::overlay
