#include "overlay/equilibrium.hpp"

#include <algorithm>
#include <thread>

namespace geomcast::overlay {

OverlayGraph build_equilibrium(const std::vector<geometry::Point>& points,
                               const NeighborSelector& selector, std::size_t threads) {
  const std::size_t n = points.size();
  std::vector<std::vector<PeerId>> out(n);
  if (n <= 1) return OverlayGraph(points, std::move(out));

  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw ? hw : 1;
  }
  threads = std::min(threads, n);

  auto worker = [&](std::size_t begin, std::size_t end) {
    for (std::size_t p = begin; p < end; ++p) {
      const auto candidates = candidates_excluding(points, static_cast<PeerId>(p));
      out[p] = selector.select(points[p], candidates);
    }
  };

  if (threads <= 1) {
    worker(0, n);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    const std::size_t chunk = (n + threads - 1) / threads;
    for (std::size_t t = 0; t < threads; ++t) {
      const std::size_t begin = t * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      pool.emplace_back(worker, begin, end);
    }
    for (auto& thread : pool) thread.join();
  }
  return OverlayGraph(points, std::move(out));
}

bool is_equilibrium(const OverlayGraph& graph, const NeighborSelector& selector) {
  for (PeerId p = 0; p < graph.size(); ++p) {
    const auto candidates = candidates_excluding(graph.points(), p);
    auto fresh = selector.select(graph.point(p), candidates);
    std::sort(fresh.begin(), fresh.end());
    if (fresh != graph.selected(p)) return false;
  }
  return true;
}

}  // namespace geomcast::overlay
