#include "overlay/knowledge.hpp"

#include <algorithm>

namespace geomcast::overlay {

void KnowledgeSet::hear(PeerId peer, const geometry::Point& point, sim::SimTime now) {
  auto& entry = entries_[peer];
  entry.point = point;
  entry.last_heard = std::max(entry.last_heard, now);
}

void KnowledgeSet::expire(sim::SimTime now) {
  std::erase_if(entries_, [&](const auto& kv) { return kv.second.last_heard + tmax_ < now; });
}

std::vector<Candidate> KnowledgeSet::candidates() const {
  std::vector<Candidate> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(Candidate{id, entry.point});
  std::sort(out.begin(), out.end(),
            [](const Candidate& a, const Candidate& b) { return a.id < b.id; });
  return out;
}

}  // namespace geomcast::overlay
