// Incremental overlay construction, modelling the paper's experimental
// procedure — "the peers were inserted one by one in the overlay (the
// overlay was allowed to converge after every insertion)" — without paying
// for a full message-level simulation.
//
// At equilibrium under periodic gossip, I(P) is exactly the set of peers
// within BR hops of P in the (undirected) topology, because each peer's
// announcement travels BR hops and stale entries expire. The builder
// therefore alternates
//     I(P) <- BR-hop ball around P;   out(P) <- select(I(P))
// until the topology stops changing (or a round cap is hit). With
// `full_knowledge = true` the ball is replaced by the whole peer set, which
// reproduces build_equilibrium and serves as a cross-check in tests.
#pragma once

#include <cstddef>
#include <optional>

#include "overlay/graph.hpp"
#include "overlay/selector.hpp"
#include "util/rng.hpp"

namespace geomcast::overlay {

struct IncrementalConfig {
  /// Gossip scope in hops (paper: BR >= 2).
  std::size_t br = 3;
  /// Re-selection rounds allowed per insertion before declaring
  /// non-convergence.
  std::size_t max_rounds_per_insert = 64;
  /// If true, I(P) is the full peer set (equilibrium oracle semantics).
  bool full_knowledge = false;
};

class IncrementalBuilder {
 public:
  IncrementalBuilder(const NeighborSelector& selector, IncrementalConfig config,
                     util::Rng rng);

  /// Inserts a peer: it bootstraps off one uniformly random existing *live*
  /// peer (the paper requires knowing at least one member), then the
  /// overlay re-converges. Returns the rounds used, or nullopt if the round
  /// cap was hit before convergence (topology left at the last iterate).
  std::optional<std::size_t> insert(const geometry::Point& point);

  /// Removes a live peer (the paper's "old peers leave the system one at a
  /// time") and lets the survivors re-converge. Peer ids of survivors are
  /// unchanged; graph() compacts. Returns rounds used, as insert().
  std::optional<std::size_t> remove(PeerId peer);

  /// Live peers (inserted minus removed).
  [[nodiscard]] std::size_t size() const noexcept { return live_count_; }
  [[nodiscard]] bool alive(PeerId peer) const { return alive_.at(peer); }

  /// Materialises the current topology over live peers, compacted to dense
  /// ids in insertion order. to_dense maps original PeerId -> compact id
  /// (kInvalidPeer for removed peers).
  [[nodiscard]] OverlayGraph graph() const;
  [[nodiscard]] std::vector<PeerId> dense_mapping() const;

 private:
  /// One global re-selection sweep; returns true if any out-set changed.
  bool reselect_round();
  void rebuild_undirected();
  [[nodiscard]] std::vector<Candidate> ball_candidates(PeerId ego) const;

  /// Runs re-selection rounds until stable or the cap is hit.
  std::optional<std::size_t> converge();

  const NeighborSelector& selector_;
  IncrementalConfig config_;
  util::Rng rng_;
  std::vector<geometry::Point> points_;
  std::vector<char> alive_;
  std::size_t live_count_ = 0;
  std::vector<std::vector<PeerId>> out_;
  std::vector<std::vector<PeerId>> undirected_;
  // Joiner knowledge persists until overwritten by the BR-ball of the next
  // round, mirroring bootstrap contacts that have not yet expired.
  std::vector<std::vector<PeerId>> extra_knowledge_;
};

}  // namespace geomcast::overlay
