#include "overlay/k_closest.hpp"

#include <algorithm>
#include <stdexcept>

namespace geomcast::overlay {

KClosestSelector::KClosestSelector(std::size_t k, geometry::Metric metric)
    : k_(k), metric_(metric) {
  if (k_ == 0) throw std::invalid_argument("KClosestSelector: K must be >= 1");
}

std::string KClosestSelector::name() const {
  return "k-closest(K=" + std::to_string(k_) + "," + geometry::to_string(metric_) + ")";
}

std::vector<PeerId> KClosestSelector::select(const geometry::Point& ego,
                                             std::span<const Candidate> candidates) const {
  struct Scored {
    PeerId id;
    double dist;
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (const Candidate& c : candidates)
    scored.push_back(Scored{c.id, geometry::distance(metric_, ego, c.point)});

  const std::size_t keep = std::min(k_, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(keep),
                    scored.end(), [](const Scored& a, const Scored& b) {
                      if (a.dist != b.dist) return a.dist < b.dist;
                      return a.id < b.id;
                    });
  std::vector<PeerId> result;
  result.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) result.push_back(scored[i].id);
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace geomcast::overlay
