// The empty-rectangle neighbour rule used for the paper's §2 experiments:
// Q ∈ I(P) is a neighbour of P iff the axis-aligned hyper-rectangle spanned
// by the identifiers of P and Q contains no other member of I(P).
//
// With all per-dimension coordinates distinct, a third peer R can only lie
// strictly inside that box if R sits in the same orthant as Q (relative to
// P) and |x(R,i)-x(P,i)| < |x(Q,i)-x(P,i)| in every dimension — i.e. R
// dominates Q componentwise. So the neighbours are exactly the Pareto-
// minimal candidates of each orthant, which we extract in O(n·A + n log n)
// per ego (A = answer size) by scanning candidates in increasing L1 order
// and testing dominance against already-accepted peers only (any dominator
// has a strictly smaller L1 norm, and dominance is transitive). A dedicated
// 2-D path uses the classic staircase sweep. A brute-force O(n²) reference
// exists for property tests.
#pragma once

#include "overlay/selector.hpp"

namespace geomcast::overlay {

class EmptyRectSelector final : public NeighborSelector {
 public:
  [[nodiscard]] std::vector<PeerId> select(
      const geometry::Point& ego, std::span<const Candidate> candidates) const override;

  [[nodiscard]] std::string name() const override { return "empty-rect"; }

  /// O(n²) reference implementation: literal paper rule, checks every
  /// candidate box against every other candidate.
  [[nodiscard]] static std::vector<PeerId> select_brute_force(
      const geometry::Point& ego, std::span<const Candidate> candidates);
};

}  // namespace geomcast::overlay
