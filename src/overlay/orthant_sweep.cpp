#include "overlay/orthant_sweep.hpp"

#include <algorithm>
#include <thread>

namespace geomcast::overlay {

OrthantSweepIndex::OrthantSweepIndex(std::vector<geometry::Point> points,
                                     geometry::Metric metric)
    : points_(std::move(points)), sorted_(points_.size()) {
  const std::size_t n = points_.size();
  auto build_for = [&](std::size_t begin, std::size_t end) {
    for (std::size_t p = begin; p < end; ++p) {
      auto& list = sorted_[p];
      list.reserve(n > 0 ? n - 1 : 0);
      for (std::size_t q = 0; q < n; ++q) {
        if (q == p) continue;
        list.push_back(Entry{geometry::orthant_of(points_[p], points_[q]),
                             geometry::distance(metric, points_[p], points_[q]),
                             static_cast<PeerId>(q)});
      }
      std::sort(list.begin(), list.end(), [](const Entry& a, const Entry& b) {
        if (a.orthant != b.orthant) return a.orthant < b.orthant;
        if (a.dist != b.dist) return a.dist < b.dist;
        return a.id < b.id;
      });
    }
  };

  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t threads = std::min<std::size_t>(hw ? hw : 1, n ? n : 1);
  if (threads <= 1 || n < 64) {
    build_for(0, n);
  } else {
    std::vector<std::thread> pool;
    const std::size_t chunk = (n + threads - 1) / threads;
    for (std::size_t t = 0; t < threads; ++t) {
      const std::size_t begin = t * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      pool.emplace_back(build_for, begin, end);
    }
    for (auto& thread : pool) thread.join();
  }
}

std::vector<std::vector<PeerId>> OrthantSweepIndex::select_k(std::size_t k) const {
  std::vector<std::vector<PeerId>> out(points_.size());
  for (std::size_t p = 0; p < points_.size(); ++p) {
    const auto& list = sorted_[p];
    auto& selection = out[p];
    std::size_t taken_in_run = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (i > 0 && list[i].orthant != list[i - 1].orthant) taken_in_run = 0;
      if (taken_in_run < k) {
        selection.push_back(list[i].id);
        ++taken_in_run;
      }
    }
    std::sort(selection.begin(), selection.end());
  }
  return out;
}

OverlayGraph OrthantSweepIndex::graph_for_k(std::size_t k) const {
  return OverlayGraph(points_, select_k(k));
}

}  // namespace geomcast::overlay
