#include "overlay/incremental.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace geomcast::overlay {

IncrementalBuilder::IncrementalBuilder(const NeighborSelector& selector,
                                       IncrementalConfig config, util::Rng rng)
    : selector_(selector), config_(config), rng_(rng) {}

std::optional<std::size_t> IncrementalBuilder::insert(const geometry::Point& point) {
  const auto joiner = static_cast<PeerId>(points_.size());
  points_.push_back(point);
  alive_.push_back(1);
  ++live_count_;
  out_.emplace_back();
  undirected_.emplace_back();
  extra_knowledge_.emplace_back();

  if (live_count_ > 1) {
    // Bootstrap: the joiner must know >= 1 existing live member; both sides
    // learn of each other through the join handshake.
    auto nth_live = rng_.next_below(live_count_ - 1);
    PeerId bootstrap = kInvalidPeer;
    for (PeerId p = 0; p < joiner; ++p) {
      if (!alive_[p]) continue;
      if (nth_live == 0) {
        bootstrap = p;
        break;
      }
      --nth_live;
    }
    extra_knowledge_[joiner].push_back(bootstrap);
    extra_knowledge_[bootstrap].push_back(joiner);
    // Seed the link so the first gossip round can traverse it.
    out_[joiner].push_back(bootstrap);
    rebuild_undirected();
  }
  return converge();
}

std::optional<std::size_t> IncrementalBuilder::remove(PeerId peer) {
  if (peer >= points_.size() || !alive_[peer])
    throw std::invalid_argument("IncrementalBuilder::remove: peer not alive");
  alive_[peer] = 0;
  --live_count_;
  out_[peer].clear();
  extra_knowledge_[peer].clear();
  // Survivors stop hearing the departed peer's announcements: purge it from
  // their retained bootstrap knowledge and re-converge (BR-ball knowledge
  // excludes dead peers by construction).
  for (auto& extras : extra_knowledge_)
    extras.erase(std::remove(extras.begin(), extras.end(), peer), extras.end());
  rebuild_undirected();
  return converge();
}

std::optional<std::size_t> IncrementalBuilder::converge() {
  for (std::size_t round = 1; round <= config_.max_rounds_per_insert; ++round) {
    if (!reselect_round()) return round;
  }
  return std::nullopt;
}

std::vector<Candidate> IncrementalBuilder::ball_candidates(PeerId ego) const {
  std::vector<Candidate> candidates;
  if (config_.full_knowledge) {
    for (std::size_t q = 0; q < points_.size(); ++q)
      if (q != ego && alive_[q])
        candidates.push_back(Candidate{static_cast<PeerId>(q), points_[q]});
    return candidates;
  }

  // BFS out to BR hops over the undirected topology: these are exactly the
  // live peers whose periodic announcements reach `ego`.
  std::vector<char> seen(points_.size(), 0);
  std::queue<std::pair<PeerId, std::size_t>> frontier;
  seen[ego] = 1;
  frontier.emplace(ego, 0);
  while (!frontier.empty()) {
    const auto [node, depth] = frontier.front();
    frontier.pop();
    if (depth == config_.br) continue;
    for (PeerId next : undirected_[node]) {
      if (!seen[next] && alive_[next]) {
        seen[next] = 1;
        frontier.emplace(next, depth + 1);
      }
    }
  }
  // Bootstrap contacts not yet superseded by gossip stay known.
  for (PeerId extra : extra_knowledge_[ego])
    if (alive_[extra]) seen[extra] = 1;

  for (std::size_t q = 0; q < points_.size(); ++q)
    if (q != ego && seen[q] && alive_[q])
      candidates.push_back(Candidate{static_cast<PeerId>(q), points_[q]});
  return candidates;
}

bool IncrementalBuilder::reselect_round() {
  bool changed = false;
  std::vector<std::vector<PeerId>> fresh(points_.size());
  for (std::size_t p = 0; p < points_.size(); ++p) {
    if (!alive_[p]) continue;
    const auto candidates = ball_candidates(static_cast<PeerId>(p));
    fresh[p] = selector_.select(points_[p], candidates);
    if (fresh[p] != out_[p]) changed = true;
  }
  if (changed) {
    out_ = std::move(fresh);
    rebuild_undirected();
  }
  return changed;
}

void IncrementalBuilder::rebuild_undirected() {
  for (auto& adjacency : undirected_) adjacency.clear();
  for (std::size_t p = 0; p < points_.size(); ++p) {
    for (PeerId q : out_[p]) {
      if (!alive_[q]) continue;  // links to departed peers are torn down
      undirected_[p].push_back(q);
      undirected_[q].push_back(static_cast<PeerId>(p));
    }
  }
  for (auto& adjacency : undirected_) {
    std::sort(adjacency.begin(), adjacency.end());
    adjacency.erase(std::unique(adjacency.begin(), adjacency.end()), adjacency.end());
  }
}

std::vector<PeerId> IncrementalBuilder::dense_mapping() const {
  std::vector<PeerId> to_dense(points_.size(), kInvalidPeer);
  PeerId next = 0;
  for (std::size_t p = 0; p < points_.size(); ++p)
    if (alive_[p]) to_dense[p] = next++;
  return to_dense;
}

OverlayGraph IncrementalBuilder::graph() const {
  const auto to_dense = dense_mapping();
  std::vector<geometry::Point> live_points;
  live_points.reserve(live_count_);
  std::vector<std::vector<PeerId>> live_out;
  live_out.reserve(live_count_);
  for (std::size_t p = 0; p < points_.size(); ++p) {
    if (!alive_[p]) continue;
    live_points.push_back(points_[p]);
    std::vector<PeerId> selection;
    for (PeerId q : out_[p])
      if (alive_[q]) selection.push_back(to_dense[q]);
    live_out.push_back(std::move(selection));
  }
  return OverlayGraph(std::move(live_points), std::move(live_out));
}

}  // namespace geomcast::overlay
