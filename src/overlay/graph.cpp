#include "overlay/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace geomcast::overlay {

OverlayGraph::OverlayGraph(std::vector<geometry::Point> points,
                           std::vector<std::vector<PeerId>> out)
    : points_(std::move(points)), out_(std::move(out)) {
  if (points_.size() != out_.size())
    throw std::invalid_argument("OverlayGraph: points/out size mismatch");

  const auto n = points_.size();
  undirected_.assign(n, {});
  for (std::size_t p = 0; p < n; ++p) {
    std::sort(out_[p].begin(), out_[p].end());
    out_[p].erase(std::unique(out_[p].begin(), out_[p].end()), out_[p].end());
    for (PeerId q : out_[p]) {
      if (q >= n) throw std::invalid_argument("OverlayGraph: selection out of range");
      if (q == p) throw std::invalid_argument("OverlayGraph: self-selection");
      undirected_[p].push_back(q);
      undirected_[q].push_back(static_cast<PeerId>(p));
    }
  }
  for (auto& adjacency : undirected_) {
    std::sort(adjacency.begin(), adjacency.end());
    adjacency.erase(std::unique(adjacency.begin(), adjacency.end()), adjacency.end());
    edge_count_ += adjacency.size();
  }
  edge_count_ /= 2;
}

bool OverlayGraph::has_edge(PeerId a, PeerId b) const {
  const auto& adjacency = neighbors(a);
  return std::binary_search(adjacency.begin(), adjacency.end(), b);
}

}  // namespace geomcast::overlay
