// Grid-accelerated k-nearest-neighbour knowledge sets, and equilibrium
// construction over them.
//
// build_equilibrium runs every peer's selector over the FULL candidate
// set — the paper's full-knowledge I(P) — which is O(n^2) selector input
// and caps simulations around 10^4 peers. The 100k-peer simulator-core
// sweep needs an overlay in seconds, and the paper's own large-scale
// story is local knowledge anyway (§ incremental/gossip): a peer knows a
// neighbourhood, not the world. This module supplies that neighbourhood
// deterministically: I(P) = the k nearest peers under L2, found with a
// uniform bucket grid and an expanding-ring search — O(k) expected per
// query on uniform point sets, O(n·k) for the whole overlay.
//
// Determinism: ties in distance are broken by peer id, so the candidate
// lists — and therefore the selector's output and every seeded experiment
// on top — are a pure function of (points, k). With k >= n-1 the
// knowledge set degenerates to full knowledge and build_equilibrium_local
// reproduces build_equilibrium bit-for-bit (pinned by the unit test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "overlay/graph.hpp"
#include "overlay/selector.hpp"

namespace geomcast::overlay {

/// The k nearest peers to each peer (self excluded), sorted by
/// (L2 distance, id) ascending. Returns fewer than k entries only when
/// the point set is smaller than k+1.
[[nodiscard]] std::vector<std::vector<PeerId>> grid_knn(
    const std::vector<geometry::Point>& points, std::size_t k);

/// build_equilibrium with grid-kNN knowledge sets: each peer's selector
/// sees its k nearest peers instead of everyone. Single-threaded — at
/// O(n·k) the build is seconds even at 100k peers, and thread-count
/// independence is free when there are no threads.
[[nodiscard]] OverlayGraph build_equilibrium_local(
    const std::vector<geometry::Point>& points, const NeighborSelector& selector,
    std::size_t k);

/// Partitions peers into `regions` contiguous regions of the coordinate
/// space for the sharded event loop: walks the same uniform bucket grid
/// grid_knn searches, row-major, and slices the concatenated peer order
/// into `regions` near-equal chunks — so each region is a contiguous band
/// of grid cells and most tree edges stay region-local. Returns a 0-based
/// region index per peer; a pure function of (points, regions). `regions`
/// is clamped to the peer count.
[[nodiscard]] std::vector<std::uint32_t> grid_regions(
    const std::vector<geometry::Point>& points, std::size_t regions);

}  // namespace geomcast::overlay
