// Greedy geometric unicast over the overlay — the point-to-point primitive
// the paper's substrate reference ([1], multi-path data transfer) builds
// on, and a second consumer of the empty-rectangle structure.
//
// To route from C to a destination peer B, forward to an overlay neighbour
// strictly inside the box spanned by C and B (preferring the one closest to
// B). On an empty-rectangle overlay at equilibrium such a neighbour always
// exists (the Pareto-descent argument, docs/ALGORITHMS.md §1), it is
// componentwise closer to B in every dimension, so the L1 distance strictly
// decreases and the packet provably arrives. On overlays without the
// coverage property the greedy step can strand; the router detects that and
// reports failure instead of looping.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "geometry/distance.hpp"
#include "geometry/rect.hpp"
#include "overlay/graph.hpp"

namespace geomcast::overlay {

struct RouteResult {
  bool delivered = false;
  /// Visited peers, source first; ends at the destination iff delivered.
  std::vector<PeerId> path;
  [[nodiscard]] std::size_t hops() const noexcept {
    return path.empty() ? 0 : path.size() - 1;
  }
};

/// Routes greedily from `source` to `destination` using only local
/// information at each hop (own coordinates, neighbours' coordinates, the
/// destination identifier carried by the packet). `max_hops` bounds the
/// walk defensively; the default exceeds any N used here.
[[nodiscard]] RouteResult route_greedy(const OverlayGraph& graph, PeerId source,
                                       PeerId destination, std::size_t max_hops = 100000);

/// One greedy step: the neighbour of `current` that route_greedy would
/// forward to next on the way to `destination` (the destination itself if
/// adjacent, else the in-corridor neighbour closest to it in L1), or
/// kInvalidPeer when stranded. `usable(q)` vetoes neighbours — the
/// hop-by-hop protocols use it to route around peers known to have
/// departed. Exposed so message-driven protocols (groups/pubsub) can
/// forward envelopes hop by hop with only local information. Templated on
/// the predicate so the per-neighbour loop stays inlinable on the routing
/// hot path.
template <typename Usable>
[[nodiscard]] PeerId greedy_next_hop(const OverlayGraph& graph, PeerId current,
                                     PeerId destination, Usable&& usable) {
  if (current >= graph.size() || destination >= graph.size())
    throw std::invalid_argument("greedy_next_hop: peer out of range");
  const geometry::Point& target = graph.point(destination);
  const geometry::Rect corridor = geometry::Rect::spanned_by(graph.point(current), target);
  PeerId next = kInvalidPeer;
  double best = 0.0;
  for (PeerId q : graph.neighbors(current)) {
    if (!usable(q)) continue;
    if (q == destination) return q;
    // Only hops strictly inside the corridor make provable progress
    // (componentwise closer to the destination in every dimension).
    if (!corridor.contains_interior(graph.point(q))) continue;
    const double dist = geometry::l1_distance(graph.point(q), target);
    if (next == kInvalidPeer || dist < best) {
      next = q;
      best = dist;
    }
  }
  return next;
}

[[nodiscard]] inline PeerId greedy_next_hop(const OverlayGraph& graph, PeerId current,
                                            PeerId destination) {
  return greedy_next_hop(graph, current, destination, [](PeerId) { return true; });
}

}  // namespace geomcast::overlay
