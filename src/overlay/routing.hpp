// Greedy geometric unicast over the overlay — the point-to-point primitive
// the paper's substrate reference ([1], multi-path data transfer) builds
// on, and a second consumer of the empty-rectangle structure.
//
// To route from C to a destination peer B, forward to an overlay neighbour
// strictly inside the box spanned by C and B (preferring the one closest to
// B). On an empty-rectangle overlay at equilibrium such a neighbour always
// exists (the Pareto-descent argument, docs/ALGORITHMS.md §1), it is
// componentwise closer to B in every dimension, so the L1 distance strictly
// decreases and the packet provably arrives. On overlays without the
// coverage property the greedy step can strand; the router detects that and
// reports failure instead of looping.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/distance.hpp"
#include "overlay/graph.hpp"

namespace geomcast::overlay {

struct RouteResult {
  bool delivered = false;
  /// Visited peers, source first; ends at the destination iff delivered.
  std::vector<PeerId> path;
  [[nodiscard]] std::size_t hops() const noexcept {
    return path.empty() ? 0 : path.size() - 1;
  }
};

/// Routes greedily from `source` to `destination` using only local
/// information at each hop (own coordinates, neighbours' coordinates, the
/// destination identifier carried by the packet). `max_hops` bounds the
/// walk defensively; the default exceeds any N used here.
[[nodiscard]] RouteResult route_greedy(const OverlayGraph& graph, PeerId source,
                                       PeerId destination, std::size_t max_hops = 100000);

}  // namespace geomcast::overlay
