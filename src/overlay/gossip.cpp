#include "overlay/gossip.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace geomcast::overlay {

namespace {
std::uint64_t dedup_key(PeerId origin, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(origin) << 40) | (seq & ((1ULL << 40) - 1));
}
}  // namespace

GossipNode::GossipNode(PeerId id, geometry::Point point, NodeAddress address,
                       const NeighborSelector& selector, GossipConfig config)
    : sim::Node(id),
      point_(std::move(point)),
      address_(std::move(address)),
      selector_(selector),
      config_(config),
      knowledge_(config.tmax) {
  if (config_.br < 2)
    throw std::invalid_argument("GossipConfig: the paper requires BR >= 2");
  if (config_.tmax <= config_.announce_period)
    throw std::invalid_argument("GossipConfig: Tmax must exceed the announce period");
}

void GossipNode::activate(sim::Simulator& sim, const std::vector<Candidate>& bootstrap) {
  active_ = true;
  for (const Candidate& c : bootstrap) knowledge_.hear(c.id, c.point, sim.now());
  reselect(sim);   // adopt initial neighbours immediately
  announce(sim);   // make the join visible without waiting a full period

  // Periodic timers, re-armed from their own callbacks. Nodes are owned by
  // the driver and outlive the simulator run, so capturing `this` is safe.
  sim.schedule_after(config_.announce_period, [this, &sim]() { periodic_announce(sim); });
  sim.schedule_after(config_.reselect_period, [this, &sim]() { periodic_reselect(sim); });
}

void GossipNode::periodic_announce(sim::Simulator& sim) {
  if (!active_) return;
  announce(sim);
  sim.schedule_after(config_.announce_period, [this, &sim]() { periodic_announce(sim); });
}

void GossipNode::periodic_reselect(sim::Simulator& sim) {
  if (!active_) return;
  reselect(sim);
  sim.schedule_after(config_.reselect_period, [this, &sim]() { periodic_reselect(sim); });
}

void GossipNode::announce(sim::Simulator& sim) {
  ++announce_seq_;
  Announcement announcement{id(), point_, address_, announce_seq_, config_.br};
  seen_.insert(dedup_key(id(), announce_seq_));
  fanout(sim, announcement, /*except=*/id());
}

void GossipNode::fanout(sim::Simulator& sim, const Announcement& announcement,
                        PeerId except) {
  for (PeerId neighbor : undirected_neighbors()) {
    if (neighbor == except || neighbor == announcement.origin) continue;
    sim.send(id(), neighbor, kAnnounceKind, announcement);
  }
}

void GossipNode::reselect(sim::Simulator& sim) {
  knowledge_.expire(sim.now());
  const auto candidates = knowledge_.candidates();
  auto fresh = selector_.select(point_, candidates);
  std::sort(fresh.begin(), fresh.end());
  if (fresh == out_) {
    ++stable_rounds_;
    return;
  }
  stable_rounds_ = 0;
  // Tell the peers on both sides of every changed link so their undirected
  // adjacency (and hence announcement forwarding) stays accurate.
  for (PeerId added : fresh)
    if (!std::binary_search(out_.begin(), out_.end(), added))
      sim.send(id(), added, kLinkAddKind, id());
  for (PeerId removed : out_)
    if (!std::binary_search(fresh.begin(), fresh.end(), removed))
      sim.send(id(), removed, kLinkRemoveKind, id());
  out_ = std::move(fresh);
}

std::vector<PeerId> GossipNode::undirected_neighbors() const {
  std::vector<PeerId> result = out_;
  result.insert(result.end(), in_links_.begin(), in_links_.end());
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

void GossipNode::on_message(sim::Simulator& sim, const sim::Envelope& envelope) {
  if (!active_) return;  // messages addressed to not-yet-joined peers are stale
  switch (envelope.kind) {
    case kAnnounceKind:
      handle_announcement(sim, envelope);
      break;
    case kLinkAddKind:
      in_links_.insert(std::any_cast<PeerId>(envelope.payload));
      break;
    case kLinkRemoveKind:
      in_links_.erase(std::any_cast<PeerId>(envelope.payload));
      break;
    default:
      util::log_warn() << "gossip node " << id() << ": unknown message kind "
                       << envelope.kind;
  }
}

void GossipNode::handle_announcement(sim::Simulator& sim, const sim::Envelope& envelope) {
  const auto& announcement = std::any_cast<const Announcement&>(envelope.payload);
  if (announcement.origin == id()) return;
  if (!seen_.insert(dedup_key(announcement.origin, announcement.seq)).second) return;
  knowledge_.hear(announcement.origin, announcement.origin_point, sim.now());
  if (announcement.ttl > 1) {
    Announcement forwarded = announcement;
    forwarded.ttl -= 1;
    fanout(sim, forwarded, envelope.from);
  }
}

GossipBuildResult build_overlay_with_gossip(const std::vector<geometry::Point>& points,
                                            const NeighborSelector& selector,
                                            const GossipConfig& config, std::uint64_t seed,
                                            std::size_t stable_rounds_required,
                                            double max_time_per_insert) {
  sim::Simulator sim(seed);
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);

  std::vector<std::unique_ptr<GossipNode>> nodes;
  nodes.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    NodeAddress address{"10.0.0." + std::to_string(i % 250 + 1),
                        static_cast<std::uint16_t>(9000 + i)};
    nodes.push_back(std::make_unique<GossipNode>(static_cast<PeerId>(i), points[i],
                                                 address, selector, config));
    sim.add_node(*nodes.back());
  }

  GossipBuildResult result{OverlayGraph{}, true, 0.0, 0, 0};
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::vector<Candidate> bootstrap;
    if (i > 0) {
      const auto contact = static_cast<PeerId>(rng.next_below(i));
      bootstrap.push_back(Candidate{contact, points[contact]});
    }
    nodes[i]->activate(sim, bootstrap);

    // Let the overlay converge: every active node must report a stable
    // selection for the required number of consecutive reselection rounds.
    const double deadline = sim.now() + max_time_per_insert;
    bool stable = false;
    while (sim.now() < deadline) {
      sim.run_until(sim.now() + config.reselect_period);
      stable = std::all_of(nodes.begin(), nodes.begin() + static_cast<std::ptrdiff_t>(i + 1),
                           [&](const auto& node) {
                             return node->stable_rounds() >= stable_rounds_required;
                           });
      if (stable) break;
    }
    if (!stable) result.converged = false;
  }

  std::vector<std::vector<PeerId>> out(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) out[i] = nodes[i]->selected();
  result.graph = OverlayGraph(points, std::move(out));
  result.sim_time = sim.now();
  const auto& stats = sim.stats();
  if (const auto it = stats.sent_by_kind.find(kAnnounceKind); it != stats.sent_by_kind.end())
    result.announce_messages = it->second;
  if (const auto add = stats.sent_by_kind.find(kLinkAddKind); add != stats.sent_by_kind.end())
    result.link_messages += add->second;
  if (const auto rem = stats.sent_by_kind.find(kLinkRemoveKind); rem != stats.sent_by_kind.end())
    result.link_messages += rem->second;
  return result;
}

}  // namespace geomcast::overlay
