#include "overlay/selector.hpp"

namespace geomcast::overlay {

std::vector<Candidate> candidates_excluding(const std::vector<geometry::Point>& points,
                                            PeerId ego_id) {
  std::vector<Candidate> candidates;
  candidates.reserve(points.empty() ? 0 : points.size() - 1);
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i == ego_id) continue;
    candidates.push_back(Candidate{static_cast<PeerId>(i), points[i]});
  }
  return candidates;
}

}  // namespace geomcast::overlay
