// The paper's overlay-maintenance protocol, run message-by-message on the
// discrete-event simulator:
//
//   * every peer periodically broadcasts its existence (identifier +
//     address) BR >= 2 hops away within the overlay;
//   * I(P) collects announcement origins heard in the last Tmax seconds;
//   * a neighbour-selection method periodically recomputes P's neighbours
//     from I(P); link changes are signalled to the affected peers so both
//     endpoints forward traffic over the undirected adjacency.
//
// The driver inserts peers one at a time (each bootstrapping off a random
// existing member) and waits for the topology to stabilise before the next
// insertion — the experimental procedure of §2. Figure benches use the
// equilibrium oracle instead (see equilibrium.hpp); tests verify that this
// protocol converges to (approximately) the oracle topology.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "overlay/graph.hpp"
#include "overlay/knowledge.hpp"
#include "overlay/peer.hpp"
#include "overlay/selector.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace geomcast::overlay {

/// Message kinds used by the gossip layer.
inline constexpr sim::MessageKind kAnnounceKind = 1;
inline constexpr sim::MessageKind kLinkAddKind = 2;
inline constexpr sim::MessageKind kLinkRemoveKind = 3;

/// Existence announcement, flooded BR hops over the overlay.
struct Announcement {
  PeerId origin = kInvalidPeer;
  geometry::Point origin_point;
  NodeAddress origin_address;
  std::uint64_t seq = 0;
  std::uint32_t ttl = 0;
};

struct GossipConfig {
  double announce_period = 1.0;
  /// Knowledge lifetime; must exceed announce_period (paper: "Tmax is
  /// larger than the gossiping period").
  double tmax = 4.0;
  std::uint32_t br = 3;
  double reselect_period = 1.0;
};

/// One peer of the gossip overlay. Inactive until activate() — the driver
/// registers all nodes up front (simulator ids are dense) and switches them
/// on as the insertion schedule reaches them.
class GossipNode final : public sim::Node {
 public:
  GossipNode(PeerId id, geometry::Point point, NodeAddress address,
             const NeighborSelector& selector, GossipConfig config);

  void on_message(sim::Simulator& sim, const sim::Envelope& envelope) override;

  /// Joins the overlay: primes I(P) with the bootstrap peers (the paper
  /// requires knowing at least one member) and starts the periodic
  /// announce / reselect timers.
  void activate(sim::Simulator& sim, const std::vector<Candidate>& bootstrap);

  /// Leaves the overlay without notice (crash-style departure, the case the
  /// paper's gossip design absorbs): timers stop, incoming messages are
  /// ignored, and the survivors forget this peer once its last announcement
  /// ages past Tmax and their next re-selection runs.
  void deactivate() noexcept { active_ = false; }

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] const geometry::Point& point() const noexcept { return point_; }
  [[nodiscard]] const NodeAddress& address() const noexcept { return address_; }
  /// P's current selection (sorted).
  [[nodiscard]] const std::vector<PeerId>& selected() const noexcept { return out_; }
  /// Undirected adjacency (selection union peers that selected P).
  [[nodiscard]] std::vector<PeerId> undirected_neighbors() const;
  /// Number of reselection rounds since the selection last changed.
  [[nodiscard]] std::size_t stable_rounds() const noexcept { return stable_rounds_; }

 private:
  void announce(sim::Simulator& sim);
  void reselect(sim::Simulator& sim);
  void periodic_announce(sim::Simulator& sim);
  void periodic_reselect(sim::Simulator& sim);
  void handle_announcement(sim::Simulator& sim, const sim::Envelope& envelope);
  void fanout(sim::Simulator& sim, const Announcement& announcement, PeerId except);

  geometry::Point point_;
  NodeAddress address_;
  const NeighborSelector& selector_;
  GossipConfig config_;
  KnowledgeSet knowledge_;
  std::vector<PeerId> out_;                  // my selection
  std::unordered_set<PeerId> in_links_;      // peers that selected me
  std::unordered_set<std::uint64_t> seen_;   // (origin, seq) dedup
  std::uint64_t announce_seq_ = 0;
  std::size_t stable_rounds_ = 0;
  bool active_ = false;
};

struct GossipBuildResult {
  OverlayGraph graph;
  bool converged = false;
  double sim_time = 0.0;
  std::uint64_t announce_messages = 0;
  std::uint64_t link_messages = 0;
};

/// Builds an overlay by inserting `points` one at a time on a fresh
/// simulator, waiting after each insertion until every active node's
/// selection has been stable for `stable_rounds_required` reselection
/// rounds (or `max_time_per_insert` sim-seconds pass).
[[nodiscard]] GossipBuildResult build_overlay_with_gossip(
    const std::vector<geometry::Point>& points, const NeighborSelector& selector,
    const GossipConfig& config, std::uint64_t seed, std::size_t stable_rounds_required = 4,
    double max_time_per_insert = 300.0);

}  // namespace geomcast::overlay
