// The overlay topology: which peers selected which, and the resulting
// undirected adjacency. The paper reports degree statistics over this
// graph (Fig 1 a, c) and runs both tree algorithms on top of it.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/point.hpp"
#include "overlay/peer.hpp"

namespace geomcast::overlay {

class OverlayGraph {
 public:
  OverlayGraph() = default;

  /// Builds from per-peer selections. `out[p]` is the list of peers p chose
  /// (sorted or not). The undirected adjacency is the union p~q iff p chose
  /// q or q chose p — a peer that selects q will exchange traffic with q
  /// regardless of whether q reciprocates.
  OverlayGraph(std::vector<geometry::Point> points, std::vector<std::vector<PeerId>> out);

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] std::size_t dims() const noexcept {
    return points_.empty() ? 0 : points_.front().dims();
  }
  [[nodiscard]] const geometry::Point& point(PeerId p) const { return points_.at(p); }
  [[nodiscard]] const std::vector<geometry::Point>& points() const noexcept { return points_; }

  /// Peers p selected (its own selection, sorted ascending).
  [[nodiscard]] const std::vector<PeerId>& selected(PeerId p) const { return out_.at(p); }
  /// Undirected neighbourhood (sorted ascending, no duplicates).
  [[nodiscard]] const std::vector<PeerId>& neighbors(PeerId p) const { return undirected_.at(p); }

  [[nodiscard]] bool has_edge(PeerId a, PeerId b) const;
  [[nodiscard]] std::size_t degree(PeerId p) const { return neighbors(p).size(); }
  /// Number of undirected edges.
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  [[nodiscard]] bool operator==(const OverlayGraph& other) const {
    return points_ == other.points_ && undirected_ == other.undirected_;
  }

 private:
  std::vector<geometry::Point> points_;
  std::vector<std::vector<PeerId>> out_;
  std::vector<std::vector<PeerId>> undirected_;
  std::size_t edge_count_ = 0;
};

}  // namespace geomcast::overlay
