#include "overlay/routing.hpp"

#include <stdexcept>

#include "geometry/rect.hpp"

namespace geomcast::overlay {

RouteResult route_greedy(const OverlayGraph& graph, PeerId source, PeerId destination,
                         std::size_t max_hops) {
  if (source >= graph.size() || destination >= graph.size())
    throw std::invalid_argument("route_greedy: peer out of range");

  RouteResult result;
  result.path.push_back(source);
  PeerId current = source;
  const geometry::Point& target = graph.point(destination);

  while (current != destination && result.path.size() <= max_hops) {
    const geometry::Rect corridor =
        geometry::Rect::spanned_by(graph.point(current), target);
    PeerId next = kInvalidPeer;
    double best = 0.0;
    for (PeerId q : graph.neighbors(current)) {
      if (q == destination) {
        next = q;
        break;
      }
      // Only hops strictly inside the corridor make provable progress
      // (componentwise closer to the destination in every dimension).
      if (!corridor.contains_interior(graph.point(q))) continue;
      const double dist = geometry::l1_distance(graph.point(q), target);
      if (next == kInvalidPeer || dist < best) {
        next = q;
        best = dist;
      }
    }
    if (next == kInvalidPeer) return result;  // stranded: no in-corridor neighbour
    result.path.push_back(next);
    current = next;
  }
  result.delivered = current == destination;
  return result;
}

}  // namespace geomcast::overlay
