#include "overlay/routing.hpp"

#include <stdexcept>

#include "geometry/rect.hpp"

namespace geomcast::overlay {

RouteResult route_greedy(const OverlayGraph& graph, PeerId source, PeerId destination,
                         std::size_t max_hops) {
  if (source >= graph.size() || destination >= graph.size())
    throw std::invalid_argument("route_greedy: peer out of range");

  RouteResult result;
  result.path.push_back(source);
  PeerId current = source;

  while (current != destination && result.path.size() <= max_hops) {
    const PeerId next = greedy_next_hop(graph, current, destination);
    if (next == kInvalidPeer) return result;  // stranded: no in-corridor neighbour
    result.path.push_back(next);
    current = next;
  }
  result.delivered = current == destination;
  return result;
}

}  // namespace geomcast::overlay
