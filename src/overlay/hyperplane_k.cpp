#include "overlay/hyperplane_k.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace geomcast::overlay {

HyperplaneKSelector::HyperplaneKSelector(geometry::HyperplaneArrangement arrangement,
                                         std::size_t k, geometry::Metric metric)
    : arrangement_(std::move(arrangement)), k_(k), metric_(metric) {
  if (k_ == 0) throw std::invalid_argument("HyperplaneKSelector: K must be >= 1");
}

HyperplaneKSelector HyperplaneKSelector::orthogonal(std::size_t dims, std::size_t k,
                                                    geometry::Metric metric) {
  return HyperplaneKSelector(geometry::HyperplaneArrangement::orthogonal(dims), k, metric);
}

std::string HyperplaneKSelector::name() const {
  return "hyperplanes(H=" + std::to_string(arrangement_.plane_count()) +
         ",K=" + std::to_string(k_) + "," + geometry::to_string(metric_) + ")";
}

std::vector<PeerId> HyperplaneKSelector::select(
    const geometry::Point& ego, std::span<const Candidate> candidates) const {
  struct Scored {
    PeerId id;
    double dist;
  };
  std::unordered_map<geometry::RegionKey, std::vector<Scored>, geometry::RegionKeyHash>
      regions;
  for (const Candidate& c : candidates) {
    const auto key = arrangement_.region_of(ego, c.point);
    regions[key].push_back(Scored{c.id, geometry::distance(metric_, ego, c.point)});
  }

  std::vector<PeerId> result;
  for (auto& [key, members] : regions) {
    (void)key;
    const std::size_t keep = std::min(k_, members.size());
    // Ties broken by id so the selection is a deterministic function of the
    // candidate *set* regardless of input order.
    std::partial_sort(members.begin(), members.begin() + static_cast<std::ptrdiff_t>(keep),
                      members.end(), [](const Scored& a, const Scored& b) {
                        if (a.dist != b.dist) return a.dist < b.dist;
                        return a.id < b.id;
                      });
    for (std::size_t i = 0; i < keep; ++i) result.push_back(members[i].id);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace geomcast::overlay
