// Precomputed structure for sweeping K in the Orthogonal-Hyperplanes(K)
// selection (Fig 1 d/e run K = 1..50 for each D). Building the equilibrium
// from scratch per K costs O(N^2 log N) each; this index pays that once per
// dimension and then materialises any K's out-lists by taking per-orthant
// prefixes. select_k(k) is guaranteed to equal
// HyperplaneKSelector::orthogonal(D, k, metric) under full knowledge
// (tested in tests/overlay_orthant_sweep_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/distance.hpp"
#include "geometry/orthant.hpp"
#include "overlay/graph.hpp"
#include "overlay/peer.hpp"

namespace geomcast::overlay {

class OrthantSweepIndex {
 public:
  OrthantSweepIndex(std::vector<geometry::Point> points,
                    geometry::Metric metric = geometry::Metric::kL2);

  /// Out-lists (per-peer selections) for the given K: the K closest peers
  /// of each orthant, ties broken by id.
  [[nodiscard]] std::vector<std::vector<PeerId>> select_k(std::size_t k) const;

  /// Full overlay graph for the given K.
  [[nodiscard]] OverlayGraph graph_for_k(std::size_t k) const;

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

 private:
  struct Entry {
    geometry::OrthantCode orthant;
    double dist;
    PeerId id;
  };
  std::vector<geometry::Point> points_;
  /// Per peer: all other peers sorted by (orthant, dist, id); orthant runs
  /// are contiguous so per-K extraction is a single pass.
  std::vector<std::vector<Entry>> sorted_;
};

}  // namespace geomcast::overlay
