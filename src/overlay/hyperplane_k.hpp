// The generic Hyperplanes neighbour-selection method (paper reference [1]):
// translate so the ego peer is the origin, classify every known peer into
// the region of a hyperplane arrangement, and keep the K closest peers of
// each region under a configurable distance function.
//
// With the orthogonal arrangement this is the paper's "Orthogonal
// Hyperplanes" method (used for the §3 stability experiments); with the
// empty arrangement it degenerates to plain K-closest (instance 3).
#pragma once

#include "geometry/distance.hpp"
#include "geometry/hyperplane.hpp"
#include "overlay/selector.hpp"

namespace geomcast::overlay {

class HyperplaneKSelector final : public NeighborSelector {
 public:
  HyperplaneKSelector(geometry::HyperplaneArrangement arrangement, std::size_t k,
                      geometry::Metric metric = geometry::Metric::kL2);

  [[nodiscard]] std::vector<PeerId> select(
      const geometry::Point& ego, std::span<const Candidate> candidates) const override;

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t k() const noexcept { return k_; }
  [[nodiscard]] const geometry::HyperplaneArrangement& arrangement() const noexcept {
    return arrangement_;
  }

  /// Convenience factory for the paper's Orthogonal Hyperplanes method.
  [[nodiscard]] static HyperplaneKSelector orthogonal(
      std::size_t dims, std::size_t k, geometry::Metric metric = geometry::Metric::kL2);

 private:
  geometry::HyperplaneArrangement arrangement_;
  std::size_t k_;
  geometry::Metric metric_;
};

}  // namespace geomcast::overlay
