#include "util/flags.hpp"

#include <stdexcept>

namespace geomcast::util {

namespace {
bool looks_like_flag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}
}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& text = it->second;
  if (text == "true" || text == "1" || text == "yes" || text == "on") return true;
  if (text == "false" || text == "0" || text == "no" || text == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" + text + "'");
}

std::vector<std::int64_t> Flags::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  std::string token;
  for (char ch : it->second + ",") {
    if (ch == ',') {
      if (!token.empty()) {
        out.push_back(std::stoll(token));
        token.clear();
      }
    } else {
      token += ch;
    }
  }
  return out;
}

}  // namespace geomcast::util
