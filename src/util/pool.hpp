// Pooled immutable payloads behind an 8-byte refcounted handle.
//
// Message payloads travel the simulator inside std::any. libstdc++'s any
// stores a type inline only up to sizeof(void*) = 8 bytes; anything larger
// — a 16-byte shared_ptr included — goes through _Manager_external and
// heap-allocates on every any construction and copy, once per hop on the
// dissemination fan-out. RcPtr is an 8-byte intrusive-refcount handle that
// stays inside the any's inline buffer, so a fan-out copy is one pointer
// store plus one refcount increment: no heap traffic at all.
//
// RcPool owns the backing storage: make() constructs the payload into a
// {refcount, pool, T} block drawn from a free list, and the last RcPtr to
// drop returns the block there — steady-state payload churn costs no
// allocation.
//
// Threading contract (the sharded event loop, sim/simulator.hpp):
//
//  - The pool is single-writer. make(), recycle() and release() must run
//    on the thread that owns the pool's shard — in this codebase the
//    simulator's coordinating thread, because payload creation is
//    control-plane work that only executes while worker lanes are parked.
//    Debug builds assert this (a parallel-phase worker calling make()
//    trips the assert).
//  - Handles travel freely: the refcount is atomic (relaxed increments,
//    acquire/release on the final decrement — the shared_ptr discipline),
//    so any thread may copy or drop an RcPtr. A drop that reaches zero on
//    a parallel-phase worker must NOT touch the pool's free list; it parks
//    the block on the thread's deferred-recycle list (RcThread::deferred,
//    installed by the sharded loop), and the coordinating thread flushes
//    those lists at the next window barrier.
//  - The classic single-threaded path never installs a deferred list, so
//    every drop recycles directly, exactly as before; the only cost of the
//    contract there is an uncontended atomic count.
//
// Lifetime contract: the pool must outlive every handle it produced —
// declare it before (i.e. destroy it after) the subsystems that can hold
// payloads. release() between bench cells frees only the cached blocks;
// live handles are unaffected and recycle into the emptied list as they
// drop.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace geomcast::util {

template <typename T>
class RcPtr;

/// Per-thread hook for the sharded event loop: while non-null, RcPtr drops
/// that reach zero enqueue a {recycle-thunk, block} pair here instead of
/// touching the pool. The coordinating thread flushes (and clears) each
/// worker's list at the window barrier, when no worker is running.
struct RcThread {
  using DeferredRecycle = std::pair<void (*)(void*), void*>;
  static thread_local std::vector<DeferredRecycle>* deferred;
};
inline thread_local std::vector<RcThread::DeferredRecycle>*
    RcThread::deferred = nullptr;

template <typename T>
class RcPool {
 public:
  RcPool() = default;
  RcPool(const RcPool&) = delete;
  RcPool& operator=(const RcPool&) = delete;
  ~RcPool() { release(); }

  /// Constructs a T from `args` in a pooled block and hands back the first
  /// reference to it. The payload is immutable through the handle.
  template <typename... Args>
  [[nodiscard]] RcPtr<T> make(Args&&... args);

  /// Frees the cached blocks (pool reset between bench cells). Handles
  /// still alive are unaffected; their blocks rejoin the free list when
  /// the last reference drops.
  void release() {
    for (void* block : free_) ::operator delete(block);
    free_.clear();
  }

  /// Blocks sitting in the free list.
  [[nodiscard]] std::size_t cached() const noexcept { return free_.size(); }
  /// Blocks ever drawn from operator new — the pool's high-water mark.
  [[nodiscard]] std::size_t allocated() const noexcept { return allocated_; }

 private:
  friend class RcPtr<T>;

  struct Box {
    std::atomic<std::size_t> count;
    RcPool* pool;
    T value;
  };

  void recycle(Box* box) noexcept {
    assert(RcThread::deferred == nullptr &&
           "RcPool is single-writer: recycle() must run on the owning shard");
    box->~Box();
    free_.push_back(box);
  }

  std::vector<void*> free_;
  std::size_t allocated_ = 0;
};

/// Shared read-only handle to a pooled T. Exactly one pointer wide, so it
/// rides std::any's inline storage; copying bumps the atomic count.
template <typename T>
class RcPtr {
 public:
  RcPtr() = default;
  RcPtr(const RcPtr& other) noexcept : box_(other.box_) {
    if (box_ != nullptr)
      box_->count.fetch_add(1, std::memory_order_relaxed);
  }
  RcPtr(RcPtr&& other) noexcept : box_(std::exchange(other.box_, nullptr)) {}
  RcPtr& operator=(RcPtr other) noexcept {
    std::swap(box_, other.box_);
    return *this;
  }
  ~RcPtr() {
    if (box_ == nullptr) return;
    if (box_->count.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    // Last reference: recycle directly on the owning shard, or defer the
    // pool mutation to the barrier when dropped on a parallel worker.
    if (auto* list = RcThread::deferred)
      list->emplace_back(&RcPtr::recycle_thunk, box_);
    else
      box_->pool->recycle(box_);
  }

  [[nodiscard]] const T& operator*() const noexcept { return box_->value; }
  [[nodiscard]] const T* operator->() const noexcept { return &box_->value; }
  [[nodiscard]] explicit operator bool() const noexcept { return box_ != nullptr; }

 private:
  friend class RcPool<T>;
  explicit RcPtr(typename RcPool<T>::Box* box) noexcept : box_(box) {}

  static void recycle_thunk(void* raw) {
    auto* box = static_cast<typename RcPool<T>::Box*>(raw);
    box->pool->recycle(box);
  }

  typename RcPool<T>::Box* box_ = nullptr;
};

/// Recycling arena behind FreeListAllocator: caches blocks of one size
/// (the first single-object size requested — a node-based container's node
/// size) and passes everything else through to the global heap.
class FreeListArena {
 public:
  FreeListArena() = default;
  FreeListArena(const FreeListArena&) = delete;
  FreeListArena& operator=(const FreeListArena&) = delete;
  ~FreeListArena() {
    for (void* block : free_) ::operator delete(block);
  }

  [[nodiscard]] void* take(std::size_t size) {
    if (block_size_ == 0) block_size_ = size;
    if (size == block_size_ && !free_.empty()) {
      void* block = free_.back();
      free_.pop_back();
      return block;
    }
    return ::operator new(size);
  }

  void put(void* block, std::size_t size) noexcept {
    if (size == block_size_) {
      free_.push_back(block);
      return;
    }
    ::operator delete(block);
  }

 private:
  std::vector<void*> free_;
  std::size_t block_size_ = 0;
};

/// Allocator for node-based containers on hot paths (e.g. the hop layer's
/// pending table): single-object allocations — the per-element nodes —
/// recycle through a FreeListArena shared by every rebound copy, so
/// steady-state insert/erase churn costs no heap traffic. Array
/// allocations (hash bucket tables) pass through untouched.
template <typename T>
class FreeListAllocator {
 public:
  using value_type = T;

  FreeListAllocator() : arena_(std::make_shared<FreeListArena>()) {}
  template <typename U>
  FreeListAllocator(const FreeListAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 1) return static_cast<T*>(arena_->take(sizeof(T)));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1) {
      arena_->put(p, sizeof(T));
      return;
    }
    ::operator delete(p);
  }

  template <typename U>
  [[nodiscard]] bool operator==(const FreeListAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }
  [[nodiscard]] const std::shared_ptr<FreeListArena>& arena() const noexcept {
    return arena_;
  }

 private:
  std::shared_ptr<FreeListArena> arena_;
};

template <typename T>
template <typename... Args>
RcPtr<T> RcPool<T>::make(Args&&... args) {
  assert(RcThread::deferred == nullptr &&
         "RcPool is single-writer: make() must run on the owning shard");
  void* raw;
  if (!free_.empty()) {
    raw = free_.back();
    free_.pop_back();
  } else {
    ++allocated_;
    raw = ::operator new(sizeof(Box));
  }
  return RcPtr<T>{new (raw) Box{1, this, T{std::forward<Args>(args)...}}};
}

}  // namespace geomcast::util
