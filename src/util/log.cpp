#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace geomcast::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, const std::string& text) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::cerr << "[geomcast " << level_name(level) << "] " << text << '\n';
}

}  // namespace geomcast::util
