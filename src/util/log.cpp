#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>

namespace geomcast::util {

namespace {

LogLevel initial_level() {
  if (const char* env = std::getenv("GEOMCAST_LOG"))
    if (const auto parsed = parse_log_level(env)) return *parsed;
  return LogLevel::kWarn;
}

/// Function-local static: the environment is consulted exactly once, at
/// the first logging call, and never again — later set_log_level() calls
/// simply overwrite the store.
std::atomic<LogLevel>& level_store() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

std::optional<LogLevel> parse_log_level(std::string name) noexcept {
  for (char& c : name) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off" || name == "none") return LogLevel::kOff;
  return std::nullopt;
}

void set_log_level(LogLevel level) noexcept { level_store().store(level); }

LogLevel log_level() noexcept { return level_store().load(); }

void log_message(LogLevel level, const std::string& text) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::cerr << "[geomcast " << level_name(level) << "] " << text << '\n';
}

}  // namespace geomcast::util
