#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/stats.hpp"

namespace geomcast::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table requires at least one column");
}

Table& Table::begin_row() {
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

Table& Table::add_cell(std::string value) {
  if (rows_.empty()) throw std::logic_error("add_cell before begin_row");
  if (rows_.back().size() >= header_.size())
    throw std::logic_error("row has more cells than header columns");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::add_number(double value, int max_decimals) {
  return add_cell(format_number(value, max_decimals));
}

Table& Table::add_integer(long long value) { return add_cell(std::to_string(value)); }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      out << (c == 0 ? "| " : " ");
      out << text << std::string(widths[c] - text.size(), ' ') << " |";
    }
    out << '\n';
  };

  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << (c == 0 ? "|-" : "-") << std::string(widths[c], '-') << "-|";
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (char ch : cell) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}
}  // namespace

void Table::print_csv(std::ostream& out) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(cells[c]);
    }
    out << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_csv() const {
  std::ostringstream out;
  print_csv(out);
  return out.str();
}

}  // namespace geomcast::util
