// Small statistics helpers used by every experiment driver: a constant-space
// running accumulator (Welford) and a value collector for exact quantiles.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace geomcast::util {

/// Constant-space accumulator for count/min/max/mean/variance.
class RunningStats {
 public:
  void add(double value) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Min/max/mean of an empty accumulator are 0 by convention.
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean() * static_cast<double>(count_); }
  /// Population variance / standard deviation.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores every sample; offers exact order statistics. Intended for the
/// experiment drivers where sample counts are at most a few million.
class Distribution {
 public:
  void add(double value) {
    values_.push_back(value);
    sorted_ = false;
  }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// Exact quantile with linear interpolation; q in [0, 1]. Empty => 0.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Formats a double with trailing-zero trimming ("3.5", "12", "0.25").
[[nodiscard]] std::string format_number(double value, int max_decimals = 3);

}  // namespace geomcast::util
