// Tiny leveled logger writing to stderr. Simulations are deterministic, so
// logs exist for humans debugging runs, not for correctness; keep it simple.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace geomcast::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default: kWarn so tests
/// and benches stay quiet unless something is wrong. The GEOMCAST_LOG
/// environment variable (debug|info|warn|error|off, case-insensitive)
/// overrides the default once, at the first logging call — so a bench run
/// can be made chatty (or silent) without recompiling; an explicit
/// set_log_level() always wins over the environment.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parses a GEOMCAST_LOG-style level name; nullopt when unrecognised
/// (callers keep their current threshold). Exposed for tests.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string name) noexcept;

void log_message(LogLevel level, const std::string& text);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
[[nodiscard]] inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
[[nodiscard]] inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
[[nodiscard]] inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace geomcast::util
