// Plain-text and CSV table rendering for the benchmark harness. Every
// figure/table reproduction prints through this so the output format is
// uniform and machine-extractable.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace geomcast::util {

/// Column-aligned table: add header once, then rows; render as ASCII box or
/// CSV. Cell values are strings; numeric helpers convert via format_number.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; fill it with add_cell/add_number.
  Table& begin_row();
  Table& add_cell(std::string value);
  Table& add_number(double value, int max_decimals = 3);
  Table& add_integer(long long value);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept { return header_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept { return header_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Renders an aligned ASCII table with a header separator.
  void print(std::ostream& out) const;
  [[nodiscard]] std::string to_string() const;
  /// Renders RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void print_csv(std::ostream& out) const;
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace geomcast::util
