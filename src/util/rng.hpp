// Deterministic pseudo-random number generation for simulations.
//
// All randomness in geomcast flows from a single 64-bit seed through
// independent streams derived with SplitMix64, so every experiment is
// reproducible bit-for-bit from its seed. The generator itself is
// xoshiro256** (Blackman & Vigna), which is fast, has a 256-bit state and
// passes BigCrush; std::mt19937_64 would also work but is slower to seed
// and drag around.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace geomcast::util {

/// Stateless SplitMix64 step: maps any 64-bit value to a well-mixed one.
/// Used both as a seeding function and to derive independent stream seeds.
[[nodiscard]] constexpr std::uint64_t split_mix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator so it
/// can be plugged into <random> distributions, though the convenience
/// members below cover everything geomcast needs.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 as recommended by the
  /// xoshiro authors (never yields the all-zero state).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = split_mix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return next_double() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[next_below(i)]);
    }
  }

  /// Derives an independent child generator; distinct tags give streams
  /// that are uncorrelated in practice (SplitMix64 mixing).
  [[nodiscard]] Rng derive(std::uint64_t stream_tag) const noexcept {
    std::uint64_t sm = state_[0] ^ (stream_tag * 0x9e3779b97f4a7c15ULL);
    return Rng(split_mix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace geomcast::util
