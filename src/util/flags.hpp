// Minimal command-line flag parsing for the bench/example binaries.
// Supports --name=value and --name value; bool flags accept bare --name.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace geomcast::util {

class Flags {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input
  /// (non-flag positional arguments are collected, not rejected).
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;
  /// Comma-separated integer list, e.g. --dims=2,3,4.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, const std::vector<std::int64_t>& fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace geomcast::util
