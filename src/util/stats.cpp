#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace geomcast::util {

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge update.
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::variance() const noexcept {
  return count_ ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void Distribution::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Distribution::min() const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  return values_.front();
}

double Distribution::max() const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  return values_.back();
}

double Distribution::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Distribution::quantile(double q) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

std::string format_number(double value, int max_decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", max_decimals, value);
  std::string text(buffer);
  if (text.find('.') != std::string::npos) {
    while (!text.empty() && text.back() == '0') text.pop_back();
    if (!text.empty() && text.back() == '.') text.pop_back();
  }
  if (text == "-0") text = "0";
  return text;
}

}  // namespace geomcast::util
