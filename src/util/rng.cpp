#include "util/rng.hpp"

#include <cmath>

namespace geomcast::util {

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound <= 1) return 0;
  // Lemire's multiply-and-shift rejection method: unbiased and avoids the
  // expensive 64-bit modulo in the common case.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double mean) noexcept {
  // Inverse-CDF sampling; 1 - next_double() is in (0, 1] so log() is finite.
  return -mean * std::log(1.0 - next_double());
}

}  // namespace geomcast::util
