// Structural metrics over overlay graphs: degree statistics (Fig 1 a, c),
// connectivity, BFS distances and diameters.
#pragma once

#include <cstddef>
#include <vector>

#include "overlay/graph.hpp"

namespace geomcast::analysis {

struct DegreeStats {
  std::size_t max = 0;
  std::size_t min = 0;
  double avg = 0.0;
};

[[nodiscard]] DegreeStats degree_stats(const overlay::OverlayGraph& graph);

/// Hop distance from `source` to every peer over the undirected adjacency;
/// kUnreachable for peers in other components.
inline constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);
[[nodiscard]] std::vector<std::size_t> bfs_depths(const overlay::OverlayGraph& graph,
                                                  overlay::PeerId source);

[[nodiscard]] bool is_connected(const overlay::OverlayGraph& graph);

/// Exact diameter via all-sources BFS — O(N * E), fine for the paper's
/// N <= 5000 overlays.
[[nodiscard]] std::size_t graph_diameter(const overlay::OverlayGraph& graph);

}  // namespace geomcast::analysis
