// Experiment drivers: one function per figure panel of the paper plus the
// ablations listed in DESIGN.md. Benches, tests and examples all call these
// so the reported numbers come from exactly one implementation.
//
// Reproduction conventions (see EXPERIMENTS.md):
//  * overlays are built at the full-knowledge equilibrium (the paper's own
//    definition of the converged topology); the gossip/incremental paths
//    are validated against it in the test suite;
//  * every multicast construction is validated (N-1 messages, coverage,
//    zone invariants) — a validation failure is reported in the row rather
//    than silently ignored.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/distance.hpp"
#include "multicast/pick_policy.hpp"
#include "stability/stable_tree.hpp"
#include "util/table.hpp"

namespace geomcast::analysis {

// ---------------------------------------------------------------- Fig 1 a
struct Fig1aConfig {
  std::size_t peers = 1000;
  std::vector<std::size_t> dims = {2, 3, 4, 5};
  std::uint64_t seed = 42;
};
struct Fig1aRow {
  std::size_t dims = 0;
  std::size_t max_degree = 0;
  double avg_degree = 0.0;
  bool connected = false;
};
[[nodiscard]] std::vector<Fig1aRow> run_fig1a(const Fig1aConfig& config);
[[nodiscard]] util::Table fig1a_table(const std::vector<Fig1aRow>& rows);

// ---------------------------------------------------------------- Fig 1 b
struct Fig1bConfig {
  std::size_t peers = 1000;
  std::vector<std::size_t> dims = {2, 3, 4, 5};
  std::uint64_t seed = 42;
  /// 0 = every peer initiates once (the paper's setup); otherwise the
  /// first `roots` peers initiate (cheap smoke runs).
  std::size_t roots = 0;
};
struct Fig1bRow {
  std::size_t dims = 0;
  /// max over sessions of (longest root-to-leaf path), and the average of
  /// the per-session longest path — the two series of Fig 1 b.
  std::size_t max_longest_path = 0;
  double avg_longest_path = 0.0;
  std::size_t max_children = 0;   // paper: bounded by 2^D
  std::size_t sessions = 0;
  std::size_t invalid_sessions = 0;  // validator failures (expected 0)
};
[[nodiscard]] std::vector<Fig1bRow> run_fig1b(const Fig1bConfig& config);
[[nodiscard]] util::Table fig1b_table(const std::vector<Fig1bRow>& rows);

// ---------------------------------------------------------------- Fig 1 c
struct Fig1cConfig {
  std::vector<std::size_t> peer_counts = {100, 200, 400, 700, 1000, 2000, 4000, 5000};
  std::size_t dims = 2;
  std::uint64_t seed = 42;
};
struct Fig1cRow {
  std::size_t peers = 0;
  std::size_t max_degree = 0;
  double avg_degree = 0.0;
  double ten_log10_n = 0.0;  // the paper's reference curve
};
[[nodiscard]] std::vector<Fig1cRow> run_fig1c(const Fig1cConfig& config);
[[nodiscard]] util::Table fig1c_table(const std::vector<Fig1cRow>& rows);

// -------------------------------------------------------------- Fig 1 d/e
struct StabilitySweepConfig {
  std::size_t peers = 1000;
  std::vector<std::size_t> dims = {2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::size_t k_min = 1;
  std::size_t k_max = 50;
  std::uint64_t seed = 42;
  stability::PreferredPolicy policy = stability::PreferredPolicy::kMaxT;
  geometry::Metric metric = geometry::Metric::kL2;
};
struct StabilitySweepRow {
  std::size_t dims = 0;
  std::size_t k = 0;
  std::size_t diameter = 0;       // Fig 1 d
  std::size_t max_degree = 0;     // Fig 1 e
  bool single_tree = false;       // §3 claim: preferred links form a tree
  bool monotone = false;          // §3 claim: T decreases toward leaves
};
/// One pass produces both panels (same sweep, two metrics).
[[nodiscard]] std::vector<StabilitySweepRow> run_stability_sweep(
    const StabilitySweepConfig& config);
[[nodiscard]] util::Table stability_table(const std::vector<StabilitySweepRow>& rows,
                                          bool diameter_panel);

// ------------------------------------------------- A1: message comparison
struct MessageComparisonConfig {
  std::size_t peers = 1000;
  std::vector<std::size_t> dims = {2, 3, 4, 5};
  std::uint64_t seed = 42;
};
struct MessageComparisonRow {
  std::size_t dims = 0;
  std::size_t peers = 0;
  std::uint64_t space_partition_messages = 0;  // == N-1
  std::uint64_t flooding_messages = 0;         // == 2E - (N-1)
  std::uint64_t flooding_duplicates = 0;
  double overhead_factor = 0.0;  // flooding / space-partition
};
[[nodiscard]] std::vector<MessageComparisonRow> run_message_comparison(
    const MessageComparisonConfig& config);
[[nodiscard]] util::Table message_comparison_table(
    const std::vector<MessageComparisonRow>& rows);

// ------------------------------------------------ A2: pick-policy ablation
struct PickPolicyAblationConfig {
  std::size_t peers = 1000;
  std::size_t dims = 2;
  std::uint64_t seed = 42;
  std::size_t roots = 0;  // 0 = all peers initiate
};
struct PickPolicyRow {
  multicast::PickPolicy policy = multicast::PickPolicy::kMedian;
  std::size_t max_longest_path = 0;
  double avg_longest_path = 0.0;
  std::size_t max_children = 0;
  std::size_t invalid_sessions = 0;
};
[[nodiscard]] std::vector<PickPolicyRow> run_pick_policy_ablation(
    const PickPolicyAblationConfig& config);
[[nodiscard]] util::Table pick_policy_table(const std::vector<PickPolicyRow>& rows);

// ----------------------------------------------- A3: churn resilience
struct ChurnComparisonConfig {
  std::size_t peers = 1000;
  std::size_t dims = 3;
  std::size_t k = 3;
  std::uint64_t seed = 42;
};
struct ChurnComparisonRow {
  std::string tree_kind;  // "stable(§3)" or "random-spanning"
  std::size_t disruptive_departures = 0;
  std::size_t total_orphaned = 0;
  std::size_t max_orphaned_at_once = 0;
  std::size_t repair_failures = 0;  // with the §3 repair rule applied
};
[[nodiscard]] std::vector<ChurnComparisonRow> run_churn_comparison(
    const ChurnComparisonConfig& config);
[[nodiscard]] util::Table churn_table(const std::vector<ChurnComparisonRow>& rows);

// ------------------------------------------ A4: neighbour-selection ablation
struct SelectionAblationConfig {
  std::size_t peers = 1000;
  std::size_t dims = 2;
  std::size_t k = 3;  // for the K-based selectors
  std::uint64_t seed = 42;
  std::size_t roots = 50;  // multicast sessions sampled per overlay
};
struct SelectionAblationRow {
  std::string selector;
  std::size_t max_degree = 0;
  double avg_degree = 0.0;
  /// Fraction of peers reached, averaged over sessions. 1.0 for the
  /// empty-rectangle overlay (coverage property); K-based overlays may
  /// leave zone gaps — that is the point of the ablation.
  double avg_coverage = 0.0;
  double avg_longest_path = 0.0;
};
[[nodiscard]] std::vector<SelectionAblationRow> run_selection_ablation(
    const SelectionAblationConfig& config);
[[nodiscard]] util::Table selection_ablation_table(
    const std::vector<SelectionAblationRow>& rows);

}  // namespace geomcast::analysis
