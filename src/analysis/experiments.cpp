#include "analysis/experiments.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "analysis/graph_metrics.hpp"
#include "geometry/random_points.hpp"
#include "multicast/flooding.hpp"
#include "multicast/space_partition.hpp"
#include "multicast/validator.hpp"
#include "overlay/empty_rect.hpp"
#include "overlay/equilibrium.hpp"
#include "overlay/hyperplane_k.hpp"
#include "overlay/k_closest.hpp"
#include "overlay/orthant_sweep.hpp"
#include "stability/churn.hpp"
#include "stability/lifetime.hpp"
#include "stability/random_parent.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace geomcast::analysis {

namespace {

/// Deterministic per-(seed, dims, peers) point cloud, so panels built from
/// the same config share overlays where the paper shares them.
std::vector<geometry::Point> workload_points(std::uint64_t seed, std::size_t peers,
                                             std::size_t dims) {
  util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * dims) ^ (0xbf58476d1ce4e5b9ULL * peers));
  return geometry::random_points(rng, peers, dims);
}

/// Longest-path statistics of space-partition trees rooted at each of the
/// first `roots` peers (all peers when roots == 0). Parallel over roots.
struct SessionSweep {
  std::size_t max_longest_path = 0;
  double avg_longest_path = 0.0;
  std::size_t max_children = 0;
  std::size_t sessions = 0;
  std::size_t invalid_sessions = 0;
  double avg_coverage = 0.0;
};

SessionSweep sweep_sessions(const overlay::OverlayGraph& graph, std::size_t roots,
                            const multicast::MulticastConfig& config) {
  const std::size_t n = graph.size();
  const std::size_t sessions = roots == 0 ? n : std::min(roots, n);

  std::vector<std::size_t> longest(sessions, 0);
  std::vector<std::size_t> children(sessions, 0);
  std::vector<char> invalid(sessions, 0);
  std::vector<double> coverage(sessions, 0.0);

  auto run_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      const auto result =
          multicast::build_multicast_tree(graph, static_cast<overlay::PeerId>(r), config);
      const auto report = multicast::validate_build(graph, result);
      longest[r] = result.tree.max_root_to_leaf_path();
      children[r] = result.tree.max_children();
      coverage[r] = n == 0 ? 1.0
                           : static_cast<double>(result.tree.reached_count()) /
                                 static_cast<double>(n);
      // A session over a non-empty-rect overlay may legitimately fail
      // coverage; the caller decides what counts as invalid. Here we flag
      // structural violations only when everything was reachable.
      if (report.all_reached && !report.valid()) invalid[r] = 1;
      if (!report.all_reached &&
          (report.duplicate_deliveries > 0 || !report.children_bound_ok))
        invalid[r] = 1;
    }
  };

  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t threads = std::min<std::size_t>(hw ? hw : 1, sessions ? sessions : 1);
  if (threads <= 1 || sessions < 16) {
    run_range(0, sessions);
  } else {
    std::vector<std::thread> pool;
    const std::size_t chunk = (sessions + threads - 1) / threads;
    for (std::size_t t = 0; t < threads; ++t) {
      const std::size_t begin = t * chunk;
      const std::size_t end = std::min(sessions, begin + chunk);
      if (begin >= end) break;
      pool.emplace_back(run_range, begin, end);
    }
    for (auto& thread : pool) thread.join();
  }

  SessionSweep sweep;
  sweep.sessions = sessions;
  util::RunningStats path_stats;
  util::RunningStats coverage_stats;
  for (std::size_t r = 0; r < sessions; ++r) {
    sweep.max_longest_path = std::max(sweep.max_longest_path, longest[r]);
    sweep.max_children = std::max(sweep.max_children, children[r]);
    sweep.invalid_sessions += invalid[r];
    path_stats.add(static_cast<double>(longest[r]));
    coverage_stats.add(coverage[r]);
  }
  sweep.avg_longest_path = path_stats.mean();
  sweep.avg_coverage = coverage_stats.mean();
  return sweep;
}

}  // namespace

// ------------------------------------------------------------------ Fig 1 a

std::vector<Fig1aRow> run_fig1a(const Fig1aConfig& config) {
  std::vector<Fig1aRow> rows;
  const overlay::EmptyRectSelector selector;
  for (std::size_t dims : config.dims) {
    const auto points = workload_points(config.seed, config.peers, dims);
    const auto graph = overlay::build_equilibrium(points, selector);
    const auto stats = degree_stats(graph);
    rows.push_back(Fig1aRow{dims, stats.max, stats.avg, is_connected(graph)});
  }
  return rows;
}

util::Table fig1a_table(const std::vector<Fig1aRow>& rows) {
  util::Table table({"D", "max_degree", "avg_degree", "connected"});
  for (const auto& row : rows) {
    table.begin_row()
        .add_integer(static_cast<long long>(row.dims))
        .add_integer(static_cast<long long>(row.max_degree))
        .add_number(row.avg_degree, 2)
        .add_cell(row.connected ? "yes" : "NO");
  }
  return table;
}

// ------------------------------------------------------------------ Fig 1 b

std::vector<Fig1bRow> run_fig1b(const Fig1bConfig& config) {
  std::vector<Fig1bRow> rows;
  const overlay::EmptyRectSelector selector;
  const multicast::MulticastConfig mc_config{};  // median / L1, the paper's rule
  for (std::size_t dims : config.dims) {
    const auto points = workload_points(config.seed, config.peers, dims);
    const auto graph = overlay::build_equilibrium(points, selector);
    const auto sweep = sweep_sessions(graph, config.roots, mc_config);
    rows.push_back(Fig1bRow{dims, sweep.max_longest_path, sweep.avg_longest_path,
                            sweep.max_children, sweep.sessions, sweep.invalid_sessions});
  }
  return rows;
}

util::Table fig1b_table(const std::vector<Fig1bRow>& rows) {
  util::Table table({"D", "max_root_leaf_path", "avg_max_root_leaf_path", "max_children",
                     "sessions", "invalid"});
  for (const auto& row : rows) {
    table.begin_row()
        .add_integer(static_cast<long long>(row.dims))
        .add_integer(static_cast<long long>(row.max_longest_path))
        .add_number(row.avg_longest_path, 2)
        .add_integer(static_cast<long long>(row.max_children))
        .add_integer(static_cast<long long>(row.sessions))
        .add_integer(static_cast<long long>(row.invalid_sessions));
  }
  return table;
}

// ------------------------------------------------------------------ Fig 1 c

std::vector<Fig1cRow> run_fig1c(const Fig1cConfig& config) {
  std::vector<Fig1cRow> rows;
  const overlay::EmptyRectSelector selector;
  for (std::size_t peers : config.peer_counts) {
    const auto points = workload_points(config.seed, peers, config.dims);
    const auto graph = overlay::build_equilibrium(points, selector);
    const auto stats = degree_stats(graph);
    rows.push_back(Fig1cRow{peers, stats.max, stats.avg,
                            10.0 * std::log10(static_cast<double>(peers))});
  }
  return rows;
}

util::Table fig1c_table(const std::vector<Fig1cRow>& rows) {
  util::Table table({"N", "max_degree", "avg_degree", "10*log10(N)"});
  for (const auto& row : rows) {
    table.begin_row()
        .add_integer(static_cast<long long>(row.peers))
        .add_integer(static_cast<long long>(row.max_degree))
        .add_number(row.avg_degree, 2)
        .add_number(row.ten_log10_n, 2);
  }
  return table;
}

// ---------------------------------------------------------------- Fig 1 d/e

std::vector<StabilitySweepRow> run_stability_sweep(const StabilitySweepConfig& config) {
  std::vector<StabilitySweepRow> rows;
  if (config.k_max < config.k_min) return rows;
  for (std::size_t dims : config.dims) {
    // §3 workload: x(P,1) = T(P), other coordinates uniform.
    util::Rng rng(config.seed ^ (0x9e3779b97f4a7c15ULL * dims));
    std::vector<double> departure_times;
    const auto points = stability::lifetime_points(rng, config.peers, dims,
                                                   geometry::kDefaultVmax, departure_times);
    const overlay::OrthantSweepIndex index(points, config.metric);

    // K values are independent given the index; split them across threads.
    const std::size_t k_count = config.k_max - config.k_min + 1;
    std::vector<StabilitySweepRow> dim_rows(k_count);
    auto run_k_range = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t k = config.k_min + i;
        const auto selections = index.select_k(k);
        const auto tree = stability::build_stable_tree_from_selections(
            selections, points, departure_times, config.policy);
        dim_rows[i] = StabilitySweepRow{dims, k, stability::tree_diameter(tree),
                                        tree.max_degree(), tree.is_single_tree(),
                                        tree.lifetimes_monotone()};
      }
    };
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t threads = std::min<std::size_t>(hw ? hw : 1, k_count);
    if (threads <= 1) {
      run_k_range(0, k_count);
    } else {
      std::vector<std::thread> pool;
      const std::size_t chunk = (k_count + threads - 1) / threads;
      for (std::size_t t = 0; t < threads; ++t) {
        const std::size_t begin = t * chunk;
        const std::size_t end = std::min(k_count, begin + chunk);
        if (begin >= end) break;
        pool.emplace_back(run_k_range, begin, end);
      }
      for (auto& thread : pool) thread.join();
    }
    rows.insert(rows.end(), dim_rows.begin(), dim_rows.end());
  }
  return rows;
}

util::Table stability_table(const std::vector<StabilitySweepRow>& rows,
                            bool diameter_panel) {
  util::Table table({"D", "K", diameter_panel ? "tree_diameter" : "max_tree_degree",
                     "single_tree", "monotone_T"});
  for (const auto& row : rows) {
    table.begin_row()
        .add_integer(static_cast<long long>(row.dims))
        .add_integer(static_cast<long long>(row.k))
        .add_integer(static_cast<long long>(diameter_panel ? row.diameter : row.max_degree))
        .add_cell(row.single_tree ? "yes" : "NO")
        .add_cell(row.monotone ? "yes" : "NO");
  }
  return table;
}

// ------------------------------------------------------ A1: message counts

std::vector<MessageComparisonRow> run_message_comparison(
    const MessageComparisonConfig& config) {
  std::vector<MessageComparisonRow> rows;
  const overlay::EmptyRectSelector selector;
  for (std::size_t dims : config.dims) {
    const auto points = workload_points(config.seed, config.peers, dims);
    const auto graph = overlay::build_equilibrium(points, selector);
    const overlay::PeerId root = 0;
    const auto sp = multicast::build_multicast_tree(graph, root);
    const auto flood = multicast::build_flooding_tree(graph, root);
    MessageComparisonRow row;
    row.dims = dims;
    row.peers = config.peers;
    row.space_partition_messages = sp.request_messages;
    row.flooding_messages = flood.request_messages;
    row.flooding_duplicates = flood.duplicate_deliveries;
    row.overhead_factor = sp.request_messages == 0
                              ? 0.0
                              : static_cast<double>(flood.request_messages) /
                                    static_cast<double>(sp.request_messages);
    rows.push_back(row);
  }
  return rows;
}

util::Table message_comparison_table(const std::vector<MessageComparisonRow>& rows) {
  util::Table table({"D", "N", "space_partition_msgs", "flooding_msgs",
                     "flooding_duplicates", "flooding/sp"});
  for (const auto& row : rows) {
    table.begin_row()
        .add_integer(static_cast<long long>(row.dims))
        .add_integer(static_cast<long long>(row.peers))
        .add_integer(static_cast<long long>(row.space_partition_messages))
        .add_integer(static_cast<long long>(row.flooding_messages))
        .add_integer(static_cast<long long>(row.flooding_duplicates))
        .add_number(row.overhead_factor, 2);
  }
  return table;
}

// ------------------------------------------------- A2: pick-policy ablation

std::vector<PickPolicyRow> run_pick_policy_ablation(const PickPolicyAblationConfig& config) {
  std::vector<PickPolicyRow> rows;
  const overlay::EmptyRectSelector selector;
  const auto points = workload_points(config.seed, config.peers, config.dims);
  const auto graph = overlay::build_equilibrium(points, selector);
  for (const auto policy :
       {multicast::PickPolicy::kMedian, multicast::PickPolicy::kClosest,
        multicast::PickPolicy::kFarthest, multicast::PickPolicy::kRandom}) {
    multicast::MulticastConfig mc_config;
    mc_config.policy = policy;
    mc_config.rng_seed = config.seed;
    const auto sweep = sweep_sessions(graph, config.roots, mc_config);
    rows.push_back(PickPolicyRow{policy, sweep.max_longest_path, sweep.avg_longest_path,
                                 sweep.max_children, sweep.invalid_sessions});
  }
  return rows;
}

util::Table pick_policy_table(const std::vector<PickPolicyRow>& rows) {
  util::Table table(
      {"policy", "max_root_leaf_path", "avg_max_root_leaf_path", "max_children", "invalid"});
  for (const auto& row : rows) {
    table.begin_row()
        .add_cell(multicast::to_string(row.policy))
        .add_integer(static_cast<long long>(row.max_longest_path))
        .add_number(row.avg_longest_path, 2)
        .add_integer(static_cast<long long>(row.max_children))
        .add_integer(static_cast<long long>(row.invalid_sessions));
  }
  return table;
}

// ------------------------------------------------------ A3: churn comparison

std::vector<ChurnComparisonRow> run_churn_comparison(const ChurnComparisonConfig& config) {
  util::Rng rng(config.seed);
  std::vector<double> departure_times;
  const auto points = stability::lifetime_points(rng, config.peers, config.dims,
                                                 geometry::kDefaultVmax, departure_times);
  const auto selector = overlay::HyperplaneKSelector::orthogonal(config.dims, config.k);
  const auto graph = overlay::build_equilibrium(points, selector);

  std::vector<ChurnComparisonRow> rows;
  {
    const auto tree = stability::build_stable_tree(graph, departure_times);
    const auto churn = stability::simulate_departures(tree.parent, departure_times);
    const auto repair =
        stability::simulate_departures_with_repair(graph, tree.parent, departure_times);
    rows.push_back(ChurnComparisonRow{"stable(S3)", churn.disruptive_departures,
                                      churn.total_orphaned, churn.max_orphaned_at_once,
                                      repair.repair_failures});
  }
  {
    util::Rng tree_rng = rng.derive(0xc0ffee);
    const auto parent = stability::build_random_spanning_tree(graph, tree_rng);
    const auto churn = stability::simulate_departures(parent, departure_times);
    const auto repair =
        stability::simulate_departures_with_repair(graph, parent, departure_times);
    rows.push_back(ChurnComparisonRow{"random-spanning", churn.disruptive_departures,
                                      churn.total_orphaned, churn.max_orphaned_at_once,
                                      repair.repair_failures});
  }
  return rows;
}

util::Table churn_table(const std::vector<ChurnComparisonRow>& rows) {
  util::Table table({"tree", "disruptive_departures", "total_orphaned",
                     "max_orphaned_at_once", "repair_failures"});
  for (const auto& row : rows) {
    table.begin_row()
        .add_cell(row.tree_kind)
        .add_integer(static_cast<long long>(row.disruptive_departures))
        .add_integer(static_cast<long long>(row.total_orphaned))
        .add_integer(static_cast<long long>(row.max_orphaned_at_once))
        .add_integer(static_cast<long long>(row.repair_failures));
  }
  return table;
}

// ----------------------------------------------- A4: selection-method ablation

std::vector<SelectionAblationRow> run_selection_ablation(
    const SelectionAblationConfig& config) {
  const auto points = workload_points(config.seed, config.peers, config.dims);

  const overlay::EmptyRectSelector empty_rect;
  const auto ortho = overlay::HyperplaneKSelector::orthogonal(config.dims, config.k);
  const overlay::KClosestSelector k_closest(config.k);

  std::vector<SelectionAblationRow> rows;
  const multicast::MulticastConfig mc_config{};
  for (const overlay::NeighborSelector* selector :
       std::initializer_list<const overlay::NeighborSelector*>{&empty_rect, &ortho,
                                                               &k_closest}) {
    const auto graph = overlay::build_equilibrium(points, *selector);
    const auto stats = degree_stats(graph);
    const auto sweep = sweep_sessions(graph, config.roots, mc_config);
    rows.push_back(SelectionAblationRow{selector->name(), stats.max, stats.avg,
                                        sweep.avg_coverage, sweep.avg_longest_path});
  }
  return rows;
}

util::Table selection_ablation_table(const std::vector<SelectionAblationRow>& rows) {
  util::Table table({"selector", "max_degree", "avg_degree", "avg_coverage",
                     "avg_max_root_leaf_path"});
  for (const auto& row : rows) {
    table.begin_row()
        .add_cell(row.selector)
        .add_integer(static_cast<long long>(row.max_degree))
        .add_number(row.avg_degree, 2)
        .add_number(row.avg_coverage, 4)
        .add_number(row.avg_longest_path, 2);
  }
  return table;
}

}  // namespace geomcast::analysis
