#include "analysis/graph_metrics.hpp"

#include <algorithm>
#include <deque>

namespace geomcast::analysis {

DegreeStats degree_stats(const overlay::OverlayGraph& graph) {
  DegreeStats stats;
  const std::size_t n = graph.size();
  if (n == 0) return stats;
  stats.min = graph.degree(0);
  double total = 0.0;
  for (overlay::PeerId p = 0; p < n; ++p) {
    const std::size_t d = graph.degree(p);
    stats.max = std::max(stats.max, d);
    stats.min = std::min(stats.min, d);
    total += static_cast<double>(d);
  }
  stats.avg = total / static_cast<double>(n);
  return stats;
}

std::vector<std::size_t> bfs_depths(const overlay::OverlayGraph& graph,
                                    overlay::PeerId source) {
  std::vector<std::size_t> depth(graph.size(), kUnreachable);
  depth[source] = 0;
  std::deque<overlay::PeerId> queue{source};
  while (!queue.empty()) {
    const overlay::PeerId p = queue.front();
    queue.pop_front();
    for (overlay::PeerId q : graph.neighbors(p)) {
      if (depth[q] == kUnreachable) {
        depth[q] = depth[p] + 1;
        queue.push_back(q);
      }
    }
  }
  return depth;
}

bool is_connected(const overlay::OverlayGraph& graph) {
  if (graph.size() == 0) return true;
  const auto depth = bfs_depths(graph, 0);
  return std::none_of(depth.begin(), depth.end(),
                      [](std::size_t d) { return d == kUnreachable; });
}

std::size_t graph_diameter(const overlay::OverlayGraph& graph) {
  std::size_t best = 0;
  for (overlay::PeerId p = 0; p < graph.size(); ++p) {
    for (std::size_t d : bfs_depths(graph, p))
      if (d != kUnreachable) best = std::max(best, d);
  }
  return best;
}

}  // namespace geomcast::analysis
