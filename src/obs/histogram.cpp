#include "obs/histogram.hpp"

#include <algorithm>
#include <cstdio>

namespace geomcast::obs {

void Histogram::merge(const Histogram& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

double Histogram::bucket_lower(std::size_t index) noexcept {
  // Data bucket (index - 1) = octave * kSubBuckets + sub covers
  // [2^(kMinExp + octave) * (1 + sub/kSub), lower + width).
  const std::size_t data = index - 1;
  const std::size_t octave = data / kSubBuckets;
  const std::size_t sub = data % kSubBuckets;
  const double base = std::ldexp(1.0, kMinExp + static_cast<int>(octave));
  return base * (1.0 + static_cast<double>(sub) / static_cast<double>(kSubBuckets));
}

double Histogram::bucket_width(std::size_t index) noexcept {
  const std::size_t octave = (index - 1) / kSubBuckets;
  return std::ldexp(1.0, kMinExp + static_cast<int>(octave)) /
         static_cast<double>(kSubBuckets);
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the sample the quantile asks for, 1-based; walk the cumulative
  // bucket counts until it is covered, then interpolate inside the bucket.
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target) {
      if (i == 0) return min_;             // underflow bin: best estimate is the exact min
      if (i == kBuckets - 1) return max_;  // overflow bin: exact max
      const double fraction =
          buckets_[i] == 0 ? 0.0
                           : (target - cumulative) / static_cast<double>(buckets_[i]);
      const double estimate = bucket_lower(i) + fraction * bucket_width(i);
      return std::clamp(estimate, min_, max_);
    }
    cumulative = next;
  }
  return max_;
}

std::string Histogram::to_json() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"count\":%llu,\"min\":%.6g,\"mean\":%.6g,\"p50\":%.6g,"
                "\"p90\":%.6g,\"p99\":%.6g,\"max\":%.6g}",
                static_cast<unsigned long long>(count_), min(), mean(), p50(), p90(),
                p99(), max());
  return buffer;
}

}  // namespace geomcast::obs
