// Unified metrics snapshot layer: deterministic JSON serialisation for
// every stats block the simulation family accumulates (GroupStats,
// NetworkStats, HopStats, the latency histograms they embed), plus a
// periodic in-simulation Sampler that turns the counters into a time
// series (deliveries/sec, in-flight grafts, retained seqs, event-queue
// depth, per-peer send/receive load) a bench can export next to its
// scalar results.
//
// All serialisation is snprintf-pinned: the same stats produce the same
// bytes on every run and platform, so snapshot files diff cleanly and the
// determinism tests can compare them wholesale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace geomcast::sim {
struct NetworkStats;
}
namespace geomcast::multicast {
struct HopStats;
}
namespace geomcast::groups {
struct GroupStats;
class PubSubSystem;
}  // namespace geomcast::groups

namespace geomcast::obs {

/// Hot-peer summary of a per-node counter vector (sent_by_node /
/// received_by_node): the max identifies the single hottest peer, the p99
/// (nearest-rank) the load the busiest percentile carries — the imbalance
/// axis the sharding roadmap item gates on.
struct LoadSummary {
  std::uint64_t max = 0;
  std::uint64_t p99 = 0;
  double mean = 0.0;
};

[[nodiscard]] LoadSummary summarize_load(const std::vector<std::uint64_t>& per_node);

[[nodiscard]] std::string to_json(const LoadSummary& load);
[[nodiscard]] std::string to_json(const groups::GroupStats& stats);
/// NetworkStats serialisation names each sent_by_kind entry through the
/// groups message-kind registry (unknown kinds fall back to "kind_<id>")
/// and folds the per-node vectors into LoadSummary blocks.
[[nodiscard]] std::string to_json(const sim::NetworkStats& stats);
[[nodiscard]] std::string to_json(const multicast::HopStats& stats);

/// One periodic observation of a running PubSubSystem. Counters are
/// cumulative (the Sampler's to_json derives the per-interval rates);
/// gauges are instantaneous.
struct SnapshotSample {
  double time = 0.0;
  std::uint64_t deliveries = 0;        // cumulative application deliveries
  std::uint64_t envelopes_sent = 0;    // cumulative network sends
  std::uint64_t envelopes_dropped = 0; // cumulative network drops
  std::uint64_t in_flight_grafts = 0;  // gauge: routed descents outstanding
  std::uint64_t retained_seqs = 0;     // gauge: QoS 2 repair-buffer occupancy
  std::uint64_t queue_pending = 0;     // gauge: live events scheduled
  std::uint64_t queue_heap_size = 0;   // gauge: heap entries incl. cancelled
  LoadSummary send_load;               // cumulative per-peer sends
  LoadSummary receive_load;            // cumulative per-peer receives
};

[[nodiscard]] std::string to_json(const SnapshotSample& sample);

/// Samples a PubSubSystem every `interval` simulated seconds while its
/// event loop has work left. The tick re-schedules itself only while the
/// simulator is non-idle, so run_until_idle() still terminates: the last
/// sample lands on the tick that finds the queue drained. Strictly
/// passive — ticks read counters and gauges, never mutate protocol state —
/// but note the ticks ARE events, so a sampled run's event count differs
/// from an unsampled one (unlike tracing, which adds no events at all).
class Sampler {
 public:
  Sampler(groups::PubSubSystem& system, double interval);

  /// Schedules the first tick at simulated time `first_at`; call before
  /// running the workload.
  void start(double first_at = 0.0);

  [[nodiscard]] const std::vector<SnapshotSample>& samples() const noexcept {
    return samples_;
  }

  /// {"interval": .., "samples": [..]} with a derived deliveries_per_sec
  /// per sample (delta against the previous sample over the actual gap).
  [[nodiscard]] std::string to_json() const;

 private:
  void tick();

  groups::PubSubSystem& system_;
  double interval_;
  std::vector<SnapshotSample> samples_;
};

}  // namespace geomcast::obs
