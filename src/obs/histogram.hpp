// Mergeable log-bucketed latency histogram — the distribution-shaped
// counterpart of util::RunningStats for the stats structs the simulations
// aggregate (GroupStats and friends sum per-group instances into system
// totals, so the histogram must merge by bucket addition, not resample).
//
// Buckets are log-linear (HdrHistogram style): each power-of-two octave of
// the value range splits into kSubBuckets linear sub-buckets, giving a
// bounded relative quantile error of 1/kSubBuckets (12.5% at 8) with a
// fixed-size array — no allocation, trivially copyable, O(1) record.
// Bucketing uses std::frexp on the IEEE representation, so identical
// inputs land in identical buckets on every platform (no libm rounding in
// the hot path). Exact min/max/mean ride alongside the buckets; quantiles
// interpolate linearly inside the winning bucket and clamp to [min, max].
//
// Values are simulated seconds: the range [2^-20, 2^20) ≈ [1 µs, 12 days)
// covers every latency this codebase can produce; values outside it land
// in the underflow/overflow buckets and report as min()/max().
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>

namespace geomcast::obs {

class Histogram {
 public:
  static constexpr std::size_t kSubBuckets = 8;  // linear slices per octave
  static constexpr int kMinExp = -20;            // lowest octave: [2^-20, 2^-19)
  static constexpr int kMaxExp = 20;             // one past the highest octave
  static constexpr std::size_t kOctaves =
      static_cast<std::size_t>(kMaxExp - kMinExp);
  /// Data buckets plus the underflow (index 0) and overflow (last) bins.
  static constexpr std::size_t kBuckets = kOctaves * kSubBuckets + 2;

  void record(double value) noexcept {
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) min_ = value;
    if (count_ == 1 || value > max_) max_ = value;
    ++buckets_[bucket_of(value)];
  }

  /// Bucket-wise addition: merging per-group histograms into a system
  /// aggregate yields exactly the histogram of the concatenated samples.
  void merge(const Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Min/max/mean of an empty histogram are 0 by convention (matching
  /// util::RunningStats).
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Quantile estimate, q in [0, 1]; relative error bounded by
  /// 1/kSubBuckets within the bucketed range. Empty => 0.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }

  /// {"count":N,"min":..,"mean":..,"p50":..,"p90":..,"p99":..,"max":..}
  [[nodiscard]] std::string to_json() const;

  /// Maps a value to its bucket index (exposed for the unit tests that pin
  /// the bucketing invariants).
  [[nodiscard]] static std::size_t bucket_of(double value) noexcept {
    if (!(value > 0.0)) return 0;  // non-positive and NaN underflow
    int exp = 0;
    const double mantissa = std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
    const int octave = exp - 1 - kMinExp;             // value in [2^(exp-1), 2^exp)
    if (octave < 0) return 0;
    if (octave >= static_cast<int>(kOctaves)) return kBuckets - 1;
    const auto sub = static_cast<std::size_t>((mantissa - 0.5) * 2.0 *
                                              static_cast<double>(kSubBuckets));
    return 1 + static_cast<std::size_t>(octave) * kSubBuckets +
           (sub < kSubBuckets ? sub : kSubBuckets - 1);
  }

 private:
  [[nodiscard]] static double bucket_lower(std::size_t index) noexcept;
  [[nodiscard]] static double bucket_width(std::size_t index) noexcept;

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace geomcast::obs
