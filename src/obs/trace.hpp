// Wave-lifecycle tracing for the pub/sub protocol stack: a bounded-ring
// TraceSink collecting structured events keyed by (group, wave, peer), and
// a Tracer handle the instrumented layers hold.
//
// Design constraints, in order:
//  * Zero cost when disabled. A Tracer is one pointer; every emit site
//    guards on enabled() (a null test) before even building the event, so
//    the disabled hot path pays one predictable branch
//    (bench/micro_core.cpp's BM_TracerDisabledOverhead pins this).
//  * Passive. Tracing reads protocol state and writes only to the sink —
//    enabling it must leave delivered sets, every GroupStats/NetworkStats
//    counter, and the event schedule bit-identical on a pinned seed
//    (tests/obs_trace_test.cpp pins this on a lossy QoS 2 + churn run).
//  * Deterministic. Events are recorded in simulation order with simulated
//    timestamps; identical seeds yield byte-identical exported streams.
//  * Bounded. The sink is a ring: when full it overwrites the oldest
//    events, counts the overwritten ones in dropped(), and warns through
//    util::log exactly once per sink, not once per event.
//
// This header is dependency-free (plain integer fields, std only) so the
// protocol layers (groups/, multicast/) can include it without cycles; the
// exporter and the util::log warning live in trace.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace geomcast::obs {

/// Every lifecycle point the instrumented layers emit. Names (exported to
/// the Chrome trace and the README glossary) are in trace_event_name().
enum class TraceEventType : std::uint8_t {
  // Publish pipeline, at the rendezvous root.
  kPublishAccepted,  ///< publish envelope booked at the root (origin in `other`)
  kRootBuffer,       ///< publish joined the coalescing buffer (occupancy in seq_lo)
  kRootFlush,        ///< wave left the root: range [seq_lo, seq_hi] assigned
  // Per-hop data plane (reliable_hop taps; `peer` sends to `other`).
  kHopSend,        ///< first transmission of a wave on a tree edge
  kHopRetransmit,  ///< ack timeout resent the wave on that edge
  kHopAck,         ///< receiver acked the wave back to its sender
  // Subscriber side.
  kDelivery,             ///< application-level delivery of one seq at `peer`
  kDuplicateSuppressed,  ///< arrival deduped (re-acked, not re-delivered)
  // QoS 2 gap repair.
  kGapDetected,   ///< subscriber found seq missing
  kNackSent,      ///< batched NACK for seqs [seq_lo, seq_hi] to ancestor `other`
  kRepairServed,  ///< responder resent a retained wave to `other`
  kRepairMiss,    ///< responder lacked seqs [seq_lo, seq_hi] (miss to `other`)
  kGapRepaired,   ///< gap filled (repair or late per-hop recovery)
  kGapAbandoned,  ///< gap given up; window skips the seq
  // Routed graft control plane (`wave` carries the graft id).
  kGraftBegin,   ///< descent registered at the root (`peer`=root, `other`=subscriber)
  kGraftStep,    ///< one descent decision; request forwarded `peer` -> `other`
  kGraftFinish,  ///< subscriber attached (accept processed at the root)
  kGraftAbort,   ///< descent given up; cache dirtied, resubscribe owed
  // Tree maintenance (GroupManager).
  kTreeBuild,      ///< full construction wave rebuilt the cached tree
  kRootMigration,  ///< rendezvous root departed; successor (`peer`) took over
  // Warm root failover + session heartbeats (groups replica plane).
  kReplicaSync,  ///< root `peer` streamed one delta to replica `other` (`wave`=sync id)
  kPromotion,    ///< successor `peer` took over from dead root `other` (warm in seq_lo)
  kHeartbeat,    ///< root `peer` issued an idle beacon (highest seq in seq_lo/seq_hi)
  // Replica-shard coordination (root_replicas > 1; `wave` carries the coord id).
  kSeqLease,   ///< slot root `peer` asked authority `other` for seq_lo seqs
  kSeqGrant,   ///< authority `peer` granted [seq_lo, seq_hi] to slot root `other`
  kShardWave,  ///< committed range [seq_lo, seq_hi] handed `peer` -> slot root `other`
};

[[nodiscard]] const char* trace_event_name(TraceEventType type) noexcept;

/// Sentinel for an unset peer/counterparty field.
inline constexpr std::uint32_t kNoTracePeer = 0xffffffffu;
/// Sentinel wave id for events scoped to seqs rather than one wave
/// (deliveries and the gap-repair plane outlive the wave that carried
/// them). Real wave ids are dense from 0, so 0 cannot be the sentinel.
inline constexpr std::uint64_t kNoWave = ~std::uint64_t{0};

struct TraceEvent {
  double time = 0.0;  // simulated seconds
  TraceEventType type = TraceEventType::kPublishAccepted;
  std::uint64_t group = 0;
  /// Wave id for data-plane events, graft id for graft events, kNoWave for
  /// seq-scoped events (query by range intersection instead).
  std::uint64_t wave = kNoWave;
  std::uint64_t seq_lo = 0;
  std::uint64_t seq_hi = 0;
  std::uint32_t peer = kNoTracePeer;   // the acting peer
  std::uint32_t other = kNoTracePeer;  // counterparty (sender/receiver/origin)
};

[[nodiscard]] bool operator==(const TraceEvent& a, const TraceEvent& b) noexcept;

/// Bounded ring of trace events. Single-writer like the simulator's
/// control lane; under the sharded event loop, parallel-phase records go
/// to per-lane side buffers (see configure_lanes) merged at each barrier.
class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit TraceSink(std::size_t capacity = kDefaultCapacity);

  void record(const TraceEvent& event);

  /// Sharded-loop wiring (raw hooks keep this header dependency-free):
  /// `lane_fn` reports the calling thread's parallel lane, negative on the
  /// coordinating thread; `order_fn` the running event's canonical order.
  /// While configured, a record from a parallel lane lands in that lane's
  /// private buffer; collapse_lanes() — called at the window barrier, when
  /// no worker runs — merges the buffers into the ring sorted by
  /// (time, order, append sequence), i.e. simulation order.
  using LaneFn = int (*)() noexcept;
  using OrderFn = std::uint64_t (*)() noexcept;
  void configure_lanes(std::size_t lanes, LaneFn lane_fn, OrderFn order_fn);
  void collapse_lanes();

  /// Events currently held, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// One wave's lifecycle: events carrying this (group, wave) — for graft
  /// ids, the graft's legs — plus, when the wave's kRootFlush is in the
  /// ring, the seq-scoped events (wave == kNoWave: deliveries, gap repair)
  /// whose [seq_lo, seq_hi] intersects the wave's flushed range. Order is
  /// recording (= simulation) order.
  [[nodiscard]] std::vector<TraceEvent> events_for_wave(std::uint64_t group,
                                                        std::uint64_t wave) const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events overwritten by the ring since construction.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Events ever recorded (size() + dropped()).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }

 private:
  struct LaneRecord {
    std::uint64_t order;  // producing event's canonical order
    std::uint64_t seq;    // per-lane append sequence (intra-event tie-break)
    TraceEvent event;
  };

  void append(const TraceEvent& event);

  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t recorded_ = 0;
  bool overflow_warned_ = false;
  LaneFn lane_fn_ = nullptr;
  OrderFn order_fn_ = nullptr;
  std::vector<std::vector<LaneRecord>> lane_buffers_;
};

/// The handle instrumented layers hold: one pointer, null when disabled.
class Tracer {
 public:
  void attach(TraceSink* sink) noexcept { sink_ = sink; }
  [[nodiscard]] bool enabled() const noexcept { return sink_ != nullptr; }
  void emit(const TraceEvent& event) const {
    if (sink_ != nullptr) sink_->record(event);
  }

 private:
  TraceSink* sink_ = nullptr;
};

/// Writes `events` as Chrome trace-event JSON (the Perfetto/chrome://tracing
/// format): one instant event per TraceEvent with pid = group, tid = peer,
/// ts in microseconds, and wave/seqs/counterparty under "args". Formatting
/// is snprintf-pinned, so identical event streams serialize byte-identically.
void write_chrome_trace(std::ostream& out, const std::vector<TraceEvent>& events);

/// Convenience: the same JSON as a string (tests pin byte identity on it).
[[nodiscard]] std::string chrome_trace_json(const std::vector<TraceEvent>& events);

}  // namespace geomcast::obs
