#include "obs/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "groups/group_stats.hpp"
#include "groups/message_kinds.hpp"
#include "groups/pubsub.hpp"
#include "multicast/reliable_hop.hpp"
#include "sim/network.hpp"

namespace geomcast::obs {

namespace {

// %.6g keeps doubles short, deterministic, and diff-stable; integers go
// through to_string so 64-bit counters never round.
std::string fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

void field(std::ostringstream& out, bool& first, const char* name,
           std::uint64_t value) {
  out << (first ? "\"" : ",\"") << name << "\":" << value;
  first = false;
}

void field(std::ostringstream& out, bool& first, const char* name, double value) {
  out << (first ? "\"" : ",\"") << name << "\":" << fmt(value);
  first = false;
}

void field_raw(std::ostringstream& out, bool& first, const char* name,
               const std::string& json) {
  out << (first ? "\"" : ",\"") << name << "\":" << json;
  first = false;
}

}  // namespace

LoadSummary summarize_load(const std::vector<std::uint64_t>& per_node) {
  LoadSummary load;
  if (per_node.empty()) return load;
  std::vector<std::uint64_t> sorted = per_node;
  std::sort(sorted.begin(), sorted.end());
  load.max = sorted.back();
  // Nearest-rank p99: the smallest value with at least 99% of nodes at or
  // below it — exact, no interpolation, so integer loads stay integers.
  const std::size_t rank = (sorted.size() * 99 + 99) / 100;
  load.p99 = sorted[rank == 0 ? 0 : rank - 1];
  std::uint64_t sum = 0;
  for (const std::uint64_t v : sorted) sum += v;
  load.mean = static_cast<double>(sum) / static_cast<double>(sorted.size());
  return load;
}

std::string to_json(const LoadSummary& load) {
  std::ostringstream out;
  out << "{\"max\":" << load.max << ",\"p99\":" << load.p99
      << ",\"mean\":" << fmt(load.mean) << "}";
  return out.str();
}

std::string to_json(const groups::GroupStats& stats) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  field(out, first, "subscribes", stats.subscribes);
  field(out, first, "unsubscribes", stats.unsubscribes);
  field(out, first, "publishes", stats.publishes);
  field(out, first, "batched_publishes", stats.batched_publishes);
  field(out, first, "batch_flushes_window", stats.batch_flushes_window);
  field(out, first, "batch_flushes_full", stats.batch_flushes_full);
  field(out, first, "batch_occupancy_sum", stats.batch_occupancy_sum);
  field(out, first, "batch_publishes_lost", stats.batch_publishes_lost);
  field(out, first, "envelopes_saved", stats.envelopes_saved);
  field(out, first, "expected_deliveries", stats.expected_deliveries);
  field(out, first, "deliveries", stats.deliveries);
  field(out, first, "duplicate_deliveries", stats.duplicate_deliveries);
  field(out, first, "payload_messages", stats.payload_messages);
  field(out, first, "ack_messages", stats.ack_messages);
  field(out, first, "retransmissions", stats.retransmissions);
  field(out, first, "abandoned_hops", stats.abandoned_hops);
  field(out, first, "gap_seqs_detected", stats.gap_seqs_detected);
  field(out, first, "gap_seqs_repaired", stats.gap_seqs_repaired);
  field(out, first, "gap_seqs_abandoned", stats.gap_seqs_abandoned);
  field(out, first, "nacks_sent", stats.nacks_sent);
  field(out, first, "nacked_seqs", stats.nacked_seqs);
  field(out, first, "nack_deferrals", stats.nack_deferrals);
  field(out, first, "repairs_served", stats.repairs_served);
  field(out, first, "repair_misses", stats.repair_misses);
  field(out, first, "repair_escalations", stats.repair_escalations);
  field(out, first, "retained_evictions", stats.retained_evictions);
  field(out, first, "pre_window_deliveries", stats.pre_window_deliveries);
  field(out, first, "gap_latency_total", stats.gap_latency_total);
  field(out, first, "control_messages", stats.control_messages);
  field(out, first, "stranded_messages", stats.stranded_messages);
  field(out, first, "tree_builds", stats.tree_builds);
  field(out, first, "build_messages", stats.build_messages);
  field(out, first, "cache_hits", stats.cache_hits);
  field(out, first, "grafts", stats.grafts);
  field(out, first, "graft_messages", stats.graft_messages);
  field(out, first, "prunes", stats.prunes);
  field(out, first, "prune_messages", stats.prune_messages);
  field(out, first, "repairs", stats.repairs);
  field(out, first, "repair_messages", stats.repair_messages);
  field(out, first, "repair_failures", stats.repair_failures);
  field(out, first, "root_migrations", stats.root_migrations);
  field(out, first, "replica_sync_envelopes", stats.replica_sync_envelopes);
  field(out, first, "replica_sync_retries", stats.replica_sync_retries);
  field(out, first, "migration_envelopes", stats.migration_envelopes);
  field(out, first, "warm_promotions", stats.warm_promotions);
  field(out, first, "pending_publishes_inherited",
        stats.pending_publishes_inherited);
  field(out, first, "heartbeats_sent", stats.heartbeats_sent);
  field(out, first, "heartbeat_gap_detections", stats.heartbeat_gap_detections);
  field(out, first, "heartbeat_blind_windows", stats.heartbeat_blind_windows);
  field(out, first, "graft_hops", stats.graft_hops);
  field(out, first, "graft_retries", stats.graft_retries);
  field(out, first, "graft_aborts", stats.graft_aborts);
  field(out, first, "graft_resubscribes", stats.graft_resubscribes);
  field(out, first, "graft_prefix_batches", stats.graft_prefix_batches);
  field(out, first, "graft_prefix_merged", stats.graft_prefix_merged);
  field(out, first, "seq_lease_requests", stats.seq_lease_requests);
  field(out, first, "seq_leases_granted", stats.seq_leases_granted);
  field(out, first, "seq_grants_lost", stats.seq_grants_lost);
  field(out, first, "shard_handoffs", stats.shard_handoffs);
  field(out, first, "shard_waves", stats.shard_waves);
  field(out, first, "publisher_batches", stats.publisher_batches);
  field(out, first, "publisher_batched_publishes",
        stats.publisher_batched_publishes);
  field(out, first, "publisher_envelopes_saved", stats.publisher_envelopes_saved);
  field(out, first, "stranded_rescues", stats.stranded_rescues);
  field(out, first, "stranded_subscribers", stats.stranded_subscribers);
  field(out, first, "delivery_ratio", stats.delivery_ratio());
  field(out, first, "maintenance_per_publish", stats.maintenance_per_publish());
  field(out, first, "mean_gap_latency", stats.mean_gap_latency());
  field(out, first, "mean_batch_occupancy", stats.mean_batch_occupancy());
  field_raw(out, first, "delivery_latency", stats.delivery_latency.to_json());
  field_raw(out, first, "gap_repair_latency", stats.gap_repair_latency.to_json());
  field_raw(out, first, "graft_latency", stats.graft_latency.to_json());
  out << "}";
  return out.str();
}

std::string to_json(const sim::NetworkStats& stats) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  field(out, first, "sent", stats.sent);
  field(out, first, "delivered", stats.delivered);
  field(out, first, "dropped", stats.dropped);
  field(out, first, "retransmitted", stats.retransmitted);
  field(out, first, "duplicate_data", stats.duplicate_data);
  field(out, first, "abandoned_hops", stats.abandoned_hops);
  field(out, first, "nacks", stats.nacks);
  field(out, first, "repairs_served", stats.repairs_served);
  field(out, first, "batched_waves", stats.batched_waves);
  field(out, first, "envelopes_saved", stats.envelopes_saved);
  field(out, first, "control_envelopes", stats.control_envelopes);
  field(out, first, "graft_hops", stats.graft_hops);
  field(out, first, "graft_retries", stats.graft_retries);
  field(out, first, "graft_aborts", stats.graft_aborts);
  field(out, first, "replica_sync_envelopes", stats.replica_sync_envelopes);
  field(out, first, "migration_envelopes", stats.migration_envelopes);
  field(out, first, "heartbeats", stats.heartbeats);
  {
    // Named through the message-kind registry; std::map iteration order
    // keeps the output deterministic.
    std::ostringstream kinds;
    kinds << "{";
    bool kfirst = true;
    for (const auto& [kind, count] : stats.sent_by_kind) {
      kinds << (kfirst ? "\"" : ",\"");
      if (const char* name = groups::kind_name(kind))
        kinds << name;
      else
        kinds << "kind_" << kind;
      kinds << "\":" << count;
      kfirst = false;
    }
    kinds << "}";
    field_raw(out, first, "sent_by_kind", kinds.str());
  }
  field_raw(out, first, "send_load", to_json(summarize_load(stats.sent_by_node)));
  field_raw(out, first, "receive_load",
            to_json(summarize_load(stats.received_by_node)));
  out << "}";
  return out.str();
}

std::string to_json(const multicast::HopStats& stats) {
  std::ostringstream out;
  out << "{\"data_messages\":" << stats.data_messages
      << ",\"ack_messages\":" << stats.ack_messages
      << ",\"retransmissions\":" << stats.retransmissions
      << ",\"abandoned_hops\":" << stats.abandoned_hops << "}";
  return out.str();
}

std::string to_json(const SnapshotSample& sample) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  field(out, first, "time", sample.time);
  field(out, first, "deliveries", sample.deliveries);
  field(out, first, "envelopes_sent", sample.envelopes_sent);
  field(out, first, "envelopes_dropped", sample.envelopes_dropped);
  field(out, first, "in_flight_grafts", sample.in_flight_grafts);
  field(out, first, "retained_seqs", sample.retained_seqs);
  field(out, first, "queue_pending", sample.queue_pending);
  field(out, first, "queue_heap_size", sample.queue_heap_size);
  field_raw(out, first, "send_load", to_json(sample.send_load));
  field_raw(out, first, "receive_load", to_json(sample.receive_load));
  out << "}";
  return out.str();
}

Sampler::Sampler(groups::PubSubSystem& system, double interval)
    : system_(system), interval_(interval > 0.0 ? interval : 1.0) {}

void Sampler::start(double first_at) {
  system_.simulator().schedule_at(first_at, [this]() { tick(); });
}

void Sampler::tick() {
  sim::Simulator& sim = system_.simulator();
  SnapshotSample sample;
  sample.time = sim.now();
  sample.deliveries = system_.total_stats().deliveries;
  const sim::NetworkStats& net = sim.network().stats();
  sample.envelopes_sent = net.sent;
  sample.envelopes_dropped = net.dropped;
  sample.in_flight_grafts = system_.manager().inflight_graft_count();
  sample.retained_seqs = system_.manager().retained_entry_total();
  sample.queue_pending = sim.pending_events();
  sample.queue_heap_size = sim.queue_heap_size();
  sample.send_load = summarize_load(net.sent_by_node);
  sample.receive_load = summarize_load(net.received_by_node);
  samples_.push_back(sample);
  // Re-arm only while the workload still has events: the tick that finds
  // the queue drained is the final sample, so run_until_idle terminates.
  if (!sim.idle()) sim.schedule_after(interval_, [this]() { tick(); });
}

std::string Sampler::to_json() const {
  std::ostringstream out;
  out << "{\"interval\":" << fmt(interval_) << ",\"samples\":[";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (i > 0) out << ",";
    std::string sample = obs::to_json(samples_[i]);
    // Splice the derived rate in before the closing brace: deliveries
    // delta against the previous sample over the actual time gap.
    double rate = 0.0;
    if (i > 0) {
      const double dt = samples_[i].time - samples_[i - 1].time;
      if (dt > 0.0)
        rate = static_cast<double>(samples_[i].deliveries -
                                   samples_[i - 1].deliveries) /
               dt;
    }
    sample.pop_back();  // '}'
    out << sample << ",\"deliveries_per_sec\":" << fmt(rate) << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace geomcast::obs
