#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <ostream>
#include <sstream>

#include "util/log.hpp"

namespace geomcast::obs {

const char* trace_event_name(TraceEventType type) noexcept {
  switch (type) {
    case TraceEventType::kPublishAccepted: return "publish_accepted";
    case TraceEventType::kRootBuffer: return "root_buffer";
    case TraceEventType::kRootFlush: return "root_flush";
    case TraceEventType::kHopSend: return "hop_send";
    case TraceEventType::kHopRetransmit: return "hop_retransmit";
    case TraceEventType::kHopAck: return "hop_ack";
    case TraceEventType::kDelivery: return "delivery";
    case TraceEventType::kDuplicateSuppressed: return "duplicate_suppressed";
    case TraceEventType::kGapDetected: return "gap_detected";
    case TraceEventType::kNackSent: return "nack_sent";
    case TraceEventType::kRepairServed: return "repair_served";
    case TraceEventType::kRepairMiss: return "repair_miss";
    case TraceEventType::kGapRepaired: return "gap_repaired";
    case TraceEventType::kGapAbandoned: return "gap_abandoned";
    case TraceEventType::kGraftBegin: return "graft_begin";
    case TraceEventType::kGraftStep: return "graft_step";
    case TraceEventType::kGraftFinish: return "graft_finish";
    case TraceEventType::kGraftAbort: return "graft_abort";
    case TraceEventType::kTreeBuild: return "tree_build";
    case TraceEventType::kRootMigration: return "root_migration";
    case TraceEventType::kReplicaSync: return "replica_sync";
    case TraceEventType::kPromotion: return "promotion";
    case TraceEventType::kHeartbeat: return "heartbeat";
    case TraceEventType::kSeqLease: return "seq_lease";
    case TraceEventType::kSeqGrant: return "seq_grant";
    case TraceEventType::kShardWave: return "shard_wave";
  }
  return "unknown";
}

bool operator==(const TraceEvent& a, const TraceEvent& b) noexcept {
  return a.time == b.time && a.type == b.type && a.group == b.group &&
         a.wave == b.wave && a.seq_lo == b.seq_lo && a.seq_hi == b.seq_hi &&
         a.peer == b.peer && a.other == b.other;
}

TraceSink::TraceSink(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

void TraceSink::record(const TraceEvent& event) {
  if (lane_fn_ != nullptr) {
    const int lane = lane_fn_();
    if (lane >= 0) {
      std::vector<LaneRecord>& buffer = lane_buffers_[static_cast<std::size_t>(lane)];
      buffer.push_back(LaneRecord{order_fn_(), buffer.size(), event});
      return;
    }
  }
  append(event);
}

void TraceSink::configure_lanes(std::size_t lanes, LaneFn lane_fn, OrderFn order_fn) {
  lane_buffers_.clear();
  lane_buffers_.resize(lanes);
  lane_fn_ = lane_fn;
  order_fn_ = order_fn;
}

void TraceSink::collapse_lanes() {
  std::vector<LaneRecord> merged;
  for (std::vector<LaneRecord>& buffer : lane_buffers_) {
    merged.insert(merged.end(), buffer.begin(), buffer.end());
    buffer.clear();
  }
  if (merged.empty()) return;
  std::sort(merged.begin(), merged.end(),
            [](const LaneRecord& a, const LaneRecord& b) {
              if (a.event.time != b.event.time) return a.event.time < b.event.time;
              if (a.order != b.order) return a.order < b.order;
              return a.seq < b.seq;
            });
  for (const LaneRecord& record : merged) append(record.event);
}

void TraceSink::append(const TraceEvent& event) {
  ++recorded_;
  if (size_ == ring_.size()) {
    ++dropped_;
    if (!overflow_warned_) {
      overflow_warned_ = true;
      util::log_warn() << "TraceSink ring full (capacity " << ring_.size()
                       << "): overwriting oldest events; dropped count in "
                          "TraceSink::dropped() (warned once per sink)";
    }
  } else {
    ++size_;
  }
  ring_[head_] = event;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
}

std::vector<TraceEvent> TraceSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest event sits at head_ once the ring has wrapped, at 0 before.
  const std::size_t start = size_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

namespace {
/// Wave-scoped types carry a real wave/graft id in `wave`; seq-scoped
/// types (wave == kNoWave) are matched by range intersection instead.
bool is_wave_scoped(TraceEventType type) noexcept {
  switch (type) {
    case TraceEventType::kDelivery:
    case TraceEventType::kDuplicateSuppressed:
    case TraceEventType::kGapDetected:
    case TraceEventType::kNackSent:
    case TraceEventType::kRepairMiss:
    case TraceEventType::kGapRepaired:
    case TraceEventType::kGapAbandoned:
      return false;
    default:
      return true;
  }
}
}  // namespace

std::vector<TraceEvent> TraceSink::events_for_wave(std::uint64_t group,
                                                   std::uint64_t wave) const {
  const auto all = events();
  // Pass 1: the wave's flushed seq range, if its kRootFlush survived the ring.
  std::optional<std::pair<std::uint64_t, std::uint64_t>> range;
  for (const TraceEvent& event : all)
    if (event.type == TraceEventType::kRootFlush && event.group == group &&
        event.wave == wave) {
      range = {event.seq_lo, event.seq_hi};
      break;
    }
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : all) {
    if (event.group != group) continue;
    if (event.wave == wave && wave != kNoWave) {
      out.push_back(event);
      continue;
    }
    if (range && !is_wave_scoped(event.type) && event.seq_lo <= range->second &&
        event.seq_hi >= range->first)
      out.push_back(event);
  }
  return out;
}

void write_chrome_trace(std::ostream& out, const std::vector<TraceEvent>& events) {
  out << "{\"traceEvents\":[";
  char buffer[512];
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out << ',';
    first = false;
    // Instant events, thread-scoped: pid buckets a group's lanes together
    // in the Perfetto timeline, tid is the acting peer. ts is microseconds
    // of simulated time with fixed precision so identical streams
    // serialize byte-identically.
    std::snprintf(buffer, sizeof(buffer),
                  "{\"name\":\"%s\",\"cat\":\"geomcast\",\"ph\":\"i\",\"s\":\"t\","
                  "\"ts\":%.3f,\"pid\":%llu,\"tid\":%llu",
                  trace_event_name(event.type), event.time * 1e6,
                  static_cast<unsigned long long>(event.group),
                  static_cast<unsigned long long>(
                      event.peer == kNoTracePeer ? 0 : event.peer));
    out << buffer;
    out << ",\"args\":{";
    bool first_arg = true;
    const auto arg = [&](const char* key, unsigned long long value) {
      if (!first_arg) out << ',';
      first_arg = false;
      out << '"' << key << "\":" << value;
    };
    if (event.wave != kNoWave) arg("wave", event.wave);
    arg("seq_lo", event.seq_lo);
    arg("seq_hi", event.seq_hi);
    if (event.other != kNoTracePeer) arg("other", event.other);
    out << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  write_chrome_trace(out, events);
  return out.str();
}

}  // namespace geomcast::obs
