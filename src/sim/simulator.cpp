#include "sim/simulator.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "util/pool.hpp"

namespace geomcast::sim {

Simulator::Simulator(std::uint64_t seed, QueueBackend backend)
    : network_(util::Rng(seed)) {
  lanes_.emplace_back(backend);
}

Simulator::~Simulator() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_go_.notify_all();
    for (std::thread& thread : threads_) thread.join();
  }
}

void Simulator::add_node(Node& node) {
  if (node.id() != nodes_.size())
    throw std::invalid_argument("Simulator::add_node: ids must be dense and in order");
  nodes_.push_back(&node);
  node.on_start(*this);
}

void Simulator::configure_shards(std::size_t workers, RouteFn router,
                                 void* router_ctx) {
  if (workers == 0)
    throw std::invalid_argument("Simulator::configure_shards: need >= 1 worker lane");
  if (workers_ != 0)
    throw std::logic_error("Simulator::configure_shards: already sharded");
  if (!lanes_[0].queue.empty() || now_ != kTimeZero)
    throw std::logic_error(
        "Simulator::configure_shards: must run before any event is scheduled");
  lookahead_ = network_.min_delay();
  if (!(lookahead_ > 0.0))
    throw std::invalid_argument(
        "Simulator::configure_shards: the latency model must guarantee a positive "
        "minimum delay (the conservative window's lookahead)");
  router_ = router;
  router_ctx_ = router_ctx;
  const QueueBackend backend = lanes_[0].queue.backend();
  for (std::size_t i = 0; i < workers; ++i) lanes_.emplace_back(backend);
  workers_ = workers;
  metrics_.lane_events.assign(workers + 1, 0);
  threads_.reserve(workers);
  for (std::uint32_t lane = 1; lane <= workers; ++lane)
    threads_.emplace_back([this, lane] { worker_main(lane); });
}

void Simulator::send(NodeId from, NodeId to, MessageKind kind, std::any payload) {
  if (to >= nodes_.size())
    throw std::invalid_argument("Simulator::send: unknown destination node");
  if (WorkerTls* w = tls_worker_; w != nullptr) {
    // Parallel phase: park the envelope and log the send. The network
    // admits it (one global rng stream) at the barrier, in canonical order.
    Lane& lane = lanes_[w->lane];
    lane.outbox.push_back(Envelope{from, to, kind, std::move(payload)});
    lane.effects.push_back(Effect{Effect::Kind::kSend, 0, w->now, w->order, w->now,
                                  lane.outbox.size() - 1});
    return;
  }
  Envelope envelope{from, to, kind, std::move(payload)};
  const auto delay = network_.admit(envelope);
  if (!delay) return;  // dropped by the loss model
  dispatch_send(std::move(envelope), now() + *delay);
}

void Simulator::dispatch_send(Envelope envelope, SimTime at) {
  const std::uint32_t lane_idx =
      workers_ == 0 ? 0 : router_(router_ctx_, envelope);
  // Park the envelope in a recycled slot; the delivery event is a raw
  // (thunk, this, lane|slot) triple — no type erasure, no heap allocation
  // per send once the pool is warm.
  Lane& lane = lanes_[lane_idx];
  std::uint32_t slot;
  if (lane.free_slots.empty()) {
    slot = static_cast<std::uint32_t>(lane.pool.size());
    lane.pool.push_back(std::move(envelope));
  } else {
    slot = lane.free_slots.back();
    lane.free_slots.pop_back();
    lane.pool[slot] = std::move(envelope);
  }
  const std::uint64_t arg =
      (static_cast<std::uint64_t>(lane_idx) << kSlotShift) | slot;
  if (workers_ == 0)
    lane.queue.schedule(at, &Simulator::deliver_slot_thunk, this, arg);
  else
    lane.queue.schedule_ordered(at, ++order_, &Simulator::deliver_slot_thunk, this,
                                arg);
}

void Simulator::deliver_slot(std::uint64_t arg) {
  Lane& lane = lanes_[arg >> kSlotShift];
  const auto slot = static_cast<std::uint32_t>(arg & kSlotMask);
  // Move out before delivering: the handler may send, which can grow the
  // pool and reuse the slot.
  Envelope envelope = std::move(lane.pool[slot]);
  lane.pool[slot] = Envelope{};
  lane.free_slots.push_back(slot);
  deliver(envelope);
}

void Simulator::deliver(const Envelope& envelope) {
  network_.note_delivered(envelope);
  if (observer_) observer_(now(), envelope);
  nodes_[envelope.to]->on_message(*this, envelope);
}

EventId Simulator::schedule_at(SimTime when, std::function<void()> action) {
  if (WorkerTls* w = tls_worker_; w != nullptr) {
    Lane& lane = lanes_[w->lane];
    const EventId local = lane.queue.register_action(std::move(action));
    lane.effects.push_back(
        Effect{Effect::Kind::kPlace, w->lane, w->now, w->order, when, local});
    return encode(w->lane, local);
  }
  if (workers_ == 0) return lanes_[0].queue.schedule(when, std::move(action));
  Lane& lane = lanes_[exec_lane_];
  return encode(exec_lane_,
                lane.queue.schedule_ordered(when, ++order_, std::move(action)));
}

EventId Simulator::schedule_after(SimTime delay, std::function<void()> action) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule_after: negative delay");
  return schedule_at(now() + delay, std::move(action));
}

EventId Simulator::schedule_at(SimTime when, RawFn fn, void* ctx, std::uint64_t arg) {
  if (WorkerTls* w = tls_worker_; w != nullptr) {
    Lane& lane = lanes_[w->lane];
    const EventId local = lane.queue.register_action(fn, ctx, arg);
    lane.effects.push_back(
        Effect{Effect::Kind::kPlace, w->lane, w->now, w->order, when, local});
    return encode(w->lane, local);
  }
  if (workers_ == 0) return lanes_[0].queue.schedule(when, fn, ctx, arg);
  Lane& lane = lanes_[exec_lane_];
  return encode(exec_lane_, lane.queue.schedule_ordered(when, ++order_, fn, ctx, arg));
}

EventId Simulator::schedule_after(SimTime delay, RawFn fn, void* ctx,
                                  std::uint64_t arg) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule_after: negative delay");
  return schedule_at(now() + delay, fn, ctx, arg);
}

EventId Simulator::schedule_control_at(SimTime when, std::function<void()> action) {
  if (WorkerTls* w = tls_worker_; w != nullptr) {
    EventId local;
    {
      std::lock_guard<std::mutex> lock(lane0_mu_);
      local = lanes_[0].queue.register_action(std::move(action));
    }
    lanes_[w->lane].effects.push_back(
        Effect{Effect::Kind::kPlace, 0, w->now, w->order, when, local});
    return local;  // lane 0: the encoding is the identity
  }
  if (workers_ == 0) return lanes_[0].queue.schedule(when, std::move(action));
  return lanes_[0].queue.schedule_ordered(when, ++order_, std::move(action));
}

EventId Simulator::schedule_control_after(SimTime delay, std::function<void()> action) {
  if (delay < 0)
    throw std::invalid_argument("Simulator::schedule_control_after: negative delay");
  return schedule_control_at(now() + delay, std::move(action));
}

bool Simulator::cancel(EventId id) {
  const auto lane = static_cast<std::uint32_t>(id >> kLaneShift);
  const EventId local = id & kLocalMask;
  if (WorkerTls* w = tls_worker_; w != nullptr && lane != w->lane) {
    if (lane != 0)
      throw std::logic_error("Simulator::cancel: cross-worker-lane cancel");
    std::lock_guard<std::mutex> lock(lane0_mu_);
    return lanes_[0].queue.cancel(local);
  }
  return lanes_[lane].queue.cancel(local);
}

void Simulator::log_ext(std::uint64_t a, std::uint64_t b, std::uint64_t c, double v) {
  if (WorkerTls* w = tls_worker_; w != nullptr) {
    Lane& lane = lanes_[w->lane];
    lane.effects.push_back(
        Effect{Effect::Kind::kExt, 0, w->now, w->order, 0.0, 0, a, b, c, v});
    return;
  }
  ext_(ext_ctx_, a, b, c, v);
}

std::size_t Simulator::run_until_idle(std::size_t max_events) {
  if (workers_ != 0) return run_sharded(max_events);
  EventQueue& queue = lanes_[0].queue;
  std::size_t processed = 0;
  while (processed < max_events && queue.run_next(&now_)) ++processed;
  return processed;
}

std::size_t Simulator::run_until(SimTime until, std::size_t max_events) {
  if (workers_ != 0)
    throw std::logic_error("Simulator::run_until: unsupported in sharded mode");
  EventQueue& queue = lanes_[0].queue;
  std::size_t processed = 0;
  while (processed < max_events && !queue.empty() && queue.next_time() <= until) {
    now_ = queue.next_time();
    queue.run_next();
    ++processed;
  }
  if (now_ < until) now_ = until;
  return processed;
}

std::size_t Simulator::run_sharded(std::size_t max_events) {
  if (observer_)
    throw std::logic_error(
        "Simulator: the delivery observer is unsupported in sharded mode");
  std::size_t processed = 0;
  while (processed < max_events) {
    // g: the earliest control event; m: the earliest worker event.
    SimTime g = 0.0;
    std::uint64_t key_order = 0;
    const bool g_has = lanes_[0].queue.peek_key(&g, &key_order);
    SimTime m = 0.0;
    bool m_has = false;
    for (std::uint32_t lane = 1; lane <= workers_; ++lane) {
      SimTime w;
      if (lanes_[lane].queue.peek_key(&w, &key_order) && (!m_has || w < m)) {
        m = w;
        m_has = true;
      }
    }
    if (!g_has && !m_has) break;
    if (g_has && (!m_has || g <= m)) {
      // Control due first: drain the instant sequentially, all lanes in
      // global order, with workers parked.
      processed += run_instant(g, max_events - processed);
    } else {
      // Conservative window: workers may run everything strictly below
      // m + lookahead (nothing they send can land earlier), capped at the
      // next control event.
      SimTime bound = m + lookahead_;
      if (g_has && g < bound) bound = g;
      processed += run_window(bound);
    }
  }
  return processed;
}

std::size_t Simulator::run_instant(SimTime t, std::size_t budget) {
  ++metrics_.instants;
  std::size_t processed = 0;
  // Drain every event at exactly time t across all lanes in global
  // (time, order) sequence; handlers may keep scheduling at t.
  while (processed < budget) {
    std::uint32_t best_lane = 0;
    std::uint64_t best_order = 0;
    bool found = false;
    for (std::uint32_t lane = 0; lane <= workers_; ++lane) {
      SimTime when;
      std::uint64_t order;
      if (lanes_[lane].queue.peek_key(&when, &order) && when == t &&
          (!found || order < best_order)) {
        found = true;
        best_lane = lane;
        best_order = order;
      }
    }
    if (!found) break;
    exec_lane_ = best_lane;
    lanes_[best_lane].queue.run_next(&now_);
    ++metrics_.lane_events[best_lane];
    ++processed;
  }
  exec_lane_ = 0;
  return processed;
}

std::size_t Simulator::run_window(SimTime bound) {
  ++metrics_.windows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bound_ = bound;
    active_ = workers_;
    ++gen_;
  }
  cv_go_.notify_all();
  const auto wait_start = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return active_ == 0; });
    if (worker_error_) {
      const std::exception_ptr error = worker_error_;
      worker_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }
  metrics_.barrier_wait_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wait_start)
          .count();
  replay_effects(bound);
  std::size_t processed = 0;
  for (std::uint32_t lane = 1; lane <= workers_; ++lane) {
    Lane& worker = lanes_[lane];
    // Pooled payloads whose last reference dropped on the worker: recycle
    // now, on the pool's owning thread.
    for (auto& [fn, block] : worker.deferred) fn(block);
    worker.deferred.clear();
    metrics_.lane_events[lane] += worker.window_events;
    processed += worker.window_events;
  }
  if (barrier_hook_ != nullptr) barrier_hook_(barrier_ctx_);
  return processed;
}

void Simulator::replay_effects(SimTime bound) {
  // K-way merge of the per-lane effect logs by the producing event's
  // (when, order) key — each log is already sorted (a worker runs its own
  // lane in order), and orders are globally unique, so this is exactly
  // the sequence the classic loop would have executed these effects in.
  std::vector<std::size_t> cursor(workers_ + 1, 0);
  for (;;) {
    std::uint32_t best = 0;
    bool found = false;
    SimTime best_when = 0.0;
    std::uint64_t best_order = 0;
    for (std::uint32_t lane = 1; lane <= workers_; ++lane) {
      const std::vector<Effect>& fx = lanes_[lane].effects;
      const std::size_t at = cursor[lane];
      if (at >= fx.size()) continue;
      if (!found || fx[at].src_when < best_when ||
          (fx[at].src_when == best_when && fx[at].src_order < best_order)) {
        found = true;
        best = lane;
        best_when = fx[at].src_when;
        best_order = fx[at].src_order;
      }
    }
    if (!found) break;
    // Consume the whole run from this producing event (one merge step per
    // event, not per effect); intra-event effects replay in append order.
    Lane& src = lanes_[best];
    std::size_t at = cursor[best];
    while (at < src.effects.size() && src.effects[at].src_when == best_when &&
           src.effects[at].src_order == best_order) {
      apply_effect(src, src.effects[at], bound);
      ++at;
    }
    cursor[best] = at;
  }
  for (std::uint32_t lane = 1; lane <= workers_; ++lane) {
    lanes_[lane].effects.clear();
    lanes_[lane].outbox.clear();
  }
}

void Simulator::apply_effect(Lane& src, const Effect& effect, SimTime bound) {
  switch (effect.kind) {
    case Effect::Kind::kSend: {
      Envelope envelope = std::move(src.outbox[effect.value]);
      const auto delay = network_.admit(envelope);
      if (!delay) return;  // dropped: consumes no order, exactly like classic
      const SimTime at = effect.when + *delay;
      if (at < bound)
        throw std::logic_error(
            "sharded loop: a worker send landed inside its own window "
            "(lookahead violated)");
      dispatch_send(std::move(envelope), at);
      return;
    }
    case Effect::Kind::kPlace: {
      if (effect.when < bound)
        throw std::logic_error(
            "sharded loop: a worker timer landed inside its own window — "
            "timer delays must be >= the lookahead");
      // place_registered ignores ids cancelled before placement; the order
      // is consumed either way (the classic path consumed an id there too).
      lanes_[effect.lane].queue.place_registered(effect.when, ++order_, effect.value);
      return;
    }
    case Effect::Kind::kExt:
      ext_(ext_ctx_, effect.a, effect.b, effect.c, effect.v);
      return;
  }
}

void Simulator::worker_main(std::uint32_t lane) {
  WorkerTls tls{this, lane, kTimeZero, 0};
  Lane& my = lanes_[lane];
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_go_.wait(lock, [&] { return stop_ || gen_ != seen; });
    if (stop_) return;
    seen = gen_;
    const SimTime bound = bound_;
    lock.unlock();
    tls_worker_ = &tls;
    util::RcThread::deferred = &my.deferred;
    std::uint64_t ran = 0;
    std::exception_ptr error;
    try {
      while (my.queue.run_next_before(bound, &tls.now, &tls.order)) ++ran;
    } catch (...) {
      error = std::current_exception();
    }
    tls_worker_ = nullptr;
    util::RcThread::deferred = nullptr;
    my.window_events = ran;
    my.events += ran;
    lock.lock();
    if (error != nullptr && worker_error_ == nullptr) worker_error_ = error;
    if (--active_ == 0) cv_done_.notify_one();
  }
}

}  // namespace geomcast::sim
