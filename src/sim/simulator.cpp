#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace geomcast::sim {

Simulator::Simulator(std::uint64_t seed, QueueBackend backend)
    : queue_(backend), network_(util::Rng(seed)) {}

void Simulator::add_node(Node& node) {
  if (node.id() != nodes_.size())
    throw std::invalid_argument("Simulator::add_node: ids must be dense and in order");
  nodes_.push_back(&node);
  node.on_start(*this);
}

void Simulator::send(NodeId from, NodeId to, MessageKind kind, std::any payload) {
  if (to >= nodes_.size())
    throw std::invalid_argument("Simulator::send: unknown destination node");
  Envelope envelope{from, to, kind, std::move(payload)};
  const auto delay = network_.admit(envelope);
  if (!delay) return;  // dropped by the loss model
  // Park the envelope in a recycled slot; the delivery event is a raw
  // (thunk, this, slot) triple — no type erasure, no heap allocation
  // per send once the pool is warm.
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(envelope_pool_.size());
    envelope_pool_.push_back(std::move(envelope));
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    envelope_pool_[slot] = std::move(envelope);
  }
  schedule_at(now_ + *delay, &Simulator::deliver_slot_thunk, this, slot);
}

void Simulator::deliver_slot(std::uint32_t slot) {
  // Move out before delivering: the handler may send, which can grow the
  // pool and reuse the slot.
  Envelope envelope = std::move(envelope_pool_[slot]);
  envelope_pool_[slot] = Envelope{};
  free_slots_.push_back(slot);
  deliver(envelope);
}

void Simulator::deliver(const Envelope& envelope) {
  network_.note_delivered(envelope);
  if (observer_) observer_(now_, envelope);
  nodes_[envelope.to]->on_message(*this, envelope);
}

EventId Simulator::schedule_at(SimTime when, std::function<void()> action) {
  return queue_.schedule(when, std::move(action));
}

EventId Simulator::schedule_after(SimTime delay, std::function<void()> action) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule_after: negative delay");
  return queue_.schedule(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(SimTime when, RawFn fn, void* ctx, std::uint64_t arg) {
  return queue_.schedule(when, fn, ctx, arg);
}

EventId Simulator::schedule_after(SimTime delay, RawFn fn, void* ctx,
                                  std::uint64_t arg) {
  if (delay < 0) throw std::invalid_argument("Simulator::schedule_after: negative delay");
  return queue_.schedule(now_ + delay, fn, ctx, arg);
}

std::size_t Simulator::run_until_idle(std::size_t max_events) {
  std::size_t processed = 0;
  while (processed < max_events && queue_.run_next(&now_)) ++processed;
  return processed;
}

std::size_t Simulator::run_until(SimTime until, std::size_t max_events) {
  std::size_t processed = 0;
  while (processed < max_events && !queue_.empty() && queue_.next_time() <= until) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++processed;
  }
  if (now_ < until) now_ = until;
  return processed;
}

}  // namespace geomcast::sim
