#include "sim/node.hpp"

// Node is an interface with out-of-line-able pieces only in the vtable; this
// translation unit anchors the vtable so the class has a home object file.

namespace geomcast::sim {}  // namespace geomcast::sim
