// The simulation kernel: virtual clock + event queue + network + nodes.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace geomcast::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);

  /// Registers a node. The simulator does NOT take ownership; the caller
  /// must keep the node alive for the simulator's lifetime. Node ids must
  /// be dense (0, 1, 2, ...) and registered in order.
  void add_node(Node& node);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] Network& network() noexcept { return network_; }
  [[nodiscard]] const NetworkStats& stats() const noexcept { return network_.stats(); }

  /// Sends a message; it will be delivered (or dropped) per the network's
  /// latency/loss models.
  void send(NodeId from, NodeId to, MessageKind kind, std::any payload);

  /// Observer invoked on every delivery, before the destination node's
  /// handler — tracing/debugging hook; pass nullptr to clear.
  using DeliveryObserver = std::function<void(SimTime, const Envelope&)>;
  void set_delivery_observer(DeliveryObserver observer) {
    observer_ = std::move(observer);
  }

  /// Schedules a callback at an absolute virtual time / after a delay.
  EventId schedule_at(SimTime when, std::function<void()> action);
  EventId schedule_after(SimTime delay, std::function<void()> action);
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event queue drains or `max_events` fire.
  /// Returns the number of events processed.
  std::size_t run_until_idle(std::size_t max_events = 50'000'000);

  /// Runs events with time <= `until`. Returns events processed.
  std::size_t run_until(SimTime until, std::size_t max_events = 50'000'000);

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }

  /// Live (non-cancelled) events awaiting dispatch.
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.pending(); }
  /// Heap slots occupied, cancelled corpses included — the memory-pressure
  /// gauge the observability sampler exports (compaction keeps it within a
  /// constant factor of pending_events()).
  [[nodiscard]] std::size_t queue_heap_size() const noexcept {
    return queue_.heap_size();
  }

 private:
  void deliver(const Envelope& envelope);

  SimTime now_ = kTimeZero;
  EventQueue queue_;
  Network network_;
  std::vector<Node*> nodes_;
  DeliveryObserver observer_;
};

}  // namespace geomcast::sim
