// The simulation kernel: virtual clock + event queue + network + nodes.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace geomcast::sim {

class Simulator {
 public:
  /// `backend` selects the event-queue implementation; both produce
  /// bit-identical schedules (see sim/event_queue.hpp). kWheel is the fast
  /// path for timer-dominated workloads; kHeap is the oracle.
  explicit Simulator(std::uint64_t seed = 1, QueueBackend backend = QueueBackend::kHeap);

  /// Registers a node. The simulator does NOT take ownership; the caller
  /// must keep the node alive for the simulator's lifetime. Node ids must
  /// be dense (0, 1, 2, ...) and registered in order.
  void add_node(Node& node);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] Network& network() noexcept { return network_; }
  [[nodiscard]] const NetworkStats& stats() const noexcept { return network_.stats(); }

  /// Sends a message; it will be delivered (or dropped) per the network's
  /// latency/loss models.
  void send(NodeId from, NodeId to, MessageKind kind, std::any payload);

  /// Observer invoked on every delivery, before the destination node's
  /// handler — tracing/debugging hook; pass nullptr to clear.
  using DeliveryObserver = std::function<void(SimTime, const Envelope&)>;
  void set_delivery_observer(DeliveryObserver observer) {
    observer_ = std::move(observer);
  }

  /// Schedules a callback at an absolute virtual time / after a delay.
  EventId schedule_at(SimTime when, std::function<void()> action);
  EventId schedule_after(SimTime delay, std::function<void()> action);
  /// Raw-callback overloads (see EventQueue::RawFn): the allocation-free
  /// path for per-hop timers and other high-frequency schedulers.
  EventId schedule_at(SimTime when, RawFn fn, void* ctx, std::uint64_t arg);
  EventId schedule_after(SimTime delay, RawFn fn, void* ctx, std::uint64_t arg);
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the event queue drains or `max_events` fire.
  /// Returns the number of events processed.
  std::size_t run_until_idle(std::size_t max_events = 50'000'000);

  /// Runs events with time <= `until`. Returns events processed.
  std::size_t run_until(SimTime until, std::size_t max_events = 50'000'000);

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }

  /// Live (non-cancelled) events awaiting dispatch.
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.pending(); }
  /// Heap slots occupied, cancelled corpses included — the memory-pressure
  /// gauge the observability sampler exports (compaction keeps it within a
  /// constant factor of pending_events()).
  [[nodiscard]] std::size_t queue_heap_size() const noexcept {
    return queue_.heap_size();
  }

 private:
  void deliver(const Envelope& envelope);
  void deliver_slot(std::uint32_t slot);
  static void deliver_slot_thunk(void* ctx, std::uint64_t arg) {
    static_cast<Simulator*>(ctx)->deliver_slot(static_cast<std::uint32_t>(arg));
  }

  SimTime now_ = kTimeZero;
  EventQueue queue_;
  Network network_;
  std::vector<Node*> nodes_;
  DeliveryObserver observer_;
  // In-flight envelopes live in a recycled slot pool instead of inside
  // each delivery closure: the closure then captures only (this, slot) —
  // small and trivially copyable, so std::function stores it inline and a
  // send costs zero allocations once the pool is warm.
  std::vector<Envelope> envelope_pool_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace geomcast::sim
