// The simulation kernel: virtual clock + event queue + network + nodes.
//
// Two execution modes share one API:
//
//  - Classic (default): a single event queue drained on the calling
//    thread — the bit-exact oracle every other mode is pinned against.
//  - Sharded (configure_shards): peers are partitioned into K coordinate
//    regions, each with its own EventQueue drained by a dedicated worker
//    thread, plus a sequential control lane (lane 0) executed by the
//    coordinating thread. The loop is a conservative-window PDES: workers
//    may safely run every event strictly below
//        bound = min(earliest worker event + lookahead, earliest control event)
//    because any message they send travels at least `lookahead` (the
//    latency model's minimum delay), so nothing they produce can land
//    inside the window. Control events never run concurrently with
//    workers — when the earliest control event is due, all lanes are
//    parked and the coordinator drains that instant sequentially across
//    all lanes in global order. Worker-side effects (sends, timer
//    placements, stat probes) are logged per lane and replayed by the
//    coordinator at the window barrier in one canonical order: the
//    producing event's (time, order) key, merged across lanes. Every
//    placement consumes the next global order counter in that canonical
//    sequence, which reproduces the single-queue insertion order exactly —
//    so delivered tuples and stats are bit-identical to the classic mode
//    for any K, and K's only observable effect is wall-clock time.
#pragma once

#include <any>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace geomcast::sim {

/// Per-lane load/sync accounting for the sharded loop (bench hygiene: the
/// `--simcore --shards` JSON reports these so region imbalance is visible).
struct ShardMetrics {
  std::vector<std::uint64_t> lane_events;  ///< events executed, by home lane
  std::uint64_t windows = 0;               ///< parallel windows run
  std::uint64_t instants = 0;              ///< sequential control instants
  double barrier_wait_seconds = 0.0;       ///< coordinator time parked at barriers
};

class Simulator {
 public:
  /// `backend` selects the event-queue implementation; both produce
  /// bit-identical schedules (see sim/event_queue.hpp). kWheel is the fast
  /// path for timer-dominated workloads; kHeap is the oracle.
  explicit Simulator(std::uint64_t seed = 1, QueueBackend backend = QueueBackend::kHeap);
  ~Simulator();

  /// Registers a node. The simulator does NOT take ownership; the caller
  /// must keep the node alive for the simulator's lifetime. Node ids must
  /// be dense (0, 1, 2, ...) and registered in order.
  void add_node(Node& node);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] Network& network() noexcept { return network_; }
  [[nodiscard]] const NetworkStats& stats() const noexcept { return network_.stats(); }

  /// Virtual time of the event the calling thread is executing: the global
  /// clock on the coordinator, the worker's own clock during a parallel
  /// phase (handlers call this for latency math, so it must be the event's
  /// time on whichever thread runs the event).
  [[nodiscard]] SimTime now() const noexcept {
    const WorkerTls* w = tls_worker_;
    return (w != nullptr && w->sim == this) ? w->now : now_;
  }

  // -- sharded event loop ---------------------------------------------------

  /// Routes an envelope to its destination lane: 0 for the control lane,
  /// 1..K for a worker region. Must be a pure function of the envelope.
  using RouteFn = std::uint32_t (*)(void* ctx, const Envelope& envelope);
  /// Replayed side-channel record (see log_ext); invoked on the
  /// coordinator in canonical order at the window barrier.
  using ExtFn = void (*)(void* ctx, std::uint64_t a, std::uint64_t b,
                         std::uint64_t c, double v);
  using HookFn = void (*)(void* ctx);

  /// Switches this simulator to the sharded loop with `workers` worker
  /// lanes (plus the control lane). Must be called before any event runs
  /// and with an empty queue; requires a positive-lookahead latency model.
  /// Spawns the worker threads immediately (they park between windows).
  void configure_shards(std::size_t workers, RouteFn router, void* router_ctx);
  void set_ext_handler(ExtFn fn, void* ctx) { ext_ = fn; ext_ctx_ = ctx; }
  /// Runs on the coordinator at the end of every window barrier, after the
  /// effect replay — the client's stat-delta collapse point.
  void set_barrier_hook(HookFn fn, void* ctx) { barrier_hook_ = fn; barrier_ctx_ = ctx; }

  [[nodiscard]] bool sharded() const noexcept { return workers_ != 0; }
  [[nodiscard]] std::size_t worker_lanes() const noexcept { return workers_; }
  [[nodiscard]] const ShardMetrics& shard_metrics() const noexcept { return metrics_; }

  /// The calling thread's parallel-phase lane, or -1 on the coordinator
  /// (including control instants). The lane-delta sinks (Network,
  /// GroupManager, TraceSink) branch on this.
  [[nodiscard]] static int parallel_lane() noexcept {
    const WorkerTls* w = tls_worker_;
    return w != nullptr ? static_cast<int>(w->lane) : -1;
  }
  /// Canonical order of the event the calling worker is executing (0 on
  /// the coordinator) — the trace-merge sort key.
  [[nodiscard]] static std::uint64_t parallel_order() noexcept {
    const WorkerTls* w = tls_worker_;
    return w != nullptr ? w->order : 0;
  }
  /// parallel_lane() clamped to a usable scratch index: workers get their
  /// own slot, everything coordinator-side shares slot 0.
  [[nodiscard]] static std::size_t scratch_lane() noexcept {
    const int lane = parallel_lane();
    return lane > 0 ? static_cast<std::size_t>(lane) : 0;
  }

  /// Sends a message; it will be delivered (or dropped) per the network's
  /// latency/loss models.
  void send(NodeId from, NodeId to, MessageKind kind, std::any payload);

  /// Observer invoked on every delivery, before the destination node's
  /// handler — tracing/debugging hook; pass nullptr to clear. Unsupported
  /// under the sharded loop (run throws if one is set).
  using DeliveryObserver = std::function<void(SimTime, const Envelope&)>;
  void set_delivery_observer(DeliveryObserver observer) {
    observer_ = std::move(observer);
  }

  /// Schedules a callback at an absolute virtual time / after a delay. The
  /// event lands on the scheduling context's own lane: a worker's timer
  /// stays in its region, coordinator-side schedules follow the event
  /// being executed (lane 0 outside any event).
  EventId schedule_at(SimTime when, std::function<void()> action);
  EventId schedule_after(SimTime delay, std::function<void()> action);
  /// Raw-callback overloads (see EventQueue::RawFn): the allocation-free
  /// path for per-hop timers and other high-frequency schedulers.
  EventId schedule_at(SimTime when, RawFn fn, void* ctx, std::uint64_t arg);
  EventId schedule_after(SimTime delay, RawFn fn, void* ctx, std::uint64_t arg);
  /// Like schedule_at/after but always lands on the control lane — for
  /// timers whose handler must observe globally quiesced state (e.g. the
  /// gap timer polling cross-region in-flight counts). Identical to
  /// schedule_at/after in classic mode.
  EventId schedule_control_at(SimTime when, std::function<void()> action);
  EventId schedule_control_after(SimTime delay, std::function<void()> action);
  bool cancel(EventId id);

  /// Side-channel record emitted from an event handler. In classic mode
  /// the handler runs immediately; on a worker lane it is logged and
  /// replayed on the coordinator at the barrier, in canonical order — the
  /// escape hatch for effects that are not order-free (floating-point
  /// accumulation, delivery probes).
  void log_ext(std::uint64_t a, std::uint64_t b, std::uint64_t c, double v);

  /// Runs until the event queues drain or `max_events` fire.
  /// Returns the number of events processed.
  std::size_t run_until_idle(std::size_t max_events = 50'000'000);

  /// Runs events with time <= `until`. Returns events processed.
  /// Classic mode only.
  std::size_t run_until(SimTime until, std::size_t max_events = 50'000'000);

  [[nodiscard]] bool idle() const noexcept {
    for (const Lane& lane : lanes_)
      if (!lane.queue.empty()) return false;
    return true;
  }

  /// Live (non-cancelled) events awaiting dispatch, across all lanes.
  [[nodiscard]] std::size_t pending_events() const noexcept {
    std::size_t total = 0;
    for (const Lane& lane : lanes_) total += lane.queue.pending();
    return total;
  }
  /// Heap slots occupied, cancelled corpses included — the memory-pressure
  /// gauge the observability sampler exports (compaction keeps it within a
  /// constant factor of pending_events()).
  [[nodiscard]] std::size_t queue_heap_size() const noexcept {
    std::size_t total = 0;
    for (const Lane& lane : lanes_) total += lane.queue.heap_size();
    return total;
  }

 private:
  /// A worker-side effect, logged during the parallel phase and replayed
  /// on the coordinator at the barrier. Replay order is the producing
  /// event's (src_when, src_order) merged across lanes — the canonical
  /// sequence the classic loop would have executed these statements in.
  struct Effect {
    enum class Kind : std::uint8_t { kSend, kPlace, kExt };
    Kind kind;
    std::uint32_t lane;      // kPlace: queue the entry belongs to
    SimTime src_when;        // producing event's key
    std::uint64_t src_order;
    SimTime when;            // kSend/kPlace: absolute target time
    std::uint64_t value;     // kSend: outbox index; kPlace: local event id
    std::uint64_t a = 0, b = 0, c = 0;  // kExt payload
    double v = 0.0;
  };

  /// One region: its queue, its envelope slot pool, and the worker-phase
  /// logs. Lane 0 is the control lane (no thread, no logs).
  struct Lane {
    explicit Lane(QueueBackend backend) : queue(backend) {}
    EventQueue queue;
    std::vector<Envelope> pool;
    std::vector<std::uint32_t> free_slots;
    std::vector<Effect> effects;   // parallel-phase effect log
    std::vector<Envelope> outbox;  // kSend payload parking
    std::vector<std::pair<void (*)(void*), void*>> deferred;  // RcPtr recycles
    std::uint64_t events = 0;         // lifetime events executed in this lane
    std::uint64_t window_events = 0;  // events executed in the current window
  };

  struct WorkerTls {
    Simulator* sim;
    std::uint32_t lane;
    SimTime now;
    std::uint64_t order;
  };
  inline static thread_local WorkerTls* tls_worker_ = nullptr;

  // EventIds carry their lane in the top byte so cancel() can find the
  // queue; lane 0 ids are numerically unchanged from the classic path.
  static constexpr unsigned kLaneShift = 56;
  static constexpr EventId kLocalMask = (EventId{1} << kLaneShift) - 1;
  [[nodiscard]] static EventId encode(std::uint32_t lane, EventId local) noexcept {
    return (static_cast<EventId>(lane) << kLaneShift) | local;
  }
  // Delivery-event args carry (lane, slot) for the envelope pool.
  static constexpr unsigned kSlotShift = 40;
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotShift) - 1;

  void deliver(const Envelope& envelope);
  void deliver_slot(std::uint64_t arg);
  static void deliver_slot_thunk(void* ctx, std::uint64_t arg) {
    static_cast<Simulator*>(ctx)->deliver_slot(arg);
  }

  /// Parks an admitted envelope in its destination lane's slot pool and
  /// schedules the delivery event at absolute time `at`.
  void dispatch_send(Envelope envelope, SimTime at);

  std::size_t run_sharded(std::size_t max_events);
  std::size_t run_instant(SimTime t, std::size_t budget);
  std::size_t run_window(SimTime bound);
  void replay_effects(SimTime bound);
  void apply_effect(Lane& src, const Effect& effect, SimTime bound);
  void worker_main(std::uint32_t lane);

  SimTime now_ = kTimeZero;
  Network network_;
  std::vector<Node*> nodes_;
  DeliveryObserver observer_;
  // In-flight envelopes live in recycled slot pools (one per lane) instead
  // of inside each delivery closure: the closure then captures only
  // (this, lane, slot) — small and trivially copyable, so a send costs
  // zero allocations once the pool is warm.
  std::deque<Lane> lanes_;  // deque: Lane is neither copyable nor movable

  // Sharded-loop state (all dormant while workers_ == 0).
  std::size_t workers_ = 0;
  RouteFn router_ = nullptr;
  void* router_ctx_ = nullptr;
  ExtFn ext_ = nullptr;
  void* ext_ctx_ = nullptr;
  HookFn barrier_hook_ = nullptr;
  void* barrier_ctx_ = nullptr;
  SimTime lookahead_ = 0.0;
  std::uint64_t order_ = 0;     // global canonical schedule counter
  std::uint32_t exec_lane_ = 0; // home lane of the instant event being run
  ShardMetrics metrics_;

  // Worker synchronisation: a generation-counted go/done rendezvous.
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_go_, cv_done_;
  std::uint64_t gen_ = 0;
  std::size_t active_ = 0;
  bool stop_ = false;
  SimTime bound_ = kTimeZero;
  std::exception_ptr worker_error_;
  // Guards the control lane's queue for the rare cross-lane touches from
  // workers (registering a control timer, cancelling a control event); the
  // coordinator is parked at the barrier whenever workers run.
  std::mutex lane0_mu_;
};

}  // namespace geomcast::sim
