// Virtual time for the discrete-event simulator. Seconds as double: the
// paper's protocol parameters (gossip period, Tmax, lifetimes T(P)) are all
// durations, and double gives us exact arithmetic for the small integer
// multiples the experiments use.
#pragma once

namespace geomcast::sim {

using SimTime = double;

inline constexpr SimTime kTimeZero = 0.0;

}  // namespace geomcast::sim
