// Actor base class for protocol participants. A Node reacts to delivered
// envelopes and to timers it set; everything runs single-threaded inside
// the Simulator's event loop (the paper's "multi-threaded Python framework"
// is replaced by a deterministic sequential schedule — see DESIGN.md).
#pragma once

#include "sim/network.hpp"
#include "sim/time.hpp"

namespace geomcast::sim {

class Simulator;

class Node {
 public:
  explicit Node(NodeId id) noexcept : id_(id) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Called once when the node is registered with a simulator, before any
  /// message or timer fires. Use it to start periodic behaviour.
  virtual void on_start(Simulator& sim) { (void)sim; }

  /// Called for every envelope delivered to this node.
  virtual void on_message(Simulator& sim, const Envelope& envelope) = 0;

 private:
  NodeId id_;
};

}  // namespace geomcast::sim
