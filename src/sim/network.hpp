// Simulated message-passing network.
//
// The paper's peers exchange two kinds of traffic: periodic gossip
// announcements and multicast-tree build requests. The Network models
// point-to-point delivery with a pluggable latency model, optional loss
// injection (for failure tests), and per-kind message accounting — the §2
// "exactly N-1 messages" claim is verified against these counters.
#pragma once

#include <any>
#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace geomcast::sim {

/// Dense node identifier (index into the driver's node vector).
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Application-defined message kind; used for accounting and tracing.
using MessageKind = std::uint32_t;

/// A message in flight. Payload is type-erased; receivers any_cast it back
/// based on `kind`.
struct Envelope {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  MessageKind kind = 0;
  std::any payload;
};

/// Per-link latency. Deterministic given the (seeded) rng.
class LatencyModel {
 public:
  /// Every message takes exactly `delay` seconds.
  [[nodiscard]] static LatencyModel constant(SimTime delay);
  /// Uniform in [lo, hi) per message.
  [[nodiscard]] static LatencyModel uniform(SimTime lo, SimTime hi);

  [[nodiscard]] SimTime sample(util::Rng& rng) const noexcept;

  /// Smallest delay the model can produce — the sharded event loop's
  /// lookahead: no message sent at t can arrive before t + min_delay().
  [[nodiscard]] SimTime min_delay() const noexcept { return lo_; }

 private:
  SimTime lo_ = 0.0;
  SimTime hi_ = 0.0;  // lo == hi => constant
};

/// Message-loss injection for failure testing.
struct LossModel {
  /// Probability that any given message is dropped.
  double drop_probability = 0.0;
  /// If set, messages for which this returns true are always dropped
  /// (targeted failure injection, e.g. "partition node 7").
  std::function<bool(const Envelope&)> drop_if;
};

/// Counters the experiments read back.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  // Reliability-protocol accounting, reported through the note_* hooks by
  // the per-hop ack/retransmit layer (multicast/reliable_hop.hpp) and its
  // clients — the transport itself cannot tell a retransmission from a
  // first copy or a duplicate from fresh data.
  std::uint64_t retransmitted = 0;    ///< copies resent after an ack timeout
  std::uint64_t duplicate_data = 0;   ///< duplicate arrivals receivers suppressed
  std::uint64_t abandoned_hops = 0;   ///< hops whose retry budget ran out
  // End-to-end gap-repair accounting (QoS 2), reported by the pub/sub
  // repair plane: receiver-driven NACKs for missing sequence numbers and
  // the retained-payload repairs that answered them.
  std::uint64_t nacks = 0;            ///< batched gap NACK envelopes sent
  std::uint64_t repairs_served = 0;   ///< retained payloads resent to a NACKer
  // Wave-coalescing accounting (groups/pubsub batching): range waves the
  // rendezvous roots flushed and the per-edge envelopes (payload, plus
  // acks at QoS 1+) those ranges avoided versus one wave per publish.
  std::uint64_t batched_waves = 0;    ///< coalesced range waves flushed
  std::uint64_t envelopes_saved = 0;  ///< envelopes amortised away by batching
  // Control-plane cost attribution (groups routed control + graft plane):
  // the envelopes that find/maintain trees, as opposed to the payload
  // envelopes that traverse them. Reported by the pub/sub layer so the
  // "tree construction costs real messages" claim is measurable here, not
  // just in per-group bookkeeping.
  std::uint64_t control_envelopes = 0;  ///< routed control + graft envelopes sent
  std::uint64_t graft_hops = 0;         ///< kGraftRequestKind descent hops sent
  std::uint64_t graft_retries = 0;      ///< graft control envelopes retransmitted
  std::uint64_t graft_aborts = 0;       ///< in-flight grafts given up (resubscribed)
  // Warm-failover accounting (groups replica plane): root->replica state
  // replication, the per-migration bootstrap subset of it, and the idle
  // heartbeat beacons. All three are control traffic and also count into
  // control_envelopes.
  std::uint64_t replica_sync_envelopes = 0;  ///< kReplicaSyncKind deltas sent
  std::uint64_t migration_envelopes = 0;     ///< syncs re-establishing a replica
  std::uint64_t heartbeats = 0;              ///< kHeartbeatKind beacon hops sent
  std::map<MessageKind, std::uint64_t> sent_by_kind;
  std::vector<std::uint64_t> sent_by_node;
  std::vector<std::uint64_t> received_by_node;
};

/// The transport. Owned by the Simulator; applications call send() through
/// the Simulator facade.
class Network {
 public:
  explicit Network(util::Rng rng) : rng_(rng) {}

  void set_latency(LatencyModel model) noexcept { latency_ = model; }
  void set_loss(LossModel model) { loss_ = std::move(model); }

  /// Lookahead the latency model guarantees (see LatencyModel::min_delay).
  [[nodiscard]] SimTime min_delay() const noexcept { return latency_.min_delay(); }

  /// Sharded event loop wiring: `fn` reports the calling thread's current
  /// parallel-phase lane (or a negative value on the coordinating thread).
  /// While configured, note_* calls from a parallel lane land in that
  /// lane's private delta; collapse_lane_deltas() folds the deltas into the
  /// base counters at each window barrier. admit() stays coordinator-only.
  using LaneFn = int (*)() noexcept;
  void configure_lanes(std::size_t lanes, LaneFn fn);
  void collapse_lane_deltas() noexcept;

  /// Decides fate and delay of a message. Returns the delivery delay, or
  /// nothing if the message is dropped. Updates counters either way.
  [[nodiscard]] std::optional<SimTime> admit(const Envelope& envelope);

  void note_delivered(const Envelope& envelope);

  // Reliability-layer reporting (see NetworkStats).
  void note_retransmission() noexcept { ++sink().retransmitted; }
  void note_duplicate() noexcept { ++sink().duplicate_data; }
  void note_abandoned() noexcept { ++sink().abandoned_hops; }
  void note_nack() noexcept { ++sink().nacks; }
  void note_repair_served() noexcept { ++sink().repairs_served; }
  void note_batched_wave(std::uint64_t envelopes_saved) noexcept {
    NetworkStats& s = sink();
    ++s.batched_waves;
    s.envelopes_saved += envelopes_saved;
  }
  void note_control_envelope() noexcept { ++sink().control_envelopes; }
  void note_graft_hop() noexcept {
    NetworkStats& s = sink();
    ++s.graft_hops;
    ++s.control_envelopes;
  }
  void note_graft_retry() noexcept { ++sink().graft_retries; }
  void note_graft_abort() noexcept { ++sink().graft_aborts; }
  void note_replica_sync() noexcept {
    NetworkStats& s = sink();
    ++s.replica_sync_envelopes;
    ++s.control_envelopes;
  }
  void note_migration_envelope() noexcept { ++sink().migration_envelopes; }
  void note_heartbeat() noexcept {
    NetworkStats& s = sink();
    ++s.heartbeats;
    ++s.control_envelopes;
  }

  /// Materialises the per-kind map from the dense hot-path counters before
  /// returning — callers see exactly the map they always did.
  [[nodiscard]] const NetworkStats& stats() const;
  void reset_stats() {
    stats_ = NetworkStats{};
    kind_counts_.fill(0);
    high_kind_counts_.clear();
  }

 private:
  /// The stats object the calling thread may mutate: a lane-private delta
  /// during a parallel phase, the base counters otherwise.
  [[nodiscard]] NetworkStats& sink() noexcept {
    if (lane_fn_ != nullptr) {
      const int lane = lane_fn_();
      if (lane >= 0) return lane_deltas_[static_cast<std::size_t>(lane)];
    }
    return stats_;
  }

  void bump(std::vector<std::uint64_t>& counters, NodeId id);

  /// Message kinds are small dense integers (see groups/message_kinds.hpp),
  /// so the per-send kind accounting is an array increment, not a map
  /// lookup; anything past the dense range falls back to the map.
  static constexpr std::size_t kDenseKinds = 64;

  util::Rng rng_;
  LatencyModel latency_ = LatencyModel::constant(0.01);
  LossModel loss_;
  mutable NetworkStats stats_;
  std::array<std::uint64_t, kDenseKinds> kind_counts_{};
  std::map<MessageKind, std::uint64_t> high_kind_counts_;
  LaneFn lane_fn_ = nullptr;
  std::vector<NetworkStats> lane_deltas_;
};

}  // namespace geomcast::sim
