#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

namespace geomcast::sim {

namespace {
/// Compaction floor: below this, lazy corpse-skipping is already cheap and
/// a rebuild would churn tiny queues for nothing.
constexpr std::size_t kMinCompactSize = 64;

constexpr std::uint64_t kNoBucket = std::numeric_limits<std::uint64_t>::max();

/// Smallest k in [0, span) such that ring slot (start_slot + k) % ring_size
/// has its occupancy bit set; kNoBucket when the window is all-empty. The
/// word scan is what lets sparse workloads skip thousands of empty buckets
/// per pop: 64 buckets per load instead of one bucket per loop iteration.
std::uint64_t next_occupied(const std::vector<std::uint64_t>& bits,
                            std::uint64_t start_slot, std::uint64_t span,
                            std::uint64_t ring_size) {
  std::uint64_t pos = start_slot;
  std::uint64_t scanned = 0;
  while (scanned < span) {
    const std::uint64_t bit_off = pos & 63;
    const std::uint64_t in_word =
        std::min<std::uint64_t>(64 - bit_off, span - scanned);
    const std::uint64_t word = bits[pos >> 6] >> bit_off;
    if (word != 0) {
      const auto tz = static_cast<std::uint64_t>(std::countr_zero(word));
      if (tz < in_word) return scanned + tz;
    }
    scanned += in_word;
    pos += in_word;
    if (pos == ring_size) pos = 0;
  }
  return kNoBucket;
}
}  // namespace

void EventQueue::ActionTable::closure_thunk(void* ctx, std::uint64_t /*arg*/) {
  const std::unique_ptr<std::function<void()>> boxed(
      static_cast<std::function<void()>*>(ctx));
  (*boxed)();
}

void EventQueue::ActionTable::trim() {
  std::size_t lead = 0;
  while (lead < slots_.size() && slots_[lead].fn == nullptr) ++lead;
  // Only pay the O(n) erase when it halves the table.
  if (lead >= 4096 && lead >= slots_.size() / 2) {
    slots_.erase(slots_.begin(), slots_.begin() + static_cast<std::ptrdiff_t>(lead));
    base_ += lead;
  }
}

EventQueue::EventQueue(QueueBackend backend) : backend_(backend) {
  if (backend_ == QueueBackend::kWheel) {
    fine_.resize(kFineBuckets);
    coarse_.resize(kCoarseBuckets);
    fine_bits_.assign(kFineBuckets / 64, 0);
    coarse_bits_.assign(kCoarseBuckets / 64, 0);
  }
}

EventId EventQueue::schedule(SimTime when, std::function<void()> action) {
  if (when < last_popped_)
    throw std::invalid_argument("EventQueue::schedule: time is in the past");
  if (!action) throw std::invalid_argument("EventQueue::schedule: empty action");
  const EventId id = ids_.add(std::move(action));
  place(when, /*order=*/id, id);
  return id;
}

EventId EventQueue::schedule(SimTime when, RawFn fn, void* ctx, std::uint64_t arg) {
  if (when < last_popped_)
    throw std::invalid_argument("EventQueue::schedule: time is in the past");
  if (fn == nullptr)
    throw std::invalid_argument("EventQueue::schedule: null callback");
  const EventId id = ids_.add(fn, ctx, arg);
  place(when, /*order=*/id, id);
  return id;
}

EventId EventQueue::schedule_ordered(SimTime when, std::uint64_t order,
                                     std::function<void()> action) {
  if (when < last_popped_)
    throw std::invalid_argument("EventQueue::schedule_ordered: time is in the past");
  if (!action)
    throw std::invalid_argument("EventQueue::schedule_ordered: empty action");
  const EventId id = ids_.add(std::move(action));
  place(when, order, id);
  return id;
}

EventId EventQueue::schedule_ordered(SimTime when, std::uint64_t order, RawFn fn,
                                     void* ctx, std::uint64_t arg) {
  if (when < last_popped_)
    throw std::invalid_argument("EventQueue::schedule_ordered: time is in the past");
  if (fn == nullptr)
    throw std::invalid_argument("EventQueue::schedule_ordered: null callback");
  const EventId id = ids_.add(fn, ctx, arg);
  place(when, order, id);
  return id;
}

EventId EventQueue::register_action(std::function<void()> action) {
  if (!action)
    throw std::invalid_argument("EventQueue::register_action: empty action");
  return ids_.add(std::move(action));
}

EventId EventQueue::register_action(RawFn fn, void* ctx, std::uint64_t arg) {
  if (fn == nullptr)
    throw std::invalid_argument("EventQueue::register_action: null callback");
  return ids_.add(fn, ctx, arg);
}

void EventQueue::place_registered(SimTime when, std::uint64_t order, EventId id) {
  // Cancelled between register and place (e.g. an ack landing in the same
  // window as the retransmit timer it retires): nothing to insert.
  if (!ids_.contains(id)) return;
  if (when < last_popped_)
    throw std::invalid_argument("EventQueue::place_registered: time is in the past");
  place(when, order, id);
}

void EventQueue::place(SimTime when, std::uint64_t order, EventId id) {
  if (backend_ == QueueBackend::kHeap) {
    heap_.push_back(Entry{when, order, id});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  } else {
    wheel_insert(Entry{when, order, id});
  }
}

bool EventQueue::cancel(EventId id) {
  if (!ids_.erase(id)) return false;
  // Cancelled entries linger in their rung until they surface; under
  // ack-heavy traffic (every acked hop cancels its retransmit timer) they
  // would dominate storage and every operation would pay their cost.
  // Compact once they exceed half the stored entries: O(n) now, amortised
  // O(1) per cancel.
  const std::size_t stored = heap_size();
  if (stored >= kMinCompactSize && stored > 2 * ids_.size()) {
    if (backend_ == QueueBackend::kHeap)
      heap_compact();
    else
      wheel_compact();
  }
  return true;
}

void EventQueue::heap_compact() const {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& entry) {
                               return !ids_.contains(entry.id);
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::heap_drop_stale_head() const {
  while (!heap_.empty() && !ids_.contains(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() const {
  if (backend_ == QueueBackend::kHeap) {
    heap_drop_stale_head();
    if (heap_.empty()) throw std::logic_error("EventQueue::next_time: queue is empty");
    return heap_.front().when;
  }
  const Entry* front = wheel_peek();
  if (front == nullptr) throw std::logic_error("EventQueue::next_time: queue is empty");
  return front->when;
}

bool EventQueue::peek_key(SimTime* when, std::uint64_t* order) const {
  if (backend_ == QueueBackend::kHeap) {
    heap_drop_stale_head();
    if (heap_.empty()) return false;
    if (when != nullptr) *when = heap_.front().when;
    if (order != nullptr) *order = heap_.front().order;
    return true;
  }
  const Entry* front = wheel_peek();
  if (front == nullptr) return false;
  if (when != nullptr) *when = front->when;
  if (order != nullptr) *order = front->order;
  return true;
}

bool EventQueue::pop_front(Entry* out) {
  if (backend_ == QueueBackend::kHeap) {
    heap_drop_stale_head();
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    *out = heap_.back();
    heap_.pop_back();
    return true;
  }
  if (wheel_peek() == nullptr) return false;
  *out = wheel_consume_front();
  return true;
}

void EventQueue::dispatch(const Entry& entry, SimTime* now_out) {
  // Copy the slot out before running: the callback may schedule new
  // events, which can reallocate the slot table.
  const ActionTable::Slot slot = ids_.take(entry.id);
  last_popped_ = entry.when;
  if (now_out != nullptr) *now_out = entry.when;
  if ((++pops_ & 0x3FFF) == 0) ids_.trim();
  slot.fn(slot.ctx, slot.arg);
}

bool EventQueue::run_next(SimTime* now_out) {
  Entry entry;
  if (!pop_front(&entry)) return false;
  dispatch(entry, now_out);
  return true;
}

bool EventQueue::run_next_before(SimTime bound, SimTime* now_out,
                                 std::uint64_t* order_out) {
  SimTime when = kTimeZero;
  if (!peek_key(&when, nullptr) || when >= bound) return false;
  Entry entry;
  pop_front(&entry);  // removes the exact entry peek_key surfaced
  if (order_out != nullptr) *order_out = entry.order;
  dispatch(entry, now_out);
  return true;
}

// ---------------------------------------------------------------- wheel ----

void EventQueue::wheel_insert(Entry entry) {
  const std::uint64_t f = fine_index(entry.when);
  const std::uint64_t cascaded = coarse_cursor_ * kFineBuckets;
  if (f < cascaded) {
    // Behind an already-cascaded boundary: rung 0 territory. If it would
    // alias the ring (only reachable by peeking far ahead via next_time()
    // and then scheduling near the old clock), rebuild — cold path.
    if (f + kFineBuckets < cascaded) {
      wheel_rebuild(std::move(entry));
      return;
    }
    wheel_place_fine(std::move(entry));
    return;
  }
  const std::uint64_t c = f / kFineBuckets;
  if (c < coarse_cursor_ + kCoarseBuckets) {
    Bucket& bucket = coarse_[c % kCoarseBuckets];
    bucket.entries.push_back(std::move(entry));
    coarse_bit(c % kCoarseBuckets, true);
    ++coarse_count_;
  } else {
    heap_.push_back(std::move(entry));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
}

void EventQueue::wheel_place_fine(Entry entry) const {
  const std::uint64_t f = fine_index(entry.when);
  Bucket& bucket = fine_[f % kFineBuckets];
  bucket.entries.push_back(std::move(entry));
  fine_bit(f % kFineBuckets, true);
  if (bucket.entries.size() - bucket.pos > 1) bucket.sorted = false;
  ++fine_count_;
  if (f < fine_cursor_) fine_cursor_ = f;
}

EventQueue::Entry* EventQueue::wheel_peek() const {
  for (;;) {
    const std::uint64_t cascaded = coarse_cursor_ * kFineBuckets;
    // Rung 0: the earliest live entry sits in the first non-empty fine
    // bucket at or after the cursor, because buckets partition the time
    // axis monotonically and each bucket is sorted by (when, order) before
    // consumption — exactly the heap's pop order. The occupancy bitmap
    // jumps the cursor straight to that bucket; a skipped bucket stores
    // nothing at all, so skipping it cannot change the pop order.
    while (fine_count_ > 0 && fine_cursor_ < cascaded) {
      const std::uint64_t hop = next_occupied(
          fine_bits_, fine_cursor_ % kFineBuckets,
          std::min<std::uint64_t>(cascaded - fine_cursor_, kFineBuckets),
          kFineBuckets);
      if (hop == kNoBucket) {
        fine_cursor_ = cascaded;
        break;
      }
      fine_cursor_ += hop;
      Bucket& bucket = fine_[fine_cursor_ % kFineBuckets];
      if (!bucket.sorted) {
        std::sort(bucket.entries.begin() + static_cast<std::ptrdiff_t>(bucket.pos),
                  bucket.entries.end(), [](const Entry& a, const Entry& b) {
                    if (a.when != b.when) return a.when < b.when;
                    return a.order < b.order;
                  });
        bucket.sorted = true;
      }
      while (bucket.pos < bucket.entries.size() &&
             !ids_.contains(bucket.entries[bucket.pos].id)) {
        ++bucket.pos;
        --fine_count_;
      }
      if (bucket.pos == bucket.entries.size()) {
        bucket.entries.clear();
        bucket.pos = 0;
        bucket.sorted = true;
        fine_bit(fine_cursor_ % kFineBuckets, false);
        ++fine_cursor_;
        continue;
      }
      return &bucket.entries[bucket.pos];
    }

    // Rung 0 is drained: cascade the earliest coarse range — from rung 1
    // or the overflow heap, whichever comes first — into rung 0.
    while (!heap_.empty() && !ids_.contains(heap_.front().id)) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
    if (coarse_count_ == 0 && heap_.empty()) return nullptr;

    std::uint64_t coarse_next = kNoBucket;
    if (coarse_count_ > 0) {
      const std::uint64_t hop =
          next_occupied(coarse_bits_, coarse_cursor_ % kCoarseBuckets,
                        kCoarseBuckets, kCoarseBuckets);
      coarse_next = coarse_cursor_ + hop;  // hop valid: coarse_count_ > 0
    }
    const std::uint64_t heap_next =
        heap_.empty() ? kNoBucket : fine_index(heap_.front().when) / kFineBuckets;
    const std::uint64_t target = std::min(coarse_next, heap_next);

    if (coarse_next == target) {
      Bucket& bucket = coarse_[target % kCoarseBuckets];
      coarse_count_ -= bucket.entries.size();
      for (Entry& entry : bucket.entries) wheel_place_fine(std::move(entry));
      bucket.entries.clear();
      coarse_bit(target % kCoarseBuckets, false);
    }
    // Overflow entries in the same coarse range form the heap's top prefix
    // (everything earlier was drained by previous cascades).
    while (!heap_.empty() && fine_index(heap_.front().when) / kFineBuckets == target) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      wheel_place_fine(std::move(heap_.back()));
      heap_.pop_back();
    }
    coarse_cursor_ = target + 1;
    fine_cursor_ = target * kFineBuckets;
  }
}

EventQueue::Entry EventQueue::wheel_consume_front() {
  Bucket& bucket = fine_[fine_cursor_ % kFineBuckets];
  Entry entry = std::move(bucket.entries[bucket.pos]);
  ++bucket.pos;
  --fine_count_;
  if (bucket.pos == bucket.entries.size()) {
    bucket.entries.clear();
    bucket.pos = 0;
    bucket.sorted = true;
    fine_bit(fine_cursor_ % kFineBuckets, false);
  }
  return entry;
}

void EventQueue::wheel_rebuild(Entry extra) {
  std::vector<Entry> live;
  live.reserve(ids_.size());
  const auto take = [&](Entry& entry) {
    if (ids_.contains(entry.id)) live.push_back(std::move(entry));
  };
  const auto drain_ring = [&](std::vector<Bucket>& ring) {
    for (Bucket& bucket : ring) {
      for (std::size_t i = bucket.pos; i < bucket.entries.size(); ++i)
        take(bucket.entries[i]);
      bucket.entries.clear();
      bucket.pos = 0;
      bucket.sorted = true;
    }
  };
  drain_ring(fine_);
  drain_ring(coarse_);
  std::fill(fine_bits_.begin(), fine_bits_.end(), 0);
  std::fill(coarse_bits_.begin(), coarse_bits_.end(), 0);
  for (Entry& entry : heap_) take(entry);
  heap_.clear();
  fine_count_ = coarse_count_ = 0;

  // Anchor the wheel at the new earliest entry; everything re-enters
  // through the normal insert path (all at or past the new boundary).
  SimTime lo = extra.when;
  for (const Entry& entry : live) lo = std::min(lo, entry.when);
  coarse_cursor_ = fine_index(lo) / kFineBuckets;
  fine_cursor_ = coarse_cursor_ * kFineBuckets;
  live.push_back(std::move(extra));
  for (Entry& entry : live) wheel_insert(std::move(entry));
}

void EventQueue::wheel_compact() {
  const auto dead = [this](const Entry& entry) { return !ids_.contains(entry.id); };
  const auto sweep_ring = [&](std::vector<Bucket>& ring, std::size_t& count,
                              auto&& clear_bit) {
    for (std::size_t slot = 0; slot < ring.size(); ++slot) {
      Bucket& bucket = ring[slot];
      if (bucket.entries.empty()) continue;
      const std::size_t before = bucket.entries.size() - bucket.pos;
      bucket.entries.erase(
          std::remove_if(bucket.entries.begin() + static_cast<std::ptrdiff_t>(bucket.pos),
                         bucket.entries.end(), dead),
          bucket.entries.end());
      count -= before - (bucket.entries.size() - bucket.pos);
      if (bucket.pos == bucket.entries.size()) {
        bucket.entries.clear();
        bucket.pos = 0;
        bucket.sorted = true;
        clear_bit(slot);
      }
    }
  };
  sweep_ring(fine_, fine_count_, [this](std::size_t slot) { fine_bit(slot, false); });
  sweep_ring(coarse_, coarse_count_,
             [this](std::size_t slot) { coarse_bit(slot, false); });
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead), heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

}  // namespace geomcast::sim
