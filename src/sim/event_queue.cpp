#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace geomcast::sim {

namespace {
/// Compaction floor: below this, lazy head-dropping is already cheap and a
/// rebuild would churn tiny heaps for nothing.
constexpr std::size_t kMinCompactHeap = 64;
}  // namespace

EventId EventQueue::schedule(SimTime when, std::function<void()> action) {
  if (when < last_popped_)
    throw std::invalid_argument("EventQueue::schedule: time is in the past");
  if (!action) throw std::invalid_argument("EventQueue::schedule: empty action");
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, id, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_ids_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (pending_ids_.erase(id) == 0) return false;
  // Cancelled entries linger in the heap until they surface; under
  // ack-heavy traffic (every acked hop cancels its retransmit timer) they
  // would dominate it and every push/pop would pay their log. Compact once
  // they exceed half the heap: O(n) now, amortised O(1) per cancel.
  if (heap_.size() >= kMinCompactHeap && heap_.size() > 2 * pending_ids_.size())
    compact();
  return true;
}

void EventQueue::compact() const {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& entry) {
                               return pending_ids_.count(entry.id) == 0;
                             }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::drop_stale_head() const {
  while (!heap_.empty() && pending_ids_.count(heap_.front().id) == 0) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() const {
  drop_stale_head();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: queue is empty");
  return heap_.front().when;
}

bool EventQueue::run_next() {
  drop_stale_head();
  if (heap_.empty()) return false;
  // Move the entry out before running: the action may schedule new events,
  // which can reallocate the heap's underlying storage.
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  pending_ids_.erase(entry.id);
  last_popped_ = entry.when;
  entry.action();
  return true;
}

}  // namespace geomcast::sim
