#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace geomcast::sim {

EventId EventQueue::schedule(SimTime when, std::function<void()> action) {
  if (when < last_popped_)
    throw std::invalid_argument("EventQueue::schedule: time is in the past");
  if (!action) throw std::invalid_argument("EventQueue::schedule: empty action");
  const EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(action)});
  pending_ids_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) { return pending_ids_.erase(id) > 0; }

void EventQueue::drop_stale_head() const {
  while (!heap_.empty() && pending_ids_.count(heap_.top().id) == 0) heap_.pop();
}

SimTime EventQueue::next_time() const {
  drop_stale_head();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: queue is empty");
  return heap_.top().when;
}

bool EventQueue::run_next() {
  drop_stale_head();
  if (heap_.empty()) return false;
  // Copy the entry out before running: the action may schedule new events,
  // which can reallocate the heap's underlying storage.
  Entry entry = heap_.top();
  heap_.pop();
  pending_ids_.erase(entry.id);
  last_popped_ = entry.when;
  entry.action();
  return true;
}

}  // namespace geomcast::sim
