#include "sim/network.hpp"

#include <optional>

namespace geomcast::sim {

LatencyModel LatencyModel::constant(SimTime delay) {
  LatencyModel model;
  model.lo_ = model.hi_ = delay;
  return model;
}

LatencyModel LatencyModel::uniform(SimTime lo, SimTime hi) {
  LatencyModel model;
  model.lo_ = lo;
  model.hi_ = hi;
  return model;
}

SimTime LatencyModel::sample(util::Rng& rng) const noexcept {
  if (lo_ == hi_) return lo_;
  return rng.uniform(lo_, hi_);
}

void Network::bump(std::vector<std::uint64_t>& counters, NodeId id) {
  if (counters.size() <= id) counters.resize(static_cast<std::size_t>(id) + 1, 0);
  ++counters[id];
}

std::optional<SimTime> Network::admit(const Envelope& envelope) {
  ++stats_.sent;
  if (envelope.kind < kDenseKinds)
    ++kind_counts_[envelope.kind];
  else
    ++high_kind_counts_[envelope.kind];
  bump(stats_.sent_by_node, envelope.from);
  const bool dropped = (loss_.drop_probability > 0.0 && rng_.chance(loss_.drop_probability)) ||
                       (loss_.drop_if && loss_.drop_if(envelope));
  if (dropped) {
    ++stats_.dropped;
    return std::nullopt;
  }
  return latency_.sample(rng_);
}

void Network::note_delivered(const Envelope& envelope) {
  ++stats_.delivered;
  bump(stats_.received_by_node, envelope.to);
}

const NetworkStats& Network::stats() const {
  stats_.sent_by_kind = high_kind_counts_;
  for (MessageKind kind = 0; kind < kDenseKinds; ++kind)
    if (kind_counts_[kind] != 0) stats_.sent_by_kind.emplace(kind, kind_counts_[kind]);
  return stats_;
}

}  // namespace geomcast::sim
