#include "sim/network.hpp"

#include <optional>

namespace geomcast::sim {

LatencyModel LatencyModel::constant(SimTime delay) {
  LatencyModel model;
  model.lo_ = model.hi_ = delay;
  return model;
}

LatencyModel LatencyModel::uniform(SimTime lo, SimTime hi) {
  LatencyModel model;
  model.lo_ = lo;
  model.hi_ = hi;
  return model;
}

SimTime LatencyModel::sample(util::Rng& rng) const noexcept {
  if (lo_ == hi_) return lo_;
  return rng.uniform(lo_, hi_);
}

void Network::bump(std::vector<std::uint64_t>& counters, NodeId id) {
  if (counters.size() <= id) counters.resize(static_cast<std::size_t>(id) + 1, 0);
  ++counters[id];
}

std::optional<SimTime> Network::admit(const Envelope& envelope) {
  ++stats_.sent;
  if (envelope.kind < kDenseKinds)
    ++kind_counts_[envelope.kind];
  else
    ++high_kind_counts_[envelope.kind];
  bump(stats_.sent_by_node, envelope.from);
  const bool dropped = (loss_.drop_probability > 0.0 && rng_.chance(loss_.drop_probability)) ||
                       (loss_.drop_if && loss_.drop_if(envelope));
  if (dropped) {
    ++stats_.dropped;
    return std::nullopt;
  }
  return latency_.sample(rng_);
}

void Network::note_delivered(const Envelope& envelope) {
  NetworkStats& s = sink();
  ++s.delivered;
  bump(s.received_by_node, envelope.to);
}

void Network::configure_lanes(std::size_t lanes, LaneFn fn) {
  lane_deltas_.clear();
  lane_deltas_.resize(lanes);
  lane_fn_ = fn;
}

void Network::collapse_lane_deltas() noexcept {
  for (NetworkStats& d : lane_deltas_) {
    stats_.sent += d.sent;
    stats_.delivered += d.delivered;
    stats_.dropped += d.dropped;
    stats_.retransmitted += d.retransmitted;
    stats_.duplicate_data += d.duplicate_data;
    stats_.abandoned_hops += d.abandoned_hops;
    stats_.nacks += d.nacks;
    stats_.repairs_served += d.repairs_served;
    stats_.batched_waves += d.batched_waves;
    stats_.envelopes_saved += d.envelopes_saved;
    stats_.control_envelopes += d.control_envelopes;
    stats_.graft_hops += d.graft_hops;
    stats_.graft_retries += d.graft_retries;
    stats_.graft_aborts += d.graft_aborts;
    stats_.replica_sync_envelopes += d.replica_sync_envelopes;
    stats_.migration_envelopes += d.migration_envelopes;
    stats_.heartbeats += d.heartbeats;
    for (NodeId id = 0; id < d.received_by_node.size(); ++id)
      if (d.received_by_node[id] != 0) {
        bump(stats_.received_by_node, id);
        stats_.received_by_node[id] += d.received_by_node[id] - 1;
      }
    d = NetworkStats{};
  }
}

const NetworkStats& Network::stats() const {
  stats_.sent_by_kind = high_kind_counts_;
  for (MessageKind kind = 0; kind < kDenseKinds; ++kind)
    if (kind_counts_[kind] != 0) stats_.sent_by_kind.emplace(kind, kind_counts_[kind]);
  return stats_;
}

}  // namespace geomcast::sim
