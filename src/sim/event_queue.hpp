// Deterministic event queue: events fire in (time, order) order, so
// simultaneous events run in a well-defined sequence and every run of a
// seeded simulation is bit-for-bit identical. On the classic single-queue
// path the order IS the insertion sequence (the id); the sharded event
// loop (sim/simulator.hpp) instead supplies a globally-merged order so K
// per-region queues reproduce the one-queue schedule exactly.
//
// Two interchangeable backends produce that exact same order:
//
//  - kHeap: the original compacted binary heap. O(log n) per operation,
//    no assumptions about time distribution. This is the oracle.
//  - kWheel: a hierarchical timer wheel for the short-horizon timers that
//    dominate simulation workloads (per-hop latency, retransmit, gap and
//    batch timers). Rung 0 is a ring of fine buckets (kWheelTick wide),
//    rung 1 a ring of coarse buckets (one rung-0 span wide each), and the
//    compacted binary heap stays on as the long-horizon overflow rung.
//    An insert is O(1) bucket append; pops sort one small bucket at a time
//    by (time, order), which reproduces the heap's global pop order exactly
//    (buckets partition the time axis monotonically). Coarse buckets
//    cascade into rung 0 when the fine cursor crosses their boundary, and
//    overflow entries drain into the wheel the moment the cascade cursor
//    reaches their coarse bucket. Each ring keeps an occupancy bitmap (one
//    bit per bucket, set iff the bucket stores entries), so sparse
//    workloads — a few thousand events spread over a long horizon — skip
//    runs of empty buckets with a word scan instead of visiting each
//    bucket (the 100k-peer sweep shape where the wheel used to trail the
//    heap).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace geomcast::sim {

using EventId = std::uint64_t;

/// Raw scheduled-callback signature: the fast path for high-frequency
/// event producers. The (fn, ctx, arg) triple is stored as-is — no type
/// erasure, no allocation — so `ctx` must outlive the event (or the event
/// must be cancelled first).
using RawFn = void (*)(void* ctx, std::uint64_t arg);

enum class QueueBackend { kHeap, kWheel };

class EventQueue {
 public:
  explicit EventQueue(QueueBackend backend = QueueBackend::kHeap);

  /// Schedules `action` at absolute time `when`; returns a handle usable
  /// with cancel(). `when` must be >= the last popped time (no scheduling
  /// into the past). The tie-break order is the id itself (insertion
  /// sequence) — the classic single-queue behaviour.
  EventId schedule(SimTime when, std::function<void()> action);

  /// Raw-callback overload: identical semantics and pop order, but the
  /// callback is stored as a POD (fn, ctx, arg) triple — the allocation-
  /// and type-erasure-free path for the two producers that dominate event
  /// traffic (envelope delivery, per-hop ack timers).
  EventId schedule(SimTime when, RawFn fn, void* ctx, std::uint64_t arg);

  // -- sharded-loop support -------------------------------------------------
  // The sharded simulator runs one EventQueue per coordinate region and
  // merges their schedules by an explicit global (time, order) key, so the
  // order is supplied by the caller instead of being this queue's local
  // insertion sequence. register_action/place_registered split scheduling
  // in two: a worker thread may register an action in its own queue's
  // table immediately (handle valid at once) while the coordinating thread
  // places the entry later with its canonical order.

  /// Schedules with an explicit tie-break order (same past-time rules).
  EventId schedule_ordered(SimTime when, std::uint64_t order,
                           std::function<void()> action);
  EventId schedule_ordered(SimTime when, std::uint64_t order, RawFn fn, void* ctx,
                           std::uint64_t arg);
  /// Files an action without placing it; pair with place_registered().
  EventId register_action(std::function<void()> action);
  EventId register_action(RawFn fn, void* ctx, std::uint64_t arg);
  /// Places a previously registered (still live) action.
  void place_registered(SimTime when, std::uint64_t order, EventId id);

  /// Cancels a pending event; returns false if it already ran, was already
  /// cancelled, or never existed. Lazy removal: the stored entry stays
  /// until its bucket (or the heap front) is consumed — but once stale
  /// entries outnumber live ones (every acked hop cancels its retransmit
  /// timer, so under reliable traffic most of the queue is corpses), the
  /// storage is compacted in one O(n) pass instead of surfacing each
  /// corpse individually.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return ids_.size(); }
  /// Storage slots currently held, cancelled corpses included — pending()
  /// plus the stale entries compaction has not yet reclaimed (observability
  /// for the compaction tests/bench; always < 2 * pending() + a small floor
  /// after any cancel, by the compaction invariant). Under kWheel this sums
  /// all three rungs.
  [[nodiscard]] std::size_t heap_size() const noexcept {
    return fine_count_ + coarse_count_ + heap_.size();
  }
  /// Time of the earliest pending event; queue must not be empty.
  [[nodiscard]] SimTime next_time() const;
  /// (time, order) of the earliest pending event; false when empty. The
  /// sharded loop's cross-queue merge compares these keys.
  bool peek_key(SimTime* when, std::uint64_t* order) const;
  [[nodiscard]] SimTime last_popped_time() const noexcept { return last_popped_; }
  [[nodiscard]] QueueBackend backend() const noexcept { return backend_; }

  /// Pops and runs the earliest pending event. Returns false if nothing ran
  /// (queue empty). Cancelled entries are skipped transparently. When
  /// `now_out` is non-null the event's time is written there before its
  /// action runs — the driver's clock advances in the same call, saving a
  /// separate next_time() peek per event on the hot loop.
  bool run_next(SimTime* now_out = nullptr);

  /// Like run_next(), but only when the earliest event's time is strictly
  /// below `bound` — the conservative-window worker loop. `order_out`
  /// (optional) receives the event's tie-break order before the action
  /// runs, so the worker can key the event's logged effects canonically.
  bool run_next_before(SimTime bound, SimTime* now_out,
                       std::uint64_t* order_out = nullptr);

  // Wheel geometry, exposed for the unit tests that pin rung-boundary and
  // overflow-drain behaviour.
  static constexpr double kWheelTick = 0.0005;     // rung-0 bucket width (s)
  static constexpr std::size_t kFineBuckets = 2048;    // rung-0 ring size
  static constexpr std::size_t kCoarseBuckets = 4096;  // rung-1 ring size

 private:
  /// What the rungs store and sort: 24 trivially-copyable bytes. The
  /// action lives in the id-indexed slot table instead, so bucket sorts,
  /// heap sift-ups and cascades shuffle PODs — no std::function move (an
  /// indirect _M_manager call) per element hop. `order` is the pop
  /// tie-break at equal times: the id itself on the classic path, the
  /// globally-merged sequence under the sharded loop.
  struct Entry {
    SimTime when;
    std::uint64_t order;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.order > b.order;
    }
  };
  struct Bucket {
    std::vector<Entry> entries;
    std::size_t pos = 0;   // consumed prefix
    bool sorted = true;    // [pos, end) in (when, order) order
  };

  /// Event ids are dense and monotonically increasing, so a flat vector
  /// with a sliding base replaces an unordered_map: no per-event node
  /// allocation on the schedule/cancel hot path. A slot is a raw
  /// (fn, ctx, arg) triple — 24 trivially-copyable bytes — so growth
  /// reallocation and prefix trims are memmoves, a pop is a POD copy, and
  /// invocation is one direct call through the stored pointer.
  /// std::function closures still work: they are boxed on the heap and run
  /// through a self-freeing thunk (cancel frees the box too). A live event
  /// is exactly one whose slot holds a non-null fn.
  class ActionTable {
   public:
    struct Slot {
      RawFn fn = nullptr;
      void* ctx = nullptr;
      std::uint64_t arg = 0;
    };

    ActionTable() = default;
    ActionTable(const ActionTable&) = delete;
    ActionTable& operator=(const ActionTable&) = delete;
    ~ActionTable() {
      for (const Slot& slot : slots_) release_box(slot);
    }

    EventId add(RawFn fn, void* ctx, std::uint64_t arg) {
      slots_.push_back(Slot{fn, ctx, arg});
      ++live_;
      return base_ + slots_.size() - 1;
    }
    EventId add(std::function<void()> action) {
      return add(&closure_thunk, new std::function<void()>(std::move(action)), 0);
    }
    /// Cancel: frees a boxed closure immediately (captures release).
    bool erase(EventId id) noexcept {
      if (id < base_) return false;
      const std::size_t off = id - base_;
      if (off >= slots_.size() || slots_[off].fn == nullptr) return false;
      release_box(slots_[off]);
      slots_[off].fn = nullptr;
      --live_;
      return true;
    }
    /// Pop: copies the slot out for invocation (the table may grow while
    /// the callback runs; a boxed closure frees itself after running).
    /// Caller guarantees the id is live.
    [[nodiscard]] Slot take(EventId id) noexcept {
      const Slot slot = slots_[id - base_];
      slots_[id - base_].fn = nullptr;
      --live_;
      return slot;
    }
    [[nodiscard]] bool contains(EventId id) const noexcept {
      return id >= base_ && id - base_ < slots_.size() &&
             slots_[id - base_].fn != nullptr;
    }
    [[nodiscard]] std::size_t size() const noexcept { return live_; }
    [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
    /// Drops a large fully-dead prefix; amortised O(1) per event.
    void trim();

   private:
    static void closure_thunk(void* ctx, std::uint64_t arg);
    static void release_box(const Slot& slot) noexcept {
      if (slot.fn == &closure_thunk)
        delete static_cast<std::function<void()>*>(slot.ctx);
    }

    std::vector<Slot> slots_;
    EventId base_ = 1;
    std::size_t live_ = 0;
  };

  [[nodiscard]] static std::uint64_t fine_index(SimTime when) noexcept {
    return static_cast<std::uint64_t>(when / kWheelTick);
  }

  /// Shared tail of the schedule() overloads: files the entry with the
  /// active backend.
  void place(SimTime when, std::uint64_t order, EventId id);
  /// Pops the earliest pending entry; false when empty (stale entries
  /// skipped). Does not run it.
  bool pop_front(Entry* out);
  void dispatch(const Entry& entry, SimTime* now_out);

  // --- heap backend ---
  void heap_drop_stale_head() const;
  void heap_compact() const;

  // --- wheel backend ---
  void wheel_insert(Entry entry);
  void wheel_place_fine(Entry entry) const;
  /// Locates the earliest live entry, advancing cursors / cascading /
  /// draining overflow as needed; nullptr when nothing is live. The entry
  /// stays stored; wheel_consume_front() removes it.
  [[nodiscard]] Entry* wheel_peek() const;
  Entry wheel_consume_front();
  /// Tears the whole wheel down and re-inserts every live entry — the cold
  /// path for a schedule that lands behind an already-cascaded boundary
  /// (only reachable by peeking far ahead with next_time() and then
  /// scheduling near the old clock).
  void wheel_rebuild(Entry extra);
  void wheel_compact();

  // Ring-occupancy bitmaps: bit set iff the bucket stores entries (dead
  // ones included — they still need visiting to be reclaimed). Lets peek
  // jump over empty-bucket runs with a word scan; maintained at the three
  // places a bucket can empty (drain, consume, compact) plus rebuild.
  void fine_bit(std::uint64_t slot, bool set) const noexcept {
    if (set)
      fine_bits_[slot >> 6] |= 1ULL << (slot & 63);
    else
      fine_bits_[slot >> 6] &= ~(1ULL << (slot & 63));
  }
  void coarse_bit(std::uint64_t slot, bool set) const noexcept {
    if (set)
      coarse_bits_[slot >> 6] |= 1ULL << (slot & 63);
    else
      coarse_bits_[slot >> 6] &= ~(1ULL << (slot & 63));
  }

  QueueBackend backend_;
  ActionTable ids_;
  SimTime last_popped_ = kTimeZero;
  std::uint64_t pops_ = 0;

  // Heap backend storage (also the wheel's overflow rung); min-heap per
  // Later via std::*_heap.
  mutable std::vector<Entry> heap_;

  // Wheel state. Buckets are addressed by absolute index (floor(when /
  // width)) modulo ring size; `fine_cursor_` scans rung 0, and every
  // absolute fine index below `cascaded_` lives in rung 0. `coarse_cursor_`
  // is the next coarse bucket to cascade (cascaded_ == coarse_cursor_ *
  // kFineBuckets). peek() must advance this state from const accessors
  // (next_time()), hence mutable — identical in spirit to the heap's lazy
  // stale-head dropping.
  mutable std::vector<Bucket> fine_;
  mutable std::vector<Bucket> coarse_;
  mutable std::vector<std::uint64_t> fine_bits_;
  mutable std::vector<std::uint64_t> coarse_bits_;
  mutable std::uint64_t fine_cursor_ = 0;
  mutable std::uint64_t coarse_cursor_ = 0;
  mutable std::size_t fine_count_ = 0;    // entries stored in rung 0
  mutable std::size_t coarse_count_ = 0;  // entries stored in rung 1
};

}  // namespace geomcast::sim
