// Deterministic event queue: events fire in (time, insertion-sequence)
// order, so simultaneous events run in the order they were scheduled and
// every run of a seeded simulation is bit-for-bit identical.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace geomcast::sim {

using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `action` at absolute time `when`; returns a handle usable
  /// with cancel(). `when` must be >= the last popped time (no scheduling
  /// into the past).
  EventId schedule(SimTime when, std::function<void()> action);

  /// Cancels a pending event; returns false if it already ran, was already
  /// cancelled, or never existed. Lazy removal: the heap entry stays until
  /// it reaches the front — but once stale entries outnumber live ones
  /// (every acked hop cancels its retransmit timer, so under reliable
  /// traffic most of the heap is corpses), the heap is compacted in one
  /// O(n) pass instead of surfacing each corpse through O(log n) pops.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return pending_ids_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return pending_ids_.size(); }
  /// Heap slots currently held, cancelled corpses included — pending() plus
  /// the stale entries compaction has not yet reclaimed (observability for
  /// the compaction tests/bench; always < 2 * pending() + a small floor
  /// after any cancel, by the compaction invariant).
  [[nodiscard]] std::size_t heap_size() const noexcept { return heap_.size(); }
  /// Time of the earliest pending event; queue must not be empty.
  [[nodiscard]] SimTime next_time() const;
  [[nodiscard]] SimTime last_popped_time() const noexcept { return last_popped_; }

  /// Pops and runs the earliest pending event. Returns false if nothing ran
  /// (queue empty). Cancelled entries are skipped transparently.
  bool run_next();

 private:
  struct Entry {
    SimTime when;
    EventId id;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  /// Removes heap entries whose id is no longer pending (cancelled).
  void drop_stale_head() const;
  /// One-pass removal of every stale entry, re-establishing the heap
  /// property; called when corpses exceed half the heap.
  void compact() const;

  mutable std::vector<Entry> heap_;  // min-heap per Later (std::*_heap)
  std::unordered_set<EventId> pending_ids_;
  EventId next_id_ = 1;
  SimTime last_popped_ = kTimeZero;
};

}  // namespace geomcast::sim
