// Reliable data dissemination over a constructed multicast tree — the
// payload phase the tree exists for. After §2 builds the tree, the
// initiator pushes data down it; every peer forwards to its tree children.
//
// Links may drop messages, so the protocol is made reliable the standard
// way: each hop is acknowledged, and the sender retransmits after a timeout
// until the ack arrives or a retry budget is exhausted. Receivers detect
// duplicates by sequence number (a retransmission whose original made it
// through) — duplicates are re-acked but not re-forwarded. The
// ack/timeout/retransmit cycle itself lives in the shared per-hop
// reliability layer (multicast/reliable_hop.hpp); this runner is a thin
// client that adds tree forwarding and delivery bookkeeping.
//
// Everything runs on the discrete-event simulator; the result reports
// delivery coverage, per-peer delivery times, message/retransmission
// counts, and the residual loss when the retry budget is too small.
#pragma once

#include <cstdint>
#include <vector>

#include "multicast/tree.hpp"
#include "sim/network.hpp"

namespace geomcast::multicast {

inline constexpr sim::MessageKind kDataKind = 11;
inline constexpr sim::MessageKind kAckKind = 12;

struct DisseminationConfig {
  /// Time a sender waits for an ack before retransmitting.
  double ack_timeout = 0.25;
  /// Retransmissions allowed per (sender, child) hop; 0 = single try
  /// (still acked, and a missing ack still counts as an abandoned hop —
  /// for a true no-ack push see reliable_hop.hpp's QoS::kFireAndForget).
  std::size_t max_retries = 5;
};

struct DisseminationResult {
  std::size_t delivered = 0;        // peers holding the payload at the end
  std::uint64_t data_messages = 0;  // includes retransmissions
  std::uint64_t ack_messages = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t duplicate_data = 0;  // retransmission arrived after original
  /// Hops whose retry budget ran out (delivery failed along that edge).
  std::uint64_t abandoned_hops = 0;
  double completion_time = 0.0;
  /// Per-peer first-delivery time; negative for peers never reached.
  std::vector<double> delivery_time;

  [[nodiscard]] bool all_delivered(std::size_t peer_count) const noexcept {
    return delivered == peer_count;
  }
};

/// Pushes one payload down `tree` from its root with the given link
/// latency/loss models. The tree must span the peers to be delivered
/// (unreached tree peers are simply never addressed).
[[nodiscard]] DisseminationResult run_dissemination(
    const MulticastTree& tree, const DisseminationConfig& config = {},
    sim::LatencyModel latency = sim::LatencyModel::constant(0.01),
    sim::LossModel loss = {}, std::uint64_t seed = 1);

}  // namespace geomcast::multicast
