#include "multicast/dissemination.hpp"

#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace geomcast::multicast {

namespace {

struct DataMsg {
  std::uint64_t seq = 0;
};
struct AckMsg {
  std::uint64_t seq = 0;
};

class DisseminationNode final : public sim::Node {
 public:
  DisseminationNode(PeerId id, const MulticastTree& tree,
                    const DisseminationConfig& config, DisseminationResult& shared)
      : sim::Node(id), tree_(tree), config_(config), shared_(shared) {}

  void on_message(sim::Simulator& sim, const sim::Envelope& envelope) override {
    switch (envelope.kind) {
      case kDataKind:
        handle_data(sim, envelope.from, std::any_cast<const DataMsg&>(envelope.payload));
        break;
      case kAckKind:
        handle_ack(sim, std::any_cast<const AckMsg&>(envelope.payload));
        break;
      default:
        throw std::logic_error("DisseminationNode: unexpected message kind");
    }
  }

  /// Kicks off delivery at the root (no network hop for the root's copy).
  void deliver_locally(sim::Simulator& sim) {
    if (has_payload_) return;
    has_payload_ = true;
    ++shared_.delivered;
    shared_.delivery_time[id()] = sim.now();
    shared_.completion_time = sim.now();
    forward_to_children(sim);
  }

 private:
  void handle_data(sim::Simulator& sim, PeerId from, const DataMsg& msg) {
    // Always (re-)ack: the previous ack may have been the lost message.
    sim.send(id(), from, kAckKind, AckMsg{msg.seq});
    ++shared_.ack_messages;
    if (has_payload_) {
      ++shared_.duplicate_data;
      return;
    }
    deliver_locally(sim);
  }

  void forward_to_children(sim::Simulator& sim) {
    for (PeerId child : tree_.children(id())) send_hop(sim, child, /*attempt=*/0);
  }

  void send_hop(sim::Simulator& sim, PeerId child, std::size_t attempt) {
    const std::uint64_t seq = (static_cast<std::uint64_t>(id()) << 32) | child;
    sim.send(id(), child, kDataKind, DataMsg{seq});
    ++shared_.data_messages;
    if (attempt > 0) ++shared_.retransmissions;
    // Arm the retransmission timer; the ack handler cancels it.
    pending_[child] = sim.schedule_after(config_.ack_timeout, [this, &sim, child, attempt]() {
      pending_.erase(child);
      if (attempt < config_.max_retries) {
        send_hop(sim, child, attempt + 1);
      } else {
        ++shared_.abandoned_hops;
      }
    });
  }

  void handle_ack(sim::Simulator& sim, const AckMsg& msg) {
    const auto child = static_cast<PeerId>(msg.seq & 0xffffffffu);
    const auto it = pending_.find(child);
    if (it == pending_.end()) return;  // late ack after a retransmission cycle
    sim.cancel(it->second);
    pending_.erase(it);
  }

  const MulticastTree& tree_;
  const DisseminationConfig& config_;
  DisseminationResult& shared_;
  std::unordered_map<PeerId, sim::EventId> pending_;
  bool has_payload_ = false;
};

}  // namespace

DisseminationResult run_dissemination(const MulticastTree& tree,
                                      const DisseminationConfig& config,
                                      sim::LatencyModel latency, sim::LossModel loss,
                                      std::uint64_t seed) {
  const std::size_t n = tree.peer_count();
  if (n == 0 || tree.root() == kInvalidPeer)
    throw std::invalid_argument("run_dissemination: tree has no root");

  DisseminationResult result;
  result.delivery_time.assign(n, -1.0);

  sim::Simulator sim(seed);
  sim.network().set_latency(latency);
  sim.network().set_loss(std::move(loss));

  std::vector<std::unique_ptr<DisseminationNode>> nodes;
  nodes.reserve(n);
  for (PeerId p = 0; p < n; ++p) {
    nodes.push_back(std::make_unique<DisseminationNode>(p, tree, config, result));
    sim.add_node(*nodes[p]);
  }
  sim.schedule_at(0.0, [&]() { nodes[tree.root()]->deliver_locally(sim); });
  sim.run_until_idle();
  return result;
}

}  // namespace geomcast::multicast
