#include "multicast/dissemination.hpp"

#include <memory>
#include <stdexcept>

#include "multicast/reliable_hop.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace geomcast::multicast {

namespace {

struct DataMsg {
  std::uint64_t seq = 0;
};

/// Thin client of the shared per-hop reliability layer: the layer owns the
/// ack/timeout/retransmit cycle, the node owns what dissemination adds —
/// the "payload held" dedup bit, delivery bookkeeping, and forwarding down
/// the tree.
class DisseminationNode final : public sim::Node {
 public:
  DisseminationNode(PeerId id, const MulticastTree& tree, ReliableHopLayer& hop,
                    DisseminationResult& shared)
      : sim::Node(id), tree_(tree), hop_(hop), shared_(shared) {}

  void on_message(sim::Simulator& sim, const sim::Envelope& envelope) override {
    switch (envelope.kind) {
      case kDataKind:
        handle_data(sim, envelope.from, std::any_cast<const DataMsg&>(envelope.payload));
        break;
      case kAckKind:
        hop_.on_ack(envelope);
        break;
      default:
        throw std::logic_error("DisseminationNode: unexpected message kind");
    }
  }

  /// Kicks off delivery at the root (no network hop for the root's copy).
  void deliver_locally(sim::Simulator& sim) {
    if (has_payload_) return;
    has_payload_ = true;
    ++shared_.delivered;
    shared_.delivery_time[id()] = sim.now();
    shared_.completion_time = sim.now();
    forward_to_children();
  }

 private:
  void handle_data(sim::Simulator& sim, PeerId from, const DataMsg& msg) {
    // Always (re-)ack: the previous ack may have been the lost message.
    hop_.acknowledge(id(), from, msg.seq);
    if (has_payload_) {
      ++shared_.duplicate_data;
      sim.network().note_duplicate();
      return;
    }
    deliver_locally(sim);
  }

  void forward_to_children() {
    for (PeerId child : tree_.children(id())) {
      // One transfer per tree edge, so the edge itself is the sequence.
      const std::uint64_t seq = (static_cast<std::uint64_t>(id()) << 32) | child;
      hop_.send(id(), child, seq, DataMsg{seq});
    }
  }

  const MulticastTree& tree_;
  ReliableHopLayer& hop_;
  DisseminationResult& shared_;
  bool has_payload_ = false;
};

}  // namespace

DisseminationResult run_dissemination(const MulticastTree& tree,
                                      const DisseminationConfig& config,
                                      sim::LatencyModel latency, sim::LossModel loss,
                                      std::uint64_t seed) {
  const std::size_t n = tree.peer_count();
  if (n == 0 || tree.root() == kInvalidPeer)
    throw std::invalid_argument("run_dissemination: tree has no root");

  DisseminationResult result;
  result.delivery_time.assign(n, -1.0);

  sim::Simulator sim(seed);
  sim.network().set_latency(latency);
  sim.network().set_loss(std::move(loss));

  ReliableHopLayer hop(sim, kDataKind, kAckKind,
                       ReliabilityConfig{QoS::kAcked, config.ack_timeout,
                                         config.max_retries});

  std::vector<std::unique_ptr<DisseminationNode>> nodes;
  nodes.reserve(n);
  for (PeerId p = 0; p < n; ++p) {
    nodes.push_back(std::make_unique<DisseminationNode>(p, tree, hop, result));
    sim.add_node(*nodes[p]);
  }
  sim.schedule_at(0.0, [&]() { nodes[tree.root()]->deliver_locally(sim); });
  sim.run_until_idle();

  const HopStats& hops = hop.stats();
  result.data_messages = hops.data_messages;
  result.ack_messages = hops.ack_messages;
  result.retransmissions = hops.retransmissions;
  result.abandoned_hops = hops.abandoned_hops;
  return result;
}

}  // namespace geomcast::multicast
