// Responsibility zones (paper §2). Z(P) is the open axis-aligned
// hyper-rectangle of the coordinate space that P must deliver the multicast
// data to, directly or indirectly. The initiator's zone is the whole space;
// a child selected in some orthant region of P receives Z(P) clipped to
// that orthant's open half-space product.
#pragma once

#include "geometry/orthant.hpp"
#include "geometry/point.hpp"
#include "geometry/rect.hpp"

namespace geomcast::multicast {

/// Zone of the multicast initiator: the entire virtual coordinate space.
[[nodiscard]] inline geometry::Rect initiator_zone(std::size_t dims) {
  return geometry::Rect::whole_space(dims);
}

/// Z(Q) = Z(P) ∩ HR, where HR's side in dimension i is (-inf, x(P,i)) if
/// x(Q,i) < x(P,i), else (x(P,i), +inf) — exactly the paper's rule. The
/// orthant code must be `orthant_of(ego, q)` for the chosen child q.
[[nodiscard]] geometry::Rect child_zone(const geometry::Rect& parent_zone,
                                        const geometry::Point& ego,
                                        geometry::OrthantCode orthant);

}  // namespace geomcast::multicast
