// Message-driven execution of the space-partitioning construction on the
// discrete-event simulator: real BuildRequest messages with latency and
// optional loss. Used to (a) demonstrate the algorithm end-to-end as a
// protocol, (b) test equivalence with the synchronous builder, and (c)
// measure behaviour under failure injection.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "multicast/space_partition.hpp"
#include "overlay/graph.hpp"
#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace geomcast::multicast {

/// Message kind for tree-construction requests (distinct from the gossip
/// kinds in overlay/gossip.hpp).
inline constexpr sim::MessageKind kBuildRequestKind = 10;

/// Payload of a construction request: the responsibility zone delegated to
/// the receiver. (A real deployment would add a session id and the data
/// channel; neither affects tree shape or message counts.)
struct BuildRequest {
  geometry::Rect zone;
  overlay::PeerId root = overlay::kInvalidPeer;
};

struct ProtocolRunResult {
  BuildResult build;
  /// Wall-clock of the construction wave in simulated seconds (time of the
  /// last delivered request).
  double completion_time = 0.0;
  /// Requests dropped by the loss model (coverage holes under failure).
  std::uint64_t dropped_requests = 0;
};

/// Runs the construction rooted at `root` over `graph` with the given
/// latency/loss models. Each peer acts only on local state, mirroring
/// partition_step.
[[nodiscard]] ProtocolRunResult run_multicast_protocol(
    const overlay::OverlayGraph& graph, overlay::PeerId root,
    const MulticastConfig& config = {}, sim::LatencyModel latency = sim::LatencyModel::constant(0.01),
    sim::LossModel loss = {}, std::uint64_t seed = 1);

}  // namespace geomcast::multicast
