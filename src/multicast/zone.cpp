#include "multicast/zone.hpp"

namespace geomcast::multicast {

geometry::Rect child_zone(const geometry::Rect& parent_zone, const geometry::Point& ego,
                          geometry::OrthantCode orthant) {
  return parent_zone.intersect(geometry::orthant_rect(ego, orthant));
}

}  // namespace geomcast::multicast
