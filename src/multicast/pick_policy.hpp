// Which neighbour of a region becomes the delegate for that region's slice
// of the responsibility zone. The paper picks the MEDIAN-distance peer; the
// alternatives exist for the ablation bench (bench/ablation_pick_policy).
#pragma once

#include <string>

namespace geomcast::multicast {

enum class PickPolicy {
  kMedian,    // paper §2: median L1 distance within the region
  kClosest,   // nearest neighbour of the region
  kFarthest,  // farthest neighbour of the region
  kRandom,    // uniform over the region's neighbours
};

[[nodiscard]] std::string to_string(PickPolicy policy);
/// Parses "median" / "closest" / "farthest" / "random"; throws
/// std::invalid_argument otherwise.
[[nodiscard]] PickPolicy pick_policy_from_string(const std::string& name);

}  // namespace geomcast::multicast
