#include "multicast/reliable_hop.hpp"

#include <stdexcept>
#include <utility>

namespace geomcast::multicast {

ReliableHopLayer::ReliableHopLayer(sim::Simulator& sim, sim::MessageKind data_kind,
                                   sim::MessageKind ack_kind, ReliabilityConfig config,
                                   Hooks hooks)
    : sim_(sim),
      data_kind_(data_kind),
      ack_kind_(ack_kind),
      config_(config),
      hooks_(std::move(hooks)) {}

void ReliableHopLayer::send(sim::NodeId from, sim::NodeId to, std::uint64_t seq,
                            std::any payload, sim::MessageKind kind) {
  const sim::MessageKind wire_kind = kind == kInvalidKind ? data_kind_ : kind;
  if (config_.qos == QoS::kFireAndForget) {
    if (trace_.on_transmit) trace_.on_transmit(from, to, seq, /*attempt=*/0, payload);
    sim_.send(from, to, wire_kind, std::move(payload));
    ++stats_.data_messages;
    return;
  }
  const Key key{from, to, seq};
  const auto [it, inserted] = pending_.try_emplace(key);
  if (!inserted)
    throw std::logic_error("ReliableHopLayer::send: seq already pending on this hop");
  it->second.payload = std::move(payload);
  it->second.kind = kind;
  ++pending_by_receiver_[to];
  transmit(key, /*attempt=*/0);
}

void ReliableHopLayer::retire(std::map<Key, Pending>::iterator it) {
  const auto receiver = pending_by_receiver_.find(std::get<1>(it->first));
  if (--receiver->second == 0) pending_by_receiver_.erase(receiver);
  pending_.erase(it);
}

void ReliableHopLayer::transmit(const Key& key, std::size_t attempt) {
  const auto& [from, to, seq] = key;
  Pending& entry = pending_.at(key);
  sim_.send(from, to, entry.kind == kInvalidKind ? data_kind_ : entry.kind,
            entry.payload);
  ++stats_.data_messages;
  if (attempt > 0) {
    ++stats_.retransmissions;
    sim_.network().note_retransmission();
    if (hooks_.on_retransmit) hooks_.on_retransmit(from, to, seq, entry.payload);
  }
  if (trace_.on_transmit) trace_.on_transmit(from, to, seq, attempt, entry.payload);
  entry.attempt = attempt;
  // Arm the retransmission timer; on_ack cancels it.
  entry.timer =
      sim_.schedule_after(config_.ack_timeout, [this, key]() { on_timeout(key); });
}

void ReliableHopLayer::on_timeout(const Key& key) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;
  const auto& [from, to, seq] = key;
  if (hooks_.sender_alive && !hooks_.sender_alive(from)) {
    retire(it);
    return;
  }
  if (it->second.attempt < config_.max_retries) {
    transmit(key, it->second.attempt + 1);
    return;
  }
  ++stats_.abandoned_hops;
  sim_.network().note_abandoned();
  if (hooks_.on_abandon) hooks_.on_abandon(from, to, seq, it->second.payload);
  retire(it);
}

void ReliableHopLayer::acknowledge(sim::NodeId self, sim::NodeId sender,
                                   std::uint64_t seq) {
  if (config_.qos == QoS::kFireAndForget) return;
  sim_.send(self, sender, ack_kind_, HopAck{seq});
  ++stats_.ack_messages;
  if (trace_.on_ack_sent) trace_.on_ack_sent(self, sender, seq);
}

std::size_t ReliableHopLayer::pending_to(sim::NodeId to) const noexcept {
  const auto it = pending_by_receiver_.find(to);
  return it == pending_by_receiver_.end() ? 0 : it->second;
}

void ReliableHopLayer::on_ack(const sim::Envelope& envelope) {
  const auto& ack = std::any_cast<const HopAck&>(envelope.payload);
  // The acker is the hop's receiver, the addressee its sender.
  const auto it = pending_.find(Key{envelope.to, envelope.from, ack.seq});
  if (it == pending_.end()) return;  // late ack: hop already retired
  sim_.cancel(it->second.timer);
  retire(it);
}

}  // namespace geomcast::multicast
