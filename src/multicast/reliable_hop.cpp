#include "multicast/reliable_hop.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace geomcast::multicast {

ReliableHopLayer::ReliableHopLayer(sim::Simulator& sim, sim::MessageKind data_kind,
                                   sim::MessageKind ack_kind, ReliabilityConfig config,
                                   Hooks hooks)
    : sim_(sim),
      data_kind_(data_kind),
      ack_kind_(ack_kind),
      config_(config),
      hooks_(std::move(hooks)),
      lanes_(1) {}

void ReliableHopLayer::configure_lanes(std::vector<std::uint32_t> node_lane) {
  if (pending() != 0)
    throw std::logic_error("ReliableHopLayer::configure_lanes: hops already pending");
  std::uint32_t max_lane = 0;
  for (const std::uint32_t lane : node_lane) max_lane = std::max(max_lane, lane);
  lanes_ = std::vector<LaneTable>(static_cast<std::size_t>(max_lane) + 1);
  node_lane_ = std::move(node_lane);
}

void ReliableHopLayer::send(sim::NodeId from, sim::NodeId to, std::uint64_t seq,
                            std::any payload, sim::MessageKind kind) {
  LaneTable& lane = lane_of(from);
  const sim::MessageKind wire_kind = kind == kInvalidKind ? data_kind_ : kind;
  if (config_.qos == QoS::kFireAndForget) {
    if (trace_.on_transmit) trace_.on_transmit(from, to, seq, /*attempt=*/0, payload);
    sim_.send(from, to, wire_kind, std::move(payload));
    ++lane.stats.data_messages;
    return;
  }
  const Key key{from, to, seq};
  const auto [it, inserted] = lane.pending.try_emplace(key);
  if (!inserted)
    throw std::logic_error("ReliableHopLayer::send: seq already pending on this hop");
  it->second.key = key;
  it->second.payload = std::move(payload);
  it->second.kind = kind;
  if (lane.pending_by_receiver.size() <= to)
    lane.pending_by_receiver.resize(static_cast<std::size_t>(to) + 1, 0);
  ++lane.pending_by_receiver[to];
  transmit(it->second, /*attempt=*/0);
}

void ReliableHopLayer::retire(Key key) {
  LaneTable& lane = lane_of(key.from);
  --lane.pending_by_receiver[key.to];
  lane.pending.erase(key);
}

void ReliableHopLayer::transmit(Pending& entry, std::size_t attempt) {
  const auto [from, to, seq] = entry.key;
  sim_.send(from, to, entry.kind == kInvalidKind ? data_kind_ : entry.kind,
            entry.payload);
  ++lane_of(from).stats.data_messages;
  if (attempt > 0) {
    ++lane_of(from).stats.retransmissions;
    sim_.network().note_retransmission();
    if (hooks_.on_retransmit) hooks_.on_retransmit(from, to, seq, entry.payload);
  }
  if (trace_.on_transmit) trace_.on_transmit(from, to, seq, attempt, entry.payload);
  entry.attempt = attempt;
  // Arm the retransmission timer; on_ack cancels it. The node pointer is
  // stable and outlives any timer that can still fire (see Pending), so
  // the event is a raw (thunk, this, node*) triple — the queue's
  // allocation-free fast path. Under the sharded loop the timer lands in
  // the sender's own lane (transmit always runs in node_lane[from]'s
  // context), keeping the whole cycle lane-local.
  entry.timer = sim_.schedule_after(
      config_.ack_timeout, &ReliableHopLayer::timeout_thunk, this,
      reinterpret_cast<std::uint64_t>(&entry));
}

void ReliableHopLayer::timeout_thunk(void* ctx, std::uint64_t arg) {
  static_cast<ReliableHopLayer*>(ctx)->on_timeout(
      *reinterpret_cast<Pending*>(arg));
}

void ReliableHopLayer::on_timeout(Pending& entry) {
  const auto [from, to, seq] = entry.key;
  if (hooks_.sender_alive && !hooks_.sender_alive(from)) {
    retire(entry.key);
    return;
  }
  if (entry.attempt < config_.max_retries) {
    transmit(entry, entry.attempt + 1);
    return;
  }
  ++lane_of(from).stats.abandoned_hops;
  sim_.network().note_abandoned();
  if (hooks_.on_abandon) hooks_.on_abandon(from, to, seq, entry.payload);
  retire(entry.key);
}

void ReliableHopLayer::acknowledge(sim::NodeId self, sim::NodeId sender,
                                   std::uint64_t seq) {
  if (config_.qos == QoS::kFireAndForget) return;
  sim_.send(self, sender, ack_kind_, HopAck{seq});
  // Charged to the acker's own lane: acknowledge runs in the receiver's
  // execution context.
  ++lane_of(self).stats.ack_messages;
  if (trace_.on_ack_sent) trace_.on_ack_sent(self, sender, seq);
}

const HopStats& ReliableHopLayer::stats() const noexcept {
  total_stats_ = HopStats{};
  for (const LaneTable& lane : lanes_) {
    total_stats_.data_messages += lane.stats.data_messages;
    total_stats_.ack_messages += lane.stats.ack_messages;
    total_stats_.retransmissions += lane.stats.retransmissions;
    total_stats_.abandoned_hops += lane.stats.abandoned_hops;
  }
  return total_stats_;
}

std::size_t ReliableHopLayer::pending_to(sim::NodeId to) const noexcept {
  std::size_t total = 0;
  for (const LaneTable& lane : lanes_)
    if (to < lane.pending_by_receiver.size()) total += lane.pending_by_receiver[to];
  return total;
}

void ReliableHopLayer::on_ack(const sim::Envelope& envelope) {
  // The acker is the hop's receiver, the addressee its sender.
  const auto& ack = std::any_cast<const HopAck&>(envelope.payload);
  LaneTable& lane = lane_of(envelope.to);
  const auto it = lane.pending.find(Key{envelope.to, envelope.from, ack.seq});
  if (it == lane.pending.end()) return;  // late ack: hop already retired
  sim_.cancel(it->second.timer);
  retire(it->first);
}

}  // namespace geomcast::multicast
