#include "multicast/reliable_hop.hpp"

#include <stdexcept>
#include <utility>

namespace geomcast::multicast {

ReliableHopLayer::ReliableHopLayer(sim::Simulator& sim, sim::MessageKind data_kind,
                                   sim::MessageKind ack_kind, ReliabilityConfig config,
                                   Hooks hooks)
    : sim_(sim),
      data_kind_(data_kind),
      ack_kind_(ack_kind),
      config_(config),
      hooks_(std::move(hooks)) {}

void ReliableHopLayer::send(sim::NodeId from, sim::NodeId to, std::uint64_t seq,
                            std::any payload, sim::MessageKind kind) {
  const sim::MessageKind wire_kind = kind == kInvalidKind ? data_kind_ : kind;
  if (config_.qos == QoS::kFireAndForget) {
    if (trace_.on_transmit) trace_.on_transmit(from, to, seq, /*attempt=*/0, payload);
    sim_.send(from, to, wire_kind, std::move(payload));
    ++stats_.data_messages;
    return;
  }
  const Key key{from, to, seq};
  const auto [it, inserted] = pending_.try_emplace(key);
  if (!inserted)
    throw std::logic_error("ReliableHopLayer::send: seq already pending on this hop");
  it->second.key = key;
  it->second.payload = std::move(payload);
  it->second.kind = kind;
  if (pending_by_receiver_.size() <= to)
    pending_by_receiver_.resize(static_cast<std::size_t>(to) + 1, 0);
  ++pending_by_receiver_[to];
  transmit(it->second, /*attempt=*/0);
}

void ReliableHopLayer::retire(Key key) {
  --pending_by_receiver_[key.to];
  pending_.erase(key);
}

void ReliableHopLayer::transmit(Pending& entry, std::size_t attempt) {
  const auto [from, to, seq] = entry.key;
  sim_.send(from, to, entry.kind == kInvalidKind ? data_kind_ : entry.kind,
            entry.payload);
  ++stats_.data_messages;
  if (attempt > 0) {
    ++stats_.retransmissions;
    sim_.network().note_retransmission();
    if (hooks_.on_retransmit) hooks_.on_retransmit(from, to, seq, entry.payload);
  }
  if (trace_.on_transmit) trace_.on_transmit(from, to, seq, attempt, entry.payload);
  entry.attempt = attempt;
  // Arm the retransmission timer; on_ack cancels it. The node pointer is
  // stable and outlives any timer that can still fire (see Pending), so
  // the event is a raw (thunk, this, node*) triple — the queue's
  // allocation-free fast path.
  entry.timer = sim_.schedule_after(
      config_.ack_timeout, &ReliableHopLayer::timeout_thunk, this,
      reinterpret_cast<std::uint64_t>(&entry));
}

void ReliableHopLayer::timeout_thunk(void* ctx, std::uint64_t arg) {
  static_cast<ReliableHopLayer*>(ctx)->on_timeout(
      *reinterpret_cast<Pending*>(arg));
}

void ReliableHopLayer::on_timeout(Pending& entry) {
  const auto [from, to, seq] = entry.key;
  if (hooks_.sender_alive && !hooks_.sender_alive(from)) {
    retire(entry.key);
    return;
  }
  if (entry.attempt < config_.max_retries) {
    transmit(entry, entry.attempt + 1);
    return;
  }
  ++stats_.abandoned_hops;
  sim_.network().note_abandoned();
  if (hooks_.on_abandon) hooks_.on_abandon(from, to, seq, entry.payload);
  retire(entry.key);
}

void ReliableHopLayer::acknowledge(sim::NodeId self, sim::NodeId sender,
                                   std::uint64_t seq) {
  if (config_.qos == QoS::kFireAndForget) return;
  sim_.send(self, sender, ack_kind_, HopAck{seq});
  ++stats_.ack_messages;
  if (trace_.on_ack_sent) trace_.on_ack_sent(self, sender, seq);
}

std::size_t ReliableHopLayer::pending_to(sim::NodeId to) const noexcept {
  return to < pending_by_receiver_.size() ? pending_by_receiver_[to] : 0;
}

void ReliableHopLayer::on_ack(const sim::Envelope& envelope) {
  const auto& ack = std::any_cast<const HopAck&>(envelope.payload);
  // The acker is the hop's receiver, the addressee its sender.
  const auto it = pending_.find(Key{envelope.to, envelope.from, ack.seq});
  if (it == pending_.end()) return;  // late ack: hop already retired
  sim_.cancel(it->second.timer);
  retire(it->first);
}

}  // namespace geomcast::multicast
