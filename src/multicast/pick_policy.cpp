#include "multicast/pick_policy.hpp"

#include <stdexcept>

namespace geomcast::multicast {

std::string to_string(PickPolicy policy) {
  switch (policy) {
    case PickPolicy::kMedian: return "median";
    case PickPolicy::kClosest: return "closest";
    case PickPolicy::kFarthest: return "farthest";
    case PickPolicy::kRandom: return "random";
  }
  return "?";
}

PickPolicy pick_policy_from_string(const std::string& name) {
  if (name == "median") return PickPolicy::kMedian;
  if (name == "closest") return PickPolicy::kClosest;
  if (name == "farthest") return PickPolicy::kFarthest;
  if (name == "random") return PickPolicy::kRandom;
  throw std::invalid_argument("unknown pick policy '" + name +
                              "' (expected median|closest|farthest|random)");
}

}  // namespace geomcast::multicast
