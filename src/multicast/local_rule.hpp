// The per-peer forwarding rule of the space-partitioning algorithm (§2).
// This single function is the whole "decentralized" core: it uses only
// information a real peer has locally — its own coordinates, the zone
// description from the incoming request, and the identifiers of its overlay
// neighbours. Both the synchronous builder and the message-driven protocol
// call it, so they provably make identical decisions.
#pragma once

#include <span>
#include <vector>

#include "geometry/distance.hpp"
#include "geometry/rect.hpp"
#include "multicast/pick_policy.hpp"
#include "overlay/peer.hpp"
#include "util/rng.hpp"

namespace geomcast::multicast {

/// A delegated slice of the ego peer's responsibility zone.
struct ZoneAssignment {
  overlay::PeerId child = overlay::kInvalidPeer;
  geometry::Rect zone;
};

/// Executes one step of the paper's rule for a peer located at `ego` that
/// received responsibility zone `zone`:
///   1. keep only neighbours strictly inside `zone`;
///   2. classify them into orthant regions relative to `ego` (Orthogonal
///      Hyperplanes classification);
///   3. sort each region by distance (paper: L1) and select one delegate
///      per `policy` (paper: median; lower median for even sizes);
///   4. delegate `zone ∩ orthant half-space` to each selected neighbour.
/// `rng` is only consulted by PickPolicy::kRandom (may be null otherwise).
[[nodiscard]] std::vector<ZoneAssignment> partition_step(
    const geometry::Point& ego, const geometry::Rect& zone,
    std::span<const overlay::Candidate> neighbors, PickPolicy policy = PickPolicy::kMedian,
    geometry::Metric metric = geometry::Metric::kL1, util::Rng* rng = nullptr);

}  // namespace geomcast::multicast
