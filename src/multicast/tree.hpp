// The multicast tree produced by a construction run: parent/children links
// over the peer set, plus the basic shape metrics the paper reports
// (longest root-to-leaf path, per-peer tree degree).
#pragma once

#include <cstddef>
#include <vector>

#include "overlay/peer.hpp"

namespace geomcast::multicast {

using overlay::PeerId;
using overlay::kInvalidPeer;

class MulticastTree {
 public:
  MulticastTree() = default;
  MulticastTree(std::size_t peer_count, PeerId root);

  [[nodiscard]] std::size_t peer_count() const noexcept { return parent_.size(); }
  [[nodiscard]] PeerId root() const noexcept { return root_; }

  /// Links `child` under `parent`; both must be in range, `child` must not
  /// already have a parent (throws std::logic_error — a duplicate delivery
  /// is a protocol bug the validator reports separately).
  void add_edge(PeerId parent, PeerId child);

  /// Detaches `leaf` (must be reached, childless, and not the root); its
  /// slot returns to the unreached state. Used by the groups subsystem to
  /// cascade relay-only branches away after an unsubscribe.
  void remove_leaf(PeerId leaf);

  /// Moves `child` (with its whole subtree) under `new_parent`, which must
  /// be reached and must not lie inside `child`'s subtree (a cycle would
  /// silently detach the subtree from the root — checked, throws).
  /// Used by churn repair.
  void reattach(PeerId child, PeerId new_parent);

  /// True iff `descendant` lies in the subtree rooted at `ancestor`
  /// (every peer is in its own subtree). Walks parent links upward.
  [[nodiscard]] bool in_subtree(PeerId ancestor, PeerId descendant) const;

  [[nodiscard]] bool reached(PeerId p) const { return p == root_ || parent_.at(p) != kInvalidPeer; }
  [[nodiscard]] std::size_t reached_count() const noexcept { return reached_count_; }
  [[nodiscard]] PeerId parent(PeerId p) const { return parent_.at(p); }
  [[nodiscard]] const std::vector<PeerId>& children(PeerId p) const { return children_.at(p); }
  /// Number of tree edges (= messages sent by the space-partition scheme).
  [[nodiscard]] std::size_t edge_count() const noexcept { return reached_count_ - 1; }

  /// Tree degree: children + 1 for the parent link (root has no parent).
  [[nodiscard]] std::size_t tree_degree(PeerId p) const;

  /// Depth of every reached peer (root = 0); kUnreachedDepth otherwise.
  static constexpr std::size_t kUnreachedDepth = static_cast<std::size_t>(-1);
  [[nodiscard]] std::vector<std::size_t> depths() const;

  /// Longest root-to-leaf path, in edges (the paper's Fig 1b metric).
  [[nodiscard]] std::size_t max_root_to_leaf_path() const;

  /// Maximum tree degree over reached peers (paper: bounded by 2^D children
  /// for the orthogonal-region construction).
  [[nodiscard]] std::size_t max_tree_degree() const;
  [[nodiscard]] std::size_t max_children() const;

 private:
  PeerId root_ = kInvalidPeer;
  std::vector<PeerId> parent_;
  std::vector<std::vector<PeerId>> children_;
  std::size_t reached_count_ = 0;
};

}  // namespace geomcast::multicast
