#include "multicast/flooding.hpp"

#include <deque>
#include <stdexcept>

namespace geomcast::multicast {

FloodingResult build_flooding_tree(const overlay::OverlayGraph& graph,
                                   overlay::PeerId root) {
  const std::size_t n = graph.size();
  if (root >= n) throw std::invalid_argument("build_flooding_tree: root out of range");

  FloodingResult result;
  result.tree = MulticastTree(n, root);

  // Deterministic synchronous flood: FIFO wave, so parents are first-hop
  // senders exactly as with constant link latency.
  std::vector<bool> received(n, false);
  received[root] = true;
  std::deque<overlay::PeerId> queue{root};
  while (!queue.empty()) {
    const overlay::PeerId p = queue.front();
    queue.pop_front();
    for (overlay::PeerId q : graph.neighbors(p)) {
      if (q == result.tree.parent(p)) continue;  // don't echo to the parent
      ++result.request_messages;
      if (received[q]) {
        ++result.duplicate_deliveries;
        continue;
      }
      received[q] = true;
      result.tree.add_edge(p, q);
      queue.push_back(q);
    }
  }
  return result;
}

}  // namespace geomcast::multicast
