#include "multicast/local_rule.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "geometry/orthant.hpp"
#include "multicast/zone.hpp"

namespace geomcast::multicast {

std::vector<ZoneAssignment> partition_step(const geometry::Point& ego,
                                           const geometry::Rect& zone,
                                           std::span<const overlay::Candidate> neighbors,
                                           PickPolicy policy, geometry::Metric metric,
                                           util::Rng* rng) {
  if (policy == PickPolicy::kRandom && rng == nullptr)
    throw std::invalid_argument("partition_step: kRandom policy requires an rng");

  struct Member {
    overlay::PeerId id;
    double dist;
  };
  // std::map keeps region iteration order deterministic (ascending code).
  std::map<geometry::OrthantCode, std::vector<Member>> regions;
  for (const overlay::Candidate& c : neighbors) {
    if (!zone.contains_interior(c.point)) continue;
    regions[geometry::orthant_of(ego, c.point)].push_back(
        Member{c.id, geometry::distance(metric, ego, c.point)});
  }

  std::vector<ZoneAssignment> assignments;
  assignments.reserve(regions.size());
  for (auto& [orthant, members] : regions) {
    std::sort(members.begin(), members.end(), [](const Member& a, const Member& b) {
      if (a.dist != b.dist) return a.dist < b.dist;
      return a.id < b.id;
    });
    std::size_t pick = 0;
    switch (policy) {
      case PickPolicy::kMedian: pick = (members.size() - 1) / 2; break;
      case PickPolicy::kClosest: pick = 0; break;
      case PickPolicy::kFarthest: pick = members.size() - 1; break;
      case PickPolicy::kRandom: pick = rng->next_below(members.size()); break;
    }
    assignments.push_back(
        ZoneAssignment{members[pick].id, child_zone(zone, ego, orthant)});
  }
  return assignments;
}

}  // namespace geomcast::multicast
