#include "multicast/space_partition.hpp"

#include <deque>
#include <stdexcept>

#include "multicast/zone.hpp"

namespace geomcast::multicast {

BuildResult build_multicast_tree(const overlay::OverlayGraph& graph, overlay::PeerId root,
                                 const MulticastConfig& config) {
  const std::size_t n = graph.size();
  if (root >= n) throw std::invalid_argument("build_multicast_tree: root out of range");
  const std::size_t dims = graph.dims();

  BuildResult result;
  result.tree = MulticastTree(n, root);
  result.zones.assign(n, geometry::Rect(dims));
  result.zone_assigned.assign(n, false);

  util::Rng rng(config.rng_seed);
  util::Rng* rng_ptr = config.policy == PickPolicy::kRandom ? &rng : nullptr;

  struct Pending {
    overlay::PeerId peer;
    geometry::Rect zone;
  };
  // FIFO processing = breadth-first message wave; the paper implicitly
  // delivers the initiator its own request with the whole space as zone.
  std::deque<Pending> queue;
  queue.push_back(Pending{root, initiator_zone(dims)});
  result.zones[root] = initiator_zone(dims);
  result.zone_assigned[root] = true;

  std::vector<overlay::Candidate> neighbor_candidates;
  while (!queue.empty()) {
    const Pending current = queue.front();
    queue.pop_front();

    neighbor_candidates.clear();
    for (overlay::PeerId q : graph.neighbors(current.peer))
      neighbor_candidates.push_back(overlay::Candidate{q, graph.point(q)});

    const auto assignments = partition_step(graph.point(current.peer), current.zone,
                                            neighbor_candidates, config.policy,
                                            config.metric, rng_ptr);
    for (const ZoneAssignment& a : assignments) {
      ++result.request_messages;
      if (result.zone_assigned[a.child]) {
        ++result.duplicate_deliveries;  // protocol violation; validator reports it
        continue;
      }
      result.zone_assigned[a.child] = true;
      result.zones[a.child] = a.zone;
      result.tree.add_edge(current.peer, a.child);
      queue.push_back(Pending{a.child, a.zone});
    }
  }
  return result;
}

}  // namespace geomcast::multicast
