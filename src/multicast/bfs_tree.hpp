// Centralized shortest-path-tree baseline: a BFS tree over the overlay,
// computed with global knowledge. It lower-bounds root-to-leaf path lengths
// on the given overlay and stands in for the "not fully decentralized"
// class of solutions the paper's introduction mentions. No message model —
// a coordinator with the full topology would build it out of band.
#pragma once

#include "multicast/tree.hpp"
#include "overlay/graph.hpp"

namespace geomcast::multicast {

[[nodiscard]] MulticastTree build_bfs_tree(const overlay::OverlayGraph& graph,
                                           overlay::PeerId root);

}  // namespace geomcast::multicast
