#include "multicast/validator.hpp"

#include <sstream>

#include "geometry/orthant.hpp"

namespace geomcast::multicast {

ValidationReport validate_build(const overlay::OverlayGraph& graph,
                                const BuildResult& result) {
  ValidationReport report;
  const std::size_t n = graph.size();
  const auto& tree = result.tree;

  report.peer_count = n;
  report.reached_count = tree.reached_count();
  report.all_reached = report.reached_count == n;
  report.request_messages = result.request_messages;
  report.message_count_is_n_minus_1 = result.request_messages == n - 1;
  report.duplicate_deliveries = result.duplicate_deliveries;
  report.max_children = tree.max_children();
  report.children_bound_ok =
      report.max_children <= geometry::orthant_count(graph.dims());

  report.peers_inside_zones = true;
  report.child_zones_nested = true;
  report.sibling_zones_disjoint = true;
  report.parent_outside_child_zones = true;

  for (overlay::PeerId p = 0; p < n; ++p) {
    if (!tree.reached(p)) continue;
    const geometry::Rect& zone = result.zones[p];
    if (!zone.contains_interior(graph.point(p))) report.peers_inside_zones = false;

    const auto& kids = tree.children(p);
    for (std::size_t i = 0; i < kids.size(); ++i) {
      const geometry::Rect& child = result.zones[kids[i]];
      if (!child.interior_subset_of(zone)) report.child_zones_nested = false;
      if (child.contains_interior(graph.point(p)))
        report.parent_outside_child_zones = false;
      for (std::size_t j = i + 1; j < kids.size(); ++j)
        if (!child.interior_disjoint(result.zones[kids[j]]))
          report.sibling_zones_disjoint = false;
    }
  }
  return report;
}

std::string ValidationReport::summary() const {
  std::ostringstream out;
  out << "reached " << reached_count << "/" << peer_count << ", messages "
      << request_messages << " (N-1 " << (message_count_is_n_minus_1 ? "ok" : "VIOLATED")
      << "), duplicates " << duplicate_deliveries << ", max children " << max_children
      << " (bound " << (children_bound_ok ? "ok" : "VIOLATED") << "), zones["
      << (peers_inside_zones ? "inside" : "INSIDE-VIOLATED") << ", "
      << (child_zones_nested ? "nested" : "NESTED-VIOLATED") << ", "
      << (sibling_zones_disjoint ? "disjoint" : "DISJOINT-VIOLATED") << ", "
      << (parent_outside_child_zones ? "parent-excluded" : "PARENT-EXCLUDED-VIOLATED")
      << "]";
  return out.str();
}

}  // namespace geomcast::multicast
