#include "multicast/range_multicast.hpp"

#include <deque>
#include <stdexcept>

#include "multicast/local_rule.hpp"
#include "multicast/zone.hpp"

namespace geomcast::multicast {

RangeMulticastResult build_range_multicast(const overlay::OverlayGraph& graph,
                                           overlay::PeerId root,
                                           const geometry::Rect& target,
                                           const MulticastConfig& config) {
  const std::size_t n = graph.size();
  if (root >= n) throw std::invalid_argument("build_range_multicast: root out of range");
  if (target.dims() != graph.dims())
    throw std::invalid_argument("build_range_multicast: target dimension mismatch");

  RangeMulticastResult result;
  result.tree = MulticastTree(n, root);
  result.is_delivery.assign(n, false);

  util::Rng rng(config.rng_seed);
  util::Rng* rng_ptr = config.policy == PickPolicy::kRandom ? &rng : nullptr;

  struct Pending {
    overlay::PeerId peer;
    geometry::Rect zone;
  };
  std::vector<bool> requested(n, false);
  requested[root] = true;
  std::deque<Pending> queue{Pending{root, initiator_zone(graph.dims())}};

  std::vector<overlay::Candidate> neighbors;
  while (!queue.empty()) {
    const Pending current = queue.front();
    queue.pop_front();

    if (target.contains_interior(graph.point(current.peer))) {
      result.is_delivery[current.peer] = true;
      ++result.delivered;
    } else {
      ++result.relays;
    }

    neighbors.clear();
    for (overlay::PeerId q : graph.neighbors(current.peer))
      neighbors.push_back(overlay::Candidate{q, graph.point(q)});

    // The full §2 step, then prune children whose slice cannot contain any
    // target peer. (Pruning after selection keeps the surviving child zones
    // identical to the whole-space run, so the correctness argument — every
    // target peer of Z(P) lies in exactly one child slice — is untouched.)
    const auto assignments = partition_step(graph.point(current.peer), current.zone,
                                            neighbors, config.policy, config.metric,
                                            rng_ptr);
    for (const ZoneAssignment& a : assignments) {
      if (a.zone.intersect(target).interior_empty()) continue;  // no targets inside
      ++result.request_messages;
      if (requested[a.child]) {
        ++result.duplicate_deliveries;
        continue;
      }
      requested[a.child] = true;
      result.tree.add_edge(current.peer, a.child);
      queue.push_back(Pending{a.child, a.zone});
    }
  }
  return result;
}

std::size_t peers_inside(const overlay::OverlayGraph& graph, const geometry::Rect& target) {
  std::size_t count = 0;
  for (overlay::PeerId p = 0; p < graph.size(); ++p)
    if (target.contains_interior(graph.point(p))) ++count;
  return count;
}

}  // namespace geomcast::multicast
