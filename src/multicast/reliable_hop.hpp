// Per-hop reliability for payload traffic on the simulated network — the
// ack/timeout/retransmit/duplicate-suppression core that run_dissemination
// pioneered, extracted so every payload path (single-shot dissemination,
// the groups pub/sub data plane, future subsystems) shares one protocol.
//
// The protocol is the standard per-hop one (MQTT-SN QoS 1 style): each
// data envelope is acknowledged by its receiver; the sender retransmits
// after `ack_timeout` until the ack arrives or `max_retries` copies have
// been resent, at which point the hop is abandoned. Receivers must re-ack
// every arrival — duplicates included — because the duplicate's existence
// means the previous ack may have been the lost message; duplicate
// *detection* stays with the client (it owns the dedup key: "payload held"
// for dissemination, (group, seq) for pub/sub), which reports suppressed
// copies through Network::note_duplicate().
//
// Under QoS 0 the layer degrades to a plain send: no acks, no timers, no
// retransmissions — bit-for-bit the fire-and-forget path, so clients can
// route all payload sends through it unconditionally.
//
// One layer instance serves every peer of a simulation: pending
// retransmission state is keyed by (sender, receiver, seq), so `seq` must
// be unique per logical transfer (per wave in pub/sub, per edge in
// single-shot dissemination). A transfer is whatever the client puts in
// one payload — pub/sub's coalesced range waves ride a single wave-id
// `seq`, so one pending entry, one ack, and one timeout/retransmit cycle
// cover the whole [seq_lo, seq_hi] batch; the layer's per-hop cost is
// amortised by the batch factor with no range awareness here. Aggregate
// counters land in HopStats and are mirrored into the simulator's
// NetworkStats via the note_* hooks; per-client attribution (e.g.
// per-group stats) goes through Hooks.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "util/pool.hpp"

namespace geomcast::multicast {

/// Delivery guarantee for a payload hop (the MQTT QoS ladder). The hop
/// layer itself only distinguishes "acked" from "not": kEndToEnd runs the
/// same per-hop ack/retransmit cycle as kAcked — the end-to-end NACK/gap-
/// repair plane that makes it QoS 2 lives with the client (groups/pubsub),
/// layered ON TOP of the per-hop recovery rather than replacing it.
enum class QoS : int {
  kFireAndForget = 0,  ///< one send, no acks, no timers
  kAcked = 1,          ///< per-hop ack + timeout/retransmit
  kEndToEnd = 2,       ///< kAcked hops + client-side NACK/gap repair
};

/// True for every rung that acks hops (everything above fire-and-forget).
[[nodiscard]] inline constexpr bool requires_ack(QoS qos) noexcept {
  return qos != QoS::kFireAndForget;
}

struct ReliabilityConfig {
  QoS qos = QoS::kAcked;
  /// Time a sender waits for an ack before retransmitting.
  double ack_timeout = 0.25;
  /// Retransmissions allowed per hop; 0 = single try (still acked, and
  /// abandonment is still counted when the ack never arrives).
  std::size_t max_retries = 5;
};

/// Ack payload: the receiver echoes the transfer's `seq`; together with
/// the envelope's (from, to) it identifies the pending hop.
struct HopAck {
  std::uint64_t seq = 0;
};

/// Aggregate accounting across every hop the layer carried.
struct HopStats {
  std::uint64_t data_messages = 0;  ///< sends, retransmissions included
  std::uint64_t ack_messages = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t abandoned_hops = 0;  ///< retry budgets exhausted
};

class ReliableHopLayer {
 public:
  /// Per-event callbacks for client-side attribution (the stored payload is
  /// passed back so e.g. pub/sub can charge the right group's stats).
  struct Hooks {
    std::function<void(sim::NodeId from, sim::NodeId to, std::uint64_t seq,
                       const std::any& payload)>
        on_retransmit;
    std::function<void(sim::NodeId from, sim::NodeId to, std::uint64_t seq,
                       const std::any& payload)>
        on_abandon;
    /// Consulted when a timer fires: a dead sender's pending hops are
    /// dropped silently (no retransmission from beyond the grave, and no
    /// abandonment charged — churn accounting lives elsewhere).
    std::function<bool(sim::NodeId)> sender_alive;
  };

  /// Observability taps, installable after construction (tracing attaches
  /// to a running system) and strictly passive: they fire after the
  /// transmission/ack they describe, mutate nothing, and cost one empty-
  /// std::function test when absent. `attempt` > 0 marks a retransmission.
  struct TraceHooks {
    std::function<void(sim::NodeId from, sim::NodeId to, std::uint64_t seq,
                       std::size_t attempt, const std::any& payload)>
        on_transmit;
    std::function<void(sim::NodeId self, sim::NodeId sender, std::uint64_t seq)>
        on_ack_sent;
  };
  void set_trace_hooks(TraceHooks hooks) { trace_ = std::move(hooks); }

  /// The layer sends data as `data_kind` and expects acks as `ack_kind`
  /// carrying a HopAck payload. `sim` must outlive the layer.
  ReliableHopLayer(sim::Simulator& sim, sim::MessageKind data_kind,
                   sim::MessageKind ack_kind, ReliabilityConfig config = {},
                   Hooks hooks = {});
  ReliableHopLayer(const ReliableHopLayer&) = delete;
  ReliableHopLayer& operator=(const ReliableHopLayer&) = delete;

  /// Sharded event loop wiring: splits the pending table by the SENDER's
  /// home lane (`node_lane[from]`), so a hop's entire ack/retransmit cycle
  /// — send, timeout, ack arrival (routed to the sender's region) — runs
  /// in one lane whether on its worker thread or on the quiesced
  /// coordinator. Aggregate accessors (stats/pending/pending_to) sum the
  /// lanes; they must only run while workers are parked.
  void configure_lanes(std::vector<std::uint32_t> node_lane);

  /// Sender half: transmits `payload` from -> to and, under QoS 1, arms the
  /// ack-timeout/retransmit cycle. `seq` must be unique per logical
  /// (from, to) transfer and must not collide with one still pending.
  ///
  /// `kind` overrides the envelope kind for this transfer (retransmissions
  /// reuse it); kInvalidKind means the layer's data_kind. Lets one layer
  /// instance — one pending table, one ack kind, one timeout discipline —
  /// carry a small family of related kinds (e.g. the routed-graft
  /// request/accept/reject trio) whose seqs share a key space.
  static constexpr sim::MessageKind kInvalidKind =
      static_cast<sim::MessageKind>(-1);
  void send(sim::NodeId from, sim::NodeId to, std::uint64_t seq, std::any payload,
            sim::MessageKind kind = kInvalidKind);

  /// Receiver half: acknowledge a data arrival back to its sender. Call for
  /// EVERY arrival, duplicates included — the previous ack may have been
  /// the lost message, and an unacked sender retransmits until its budget
  /// dies on a hop that already delivered. No-op under QoS 0.
  void acknowledge(sim::NodeId self, sim::NodeId sender, std::uint64_t seq);

  /// Dispatch an `ack_kind` envelope: cancels the matching pending
  /// retransmission. Late acks (hop already retired) are ignored.
  void on_ack(const sim::Envelope& envelope);

  /// Aggregate stats across all lanes (single-lane: the plain counters).
  [[nodiscard]] const HopStats& stats() const noexcept;
  [[nodiscard]] const ReliabilityConfig& config() const noexcept { return config_; }
  /// Hops still awaiting an ack (0 once the simulation drained).
  [[nodiscard]] std::size_t pending() const noexcept {
    std::size_t total = 0;
    for (const LaneTable& lane : lanes_) total += lane.pending.size();
    return total;
  }
  /// Pending hops addressed to `to` — i.e. senders still retransmitting
  /// toward that receiver. The QoS 2 gap-repair plane consults this before
  /// NACKing: while per-hop recovery is in flight the gap may heal on its
  /// own, so end-to-end repair defers instead of double-repairing.
  [[nodiscard]] std::size_t pending_to(sim::NodeId to) const noexcept;

 private:
  /// Pending-table key. Never iterated in order, so the table is an
  /// unordered_map — O(1) on the per-hop hot path instead of a red-black
  /// walk per send/ack.
  struct Key {
    sim::NodeId from = sim::kInvalidNode;
    sim::NodeId to = sim::kInvalidNode;
    std::uint64_t seq = 0;
    [[nodiscard]] bool operator==(const Key&) const noexcept = default;
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = (static_cast<std::uint64_t>(k.from) << 32) | k.to;
      h ^= k.seq * 0x9e3779b97f4a7c15ULL;
      h ^= h >> 29;
      h *= 0xbf58476d1ce4e5b9ULL;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };
  /// The key lives inside the node so a timer closure only captures
  /// {this, node*} — 16 trivially-copyable bytes, which libstdc++'s
  /// std::function stores inline: arming a retransmit timer allocates
  /// nothing. unordered_map nodes are pointer-stable, and a pending hop's
  /// timer is always cancelled (on_ack) or already fired (on_timeout)
  /// before its node is erased, so a firing timer's pointer is valid.
  struct Pending {
    Key key;
    std::any payload;
    std::size_t attempt = 0;
    sim::EventId timer = 0;
    sim::MessageKind kind = kInvalidKind;  // per-transfer override
  };

  /// One lane's share of the protocol state. Classic mode runs a single
  /// lane; the sharded loop gives each region its own table (keyed by the
  /// sender's home lane), so concurrent workers never share a node.
  struct LaneTable {
    /// Free-list node allocator: a QoS 1 hop inserts and erases one node
    /// per transfer, so steady-state ack churn recycles instead of hitting
    /// the global heap. Each lane owns its arena.
    std::unordered_map<Key, Pending, KeyHash, std::equal_to<Key>,
                       util::FreeListAllocator<std::pair<const Key, Pending>>>
        pending;
    /// Per-receiver pending-hop counts, maintained alongside `pending` so
    /// pending_to() — polled by every QoS 2 gap timer — needs no scan.
    /// Node ids are dense, so this is a flat vector, not a map.
    std::vector<std::size_t> pending_by_receiver;
    HopStats stats;
  };

  [[nodiscard]] LaneTable& lane_of(sim::NodeId sender) noexcept {
    return node_lane_.empty() ? lanes_[0] : lanes_[node_lane_[sender]];
  }

  void transmit(Pending& entry, std::size_t attempt);
  void on_timeout(Pending& entry);
  static void timeout_thunk(void* ctx, std::uint64_t arg);
  // By value: callers pass the key living inside the node being erased.
  void retire(Key key);

  sim::Simulator& sim_;
  sim::MessageKind data_kind_;
  sim::MessageKind ack_kind_;
  ReliabilityConfig config_;
  Hooks hooks_;
  TraceHooks trace_;
  std::vector<LaneTable> lanes_;
  std::vector<std::uint32_t> node_lane_;  // empty => everything in lane 0
  mutable HopStats total_stats_;          // stats() materialisation cache
};

}  // namespace geomcast::multicast
