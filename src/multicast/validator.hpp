// Checks every §2 claim on a finished construction:
//   * coverage: all N peers received the request;
//   * exactly N-1 messages, zero duplicate deliveries;
//   * each peer lies strictly inside the zone it was delegated;
//   * sibling zones are pairwise disjoint and exclude the delegating peer;
//   * child zones are sub-rects of the parent zone;
//   * at most 2^D children per peer (orthant regions bound the fan-out).
#pragma once

#include <cstdint>
#include <string>

#include "multicast/space_partition.hpp"
#include "overlay/graph.hpp"

namespace geomcast::multicast {

struct ValidationReport {
  std::size_t peer_count = 0;
  std::size_t reached_count = 0;
  bool all_reached = false;
  std::uint64_t request_messages = 0;
  bool message_count_is_n_minus_1 = false;
  std::uint64_t duplicate_deliveries = 0;
  std::size_t max_children = 0;
  bool children_bound_ok = false;   // max_children <= 2^D
  bool peers_inside_zones = false;  // every reached peer inside its own zone
  bool child_zones_nested = false;  // child zone subset of parent zone
  bool sibling_zones_disjoint = false;
  bool parent_outside_child_zones = false;

  [[nodiscard]] bool valid() const {
    return all_reached && message_count_is_n_minus_1 && duplicate_deliveries == 0 &&
           children_bound_ok && peers_inside_zones && child_zones_nested &&
           sibling_zones_disjoint && parent_outside_child_zones;
  }
  [[nodiscard]] std::string summary() const;
};

[[nodiscard]] ValidationReport validate_build(const overlay::OverlayGraph& graph,
                                              const BuildResult& result);

}  // namespace geomcast::multicast
