#include "multicast/bfs_tree.hpp"

#include <deque>
#include <stdexcept>

namespace geomcast::multicast {

MulticastTree build_bfs_tree(const overlay::OverlayGraph& graph, overlay::PeerId root) {
  const std::size_t n = graph.size();
  if (root >= n) throw std::invalid_argument("build_bfs_tree: root out of range");

  MulticastTree tree(n, root);
  std::vector<bool> visited(n, false);
  visited[root] = true;
  std::deque<overlay::PeerId> queue{root};
  while (!queue.empty()) {
    const overlay::PeerId p = queue.front();
    queue.pop_front();
    for (overlay::PeerId q : graph.neighbors(p)) {
      if (visited[q]) continue;
      visited[q] = true;
      tree.add_edge(p, q);
      queue.push_back(q);
    }
  }
  return tree;
}

}  // namespace geomcast::multicast
