// Range-zone multicast: deliver to every peer inside an arbitrary target
// hyper-rectangle instead of the whole space.
//
// This is the natural generalisation of the §2 algorithm (and the direction
// of the authors' companion work on multidimensional range search, the
// paper's reference [2]): run the same responsibility-zone recursion, but
// only recurse into orthant slices whose zone intersects the target
// rectangle. Peers reached whose identifier lies inside the target are
// *deliveries*; peers reached only because the recursion must pass through
// them are *relays* (they forward the request but do not consume the data).
//
// Correctness is inherited from the whole-space argument: the recursion is
// the proven §2 recursion with subtrees that provably contain no target
// peers pruned; every target peer in Z(P) lies in some child slice that
// intersects the target and is therefore forwarded to.
#pragma once

#include <cstdint>

#include "geometry/rect.hpp"
#include "multicast/space_partition.hpp"
#include "overlay/graph.hpp"

namespace geomcast::multicast {

struct RangeMulticastResult {
  MulticastTree tree;  // spans deliveries and relays, rooted at the initiator
  std::uint64_t request_messages = 0;
  std::uint64_t duplicate_deliveries = 0;
  /// Peers inside the target rectangle that received the request.
  std::size_t delivered = 0;
  /// Peers outside the target that the recursion had to route through.
  std::size_t relays = 0;
  std::vector<bool> is_delivery;  // per peer id
};

/// Builds the pruned construction rooted at `root` (which may lie outside
/// `target`). Deterministic; uses the paper's median-L1 delegate rule.
[[nodiscard]] RangeMulticastResult build_range_multicast(
    const overlay::OverlayGraph& graph, overlay::PeerId root,
    const geometry::Rect& target, const MulticastConfig& config = {});

/// Number of peers of `graph` strictly inside `target` (oracle; for tests
/// and reporting).
[[nodiscard]] std::size_t peers_inside(const overlay::OverlayGraph& graph,
                                       const geometry::Rect& target);

}  // namespace geomcast::multicast
