#include "multicast/protocol.hpp"

#include <stdexcept>

#include "multicast/zone.hpp"

namespace geomcast::multicast {

namespace {

/// A peer participating in tree construction. Local state only: its
/// coordinates, its overlay neighbours (ids + identifiers, which gossip
/// already gave it), and the zone it received.
class MulticastNode final : public sim::Node {
 public:
  MulticastNode(overlay::PeerId id, const overlay::OverlayGraph& graph,
                const MulticastConfig& config, ProtocolRunResult& shared)
      : sim::Node(id), graph_(graph), config_(config), shared_(shared),
        rng_(config.rng_seed ^ (0x9e3779b97f4a7c15ULL * (id + 1))) {}

  void on_message(sim::Simulator& sim, const sim::Envelope& envelope) override {
    if (envelope.kind != kBuildRequestKind)
      throw std::logic_error("MulticastNode: unexpected message kind");
    const auto& request = std::any_cast<const BuildRequest&>(envelope.payload);
    accept(sim, envelope.from, request);
  }

  /// Handles a request arriving from `from` (kInvalidPeer for the implicit
  /// self-delivery at the initiator).
  void accept(sim::Simulator& sim, overlay::PeerId from, const BuildRequest& request) {
    auto& build = shared_.build;
    if (build.zone_assigned[id()]) {
      ++build.duplicate_deliveries;
      return;
    }
    build.zone_assigned[id()] = true;
    build.zones[id()] = request.zone;
    if (from != overlay::kInvalidPeer) build.tree.add_edge(from, id());
    shared_.completion_time = sim.now();

    std::vector<overlay::Candidate> neighbors;
    for (overlay::PeerId q : graph_.neighbors(id()))
      neighbors.push_back(overlay::Candidate{q, graph_.point(q)});
    util::Rng* rng_ptr = config_.policy == PickPolicy::kRandom ? &rng_ : nullptr;
    const auto assignments = partition_step(graph_.point(id()), request.zone, neighbors,
                                            config_.policy, config_.metric, rng_ptr);
    for (const ZoneAssignment& a : assignments)
      sim.send(id(), a.child, kBuildRequestKind, BuildRequest{a.zone, request.root});
  }

 private:
  const overlay::OverlayGraph& graph_;
  const MulticastConfig& config_;
  ProtocolRunResult& shared_;
  util::Rng rng_;
};

}  // namespace

ProtocolRunResult run_multicast_protocol(const overlay::OverlayGraph& graph,
                                         overlay::PeerId root, const MulticastConfig& config,
                                         sim::LatencyModel latency, sim::LossModel loss,
                                         std::uint64_t seed) {
  const std::size_t n = graph.size();
  if (root >= n) throw std::invalid_argument("run_multicast_protocol: root out of range");

  ProtocolRunResult result;
  result.build.tree = MulticastTree(n, root);
  result.build.zones.assign(n, geometry::Rect(graph.dims()));
  result.build.zone_assigned.assign(n, false);

  sim::Simulator sim(seed);
  sim.network().set_latency(latency);
  sim.network().set_loss(std::move(loss));

  std::vector<std::unique_ptr<MulticastNode>> nodes;
  nodes.reserve(n);
  for (overlay::PeerId i = 0; i < n; ++i) {
    nodes.push_back(std::make_unique<MulticastNode>(i, graph, config, result));
    sim.add_node(*nodes[i]);
  }

  // The initiator receives its request "implicitly" (paper §2).
  const BuildRequest initial{initiator_zone(graph.dims()), root};
  sim.schedule_at(0.0, [&, initial]() {
    nodes[root]->accept(sim, overlay::kInvalidPeer, initial);
  });
  sim.run_until_idle();

  const auto& stats = sim.stats();
  if (const auto it = stats.sent_by_kind.find(kBuildRequestKind); it != stats.sent_by_kind.end())
    result.build.request_messages = it->second;
  result.dropped_requests = stats.dropped;
  return result;
}

}  // namespace geomcast::multicast
