// Synchronous in-memory execution of the space-partitioning multicast-tree
// construction (§2). Semantically identical to the message-driven protocol
// in protocol.hpp — both apply partition_step at every peer — but runs as a
// simple work queue, which is what the figure benches need (Fig 1b runs
// 1000 constructions per overlay).
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/rect.hpp"
#include "multicast/local_rule.hpp"
#include "multicast/tree.hpp"
#include "overlay/graph.hpp"

namespace geomcast::multicast {

struct MulticastConfig {
  PickPolicy policy = PickPolicy::kMedian;
  geometry::Metric metric = geometry::Metric::kL1;
  /// Only used by PickPolicy::kRandom.
  std::uint64_t rng_seed = 1;
};

struct BuildResult {
  MulticastTree tree;
  /// Tree-construction request messages sent (the paper's N-1 claim).
  std::uint64_t request_messages = 0;
  /// Requests delivered to a peer that already held a zone (must be 0; the
  /// zones of selected neighbours are disjoint by construction).
  std::uint64_t duplicate_deliveries = 0;
  /// Responsibility zone each reached peer received (index = peer id);
  /// unreached peers keep a default-constructed Rect.
  std::vector<geometry::Rect> zones;
  std::vector<bool> zone_assigned;
};

/// Builds the multicast tree rooted at `root` over `graph`'s undirected
/// adjacency. Every peer only consults its own neighbours and the zone from
/// its request — the function is a faithful sequentialisation of the
/// decentralized algorithm.
[[nodiscard]] BuildResult build_multicast_tree(const overlay::OverlayGraph& graph,
                                               overlay::PeerId root,
                                               const MulticastConfig& config = {});

}  // namespace geomcast::multicast
