// Flooding baseline: the classic "sensitive, chatty" way to build a
// dissemination tree that the paper's introduction argues against. The
// initiator floods; every peer forwards the request to all overlay
// neighbours (except the sender) on first receipt and adopts the first
// sender as its parent. Coverage is maximal for the overlay's connected
// component, but the construction costs 2E - (N-1) messages instead of N-1.
#pragma once

#include <cstdint>

#include "multicast/tree.hpp"
#include "overlay/graph.hpp"

namespace geomcast::multicast {

struct FloodingResult {
  MulticastTree tree;
  std::uint64_t request_messages = 0;
  /// Deliveries beyond the first at some peer (pure overhead).
  std::uint64_t duplicate_deliveries = 0;
};

[[nodiscard]] FloodingResult build_flooding_tree(const overlay::OverlayGraph& graph,
                                                 overlay::PeerId root);

}  // namespace geomcast::multicast
