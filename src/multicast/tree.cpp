#include "multicast/tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace geomcast::multicast {

MulticastTree::MulticastTree(std::size_t peer_count, PeerId root)
    : root_(root),
      parent_(peer_count, kInvalidPeer),
      children_(peer_count),
      reached_count_(1) {
  if (root >= peer_count) throw std::invalid_argument("MulticastTree: root out of range");
}

void MulticastTree::add_edge(PeerId parent, PeerId child) {
  if (parent >= parent_.size() || child >= parent_.size())
    throw std::invalid_argument("MulticastTree::add_edge: peer out of range");
  if (child == root_) throw std::logic_error("MulticastTree::add_edge: root cannot be a child");
  if (parent_[child] != kInvalidPeer)
    throw std::logic_error("MulticastTree::add_edge: child already attached");
  if (!reached(parent))
    throw std::logic_error("MulticastTree::add_edge: parent not reached yet");
  parent_[child] = parent;
  children_[parent].push_back(child);
  ++reached_count_;
}

void MulticastTree::remove_leaf(PeerId leaf) {
  if (leaf >= parent_.size())
    throw std::invalid_argument("MulticastTree::remove_leaf: peer out of range");
  if (leaf == root_) throw std::logic_error("MulticastTree::remove_leaf: cannot remove root");
  if (parent_[leaf] == kInvalidPeer)
    throw std::logic_error("MulticastTree::remove_leaf: peer not attached");
  if (!children_[leaf].empty())
    throw std::logic_error("MulticastTree::remove_leaf: peer has children");
  auto& siblings = children_[parent_[leaf]];
  siblings.erase(std::remove(siblings.begin(), siblings.end(), leaf), siblings.end());
  parent_[leaf] = kInvalidPeer;
  --reached_count_;
}

void MulticastTree::reattach(PeerId child, PeerId new_parent) {
  if (child >= parent_.size() || new_parent >= parent_.size())
    throw std::invalid_argument("MulticastTree::reattach: peer out of range");
  if (child == root_) throw std::logic_error("MulticastTree::reattach: cannot move root");
  if (parent_[child] == kInvalidPeer)
    throw std::logic_error("MulticastTree::reattach: child not attached");
  if (!reached(new_parent))
    throw std::logic_error("MulticastTree::reattach: new parent not reached");
  if (in_subtree(child, new_parent))
    throw std::logic_error("MulticastTree::reattach: new parent inside child's subtree");
  auto& siblings = children_[parent_[child]];
  siblings.erase(std::remove(siblings.begin(), siblings.end(), child), siblings.end());
  parent_[child] = new_parent;
  children_[new_parent].push_back(child);
}

bool MulticastTree::in_subtree(PeerId ancestor, PeerId descendant) const {
  PeerId p = descendant;
  while (p != kInvalidPeer) {
    if (p == ancestor) return true;
    if (p == root_) return false;
    p = parent_.at(p);
  }
  return false;
}

std::size_t MulticastTree::tree_degree(PeerId p) const {
  if (!reached(p)) return 0;
  return children_.at(p).size() + (p == root_ ? 0 : 1);
}

std::vector<std::size_t> MulticastTree::depths() const {
  std::vector<std::size_t> depth(parent_.size(), kUnreachedDepth);
  if (root_ == kInvalidPeer) return depth;
  depth[root_] = 0;
  // children_ edges always point from already-reached parents, so a BFS over
  // the children lists visits peers in non-decreasing depth.
  std::vector<PeerId> frontier{root_};
  std::vector<PeerId> next;
  while (!frontier.empty()) {
    next.clear();
    for (PeerId p : frontier) {
      for (PeerId c : children_[p]) {
        depth[c] = depth[p] + 1;
        next.push_back(c);
      }
    }
    frontier.swap(next);
  }
  return depth;
}

std::size_t MulticastTree::max_root_to_leaf_path() const {
  std::size_t best = 0;
  for (std::size_t d : depths())
    if (d != kUnreachedDepth) best = std::max(best, d);
  return best;
}

std::size_t MulticastTree::max_tree_degree() const {
  std::size_t best = 0;
  for (PeerId p = 0; p < parent_.size(); ++p)
    best = std::max(best, tree_degree(p));
  return best;
}

std::size_t MulticastTree::max_children() const {
  std::size_t best = 0;
  for (const auto& kids : children_) best = std::max(best, kids.size());
  return best;
}

}  // namespace geomcast::multicast
