#include "stability/random_parent.hpp"

#include <deque>

namespace geomcast::stability {

std::vector<overlay::PeerId> build_random_spanning_tree(const overlay::OverlayGraph& graph,
                                                        util::Rng& rng) {
  const std::size_t n = graph.size();
  std::vector<overlay::PeerId> parent(n, overlay::kInvalidPeer);
  if (n == 0) return parent;

  const auto root = static_cast<overlay::PeerId>(rng.next_below(n));
  std::vector<bool> visited(n, false);
  visited[root] = true;
  std::deque<overlay::PeerId> queue{root};
  while (!queue.empty()) {
    const overlay::PeerId p = queue.front();
    queue.pop_front();
    std::vector<overlay::PeerId> order = graph.neighbors(p);
    rng.shuffle(order);
    for (overlay::PeerId q : order) {
      if (visited[q]) continue;
      visited[q] = true;
      parent[q] = p;
      queue.push_back(q);
    }
  }
  return parent;
}

}  // namespace geomcast::stability
