#include "stability/churn.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace geomcast::stability {

namespace {
std::vector<PeerId> departure_order(const std::vector<double>& departure_times) {
  std::vector<PeerId> order(departure_times.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](PeerId a, PeerId b) {
    return departure_times[a] < departure_times[b];
  });
  return order;
}

/// Size of v's subtree restricted to alive nodes (children lists derived
/// from the current parent array).
std::size_t alive_subtree(const std::vector<std::vector<PeerId>>& children,
                          const std::vector<bool>& alive, PeerId v) {
  std::size_t count = 0;
  std::vector<PeerId> stack{v};
  while (!stack.empty()) {
    const PeerId p = stack.back();
    stack.pop_back();
    for (PeerId c : children[p]) {
      if (alive[c]) {
        ++count;
        stack.push_back(c);
      }
    }
  }
  return count;
}
}  // namespace

ChurnReport simulate_departures(const std::vector<PeerId>& parent,
                                const std::vector<double>& departure_times) {
  const std::size_t n = parent.size();
  if (departure_times.size() != n)
    throw std::invalid_argument("simulate_departures: size mismatch");

  std::vector<std::vector<PeerId>> children(n);
  for (PeerId p = 0; p < n; ++p)
    if (parent[p] != kInvalidPeer) children[parent[p]].push_back(p);

  std::vector<bool> alive(n, true);
  ChurnReport report;
  for (PeerId v : departure_order(departure_times)) {
    const std::size_t orphaned = alive_subtree(children, alive, v);
    alive[v] = false;
    ++report.departures;
    if (orphaned > 0) {
      ++report.disruptive_departures;
      report.total_orphaned += orphaned;
      report.max_orphaned_at_once = std::max(report.max_orphaned_at_once, orphaned);
    }
  }
  return report;
}

RepairReport simulate_departures_with_repair(const overlay::OverlayGraph& graph,
                                             const std::vector<PeerId>& parent,
                                             const std::vector<double>& departure_times) {
  const std::size_t n = parent.size();
  if (departure_times.size() != n || graph.size() != n)
    throw std::invalid_argument("simulate_departures_with_repair: size mismatch");

  std::vector<PeerId> current_parent = parent;
  std::vector<std::vector<PeerId>> children(n);
  for (PeerId p = 0; p < n; ++p)
    if (current_parent[p] != kInvalidPeer) children[current_parent[p]].push_back(p);

  auto detach = [&](PeerId child) {
    const PeerId up = current_parent[child];
    if (up == kInvalidPeer) return;
    auto& siblings = children[up];
    siblings.erase(std::remove(siblings.begin(), siblings.end(), child), siblings.end());
    current_parent[child] = kInvalidPeer;
  };

  std::vector<bool> alive(n, true);
  RepairReport report;
  for (PeerId v : departure_order(departure_times)) {
    alive[v] = false;
    ++report.churn.departures;
    // Orphans = v's live children at this instant.
    std::vector<PeerId> orphans;
    for (PeerId c : children[v])
      if (alive[c]) orphans.push_back(c);
    detach(v);

    if (!orphans.empty()) {
      ++report.churn.disruptive_departures;
      report.churn.total_orphaned += orphans.size();
      report.churn.max_orphaned_at_once =
          std::max(report.churn.max_orphaned_at_once, orphans.size());
    }
    for (PeerId orphan : orphans) detach(orphan);
    // §3 rule among the survivors: any alive overlay neighbour departing
    // strictly later can adopt; prefer the latest-departing one.
    const auto repaired = repair_orphans(
        graph, orphans,
        [&](PeerId orphan, PeerId q) {
          return alive[q] && departure_times[q] > departure_times[orphan];
        },
        [&](PeerId q, PeerId incumbent) {
          return departure_times[q] > departure_times[incumbent];
        });
    for (const auto& [orphan, adopter] : repaired.reattached) {
      current_parent[orphan] = adopter;
      children[adopter].push_back(orphan);
    }
    report.reattached += repaired.reattached.size();
    report.repair_failures += repaired.failed.size();
  }
  return report;
}

}  // namespace geomcast::stability
