#include "stability/lifetime.hpp"

#include <algorithm>
#include <stdexcept>

#include "geometry/random_points.hpp"

namespace geomcast::stability {

std::vector<double> random_lifetimes(util::Rng& rng, std::size_t count, double lo,
                                     double hi) {
  if (hi <= lo) throw std::invalid_argument("random_lifetimes: empty interval");
  std::vector<double> times(count);
  while (true) {
    for (auto& t : times) t = rng.uniform(lo, hi);
    std::vector<double> sorted = times;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end()) break;
  }
  return times;
}

void apply_lifetime_coordinate(std::vector<geometry::Point>& points,
                               const std::vector<double>& departure_times) {
  if (points.size() != departure_times.size())
    throw std::invalid_argument("apply_lifetime_coordinate: size mismatch");
  std::vector<double> sorted = departure_times;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
    throw std::invalid_argument("apply_lifetime_coordinate: departure times must be distinct");
  for (std::size_t i = 0; i < points.size(); ++i) points[i][0] = departure_times[i];
}

std::vector<geometry::Point> lifetime_points(util::Rng& rng, std::size_t count,
                                             std::size_t dims, double vmax,
                                             std::vector<double>& departure_times_out) {
  auto points = geometry::random_points(rng, count, dims, vmax);
  departure_times_out = random_lifetimes(rng, count, 0.0, vmax);
  apply_lifetime_coordinate(points, departure_times_out);
  return points;
}

}  // namespace geomcast::stability
