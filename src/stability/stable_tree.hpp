// Stability-optimised multicast trees (§3). Every peer P picks a *preferred
// tree neighbour*: an overlay neighbour Q with T(Q) > T(P). Because every
// link strictly increases T, the preferred links are acyclic; and whenever
// every non-maximal peer finds such a neighbour (guaranteed with
// Orthogonal-Hyperplanes selection: some positive-T-side orthant is
// non-empty) they form a single tree rooted at the peer with the largest T.
// Peers then depart in T order, so a departing peer is always a leaf.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "overlay/graph.hpp"

namespace geomcast::stability {

using overlay::PeerId;
using overlay::kInvalidPeer;

/// Which neighbour with larger T becomes the parent. The paper's
/// experiments use kMaxT ("the overlay neighbour Q with the largest value
/// T(Q)"); the paper text allows any choice ("secondary selection criteria
/// may be used"), which the alternatives explore.
enum class PreferredPolicy {
  kMaxT,          // largest T(Q) among eligible neighbours (paper)
  kMinAboveOwnT,  // smallest eligible T(Q): parent barely outlives the child
  kClosestAboveOwnT,  // geometrically closest eligible neighbour (L2)
};

[[nodiscard]] std::string to_string(PreferredPolicy policy);

struct StableTree {
  /// parent[p] = preferred tree neighbour of p (kInvalidPeer if none).
  std::vector<PeerId> parent;
  std::vector<std::vector<PeerId>> children;
  /// Peers with no preferred neighbour. The paper's construction yields
  /// exactly one — the peer with the globally largest T.
  std::vector<PeerId> roots;
  std::vector<double> departure_time;

  [[nodiscard]] std::size_t size() const noexcept { return parent.size(); }
  /// Single root and N-1 edges <=> the preferred links form one tree.
  [[nodiscard]] bool is_single_tree() const noexcept { return roots.size() == 1; }
  /// T strictly decreases from parent to child everywhere.
  [[nodiscard]] bool lifetimes_monotone() const;
  [[nodiscard]] std::size_t max_degree() const;
};

/// Builds the preferred-neighbour structure over the overlay graph.
/// `departure_times[p]` = T(p); all values must be distinct.
[[nodiscard]] StableTree build_stable_tree(const overlay::OverlayGraph& graph,
                                           const std::vector<double>& departure_times,
                                           PreferredPolicy policy = PreferredPolicy::kMaxT);

/// Same tree, computed straight from per-peer selections (out-edges) without
/// materialising the undirected adjacency — each directed edge is offered to
/// both endpoints, which is exactly the union the OverlayGraph would build.
/// Used by the Fig 1 d/e sweep where 450 (D, K) overlays would otherwise be
/// constructed and sorted; guaranteed equal to build_stable_tree (tested).
[[nodiscard]] StableTree build_stable_tree_from_selections(
    const std::vector<std::vector<PeerId>>& selections,
    const std::vector<geometry::Point>& points,
    const std::vector<double>& departure_times,
    PreferredPolicy policy = PreferredPolicy::kMaxT);

/// Tree diameter in edges (longest path between any two peers), computed by
/// double-BFS over the undirected tree adjacency. Forests return the
/// largest component's diameter.
[[nodiscard]] std::size_t tree_diameter(const StableTree& tree);

}  // namespace geomcast::stability
