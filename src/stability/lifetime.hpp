// Lifetime coordinates (§3). Every peer knows the moment T(P) at which it
// will leave — VM lease expiry in a cloud, battery horizon in a sensor
// network — and encodes it as its FIRST coordinate: x(P,1) = T(P). The
// remaining D-1 coordinates stay free for locality. All T values must be
// distinct (the paper breaks ties by peer-specific properties; we perturb).
#pragma once

#include <vector>

#include "geometry/point.hpp"
#include "util/rng.hpp"

namespace geomcast::stability {

/// Draws `count` distinct departure times uniform in [lo, hi).
[[nodiscard]] std::vector<double> random_lifetimes(util::Rng& rng, std::size_t count,
                                                   double lo, double hi);

/// Sets x(P,1) = T(P) for every peer (paper's encoding; dimension 0 here).
/// Throws std::invalid_argument on size mismatch or duplicate times.
void apply_lifetime_coordinate(std::vector<geometry::Point>& points,
                               const std::vector<double>& departure_times);

/// Generates a full §3 workload: D-dimensional identifiers whose first
/// coordinate is the departure time and whose other coordinates are uniform
/// in [0, vmax).
[[nodiscard]] std::vector<geometry::Point> lifetime_points(
    util::Rng& rng, std::size_t count, std::size_t dims, double vmax,
    std::vector<double>& departure_times_out);

}  // namespace geomcast::stability
