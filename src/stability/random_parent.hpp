// Lifetime-oblivious baseline: a uniformly random spanning tree-ish
// structure over the same overlay (randomised BFS from a random root).
// This is the natural "existing solution" strawman for the §3 comparison —
// structurally valid, but interior nodes depart mid-life and orphan their
// subtrees.
#pragma once

#include <vector>

#include "overlay/graph.hpp"
#include "util/rng.hpp"

namespace geomcast::stability {

/// Returns parent links of a spanning tree of `graph`'s largest reachable
/// set from a random root (kInvalidPeer marks the root / unreachable
/// peers). Neighbour visit order is shuffled per node, so tree shape is
/// random but reproducible from the rng state.
[[nodiscard]] std::vector<overlay::PeerId> build_random_spanning_tree(
    const overlay::OverlayGraph& graph, util::Rng& rng);

}  // namespace geomcast::stability
