// Departure simulation. Peers leave at their announced times T(P), in
// increasing order. For the §3 stable tree the invariant under test is that
// a departing peer is always a LEAF of the remaining tree — departures
// never disconnect anyone. For baseline trees (e.g. a random spanning tree
// of the same overlay) a departing interior node orphans its remaining
// subtree; the simulator counts those disruptions, quantifying the paper's
// "very sensitive to node departures" remark.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "stability/stable_tree.hpp"

namespace geomcast::stability {

struct ChurnReport {
  std::size_t departures = 0;
  /// Departures whose node still had live children (tree disconnections).
  std::size_t disruptive_departures = 0;
  /// Live peers orphaned across all departures (sum of orphaned subtree
  /// sizes at the moment of each departure).
  std::size_t total_orphaned = 0;
  std::size_t max_orphaned_at_once = 0;
  /// True iff every departure happened at a leaf (the §3 guarantee).
  [[nodiscard]] bool departures_always_leaves() const noexcept {
    return disruptive_departures == 0;
  }
};

/// Plays all departures in increasing T order on an arbitrary parent
/// structure (stable tree or baseline). A departure orphans the departing
/// node's entire remaining subtree (no repair) — the metric the baseline
/// comparison reports.
[[nodiscard]] ChurnReport simulate_departures(const std::vector<PeerId>& parent,
                                              const std::vector<double>& departure_times);

/// Same, but at each departure orphaned children re-run the §3 preferred-
/// neighbour rule among their still-alive overlay neighbours. Returns the
/// number of re-attachments that failed (no alive neighbour with larger T,
/// i.e. a real disconnection even with repair).
struct RepairReport {
  ChurnReport churn;
  std::size_t reattached = 0;
  std::size_t repair_failures = 0;
};
[[nodiscard]] RepairReport simulate_departures_with_repair(
    const overlay::OverlayGraph& graph, const std::vector<PeerId>& parent,
    const std::vector<double>& departure_times);

/// One departure's worth of the repair rule, exposed for reuse by other
/// tree maintainers (groups/ repairs its per-group multicast trees with
/// it): each orphan polls its overlay neighbours for an adopter.
/// `can_adopt(orphan, q)` filters candidates; `prefer(q, incumbent)`
/// returns true when q beats the best candidate found so far (ties keep
/// the incumbent, so the lowest eligible id wins under a constant-false
/// prefer). Orphans with no eligible neighbour land in `failed`.
/// Templated on the callables so the per-neighbour inner loop stays
/// inlinable (this runs once per departure in the churn benches).
struct OrphanRepairResult {
  /// (orphan, adopter) pairs, in input order.
  std::vector<std::pair<PeerId, PeerId>> reattached;
  std::vector<PeerId> failed;
};
template <typename CanAdopt, typename Prefer>
[[nodiscard]] OrphanRepairResult repair_orphans(const overlay::OverlayGraph& graph,
                                                const std::vector<PeerId>& orphans,
                                                CanAdopt&& can_adopt, Prefer&& prefer) {
  OrphanRepairResult result;
  for (PeerId orphan : orphans) {
    PeerId adopter = kInvalidPeer;
    for (PeerId q : graph.neighbors(orphan)) {
      if (!can_adopt(orphan, q)) continue;
      if (adopter == kInvalidPeer || prefer(q, adopter)) adopter = q;
    }
    if (adopter == kInvalidPeer)
      result.failed.push_back(orphan);
    else
      result.reattached.emplace_back(orphan, adopter);
  }
  return result;
}

}  // namespace geomcast::stability
