// Departure simulation. Peers leave at their announced times T(P), in
// increasing order. For the §3 stable tree the invariant under test is that
// a departing peer is always a LEAF of the remaining tree — departures
// never disconnect anyone. For baseline trees (e.g. a random spanning tree
// of the same overlay) a departing interior node orphans its remaining
// subtree; the simulator counts those disruptions, quantifying the paper's
// "very sensitive to node departures" remark.
#pragma once

#include <cstddef>
#include <vector>

#include "stability/stable_tree.hpp"

namespace geomcast::stability {

struct ChurnReport {
  std::size_t departures = 0;
  /// Departures whose node still had live children (tree disconnections).
  std::size_t disruptive_departures = 0;
  /// Live peers orphaned across all departures (sum of orphaned subtree
  /// sizes at the moment of each departure).
  std::size_t total_orphaned = 0;
  std::size_t max_orphaned_at_once = 0;
  /// True iff every departure happened at a leaf (the §3 guarantee).
  [[nodiscard]] bool departures_always_leaves() const noexcept {
    return disruptive_departures == 0;
  }
};

/// Plays all departures in increasing T order on an arbitrary parent
/// structure (stable tree or baseline). A departure orphans the departing
/// node's entire remaining subtree (no repair) — the metric the baseline
/// comparison reports.
[[nodiscard]] ChurnReport simulate_departures(const std::vector<PeerId>& parent,
                                              const std::vector<double>& departure_times);

/// Same, but at each departure orphaned children re-run the §3 preferred-
/// neighbour rule among their still-alive overlay neighbours. Returns the
/// number of re-attachments that failed (no alive neighbour with larger T,
/// i.e. a real disconnection even with repair).
struct RepairReport {
  ChurnReport churn;
  std::size_t reattached = 0;
  std::size_t repair_failures = 0;
};
[[nodiscard]] RepairReport simulate_departures_with_repair(
    const overlay::OverlayGraph& graph, const std::vector<PeerId>& parent,
    const std::vector<double>& departure_times);

}  // namespace geomcast::stability
