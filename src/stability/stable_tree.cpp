#include "stability/stable_tree.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "geometry/distance.hpp"

namespace geomcast::stability {

std::string to_string(PreferredPolicy policy) {
  switch (policy) {
    case PreferredPolicy::kMaxT: return "max-T";
    case PreferredPolicy::kMinAboveOwnT: return "min-above-own-T";
    case PreferredPolicy::kClosestAboveOwnT: return "closest-above-own-T";
  }
  return "?";
}

namespace {
/// Lower score wins; kInvalidPeer candidates never win.
double preferred_score(PreferredPolicy policy, const geometry::Point& ego,
                       const geometry::Point& candidate, double candidate_t) {
  switch (policy) {
    case PreferredPolicy::kMaxT: return -candidate_t;
    case PreferredPolicy::kMinAboveOwnT: return candidate_t;
    case PreferredPolicy::kClosestAboveOwnT:
      return geometry::l2_distance_sq(ego, candidate);
  }
  return 0.0;
}
}  // namespace

StableTree build_stable_tree_from_selections(
    const std::vector<std::vector<PeerId>>& selections,
    const std::vector<geometry::Point>& points,
    const std::vector<double>& departure_times, PreferredPolicy policy) {
  const std::size_t n = selections.size();
  if (points.size() != n || departure_times.size() != n)
    throw std::invalid_argument("build_stable_tree_from_selections: size mismatch");

  StableTree tree;
  tree.parent.assign(n, kInvalidPeer);
  tree.children.assign(n, {});
  tree.departure_time = departure_times;

  std::vector<double> best_score(n, 0.0);
  // Offer each directed edge to both endpoints: the undirected adjacency is
  // the union of selections and reverse-selections.
  auto offer = [&](PeerId p, PeerId q) {
    if (departure_times[q] <= departure_times[p]) return;
    const double score = preferred_score(policy, points[p], points[q], departure_times[q]);
    if (tree.parent[p] == kInvalidPeer || score < best_score[p] ||
        (score == best_score[p] && q < tree.parent[p])) {
      tree.parent[p] = q;
      best_score[p] = score;
    }
  };
  for (PeerId p = 0; p < n; ++p) {
    for (PeerId q : selections[p]) {
      offer(p, q);
      offer(q, p);
    }
  }
  for (PeerId p = 0; p < n; ++p) {
    if (tree.parent[p] == kInvalidPeer)
      tree.roots.push_back(p);
    else
      tree.children[tree.parent[p]].push_back(p);
  }
  return tree;
}

StableTree build_stable_tree(const overlay::OverlayGraph& graph,
                             const std::vector<double>& departure_times,
                             PreferredPolicy policy) {
  const std::size_t n = graph.size();
  if (departure_times.size() != n)
    throw std::invalid_argument("build_stable_tree: departure_times size mismatch");

  StableTree tree;
  tree.parent.assign(n, kInvalidPeer);
  tree.children.assign(n, {});
  tree.departure_time = departure_times;

  for (PeerId p = 0; p < n; ++p) {
    const double own_t = departure_times[p];
    PeerId best = kInvalidPeer;
    double best_score = 0.0;
    for (PeerId q : graph.neighbors(p)) {
      const double t = departure_times[q];
      if (t <= own_t) continue;  // only strictly later-departing neighbours
      double score = 0.0;
      switch (policy) {
        case PreferredPolicy::kMaxT: score = -t; break;            // maximise T
        case PreferredPolicy::kMinAboveOwnT: score = t; break;     // minimise T
        case PreferredPolicy::kClosestAboveOwnT:
          score = geometry::l2_distance_sq(graph.point(p), graph.point(q));
          break;
      }
      if (best == kInvalidPeer || score < best_score) {
        best = q;
        best_score = score;
      }
    }
    tree.parent[p] = best;
    if (best == kInvalidPeer) tree.roots.push_back(p);
  }
  for (PeerId p = 0; p < n; ++p)
    if (tree.parent[p] != kInvalidPeer) tree.children[tree.parent[p]].push_back(p);
  return tree;
}

bool StableTree::lifetimes_monotone() const {
  for (PeerId p = 0; p < parent.size(); ++p) {
    const PeerId up = parent[p];
    if (up != kInvalidPeer && departure_time[up] <= departure_time[p]) return false;
  }
  return true;
}

std::size_t StableTree::max_degree() const {
  std::size_t best = 0;
  for (PeerId p = 0; p < parent.size(); ++p) {
    const std::size_t degree = children[p].size() + (parent[p] != kInvalidPeer ? 1 : 0);
    best = std::max(best, degree);
  }
  return best;
}

namespace {
/// BFS over the undirected tree adjacency; returns (farthest node, depths).
std::pair<PeerId, std::vector<std::size_t>> bfs_farthest(const StableTree& tree,
                                                         PeerId start) {
  constexpr auto kUnseen = static_cast<std::size_t>(-1);
  std::vector<std::size_t> depth(tree.size(), kUnseen);
  depth[start] = 0;
  std::deque<PeerId> queue{start};
  PeerId farthest = start;
  while (!queue.empty()) {
    const PeerId p = queue.front();
    queue.pop_front();
    if (depth[p] > depth[farthest]) farthest = p;
    auto visit = [&](PeerId q) {
      if (q != kInvalidPeer && depth[q] == kUnseen) {
        depth[q] = depth[p] + 1;
        queue.push_back(q);
      }
    };
    visit(tree.parent[p]);
    for (PeerId c : tree.children[p]) visit(c);
  }
  return {farthest, std::move(depth)};
}
}  // namespace

std::size_t tree_diameter(const StableTree& tree) {
  if (tree.size() == 0) return 0;
  std::vector<bool> visited(tree.size(), false);
  std::size_t best = 0;
  // Double-BFS per component (exact on trees/forests).
  for (PeerId start = 0; start < tree.size(); ++start) {
    if (visited[start]) continue;
    const auto [far_node, depths_from_start] = bfs_farthest(tree, start);
    for (PeerId p = 0; p < tree.size(); ++p)
      if (depths_from_start[p] != static_cast<std::size_t>(-1)) visited[p] = true;
    const auto [end_node, depths_from_far] = bfs_farthest(tree, far_node);
    best = std::max(best, depths_from_far[end_node]);
  }
  return best;
}

}  // namespace geomcast::stability
