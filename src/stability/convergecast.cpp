#include "stability/convergecast.hpp"

#include <memory>
#include <stdexcept>

#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace geomcast::stability {

namespace {

/// Partial aggregate travelling up the tree.
struct Partial {
  double sum = 0.0;
  std::size_t count = 0;
};

class AggregatorNode final : public sim::Node {
 public:
  AggregatorNode(PeerId id, const StableTree& tree, double own_value,
                 ConvergecastResult& shared)
      : sim::Node(id),
        tree_(tree),
        shared_(shared),
        partial_{own_value, 1},
        waiting_for_(tree.children[id].size()) {}

  void on_start(sim::Simulator& sim) override {
    // Leaves fire at t=0 — via the event queue, not inline, so that every
    // node is registered before the first message is sent.
    if (waiting_for_ == 0)
      sim.schedule_at(0.0, [this, &sim]() { flush(sim); });
  }

  void on_message(sim::Simulator& sim, const sim::Envelope& envelope) override {
    if (envelope.kind != kAggregateKind)
      throw std::logic_error("AggregatorNode: unexpected message kind");
    const auto& incoming = std::any_cast<const Partial&>(envelope.payload);
    partial_.sum += incoming.sum;
    partial_.count += incoming.count;
    if (--waiting_for_ == 0) flush(sim);
  }

 private:
  void flush(sim::Simulator& sim) {
    const PeerId up = tree_.parent[id()];
    if (up == kInvalidPeer) {
      // Root: the wave is complete.
      shared_.root_value = partial_.sum;
      shared_.contributions = partial_.count;
      shared_.completion_time = sim.now();
    } else {
      sim.send(id(), up, kAggregateKind, partial_);
    }
  }

  const StableTree& tree_;
  ConvergecastResult& shared_;
  Partial partial_;
  std::size_t waiting_for_;
};

}  // namespace

ConvergecastResult run_convergecast(const StableTree& tree,
                                    const std::vector<double>& values,
                                    sim::LatencyModel latency, std::uint64_t seed) {
  const std::size_t n = tree.size();
  if (values.size() != n)
    throw std::invalid_argument("run_convergecast: values size mismatch");
  if (!tree.is_single_tree())
    throw std::invalid_argument("run_convergecast: tree must be a single tree");

  ConvergecastResult result;
  sim::Simulator sim(seed);
  sim.network().set_latency(latency);

  std::vector<std::unique_ptr<AggregatorNode>> nodes;
  nodes.reserve(n);
  for (PeerId p = 0; p < n; ++p) {
    nodes.push_back(std::make_unique<AggregatorNode>(p, tree, values[p], result));
    sim.add_node(*nodes.back());
  }
  sim.run_until_idle();

  result.messages = sim.stats().sent;
  return result;
}

}  // namespace geomcast::stability
