// Convergecast on the stability-optimised tree: every peer contributes a
// value; interior peers wait for all children, fold the partial aggregates,
// and forward one message to their preferred neighbour; the root ends up
// with the aggregate of all N contributions using exactly N-1 messages.
//
// This is the §3 tree doing the job its motivations ask of it (sensor data
// collection, cloud telemetry): because T decreases toward the leaves,
// every aggregation wave that starts before the next departure completes
// over peers that are all still alive.
//
// Runs message-by-message on the discrete-event simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.hpp"
#include "stability/stable_tree.hpp"

namespace geomcast::stability {

/// Message kind for aggregation payloads (distinct from gossip/multicast).
inline constexpr sim::MessageKind kAggregateKind = 20;

struct ConvergecastResult {
  /// Aggregate (sum) the root computed.
  double root_value = 0.0;
  /// Contributions folded into root_value (must equal N on a single tree).
  std::size_t contributions = 0;
  std::uint64_t messages = 0;
  /// Simulated time from start until the root finished folding.
  double completion_time = 0.0;
};

/// Runs one aggregation wave over `tree` (which must be a single tree).
/// `values[p]` is peer p's contribution; the aggregate is their sum.
/// Latency model applies per hop; the wave starts at the leaves at t=0.
[[nodiscard]] ConvergecastResult run_convergecast(
    const StableTree& tree, const std::vector<double>& values,
    sim::LatencyModel latency = sim::LatencyModel::constant(0.01),
    std::uint64_t seed = 1);

}  // namespace geomcast::stability
