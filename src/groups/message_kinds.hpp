// Message-kind registry for the groups subsystem — every envelope kind the
// pub/sub control and data planes put on the simulated network, in one
// place, with a compile-time uniqueness check.
//
// The registry continues the multicast construction protocol's numbering
// (kBuildRequestKind = 10, kDataKind = 11, kAckKind = 12) in the 20+ band;
// the groups kinds share a Simulator with each other (and conceptually
// with the §2 build wave), so a collision would silently misroute
// dispatch. Other subsystems run their own simulations in their own bands
// (overlay gossip: 1–3, stability convergecast: 20 — never co-resident
// with a PubSubSystem).
//
// | kind | value | plane   | payload          | reliability            |
// |------|-------|---------|------------------|------------------------|
// | kSubscribeKind    | 20 | control | GroupRequest  | best-effort routed |
// | kUnsubscribeKind  | 21 | control | GroupRequest  | best-effort routed |
// | kPublishKind      | 22 | control | GroupRequest  | best-effort routed |
// | kDeliverKind      | 23 | data    | GroupDelivery | PubSubConfig QoS   |
// | kDeliverAckKind   | 24 | data    | HopAck        | (ack of 23)        |
// | kNackKind         | 25 | repair  | GapNack       | best-effort unicast|
// | kRepairKind       | 26 | repair  | GroupDelivery | best-effort unicast|
// | kRepairMissKind   | 27 | repair  | GapRepairMiss | best-effort unicast|
// | kGraftRequestKind | 28 | graft   | GraftEnvelope | QoS 1 (acked)      |
// | kGraftAcceptKind  | 29 | graft   | GraftEnvelope | QoS 1 (acked)      |
// | kGraftRejectKind  | 30 | graft   | GraftEnvelope | QoS 1 (acked)      |
// | kGraftAckKind     | 31 | graft   | HopAck        | (ack of 28–30)     |
// | kReplicaSyncKind  | 32 | failover| ReplicaSync   | QoS 1 (acked)      |
// | kReplicaAckKind   | 33 | failover| HopAck        | (ack of 32)        |
// | kHeartbeatKind    | 34 | failover| GroupHeartbeat| best-effort tree   |
// | kSeqLeaseKind     | 35 | shard   | SeqLease      | QoS 1 (acked)      |
// | kSeqGrantKind     | 36 | shard   | SeqGrant      | QoS 1 (acked)      |
// | kShardWaveKind    | 37 | shard   | ShardWave     | QoS 1 (acked)      |
// | kCoordAckKind     | 38 | shard   | HopAck        | (ack of 35–37)     |
// | kGraftBatchKind   | 39 | graft   | GraftBatch    | QoS 1 (ack = 31)   |
//
// README.md carries the same table for readers who never open headers.
#pragma once

#include <cstddef>
#include <iterator>

#include "sim/network.hpp"

namespace geomcast::groups {

// -- control plane (greedy-routed toward the group's rendezvous root) ------
inline constexpr sim::MessageKind kSubscribeKind = 20;
inline constexpr sim::MessageKind kUnsubscribeKind = 21;
inline constexpr sim::MessageKind kPublishKind = 22;

// -- data plane (tree waves + their per-hop acks) --------------------------
inline constexpr sim::MessageKind kDeliverKind = 23;
inline constexpr sim::MessageKind kDeliverAckKind = 24;

// -- QoS 2 repair plane. NACK/repair traffic is unicast peer-to-peer (the
// underlay, not the tree): repair conversations are point-to-point between
// a subscriber and one ancestor, exactly the case direct unicast serves in
// deployed NACK multicast schemes.
inline constexpr sim::MessageKind kNackKind = 25;        // batched gap request
inline constexpr sim::MessageKind kRepairKind = 26;      // retained wave resent
inline constexpr sim::MessageKind kRepairMissKind = 27;  // "not retained here"

// -- routed graft control plane (the distributed zone descent). Request
// envelopes hop peer-to-peer down the descent path; accept/reject report
// the outcome to the initiating root. All three ride one shared
// ReliableHopLayer at QoS 1 (acked as kGraftAckKind, retransmitted on
// timeout) so a lost control envelope cannot strand the subscriber.
inline constexpr sim::MessageKind kGraftRequestKind = 28;  // one descent step
inline constexpr sim::MessageKind kGraftAcceptKind = 29;   // subscriber -> root
inline constexpr sim::MessageKind kGraftRejectKind = 30;   // failing peer -> root
inline constexpr sim::MessageKind kGraftAckKind = 31;      // per-hop graft ack

// -- warm root failover plane (PubSubConfig::warm_failover). Each group's
// rendezvous root streams its bookkeeping — membership deltas, retained
// range inserts, pending-batch joins — to the group's replica (the
// next-nearest alive peer to the rendezvous point) as kReplicaSyncKind
// unicasts on a dedicated ReliableHopLayer at QoS 1, so root death promotes
// a warm successor instead of rebuilding from nothing. kHeartbeatKind is
// the root-driven idle beacon (highest flushed seq, forwarded down the
// current tree, fire-and-forget — repeated rounds are its redundancy) that
// closes the QoS 2 final-wave blind spot.
inline constexpr sim::MessageKind kReplicaSyncKind = 32;  // root -> replica delta
inline constexpr sim::MessageKind kReplicaAckKind = 33;   // per-hop replica ack
inline constexpr sim::MessageKind kHeartbeatKind = 34;    // idle seq beacon

// -- replica-shard coordination plane (PubSubConfig::root_replicas > 1).
// The R slot roots of a group coordinate over a dedicated ReliableHopLayer
// at QoS 1 (acked as kCoordAckKind): a non-authority slot root leases a
// dense (group, seq) range from the slot-0 authority (kSeqLeaseKind ->
// kSeqGrantKind) so sequence assignment stays globally unique and dense,
// then hands the committed range to every peer slot root (kShardWaveKind),
// each of which drives the wave over its own shard tree. kGraftBatchKind
// is the graft plane's prefix coalescer (PubSubConfig::graft_prefix_batch):
// several same-instant descents sharing a (from, to) hop ride one acked
// carrier envelope instead of one each.
inline constexpr sim::MessageKind kSeqLeaseKind = 35;   // slot root -> authority
inline constexpr sim::MessageKind kSeqGrantKind = 36;   // authority -> slot root
inline constexpr sim::MessageKind kShardWaveKind = 37;  // committed-range handoff
inline constexpr sim::MessageKind kCoordAckKind = 38;   // per-hop ack of 35–37
inline constexpr sim::MessageKind kGraftBatchKind = 39; // batched descent carrier

namespace detail {
/// The full registry this simulation family dispatches on: the multicast
/// build/data/ack band (protocol.hpp / dissemination.hpp pin 10–12) plus
/// every groups kind above, each with its canonical snake_case name (the
/// key observability exports — bench --json sent_by_kind, snapshot JSON —
/// report per-kind traffic under). Compile-time-checked pairwise distinct
/// so a future kind cannot silently shadow an existing dispatch arm.
struct KindEntry {
  sim::MessageKind kind;
  const char* name;
};
inline constexpr KindEntry kRegistry[] = {
    // multicast construction band (protocol.hpp / dissemination.hpp)
    {10, "build_request"},
    {11, "data"},
    {12, "ack"},
    {kSubscribeKind, "subscribe"},
    {kUnsubscribeKind, "unsubscribe"},
    {kPublishKind, "publish"},
    {kDeliverKind, "deliver"},
    {kDeliverAckKind, "deliver_ack"},
    {kNackKind, "nack"},
    {kRepairKind, "repair"},
    {kRepairMissKind, "repair_miss"},
    {kGraftRequestKind, "graft_request"},
    {kGraftAcceptKind, "graft_accept"},
    {kGraftRejectKind, "graft_reject"},
    {kGraftAckKind, "graft_ack"},
    {kReplicaSyncKind, "replica_sync"},
    {kReplicaAckKind, "replica_ack"},
    {kHeartbeatKind, "heartbeat"},
    {kSeqLeaseKind, "seq_lease"},
    {kSeqGrantKind, "seq_grant"},
    {kShardWaveKind, "shard_wave"},
    {kCoordAckKind, "coord_ack"},
    {kGraftBatchKind, "graft_batch"},
};

constexpr bool registry_unique() {
  for (std::size_t i = 0; i < std::size(kRegistry); ++i)
    for (std::size_t j = i + 1; j < std::size(kRegistry); ++j)
      if (kRegistry[i].kind == kRegistry[j].kind) return false;
  return true;
}
static_assert(registry_unique(), "message-kind registry has a duplicate value");
}  // namespace detail

/// The registry name of `kind`, or nullptr for a kind outside this
/// simulation family (callers fall back to the numeric value).
[[nodiscard]] constexpr const char* kind_name(sim::MessageKind kind) noexcept {
  for (const auto& entry : detail::kRegistry)
    if (entry.kind == kind) return entry.name;
  return nullptr;
}

}  // namespace geomcast::groups
