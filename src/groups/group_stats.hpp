// Per-group accounting for the pub/sub subsystem. Every counter is a plain
// event count so per-group instances can be summed into a system aggregate;
// the derived ratios (delivery, amortised tree cost) are what the
// pubsub_throughput bench reports.
#pragma once

#include <cstdint>
#include <string>

#include "obs/histogram.hpp"

namespace geomcast::groups {

/// Application-level group identifier (opaque; hashed to a rendezvous
/// point in the coordinate space by the GroupManager).
using GroupId = std::uint64_t;

struct GroupStats {
  // Membership events accepted at the group root.
  std::uint64_t subscribes = 0;
  std::uint64_t unsubscribes = 0;

  // Publish pipeline.
  std::uint64_t publishes = 0;
  // Wave coalescing (PubSubConfig::batch_window > 0): publishes buffered
  // at the root and flushed as range waves, with the flush reason split
  // out (window timer expired vs. batch hit max_batch) so a workload's
  // burst profile is readable from the stats.
  std::uint64_t batched_publishes = 0;     // publishes that entered a buffer
  std::uint64_t batch_flushes_window = 0;  // waves flushed by the window timer
  std::uint64_t batch_flushes_full = 0;    // waves flushed by max_batch
  std::uint64_t batch_occupancy_sum = 0;   // publishes across flushed waves
  /// Buffered publishes dropped because the buffering root departed before
  /// the flush (they died at the root, like any publish to a dead root).
  std::uint64_t batch_publishes_lost = 0;
  /// Payload (+ack at QoS 1+) envelopes the coalesced waves avoided versus
  /// one wave per publish: (batch size - 1) x tree edges per flush.
  std::uint64_t envelopes_saved = 0;
  /// Sum over publishes of the subscriber count the tree spanned at
  /// publish time — the denominator of delivery_ratio().
  std::uint64_t expected_deliveries = 0;
  std::uint64_t deliveries = 0;
  /// Retransmission duplicates suppressed by the per-(group, seq) dedup:
  /// re-acked, but not re-delivered or re-forwarded. Always 0 under QoS 0 —
  /// waves traverse immutable tree snapshots with unique (group, seq), so
  /// only the QoS 1 retransmit layer can produce a second arrival.
  std::uint64_t duplicate_deliveries = 0;
  /// Per-hop payload messages down group trees (one per tree edge per
  /// publish; relays included, retransmissions counted separately below).
  std::uint64_t payload_messages = 0;
  // Per-hop reliability (QoS 1 and up): the pub/sub data plane runs its
  // kDeliverKind hops through multicast/reliable_hop.hpp.
  std::uint64_t ack_messages = 0;      // kDeliverAckKind envelopes sent
  std::uint64_t retransmissions = 0;   // payload copies resent on ack timeout
  std::uint64_t abandoned_hops = 0;    // hops whose retry budget ran out
  // End-to-end gap repair (QoS 2 only): subscriber-side sequence windows
  // detect missing per-group seqs and repair them from retained copies at
  // the tree parent, escalating ancestor-by-ancestor to the root.
  std::uint64_t gap_seqs_detected = 0;   // seqs a subscriber found missing
  std::uint64_t gap_seqs_repaired = 0;   // gaps filled by repair or late data
  std::uint64_t gap_seqs_abandoned = 0;  // gaps given up (window skipped on)
  std::uint64_t nacks_sent = 0;          // batched kNackKind envelopes
  std::uint64_t nacked_seqs = 0;         // missing seqs across those NACKs
  std::uint64_t nack_deferrals = 0;      // rounds deferred to in-flight QoS 1 recovery
  std::uint64_t repairs_served = 0;      // kRepairKind envelopes resent by responders
  std::uint64_t repair_misses = 0;       // kRepairMissKind replies (seq not retained)
  std::uint64_t repair_escalations = 0;  // gaps moved to a higher ancestor
  std::uint64_t retained_evictions = 0;  // retained waves displaced by newer ones
  /// Deliveries released below an already-advanced window head — possible
  /// only when a subscriber's very first waves race (see pubsub.hpp on the
  /// QoS 2 ordering guarantee).
  std::uint64_t pre_window_deliveries = 0;
  /// Sum over repaired gaps of (fill time - detection time), in simulated
  /// seconds; mean_gap_latency() is the derived per-gap figure.
  double gap_latency_total = 0.0;
  /// Routed control hops (subscribe/unsubscribe/publish envelopes on their
  /// way to the group root).
  std::uint64_t control_messages = 0;
  /// Control envelopes that greedy forwarding could not advance (stranded
  /// or next hop departed).
  std::uint64_t stranded_messages = 0;

  // Tree cache behaviour. Each maintenance verb keeps its own message
  // counter — graft descent decisions, prune cascade removals, and repair
  // reattach/splice traffic are different costs and must not conflate
  // (repair_messages once absorbed all three; see maintenance_per_publish
  // for the aggregate).
  std::uint64_t tree_builds = 0;     // full construction waves
  std::uint64_t build_messages = 0;  // construction requests across builds
  std::uint64_t cache_hits = 0;      // publishes served by an unchanged tree
  std::uint64_t grafts = 0;          // subscribers spliced into a cached tree
  std::uint64_t graft_messages = 0;  // zone-descent decisions across grafts
  std::uint64_t prunes = 0;          // subscribers cascaded out of a cached tree
  std::uint64_t prune_messages = 0;  // cascade removals across prunes
  std::uint64_t repairs = 0;         // departures mended in place
  std::uint64_t repair_messages = 0; // reattach/splice repair traffic only
  std::uint64_t repair_failures = 0; // orphans no rule could reattach
  std::uint64_t root_migrations = 0; // rendezvous root departed, successor picked
  // Warm root failover (PubSubConfig::warm_failover): the root streams its
  // bookkeeping to the group's replica so migration is a handoff, not a
  // rebuild. root_migrations still counts every migration; these make the
  // replication and handoff COST visible (the ROADMAP "migration cost
  // measured in envelopes" gate).
  std::uint64_t replica_sync_envelopes = 0;  // kReplicaSyncKind deltas sent
  std::uint64_t replica_sync_retries = 0;    // sync envelopes retransmitted
  /// Sync envelopes spent re-establishing replication after a promotion or
  /// replica death (full-state bootstrap to a fresh replica) — the
  /// per-migration handoff price, a subset of replica_sync_envelopes.
  std::uint64_t migration_envelopes = 0;
  std::uint64_t warm_promotions = 0;  // migrations inheriting replicated state
  /// Pending-batch publishes the promoted root adopted from the replica's
  /// copy instead of dropping as batch_publishes_lost.
  std::uint64_t pending_publishes_inherited = 0;
  // Root-driven session heartbeats (PubSubConfig::heartbeat_interval): idle
  // beacons carrying the highest flushed seq down the current tree.
  std::uint64_t heartbeats_sent = 0;  // beacon waves issued by group roots
  /// Gap seqs first revealed by a heartbeat horizon rather than later wave
  /// traffic — each one is the final-wave blind spot closing.
  std::uint64_t heartbeat_gap_detections = 0;
  /// Beacons that reached a subscriber with NO window state — the residual
  /// blind spot: a subscriber severed on the group's only wave never
  /// initialized a window, so the beacon cannot owe it history and stays
  /// silent. Nonzero here is the measurable trace of that silence.
  std::uint64_t heartbeat_blind_windows = 0;
  // Routed graft control plane (PubSubConfig::routed_graft): the zone
  // descent above driven by real kGraftRequestKind envelopes, one per
  // hop, at QoS 1. graft_messages still counts the descent decisions
  // (identical to the local oracle at zero loss); these count the
  // envelopes and the failure handling the distribution adds.
  std::uint64_t graft_hops = 0;          // kGraftRequestKind envelopes sent
  std::uint64_t graft_retries = 0;       // graft control envelopes retransmitted
  std::uint64_t graft_aborts = 0;        // in-flight grafts given up (tree dirtied)
  std::uint64_t graft_resubscribes = 0;  // aborts that re-issued the subscribe
  // Graft prefix batching (PubSubConfig::graft_prefix_batch): same-instant
  // descent steps sharing a (from, to) hop coalesced into one carrier.
  std::uint64_t graft_prefix_batches = 0;  // kGraftBatchKind carriers sent
  std::uint64_t graft_prefix_merged = 0;   // descent steps that rode a carrier
  // Replica-sharded roots (PubSubConfig::root_replicas > 1): the seq-lease
  // protocol among slot roots and the per-slot wave handoffs.
  std::uint64_t seq_lease_requests = 0;  // kSeqLeaseKind asks sent to the authority
  std::uint64_t seq_leases_granted = 0;  // dense ranges the authority assigned
  std::uint64_t seq_grants_lost = 0;     // grants whose requester died (seq holes)
  std::uint64_t shard_handoffs = 0;      // kShardWaveKind range handoffs sent
  std::uint64_t shard_waves = 0;         // shard-tree waves driven (all slots)
  // Publisher-side batching (PubSubConfig::publisher_batch_window): app
  // messages buffered at the publisher before one kPublishKind envelope.
  std::uint64_t publisher_batches = 0;           // publish envelopes flushed
  std::uint64_t publisher_batched_publishes = 0; // app messages that buffered
  std::uint64_t publisher_envelopes_saved = 0;   // publish envelopes avoided
  /// Subscribers a fresh build could not reach (a departed delegate walls
  /// off their slices) that the build-time rescue pass spliced back in via
  /// greedy routes (group_tree's rescue_stranded).
  std::uint64_t stranded_rescues = 0;
  /// Gauge (last build, after rescue): subscribers the construction still
  /// could not span — e.g. identifiers in degenerate position the
  /// open-zone recursion cannot reach, with no greedy route to the tree
  /// either. Nonzero means delivery_ratio() is measured against a smaller
  /// set than the membership.
  std::uint64_t stranded_subscribers = 0;

  // Latency distributions (simulated seconds; log-bucketed, mergeable —
  // see obs/histogram.hpp). Recorded unconditionally like every counter
  // above, so they are identical whether tracing is attached or not.
  /// Publish accepted at the root -> application-level delivery at a
  /// subscriber, one sample per delivery (QoS 2 samples are release time,
  /// matching the deliveries counter). The p99 here is the latency-aware-
  /// trees roadmap gate.
  obs::Histogram delivery_latency;
  /// Gap detected -> gap repaired (QoS 2 only); the distribution behind
  /// mean_gap_latency()'s single mean.
  obs::Histogram gap_repair_latency;
  /// Routed graft registered at the root -> subscriber attached
  /// (graft_begin to graft_finish; aborted grafts never sample).
  obs::Histogram graft_latency;

  /// Fraction of expected deliveries that arrived; 1 when nothing was
  /// published yet.
  [[nodiscard]] double delivery_ratio() const noexcept;
  /// Tree maintenance messages (builds + grafts + prunes + repairs) per
  /// publish; the "repair overhead" axis of the bench.
  [[nodiscard]] double maintenance_per_publish() const noexcept;
  /// Mean simulated seconds from gap detection to repair; 0 when no gap
  /// was repaired.
  [[nodiscard]] double mean_gap_latency() const noexcept;
  /// Mean publishes per flushed wave; 0 when nothing was coalesced.
  [[nodiscard]] double mean_batch_occupancy() const noexcept;

  GroupStats& operator+=(const GroupStats& other) noexcept;

  [[nodiscard]] std::string summary() const;
};

}  // namespace geomcast::groups
